package almostmix

// BenchmarkCongestEngine measures simulator throughput (rounds/sec of
// wall-clock, not CONGEST rounds) on a message-heavy workload: k·d(v)
// parallel random walks run as genuine node programs on a 2048-node
// random-regular graph. Sub-benchmarks sweep the worker count of the
// parallel round engine against the sequential reference; the simulated
// results (rounds, messages, arrival histogram) are bit-identical across
// all of them, so the only quantity under test is wall-clock speed.
// Numbers for this host are recorded in EXPERIMENTS.md (E13).

import (
	"fmt"
	"sync"
	"testing"

	"almostmix/internal/congest"
	"almostmix/internal/graph"
	"almostmix/internal/metrics"
	"almostmix/internal/randomwalk"
	"almostmix/internal/rngutil"
)

type engineBenchFx struct {
	g      *graph.Graph
	counts []int
}

var engineBenchShared = sync.OnceValue(func() *engineBenchFx {
	g := graph.RandomRegular(2048, 8, rngutil.NewRand(131))
	return &engineBenchFx{g: g, counts: randomwalk.UniformCountTimesDegree(g, 1)}
})

func BenchmarkCongestEngine(b *testing.B) {
	fx := engineBenchShared()
	const steps = 20
	for _, workers := range []int{1, 2, 4, 8} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 1 {
			name = "sequential"
		}
		b.Run(name, func(b *testing.B) {
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := randomwalk.RunNetwork(fx.g, fx.counts, steps,
					rngutil.NewSource(131), workers)
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds)*float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
		})
	}
}

// BenchmarkCongestEngineTraced is the same workload with the bundled
// trace sink attached, to quantify the cost of full per-round
// observability relative to BenchmarkCongestEngine's no-probe baseline
// (which must stay probe-free fast: the layer is nil-checked out).
// BenchmarkCongestEngineMetrics is the same workload with a live metrics
// registry attached (no trace sink), isolating the cost of the host-side
// instrument updates — per-round histogram observations, message
// counters, and worker busy accounting — from the trace layer's.
func BenchmarkCongestEngineMetrics(b *testing.B) {
	fx := engineBenchShared()
	const steps = 20
	for _, workers := range []int{1, 8} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 1 {
			name = "sequential"
		}
		b.Run(name, func(b *testing.B) {
			reg := metrics.New()
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := randomwalk.RunNetworkObserved(fx.g, fx.counts, steps,
					rngutil.NewSource(131), workers, nil, reg)
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds)*float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
		})
	}
}

// BenchmarkCongestEngineScale sweeps the engines from 10^4 to 10^6 nodes
// on the ticker workload (every node broadcasts a zero-size token every
// round) over constant-degree ring lattices, so rounds and per-node work
// are identical across sizes and the reported ns/msg isolates the memory
// layout: with the flat CSR topology and recycled arenas the per-message
// cost must stay essentially flat as n grows (E16 checks it stays within
// 1.25× of the n=1e4 point). Network construction runs outside the timer;
// the timed region is Run only, i.e. steady rounds plus Init. The quick
// benchsuite runs the 1e4/1e5 points; 1e6 needs ~1 GB of fixtures and
// runs in the full suite and `make bench-scale`.
func BenchmarkCongestEngineScale(b *testing.B) {
	const rounds = 12
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		g := scaleBenchGraph(n)
		for _, workers := range []int{1, 8} {
			name := fmt.Sprintf("workers=%d", workers)
			if workers == 1 {
				name = "sequential"
			}
			b.Run(fmt.Sprintf("n=%d/%s", n, name), func(b *testing.B) {
				b.ReportAllocs()
				msgs := 0
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					net := congest.NewUniformNetwork(g, func(int) congest.Program {
						return congest.NewTicker(rounds)
					}, rngutil.NewSource(7)).SetWorkers(workers)
					b.StartTimer()
					if _, err := net.Run(rounds + 2); err != nil {
						b.Fatal(err)
					}
					msgs += net.Messages()
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(msgs), "ns/msg")
			})
		}
	}
}

var scaleBenchGraphs sync.Map // n -> *graph.Graph, built once per size

func scaleBenchGraph(n int) *graph.Graph {
	if g, ok := scaleBenchGraphs.Load(n); ok {
		return g.(*graph.Graph)
	}
	g := graph.RingLattice(n, 4)
	scaleBenchGraphs.Store(n, g)
	return g
}

func BenchmarkCongestEngineTraced(b *testing.B) {
	fx := engineBenchShared()
	const steps = 20
	for _, workers := range []int{1, 8} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 1 {
			name = "sequential"
		}
		b.Run(name, func(b *testing.B) {
			var rounds int
			for i := 0; i < b.N; i++ {
				sink := congest.NewTraceSink()
				res, err := randomwalk.RunNetworkProbe(fx.g, fx.counts, steps,
					rngutil.NewSource(131), workers, sink)
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds)*float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
		})
	}
}
