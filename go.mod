module almostmix

go 1.22
