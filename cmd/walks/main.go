// Command walks regenerates experiment E4 (Lemmas 2.4 and 2.5): running
// k·d_G(v) parallel random walks per node, it reports the measured
// per-node occupancy and the measured rounds per walk step against the
// O(k + log n) phase length the paper schedules. It also runs the walk
// workload as genuine node programs on the CONGEST simulator (every hop a
// real message, port contention queuing for rounds), on the engine
// selected by -workers.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"almostmix/internal/cliutil"
	"almostmix/internal/congest"
	"almostmix/internal/graph"
	"almostmix/internal/harness"
	"almostmix/internal/metrics"
	"almostmix/internal/randomwalk"
	"almostmix/internal/rngutil"
	"almostmix/internal/spectral"
	"almostmix/internal/transport"
	"almostmix/internal/transport/workloads"
)

func main() {
	n := flag.Int("n", 256, "number of nodes of the random-regular base graph")
	d := flag.Int("d", 8, "degree of the base graph")
	steps := flag.Int("steps", 60, "walk steps T")
	seed := flag.Uint64("seed", 1, "root random seed")
	workers := flag.Int("workers", 1, "simulator workers for the node-program walk (1 = sequential reference, 0 = one per CPU); results are identical for every value")
	trace := flag.String("trace", "", "write a per-round trace of every run to this file (.json for JSON, CSV otherwise)")
	metricsOut := flag.String("metrics", "", "write a host-side metrics snapshot to this file (.json for JSON, CSV otherwise)")
	pprofMode := flag.String("pprof", "", "capture a runtime profile: cpu, heap or mutex")
	pprofOut := flag.String("pprofout", "", "profile output path (default <mode>.pprof)")
	faultSpec := flag.String("faults", "", `run the E15 degradation sweep with this fault spec as its custom row, e.g. "drop=0.05,delay=0.1:3" (see DESIGN.md §3)`)
	faultSeed := flag.Uint64("faultseed", 1, "fault-injection seed for -faults (independent of -seed)")
	attempts := flag.Int("attempts", 5, "max network runs per faulty execution before declaring tokens lost")
	transportName := flag.String("transport", "proc", "node-program execution backend: proc (in-process engines) or tcp (one OS process per shard over loopback TCP); results are identical")
	shards := flag.Int("shards", 2, "node processes for -transport=tcp")
	listen := flag.String("listen", "127.0.0.1:0", "coordinator listen address for -transport=tcp")
	tcpnode := flag.String("tcpnode", "", "path to the tcpnode binary for -transport=tcp (default: next to this binary)")
	tcptimeout := flag.Duration("tcptimeout", 0, "wire barrier deadline for -transport=tcp (0 = transport default, 60s)")
	obsOut := flag.String("obsout", "", "write the tcp run's merged observability document (flight recorders, wire tallies, barrier timeline, round skew) to this file on every exit path")
	flightRec := flag.Int("flightrec", 0, "flight-recorder ring capacity on coordinator and shards for -transport=tcp (0 = default)")
	flag.Parse()
	cliutil.Min("n", *n, 2)
	cliutil.Min("d", *d, 1)
	cliutil.Min("steps", *steps, 0)
	cliutil.Workers("workers", *workers)
	cliutil.Min("attempts", *attempts, 1)
	cliutil.FaultSpec("faults", *faultSpec)
	cliutil.Transport("transport", *transportName)
	cliutil.Min("shards", *shards, 1)
	cliutil.Listen("listen", *listen)
	cliutil.Min("flightrec", *flightRec, 0)
	cliutil.ObsOut("obsout", *obsOut, *transportName)
	cliutil.Writable("trace", *trace)
	cliutil.Writable("metrics", *metricsOut)
	cliutil.Writable("pprofout", *pprofOut)
	cliutil.Writable("obsout", *obsOut)
	tr, err := transport.NewBackend(*transportName, transport.BackendConfig{
		Workers:      *workers,
		Shards:       *shards,
		Listen:       *listen,
		NodeBin:      *tcpnode,
		Timeout:      *tcptimeout,
		ObsOut:       *obsOut,
		FlightRecCap: *flightRec,
	})
	if err != nil {
		cliutil.Fail("%v", err)
	}

	sess, err := metrics.StartSession(*metricsOut, *pprofMode, *pprofOut)
	if err == nil {
		err = run(*n, *d, *steps, *seed, *workers, *trace, *faultSpec, *faultSeed, *attempts, tr, sess)
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "walks:", err)
		os.Exit(1)
	}
}

func run(n, d, steps int, seed uint64, workers int, trace, faultSpec string, faultSeed uint64, attempts int, tr transport.Transport, sess *metrics.Session) error {
	var sink *congest.TraceSink
	if trace != "" || sess.Registry() != nil {
		sink = congest.NewTraceSink().WithMetrics(sess.Registry())
	}
	g := graph.RandomRegular(n, d, rngutil.NewRand(seed))
	logN := math.Log2(float64(n))
	t := harness.NewTable(
		fmt.Sprintf("E4 — Lemmas 2.4/2.5: parallel walks on rr(n=%d, d=%d), T=%d", n, d, steps),
		"k", "walks", "max tokens/node", "occupancy bound k·d+log n", "rounds/step", "phase bound k+log n")
	for _, k := range []int{1, 2, 4, 8, 16} {
		sources := randomwalk.SourcesPerNode(randomwalk.UniformCountTimesDegree(g, k))
		cfg := randomwalk.Config{
			Kind:  spectral.Lazy,
			Steps: steps,
		}
		if sink != nil {
			cfg.Probe = sink.Label(fmt.Sprintf("E4 k=%d", k))
		}
		stop := sess.Time(fmt.Sprintf("e4_analytic_k%d", k))
		res := randomwalk.Run(g, sources, cfg, rngutil.NewRand(seed+uint64(k)))
		stop()
		t.AddRow(k, len(sources),
			res.Stats.MaxTokensAtNode, float64(k*d)+logN,
			float64(res.Stats.Rounds)/float64(steps), float64(k)+logN)
	}
	fmt.Println(t)
	fmt.Println("Lemma 2.4 holds if max tokens/node is O(k·d + log n); Lemma 2.5 if")
	fmt.Println("rounds/step is O(k + log n). Constant factors near 1–4 are expected.")

	// Node-program tier: the same token load simulated message by message,
	// routed through the Transport interface so -transport=tcp runs it as
	// real processes. The makespan exceeds T by exactly the
	// port-contention queueing that Lemma 2.5's phases budget for.
	et := harness.NewTable(
		fmt.Sprintf("E4b — node-program walks on the CONGEST engine (transport=%s, workers=%d)", tr.Name(), workers),
		"k", "tokens", "messages", "makespan rounds", "rounds/step")
	for _, k := range []int{1, 2, 4} {
		var probe congest.Probe
		if sink != nil {
			probe = sink.Label(fmt.Sprintf("E4b k=%d", k))
		}
		res, err := tr.Run(transport.Spec{
			Workload: "walks",
			Graph:    "rr",
			N:        n,
			D:        d,
			K:        k,
			Steps:    steps,
			Seed:     seed,
			SrcSeed:  seed + 100 + uint64(k),
		}, transport.Options{Probe: probe, Metrics: sess.Registry()})
		if err != nil {
			return err
		}
		et.AddRow(k, res.Output.(workloads.WalksOutput).Arrived, res.Messages, res.Rounds,
			float64(res.Rounds)/float64(steps))
	}
	fmt.Println(et)
	fmt.Println("Engine results are bit-identical for every -workers and -transport")
	fmt.Println("value; the flags change wall-clock time only (see DESIGN.md §3).")

	if faultSpec != "" {
		if err := runE15(g, n, d, steps, seed, faultSpec, faultSeed, attempts, tr, sink, sess); err != nil {
			return err
		}
	}

	if sink != nil && trace != "" {
		if err := sink.WriteFile(trace); err != nil {
			return err
		}
		fmt.Printf("wrote per-round trace (%d round records) to %s\n",
			len(sink.Rounds.Samples), trace)
	}
	return nil
}

// runE15 measures the walk engine's degradation under injected faults: a
// drop-probability sweep plus the user's custom spec, each executed with
// the token re-issue retry loop. Rounds and attempts grow with the drop
// rate while the recovery machinery keeps every token landing until loss
// overwhelms the attempt budget. The sweep runs on the selected
// transport — over tcp each attempt executes as real shard processes
// fed per-round fate windows, with identical results (E20).
func runE15(g *graph.Graph, n, d, steps int, seed uint64,
	faultSpec string, faultSeed uint64, attempts int, tr transport.Transport,
	sink *congest.TraceSink, sess *metrics.Session) error {
	specs := []string{"", "drop=0.01", "drop=0.02", "drop=0.05", "drop=0.1"}
	custom := true
	for _, s := range specs {
		if s == faultSpec {
			custom = false
		}
	}
	if custom {
		specs = append(specs, faultSpec)
	}
	counts := randomwalk.UniformCountTimesDegree(g, 1)
	issued := 0
	for _, c := range counts {
		issued += c
	}
	ft := harness.NewTable(
		fmt.Sprintf("E15 — walk degradation under faults (n=%d, T=%d, attempts<=%d, faultseed=%d)",
			g.N(), steps, attempts, faultSeed),
		"spec", "attempts", "rounds", "messages", "dropped", "delayed", "reissued", "lost", "delivered")
	for _, spec := range specs {
		label := spec
		if label == "" {
			label = "(none)"
		}
		var probe congest.Probe
		if sink != nil {
			probe = sink.Label("E15 " + label)
		}
		stop := sess.Time("e15_" + label)
		res, err := workloads.RunWalksFaults(tr, transport.Spec{
			Graph:     "rr",
			N:         n,
			D:         d,
			K:         1,
			Steps:     steps,
			Seed:      seed,
			SrcSeed:   seed + 200,
			FaultSpec: spec,
			FaultSeed: faultSeed,
		}, transport.Options{Probe: probe, Metrics: sess.Registry()}, attempts)
		stop()
		if err != nil {
			return err
		}
		delivered := 0
		for _, c := range res.ArrivedAt {
			delivered += c
		}
		ft.AddRow(label, res.Attempts, res.Rounds, res.Messages,
			res.Faults.Dropped, res.Faults.Delayed, res.Reissued, res.Lost,
			fmt.Sprintf("%d/%d", delivered, issued))
	}
	fmt.Println(ft)
	fmt.Println("Token identity plus re-issue after silence recovers every lost walk")
	fmt.Println("while the attempt budget lasts; rounds grow with the drop rate (the")
	fmt.Println("degradation curve), and results are engine- and worker-independent.")
	return nil
}
