// Command walks regenerates experiment E4 (Lemmas 2.4 and 2.5): running
// k·d_G(v) parallel random walks per node, it reports the measured
// per-node occupancy and the measured rounds per walk step against the
// O(k + log n) phase length the paper schedules. It also runs the walk
// workload as genuine node programs on the CONGEST simulator (every hop a
// real message, port contention queuing for rounds), on the engine
// selected by -workers.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"almostmix/internal/congest"
	"almostmix/internal/graph"
	"almostmix/internal/harness"
	"almostmix/internal/metrics"
	"almostmix/internal/randomwalk"
	"almostmix/internal/rngutil"
	"almostmix/internal/spectral"
)

func main() {
	n := flag.Int("n", 256, "number of nodes of the random-regular base graph")
	d := flag.Int("d", 8, "degree of the base graph")
	steps := flag.Int("steps", 60, "walk steps T")
	seed := flag.Uint64("seed", 1, "root random seed")
	workers := flag.Int("workers", 1, "simulator workers for the node-program walk (1 = sequential reference, 0 = one per CPU); results are identical for every value")
	trace := flag.String("trace", "", "write a per-round trace of every run to this file (.json for JSON, CSV otherwise)")
	metricsOut := flag.String("metrics", "", "write a host-side metrics snapshot to this file (.json for JSON, CSV otherwise)")
	pprofMode := flag.String("pprof", "", "capture a runtime profile: cpu, heap or mutex")
	pprofOut := flag.String("pprofout", "", "profile output path (default <mode>.pprof)")
	flag.Parse()

	sess, err := metrics.StartSession(*metricsOut, *pprofMode, *pprofOut)
	if err == nil {
		err = run(*n, *d, *steps, *seed, *workers, *trace, sess)
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "walks:", err)
		os.Exit(1)
	}
}

func run(n, d, steps int, seed uint64, workers int, trace string, sess *metrics.Session) error {
	var sink *congest.TraceSink
	if trace != "" || sess.Registry() != nil {
		sink = congest.NewTraceSink().WithMetrics(sess.Registry())
	}
	g := graph.RandomRegular(n, d, rngutil.NewRand(seed))
	logN := math.Log2(float64(n))
	t := harness.NewTable(
		fmt.Sprintf("E4 — Lemmas 2.4/2.5: parallel walks on rr(n=%d, d=%d), T=%d", n, d, steps),
		"k", "walks", "max tokens/node", "occupancy bound k·d+log n", "rounds/step", "phase bound k+log n")
	for _, k := range []int{1, 2, 4, 8, 16} {
		sources := randomwalk.SourcesPerNode(randomwalk.UniformCountTimesDegree(g, k))
		cfg := randomwalk.Config{
			Kind:  spectral.Lazy,
			Steps: steps,
		}
		if sink != nil {
			cfg.Probe = sink.Label(fmt.Sprintf("E4 k=%d", k))
		}
		stop := sess.Time(fmt.Sprintf("e4_analytic_k%d", k))
		res := randomwalk.Run(g, sources, cfg, rngutil.NewRand(seed+uint64(k)))
		stop()
		t.AddRow(k, len(sources),
			res.Stats.MaxTokensAtNode, float64(k*d)+logN,
			float64(res.Stats.Rounds)/float64(steps), float64(k)+logN)
	}
	fmt.Println(t)
	fmt.Println("Lemma 2.4 holds if max tokens/node is O(k·d + log n); Lemma 2.5 if")
	fmt.Println("rounds/step is O(k + log n). Constant factors near 1–4 are expected.")

	// Node-program tier: the same token load simulated message by message.
	// The makespan exceeds T by exactly the port-contention queueing that
	// Lemma 2.5's phases budget for.
	et := harness.NewTable(
		fmt.Sprintf("E4b — node-program walks on the CONGEST engine (workers=%d)", workers),
		"k", "tokens", "messages", "makespan rounds", "rounds/step")
	for _, k := range []int{1, 2, 4} {
		var probe congest.Probe
		if sink != nil {
			probe = sink.Label(fmt.Sprintf("E4b k=%d", k))
		}
		res, err := randomwalk.RunNetworkObserved(g, randomwalk.UniformCountTimesDegree(g, k),
			steps, rngutil.NewSource(seed+100+uint64(k)), workers, probe, sess.Registry())
		if err != nil {
			return err
		}
		total := 0
		for _, c := range res.ArrivedAt {
			total += c
		}
		et.AddRow(k, total, res.Messages, res.Rounds,
			float64(res.Rounds)/float64(steps))
	}
	fmt.Println(et)
	fmt.Println("Engine results are bit-identical for every -workers value; the flag")
	fmt.Println("changes wall-clock time only (see DESIGN.md §3).")

	if sink != nil && trace != "" {
		if err := sink.WriteFile(trace); err != nil {
			return err
		}
		fmt.Printf("wrote per-round trace (%d round records) to %s\n",
			len(sink.Rounds.Samples), trace)
	}
	return nil
}
