// Command hierarchy regenerates experiments E5 (the level-zero overlay
// G0) and E6 (Lemmas 3.1–3.3 and Figure 1: the hierarchical partition,
// per-level emulation costs, and portal completeness). It builds the full
// structure on an expander and prints the per-level tables plus a
// Figure-1-style rendering of the partition tree.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"almostmix/internal/cliutil"
	"almostmix/internal/congest"
	"almostmix/internal/decomp"
	"almostmix/internal/embed"
	"almostmix/internal/graph"
	"almostmix/internal/harness"
	"almostmix/internal/metrics"
	"almostmix/internal/rngutil"
	"almostmix/internal/spectral"
)

func main() {
	n := flag.Int("n", 128, "number of nodes of the random-regular base graph")
	d := flag.Int("d", 8, "degree of the base graph")
	beta := flag.Int("beta", 0, "partition branching factor (0 = paper formula)")
	leaf := flag.Int("leaf", 0, "leaf part size target (0 = default)")
	decompose := flag.Bool("decomp", false, "print E18's per-cluster expansion certificates instead: the expander decomposition of the worst-case graphs plus the configured rr graph")
	phi := flag.Float64("phi", 0.1, "conductance target for -decomp's expander decomposition, in (0,1)")
	seed := flag.Uint64("seed", 1, "root random seed")
	trace := flag.String("trace", "", "write the construction cost-ledger breakdown to this file (.json for JSON, CSV otherwise)")
	metricsOut := flag.String("metrics", "", "write a host-side metrics snapshot to this file (.json for JSON, CSV otherwise)")
	pprofMode := flag.String("pprof", "", "capture a runtime profile: cpu, heap or mutex")
	pprofOut := flag.String("pprofout", "", "profile output path (default <mode>.pprof)")
	flag.Parse()
	cliutil.Phi("phi", *phi)
	cliutil.Min("n", *n, 2)
	cliutil.Min("d", *d, 1)
	cliutil.Min("beta", *beta, 0)
	cliutil.Min("leaf", *leaf, 0)
	cliutil.Writable("trace", *trace)
	cliutil.Writable("metrics", *metricsOut)
	cliutil.Writable("pprofout", *pprofOut)

	sess, err := metrics.StartSession(*metricsOut, *pprofMode, *pprofOut)
	if err == nil {
		if *decompose {
			err = runDecomp(*n, *d, *phi, *seed, *trace, sess)
		} else {
			err = run(*n, *d, *beta, *leaf, *seed, *trace, sess)
		}
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hierarchy:", err)
		os.Exit(1)
	}
}

func run(n, d, beta, leaf int, seed uint64, trace string, sess *metrics.Session) error {
	g := graph.RandomRegular(n, d, rngutil.NewRand(seed))
	stopTau := sess.Time("mixing_time")
	tau, err := spectral.MixingTime(g, spectral.Lazy, 1_000_000)
	stopTau()
	if err != nil {
		return err
	}
	p := embed.DefaultParams()
	p.Beta = beta
	p.LeafSize = leaf
	p.TauMix = tau
	stopBuild := sess.Time("embed_build")
	h, err := embed.Build(g, p, rngutil.NewSource(seed+1))
	stopBuild()
	if err != nil {
		return err
	}

	fmt.Printf("base graph: rr(n=%d, d=%d), τ_mix=%d (exact), 2m=%d virtual nodes\n",
		n, d, tau, h.VM.Count())
	fmt.Printf("parameters: %+v\n\n", h.Resolved)

	// E5: G0 quality.
	t0 := harness.NewTable("E5 — level-zero overlay G0 (§3.1.1)",
		"quantity", "value")
	t0.AddRow("G0 edges (= 2m·degreeG0)", h.G0.Graph.M())
	t0.AddRow("min G0 degree", h.G0.Graph.MinDegree())
	t0.AddRow("max G0 degree", h.G0.Graph.MaxDegree())
	t0.AddRow("connected", h.G0.Graph.IsConnected())
	t0.AddRow("construction rounds (base)", h.G0.ConstructionRounds)
	t0.AddRow("one G0 round costs (base rounds)", h.G0.EmulationRounds)
	t0.AddRow("G0-round cost / τ_mix", float64(h.G0.EmulationRounds)/float64(tau))
	fmt.Println(t0)

	// E6: per-level table.
	t1 := harness.NewTable("E6 — hierarchy levels (Lemmas 3.1–3.3)",
		"level", "parts", "min|part|", "max|part|", "edges",
		"emu rounds (below)", "emu → G0", "emu → base", "portal gaps")
	for l := 1; l <= h.Levels; l++ {
		o := h.Overlay(l)
		sizes := o.PartSizes()
		minS, maxS := 1<<30, 0
		for _, s := range sizes {
			if s < minS {
				minS = s
			}
			if s > maxS {
				maxS = s
			}
		}
		t1.AddRow(l, len(sizes), minS, maxS, o.Graph.M(),
			o.EmulationRounds, h.EmulationToG0(l), h.EmulationToBase(l),
			h.PortalsAt(l).Missing)
	}
	fmt.Println(t1)
	fmt.Printf("total construction: %d base rounds (E6; Lemma 3.2's 2^O(√(log n·log log n)) quantity)\n\n",
		h.ConstructionRoundsBase())

	printFigure1(h)

	if trace != "" || sess.Registry() != nil {
		sink := congest.NewTraceSink().WithMetrics(sess.Registry())
		sink.Label(fmt.Sprintf("rr%dd%d", n, d)).AddCosts("construction", h.Costs)
		if trace != "" {
			if err := sink.WriteFile(trace); err != nil {
				return err
			}
			fmt.Printf("wrote construction cost ledger (%d rows) to %s\n", len(sink.Costs), trace)
		}
	}
	return nil
}

// runDecomp prints E18's structural half: the expander decomposition of
// each worst-case graph (and the configured rr control), one certificate
// table per graph. Every cluster carries its realized sweep-cut
// conductance φ_s — an upper bound by exhibition and, via Cheeger, a
// ≥ φ_s²/4 lower-bound certificate — plus the lazy-walk mixing-time
// estimate the per-cluster hierarchy is parameterized by.
func runDecomp(n, d int, phi float64, seed uint64, trace string, sess *metrics.Session) error {
	var sink *congest.TraceSink
	if trace != "" || sess.Registry() != nil {
		sink = congest.NewTraceSink().WithMetrics(sess.Registry())
	}
	instances := []struct {
		name string
		g    *graph.Graph
	}{
		{fmt.Sprintf("rr%dd%d", n, d), graph.RandomRegular(n, d, rngutil.NewRand(seed))},
		{"lollipop32+16", graph.Lollipop(32, 16)},
		{"barbell16+8", graph.Barbell(16, 8)},
	}
	if cl, err := graph.ConnectedChungLu(96, 2.5, 8, seed); err == nil {
		instances = append(instances, struct {
			name string
			g    *graph.Graph
		}{"chunglu96", cl})
	}
	for _, inst := range instances {
		stop := sess.Time("decomp_" + inst.name)
		dec, err := decomp.Decompose(inst.g, decomp.Params{Phi: phi})
		stop()
		if err != nil {
			return fmt.Errorf("%s: %w", inst.name, err)
		}
		t := harness.NewTable(
			fmt.Sprintf("E18 — %s: expander decomposition (φ=%g, %d clusters, %d/%d cross edges, %d sweep passes)",
				inst.name, phi, len(dec.Clusters), len(dec.CrossEdges), inst.g.M(), dec.SweepPasses),
			"cluster", "nodes", "edges", "boundary", "φ sweep", "φ lower bound", "λ2", "τ est", "reason")
		for _, c := range dec.Clusters {
			t.AddRow(c.Index, len(c.Nodes), c.Sub.G.M(), len(c.Sub.Boundary()),
				c.Cert.PhiSweep, c.Cert.PhiSweep*c.Cert.PhiSweep/4,
				c.Cert.Lambda2, c.Cert.MixingTime, c.Cert.Reason)
		}
		fmt.Println(t)
		if sink != nil {
			sink.Label(inst.name).AddCosts("decomp", dec.Costs)
		}
	}
	fmt.Println("Each certificate is checkable: φ sweep is realized by an actual cut,")
	fmt.Println("and Cheeger turns it into the φ²/4 conductance lower bound the")
	fmt.Println("per-cluster routing tier relies on. Cross edges stay within ε·m.")

	if sink != nil && trace != "" {
		if err := sink.WriteFile(trace); err != nil {
			return err
		}
		fmt.Printf("wrote decomposition cost ledgers (%d rows) to %s\n", len(sink.Costs), trace)
	}
	return nil
}

// printFigure1 renders the partition tree of Figure 1: each level's balls
// with their sizes, indented by depth (levels beyond the third and more
// than eight balls per node are elided for readability).
func printFigure1(h *embed.Hierarchy) {
	fmt.Println("## Figure 1 — hierarchical partition (ball sizes)")
	sizes := make([]map[int32]int, h.Levels+1)
	sizes[0] = h.G0.PartSizes()
	for l := 1; l <= h.Levels; l++ {
		sizes[l] = h.Overlay(l).PartSizes()
	}
	var render func(level int, part int32, indent string)
	render = func(level int, part int32, indent string) {
		size := sizes[level][part]
		if size == 0 {
			return
		}
		label := "G0"
		if level > 0 {
			label = fmt.Sprintf("ball %d", part)
		}
		fmt.Printf("%s%s: %d virtual nodes\n", indent, label, size)
		if level == h.Levels || level >= 3 {
			return
		}
		children := make([]int32, 0, h.Beta)
		for child := part * int32(h.Beta); child < (part+1)*int32(h.Beta); child++ {
			if sizes[level+1][child] > 0 {
				children = append(children, child)
			}
		}
		sort.Slice(children, func(a, b int) bool { return children[a] < children[b] })
		for i, child := range children {
			if i == 8 {
				fmt.Printf("%s  … (%d more balls)\n", indent, len(children)-8)
				break
			}
			render(level+1, child, indent+strings.Repeat(" ", 2))
		}
	}
	render(0, 0, "")
}
