// Command mst regenerates experiments E1 (Theorem 1.1: MST in
// τ_mix·2^O(√(log n·log log n)) rounds, against the flood-GHS and
// Garay–Kutten–Peleg baselines) and E9 (Lemma 4.1: the virtual-tree depth
// and degree invariants, via -audit).
package main

import (
	"flag"
	"fmt"
	"os"

	"almostmix/internal/cliutil"
	"almostmix/internal/congest"
	"almostmix/internal/decomp"
	"almostmix/internal/embed"
	"almostmix/internal/graph"
	"almostmix/internal/harness"
	"almostmix/internal/metrics"
	"almostmix/internal/mst"
	"almostmix/internal/mstbase"
	"almostmix/internal/rngutil"
	"almostmix/internal/spectral"
	"almostmix/internal/transport"
	"almostmix/internal/transport/workloads"
)

func main() {
	audit := flag.Bool("audit", false, "print the E9 per-iteration virtual-tree audit")
	ghsnet := flag.Bool("ghsnet", false, "also run the node-program GHS on the CONGEST simulator")
	quick := flag.Bool("quick", false, "run only the smallest expander instance (CI smoke)")
	decompose := flag.Bool("decomp", false, "run E18 instead: MST through the cluster-scoped tier (per-cluster MSFs + GHS stitch over the sparsified graph) on worst-case graphs, against the direct baselines")
	phi := flag.Float64("phi", 0.1, "conductance target for -decomp's expander decomposition, in (0,1)")
	seed := flag.Uint64("seed", 1, "root random seed")
	workers := flag.Int("workers", 1, "simulator workers for -ghsnet (1 = sequential reference, 0 = one per CPU); results are identical for every value")
	trace := flag.String("trace", "", "write a trace to this file (.json for JSON, CSV otherwise): per-round records of the -ghsnet runs plus the hierarchical MST's cost-ledger breakdown; implies -ghsnet")
	metricsOut := flag.String("metrics", "", "write a host-side metrics snapshot to this file (.json for JSON, CSV otherwise)")
	pprofMode := flag.String("pprof", "", "capture a runtime profile: cpu, heap or mutex")
	pprofOut := flag.String("pprofout", "", "profile output path (default <mode>.pprof)")
	faultSpec := flag.String("faults", "", `run the E15 GHS degradation sweep with this fault spec as its custom row, e.g. "drop=0.02" (see DESIGN.md §3); implies -ghsnet`)
	faultSeed := flag.Uint64("faultseed", 1, "fault-injection seed for -faults (independent of -seed)")
	attempts := flag.Int("attempts", 5, "max restarts per faulty GHS execution before declaring failure")
	transportName := flag.String("transport", "proc", "execution backend for -ghsnet: proc (in-process engines) or tcp (one OS process per shard over loopback TCP); results are identical; tcp implies -ghsnet")
	shards := flag.Int("shards", 2, "node processes for -transport=tcp")
	listen := flag.String("listen", "127.0.0.1:0", "coordinator listen address for -transport=tcp")
	tcpnode := flag.String("tcpnode", "", "path to the tcpnode binary for -transport=tcp (default: next to this binary)")
	tcptimeout := flag.Duration("tcptimeout", 0, "wire barrier deadline for -transport=tcp (0 = transport default, 60s)")
	obsOut := flag.String("obsout", "", "write the tcp run's merged observability document (flight recorders, wire tallies, barrier timeline, round skew) to this file on every exit path")
	flightRec := flag.Int("flightrec", 0, "flight-recorder ring capacity on coordinator and shards for -transport=tcp (0 = default)")
	flag.Parse()
	cliutil.Phi("phi", *phi)
	cliutil.Workers("workers", *workers)
	cliutil.Min("attempts", *attempts, 1)
	cliutil.FaultSpec("faults", *faultSpec)
	cliutil.Transport("transport", *transportName)
	cliutil.Min("shards", *shards, 1)
	cliutil.Listen("listen", *listen)
	cliutil.Min("flightrec", *flightRec, 0)
	cliutil.ObsOut("obsout", *obsOut, *transportName)
	cliutil.Writable("trace", *trace)
	cliutil.Writable("metrics", *metricsOut)
	cliutil.Writable("pprofout", *pprofOut)
	cliutil.Writable("obsout", *obsOut)
	tr, err := transport.NewBackend(*transportName, transport.BackendConfig{
		Workers:      *workers,
		Shards:       *shards,
		Listen:       *listen,
		NodeBin:      *tcpnode,
		Timeout:      *tcptimeout,
		ObsOut:       *obsOut,
		FlightRecCap: *flightRec,
	})
	if err != nil {
		cliutil.Fail("%v", err)
	}
	sess, err := metrics.StartSession(*metricsOut, *pprofMode, *pprofOut)
	if err == nil {
		if *decompose {
			err = runE18MST(*quick, *phi, *seed, *trace, sess)
		} else {
			err = run(*audit, *ghsnet || *transportName == "tcp", *quick, *seed, *workers, *trace, *faultSpec, *faultSeed, *attempts, tr, sess)
		}
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mst:", err)
		os.Exit(1)
	}
}

func run(audit, ghsnet, quick bool, seed uint64, workers int, trace, faultSpec string, faultSeed uint64, attempts int, tr transport.Transport, sess *metrics.Session) error {
	var sink *congest.TraceSink
	if trace != "" || sess.Registry() != nil {
		sink = congest.NewTraceSink().WithMetrics(sess.Registry())
		ghsnet = true
	}
	if faultSpec != "" {
		ghsnet = true
	}
	// Each instance is described by its replayable spec and built through
	// the same BuildGraph a TCP shard process uses, so every backend —
	// and every process of a multi-process run — holds the identical
	// weighted graph.
	mkSpec := func(kind string, n, d int, gseed uint64) transport.Spec {
		return transport.Spec{
			Workload: "ghs", Graph: kind, N: n, D: d,
			Seed: gseed, SrcSeed: seed + 30, WeightSeed: seed + 7,
		}
	}
	instances := []struct {
		name string
		spec transport.Spec
		g    *graph.Graph
	}{
		{name: "rr64d8", spec: mkSpec("rr", 64, 8, seed)},
		{name: "rr128d8", spec: mkSpec("rr", 128, 8, seed+1)},
		{name: "rr256d8", spec: mkSpec("rr", 256, 8, seed+2)},
		// Poor-expansion contrast rows: τ_mix is the dominating factor.
		{name: "ring64", spec: mkSpec("ring", 64, 0, 0)},
		{name: "lollipop32+12", spec: mkSpec("lollipop", 32, 12, 0)},
	}
	if quick {
		instances = instances[:1]
	}
	for i := range instances {
		g, err := transport.BuildGraph(instances[i].spec)
		if err != nil {
			return err
		}
		instances[i].g = g
	}
	t := harness.NewTable("E1 — Theorem 1.1: MST round counts",
		"graph", "n", "τ_mix", "hier alg", "hier +build", "GHS", "KP", "weights agree")
	var ns, hierR, ghsR, kpR []float64
	for _, inst := range instances {
		g := inst.g
		tau, err := spectral.MixingTime(g, spectral.Lazy, 5_000_000)
		if err != nil {
			return fmt.Errorf("%s: %w", inst.name, err)
		}
		p := embed.DefaultParams()
		p.TauMix = tau
		stopBuild := sess.Time("embed_build_" + inst.name)
		h, err := embed.Build(g, p, rngutil.NewSource(seed+10))
		stopBuild()
		if err != nil {
			return fmt.Errorf("%s: %w", inst.name, err)
		}
		stopMST := sess.Time("mst_run_" + inst.name)
		res, err := mst.Run(h, rngutil.NewSource(seed+20))
		stopMST()
		if err != nil {
			return fmt.Errorf("%s: %w", inst.name, err)
		}
		if sink != nil {
			sink.Label(inst.name).AddCosts("hierarchical", res.Costs)
		}
		ghs, err := mstbase.GHS(g)
		if err != nil {
			return err
		}
		kp, err := mstbase.KP(g)
		if err != nil {
			return err
		}
		_, want := mst.Kruskal(g)
		agree := res.Weight == want && ghs.Weight == want && kp.Weight == want
		t.AddRow(inst.name, g.N(), tau, res.AlgorithmRounds, res.Rounds,
			ghs.Rounds, kp.Rounds, agree)
		if inst.name[0] == 'r' && inst.name[1] == 'r' {
			ns = append(ns, float64(g.N()))
			hierR = append(hierR, float64(res.AlgorithmRounds))
			ghsR = append(ghsR, float64(ghs.Rounds))
			kpR = append(kpR, float64(kp.Rounds))
		}

		if audit && g.N() == 128 && inst.name == "rr128d8" {
			printAudit(res)
		}
	}
	fmt.Println(t)
	hierS, hierN := harness.LogLogSlope(ns, hierR)
	ghsS, ghsN := harness.LogLogSlope(ns, ghsR)
	kpS, kpN := harness.LogLogSlope(ns, kpR)
	fmt.Printf("expander scaling slopes (log-log, rounds vs n): hier %.2f (%d pts), GHS %.2f (%d pts), KP %.2f (%d pts)\n",
		hierS, hierN, ghsS, ghsN, kpS, kpN)
	fmt.Println("Theorem 1.1's shape: the hierarchical MST's cost is governed by τ_mix")
	fmt.Println("and polylogs (flat-ish slope), not by n or D; its constants dominate at")
	fmt.Println("laptop n, so the observed crossover against Õ(D+√n) is extrapolated.")

	if ghsnet {
		nt := harness.NewTable(
			fmt.Sprintf("E1b — node-program GHS on the CONGEST simulator (transport=%s, workers=%d)", tr.Name(), workers),
			"graph", "n", "rounds", "iterations", "weight agrees")
		for _, inst := range instances {
			var probe congest.Probe
			if sink != nil {
				probe = sink.Label(inst.name)
			}
			res, err := tr.Run(inst.spec, transport.Options{Probe: probe, Metrics: sess.Registry()})
			if err != nil {
				return err
			}
			out := res.Output.(workloads.MSTOutput)
			window := 3*inst.g.N() + 6
			_, want := mst.Kruskal(inst.g)
			nt.AddRow(inst.name, inst.g.N(), res.Rounds, (res.Rounds+window-1)/window, out.Weight == want)
		}
		fmt.Println(nt)
		fmt.Println("Round counts are engine- and transport-independent: -workers and")
		fmt.Println("-transport change wall-clock only (see DESIGN.md §3).")

		if faultSpec != "" {
			if err := runE15MST(instances[0].g, instances[0].spec, seed, faultSpec, faultSeed, attempts, tr, sink, sess); err != nil {
				return err
			}
		}
	}
	if sink != nil && trace != "" {
		if err := sink.WriteFile(trace); err != nil {
			return err
		}
		fmt.Printf("wrote per-round trace (%d round records, %d cost rows) to %s\n",
			len(sink.Rounds.Samples), len(sink.Costs), trace)
	}
	return nil
}

// runE18MST regenerates the MST half of experiment E18: each worst-case
// graph is decomposed into expander clusters, every cluster computes its
// minimum spanning forest through its own hierarchy (or directly, for
// tiny tiers), and a GHS pass over the sparsified graph — cluster-tree
// edges plus all cross edges — stitches the global MST. The cycle
// property makes the result exact: with distinct weights the edge set
// equals Kruskal's.
func runE18MST(quick bool, phi float64, seed uint64, trace string, sess *metrics.Session) error {
	var sink *congest.TraceSink
	if trace != "" || sess.Registry() != nil {
		sink = congest.NewTraceSink().WithMetrics(sess.Registry())
	}
	instances := []struct {
		name string
		g    *graph.Graph
	}{
		{"rr64d8", graph.RandomRegular(64, 8, rngutil.NewRand(seed))},
		{"lollipop32+16", graph.Lollipop(32, 16)},
		{"barbell16+8", graph.Barbell(16, 8)},
	}
	if !quick {
		cl, err := graph.ConnectedChungLu(96, 2.5, 8, seed)
		if err != nil {
			return err
		}
		instances = append(instances, struct {
			name string
			g    *graph.Graph
		}{"chunglu96", cl})
	} else {
		instances = instances[:1]
	}
	t := harness.NewTable(fmt.Sprintf("E18 — cluster-scoped MST (φ=%g)", phi),
		"graph", "n", "clusters", "cross edges", "cluster rounds", "stitch rounds",
		"total", "GHS", "weight = Kruskal")
	for _, inst := range instances {
		g := inst.g
		g.AssignDistinctRandomWeights(rngutil.NewRand(seed + 7))
		dec, err := decomp.Decompose(g, decomp.Params{Phi: phi})
		if err != nil {
			return fmt.Errorf("%s: %w", inst.name, err)
		}
		stopBuild := sess.Time("decomp_build_" + inst.name)
		pe, err := embed.BuildPartitioned(dec, embed.DefaultParams(), rngutil.NewSource(seed+10))
		stopBuild()
		if err != nil {
			return fmt.Errorf("%s: %w", inst.name, err)
		}
		stopMST := sess.Time("decomp_mst_" + inst.name)
		res, err := mst.RunPartitioned(pe, rngutil.NewSource(seed+20))
		stopMST()
		if err != nil {
			return fmt.Errorf("%s: %w", inst.name, err)
		}
		ghs, err := mstbase.GHS(g)
		if err != nil {
			return err
		}
		_, want := mst.Kruskal(g)
		if sink != nil {
			sink.Label(inst.name).AddCosts("decomp", dec.Costs)
			sink.AddCosts("decomp-build", pe.Costs)
			sink.AddCosts("decomp-mst", res.Costs)
		}
		t.AddRow(inst.name, g.N(), len(dec.Clusters), len(dec.CrossEdges),
			res.ClusterRounds, res.StitchRounds, res.Rounds, ghs.Rounds,
			res.Weight == want)
	}
	fmt.Println(t)
	fmt.Println("Per-cluster MSFs run in parallel (cluster rounds = the slowest cluster);")
	fmt.Println("the stitch is a GHS over cluster trees plus cross edges only. The cycle")
	fmt.Println("property guarantees the stitched tree is the exact global MST.")

	if sink != nil && trace != "" {
		if err := sink.WriteFile(trace); err != nil {
			return err
		}
		fmt.Printf("wrote per-cluster certificate and stitched cost rows (%d) to %s\n",
			len(sink.Costs), trace)
	}
	return nil
}

// runE15MST measures GHS degradation under injected faults on the first
// (smallest) expander instance: a drop-probability sweep plus the user's
// custom spec, each run with in-protocol window retries and up to
// `attempts` whole-computation restarts. Success means the exact MST was
// recovered; rounds and attempts grow with the fault rate. The sweep
// runs on the selected transport — over tcp each restart executes as
// real shard processes fed per-round fate windows, with identical
// results (E20).
func runE15MST(g *graph.Graph, spec transport.Spec, seed uint64,
	faultSpec string, faultSeed uint64, attempts int, tr transport.Transport,
	sink *congest.TraceSink, sess *metrics.Session) error {
	specs := []string{"", "drop=0.005", "drop=0.01", "drop=0.02"}
	custom := true
	for _, s := range specs {
		if s == faultSpec {
			custom = false
		}
	}
	if custom {
		specs = append(specs, faultSpec)
	}
	_, want := mst.Kruskal(g)
	ft := harness.NewTable(
		fmt.Sprintf("E15 — GHS degradation under faults (n=%d, attempts<=%d, faultseed=%d)",
			g.N(), attempts, faultSeed),
		"spec", "attempts", "rounds", "dropped", "delayed", "crash rounds", "recovered", "weight agrees")
	for _, fs := range specs {
		label := fs
		if label == "" {
			label = "(none)"
		}
		var probe congest.Probe
		if sink != nil {
			probe = sink.Label("E15 " + label)
		}
		fspec := spec
		fspec.SrcSeed = seed + 40
		fspec.FaultSpec = fs
		fspec.FaultSeed = faultSeed
		stop := sess.Time("e15_ghs_" + label)
		res, err := workloads.RunGHSFaults(tr, fspec, transport.Options{Probe: probe, Metrics: sess.Registry()}, attempts)
		stop()
		if err != nil {
			return err
		}
		ft.AddRow(label, res.Attempts, res.Rounds,
			res.Faults.Dropped, res.Faults.Delayed, res.Faults.Crashed,
			res.Recovered, res.Recovered && res.Weight == want)
	}
	fmt.Println(ft)
	fmt.Println("Faulted windows stall and retry instead of committing corrupt merges;")
	fmt.Println("an attempt that cannot converge restarts from scratch. Success rate and")
	fmt.Println("rounds-to-completion degrade with the drop rate; results are")
	fmt.Println("engine- and worker-independent.")
	return nil
}

func printAudit(res *mst.Result) {
	t := harness.NewTable("E9 — Lemma 4.1 audit (rr128d8)",
		"iter", "fragments", "merges", "tree depth", "balance waves",
		"step rounds", "iter rounds", "max inDeg/d")
	for i, it := range res.Iterations {
		t.AddRow(i, it.Fragments, it.Merges, it.TreeDepth, it.BalanceWaves,
			it.StepRounds, it.Rounds, it.MaxInDegRatio)
	}
	fmt.Println(t)
	fmt.Printf("max tree depth ever: %d; max inDeg/d ratio ever: %.2f\n\n",
		res.MaxTreeDepth, res.MaxInDegRatio)
}
