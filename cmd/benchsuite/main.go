// Command benchsuite runs the repository's standard benchmark set — the
// CONGEST engine (bare and traced), the embedded-tier route and MST, and
// two hierarchy ablations — under warmup/repetition control and writes a
// schema-versioned BENCH_<git-sha>.json: ns/op, allocs/op, the
// benchmarks' custom metrics (rounds/sec, base-rounds, …) and one
// host-metrics registry snapshot per case from an extra instrumented
// pass. The files start the perf trajectory: successive commits produce
// comparable BENCH_*.json artifacts (see `make bench-json` and CI).
//
// The timed loops run through testing.Benchmark, so ns/op and allocs/op
// mean exactly what `go test -bench` reports; the instrumented pass is
// untimed and never contaminates them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strings"
	"testing"
	"time"

	"almostmix/internal/cliutil"
	"almostmix/internal/congest"
	"almostmix/internal/decomp"
	"almostmix/internal/embed"
	"almostmix/internal/faults"
	"almostmix/internal/graph"
	"almostmix/internal/metrics"
	"almostmix/internal/mst"
	"almostmix/internal/mstbase"
	"almostmix/internal/randomwalk"
	"almostmix/internal/rngutil"
	"almostmix/internal/route"
	"almostmix/internal/spectral"
	"almostmix/internal/transport"
	_ "almostmix/internal/transport/workloads"
)

// Schema identifies the benchsuite output format.
const Schema = "almostmix-bench/v1"

// Document is the top-level BENCH_<sha>.json structure.
type Document struct {
	Schema     string    `json:"schema"`
	GitSHA     string    `json:"git_sha"`
	GoVersion  string    `json:"go_version"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Quick      bool      `json:"quick"`
	BenchTime  string    `json:"benchtime"`
	Warmup     int       `json:"warmup"`
	Reps       int       `json:"reps"`
	Cases      []*Result `json:"cases"`
	// SteadyAllocs records the -gate measurement: steady-state heap
	// allocations per round for each engine configuration (see
	// congest.MeasureSteadyAllocs). The gate fails the run when any
	// entry rounds to a nonzero integer.
	SteadyAllocs map[string]float64 `json:"steady_allocs_per_round,omitempty"`
}

// Result is one benchmark case: the minimum over reps (the conventional
// stable estimator) plus every rep so trajectory tooling can judge noise.
type Result struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	RepsNsPerOp []float64          `json:"reps_ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
	Metrics     *metrics.Snapshot  `json:"metrics,omitempty"`
}

// benchCase couples the timed benchmark body with an untimed instrumented
// pass that fills a registry for the embedded snapshot.
type benchCase struct {
	name    string
	bench   func(b *testing.B)
	observe func(reg *metrics.Registry) error
}

func main() {
	out := flag.String("out", "", "output path (default BENCH_<sha>.json)")
	quick := flag.Bool("quick", false, "CI scale: small fixtures and -benchtime 1x by default")
	gate := flag.Bool("gate", false, "measure steady-state allocs/round on both engines and fail unless integer-zero")
	benchtime := flag.String("benchtime", "", `per-rep benchmark time, e.g. "1s" or "5x" (default "1s"; "1x" with -quick)`)
	warmup := flag.Int("warmup", 1, "untimed warmup runs per case before the timed reps")
	reps := flag.Int("reps", 3, "timed repetitions per case (minimum is reported)")
	runPat := flag.String("run", "", "regexp selecting case names (default all)")
	sha := flag.String("sha", "", "commit id to stamp into the filename and document (default git rev-parse --short HEAD)")
	testing.Init()
	flag.Parse()
	cliutil.Min("warmup", *warmup, 0)
	cliutil.Min("reps", *reps, 1)
	cliutil.Writable("out", *out)

	if err := run(*out, *quick, *gate, *benchtime, *warmup, *reps, *runPat, *sha); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
}

func run(out string, quick, gate bool, benchtime string, warmup, reps int, runPat, sha string) error {
	if reps < 1 {
		return fmt.Errorf("-reps must be >= 1 (got %d)", reps)
	}
	if benchtime == "" {
		benchtime = "1s"
		if quick {
			benchtime = "1x"
		}
	}
	filter := regexp.MustCompile("")
	if runPat != "" {
		var err error
		if filter, err = regexp.Compile(runPat); err != nil {
			return fmt.Errorf("-run: %w", err)
		}
	}
	if sha == "" {
		sha = gitSHA()
	}
	if out == "" {
		out = fmt.Sprintf("BENCH_%s.json", sha)
	}

	doc := &Document{
		Schema:     Schema,
		GitSHA:     sha,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		BenchTime:  benchtime,
		Warmup:     warmup,
		Reps:       reps,
	}

	cases, err := buildCases(quick)
	if err != nil {
		return err
	}
	for _, c := range cases {
		if !filter.MatchString(c.name) {
			continue
		}
		res, err := runCase(c, benchtime, warmup, reps)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		doc.Cases = append(doc.Cases, res)
		fmt.Printf("%-28s %12.0f ns/op  %9d allocs/op  (%d reps)\n",
			c.name, res.NsPerOp, res.AllocsPerOp, reps)
	}
	if len(doc.Cases) == 0 {
		return fmt.Errorf("-run %q matched no cases", runPat)
	}
	gateErr := error(nil)
	if gate {
		gateErr = runAllocGate(doc)
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", out, err)
	}
	fmt.Printf("wrote %d cases to %s\n", len(doc.Cases), out)
	// The document is written even on gate failure, so the offending
	// measurement survives as an artifact.
	return gateErr
}

// runAllocGate measures steady-state allocations per round on both
// engines (congest.MeasureSteadyAllocs: R-vs-2R differential, minimum
// over trials) and fails unless every configuration is integer-zero.
// The 0.5 threshold matches congest's alloc_test.go: residual
// hundredths are runtime scheduler/GC noise, while any genuine hot-path
// regression costs at least one allocation per round.
func runAllocGate(doc *Document) error {
	const (
		gateNodes  = 20_000
		gateRounds = 32
		noiseFloor = 0.5
	)
	g := graph.RingLattice(gateNodes, 4)
	doc.SteadyAllocs = make(map[string]float64)
	var failures []string
	// The telemetry configurations attach a live metrics registry (shared
	// across the differential runs so instrument resolution cancels): the
	// zero-alloc contract must hold with host telemetry ON, not just with
	// the layer compiled to its nil fast path.
	reg := metrics.New()
	for _, cfg := range []struct {
		name      string
		workers   int
		telemetry bool
	}{
		{"sequential", 1, false},
		{"workers=8", 8, false},
		{"sequential/telemetry", 1, true},
		{"workers=8/telemetry", 8, true},
	} {
		cfg := cfg
		per := congest.MeasureSteadyAllocs(func() *congest.Network {
			net := congest.NewUniformNetwork(g, func(int) congest.Program {
				return congest.NewTicker(1 << 30)
			}, rngutil.NewSource(9)).SetWorkers(cfg.workers)
			if cfg.telemetry {
				net.SetMetrics(reg)
			}
			return net
		}, gateRounds)
		doc.SteadyAllocs[cfg.name] = per
		status := "ok"
		if per >= noiseFloor {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %.3f allocs/round", cfg.name, per))
		}
		fmt.Printf("alloc-gate %-22s %8.3f allocs/round  %s\n", cfg.name, per, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("alloc gate: steady-state rounds allocate (%s), want integer-zero", strings.Join(failures, "; "))
	}
	return nil
}

// runCase executes warmup + reps timed runs and one instrumented pass.
func runCase(c *benchCase, benchtime string, warmup, reps int) (*Result, error) {
	// Warmups run at one iteration regardless of the configured benchtime:
	// their job is to populate fixtures and steady-state the allocator.
	if err := flag.Set("test.benchtime", "1x"); err != nil {
		return nil, err
	}
	for i := 0; i < warmup; i++ {
		if r := testing.Benchmark(c.bench); r.N == 0 {
			return nil, fmt.Errorf("benchmark failed during warmup")
		}
	}
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return nil, err
	}
	res := &Result{Name: c.name}
	for i := 0; i < reps; i++ {
		r := testing.Benchmark(c.bench)
		if r.N == 0 {
			return nil, fmt.Errorf("benchmark failed")
		}
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		res.RepsNsPerOp = append(res.RepsNsPerOp, ns)
		if i == 0 || ns < res.NsPerOp {
			res.NsPerOp = ns
			res.AllocsPerOp = r.AllocsPerOp()
			res.BytesPerOp = r.AllocedBytesPerOp()
			res.Extra = r.Extra
		}
	}
	if c.observe != nil {
		reg := metrics.New()
		if err := c.observe(reg); err != nil {
			return nil, fmt.Errorf("instrumented pass: %w", err)
		}
		res.Metrics = reg.Snapshot()
	}
	return res, nil
}

// buildCases assembles the standard set. Fixtures are constructed here,
// outside every timed loop, and shared by the reps of their case.
func buildCases(quick bool) ([]*benchCase, error) {
	engineN, hierN, ablN := 2048, 128, 96
	if quick {
		engineN, hierN, ablN = 256, 64, 48
	}
	const steps = 20

	eg := graph.RandomRegular(engineN, 8, rngutil.NewRand(131))
	counts := randomwalk.UniformCountTimesDegree(eg, 1)

	hg := graph.RandomRegular(hierN, 8, rngutil.NewRand(21))
	hg.AssignDistinctRandomWeights(rngutil.NewRand(22))
	tau, err := spectral.MixingTime(hg, spectral.Lazy, 1_000_000)
	if err != nil {
		return nil, err
	}
	hp := embed.DefaultParams()
	hp.TauMix = tau
	h, err := embed.Build(hg, hp, rngutil.NewSource(23))
	if err != nil {
		return nil, err
	}
	reqs := route.RandomPermutation(hg, rngutil.NewRand(31))

	ag := graph.RandomRegular(ablN, 8, rngutil.NewRand(77))
	atau, err := spectral.MixingTime(ag, spectral.Lazy, 1_000_000)
	if err != nil {
		return nil, err
	}

	var cases []*benchCase

	// The engine cases mirror BenchmarkCongestEngine{,Traced} in
	// bench_engine_test.go: same workload, same rounds/sec metric.
	for _, workers := range []int{1, 8} {
		workers := workers
		name := "sequential"
		if workers != 1 {
			name = fmt.Sprintf("workers=%d", workers)
		}
		cases = append(cases,
			&benchCase{
				name: "engine/" + name,
				bench: func(b *testing.B) {
					b.ReportAllocs()
					var rounds int
					for i := 0; i < b.N; i++ {
						res, err := randomwalk.RunNetwork(eg, counts, steps,
							rngutil.NewSource(131), workers)
						if err != nil {
							b.Fatal(err)
						}
						rounds = res.Rounds
					}
					b.ReportMetric(float64(rounds)*float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
				},
				observe: func(reg *metrics.Registry) error {
					_, err := randomwalk.RunNetworkObserved(eg, counts, steps,
						rngutil.NewSource(131), workers, nil, reg)
					return err
				},
			},
			&benchCase{
				name: "engine-traced/" + name,
				bench: func(b *testing.B) {
					b.ReportAllocs()
					var rounds int
					for i := 0; i < b.N; i++ {
						sink := congest.NewTraceSink()
						res, err := randomwalk.RunNetworkProbe(eg, counts, steps,
							rngutil.NewSource(131), workers, sink)
						if err != nil {
							b.Fatal(err)
						}
						rounds = res.Rounds
					}
					b.ReportMetric(float64(rounds)*float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
				},
				observe: func(reg *metrics.Registry) error {
					sink := congest.NewTraceSink().WithMetrics(reg)
					_, err := randomwalk.RunNetworkObserved(eg, counts, steps,
						rngutil.NewSource(131), workers, sink, reg)
					return err
				},
			})
	}

	// Engine scale sweep mirroring BenchmarkCongestEngineScale: ticker
	// broadcasts on constant-degree ring lattices, so the ns/msg extra
	// metric isolates the memory layout and must stay essentially flat
	// in n (E16). Quick mode stops at 1e5; the full suite adds the
	// million-node point (~1 GB of fixtures, seconds per rep).
	scaleSizes := []int{10_000, 100_000}
	if !quick {
		scaleSizes = append(scaleSizes, 1_000_000)
	}
	const scaleRounds = 12
	for _, n := range scaleSizes {
		n := n
		sg := graph.RingLattice(n, 4)
		cases = append(cases, &benchCase{
			name: fmt.Sprintf("engine-scale/n=%d", n),
			bench: func(b *testing.B) {
				b.ReportAllocs()
				msgs := 0
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					net := congest.NewUniformNetwork(sg, func(int) congest.Program {
						return congest.NewTicker(scaleRounds)
					}, rngutil.NewSource(7))
					// Construction just allocated ~n-sized fixtures; a GC
					// cycle paced by that growth can otherwise land inside
					// the timed window and charge its O(1) sudog/stack
					// bookkeeping to the run, which must read exactly 0.
					runtime.GC()
					b.StartTimer()
					if _, err := net.Run(scaleRounds + 2); err != nil {
						b.Fatal(err)
					}
					msgs += net.Messages()
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(msgs), "ns/msg")
			},
		})
	}

	// Embedded-tier cases mirror BenchmarkEmbedded{Route,MST}; their
	// instrumented pass pairs the cost-ledger spans with wall clock the
	// way -trace + -metrics do in the cmd binaries.
	cases = append(cases,
		&benchCase{
			name: "embedded/route",
			bench: func(b *testing.B) {
				b.ReportAllocs()
				var rounds int
				for i := 0; i < b.N; i++ {
					rep, err := route.Route(h, reqs, rngutil.NewSource(32))
					if err != nil {
						b.Fatal(err)
					}
					rounds = rep.BaseRounds
				}
				b.ReportMetric(float64(rounds), "base-rounds")
			},
			observe: func(reg *metrics.Registry) error {
				rep, err := route.Route(h, reqs, rngutil.NewSource(32))
				if err != nil {
					return err
				}
				congest.NewTraceSink().WithMetrics(reg).AddCosts("route", rep.Costs)
				return nil
			},
		},
		&benchCase{
			name: "embedded/mst",
			bench: func(b *testing.B) {
				b.ReportAllocs()
				var rounds int
				for i := 0; i < b.N; i++ {
					res, err := mst.Run(h, rngutil.NewSource(uint64(300+i)))
					if err != nil {
						b.Fatal(err)
					}
					rounds = res.Rounds
				}
				b.ReportMetric(float64(rounds), "total-rounds")
			},
			observe: func(reg *metrics.Registry) error {
				res, err := mst.Run(h, rngutil.NewSource(300))
				if err != nil {
					return err
				}
				congest.NewTraceSink().WithMetrics(reg).AddCosts("mst", res.Costs)
				return nil
			},
		},
		&benchCase{
			name: "embedded/ghs-net",
			bench: func(b *testing.B) {
				b.ReportAllocs()
				var rounds int
				for i := 0; i < b.N; i++ {
					res, err := mstbase.GHSNetwork(hg, rngutil.NewSource(33))
					if err != nil {
						b.Fatal(err)
					}
					rounds = res.Rounds
				}
				b.ReportMetric(float64(rounds), "rounds")
			},
			observe: func(reg *metrics.Registry) error {
				_, err := mstbase.GHSNetworkObserved(hg, rngutil.NewSource(33), 1, nil, reg)
				return err
			},
		})

	// Cluster-scoped tier: expander decomposition plus per-cluster
	// hierarchy construction on a poor-expansion graph (the input class
	// the decomposition exists for). The extra metric is the tier's
	// construction cost in base rounds (max over clusters).
	dg := graph.Barbell(16, 8)
	if !quick {
		dg = graph.Barbell(24, 12)
	}
	cases = append(cases, &benchCase{
		name: "decomp/build",
		bench: func(b *testing.B) {
			b.ReportAllocs()
			var rounds int
			for i := 0; i < b.N; i++ {
				dec, err := decomp.Decompose(dg, decomp.Params{})
				if err != nil {
					b.Fatal(err)
				}
				pe, err := embed.BuildPartitioned(dec, embed.DefaultParams(), rngutil.NewSource(91))
				if err != nil {
					b.Fatal(err)
				}
				rounds = pe.ConstructionRoundsBase()
			}
			b.ReportMetric(float64(rounds), "construction-rounds")
		},
		observe: func(reg *metrics.Registry) error {
			dec, err := decomp.Decompose(dg, decomp.Params{})
			if err != nil {
				return err
			}
			pe, err := embed.BuildPartitioned(dec, embed.DefaultParams(), rngutil.NewSource(91))
			if err != nil {
				return err
			}
			sink := congest.NewTraceSink().WithMetrics(reg)
			sink.AddCosts("decomp", dec.Costs)
			sink.AddCosts("decomp-build", pe.Costs)
			return nil
		},
	})

	// Two ablation points from bench_ablation_test.go's sweeps, kept small
	// so the suite stays runnable per-commit.
	for _, abl := range []struct {
		name   string
		mutate func(*embed.Params)
	}{
		{"ablation/beta=4", func(p *embed.Params) { p.Beta = 4; p.LeafSize = 12 }},
		{"ablation/walklen=2", func(p *embed.Params) { p.WalkLenFactor = 2 }},
	} {
		abl := abl
		p := embed.DefaultParams()
		p.TauMix = atau
		abl.mutate(&p)
		cases = append(cases, &benchCase{
			name: abl.name,
			bench: func(b *testing.B) {
				b.ReportAllocs()
				var rounds int
				for i := 0; i < b.N; i++ {
					ah, err := embed.Build(ag, p, rngutil.NewSource(78))
					if err != nil {
						b.Fatal(err)
					}
					rep, err := route.Route(ah, route.RandomPermutation(ag, rngutil.NewRand(79)),
						rngutil.NewSource(uint64(80+i)))
					if err != nil {
						b.Fatal(err)
					}
					rounds = rep.BaseRounds
				}
				b.ReportMetric(float64(rounds), "route-rounds")
			},
			observe: func(reg *metrics.Registry) error {
				ah, err := embed.Build(ag, p, rngutil.NewSource(78))
				if err != nil {
					return err
				}
				sink := congest.NewTraceSink().WithMetrics(reg)
				sink.AddCosts("construction", ah.Costs)
				rep, err := route.Route(ah, route.RandomPermutation(ag, rngutil.NewRand(79)),
					rngutil.NewSource(80))
				if err != nil {
					return err
				}
				sink.AddCosts("route", rep.Costs)
				return nil
			},
		})
	}

	// Transport-tcp case: the walks workload through the full wire
	// protocol over loopback, shards as goroutines so the suite needs no
	// tcpnode binary. The extra metric is the p99 cross-shard step-barrier
	// skew from the coordinator's telemetry histograms — the number the
	// obs tier exists to attribute (cmd/obsreport joins it back).
	tn, tsteps := 512, 12
	if quick {
		tn, tsteps = 128, 6
	}
	tspec := transport.Spec{Workload: "walks", Graph: "rr", N: tn, D: 4, K: 1,
		Steps: tsteps, Seed: 131, SrcSeed: 231}
	newTCP := func() transport.TCP {
		return transport.TCP{
			Shards:  2,
			Timeout: 60 * time.Second,
			Spawn: func(shard int, addr string) (transport.ShardHandle, error) {
				done := make(chan error, 1)
				go func() {
					conn, err := transport.DialShard(addr, 10*time.Second)
					if err != nil {
						done <- err
						return
					}
					done <- transport.ServeShard(conn, shard, transport.ShardConfig{})
				}()
				return transport.ShardHandle{Wait: func() error { return <-done }, Kill: func() {}}, nil
			},
		}
	}
	cases = append(cases, &benchCase{
		name: "transport-tcp/shards=2",
		bench: func(b *testing.B) {
			b.ReportAllocs()
			reg := metrics.New()
			tcp := newTCP()
			for i := 0; i < b.N; i++ {
				if _, err := tcp.Run(tspec, transport.Options{Metrics: reg}); err != nil {
					b.Fatal(err)
				}
			}
			if h := reg.Snapshot().Histogram("tcpnet_round_skew_ns"); h != nil && h.Count > 0 {
				b.ReportMetric(float64(h.Quantile(0.99)), "round_skew_p99_ns")
			}
		},
		observe: func(reg *metrics.Registry) error {
			_, err := newTCP().Run(tspec, transport.Options{Metrics: reg})
			return err
		},
	})

	// Faulty transport-tcp case: the same wire protocol with a fault plan
	// riding it — FATES windows shipped per round, deliverFaulty on every
	// shard replica, per-shard counts harvested back in TELEMETRY. The
	// merged fault counters land in the BENCH json as extra metrics, so
	// the trajectory records the fate-table handshake's cost next to the
	// fault-free wire baseline. Counts are deterministic in (spec, seed).
	fspec := tspec
	fspec.Workload = "walks-faults"
	fspec.FaultSpec = "drop=0.05,dup=0.05,delay=0.1:2"
	fspec.FaultSeed = 7
	cases = append(cases, &benchCase{
		name: "transport-tcp-faults/shards=2",
		bench: func(b *testing.B) {
			b.ReportAllocs()
			var fc faults.Counts
			tcp := newTCP()
			for i := 0; i < b.N; i++ {
				res, err := tcp.Run(fspec, transport.Options{})
				if err != nil {
					b.Fatal(err)
				}
				fc = res.Faults
			}
			b.ReportMetric(float64(fc.Dropped), "faults-dropped")
			b.ReportMetric(float64(fc.Delayed), "faults-delayed")
			b.ReportMetric(float64(fc.Duplicated), "faults-duplicated")
		},
		observe: func(reg *metrics.Registry) error {
			_, err := newTCP().Run(fspec, transport.Options{Metrics: reg})
			return err
		},
	})
	return cases, nil
}

// gitSHA resolves the short commit id, or "unknown" outside a checkout.
func gitSHA() string {
	ctxOut, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(ctxOut))
}
