// Command obsreport joins the TCP transport's observability artifacts
// into one per-round attribution report: the -obsout document (required
// — coordinator + shard flight recorders, wire tallies, barrier
// timeline, round skew), an optional -metrics snapshot, and an optional
// BENCH_*.json from cmd/benchsuite. The output answers "where did the
// wall time of this distributed run go, and if it died, which shard is
// guilty" — per round, per phase, per shard.
//
// The report is plain text on stdout (or -out); all inputs are the
// schema-versioned JSON the run itself wrote, so the tool works on a
// dump scraped off a dead machine as well as on a fresh local run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"almostmix/internal/cliutil"
	"almostmix/internal/flightrec"
	"almostmix/internal/metrics"
	"almostmix/internal/transport"
)

func main() {
	obsPath := flag.String("obs", "", "obs document from a -obsout run (required)")
	metricsPath := flag.String("metrics", "", "metrics snapshot JSON to join (optional)")
	benchPath := flag.String("bench", "", "BENCH_*.json from cmd/benchsuite to join (optional)")
	outPath := flag.String("out", "", "report destination (default: stdout)")
	tail := flag.Int("tail", 12, "flight-recorder events to show per endpoint")
	flag.Parse()
	if *obsPath == "" {
		cliutil.Fail("missing -obs (an -obsout document is required)")
	}
	cliutil.Min("tail", *tail, 1)
	cliutil.Writable("out", *outPath)

	doc, err := readObs(*obsPath)
	if err != nil {
		fatal(err)
	}
	var snap *metrics.Snapshot
	if *metricsPath != "" {
		if snap, err = readMetrics(*metricsPath); err != nil {
			fatal(err)
		}
	}
	var bench *benchDoc
	if *benchPath != "" {
		if bench, err = readBench(*benchPath); err != nil {
			fatal(err)
		}
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(fmt.Errorf("obsreport: %w", err))
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(fmt.Errorf("obsreport: close %s: %w", *outPath, err))
			}
		}()
		out = f
	}
	report(out, doc, snap, bench, *tail)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obsreport:", err)
	os.Exit(1)
}

func readObs(path string) (*transport.ObsDoc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obsreport: %w", err)
	}
	return transport.ReadObs(b)
}

func readMetrics(path string) (*metrics.Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obsreport: %w", err)
	}
	var s metrics.Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("obsreport: decoding metrics snapshot %s: %w", path, err)
	}
	if s.Schema != metrics.Schema {
		return nil, fmt.Errorf("obsreport: metrics schema %q, want %q", s.Schema, metrics.Schema)
	}
	return &s, nil
}

// benchDoc mirrors the slice of cmd/benchsuite's Document this report
// joins against; decoding locally keeps the two binaries decoupled
// (benchsuite is package main). Unknown fields are ignored, so the
// report survives benchsuite growing its schema.
type benchDoc struct {
	Schema       string             `json:"schema"`
	GitSHA       string             `json:"git_sha"`
	Cases        []benchCase        `json:"cases"`
	SteadyAllocs map[string]float64 `json:"steady_allocs_per_round"`
}

type benchCase struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra"`
}

func readBench(path string) (*benchDoc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obsreport: %w", err)
	}
	var d benchDoc
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("obsreport: decoding bench document %s: %w", path, err)
	}
	if !strings.HasPrefix(d.Schema, "almostmix-bench/") {
		return nil, fmt.Errorf("obsreport: bench schema %q, want almostmix-bench/*", d.Schema)
	}
	return &d, nil
}

// report renders every section the inputs can support. Sections are
// keyed by "== name ==" markers so scripts (the obs-suite smoke) can
// grep them without parsing the layout.
func report(w io.Writer, d *transport.ObsDoc, snap *metrics.Snapshot, bench *benchDoc, tail int) {
	header(w, d)
	rounds(w, d)
	shards(w, d)
	wire(w, d)
	recorder(w, "coordinator", &d.Coordinator, tail)
	for i, sd := range d.ShardDumps {
		if sd == nil {
			fmt.Fprintf(w, "\n== flight recorder: shard %d ==\nno dump shipped (shard died before TELEMETRY)\n", i)
			continue
		}
		recorder(w, fmt.Sprintf("shard %d", i), sd, tail)
	}
	if snap != nil {
		metricsJoin(w, snap)
	}
	if bench != nil {
		benchJoin(w, bench)
	}
}

func header(w io.Writer, d *transport.ObsDoc) {
	fmt.Fprintf(w, "== run ==\n")
	fmt.Fprintf(w, "workload=%s graph=%s n=%d backend=%s shards=%d rounds=%d\n",
		d.Spec.Workload, d.Spec.Graph, d.Spec.N, d.Backend, d.Shards, d.Rounds)
	fmt.Fprintf(w, "reason=%s", d.Reason)
	if d.GuiltyShard >= 0 {
		fmt.Fprintf(w, " guilty_shard=%d last_round=%d", d.GuiltyShard, d.LastRound)
		if d.Phase != "" {
			fmt.Fprintf(w, " phase=%s", d.Phase)
		}
	}
	fmt.Fprintln(w)
	if d.Error != "" {
		fmt.Fprintf(w, "error: %s\n", d.Error)
	}
}

// rounds aggregates the coordinator timeline into one row per round:
// total coordinator wall time in each barrier phase (summed over
// shards; broadcast-write rows carry shard -1 and land in the same
// phase column), joined with that round's cross-shard skew.
func rounds(w io.Writer, d *transport.ObsDoc) {
	type agg map[string]int64
	perRound := map[int]agg{}
	var phaseSet []string
	seen := map[string]bool{}
	for _, r := range d.Timeline {
		if r.Round < 0 {
			continue // pre-round handshake: reported in the setup line below
		}
		a := perRound[r.Round]
		if a == nil {
			a = agg{}
			perRound[r.Round] = a
		}
		a[r.Phase] += r.WallNS
		if !seen[r.Phase] {
			seen[r.Phase] = true
			phaseSet = append(phaseSet, r.Phase)
		}
	}
	skew := map[int]int64{}
	for _, s := range d.Skew {
		skew[s.Round] = s.SkewNS
	}
	var setup int64
	for _, r := range d.Timeline {
		if r.Round < 0 {
			setup += r.WallNS
		}
	}

	fmt.Fprintf(w, "\n== per-round attribution (coordinator wall ns) ==\n")
	if setup > 0 {
		fmt.Fprintf(w, "setup (accept/spec/init): %d ns\n", setup)
	}
	if len(perRound) == 0 {
		fmt.Fprintln(w, "no per-round timeline (run died before the first barrier, or -obsout ran without timeline capture)")
		return
	}
	// Phase columns in protocol order, not first-seen order.
	order := []string{"deliver-write", "deliver-wait", "step-write", "step-wait", "harvest"}
	var cols []string
	for _, p := range order {
		if seen[p] {
			cols = append(cols, p)
			seen[p] = false
		}
	}
	for _, p := range phaseSet {
		if seen[p] {
			cols = append(cols, p)
		}
	}
	var roundIDs []int
	for r := range perRound {
		roundIDs = append(roundIDs, r)
	}
	sort.Ints(roundIDs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "round\t%s\tskew_ns\n", strings.Join(cols, "\t"))
	for _, r := range roundIDs {
		fmt.Fprintf(tw, "%d", r)
		for _, p := range cols {
			fmt.Fprintf(tw, "\t%d", perRound[r][p])
		}
		fmt.Fprintf(tw, "\t%d\n", skew[r])
	}
	tw.Flush()
}

// shards totals each shard's attributable wait time across the run —
// the column that names the straggler.
func shards(w io.Writer, d *transport.ObsDoc) {
	type tot struct{ deliver, step, other int64 }
	per := map[int]*tot{}
	for _, r := range d.Timeline {
		if r.Shard < 0 {
			continue
		}
		t := per[r.Shard]
		if t == nil {
			t = &tot{}
			per[r.Shard] = t
		}
		switch r.Phase {
		case "deliver-wait":
			t.deliver += r.WallNS
		case "step-wait":
			t.step += r.WallNS
		default:
			t.other += r.WallNS
		}
	}
	if len(per) == 0 {
		return
	}
	var ids []int
	for s := range per {
		ids = append(ids, s)
	}
	sort.Ints(ids)
	fmt.Fprintf(w, "\n== per-shard wait totals (coordinator wall ns) ==\n")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "shard\tdeliver-wait\tstep-wait\tother")
	for _, s := range ids {
		t := per[s]
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\n", s, t.deliver, t.step, t.other)
	}
	tw.Flush()
}

func wire(w io.Writer, d *transport.ObsDoc) {
	if len(d.Wire) == 0 {
		return
	}
	fmt.Fprintf(w, "\n== wire ==\n")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "endpoint\tshard\tsent_frames\trecv_frames\tsent_bytes\trecv_bytes\tflushes\tflush_ns")
	for _, ws := range d.Wire {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			ws.Endpoint, ws.Shard, ws.SentFrames, ws.RecvFrames,
			ws.SentBytes, ws.RecvBytes, ws.Flushes, ws.FlushNS)
	}
	tw.Flush()
}

func recorder(w io.Writer, name string, d *flightrec.Dump, tail int) {
	fmt.Fprintf(w, "\n== flight recorder: %s ==\n", name)
	fmt.Fprintf(w, "reason=%s", d.Reason)
	if d.GuiltyShard >= 0 {
		fmt.Fprintf(w, " guilty_shard=%d", d.GuiltyShard)
	}
	fmt.Fprintf(w, " last_round=%d", d.LastRound)
	if d.Phase != "" {
		fmt.Fprintf(w, " phase=%s", d.Phase)
	}
	fmt.Fprintf(w, " events=%d dropped=%d\n", len(d.Events), d.Dropped)
	if d.Error != "" {
		fmt.Fprintf(w, "error: %s\n", d.Error)
	}
	evs := d.Events
	if len(evs) > tail {
		fmt.Fprintf(w, "(last %d of %d)\n", tail, len(evs))
		evs = evs[len(evs)-tail:]
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "seq\tt_ns\tkind\tframe\tround\tshard\tbytes\tnote")
	for _, ev := range evs {
		frame := ev.Frame
		if frame == "" {
			frame = "-"
		}
		fmt.Fprintf(tw, "%d\t%d\t%s\t%s\t%d\t%d\t%d\t%s\n",
			ev.Seq, ev.TNS, ev.Kind, frame, ev.Round, ev.Shard, ev.Bytes, ev.Note)
	}
	tw.Flush()
}

// metricsJoin surfaces the transport slice of a -metrics snapshot:
// every tcpnet_* counter plus quantile rows for the wall-time
// histograms (the new HistogramSnap.Quantile estimator — exact to
// within one bucket of the layout).
func metricsJoin(w io.Writer, s *metrics.Snapshot) {
	fmt.Fprintf(w, "\n== metrics join ==\n")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	n := 0
	for _, c := range s.Counters {
		if strings.HasPrefix(c.Name, "tcpnet_") {
			fmt.Fprintf(tw, "%s\t%d\n", c.Name, c.Value)
			n++
		}
	}
	for _, g := range s.Gauges {
		if strings.HasPrefix(g.Name, "tcpnet_") {
			fmt.Fprintf(tw, "%s\t%g\n", g.Name, g.Value)
			n++
		}
	}
	tw.Flush()
	if n == 0 {
		fmt.Fprintln(w, "no tcpnet_* instruments in snapshot (proc run, or telemetry off)")
	}
	var hists []metrics.HistogramSnap
	for _, h := range s.Histograms {
		if strings.HasPrefix(h.Name, "tcpnet_") {
			hists = append(hists, h)
		}
	}
	if len(hists) == 0 {
		return
	}
	fmt.Fprintln(w)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "histogram\tcount\tp50_le\tp99_le\tsum")
	for _, h := range hists {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%d\n",
			h.Name, h.Count, leString(h.Quantile(0.50)), leString(h.Quantile(0.99)), h.Sum)
	}
	tw.Flush()
}

func leString(le int64) string {
	if le == metrics.OverflowLe {
		return "+Inf"
	}
	return fmt.Sprintf("%d", le)
}

// benchJoin lists the transport-relevant benchmark cases — anything
// with a tcp backend in its name or a round-skew extra — plus the
// steady-alloc gate entries, so one report answers both "was this run
// slow" and "is the hot path still allocation-free".
func benchJoin(w io.Writer, d *benchDoc) {
	fmt.Fprintf(w, "\n== bench join ==\n")
	if d.GitSHA != "" {
		fmt.Fprintf(w, "bench document at git %s\n", d.GitSHA)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	n := 0
	for _, c := range d.Cases {
		_, hasSkew := c.Extra["round_skew_p99_ns"]
		if !strings.Contains(c.Name, "tcp") && !hasSkew {
			continue
		}
		n++
		fmt.Fprintf(tw, "%s\t%.0f ns/op\t%d allocs/op", c.Name, c.NsPerOp, c.AllocsPerOp)
		var keys []string
		for k := range c.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(tw, "\t%s=%g", k, c.Extra[k])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	if n == 0 {
		fmt.Fprintln(w, "no transport cases in bench document")
	}
	if len(d.SteadyAllocs) > 0 {
		var keys []string
		for k := range d.SteadyAllocs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "steady-alloc gate\tallocs/round")
		for _, k := range keys {
			fmt.Fprintf(tw, "%s\t%.3f\n", k, d.SteadyAllocs[k])
		}
		tw.Flush()
	}
}
