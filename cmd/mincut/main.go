// Command mincut regenerates experiment E10 (§4's closing remark): the
// tree-packing approximate minimum cut against the exact Stoer–Wagner
// value, on graphs with planted sparse cuts. Distributed round
// accounting: each packed tree is one hierarchical MST computation, so the
// charged rounds are TreesUsed × (measured MST rounds on a same-size
// expander), reported alongside.
package main

import (
	"flag"
	"fmt"
	"os"

	"almostmix/internal/cliutil"
	"almostmix/internal/congest"
	"almostmix/internal/embed"
	"almostmix/internal/graph"
	"almostmix/internal/harness"
	"almostmix/internal/metrics"
	"almostmix/internal/mincut"
	"almostmix/internal/mst"
	"almostmix/internal/rngutil"
	"almostmix/internal/spectral"
)

func main() {
	seed := flag.Uint64("seed", 1, "root random seed")
	trace := flag.String("trace", "", "write the round-accounting cost-ledger breakdown to this file (.json for JSON, CSV otherwise)")
	metricsOut := flag.String("metrics", "", "write a host-side metrics snapshot to this file (.json for JSON, CSV otherwise)")
	pprofMode := flag.String("pprof", "", "capture a runtime profile: cpu, heap or mutex")
	pprofOut := flag.String("pprofout", "", "profile output path (default <mode>.pprof)")
	flag.Parse()
	cliutil.Writable("trace", *trace)
	cliutil.Writable("metrics", *metricsOut)
	cliutil.Writable("pprofout", *pprofOut)
	sess, err := metrics.StartSession(*metricsOut, *pprofMode, *pprofOut)
	if err == nil {
		err = run(*seed, *trace, sess)
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mincut:", err)
		os.Exit(1)
	}
}

func run(seed uint64, trace string, sess *metrics.Session) error {
	r := rngutil.NewRand(seed)
	instances := []struct {
		name string
		g    *graph.Graph
	}{
		{"barbell16", graph.Barbell(16, 0)},
		{"barbell12+4", graph.Barbell(12, 4)},
		{"dumbbell-2", graph.Dumbbell(24, 4, 2, r)},
		{"dumbbell-5", graph.Dumbbell(24, 4, 5, r)},
		{"rr48d4", graph.RandomRegular(48, 4, r)},
		{"lollipop24+8", graph.Lollipop(24, 8)},
	}
	t := harness.NewTable("E10 — approximate min cut via greedy tree packing",
		"graph", "n", "exact cut", "approx cut", "ratio", "trees")
	for _, inst := range instances {
		exact, _, err := mincut.StoerWagner(inst.g)
		if err != nil {
			return fmt.Errorf("%s: %w", inst.name, err)
		}
		stop := sess.Time("approx_" + inst.name)
		res, err := mincut.Approx(inst.g, 0, rngutil.NewRand(seed+3))
		stop()
		if err != nil {
			return fmt.Errorf("%s: %w", inst.name, err)
		}
		t.AddRow(inst.name, inst.g.N(), exact, res.CutSize,
			float64(res.CutSize)/exact, res.TreesUsed)
	}
	fmt.Println(t)

	// Round accounting reference: one hierarchical MST on a same-scale
	// expander (each packed tree costs one such computation).
	g := graph.RandomRegular(64, 8, rngutil.NewRand(seed+4))
	g.AssignDistinctRandomWeights(rngutil.NewRand(seed + 5))
	tau, err := spectral.MixingTime(g, spectral.Lazy, 1_000_000)
	if err != nil {
		return err
	}
	p := embed.DefaultParams()
	p.TauMix = tau
	h, err := embed.Build(g, p, rngutil.NewSource(seed+6))
	if err != nil {
		return err
	}
	res, err := mst.Run(h, rngutil.NewSource(seed+7))
	if err != nil {
		return err
	}
	pack, err := mincut.Approx(g, 0, rngutil.NewRand(seed+8)) // 2·log₂ 64 = 12 trees
	if err != nil {
		return err
	}
	led, charged := mincut.PackingCharge(pack, res)
	fmt.Printf("round accounting: one hierarchical MST at n=64 measures %d rounds;\n", res.AlgorithmRounds)
	fmt.Printf("a %d-tree packing therefore charges ≈ %d rounds — the same\n", pack.TreesUsed, charged)
	fmt.Println("τ_mix·2^O(√(log n·log log n)) budget as Theorem 1.1, as the paper remarks.")

	if trace != "" || sess.Registry() != nil {
		sink := congest.NewTraceSink().WithMetrics(sess.Registry())
		sink.Label("rr64d8")
		sink.AddCosts("packing", led)
		sink.AddCosts("mst", res.Costs)
		if trace != "" {
			if err := sink.WriteFile(trace); err != nil {
				return err
			}
			fmt.Printf("wrote cost ledger (%d rows) to %s\n", len(sink.Costs), trace)
		}
	}
	return nil
}
