// Command tcpnode is the shard-process endpoint of the TCP transport
// backend (internal/transport): it dials the coordinator with backoff,
// rebuilds the workload from the replayed spec, and answers round
// barriers until the coordinator finishes the run or closes the
// connection. It is normally spawned by a coordinator binary
// (-transport=tcp on cmd/walks or cmd/mst), not run by hand.
//
// Fault injection for the coordinator's failure tests is env-driven so
// every shard gets identical argv: TCPNODE_FAIL_SHARD/TCPNODE_FAIL_ROUND
// make that shard drop its connection at that round's STEP;
// TCPNODE_STALL_SHARD/TCPNODE_STALL_ROUND make it stop replying while
// holding the connection open.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"almostmix/internal/cliutil"
	"almostmix/internal/transport"
	_ "almostmix/internal/transport/workloads"
)

func main() {
	connect := flag.String("connect", "", "coordinator address to dial (host:port, required)")
	shard := flag.Int("shard", -1, "shard index assigned by the coordinator (required)")
	dialBudget := flag.Duration("dialbudget", 10*time.Second, "total dial retry budget")
	flag.Parse()
	if *connect == "" {
		cliutil.Fail("missing -connect (coordinator host:port)")
	}
	cliutil.Listen("connect", *connect)
	cliutil.Min("shard", *shard, 0)
	cliutil.Min("dialbudget", int(*dialBudget), 1)

	cfg := transport.ShardConfig{
		FailAtRound:  envRoundFor(*shard, "TCPNODE_FAIL_SHARD", "TCPNODE_FAIL_ROUND"),
		StallAtRound: envRoundFor(*shard, "TCPNODE_STALL_SHARD", "TCPNODE_STALL_ROUND"),
	}
	conn, err := transport.DialShard(*connect, *dialBudget)
	if err == nil {
		err = transport.ServeShard(conn, *shard, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcpnode:", err)
		os.Exit(1)
	}
}

// envRoundFor reads a (shard selector, round) env pair and returns the
// round when the selector names this shard, else 0 (disabled).
func envRoundFor(shard int, shardVar, roundVar string) int {
	sv := os.Getenv(shardVar)
	if sv == "" {
		return 0
	}
	s, err := strconv.Atoi(sv)
	if err != nil || s != shard {
		return 0
	}
	r, err := strconv.Atoi(os.Getenv(roundVar))
	if err != nil || r < 1 {
		cliutil.Fail("invalid %s %q: need a round >= 1", roundVar, os.Getenv(roundVar))
	}
	return r
}
