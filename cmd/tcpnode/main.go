// Command tcpnode is the shard-process endpoint of the TCP transport
// backend (internal/transport): it dials the coordinator with backoff,
// rebuilds the workload from the replayed spec, and answers round
// barriers until the coordinator finishes the run or closes the
// connection. It is normally spawned by a coordinator binary
// (-transport=tcp on cmd/walks or cmd/mst), not run by hand.
//
// The process keeps a flight recorder (internal/flightrec) of its
// recent transport events. On a clean FINISH the ring ships back to the
// coordinator inside the TELEMETRY frame; on a serve error, panic or
// SIGTERM it is dumped as schema-valid JSON to the -flightrec path
// (stderr when unset — which the coordinator pipes through), so a dead
// shard leaves evidence on whichever side survives.
//
// Fault injection for the coordinator's failure tests is env-driven so
// every shard gets identical argv: TCPNODE_FAIL_SHARD/TCPNODE_FAIL_ROUND
// make that shard drop its connection at that round's STEP;
// TCPNODE_STALL_SHARD/TCPNODE_STALL_ROUND make it stop replying while
// holding the connection open.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"almostmix/internal/cliutil"
	"almostmix/internal/flightrec"
	"almostmix/internal/transport"
	_ "almostmix/internal/transport/workloads"
)

func main() {
	connect := flag.String("connect", "", "coordinator address to dial (host:port, required)")
	shard := flag.Int("shard", -1, "shard index assigned by the coordinator (required)")
	dialBudget := flag.Duration("dialbudget", 10*time.Second, "total dial retry budget")
	flightOut := flag.String("flightrec", "", "flight-recorder dump path on death/panic/SIGTERM (default: stderr)")
	flag.Parse()
	if *connect == "" {
		cliutil.Fail("missing -connect (coordinator host:port)")
	}
	cliutil.Listen("connect", *connect)
	cliutil.Min("shard", *shard, 0)
	cliutil.Min("dialbudget", int(*dialBudget), 1)

	rec := flightrec.New("shard", *shard, 0)

	// SIGTERM (the coordinator's reap, or an operator kill) dumps the
	// ring before the process dies with the default disposition.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM)
	go func() {
		<-sigc
		rec.Record(flightrec.KindSignal, "", -1, -1, 0, "SIGTERM")
		dumpRing(*flightOut, rec, flightrec.ReasonSigterm, "terminated by SIGTERM")
		signal.Stop(sigc)
		syscall.Kill(os.Getpid(), syscall.SIGTERM)
	}()
	defer func() {
		if p := recover(); p != nil {
			rec.Record(flightrec.KindPanic, "", -1, -1, 0, fmt.Sprint(p))
			dumpRing(*flightOut, rec, flightrec.ReasonPanic, fmt.Sprint(p))
			panic(p)
		}
	}()

	cfg := transport.ShardConfig{
		FailAtRound:  envRoundFor(*shard, "TCPNODE_FAIL_SHARD", "TCPNODE_FAIL_ROUND"),
		StallAtRound: envRoundFor(*shard, "TCPNODE_STALL_SHARD", "TCPNODE_STALL_ROUND"),
		Recorder:     rec,
	}
	conn, err := transport.DialShard(*connect, *dialBudget)
	if err == nil {
		err = transport.ServeShard(conn, *shard, cfg)
	}
	if err != nil {
		dumpRing(*flightOut, rec, flightrec.ReasonError, err.Error())
		fmt.Fprintln(os.Stderr, "tcpnode:", err)
		os.Exit(1)
	}
}

// dumpRing writes the recorder's attributed dump; dump failures are
// reported but never mask the original failure.
func dumpRing(path string, rec *flightrec.Recorder, reason, errMsg string) {
	d := rec.Dump(reason)
	d.Error = errMsg
	if err := flightrec.WriteDump(path, d); err != nil {
		fmt.Fprintln(os.Stderr, "tcpnode:", err)
	}
}

// envRoundFor reads a (shard selector, round) env pair and returns the
// round when the selector names this shard, else 0 (disabled).
func envRoundFor(shard int, shardVar, roundVar string) int {
	sv := os.Getenv(shardVar)
	if sv == "" {
		return 0
	}
	s, err := strconv.Atoi(sv)
	if err != nil || s != shard {
		return 0
	}
	r, err := strconv.Atoi(os.Getenv(roundVar))
	if err != nil || r < 1 {
		cliutil.Fail("invalid %s %q: need a round >= 1", roundVar, os.Getenv(roundVar))
	}
	return r
}
