// Command clique regenerates experiment E7 (Theorem 1.3): emulating one
// congested-clique round on top of G(n,p), sweeping p at fixed n. It
// compares the hierarchical phased routing against the direct
// shortest-path baseline, the n/h cut lower bound, the paper's
// O(1/p + log n) corollary curve, and the Balliu et al. min{1/p², np}
// curve.
package main

import (
	"flag"
	"fmt"
	"os"

	"almostmix/internal/cliquemu"
	"almostmix/internal/cliutil"
	"almostmix/internal/congest"
	"almostmix/internal/embed"
	"almostmix/internal/graph"
	"almostmix/internal/harness"
	"almostmix/internal/metrics"
	"almostmix/internal/rngutil"
	"almostmix/internal/spectral"
)

func main() {
	n := flag.Int("n", 64, "number of nodes")
	seed := flag.Uint64("seed", 1, "root random seed")
	trace := flag.String("trace", "", "write the per-run cost-ledger breakdowns to this file (.json for JSON, CSV otherwise)")
	metricsOut := flag.String("metrics", "", "write a host-side metrics snapshot to this file (.json for JSON, CSV otherwise)")
	pprofMode := flag.String("pprof", "", "capture a runtime profile: cpu, heap or mutex")
	pprofOut := flag.String("pprofout", "", "profile output path (default <mode>.pprof)")
	flag.Parse()
	cliutil.Min("n", *n, 2)
	cliutil.Writable("trace", *trace)
	cliutil.Writable("metrics", *metricsOut)
	cliutil.Writable("pprofout", *pprofOut)
	sess, err := metrics.StartSession(*metricsOut, *pprofMode, *pprofOut)
	if err == nil {
		err = run(*n, *seed, *trace, sess)
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "clique:", err)
		os.Exit(1)
	}
}

func run(n int, seed uint64, trace string, sess *metrics.Session) error {
	var sink *congest.TraceSink
	if trace != "" || sess.Registry() != nil {
		sink = congest.NewTraceSink().WithMetrics(sess.Registry())
	}
	t := harness.NewTable(
		fmt.Sprintf("E7 — Theorem 1.3: clique emulation on G(n=%d, p)", n),
		"p", "m", "h-sweep", "hier rounds", "phases", "direct rounds",
		"n/2h bound", "paper 1/p+log n", "Balliu min{1/p²,np}")
	var invP, hier []float64
	for i, p := range []float64{0.15, 0.25, 0.4, 0.6} {
		g, err := graph.ConnectedGnp(n, p, rngutil.NewRand(seed+uint64(i)))
		if err != nil {
			return err
		}
		tau, err := spectral.MixingTime(g, spectral.Lazy, 1_000_000)
		if err != nil {
			return err
		}
		params := embed.DefaultParams()
		params.TauMix = tau
		h, err := embed.Build(g, params, rngutil.NewSource(seed+100+uint64(i)))
		if err != nil {
			return err
		}
		stopEmu := sess.Time(fmt.Sprintf("clique_emulation_p%.2f", p))
		res, err := cliquemu.Hierarchical(h, rngutil.NewSource(seed+200+uint64(i)))
		stopEmu()
		if err != nil {
			return err
		}
		direct, err := cliquemu.Direct(g)
		if err != nil {
			return err
		}
		if sink != nil {
			sink.Label(fmt.Sprintf("gnp-p%.2f", p))
			sink.AddCosts("hierarchical", res.Costs)
			sink.AddCosts("direct", direct.Costs)
		}
		hSweep := spectral.EdgeExpansionSweep(g)
		t.AddRow(p, g.M(), hSweep, res.Rounds, res.Phases, direct.Rounds,
			cliquemu.CutLowerBound(n, hSweep),
			cliquemu.PaperBound(n, p),
			cliquemu.BalliuBound(n, p))
		invP = append(invP, 1/p)
		hier = append(hier, float64(res.Rounds))
	}
	fmt.Println(t)
	slope, used := harness.LogLogSlope(invP, hier)
	fmt.Printf("hierarchical rounds vs 1/p: log-log slope = %.2f (%d/%d pts, corollary predicts ≈ 1)\n",
		slope, used, len(invP))
	fmt.Println("Shape check: both algorithms cheapen as p (and hence h) grows; the")
	fmt.Println("polylog-inflated hierarchical cost tracks the 1/p trend of the corollary.")
	if sink != nil && trace != "" {
		if err := sink.WriteFile(trace); err != nil {
			return err
		}
		fmt.Printf("wrote cost ledger (%d rows) to %s\n", len(sink.Costs), trace)
	}
	return nil
}
