// Command routing regenerates experiments E2 (Theorem 1.2: permutation
// and full-rate routing in τ_mix·2^O(√(log n·log log n)) rounds) and E8
// (Lemma 3.4: the per-level decomposition of the recursion). It sweeps
// the network size on an expander family and, for contrast, reports one
// poor-expansion graph where τ_mix (and hence routing) degrades.
package main

import (
	"flag"
	"fmt"
	"os"

	"almostmix/internal/cliutil"
	"almostmix/internal/congest"
	"almostmix/internal/decomp"
	"almostmix/internal/embed"
	"almostmix/internal/graph"
	"almostmix/internal/harness"
	"almostmix/internal/metrics"
	"almostmix/internal/rngutil"
	"almostmix/internal/route"
	"almostmix/internal/spectral"
)

func main() {
	levels := flag.Bool("levels", false, "print the E8 per-level decomposition for one run")
	quick := flag.Bool("quick", false, "run only the smallest expander instance (CI smoke)")
	decompose := flag.Bool("decomp", false, "run E18 instead: permutation routing through the cluster-scoped tier (expander decomposition + per-cluster hierarchies + boundary stitching) on worst-case graphs, against the direct single-hierarchy baseline")
	phi := flag.Float64("phi", 0.1, "conductance target for -decomp's expander decomposition, in (0,1)")
	seed := flag.Uint64("seed", 1, "root random seed")
	trace := flag.String("trace", "", "write a per-round trace of every routing run to this file (.json for JSON, CSV otherwise): preparation-walk congestion, the recursion's phase timeline, and the per-run cost-ledger breakdown")
	metricsOut := flag.String("metrics", "", "write a host-side metrics snapshot to this file (.json for JSON, CSV otherwise)")
	pprofMode := flag.String("pprof", "", "capture a runtime profile: cpu, heap or mutex")
	pprofOut := flag.String("pprofout", "", "profile output path (default <mode>.pprof)")
	flag.Parse()
	cliutil.Phi("phi", *phi)
	cliutil.Writable("trace", *trace)
	cliutil.Writable("metrics", *metricsOut)
	cliutil.Writable("pprofout", *pprofOut)

	sess, err := metrics.StartSession(*metricsOut, *pprofMode, *pprofOut)
	if err == nil {
		if *decompose {
			err = runE18(*quick, *phi, *seed, *trace, sess)
		} else {
			err = run(*levels, *quick, *seed, *trace, sess)
		}
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "routing:", err)
		os.Exit(1)
	}
}

type instance struct {
	name string
	g    *graph.Graph
}

func buildInstance(inst instance, seed uint64) (*embed.Hierarchy, int, error) {
	tau, err := spectral.MixingTime(inst.g, spectral.Lazy, 5_000_000)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", inst.name, err)
	}
	p := embed.DefaultParams()
	p.TauMix = tau
	h, err := embed.Build(inst.g, p, rngutil.NewSource(seed))
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", inst.name, err)
	}
	return h, tau, nil
}

func run(levels, quick bool, seed uint64, trace string, sess *metrics.Session) error {
	var sink *congest.TraceSink
	if trace != "" || sess.Registry() != nil {
		sink = congest.NewTraceSink().WithMetrics(sess.Registry())
	}
	instances := []instance{
		{"rr64d8", graph.RandomRegular(64, 8, rngutil.NewRand(seed))},
		{"rr128d8", graph.RandomRegular(128, 8, rngutil.NewRand(seed+1))},
		{"rr256d8", graph.RandomRegular(256, 8, rngutil.NewRand(seed+2))},
		{"lollipop48+16", graph.Lollipop(48, 16)},
	}
	if quick {
		instances = instances[:1]
	}
	t := harness.NewTable("E2 — Theorem 1.2: permutation routing",
		"graph", "n", "τ_mix", "packets", "prep", "G0 rounds", "base rounds", "base/τ")
	td := harness.NewTable("E2 — Theorem 1.2: full-rate degree workload (d_G(v) packets per node)",
		"graph", "n", "packets", "base rounds", "base/τ")
	var ns, based []float64
	for _, inst := range instances {
		stopBuild := sess.Time("embed_build_" + inst.name)
		h, tau, err := buildInstance(inst, seed+10)
		stopBuild()
		if err != nil {
			return err
		}
		reqs := route.RandomPermutation(inst.g, rngutil.NewRand(seed+20))
		var probe congest.Probe
		if sink != nil {
			probe = sink.Label(inst.name + " perm")
		}
		stopRoute := sess.Time("route_perm_" + inst.name)
		rep, err := route.RouteTraced(h, reqs, rngutil.NewSource(seed+30), probe)
		stopRoute()
		if err != nil {
			return err
		}
		if sink != nil {
			sink.AddCosts("route", rep.Costs)
			sink.AddCosts("construction", h.Costs)
		}
		t.AddRow(inst.name, inst.g.N(), tau, len(reqs), rep.PrepRounds,
			rep.G0Rounds, rep.BaseRounds, float64(rep.BaseRounds)/float64(tau))

		heavy := route.DegreeDemand(inst.g, rngutil.NewRand(seed+40))
		if sink != nil {
			probe = sink.Label(inst.name + " degree")
		}
		repH, err := route.RouteTraced(h, heavy, rngutil.NewSource(seed+50), probe)
		if err != nil {
			return err
		}
		if sink != nil {
			sink.AddCosts("route", repH.Costs)
		}
		td.AddRow(inst.name, inst.g.N(), len(heavy), repH.BaseRounds,
			float64(repH.BaseRounds)/float64(tau))
		if inst.name != "lollipop48+16" {
			ns = append(ns, float64(inst.g.N()))
			based = append(based, float64(rep.BaseRounds))
		}

		if levels && inst.g.N() == 128 {
			printLevels(h, rep)
		}
	}
	fmt.Println(t)
	fmt.Println(td)
	slope, used := harness.LogLogSlope(ns, based)
	fmt.Printf("expander scaling: log-log slope of base rounds vs n = %.2f (%d/%d pts)\n",
		slope, used, len(ns))
	fmt.Println("Theorem 1.2's shape: base/τ grows only polylogarithmically on the")
	fmt.Println("expander family, while the lollipop's larger τ_mix dominates its cost.")

	if sink != nil && trace != "" {
		if err := sink.WriteFile(trace); err != nil {
			return err
		}
		fmt.Printf("wrote per-round trace (%d round records, %d phase entries, %d cost rows) to %s\n",
			len(sink.Rounds.Samples), len(sink.Phases.Entries), len(sink.Costs), trace)
	}
	return nil
}

// runE18 regenerates experiment E18: the graphs the single-expander
// hierarchy degrades on (lollipop, barbell, power-law) are decomposed
// into expander clusters, embedded per cluster, and a random permutation
// is routed through the stitched tier. The direct baseline builds one
// hierarchy on the whole graph and routes the same requests; on the
// expander control row the two agree (the decomposition is one cluster,
// so the stitched run IS the direct run).
func runE18(quick bool, phi float64, seed uint64, trace string, sess *metrics.Session) error {
	var sink *congest.TraceSink
	if trace != "" || sess.Registry() != nil {
		sink = congest.NewTraceSink().WithMetrics(sess.Registry())
	}
	instances := []instance{
		{"rr64d8", graph.RandomRegular(64, 8, rngutil.NewRand(seed))},
		{"lollipop32+16", graph.Lollipop(32, 16)},
		{"barbell16+8", graph.Barbell(16, 8)},
	}
	if !quick {
		cl, err := graph.ConnectedChungLu(96, 2.5, 8, seed)
		if err != nil {
			return err
		}
		instances = append(instances, instance{"chunglu96", cl})
	} else {
		instances = instances[:1]
	}
	t := harness.NewTable(fmt.Sprintf("E18 — cluster-scoped permutation routing (φ=%g)", phi),
		"graph", "n", "clusters", "cross edges", "waves", "stitched rounds", "direct rounds", "delivered")
	for _, inst := range instances {
		dec, err := decomp.Decompose(inst.g, decomp.Params{Phi: phi})
		if err != nil {
			return fmt.Errorf("%s: %w", inst.name, err)
		}
		stopBuild := sess.Time("decomp_build_" + inst.name)
		pe, err := embed.BuildPartitioned(dec, embed.DefaultParams(), rngutil.NewSource(seed+10))
		stopBuild()
		if err != nil {
			return fmt.Errorf("%s: %w", inst.name, err)
		}
		reqs := route.RandomPermutation(inst.g, rngutil.NewRand(seed+20))
		stopRoute := sess.Time("decomp_route_" + inst.name)
		rep, err := route.RoutePartitioned(pe, reqs, rngutil.NewSource(seed+30))
		stopRoute()
		if err != nil {
			return fmt.Errorf("%s: %w", inst.name, err)
		}
		// Direct baseline: one hierarchy over the whole graph, same
		// parameters as the per-cluster builds, so the comparison
		// isolates the decomposition itself.
		direct := "—"
		if h, err := embed.Build(inst.g, embed.DefaultParams(), rngutil.NewSource(seed+10)); err == nil {
			if drep, err := route.Route(h, reqs, rngutil.NewSource(seed+30)); err == nil {
				direct = fmt.Sprint(drep.BaseRounds)
			}
		}
		if sink != nil {
			sink.Label(inst.name).AddCosts("decomp", dec.Costs)
			sink.AddCosts("decomp-build", pe.Costs)
			sink.AddCosts("decomp-route", rep.Costs)
		}
		t.AddRow(inst.name, inst.g.N(), len(dec.Clusters), len(dec.CrossEdges),
			rep.Waves, rep.BaseRounds, direct, rep.Delivered == len(reqs))
	}
	fmt.Println(t)
	fmt.Println("The decomposition turns the worst-case inputs into per-cluster expander")
	fmt.Println("instances: each cluster routes at its own (small) mixing time and only")
	fmt.Println("the ε·m boundary edges pay per-hop congestion. The expander control row")
	fmt.Println("is a single cluster, so the stitched run is one hierarchy routing the")
	fmt.Println("whole permutation — the same work the direct baseline does.")

	if sink != nil && trace != "" {
		if err := sink.WriteFile(trace); err != nil {
			return err
		}
		fmt.Printf("wrote per-cluster certificate and stitched cost rows (%d) to %s\n",
			len(sink.Costs), trace)
	}
	return nil
}

func printLevels(h *embed.Hierarchy, rep *route.Report) {
	t := harness.NewTable("E8 — Lemma 3.4: routing cost decomposition (n=128)",
		"component", "G0 rounds")
	t.AddRow("leaf-level movement", rep.LeafG0Rounds)
	for l, c := range rep.HopG0Rounds {
		t.AddRow(fmt.Sprintf("portal hops at level %d", l+1), c)
	}
	t.AddRow("total", rep.G0Rounds)
	fmt.Println(t)
	fmt.Printf("max packets over a single portal edge: %d (Lemma 3.4 predicts O(log n))\n\n",
		rep.MaxPortalLoad)
}
