// Command mixing regenerates experiments E3 (Lemma 2.3: the 2Δ-regular
// mixing time against the 8Δ²ln(n)/h² bound) and E11 (h(G) = Θ(np) and
// Δ = Θ(np) for Erdős–Rényi graphs above the connectivity threshold).
//
// Usage:
//
//	mixing            # E3 table over the graph-family zoo
//	mixing -gnp       # E11 table over a p sweep at fixed n
package main

import (
	"flag"
	"fmt"
	"os"

	"almostmix/internal/cliutil"
	"almostmix/internal/graph"
	"almostmix/internal/harness"
	"almostmix/internal/metrics"
	"almostmix/internal/rngutil"
	"almostmix/internal/spectral"
)

func main() {
	gnp := flag.Bool("gnp", false, "run the E11 G(n,p) expansion sweep instead of the E3 family table")
	seed := flag.Uint64("seed", 1, "root random seed")
	metricsOut := flag.String("metrics", "", "write a host-side metrics snapshot to this file (.json for JSON, CSV otherwise)")
	pprofMode := flag.String("pprof", "", "capture a runtime profile: cpu, heap or mutex")
	pprofOut := flag.String("pprofout", "", "profile output path (default <mode>.pprof)")
	flag.Parse()
	cliutil.Writable("metrics", *metricsOut)
	cliutil.Writable("pprofout", *pprofOut)
	sess, err := metrics.StartSession(*metricsOut, *pprofMode, *pprofOut)
	if err == nil {
		if *gnp {
			err = runGnp(*seed, sess)
		} else {
			err = runFamilies(*seed, sess)
		}
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixing:", err)
		os.Exit(1)
	}
}

func runFamilies(seed uint64, sess *metrics.Session) error {
	r := rngutil.NewRand(seed)
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"ring16", graph.Ring(16)},
		{"ring20", graph.Ring(20)},
		{"path16", graph.Path(16)},
		{"torus4x4", graph.Torus(4, 4)},
		{"hypercube4", graph.Hypercube(4)},
		{"complete16", graph.Complete(16)},
		{"star16", graph.Star(16)},
		{"rr16d4", graph.RandomRegular(16, 4, r)},
		{"rr20d4", graph.RandomRegular(20, 4, r)},
		{"barbell8", graph.Barbell(8, 0)},
		{"lollipop12+6", graph.Lollipop(12, 6)},
	}
	t := harness.NewTable("E3 — Lemma 2.3: regular mixing time vs 8Δ²ln(n)/h²",
		"graph", "n", "m", "Δ", "diam", "h(G)", "τ̄_mix", "bound", "bound/τ̄")
	for _, f := range families {
		h := spectral.EdgeExpansion(f.g)
		bound := spectral.Lemma23Bound(f.g, h)
		stop := sess.Time("mixing_time_" + f.name)
		tm, err := spectral.MixingTime(f.g, spectral.Regular, int(bound)+10)
		stop()
		if err != nil {
			return fmt.Errorf("%s: %w", f.name, err)
		}
		t.AddRow(f.name, f.g.N(), f.g.M(), f.g.MaxDegree(), f.g.Diameter(),
			h, tm, bound, bound/float64(tm))
	}
	fmt.Println(t)
	fmt.Println("Lemma 2.3 holds iff every bound/τ̄ ratio is >= 1.")
	return nil
}

func runGnp(seed uint64, sess *metrics.Session) error {
	const n = 128
	t := harness.NewTable("E11 — G(n,p): h(G) and Δ vs np (n = 128)",
		"p", "np", "m", "Δ", "h-sweep", "h/np", "Δ/np")
	for i, p := range []float64{0.06, 0.09, 0.12, 0.18, 0.25, 0.35, 0.5} {
		g, err := graph.ConnectedGnp(n, p, rngutil.NewRand(seed+uint64(i)))
		if err != nil {
			return err
		}
		stop := sess.Time(fmt.Sprintf("expansion_sweep_p%.2f", p))
		h := spectral.EdgeExpansionSweep(g)
		stop()
		np := float64(n) * p
		t.AddRow(p, np, g.M(), g.MaxDegree(), h, h/np, float64(g.MaxDegree())/np)
	}
	fmt.Println(t)
	fmt.Println("E11 holds if h/np and Δ/np stay within constant bands across the sweep.")
	return nil
}
