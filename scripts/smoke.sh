#!/bin/sh
# CI smoke: build every cmd/ binary, run each at tiny scale with -trace,
# and check the trace file lands non-empty. Catches wiring rot between the
# experiment drivers and the cost-ledger/trace export that unit tests
# can't see (flag parsing, sink plumbing, file writing).
set -eu

tmp=$(mktemp -d)
bin="$tmp/bin"
trap 'rm -rf "$tmp"' EXIT

go build -o "$bin/" ./cmd/...

check_trace() {
	name=$1
	file=$2
	if ! [ -s "$file" ]; then
		echo "smoke: $name wrote no trace to $file" >&2
		exit 1
	fi
	if ! grep -q '"costs"' "$file"; then
		echo "smoke: $name trace lacks the cost-ledger section" >&2
		exit 1
	fi
	echo "smoke: $name ok ($(wc -c <"$file") bytes of trace)"
}

"$bin/hierarchy" -n 48 -d 6 -trace "$tmp/hierarchy.json" >/dev/null
check_trace hierarchy "$tmp/hierarchy.json"

"$bin/routing" -quick -trace "$tmp/routing.json" >/dev/null
check_trace routing "$tmp/routing.json"

"$bin/mst" -quick -trace "$tmp/mst.json" >/dev/null
check_trace mst "$tmp/mst.json"

"$bin/clique" -n 32 -trace "$tmp/clique.json" >/dev/null
check_trace clique "$tmp/clique.json"

"$bin/mincut" -trace "$tmp/mincut.json" >/dev/null
check_trace mincut "$tmp/mincut.json"

# walks traces per-round records (no cost ledger); mixing has no trace.
# Run both at small scale to keep the drivers alive.
"$bin/walks" -n 64 -d 6 -steps 20 -trace "$tmp/walks.json" >/dev/null
[ -s "$tmp/walks.json" ] || { echo "smoke: walks wrote no trace" >&2; exit 1; }
echo "smoke: walks ok"
"$bin/mixing" >/dev/null
echo "smoke: mixing ok"
