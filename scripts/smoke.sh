#!/bin/sh
# CI smoke: build every cmd/ binary, run each at tiny scale with -trace
# and -metrics, and check both exports land non-empty and schema-valid.
# Catches wiring rot between the experiment drivers and the
# cost-ledger/trace export plus the host-metrics session that unit tests
# can't see (flag parsing, sink plumbing, file writing, exit codes).
#
# Set SMOKE_OUT to keep the trace/metrics files (e.g. as CI artifacts);
# by default they land in a temp dir removed on exit.
set -eu

tmp=$(mktemp -d)
out=${SMOKE_OUT:-$tmp}
mkdir -p "$out"
bin="$tmp/bin"
trap 'rm -rf "$tmp"' EXIT

go build -o "$bin/" ./cmd/...

check_trace() {
	name=$1
	file=$2
	if ! [ -s "$file" ]; then
		echo "smoke: $name wrote no trace to $file" >&2
		exit 1
	fi
	if ! grep -q '"costs"' "$file"; then
		echo "smoke: $name trace lacks the cost-ledger section" >&2
		exit 1
	fi
	echo "smoke: $name ok ($(wc -c <"$file") bytes of trace)"
}

# Every binary must write a schema-stamped, non-empty metrics snapshot:
# at minimum the host_* session gauges, so an empty counters+gauges set
# means the session wiring is broken.
check_metrics() {
	name=$1
	file=$2
	if ! [ -s "$file" ]; then
		echo "smoke: $name wrote no metrics snapshot to $file" >&2
		exit 1
	fi
	if ! grep -q '"schema": "almostmix-metrics/v1"' "$file"; then
		echo "smoke: $name metrics snapshot lacks the schema stamp" >&2
		exit 1
	fi
	if ! grep -q '"host_session_wall_ns"' "$file"; then
		echo "smoke: $name metrics snapshot lacks the session gauges" >&2
		exit 1
	fi
	echo "smoke: $name metrics ok ($(wc -c <"$file") bytes)"
}

"$bin/hierarchy" -n 48 -d 6 -trace "$out/hierarchy.json" -metrics "$out/hierarchy-metrics.json" >/dev/null
check_trace hierarchy "$out/hierarchy.json"
check_metrics hierarchy "$out/hierarchy-metrics.json"

"$bin/routing" -quick -trace "$out/routing.json" -metrics "$out/routing-metrics.json" >/dev/null
check_trace routing "$out/routing.json"
check_metrics routing "$out/routing-metrics.json"

"$bin/mst" -quick -trace "$out/mst.json" -metrics "$out/mst-metrics.json" >/dev/null
check_trace mst "$out/mst.json"
check_metrics mst "$out/mst-metrics.json"

"$bin/clique" -n 32 -trace "$out/clique.json" -metrics "$out/clique-metrics.json" >/dev/null
check_trace clique "$out/clique.json"
check_metrics clique "$out/clique-metrics.json"

"$bin/mincut" -trace "$out/mincut.json" -metrics "$out/mincut-metrics.json" >/dev/null
check_trace mincut "$out/mincut.json"
check_metrics mincut "$out/mincut-metrics.json"

# walks traces per-round records (no cost ledger); mixing has no trace.
# Run both at small scale to keep the drivers alive.
"$bin/walks" -n 64 -d 6 -steps 20 -trace "$out/walks.json" -metrics "$out/walks-metrics.json" >/dev/null
[ -s "$out/walks.json" ] || { echo "smoke: walks wrote no trace" >&2; exit 1; }
echo "smoke: walks ok"
check_metrics walks "$out/walks-metrics.json"

"$bin/mixing" -metrics "$out/mixing-metrics.json" >/dev/null
echo "smoke: mixing ok"
check_metrics mixing "$out/mixing-metrics.json"

# The span/wall pairing: an engine-bearing run with metrics on must
# record span_wall_ns counters for its cost-ledger spans.
if ! grep -q 'span_wall_ns{' "$out/mst-metrics.json"; then
	echo "smoke: mst metrics snapshot lacks span_wall_ns pairing counters" >&2
	exit 1
fi
echo "smoke: span/wall pairing ok"

# A bad -pprof mode must fail loudly (exit code propagation).
if "$bin/mixing" -pprof bogus >/dev/null 2>&1; then
	echo "smoke: mixing accepted -pprof bogus" >&2
	exit 1
fi
echo "smoke: pprof flag validation ok"

# E15 at quick scale: the fault-injection degradation sweep must run and
# its fault counters must land in both the metrics snapshot and the trace.
"$bin/walks" -n 48 -d 6 -steps 10 -faults 'drop=0.05' \
	-trace "$out/walks-faults.json" -metrics "$out/walks-faults-metrics.json" >/dev/null
[ -s "$out/walks-faults.json" ] || { echo "smoke: faulty walks wrote no trace" >&2; exit 1; }
if ! grep -q '"dropped"' "$out/walks-faults.json"; then
	echo "smoke: faulty walks trace lacks fault counters" >&2
	exit 1
fi
if ! grep -q '"congest_msgs_dropped_total"' "$out/walks-faults-metrics.json"; then
	echo "smoke: faulty walks metrics snapshot lacks fault counters" >&2
	exit 1
fi
echo "smoke: E15 walks fault sweep ok"

"$bin/mst" -quick -faults 'drop=0.01' -metrics "$out/mst-faults-metrics.json" >/dev/null
if ! grep -q '"congest_msgs_dropped_total"' "$out/mst-faults-metrics.json"; then
	echo "smoke: faulty mst metrics snapshot lacks fault counters" >&2
	exit 1
fi
echo "smoke: E15 mst fault sweep ok"

# Hot-path scale smoke: one end-to-end n=1e5 engine run (ticker workload
# on a ring lattice) through benchsuite, with the zero-alloc gate on. The
# case must report allocs_per_op 0 — the arenas/CSR layout working at
# scale, not just in unit-test-sized graphs.
"$bin/benchsuite" -quick -reps 1 -run 'engine-scale/n=100000' -gate \
	-out "$out/bench-smoke.json" >/dev/null
if ! grep -q '"engine-scale/n=100000"' "$out/bench-smoke.json"; then
	echo "smoke: benchsuite wrote no engine-scale case" >&2
	exit 1
fi
if ! grep -q '"allocs_per_op": 0' "$out/bench-smoke.json"; then
	echo "smoke: n=1e5 engine run reported nonzero allocs_per_op" >&2
	exit 1
fi
if ! grep -q '"steady_allocs_per_round"' "$out/bench-smoke.json"; then
	echo "smoke: benchsuite gate recorded no steady-alloc measurements" >&2
	exit 1
fi
echo "smoke: E16 engine scale (n=1e5, zero-alloc) ok"

# E18 at quick scale: the cluster-scoped tier (expander decomposition +
# per-cluster hierarchies) must route and span through both drivers, and
# the decomposition / build / run ledgers must all land in the trace.
"$bin/routing" -decomp -quick -trace "$out/routing-decomp.json" \
	-metrics "$out/routing-decomp-metrics.json" >/dev/null
check_trace "routing -decomp" "$out/routing-decomp.json"
check_metrics "routing -decomp" "$out/routing-decomp-metrics.json"
for ledger in decomp decomp-build decomp-route; do
	if ! grep -q "\"run\": \"rr64d8 $ledger\"" "$out/routing-decomp.json"; then
		echo "smoke: routing -decomp trace lacks the $ledger ledger" >&2
		exit 1
	fi
done
"$bin/mst" -decomp -quick -trace "$out/mst-decomp.json" >/dev/null
check_trace "mst -decomp" "$out/mst-decomp.json"
if ! grep -q '"decomp-mst"' "$out/mst-decomp.json"; then
	echo "smoke: mst -decomp trace lacks the decomp-mst ledger" >&2
	exit 1
fi
"$bin/hierarchy" -n 48 -d 6 -decomp -trace "$out/hierarchy-decomp.json" >/dev/null
check_trace "hierarchy -decomp" "$out/hierarchy-decomp.json"
if ! grep -q 'decomp/certificates/cluster-' "$out/hierarchy-decomp.json"; then
	echo "smoke: hierarchy -decomp trace lacks per-cluster certificate spans" >&2
	exit 1
fi
echo "smoke: E18 decomposition tier ok"

# Uniform up-front flag validation: nonsense values and unwritable output
# paths must exit 2 before any work starts.
expect_reject() {
	desc=$1
	shift
	if "$@" >/dev/null 2>&1; then
		echo "smoke: accepted $desc" >&2
		exit 1
	fi
	"$@" >/dev/null 2>&1 || code=$?
	if [ "${code:-0}" -ne 2 ]; then
		echo "smoke: $desc exited $code, want 2" >&2
		exit 1
	fi
}
expect_reject "walks -workers -1" "$bin/walks" -workers -1
expect_reject "walks -n 1" "$bin/walks" -n 1
expect_reject "walks -steps -5" "$bin/walks" -steps -5
expect_reject "walks -seed -1" "$bin/walks" -seed -1
expect_reject "walks bad -faults" "$bin/walks" -faults 'drop=2.0'
expect_reject "mst -workers -2" "$bin/mst" -workers -2
expect_reject "mst -attempts 0" "$bin/mst" -attempts 0
expect_reject "hierarchy -d 0" "$bin/hierarchy" -d 0
expect_reject "clique -n 0" "$bin/clique" -n 0
expect_reject "benchsuite -reps 0" "$bin/benchsuite" -reps 0
expect_reject "mixing unwritable -metrics" "$bin/mixing" -metrics /no/such/dir/m.json
expect_reject "routing unwritable -trace" "$bin/routing" -quick -trace /no/such/dir/t.json
expect_reject "mincut unwritable -pprofout" "$bin/mincut" -pprof cpu -pprofout /no/such/dir/p.pprof
expect_reject "walks -transport bogus" "$bin/walks" -transport bogus
expect_reject "walks -shards 0" "$bin/walks" -shards 0
expect_reject "walks bad -listen" "$bin/walks" -transport tcp -listen not-a-hostport
expect_reject "walks proc with -obsout" "$bin/walks" -obsout "$out/never.json"
expect_reject "mst -transport bogus" "$bin/mst" -transport bogus
expect_reject "mst proc with -obsout" "$bin/mst" -quick -obsout "$out/never.json"
expect_reject "routing -phi 0" "$bin/routing" -decomp -phi 0
expect_reject "routing -phi 1.5" "$bin/routing" -decomp -phi 1.5
expect_reject "mst -decomp -phi 1" "$bin/mst" -decomp -phi 1
expect_reject "hierarchy -phi -0.1" "$bin/hierarchy" -decomp -phi -0.1
echo "smoke: flag validation ok"

# Export I/O failures must reach the exit code as 1 (a run that worked
# but could not deliver its artifacts), distinct from the flag-error 2.
# /dev/full passes the up-front Writable probe (open succeeds) and then
# fails every write with ENOSPC — exactly the late-failure class the
# exit-code contract covers.
expect_export_fail() {
	desc=$1
	shift
	code=0
	"$@" >/dev/null 2>&1 || code=$?
	if [ "$code" -ne 1 ]; then
		echo "smoke: $desc exited $code, want 1 (export I/O failure)" >&2
		exit 1
	fi
}
if [ -w /dev/full ]; then
	expect_export_fail "walks -trace /dev/full" \
		"$bin/walks" -n 48 -d 6 -steps 5 -trace /dev/full
	expect_export_fail "mixing -metrics /dev/full" \
		"$bin/mixing" -metrics /dev/full
	expect_export_fail "mst -trace /dev/full" \
		"$bin/mst" -quick -trace /dev/full
	expect_export_fail "benchsuite -out /dev/full" \
		"$bin/benchsuite" -quick -reps 1 -run 'engine-scale/n=100000' -out /dev/full
	echo "smoke: export exit-code propagation ok"
else
	echo "smoke: /dev/full unavailable, skipping export exit-code cases"
fi

# E17 at quick scale: the multi-process TCP backend must be trace-for-
# trace identical to the in-process engine. cmd/tcpnode sits next to the
# walks binary (both came out of the same go build -o "$bin/"), so the
# default -tcpnode discovery path is exercised too.
"$bin/walks" -n 48 -d 6 -steps 10 -trace "$out/walks-proc-par.json" >/dev/null
"$bin/walks" -n 48 -d 6 -steps 10 -transport tcp -shards 2 \
	-trace "$out/walks-tcp-par.json" >/dev/null
if ! cmp -s "$out/walks-proc-par.json" "$out/walks-tcp-par.json"; then
	echo "smoke: TCP transport trace diverges from the in-process engine" >&2
	exit 1
fi
echo "smoke: E17 TCP/proc trace parity ok"

# E20: faults over the wire. -faults with -transport=tcp — rejected
# before the fate-table handshake — must now run the E15 sweep on real
# shard processes and stay trace-for-trace identical to the in-process
# engine, coordinator-shipped fate windows and all.
"$bin/walks" -n 48 -d 6 -steps 10 -faults 'drop=0.05' \
	-trace "$out/walks-e20-proc.json" >/dev/null
"$bin/walks" -n 48 -d 6 -steps 10 -faults 'drop=0.05' -transport tcp -shards 2 \
	-trace "$out/walks-e20-tcp.json" >/dev/null
if ! cmp -s "$out/walks-e20-proc.json" "$out/walks-e20-tcp.json"; then
	echo "smoke: faulty TCP run's trace diverges from the in-process engine" >&2
	exit 1
fi
"$bin/mst" -quick -faults 'drop=0.01' -transport tcp -shards 2 >/dev/null
echo "smoke: E20 faulty TCP/proc trace parity ok"

# E19: distributed-run observability. A clean real-process tcp run with
# -obsout must leave a schema-valid merged document (both sides' flight
# recorders, wire stats, timeline, skew) and its metrics snapshot must
# carry non-zero shard-side tcpnet_shard_* counters — the TELEMETRY
# frame ship-back working end to end.
"$bin/walks" -n 48 -d 6 -steps 10 -transport tcp -shards 2 \
	-obsout "$out/walks-obs.json" -metrics "$out/walks-obs-metrics.json" >/dev/null
if ! grep -q '"schema": "almostmix-obs/v1"' "$out/walks-obs.json"; then
	echo "smoke: obs document lacks the schema stamp" >&2
	exit 1
fi
if ! grep -q '"reason": "finish"' "$out/walks-obs.json"; then
	echo "smoke: clean run's obs document does not say finish" >&2
	exit 1
fi
if ! grep -q 'tcpnet_shard_frames_total{shard=0}' "$out/walks-obs-metrics.json"; then
	echo "smoke: metrics snapshot lacks shard-side wire counters (TELEMETRY ship-back broken)" >&2
	exit 1
fi
if grep -A 1 '"tcpnet_shard_frames_total{shard=0}"' "$out/walks-obs-metrics.json" | grep -q '"value": 0'; then
	echo "smoke: shard-side wire counter is zero" >&2
	exit 1
fi
echo "smoke: E19 obs document + shard telemetry ok"

# E19 failure path: an induced stall (env fault injection on a real
# tcpnode process, short barrier deadline) must exit 1 and leave a
# barrier-deadline dump naming the guilty shard, its last completed
# round and the phase it hung in.
code=0
TCPNODE_STALL_SHARD=1 TCPNODE_STALL_ROUND=3 \
	"$bin/walks" -n 48 -d 6 -steps 10 -transport tcp -shards 2 -tcptimeout 2s \
	-obsout "$out/walks-stall-obs.json" >/dev/null 2>&1 || code=$?
if [ "$code" -ne 1 ]; then
	echo "smoke: stalled tcp run exited $code, want 1" >&2
	exit 1
fi
if ! grep -q '"reason": "barrier-deadline"' "$out/walks-stall-obs.json"; then
	echo "smoke: stall dump reason is not barrier-deadline" >&2
	exit 1
fi
if ! grep -q '"guilty_shard": 1' "$out/walks-stall-obs.json"; then
	echo "smoke: stall dump does not blame shard 1" >&2
	exit 1
fi
if ! grep -q '"phase": "step-wait"' "$out/walks-stall-obs.json"; then
	echo "smoke: stall dump does not name the step-wait phase" >&2
	exit 1
fi
echo "smoke: E19 induced stall attribution ok"

# E19 report join: cmd/obsreport must merge the obs document, the
# metrics snapshot and the benchsuite artifact into one report with the
# per-round attribution table, and name the guilty shard for the stall.
"$bin/obsreport" -obs "$out/walks-obs.json" -metrics "$out/walks-obs-metrics.json" \
	-bench "$out/bench-smoke.json" -out "$out/obsreport.txt"
if ! grep -q 'per-round attribution' "$out/obsreport.txt"; then
	echo "smoke: obsreport lacks the per-round attribution section" >&2
	exit 1
fi
if ! grep -q 'tcpnet_round_skew_ns' "$out/obsreport.txt"; then
	echo "smoke: obsreport metrics join lacks the skew histogram" >&2
	exit 1
fi
"$bin/obsreport" -obs "$out/walks-stall-obs.json" -out "$out/obsreport-stall.txt"
if ! grep -q 'guilty_shard=1' "$out/obsreport-stall.txt"; then
	echo "smoke: obsreport does not surface the guilty shard for the stall" >&2
	exit 1
fi
expect_reject "obsreport without -obs" "$bin/obsreport"
expect_export_fail "obsreport bad -obs file" "$bin/obsreport" -obs /no/such/obs.json
echo "smoke: E19 obsreport join ok"
