package almostmix

import (
	"math/rand/v2"

	"almostmix/internal/cliquealgo"
	"almostmix/internal/cliquemu"
	"almostmix/internal/cost"
	"almostmix/internal/embed"
	"almostmix/internal/graph"
	"almostmix/internal/metrics"
	"almostmix/internal/mincut"
	"almostmix/internal/mst"
	"almostmix/internal/mstbase"
	"almostmix/internal/rngutil"
	"almostmix/internal/route"
	"almostmix/internal/spectral"
)

// Re-exported core types. The facade exposes everything a downstream user
// needs without importing internal packages.
type (
	// Graph is an undirected weighted graph; see the constructors below.
	Graph = graph.Graph
	// Edge is one weighted edge of a Graph.
	Edge = graph.Edge
	// Params configures hierarchy construction; zero fields select the
	// paper's formulas with laptop-scale constants.
	Params = embed.Params
	// Hierarchy is the built routing structure of §3.1.
	Hierarchy = embed.Hierarchy
	// RouteRequest is one point-to-point packet delivery demand.
	RouteRequest = route.Request
	// RouteReport is the measured outcome of a routing run.
	RouteReport = route.Report
	// MSTResult is the outcome of the hierarchical MST (Theorem 1.1).
	MSTResult = mst.Result
	// BaselineResult is the outcome of a baseline MST algorithm.
	BaselineResult = mstbase.Result
	// CliqueResult is the outcome of a clique emulation (Theorem 1.3).
	CliqueResult = cliquemu.Result
	// MinCutResult is the outcome of the approximate minimum cut.
	MinCutResult = mincut.ApproxResult
	// WalkKind selects the lazy or the 2Δ-regular random walk.
	WalkKind = spectral.WalkKind
	// CostLedger is the hierarchical span ledger every embedded-tier
	// round total is derived from (Hierarchy.Costs, RouteReport.Costs,
	// MSTResult.Costs, CliqueResult.Costs).
	CostLedger = cost.Ledger
	// CostSpan is one node of a CostLedger's span tree.
	CostSpan = cost.Span
	// CostRow is one flattened ledger row, as exported by -trace.
	CostRow = cost.Row
	// MetricsRegistry is the host-side metrics registry behind -metrics:
	// counters, gauges and histograms measuring wall-clock behavior, kept
	// strictly apart from the simulated-round ledgers so traces stay
	// byte-deterministic.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time export of a MetricsRegistry,
	// writable as JSON or CSV.
	MetricsSnapshot = metrics.Snapshot
)

// Walk kinds (Definition 2.1 and 2.2).
const (
	LazyWalk    = spectral.Lazy
	RegularWalk = spectral.Regular
)

// DefaultParams returns the default hierarchy parameters.
func DefaultParams() Params { return embed.DefaultParams() }

// NewMetricsRegistry returns an empty host-metrics registry. Attach it to
// a simulator run (congest.Network.SetMetrics via the internal API, or
// the -metrics flag of the cmd binaries) and export with Snapshot.
func NewMetricsRegistry() *MetricsRegistry { return metrics.New() }

// NewRand returns a deterministic random generator for the given seed,
// usable with the graph constructors and weight assignment.
func NewRand(seed uint64) *rand.Rand { return rngutil.NewRand(seed) }

// Graph constructors (deterministic given the seed).

// NewRing returns the n-node cycle.
func NewRing(n int) *Graph { return graph.Ring(n) }

// NewComplete returns the complete graph K_n.
func NewComplete(n int) *Graph { return graph.Complete(n) }

// NewTorus returns the rows×cols wrap-around grid.
func NewTorus(rows, cols int) *Graph { return graph.Torus(rows, cols) }

// NewHypercube returns the dim-dimensional hypercube.
func NewHypercube(dim int) *Graph { return graph.Hypercube(dim) }

// NewRandomRegular returns a connected random d-regular graph.
func NewRandomRegular(n, d int, seed uint64) *Graph {
	return graph.RandomRegular(n, d, rngutil.NewRand(seed))
}

// NewGnp returns a connected Erdős–Rényi G(n,p) sample; p must be above
// the connectivity threshold.
func NewGnp(n int, p float64, seed uint64) (*Graph, error) {
	return graph.ConnectedGnp(n, p, rngutil.NewRand(seed))
}

// NewLollipop returns a clique with a path attached — the low-expansion
// family on which mixing-time-based algorithms degrade.
func NewLollipop(cliqueSize, pathLen int) *Graph { return graph.Lollipop(cliqueSize, pathLen) }

// NewBarbell returns two cliques joined by a path (minimum cut 1).
func NewBarbell(cliqueSize, bridgeLen int) *Graph { return graph.Barbell(cliqueSize, bridgeLen) }

// NewDumbbell returns two expanders joined by the given number of bridges.
func NewDumbbell(half, degree, bridges int, seed uint64) *Graph {
	return graph.Dumbbell(half, degree, bridges, rngutil.NewRand(seed))
}

// NewMargulis returns the explicit Margulis–Gabber–Galil expander on m²
// nodes (degree ≤ 8).
func NewMargulis(m int) *Graph { return graph.Margulis(m) }

// BuildHierarchy constructs the §3.1 hierarchical embedding on g.
func BuildHierarchy(g *Graph, p Params, seed uint64) (*Hierarchy, error) {
	return embed.Build(g, p, rngutil.NewSource(seed))
}

// Route delivers all requests via the hierarchical routing scheme
// (Theorem 1.2) and returns measured costs.
func Route(h *Hierarchy, reqs []RouteRequest, seed uint64) (*RouteReport, error) {
	return route.Route(h, reqs, rngutil.NewSource(seed))
}

// RouteExact routes like Route but also expands every packet's journey
// down to base-graph edges and schedules the real traffic end to end,
// measuring how conservative the per-level emulation accounting is.
func RouteExact(h *Hierarchy, reqs []RouteRequest, seed uint64) (*route.ExactReport, error) {
	return route.RouteExact(h, reqs, rngutil.NewSource(seed))
}

// RoutePhased splits heavy demands into random phases (footnote 3).
func RoutePhased(h *Hierarchy, reqs []RouteRequest, phases int, seed uint64) (*RouteReport, error) {
	return route.RoutePhased(h, reqs, phases, rngutil.NewSource(seed))
}

// PermutationWorkload generates the canonical permutation-routing demand.
func PermutationWorkload(g *Graph, seed uint64) []RouteRequest {
	return route.RandomPermutation(g, rngutil.NewRand(seed))
}

// DegreeWorkload generates the full-rate d_G(v)-messages-per-node demand
// of Theorem 1.2.
func DegreeWorkload(g *Graph, seed uint64) []RouteRequest {
	return route.DegreeDemand(g, rngutil.NewRand(seed))
}

// MST computes the minimum spanning tree of h's weighted base graph with
// the paper's algorithm (Theorem 1.1).
func MST(h *Hierarchy, seed uint64) (*MSTResult, error) {
	return mst.Run(h, rngutil.NewSource(seed))
}

// MSTKruskal computes the MST centrally — the verification ground truth.
func MSTKruskal(g *Graph) (edgeIDs []int, weight float64) { return mst.Kruskal(g) }

// MSTBaselineGHS runs the flood-based Borůvka baseline.
func MSTBaselineGHS(g *Graph) (*BaselineResult, error) { return mstbase.GHS(g) }

// MSTBaselineKP runs the Garay–Kutten–Peleg-style Õ(D+√n) baseline.
func MSTBaselineKP(g *Graph) (*BaselineResult, error) { return mstbase.KP(g) }

// MSTBaselineGHSNetwork runs synchronous Borůvka as genuine node programs
// on the CONGEST simulator — every message is simulated and the round
// count is measured, the full-fidelity counterpart of MSTBaselineGHS.
func MSTBaselineGHSNetwork(g *Graph, seed uint64) (*BaselineResult, error) {
	return mstbase.GHSNetwork(g, rngutil.NewSource(seed))
}

// MSTBaselineGHSNetworkParallel is MSTBaselineGHSNetwork on the parallel
// round engine with the given worker count (1 = sequential reference,
// <= 0 = one worker per CPU). Rounds and results are bit-identical for
// every worker count; only wall-clock time changes.
func MSTBaselineGHSNetworkParallel(g *Graph, seed uint64, workers int) (*BaselineResult, error) {
	return mstbase.GHSNetworkParallel(g, rngutil.NewSource(seed), workers)
}

// EmulateClique delivers one message between every ordered node pair via
// the hierarchy (Theorem 1.3).
func EmulateClique(h *Hierarchy, seed uint64) (*CliqueResult, error) {
	return cliquemu.Hierarchical(h, rngutil.NewSource(seed))
}

// EmulateCliqueDirect is the BFS-path store-and-forward baseline.
func EmulateCliqueDirect(g *Graph) (*CliqueResult, error) { return cliquemu.Direct(g) }

// CliqueMST runs Borůvka on the emulated congested clique — an example of
// executing an off-the-shelf clique algorithm over a sparse network.
func CliqueMST(h *Hierarchy, seed uint64) (*cliquealgo.MSTResult, error) {
	return cliquealgo.MST(h, seed)
}

// CliqueSum computes a global sum in one emulated clique round.
func CliqueSum(h *Hierarchy, values []float64, seed uint64) (float64, *cliquealgo.Result, error) {
	return cliquealgo.SumAggregate(h, values, seed)
}

// ApproxMinCut approximates the global minimum cut by greedy tree packing
// (trees ≤ 0 selects 2·log₂ n trees).
func ApproxMinCut(g *Graph, trees int, seed uint64) (*MinCutResult, error) {
	return mincut.Approx(g, trees, rngutil.NewRand(seed))
}

// ExactMinCut computes the exact minimum cut (Stoer–Wagner).
func ExactMinCut(g *Graph) (value float64, side []bool, err error) {
	return mincut.StoerWagner(g)
}

// MixingTime computes the exact mixing time (Definition 2.1) by dense
// distribution evolution; feasible for small graphs.
func MixingTime(g *Graph, kind WalkKind, maxSteps int) (int, error) {
	return spectral.MixingTime(g, kind, maxSteps)
}

// EstimateMixingTime returns the spectral mixing-time estimate used for
// larger graphs.
func EstimateMixingTime(g *Graph, kind WalkKind) int {
	return spectral.MixingTimeEstimate(g, kind)
}

// EdgeExpansion computes h(G) exactly (n ≤ 24).
func EdgeExpansion(g *Graph) float64 { return spectral.EdgeExpansion(g) }

// EdgeExpansionEstimate upper-bounds h(G) by a Fiedler sweep cut.
func EdgeExpansionEstimate(g *Graph) float64 { return spectral.EdgeExpansionSweep(g) }
