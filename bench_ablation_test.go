package almostmix

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// branching factor β, the level-zero walk length, the G0 degree, and the
// correlated-walk scheduler. Each reports the measured round metric the
// choice influences, so `go test -bench Ablation` quantifies every knob.

import (
	"fmt"
	"testing"

	"almostmix/internal/randomwalk"
	"almostmix/internal/rngutil"
	"almostmix/internal/spectral"
)

// ablationRoute builds a hierarchy with the given tweaks and routes one
// permutation, reporting the end-to-end rounds.
func ablationRoute(b *testing.B, mutate func(*Params)) {
	b.Helper()
	g := NewRandomRegular(96, 8, 77)
	tau, err := MixingTime(g, LazyWalk, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	p := DefaultParams()
	p.TauMix = tau
	mutate(&p)
	var rounds, build int
	for i := 0; i < b.N; i++ {
		h, err := BuildHierarchy(g, p, 78)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := Route(h, PermutationWorkload(g, 79), uint64(80+i))
		if err != nil {
			b.Fatal(err)
		}
		rounds = rep.BaseRounds
		build = h.ConstructionRoundsBase()
	}
	b.ReportMetric(float64(rounds), "route-rounds")
	b.ReportMetric(float64(build), "build-rounds")
}

// BenchmarkAblationBeta sweeps the branching factor: small β gives deep
// hierarchies (compounded emulation factors), large β gives shallow ones
// but quadratic portal work — the Lemma 3.4 trade-off.
func BenchmarkAblationBeta(b *testing.B) {
	for _, beta := range []int{3, 4, 8, 16} {
		b.Run(fmt.Sprintf("beta=%d", beta), func(b *testing.B) {
			ablationRoute(b, func(p *Params) {
				p.Beta = beta
				p.LeafSize = 12
			})
		})
	}
}

// BenchmarkAblationWalkLen sweeps the level-zero walk length multiplier:
// factor 1 gives shorter (cheaper) embedded paths, factor 3 more uniform
// G0 endpoints.
func BenchmarkAblationWalkLen(b *testing.B) {
	for _, factor := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("factor=%d", factor), func(b *testing.B) {
			ablationRoute(b, func(p *Params) { p.WalkLenFactor = factor })
		})
	}
}

// BenchmarkAblationDegreeG0 sweeps the G0 out-degree multiplier: more G0
// edges buy capacity (lower routing congestion) at higher emulation cost
// per G0 round.
func BenchmarkAblationDegreeG0(b *testing.B) {
	for _, c := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("c=%d", c), func(b *testing.B) {
			ablationRoute(b, func(p *Params) {
				p.DegreeG0C = c
				p.WalksC = 3 * c // keep walks ≥ degree
			})
		})
	}
}

// BenchmarkAblationCorrelatedWalks compares the independent Lemma 2.5
// scheduler against the correlated dealing the paper defers to its full
// version, at the k=1 regime where the additive log n term dominates.
func BenchmarkAblationCorrelatedWalks(b *testing.B) {
	g := NewRandomRegular(256, 4, 81)
	sources := randomwalk.SourcesPerNode(randomwalk.UniformCountTimesDegree(g, 1))
	const T = 50
	for _, correlated := range []bool{false, true} {
		name := "independent"
		if correlated {
			name = "correlated"
		}
		b.Run(name, func(b *testing.B) {
			var rounds int
			for i := 0; i < b.N; i++ {
				res := randomwalk.Run(g, sources, randomwalk.Config{
					Kind:       spectral.Lazy,
					Steps:      T,
					Correlated: correlated,
				}, rngutil.NewRand(uint64(82+i)))
				rounds = res.Stats.Rounds
			}
			b.ReportMetric(float64(rounds)/T, "rounds/step")
		})
	}
}
