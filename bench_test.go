package almostmix

// One benchmark per experiment in DESIGN.md's index (E1–E11). Each bench
// reports the measured CONGEST round counts as custom metrics, so
// `go test -bench . -benchmem` regenerates the quantities EXPERIMENTS.md
// discusses. Expensive shared structures (graphs, hierarchies) are built
// once outside the timed loops.

import (
	"sync"
	"testing"

	"almostmix/internal/graph"
	"almostmix/internal/randomwalk"
	"almostmix/internal/rngutil"
	"almostmix/internal/spectral"
)

type benchFx struct {
	g *Graph
	h *Hierarchy
}

var benchShared = sync.OnceValues(func() (*benchFx, error) {
	g := NewRandomRegular(128, 8, 21)
	g.AssignDistinctRandomWeights(NewRand(22))
	p := DefaultParams()
	// Benchmarks parameterize by the exact mixing time (cheap at this
	// scale), matching the τ_mix the theorems are stated in.
	tau, err := MixingTime(g, LazyWalk, 1_000_000)
	if err != nil {
		return nil, err
	}
	p.TauMix = tau
	h, err := BuildHierarchy(g, p, 23)
	if err != nil {
		return nil, err
	}
	return &benchFx{g: g, h: h}, nil
})

func benchFixture(b *testing.B) *benchFx {
	b.Helper()
	f, err := benchShared()
	if err != nil {
		b.Fatalf("fixture: %v", err)
	}
	return f
}

// BenchmarkE1MSTHierarchical regenerates experiment E1 (Theorem 1.1): the
// paper's MST on an expander, reporting measured base-graph rounds.
func BenchmarkE1MSTHierarchical(b *testing.B) {
	f := benchFixture(b)
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := MST(f.h, uint64(100+i))
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.AlgorithmRounds
	}
	b.ReportMetric(float64(rounds), "alg-rounds")
}

// BenchmarkE1MSTBaselineGHS is E1's flood-Borůvka competitor.
func BenchmarkE1MSTBaselineGHS(b *testing.B) {
	f := benchFixture(b)
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := MSTBaselineGHS(f.g)
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkE1MSTBaselineKP is E1's Õ(D+√n) competitor.
func BenchmarkE1MSTBaselineKP(b *testing.B) {
	f := benchFixture(b)
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := MSTBaselineKP(f.g)
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkE2RoutingPermutation regenerates E2 (Theorem 1.2): permutation
// routing on the hierarchy.
func BenchmarkE2RoutingPermutation(b *testing.B) {
	f := benchFixture(b)
	reqs := PermutationWorkload(f.g, 31)
	var rounds int
	for i := 0; i < b.N; i++ {
		rep, err := Route(f.h, reqs, uint64(200+i))
		if err != nil {
			b.Fatal(err)
		}
		rounds = rep.BaseRounds
	}
	b.ReportMetric(float64(rounds), "base-rounds")
}

// BenchmarkE2RoutingDegreeDemand is E2's full-rate d_G(v) demand.
func BenchmarkE2RoutingDegreeDemand(b *testing.B) {
	f := benchFixture(b)
	reqs := DegreeWorkload(f.g, 32)
	var rounds int
	for i := 0; i < b.N; i++ {
		rep, err := Route(f.h, reqs, uint64(300+i))
		if err != nil {
			b.Fatal(err)
		}
		rounds = rep.BaseRounds
	}
	b.ReportMetric(float64(rounds), "base-rounds")
}

// BenchmarkE3MixingTimes regenerates E3 (Lemma 2.3): exact 2Δ-regular
// mixing time vs the 8Δ²ln(n)/h² bound, on the torus family.
func BenchmarkE3MixingTimes(b *testing.B) {
	g := NewTorus(4, 4)
	h := EdgeExpansion(g)
	var tm int
	for i := 0; i < b.N; i++ {
		var err error
		tm, err = MixingTime(g, RegularWalk, 100000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tm), "tau-mix")
	b.ReportMetric(spectral.Lemma23Bound(g, h), "lemma23-bound")
}

// BenchmarkE4ParallelWalks regenerates E4 (Lemmas 2.4/2.5): k·d(v) walks
// per node, measured rounds per step.
func BenchmarkE4ParallelWalks(b *testing.B) {
	f := benchFixture(b)
	const k, steps = 4, 50
	sources := randomwalk.SourcesPerNode(randomwalk.UniformCountTimesDegree(f.g, k))
	rng := rngutil.NewRand(41)
	var stats randomwalk.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := randomwalk.Run(f.g, sources, randomwalk.Config{
			Kind:  spectral.Lazy,
			Steps: steps,
		}, rng)
		stats = res.Stats
	}
	b.ReportMetric(float64(stats.Rounds)/steps, "rounds/step")
	b.ReportMetric(float64(stats.MaxTokensAtNode), "max-tokens")
}

// BenchmarkE5G0Emulation regenerates E5 (§3.1.1): the measured cost of
// one G0 communication round in base rounds.
func BenchmarkE5G0Emulation(b *testing.B) {
	f := benchFixture(b)
	var cost int
	for i := 0; i < b.N; i++ {
		cost = f.h.G0.EmulationRounds
	}
	b.ReportMetric(float64(cost), "g0-round-cost")
	b.ReportMetric(float64(f.h.G0.ConstructionRounds), "g0-build-rounds")
}

// BenchmarkE6HierarchyBuild regenerates E6 (Lemmas 3.1–3.3, Figure 1):
// full hierarchy construction, reporting measured construction rounds.
func BenchmarkE6HierarchyBuild(b *testing.B) {
	g := NewRandomRegular(96, 8, 51)
	p := DefaultParams()
	var rounds int
	for i := 0; i < b.N; i++ {
		h, err := BuildHierarchy(g, p, uint64(500+i))
		if err != nil {
			b.Fatal(err)
		}
		rounds = h.ConstructionRoundsBase()
	}
	b.ReportMetric(float64(rounds), "build-rounds")
}

// BenchmarkE7CliqueHierarchical regenerates E7 (Theorem 1.3).
func BenchmarkE7CliqueHierarchical(b *testing.B) {
	g, err := NewGnp(48, 0.3, 61)
	if err != nil {
		b.Fatal(err)
	}
	h, err := BuildHierarchy(g, DefaultParams(), 62)
	if err != nil {
		b.Fatal(err)
	}
	var rounds int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := EmulateClique(h, uint64(600+i))
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkE7CliqueDirect is E7's shortest-path baseline.
func BenchmarkE7CliqueDirect(b *testing.B) {
	g, err := NewGnp(48, 0.3, 61)
	if err != nil {
		b.Fatal(err)
	}
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := EmulateCliqueDirect(g)
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkE8RoutingRecursion regenerates E8 (Lemma 3.4): the per-level
// decomposition of a routing run.
func BenchmarkE8RoutingRecursion(b *testing.B) {
	f := benchFixture(b)
	reqs := PermutationWorkload(f.g, 71)
	var leaf, hop int
	for i := 0; i < b.N; i++ {
		rep, err := Route(f.h, reqs, uint64(700+i))
		if err != nil {
			b.Fatal(err)
		}
		leaf = rep.LeafG0Rounds
		hop = 0
		for _, c := range rep.HopG0Rounds {
			hop += c
		}
	}
	b.ReportMetric(float64(leaf), "leaf-g0-rounds")
	b.ReportMetric(float64(hop), "hop-g0-rounds")
}

// BenchmarkE9VirtualTreeAudit regenerates E9 (Lemma 4.1): depth and
// degree invariants across an MST run.
func BenchmarkE9VirtualTreeAudit(b *testing.B) {
	f := benchFixture(b)
	var depth int
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := MST(f.h, uint64(800+i))
		if err != nil {
			b.Fatal(err)
		}
		depth = res.MaxTreeDepth
		ratio = res.MaxInDegRatio
	}
	b.ReportMetric(float64(depth), "max-tree-depth")
	b.ReportMetric(ratio, "max-indeg-ratio")
}

// BenchmarkE10MinCut regenerates E10: tree-packing approximation vs
// Stoer–Wagner on a planted-cut graph.
func BenchmarkE10MinCut(b *testing.B) {
	g := NewDumbbell(24, 4, 2, 81)
	exact, _, err := ExactMinCut(g)
	if err != nil {
		b.Fatal(err)
	}
	var approx int
	for i := 0; i < b.N; i++ {
		res, err := ApproxMinCut(g, 0, uint64(900+i))
		if err != nil {
			b.Fatal(err)
		}
		approx = res.CutSize
	}
	b.ReportMetric(float64(approx), "approx-cut")
	b.ReportMetric(exact, "exact-cut")
}

// BenchmarkE11GnpExpansion regenerates E11: h(G) and Δ on G(n,p) samples.
func BenchmarkE11GnpExpansion(b *testing.B) {
	g, err := NewGnp(128, 0.1, 91)
	if err != nil {
		b.Fatal(err)
	}
	var h float64
	for i := 0; i < b.N; i++ {
		h = EdgeExpansionEstimate(g)
	}
	b.ReportMetric(h, "h-sweep")
	b.ReportMetric(float64(g.MaxDegree()), "max-degree")
	b.ReportMetric(float64(g.N())*0.1, "np")
}

// BenchmarkE12ExactVsPaperAccounting regenerates E12: the measured slack
// between the paper's per-level emulation charging and the true
// end-to-end schedule of the same traffic.
func BenchmarkE12ExactVsPaperAccounting(b *testing.B) {
	f := benchFixture(b)
	reqs := PermutationWorkload(f.g, 95)
	var exact, paper, congestion, dilation int
	for i := 0; i < b.N; i++ {
		ex, err := RouteExact(f.h, reqs, uint64(950+i))
		if err != nil {
			b.Fatal(err)
		}
		exact = ex.ExactRounds
		paper = ex.Paper.BaseRounds
		congestion = ex.Congestion
		dilation = ex.Dilation
	}
	b.ReportMetric(float64(exact), "exact-rounds")
	b.ReportMetric(float64(paper), "paper-rounds")
	b.ReportMetric(float64(paper)/float64(exact), "slack")
	b.ReportMetric(float64(congestion), "congestion")
	b.ReportMetric(float64(dilation), "dilation")
}

func BenchmarkGraphGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = graph.RandomRegular(256, 8, rngutil.NewRand(uint64(i)))
	}
}
