// Approximate minimum cut of a bottlenecked network (§4's min-cut
// remark): a "dumbbell" of two healthy expander clusters joined by a few
// bridge links — the classic datacenter-interconnect weak-spot shape. The
// tree-packing approximation finds the bottleneck and is verified against
// exact Stoer–Wagner.
package main

import (
	"fmt"
	"log"

	"almostmix"
)

func main() {
	// Two 24-node degree-4 expander clusters joined by 3 bridges.
	g := almostmix.NewDumbbell(24, 4, 3, 17)
	fmt.Printf("network: %d nodes, %d links, two clusters with 3 bridges\n",
		g.N(), g.M())

	exact, exactSide, err := almostmix.ExactMinCut(g)
	if err != nil {
		log.Fatal(err)
	}
	res, err := almostmix.ApproxMinCut(g, 0, 18)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact min cut (Stoer–Wagner): %.0f links\n", exact)
	fmt.Printf("tree-packing approximation:   %d links (%d trees packed)\n",
		res.CutSize, res.TreesUsed)

	sizeOf := func(side []bool) int {
		c := 0
		for _, in := range side {
			if in {
				c++
			}
		}
		return c
	}
	fmt.Printf("cut sides: exact %d|%d nodes, approx %d|%d nodes\n",
		sizeOf(exactSide), g.N()-sizeOf(exactSide),
		sizeOf(res.Side), g.N()-sizeOf(res.Side))

	if float64(res.CutSize) == exact {
		fmt.Println("the approximation found the exact bottleneck ✓")
	} else {
		fmt.Printf("approximation ratio: %.2f\n", float64(res.CutSize)/exact)
	}
	fmt.Println("\ndistributed accounting: each packed tree is one hierarchical MST")
	fmt.Println("computation (Theorem 1.1), so the whole cut approximation stays in")
	fmt.Println("the τ_mix·2^O(√(log n·log log n)) round budget the paper states.")
}
