// Clique emulation over a sparse network (Theorem 1.3): run a
// congested-clique algorithm — here, distributed duplicate detection,
// where every node must learn whether any other node holds the same key —
// on top of a G(n,p) network that is nowhere near complete. One emulated
// clique round delivers all n·(n−1) messages.
package main

import (
	"fmt"
	"log"

	"almostmix"
)

func main() {
	const n = 56
	g, err := almostmix.NewGnp(n, 0.25, 13)
	if err != nil {
		log.Fatal(err)
	}
	h, err := almostmix.BuildHierarchy(g, almostmix.DefaultParams(), 14)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: G(%d, 0.25) with %d edges (a clique would have %d)\n",
		n, g.M(), n*(n-1)/2)

	// The congested-clique algorithm: every node holds a key; in one
	// clique round each node sends its key to everyone, then each node
	// locally detects collisions. Keys are planted so nodes 7 and 41
	// collide.
	keys := make([]int, n)
	rng := almostmix.NewRand(15)
	for v := range keys {
		keys[v] = int(rng.Uint64() % 1000)
	}
	keys[41] = keys[7]

	// Emulate the clique round: the hierarchy delivers all messages.
	res, err := almostmix.EmulateClique(h, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("emulated 1 clique round: %d messages in %d measured rounds (%d phases)\n",
		res.Messages, res.Rounds, res.Phases)

	// After the emulated round every node knows all keys; finish the
	// algorithm locally.
	collisions := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if keys[u] == keys[v] {
				collisions++
				fmt.Printf("duplicate key %d detected between nodes %d and %d\n",
					keys[u], u, v)
			}
		}
	}
	if collisions == 0 {
		fmt.Println("no duplicates (unexpected — the example plants one)")
	}

	// Baseline for scale: direct shortest-path store-and-forward.
	direct, err := almostmix.EmulateCliqueDirect(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct shortest-path baseline: %d rounds\n", direct.Rounds)
}
