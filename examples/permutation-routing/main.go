// Permutation routing on a peer-to-peer-style overlay (Theorem 1.2):
// every peer sends one message to a random other peer, all in parallel,
// through the hierarchical routing structure. The example also runs the
// full-rate workload where every peer sends d(v) messages, and reports
// the measured round decomposition.
package main

import (
	"fmt"
	"log"

	"almostmix"
)

func main() {
	// A random 6-regular overlay on 96 peers — the self-healing expander
	// topologies of the P2P literature the paper cites have exactly this
	// flavor.
	g := almostmix.NewRandomRegular(96, 6, 7)
	tau, err := almostmix.MixingTime(g, almostmix.LazyWalk, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	params := almostmix.DefaultParams()
	params.TauMix = tau
	h, err := almostmix.BuildHierarchy(g, params, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay: n=%d peers, τ_mix=%d; one-time hierarchy build: %d rounds\n",
		g.N(), tau, h.ConstructionRoundsBase())

	// One packet per peer, to a uniformly random destination peer.
	reqs := almostmix.PermutationWorkload(g, 9)
	rep, err := almostmix.Route(h, reqs, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npermutation workload: %d packets, all delivered\n", rep.Delivered)
	fmt.Printf("  preparation walks: %6d rounds\n", rep.PrepRounds)
	fmt.Printf("  hierarchical hops: %6d G0 rounds\n", rep.G0Rounds)
	fmt.Printf("  end to end:        %6d rounds (%.0f × τ_mix)\n",
		rep.BaseRounds, float64(rep.BaseRounds)/float64(tau))

	// Theorem 1.2's full demand: d(v) packets per peer.
	heavy := almostmix.DegreeWorkload(g, 11)
	repH, err := almostmix.Route(h, heavy, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull-rate workload: %d packets, all delivered in %d rounds\n",
		repH.Delivered, repH.BaseRounds)
	fmt.Printf("  max packets over one portal edge: %d (Lemma 3.4 predicts O(log n))\n",
		repH.MaxPortalLoad)
}
