// Network diagnostics: the paper's bounds are parameterized by mixing
// time and expansion, so the first question for any deployment is "how
// good an expander is my topology?". This example profiles several
// candidate overlay topologies with the spectral toolkit and predicts
// which ones the almost-mixing-time machinery will serve well.
package main

import (
	"fmt"
	"log"

	"almostmix"
)

func main() {
	type candidate struct {
		name string
		g    *almostmix.Graph
	}
	candidates := []candidate{
		{"random 8-regular", almostmix.NewRandomRegular(64, 8, 1)},
		{"Margulis expander", almostmix.NewMargulis(8)},
		{"hypercube", almostmix.NewHypercube(6)},
		{"torus 8x8", almostmix.NewTorus(8, 8)},
		{"ring", almostmix.NewRing(64)},
		{"two clusters, 2 bridges", almostmix.NewDumbbell(32, 6, 2, 2)},
	}

	fmt.Println("topology                 n   τ_mix  h (sweep)  verdict")
	fmt.Println("-----------------------  --  -----  ---------  -------")
	for _, c := range candidates {
		tau, err := almostmix.MixingTime(c.g, almostmix.LazyWalk, 5_000_000)
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		h := almostmix.EdgeExpansionEstimate(c.g)
		verdict := "good substrate"
		switch {
		case tau > 20*c.g.N():
			verdict = "poor: τ_mix ≫ n, use Õ(D+√n) algorithms"
		case tau > 2*c.g.N():
			verdict = "marginal: τ_mix ≈ n"
		}
		fmt.Printf("%-23s  %2d  %5d  %9.3f  %s\n", c.name, c.g.N(), tau, h, verdict)
	}

	fmt.Println("\nThe paper's routing/MST run in τ_mix·2^O(√(log n·log log n)) rounds:")
	fmt.Println("topologies in the top rows pay thousands of rounds; the bottom rows'")
	fmt.Println("mixing times inflate every figure proportionally (see EXPERIMENTS.md).")
}
