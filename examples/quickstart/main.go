// Quickstart: build an expander network, construct the hierarchical
// routing structure once, and compute a minimum spanning tree with the
// paper's algorithm — verifying the tree against centralized Kruskal and
// printing the measured CONGEST round counts alongside the classical
// baselines.
package main

import (
	"fmt"
	"log"

	"almostmix"
)

func main() {
	// A 128-node degree-8 random regular graph: the kind of expander
	// overlay (Chord-like P2P network) the paper's introduction
	// motivates. Distinct random weights make the MST unique.
	g := almostmix.NewRandomRegular(128, 8, 1)
	g.AssignDistinctRandomWeights(almostmix.NewRand(2))

	// Parameterize by the true mixing time (cheap to compute at this
	// scale) and build the §3.1 hierarchy. It is reusable across any
	// number of routing or MST invocations.
	tau, err := almostmix.MixingTime(g, almostmix.LazyWalk, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	params := almostmix.DefaultParams()
	params.TauMix = tau
	h, err := almostmix.BuildHierarchy(g, params, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: n=%d, m=%d, τ_mix=%d; hierarchy: β=%d, %d levels\n",
		g.N(), g.M(), tau, h.Beta, h.Levels)

	// Theorem 1.1: MST in τ_mix·2^O(√(log n·log log n)) rounds.
	res, err := almostmix.MST(h, 4)
	if err != nil {
		log.Fatal(err)
	}
	_, want := almostmix.MSTKruskal(g)
	fmt.Printf("hierarchical MST: weight=%.0f (Kruskal: %.0f), %d edges\n",
		res.Weight, want, len(res.Edges))
	fmt.Printf("  measured rounds: %d algorithm + %d construction\n",
		res.AlgorithmRounds, res.Rounds-res.AlgorithmRounds)

	// The classical baselines for comparison.
	ghs, err := almostmix.MSTBaselineGHS(g)
	if err != nil {
		log.Fatal(err)
	}
	kp, err := almostmix.MSTBaselineKP(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baselines: GHS %d rounds, Garay–Kutten–Peleg %d rounds\n",
		ghs.Rounds, kp.Rounds)
	fmt.Println("(the hierarchical algorithm's polylog constants dominate at this n;")
	fmt.Println(" its advantage is the τ_mix-only scaling — see EXPERIMENTS.md)")
}
