# Developer entry points. `make check` is the CI gate: vet, the full test
# suite, and the race-instrumented run. The race target uses -short so the
# heavyweight differential sweeps keep the instrumented run fast; drop the
# flag (make race SHORT=) for the exhaustive version.

SHORT ?= -short
# Per-benchmark budget for `make bench` and `make bench-scale` (any
# go-test -benchtime value: durations like 2s or fixed counts like 3x;
# BENCHTIME=1x gives a single pass of each size).
BENCHTIME ?= 1s
# Flags for `make bench-json`; default to CI scale plus the zero-alloc
# gate. Drop -quick for the full-size suite, which adds the n=1e6
# engine-scale point (BENCHSUITE_FLAGS="-gate" make bench-json).
BENCHSUITE_FLAGS ?= -quick -gate

.PHONY: build vet test race check bench bench-json bench-scale fuzz smoke faults tcp-suite fault-tcp-suite decomp-suite obs-suite

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race $(SHORT) ./...

# The fault-injection suite, race-instrumented and never shortened: the
# differential fault tests are the determinism contract for the fault
# layer across both engines and all worker counts.
faults:
	go test -race -run 'Fault|Crash|Sever|Delayed' ./internal/faults ./internal/congest ./internal/randomwalk ./internal/mstbase

check: vet test race faults

# End-to-end smoke of every experiment driver: build each cmd/ binary, run
# it at tiny scale with -trace, and check the trace lands non-empty.
smoke:
	sh scripts/smoke.sh

# The transport differential suite, race-instrumented and never shortened:
# every workload × shard count × seed over loopback TCP (goroutine-mode
# shards AND real cmd/tcpnode processes) must be trace-byte-identical to
# the sequential engine, and shard death/stall must surface as clean
# errors within the deadline. The hard -timeout keeps a wedged coordinator
# from hanging CI.
tcp-suite:
	go test -race -timeout 300s ./internal/transport/... ./internal/congest -run 'TestDifferentialSuite|TestProcMatchesDirectEngine|TestRealProcess|TestShardDeath|TestShardStall|TestDialShard|TestTCPValidates|TestFrame|TestNewShard|TestShardInject|TestConfigure'

# The faults-over-the-wire suite, race-instrumented and never shortened:
# the fate-table codec, the golden fault traces (reused from
# internal/congest/testdata/golden) byte-identical over proc and tcp at
# shards 1/2/4, per-shard fault counts summing to the in-process totals,
# and the walk re-issue / windowed-GHS recovery stories end-to-end over
# real processes including a killed-and-recovering shard.
fault-tcp-suite:
	go test -race -timeout 300s ./internal/transport -run 'TestGoldenFaultParityOverTCP|TestCrossShardFaultCountsSumToProc|TestWalksFaultsMatchesInProcessDriver|TestGHSFaultsMatchesInProcessDriver|TestWholeShardCrashRecoversOverTCP|TestGHSRecoveryAfterShardCrashOverTCP|TestPlainWorkloadsRejectFaultSpec|TestFateTable|TestParseFateTable'
	go test -race ./internal/faults

# The observability suite, race-instrumented and never shortened: the
# -obsout document on every exit path (an induced StallAtRound must
# produce a schema-valid dump naming the guilty shard, its last completed
# round and the barrier phase), the shard telemetry ship-back reaching
# the coordinator's registry, the flight-recorder ring contract, and the
# differential guarantee that full telemetry leaves trace bytes identical
# across backends and worker counts.
obs-suite:
	go test -race -timeout 300s ./internal/flightrec ./internal/transport -run 'TestObs|TestTelemetry|TestFlightRec|TestShardDeath|TestShardStall|TestNilRecorder|TestRing|TestPartialRing|TestAttribute|TestValidate|TestDump|TestWriteDump|TestConcurrentRecord|TestDefaultCapacity'

# The cluster-scoped-tier suite, race-instrumented and never shortened:
# the decomposition must be byte-identical across worker counts, the
# stitched router must deliver every packet deterministically, and the
# stitched MST must reproduce Kruskal's exact edge set (the correctness
# contract of DESIGN.md §3's decomposition section).
decomp-suite:
	go test -race -timeout 300s ./internal/decomp ./internal/embed ./internal/route ./internal/mst -run 'TestDecomp|TestBuildPartitioned|TestBuildDisconnectedError|TestRoutePartitioned|TestRunPartitioned'

bench:
	go test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./...

# Standard benchmark set with warmup/repetition control, written as a
# schema-versioned BENCH_<git-sha>.json for the perf trajectory. With
# -gate (the default) it also measures steady-state allocs/round on both
# engines and fails unless integer-zero (DESIGN.md §3, EXPERIMENTS.md E16).
bench-json:
	go run ./cmd/benchsuite $(BENCHSUITE_FLAGS)

# E16 engine scale sweep: ticker broadcasts on ring lattices at
# n ∈ {1e4, 1e5, 1e6}, both engines. ns/msg must stay essentially flat
# and the sequential engine must report 0 allocs/op. The 1e6 points need
# ~1 GB and a few seconds each; BENCHTIME=1x make bench-scale for one pass.
bench-scale:
	go test -run '^$$' -bench BenchmarkCongestEngineScale -benchmem -benchtime $(BENCHTIME) .

# Continuous fuzzing of the simulator's round engines (30s; the committed
# f.Add corpus always runs as part of `make test`).
fuzz:
	go test -run '^$$' -fuzz FuzzNetworkRun -fuzztime 30s ./internal/congest
