# Developer entry points. `make check` is the CI gate: vet, the full test
# suite, and the race-instrumented run. The race target uses -short so the
# heavyweight differential sweeps keep the instrumented run fast; drop the
# flag (make race SHORT=) for the exhaustive version.

SHORT ?= -short

.PHONY: build vet test race check bench fuzz smoke

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race $(SHORT) ./...

check: vet test race

# End-to-end smoke of every experiment driver: build each cmd/ binary, run
# it at tiny scale with -trace, and check the trace lands non-empty.
smoke:
	sh scripts/smoke.sh

bench:
	go test -run xxx -bench . -benchmem ./...

# Continuous fuzzing of the simulator's round engines (30s; the committed
# f.Add corpus always runs as part of `make test`).
fuzz:
	go test -run xxx -fuzz FuzzNetworkRun -fuzztime 30s ./internal/congest
