package almostmix

// Embedded-tier benchmarks for the cost-ledger refactor: the hierarchy is
// built once (benchFixture) and reused across iterations, so the timed
// loops measure routing and MST execution — including the span-ledger
// bookkeeping every round total is now derived from. The *LedgerExport
// variants additionally flatten the ledger each iteration, bounding the
// export overhead; comparing the pairs shows the ledger cost is within
// run-to-run noise.

import "testing"

// BenchmarkEmbeddedRoute routes a fixed permutation workload through the
// shared hierarchy; every reported round figure is read off the run's
// cost ledger.
func BenchmarkEmbeddedRoute(b *testing.B) {
	f := benchFixture(b)
	reqs := PermutationWorkload(f.g, 31)
	var rounds int
	for i := 0; i < b.N; i++ {
		rep, err := Route(f.h, reqs, 32)
		if err != nil {
			b.Fatal(err)
		}
		rounds = rep.BaseRounds
	}
	b.ReportMetric(float64(rounds), "base-rounds")
}

// BenchmarkEmbeddedRouteLedgerExport is BenchmarkEmbeddedRoute plus a full
// ledger flatten per iteration — the extra work -trace performs.
func BenchmarkEmbeddedRouteLedgerExport(b *testing.B) {
	f := benchFixture(b)
	reqs := PermutationWorkload(f.g, 31)
	var rows int
	for i := 0; i < b.N; i++ {
		rep, err := Route(f.h, reqs, 32)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(rep.Costs.Rows())
	}
	b.ReportMetric(float64(rows), "ledger-rows")
}

// BenchmarkEmbeddedMST runs the hierarchical MST on the shared hierarchy.
func BenchmarkEmbeddedMST(b *testing.B) {
	f := benchFixture(b)
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := MST(f.h, uint64(300+i))
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "total-rounds")
}

// BenchmarkEmbeddedMSTLedgerExport adds the per-iteration ledger flatten.
func BenchmarkEmbeddedMSTLedgerExport(b *testing.B) {
	f := benchFixture(b)
	var rows int
	for i := 0; i < b.N; i++ {
		res, err := MST(f.h, uint64(300+i))
		if err != nil {
			b.Fatal(err)
		}
		rows = len(res.Costs.Rows())
	}
	b.ReportMetric(float64(rows), "ledger-rows")
}
