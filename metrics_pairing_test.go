package almostmix

import (
	"fmt"
	"testing"

	"almostmix/internal/congest"
)

// TestEveryCostSpanHasWallCounter is the differential contract between
// the deterministic -trace export and the host-side -metrics snapshot:
// for every cost-ledger span that lands in a trace's costs section, the
// registry attached to the same sink must hold a span_wall_ns counter
// keyed by the identical (run, path) pair. A span present in one export
// but not the other means the two walks diverged and host timings can no
// longer be joined onto simulated-round rows.
func TestEveryCostSpanHasWallCounter(t *testing.T) {
	f := fixture(t)
	rep, err := Route(f.h, PermutationWorkload(f.g, 41), 42)
	if err != nil {
		t.Fatal(err)
	}

	reg := NewMetricsRegistry()
	sink := congest.NewTraceSink().WithMetrics(reg)
	sink.Label("pairing").AddCosts("construction", f.h.Costs)
	sink.AddCosts("route", rep.Costs)

	if len(sink.Costs) == 0 {
		t.Fatal("trace sink collected no cost spans")
	}
	snap := reg.Snapshot()
	for _, cs := range sink.Costs {
		name := fmt.Sprintf("span_wall_ns{run=%s,path=%s}", cs.Run, cs.Path)
		if _, ok := snap.Counter(name); !ok {
			t.Errorf("trace span %s/%s has no paired wall counter %q", cs.Run, cs.Path, name)
		}
	}

	// And the converse: no orphan wall counters beyond the traced spans.
	want := make(map[string]bool, len(sink.Costs))
	for _, cs := range sink.Costs {
		want[fmt.Sprintf("span_wall_ns{run=%s,path=%s}", cs.Run, cs.Path)] = true
	}
	for _, c := range snap.Counters {
		if len(c.Name) >= 13 && c.Name[:13] == "span_wall_ns{" && !want[c.Name] {
			t.Errorf("wall counter %q has no matching trace span", c.Name)
		}
	}
}
