package metrics

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestNilRegistryNoop pins the off-switch contract: every method on a nil
// registry and its nil instruments must be callable and inert.
func TestNilRegistryNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	c.Add(5)
	c.AddShard(3, 7)
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter value %d, want 0", got)
	}
	g := r.Gauge("g")
	g.Set(1.5)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge value %v, want 0", got)
	}
	h := r.Histogram("h", WallBuckets())
	h.Observe(100)
	h.ObserveShard(2, 200)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil histogram count=%d sum=%d, want 0,0", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	if snap.Schema != Schema {
		t.Fatalf("nil snapshot schema %q, want %q", snap.Schema, Schema)
	}
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", snap)
	}
}

// TestEmptySnapshot: a fresh registry exports a schema-stamped document
// with no instruments, and it survives a JSON round trip.
func TestEmptySnapshot(t *testing.T) {
	snap := New().Snapshot()
	if snap.Schema != Schema {
		t.Fatalf("schema %q, want %q", snap.Schema, Schema)
	}
	var sb strings.Builder
	if err := snap.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.Schema != Schema {
		t.Fatalf("round-tripped schema %q", back.Schema)
	}
}

// TestHistogramSingleSample: one observation lands in exactly one bucket,
// and count/sum agree with it.
func TestHistogramSingleSample(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []int64{10, 100, 1000})
	h.Observe(100) // boundary: v <= bound lands at that bound
	hs := r.Snapshot().Histogram("lat")
	if hs == nil {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.Count != 1 || hs.Sum != 100 {
		t.Fatalf("count=%d sum=%d, want 1,100", hs.Count, hs.Sum)
	}
	if len(hs.Buckets) != 1 || hs.Buckets[0].Le != 100 || hs.Buckets[0].Count != 1 {
		t.Fatalf("buckets %+v, want one at le=100", hs.Buckets)
	}
}

// TestHistogramOverflowBucket: observations above the last bound land in
// the implicit overflow bucket, exported with Le = OverflowLe.
func TestHistogramOverflowBucket(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []int64{10, 100})
	h.Observe(101)
	h.Observe(1 << 40)
	hs := r.Snapshot().Histogram("lat")
	if len(hs.Buckets) != 1 || hs.Buckets[0].Le != OverflowLe {
		t.Fatalf("buckets %+v, want only the overflow bucket", hs.Buckets)
	}
	if hs.Buckets[0].Count != 2 {
		t.Fatalf("overflow count %d, want 2", hs.Buckets[0].Count)
	}
}

// TestHistogramBucketBoundaries pins the v <= bound rule at every edge.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := New()
	h := r.Histogram("b", []int64{10, 20})
	for _, v := range []int64{0, 10} {
		h.Observe(v) // both land in le=10
	}
	h.Observe(11) // le=20
	h.Observe(21) // overflow
	hs := r.Snapshot().Histogram("b")
	want := []BucketSnap{{Le: 10, Count: 2}, {Le: 20, Count: 1}, {Le: OverflowLe, Count: 1}}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("buckets %+v, want %+v", hs.Buckets, want)
	}
	for i, b := range hs.Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
}

// TestHistogramBadBounds: non-ascending bounds are a programming error.
func TestHistogramBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-ascending bounds")
		}
	}()
	New().Histogram("bad", []int64{10, 10})
}

// TestShardMerge: values written via every shard stripe (including hints
// beyond numShards, which wrap) merge into one total.
func TestShardMerge(t *testing.T) {
	r := New()
	c := r.Counter("c")
	h := r.Histogram("h", []int64{100})
	var wantSum int64
	for shard := 0; shard < 2*numShards; shard++ {
		c.AddShard(shard, int64(shard+1))
		h.ObserveShard(shard, int64(shard))
		wantSum += int64(shard)
	}
	wantC := int64(2 * numShards * (2*numShards + 1) / 2)
	if got := c.Value(); got != wantC {
		t.Fatalf("counter %d, want %d", got, wantC)
	}
	if h.Count() != int64(2*numShards) || h.Sum() != wantSum {
		t.Fatalf("histogram count=%d sum=%d, want %d,%d", h.Count(), h.Sum(), 2*numShards, wantSum)
	}
	hs := r.Snapshot().Histogram("h")
	var bucketTotal int64
	for _, b := range hs.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != int64(2*numShards) {
		t.Fatalf("merged bucket total %d, want %d", bucketTotal, 2*numShards)
	}
}

// TestRegistryIdempotent: re-registration returns the same instrument, so
// call sites need no setup coordination.
func TestRegistryIdempotent(t *testing.T) {
	r := New()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter not idempotent")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Fatal("Gauge not idempotent")
	}
	h := r.Histogram("x", []int64{1, 2})
	if r.Histogram("x", []int64{99}) != h {
		t.Fatal("Histogram not idempotent")
	}
	// The original layout survives the conflicting re-registration.
	h.Observe(50)
	if hs := r.Snapshot().Histogram("x"); hs.Buckets[0].Le != OverflowLe {
		t.Fatalf("layout changed: %+v", hs.Buckets)
	}
}

// TestSnapshotOrdering: export order is name-sorted regardless of
// registration order, so the snapshot shape is deterministic.
func TestSnapshotOrdering(t *testing.T) {
	r := New()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Counter(name).Add(1)
		r.Gauge(name).Set(1)
		r.Histogram(name, []int64{10}).Observe(1)
	}
	snap := r.Snapshot()
	want := []string{"alpha", "mid", "zeta"}
	for i, c := range snap.Counters {
		if c.Name != want[i] {
			t.Fatalf("counter order %v", snap.Counters)
		}
	}
	for i, g := range snap.Gauges {
		if g.Name != want[i] {
			t.Fatalf("gauge order %v", snap.Gauges)
		}
	}
	for i, h := range snap.Histograms {
		if h.Name != want[i] {
			t.Fatalf("histogram order %v", snap.Histograms)
		}
	}
}

// TestConcurrentDeterminism: the same logical workload executed by 1, 2
// and 8 concurrent workers over shard-striped instruments must merge to
// identical snapshot values — the registry-side half of the engines'
// worker-count-independence guarantee.
func TestConcurrentDeterminism(t *testing.T) {
	const items = 800
	var want *Snapshot
	for _, workers := range []int{1, 2, 8} {
		r := New()
		c := r.Counter("work_total")
		h := r.Histogram("work_hist", []int64{100, 200, 400})
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < items; i += workers {
					c.AddShard(w, int64(i))
					h.ObserveShard(w, int64(i%500))
				}
			}(w)
		}
		wg.Wait()
		r.Gauge("workers_indep").Set(1)
		snap := r.Snapshot()
		if want == nil {
			want = snap
			continue
		}
		got, _ := json.Marshal(snap)
		exp, _ := json.Marshal(want)
		if string(got) != string(exp) {
			t.Fatalf("workers=%d snapshot diverged:\n%s\nvs\n%s", workers, got, exp)
		}
	}
}

// TestWriteFileJSONAndCSV: the extension selects the format and both
// outputs carry the schema/content.
func TestWriteFileJSONAndCSV(t *testing.T) {
	r := New()
	r.Counter("hits").Add(3)
	r.Histogram("lat", []int64{10}).Observe(1 << 20) // overflow → "+Inf" in CSV
	dir := t.TempDir()

	jf := filepath.Join(dir, "snap.json")
	if err := r.Snapshot().WriteFile(jf); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(jf)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf, &snap); err != nil {
		t.Fatalf("JSON output unparsable: %v", err)
	}
	if v, ok := snap.Counter("hits"); !ok || v != 3 {
		t.Fatalf("hits=%d ok=%v", v, ok)
	}

	cf := filepath.Join(dir, "snap.csv")
	if err := r.Snapshot().WriteFile(cf); err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(cf)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"name,value", "hits,3", "+Inf"} {
		if !strings.Contains(string(csv), want) {
			t.Fatalf("CSV lacks %q:\n%s", want, csv)
		}
	}
}

// TestWriteFileErrorPropagation: I/O failures surface as wrapped errors
// naming the path (the cmd binaries fold them into exit codes).
func TestWriteFileErrorPropagation(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "snap.json")
	err := New().Snapshot().WriteFile(bad)
	if err == nil {
		t.Fatal("no error writing into a missing directory")
	}
	if !strings.Contains(err.Error(), "metrics") {
		t.Fatalf("error %q lacks the metrics prefix", err)
	}
}

// TestSessionRoundTrip: StartSession + instrumentation + Close writes a
// schema-valid snapshot containing both the user counters and the host
// session gauges.
func TestSessionRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "session.json")
	sess, err := StartSession(path, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Registry() == nil {
		t.Fatal("metrics path set but registry nil")
	}
	stop := sess.Time("phase")
	stop()
	sess.Registry().Counter("events").Add(2)
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != Schema {
		t.Fatalf("schema %q", snap.Schema)
	}
	if v, ok := snap.Counter("events"); !ok || v != 2 {
		t.Fatalf("events=%d ok=%v", v, ok)
	}
	if _, ok := snap.Counter("phase_wall_ns"); !ok {
		t.Fatal("Time counter missing")
	}
	for _, g := range []string{"host_session_wall_ns", "host_alloc_bytes_total", "host_gomaxprocs"} {
		if _, ok := snap.Gauge(g); !ok {
			t.Fatalf("host gauge %s missing", g)
		}
	}
}

// TestSessionDisabled: with no -metrics path the session is a pure no-op
// whose Close succeeds without writing anything.
func TestSessionDisabled(t *testing.T) {
	sess, err := StartSession("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Registry() != nil {
		t.Fatal("registry allocated with metrics off")
	}
	sess.Time("x")() // must not panic
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	var nilSess *Session
	if nilSess.Registry() != nil || nilSess.Close() != nil {
		t.Fatal("nil session not inert")
	}
	nilSess.Time("y")()
}

// TestSessionCloseErrorPropagation: an unwritable snapshot destination
// surfaces from Close.
func TestSessionCloseErrorPropagation(t *testing.T) {
	sess, err := StartSession(filepath.Join(t.TempDir(), "missing", "out.json"), "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err == nil {
		t.Fatal("Close swallowed the write error")
	}
}

// TestSessionPprofModes: each supported mode produces a non-empty profile
// file; an unknown mode fails fast and leaves nothing behind.
func TestSessionPprofModes(t *testing.T) {
	for _, mode := range []string{"cpu", "heap", "mutex"} {
		path := filepath.Join(t.TempDir(), mode+".pprof")
		sess, err := StartSession("", mode, path)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if err := sess.Close(); err != nil {
			t.Fatalf("%s close: %v", mode, err)
		}
		if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
			t.Fatalf("%s: profile missing or empty (err=%v)", mode, err)
		}
	}
	bad := filepath.Join(t.TempDir(), "bogus.pprof")
	if _, err := StartSession("", "bogus", bad); err == nil {
		t.Fatal("unknown pprof mode accepted")
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatalf("rejected mode left a file behind (err=%v)", err)
	}
}

// TestPowersOf2 pins the latency bucket generator.
func TestPowersOf2(t *testing.T) {
	got := PowersOf2(3, 5)
	want := []int64{8, 16, 32}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("PowersOf2(3,5)=%v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on inverted range")
		}
	}()
	PowersOf2(5, 3)
}
