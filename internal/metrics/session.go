package metrics

// Session is the cmd-side bundle behind the -metrics and -pprof flags:
// one registry destined for one snapshot file, an optional runtime
// profile capture, and process-level accounting (session wall time,
// allocation deltas via runtime.ReadMemStats at the session's phase
// marks — start and close). Close is the single exit point: it stops the
// profile, stamps the host gauges, writes the snapshot and returns every
// I/O error so main can fold it into the exit code.

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"
)

// Session owns the host-observability lifecycle of one cmd invocation.
// A fully disabled session (no -metrics, no -pprof) is a valid no-op:
// Registry returns nil (so all instrumentation downstream collapses to
// nil checks) and Close does nothing.
type Session struct {
	reg       *Registry
	path      string
	start     time.Time
	startMem  runtime.MemStats
	pprofStop func() error
}

// StartSession begins host observability for a cmd run. metricsPath is
// the -metrics destination ("" disables the registry entirely);
// pprofMode is "", "cpu", "heap" or "mutex"; pprofPath defaults to
// "<mode>.pprof". The returned session is never nil on success.
func StartSession(metricsPath, pprofMode, pprofPath string) (*Session, error) {
	s := &Session{path: metricsPath, start: time.Now()}
	if metricsPath != "" {
		s.reg = New()
		runtime.ReadMemStats(&s.startMem)
	}
	if pprofMode != "" {
		stop, err := startPprof(pprofMode, pprofPath)
		if err != nil {
			return nil, err
		}
		s.pprofStop = stop
	}
	return s, nil
}

// Registry returns the session's registry — nil when -metrics is off, so
// every downstream instrument call is a no-op nil check.
func (s *Session) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Time starts a named wall-clock section; the returned stop function adds
// the elapsed nanoseconds to counter "<name>_wall_ns". With metrics off
// both halves are no-ops.
func (s *Session) Time(name string) func() {
	if s == nil || s.reg == nil {
		return func() {}
	}
	c := s.reg.Counter(name + "_wall_ns")
	t0 := time.Now()
	return func() { c.Add(time.Since(t0).Nanoseconds()) }
}

// Close stops the profile capture (if any), records the session-level
// host gauges and writes the snapshot file. It returns the first error
// encountered; callers must propagate it to the exit code.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	var err error
	if s.pprofStop != nil {
		err = s.pprofStop()
		s.pprofStop = nil
	}
	if s.reg == nil {
		return err
	}
	var end runtime.MemStats
	runtime.ReadMemStats(&end)
	s.reg.Gauge("host_session_wall_ns").Set(float64(time.Since(s.start).Nanoseconds()))
	s.reg.Gauge("host_alloc_bytes_total").Set(float64(end.TotalAlloc - s.startMem.TotalAlloc))
	s.reg.Gauge("host_heap_alloc_bytes").Set(float64(end.HeapAlloc))
	s.reg.Gauge("host_gc_cycles").Set(float64(end.NumGC - s.startMem.NumGC))
	s.reg.Gauge("host_gomaxprocs").Set(float64(runtime.GOMAXPROCS(0)))
	if werr := s.reg.Snapshot().WriteFile(s.path); err == nil {
		err = werr
	}
	return err
}

// startPprof begins the requested profile capture and returns the stop
// function that finalizes and writes it.
func startPprof(mode, path string) (func() error, error) {
	if path == "" {
		path = mode + ".pprof"
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("pprof: %w", err)
	}
	closeAll := func(err error) error {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("pprof: write %s: %w", path, err)
		}
		return nil
	}
	switch mode {
	case "cpu":
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("pprof: %w", err)
		}
		return func() error {
			pprof.StopCPUProfile()
			return closeAll(nil)
		}, nil
	case "heap":
		return func() error {
			runtime.GC() // fold transient garbage so the profile shows live heap
			return closeAll(pprof.WriteHeapProfile(f))
		}, nil
	case "mutex":
		prev := runtime.SetMutexProfileFraction(1)
		return func() error {
			err := pprof.Lookup("mutex").WriteTo(f, 0)
			runtime.SetMutexProfileFraction(prev)
			return closeAll(err)
		}, nil
	default:
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("pprof: unknown mode %q (want cpu, heap or mutex)", mode)
	}
}
