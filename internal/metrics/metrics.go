// Package metrics is the host-side registry: counters, gauges and
// fixed-bucket histograms measuring what the machine does while the
// simulator measures what the model does. The cost ledger (internal/cost)
// and the probe layer (internal/congest) account simulated rounds; this
// package accounts the wall-clock, allocation and scheduler behaviour of
// the process executing them, so the two trajectories can be read side by
// side (EXPERIMENTS.md).
//
// The contract mirrors the probe layer's (DESIGN.md §3):
//
//   - A nil *Registry is the off switch. Every method on a nil Registry
//     returns a nil instrument, and every method on a nil instrument is a
//     no-op, so an instrumented hot loop with metrics off pays exactly one
//     nil check — the same fast-path discipline as Ctx.Mark without a
//     probe (BenchmarkCongestEngine guards this).
//   - Instruments are lock-sharded. A Counter or Histogram holds a small
//     fixed array of cache-line-padded cells; single-writer call sites use
//     cell 0 via Add/Observe, and the parallel engine's workers write
//     their own cell via AddShard/ObserveShard, so concurrent accounting
//     never contends on a line. Snapshot merges the shards.
//   - Snapshots are deterministic in shape: instruments are sorted by
//     name, bucket layouts are fixed at construction, and shard values
//     merge by summation in shard order, so two runs differ only in the
//     measured values, never in the schema of the export.
//
// Registration is idempotent: asking for an existing name returns the
// existing instrument, so call sites need no shared setup phase.
package metrics

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// numShards is the stripe width of sharded instruments. Writers index with
// shard&(numShards-1), so any worker ID is a valid shard hint.
const numShards = 8

// cellPad spaces int64 cells a cache line apart so shards never share one.
const cellPad = 8

// Registry holds named instruments. The zero value is not usable — New
// allocates one — but a nil *Registry is: it hands out nil instruments
// whose methods all no-op, which is the metrics-off fast path.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (ascending; an implicit overflow bucket catches everything
// above the last bound) on first use. Later calls return the existing
// histogram regardless of bounds: the layout is fixed at creation. A nil
// registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("metrics: histogram %q bounds not ascending at %d", name, i))
			}
		}
		h = &Histogram{
			bounds: append([]int64(nil), bounds...),
			cells:  make([]int64, numShards*(len(bounds)+1)*cellPad),
		}
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing sharded int64.
type Counter struct {
	cells [numShards * cellPad]int64
}

// Add increments the counter on shard 0. Safe for concurrent use; prefer
// AddShard from the parallel engine's workers to avoid line contention.
// A nil counter ignores the call.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.cells[0], n)
}

// AddShard increments the counter on the given shard stripe (any int is a
// valid hint). A nil counter ignores the call.
func (c *Counter) AddShard(shard int, n int64) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.cells[(shard&(numShards-1))*cellPad], n)
}

// Value merges the shards. A nil counter reads 0.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for s := 0; s < numShards; s++ {
		total += atomic.LoadInt64(&c.cells[s*cellPad])
	}
	return total
}

// Gauge is a last-write-wins float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the value. A nil gauge ignores the call.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value reads the last value set (0 before any Set, or on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts int64 observations into fixed buckets: observation v
// lands in the first bucket with v <= bound, or in the implicit overflow
// bucket above the last bound. Counts and the running sum are sharded like
// Counter cells.
type Histogram struct {
	bounds []int64
	// cells[(shard*(len(bounds)+1) + bucket) * cellPad] is the sharded
	// per-bucket count.
	cells []int64
	// sums and counts are the sharded Σv and N for mean derivation.
	sums   [numShards * cellPad]int64
	counts [numShards * cellPad]int64
}

// bucketOf locates v's bucket index (len(bounds) = overflow) by binary
// search over the fixed bounds.
func (h *Histogram) bucketOf(v int64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Observe records v on shard 0. A nil histogram ignores the call.
func (h *Histogram) Observe(v int64) { h.ObserveShard(0, v) }

// ObserveShard records v on the given shard stripe. A nil histogram
// ignores the call.
func (h *Histogram) ObserveShard(shard int, v int64) {
	if h == nil {
		return
	}
	s := shard & (numShards - 1)
	atomic.AddInt64(&h.cells[(s*(len(h.bounds)+1)+h.bucketOf(v))*cellPad], 1)
	atomic.AddInt64(&h.sums[s*cellPad], v)
	atomic.AddInt64(&h.counts[s*cellPad], 1)
}

// Count merges the per-shard observation counts (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for s := 0; s < numShards; s++ {
		n += atomic.LoadInt64(&h.counts[s*cellPad])
	}
	return n
}

// Sum merges the per-shard observation sums (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	var v int64
	for s := 0; s < numShards; s++ {
		v += atomic.LoadInt64(&h.sums[s*cellPad])
	}
	return v
}

// bucketCounts merges the shards into one count per bucket (overflow
// last), in shard order — the deterministic drain the snapshot exports.
func (h *Histogram) bucketCounts() []int64 {
	nb := len(h.bounds) + 1
	merged := make([]int64, nb)
	for s := 0; s < numShards; s++ {
		for b := 0; b < nb; b++ {
			merged[b] += atomic.LoadInt64(&h.cells[(s*nb+b)*cellPad])
		}
	}
	return merged
}

// PowersOf2 returns ascending power-of-two bounds from 2^lo to 2^hi
// inclusive — the standard latency bucket layout used for wall-time
// histograms (2^8 ns ≈ 256ns up to 2^30 ns ≈ 1.07s covers the engines'
// per-round range on any plausible host).
func PowersOf2(lo, hi int) []int64 {
	if lo < 0 || hi < lo || hi > 62 {
		panic(fmt.Sprintf("metrics: bad PowersOf2 range [%d,%d]", lo, hi))
	}
	bounds := make([]int64, 0, hi-lo+1)
	for e := lo; e <= hi; e++ {
		bounds = append(bounds, int64(1)<<uint(e))
	}
	return bounds
}

// WallBuckets is the default per-round wall-time bucket layout.
func WallBuckets() []int64 { return PowersOf2(8, 30) }
