package metrics

// Snapshot export: one deterministic, schema-versioned view of a registry,
// written as JSON (the -metrics flag's .json form, and the form embedded
// into BENCH_*.json by cmd/benchsuite) or as concatenated harness.Table
// CSV. Export shares the probe layer's error discipline: every write path
// returns its I/O error so the cmd binaries can propagate it to their exit
// code instead of best-effort writing.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"almostmix/internal/harness"
)

// Schema identifies the snapshot layout. Bump on any incompatible change
// so downstream consumers of -metrics files can dispatch on it.
const Schema = "almostmix-metrics/v1"

// CounterSnap is one exported counter.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one exported gauge.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// BucketSnap is one exported histogram bucket: the count of observations v
// with prev bound < v <= Le. The overflow bucket carries Le = MaxInt64.
type BucketSnap struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// OverflowLe marks the upper bound of a histogram's overflow bucket.
const OverflowLe = math.MaxInt64

// HistogramSnap is one exported histogram: total count and sum plus the
// merged per-bucket counts (empty buckets are elided; Buckets is nil for a
// histogram that saw no observations).
type HistogramSnap struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// Snapshot is the point-in-time export of a registry, instruments sorted
// by name so the shape is deterministic.
type Snapshot struct {
	Schema     string          `json:"schema"`
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
}

// Snapshot merges every instrument's shards and returns the sorted export.
// A nil registry snapshots to the empty (but schema-stamped) document.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{Schema: Schema}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters = append(snap.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	for name, h := range r.histograms {
		hs := HistogramSnap{Name: name, Count: h.Count(), Sum: h.Sum()}
		for b, count := range h.bucketCounts() {
			if count == 0 {
				continue
			}
			le := int64(OverflowLe)
			if b < len(h.bounds) {
				le = h.bounds[b]
			}
			hs.Buckets = append(hs.Buckets, BucketSnap{Le: le, Count: count})
		}
		snap.Histograms = append(snap.Histograms, hs)
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}

// Counter returns the snapshotted value of the named counter and whether
// it was present.
func (s *Snapshot) Counter(name string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge returns the snapshotted value of the named gauge and whether it
// was present.
func (s *Snapshot) Gauge(name string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// Histogram returns the snapshotted histogram by name, or nil.
func (s *Snapshot) Histogram(name string) *HistogramSnap {
	for i := range s.Histograms {
		if s.Histograms[i].Name == name {
			return &s.Histograms[i]
		}
	}
	return nil
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of a snapshotted
// histogram as the upper bound of the first bucket whose cumulative
// count reaches q·Count — the standard fixed-bucket upper estimate, so
// p99 of a PowersOf2 layout is exact to within one bucket. A histogram
// with no observations (or a nil receiver) reports 0; a quantile that
// lands in the overflow bucket reports OverflowLe.
func (h *HistogramSnap) Quantile(q float64) int64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := int64(math.Ceil(q * float64(h.Count)))
	if need < 1 {
		need = 1
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= need {
			return b.Le
		}
	}
	return OverflowLe
}

// Tables renders the snapshot as harness tables (counters, gauges,
// histogram buckets), the CSV building blocks of the non-JSON export.
func (s *Snapshot) Tables() []*harness.Table {
	ct := harness.NewTable("metrics counters", "name", "value")
	for _, c := range s.Counters {
		ct.AddRow(c.Name, c.Value)
	}
	gt := harness.NewTable("metrics gauges", "name", "value")
	for _, g := range s.Gauges {
		gt.AddRow(g.Name, g.Value)
	}
	ht := harness.NewTable("metrics histograms", "name", "le", "count", "total_count", "sum")
	for _, h := range s.Histograms {
		if len(h.Buckets) == 0 {
			ht.AddRow(h.Name, "-", 0, h.Count, h.Sum)
			continue
		}
		for _, b := range h.Buckets {
			le := fmt.Sprintf("%d", b.Le)
			if b.Le == OverflowLe {
				le = "+Inf"
			}
			ht.AddRow(h.Name, le, b.Count, h.Count, h.Sum)
		}
	}
	return []*harness.Table{ct, gt, ht}
}

// WriteJSON writes the snapshot as one indented JSON document.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes the snapshot as consecutive CSV tables separated by
// blank lines: counters, gauges, histograms.
func (s *Snapshot) WriteCSV(w io.Writer) error {
	for i, tb := range s.Tables() {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, tb.CSV()); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes the snapshot to path — JSON when the extension is
// .json, CSV otherwise — and returns any I/O error (create, write or
// close), wrapped with the path for the cmd exit message.
func (s *Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if filepath.Ext(path) == ".json" {
		err = s.WriteJSON(f)
	} else {
		err = s.WriteCSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("metrics: write %s: %w", path, err)
	}
	return nil
}
