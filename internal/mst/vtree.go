package mst

import (
	"fmt"
)

// Forest maintains the virtual trees T(C) of §4: one rooted tree per
// Borůvka fragment, over the physical nodes of the component. Tree edges
// are virtual (arbitrary node pairs routable by ID); Lemma 4.1's
// invariants — depth O(log² n), per-node in-degree growth O(1) per
// iteration beyond the ≤ d_G(v) merge attachments, and parent knowledge —
// are maintained by the token-merge balancing process implemented in
// balance.
type Forest struct {
	parent []int32 // virtual-tree parent; -1 at roots
	frag   []int32 // fragment identifier (the root node's ID)
	inDeg  []int32 // virtual-tree in-degree (children count), audited
}

// NewForest returns the singleton forest: every node is its own fragment.
func NewForest(n int) *Forest {
	f := &Forest{
		parent: make([]int32, n),
		frag:   make([]int32, n),
		inDeg:  make([]int32, n),
	}
	for v := range f.parent {
		f.parent[v] = -1
		f.frag[v] = int32(v)
	}
	return f
}

// Fragment returns the fragment ID of node v.
func (f *Forest) Fragment(v int32) int32 { return f.frag[v] }

// Parent returns v's virtual-tree parent (-1 at roots).
func (f *Forest) Parent(v int32) int32 { return f.parent[v] }

// InDegree returns v's number of virtual-tree children.
func (f *Forest) InDegree(v int32) int32 { return f.inDeg[v] }

// NumFragments counts the remaining fragments.
func (f *Forest) NumFragments() int {
	count := 0
	for v, p := range f.parent {
		if p < 0 && f.frag[v] == int32(v) {
			count++
		}
	}
	return count
}

// Depths returns the depth of every node in its virtual tree.
func (f *Forest) Depths() []int32 {
	n := len(f.parent)
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	var walk func(v int32) int32
	walk = func(v int32) int32 {
		if depth[v] >= 0 {
			return depth[v]
		}
		if f.parent[v] < 0 {
			depth[v] = 0
			return 0
		}
		d := walk(f.parent[v]) + 1
		depth[v] = d
		return d
	}
	for v := int32(0); v < int32(n); v++ {
		walk(v)
	}
	return depth
}

// MaxDepth returns the maximum virtual-tree depth over all fragments.
func (f *Forest) MaxDepth() int {
	maxD := int32(0)
	for _, d := range f.Depths() {
		if d > maxD {
			maxD = d
		}
	}
	return int(maxD)
}

// Attach merges a tail fragment into a head fragment: the tail's root
// becomes a child of attachment point y (the head-side endpoint of the
// tail's minimum-weight outgoing edge). The caller relabels fragments
// afterwards via Relabel.
func (f *Forest) Attach(tailRoot, y int32) {
	if f.parent[tailRoot] >= 0 {
		panic(fmt.Sprintf("mst: node %d is not a root", tailRoot))
	}
	f.parent[tailRoot] = y
	f.inDeg[y]++
}

// Relabel assigns every node the fragment ID of its tree root. It returns
// the number of distinct fragments.
func (f *Forest) Relabel() int {
	n := len(f.parent)
	for v := range f.frag {
		f.frag[v] = -1
	}
	var rootOf func(v int32) int32
	rootOf = func(v int32) int32 {
		if f.frag[v] >= 0 {
			return f.frag[v]
		}
		if f.parent[v] < 0 {
			f.frag[v] = v
			return v
		}
		r := rootOf(f.parent[v])
		f.frag[v] = r
		return r
	}
	roots := make(map[int32]struct{})
	for v := int32(0); v < int32(n); v++ {
		roots[rootOf(v)] = struct{}{}
	}
	return len(roots)
}

// balanceResult reports the token process outcome for auditing.
type balanceResult struct {
	Waves     int // tree levels the token wave traversed
	Reparents int // virtual edges rewired
}

// balance runs the Lemma 4.1 token-merge process on the head tree after
// attachments: one token per distinct attachment point percolates up the
// (pre-attachment) head tree; wherever two or more tokens meet, the
// creation points of arriving tokens are re-parented under the child
// through which they arrived, and a fresh token continues from the merge
// point. The final merge at the root re-parents the surviving creation
// points likewise, keeping every newly attached subtree within O(log n)
// of the root.
//
// snapshotParent must be the parent table of the head tree before this
// iteration's attachments; token movement follows the snapshot while
// re-parenting mutates the live table.
func (f *Forest) balance(headRoot int32, attachPoints []int32, snapshotParent []int32, snapshotDepth []int32) balanceResult {
	var res balanceResult
	if len(attachPoints) == 0 {
		return res
	}
	type token struct {
		creation int32
		arrived  int32 // node it last moved from (child of position); -1 if fresh
	}
	// Deduplicate attachment points; one token each.
	at := make(map[int32][]token)
	maxDepth := int32(0)
	seen := make(map[int32]bool, len(attachPoints))
	for _, p := range attachPoints {
		if seen[p] {
			continue
		}
		seen[p] = true
		at[p] = append(at[p], token{creation: p, arrived: -1})
		if snapshotDepth[p] > maxDepth {
			maxDepth = snapshotDepth[p]
		}
	}

	mergeAt := func(v int32, tokens []token) token {
		for _, t := range tokens {
			// Re-parent the creation point under the child through
			// which its token arrived, unless it already is that child
			// (or the creation point is v itself / the head root).
			w, u := t.creation, t.arrived
			if u < 0 || w == u || w == v || w == headRoot {
				continue
			}
			if f.parent[w] != u {
				if old := f.parent[w]; old >= 0 {
					f.inDeg[old]--
				}
				f.parent[w] = u
				f.inDeg[u]++
				res.Reparents++
			}
		}
		return token{creation: v, arrived: -1}
	}

	for d := maxDepth; d >= 1; d-- {
		res.Waves++
		next := make(map[int32][]token)
		for pos, tokens := range at {
			if snapshotDepth[pos] != d {
				// Not yet reached by the wave (or already above it);
				// tokens above the wave cannot exist by construction,
				// so this is a waiting token below its start — keep.
				next[pos] = append(next[pos], tokens...)
				continue
			}
			p := snapshotParent[pos]
			if p < 0 {
				next[pos] = append(next[pos], tokens...)
				continue
			}
			for _, t := range tokens {
				t.arrived = pos
				next[p] = append(next[p], t)
			}
		}
		at = make(map[int32][]token, len(next))
		for pos, tokens := range next {
			if len(tokens) >= 2 && pos != headRoot {
				at[pos] = []token{mergeAt(pos, tokens)}
			} else {
				at[pos] = tokens
			}
		}
	}
	// Final merge at the root.
	if tokens := at[headRoot]; len(tokens) > 0 {
		mergeAt(headRoot, tokens)
	}
	return res
}

// Validate checks structural invariants: parent pointers are acyclic and
// every non-root reaches its fragment's root.
func (f *Forest) Validate() error {
	n := len(f.parent)
	for v := int32(0); v < int32(n); v++ {
		slow, fast := v, v
		for {
			if f.parent[fast] < 0 {
				break
			}
			fast = f.parent[fast]
			if f.parent[fast] < 0 {
				break
			}
			fast = f.parent[fast]
			slow = f.parent[slow]
			if slow == fast {
				return fmt.Errorf("mst: parent cycle through node %d", v)
			}
		}
		root := v
		for f.parent[root] >= 0 {
			root = f.parent[root]
		}
		if f.frag[v] != f.frag[root] {
			return fmt.Errorf("mst: node %d fragment %d != root fragment %d", v, f.frag[v], f.frag[root])
		}
	}
	return nil
}
