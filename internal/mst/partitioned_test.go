package mst

import (
	"sort"
	"testing"

	"almostmix/internal/decomp"
	"almostmix/internal/embed"
	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

func buildTier(t *testing.T, g *graph.Graph, dp decomp.Params) *embed.Partitioned {
	t.Helper()
	dec, err := decomp.Decompose(g, dp)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := embed.BuildPartitioned(dec, embed.DefaultParams(), rngutil.NewSource(13))
	if err != nil {
		t.Fatal(err)
	}
	return pe
}

// checkSpanningTree verifies res is a spanning tree of g with Kruskal's
// weight (with distinct weights, Kruskal's exact edge set).
func checkSpanningTree(t *testing.T, g *graph.Graph, res *PartitionedResult) {
	t.Helper()
	if len(res.Edges) != g.N()-1 {
		t.Fatalf("%d edges for %d nodes", len(res.Edges), g.N())
	}
	uf := make([]int, g.N())
	for i := range uf {
		uf[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for uf[x] != x {
			uf[x] = uf[uf[x]]
			x = uf[x]
		}
		return x
	}
	for _, id := range res.Edges {
		e := g.Edge(id)
		ru, rv := find(int(e.U)), find(int(e.V))
		if ru == rv {
			t.Fatalf("edge %d closes a cycle", id)
		}
		uf[ru] = rv
	}
	wantEdges, wantWeight := Kruskal(g)
	if res.Weight != wantWeight {
		t.Fatalf("weight %g, Kruskal %g", res.Weight, wantWeight)
	}
	_ = wantEdges
	if got := res.Costs.Root.Total(); got != res.Rounds {
		t.Fatalf("ledger root totals %d, result says %d", got, res.Rounds)
	}
	if res.Rounds != res.ClusterRounds+res.StitchRounds {
		t.Fatalf("Rounds %d != ClusterRounds %d + StitchRounds %d",
			res.Rounds, res.ClusterRounds, res.StitchRounds)
	}
	if err := res.Costs.Err(); err != nil {
		t.Fatalf("ledger violations: %v", err)
	}
}

func TestRunPartitionedWorstCaseGraphs(t *testing.T) {
	cases := map[string]*graph.Graph{
		"lollipop": graph.Lollipop(32, 16),
		"barbell":  graph.Barbell(16, 8),
		"chunglu":  mustConnected(t, 96),
	}
	for name, g := range cases {
		g.AssignDistinctRandomWeights(rngutil.NewRand(21))
		pe := buildTier(t, g, decomp.Params{})
		res, err := RunPartitioned(pe, rngutil.NewSource(4))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkSpanningTree(t, g, res)
		wantEdges, _ := Kruskal(g)
		sort.Ints(wantEdges)
		if len(wantEdges) != len(res.Edges) {
			t.Fatalf("%s: %d edges vs Kruskal's %d", name, len(res.Edges), len(wantEdges))
		}
		for i, id := range wantEdges {
			if res.Edges[i] != id {
				t.Fatalf("%s: edge set differs from Kruskal at %d: %d vs %d", name, i, res.Edges[i], id)
			}
		}
	}
}

func mustConnected(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.ConnectedChungLu(n, 2.5, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunPartitionedExpanderMatchesDirect(t *testing.T) {
	g := graph.RandomRegular(64, 8, rngutil.NewRand(9))
	g.AssignDistinctRandomWeights(rngutil.NewRand(10))
	pe := buildTier(t, g, decomp.Params{})
	if len(pe.Clusters) != 1 {
		t.Fatalf("expander split into %d clusters", len(pe.Clusters))
	}
	res, err := RunPartitioned(pe, rngutil.NewSource(4))
	if err != nil {
		t.Fatal(err)
	}
	checkSpanningTree(t, g, res)
	direct, err := Run(pe.Clusters[0].H, rngutil.NewSource(4).Child("cluster", 0))
	if err != nil {
		t.Fatal(err)
	}
	if direct.Weight != res.Weight {
		t.Fatalf("stitched weight %g != direct hierarchical MST weight %g", res.Weight, direct.Weight)
	}
}

func TestRunPartitionedDirectTiers(t *testing.T) {
	// A 4-path split into two 2-node direct tiers still yields the MST
	// (which is the whole path).
	g := graph.Path(4)
	g.AssignDistinctRandomWeights(rngutil.NewRand(2))
	pe := buildTier(t, g, decomp.Params{Phi: 0.5, Eps: 0.9, MinSize: 2})
	res, err := RunPartitioned(pe, rngutil.NewSource(1))
	if err != nil {
		t.Fatal(err)
	}
	checkSpanningTree(t, g, res)
}

func TestRunPartitionedRejectsDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	dec, err := decomp.Decompose(g, decomp.Params{})
	if err != nil {
		t.Fatal(err)
	}
	pe, err := embed.BuildPartitioned(dec, embed.DefaultParams(), rngutil.NewSource(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunPartitioned(pe, rngutil.NewSource(1)); err == nil {
		t.Fatal("RunPartitioned accepted a disconnected base graph")
	}
}

func TestRunPartitionedDeterminism(t *testing.T) {
	g := graph.Barbell(16, 8)
	g.AssignDistinctRandomWeights(rngutil.NewRand(7))
	pe := buildTier(t, g, decomp.Params{})
	a, err := RunPartitioned(pe, rngutil.NewSource(6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPartitioned(pe, rngutil.NewSource(6))
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.Weight != b.Weight || len(a.Edges) != len(b.Edges) {
		t.Fatalf("identical runs differ: %+v vs %+v", a, b)
	}
}
