package mst

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"almostmix/internal/embed"
	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

type fixture struct {
	g *graph.Graph
	h *embed.Hierarchy
}

var shared = sync.OnceValues(func() (*fixture, error) {
	r := rngutil.NewRand(1)
	g := graph.RandomRegular(64, 6, r)
	g.AssignDistinctRandomWeights(r)
	p := embed.DefaultParams()
	p.Beta = 4
	p.LeafSize = 12
	h, err := embed.Build(g, p, rngutil.NewSource(2))
	if err != nil {
		return nil, err
	}
	return &fixture{g: g, h: h}, nil
})

func testFixture(t *testing.T) *fixture {
	t.Helper()
	f, err := shared()
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	return f
}

func sortedCopy(xs []int) []int {
	out := make([]int, len(xs))
	copy(out, xs)
	sort.Ints(out)
	return out
}

func TestKruskalOnKnownGraph(t *testing.T) {
	// Triangle with weights 1, 2, 3: MST = the two lightest edges.
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(0, 2, 3)
	edges, w := Kruskal(g)
	if w != 3 {
		t.Fatalf("MST weight %v, want 3", w)
	}
	got := sortedCopy(edges)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("MST edges %v, want [0 1]", got)
	}
}

func TestKruskalSpanningTreeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rngutil.NewRand(seed)
		g, err := graph.ConnectedGnp(24, 0.3, r)
		if err != nil {
			return true
		}
		g.AssignDistinctRandomWeights(r)
		edges, _ := Kruskal(g)
		if len(edges) != g.N()-1 {
			return false
		}
		// The chosen edges must connect the graph.
		sub := graph.New(g.N())
		for _, id := range edges {
			e := g.Edge(id)
			sub.AddEdge(e.U, e.V, e.W)
		}
		return sub.IsConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchicalMSTMatchesKruskal(t *testing.T) {
	fx := testFixture(t)
	res, err := Run(fx.h, rngutil.NewSource(5))
	if err != nil {
		t.Fatal(err)
	}
	wantEdges, wantW := Kruskal(fx.g)
	if res.Weight != wantW {
		t.Fatalf("hierarchical MST weight %v, Kruskal %v", res.Weight, wantW)
	}
	got, want := sortedCopy(res.Edges), sortedCopy(wantEdges)
	if len(got) != len(want) {
		t.Fatalf("edge count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("edge sets differ at %d: %d vs %d", i, got[i], want[i])
		}
	}
	if res.Rounds <= res.AlgorithmRounds {
		t.Fatal("total rounds should include construction")
	}
}

func TestMSTIterationInvariants(t *testing.T) {
	fx := testFixture(t)
	res, err := Run(fx.h, rngutil.NewSource(6))
	if err != nil {
		t.Fatal(err)
	}
	n := fx.g.N()
	logN := log2int(n)
	if len(res.Iterations) == 0 {
		t.Fatal("no iterations recorded")
	}
	// Fragments shrink by a constant factor in expectation; any single
	// iteration may stall on unlucky coins, but counts never increase.
	prevFrags := n + 1
	for i, it := range res.Iterations {
		if it.Fragments > prevFrags {
			t.Fatalf("iteration %d: fragments increased (%d -> %d)", i, prevFrags, it.Fragments)
		}
		prevFrags = it.Fragments
		if it.Rounds <= 0 {
			t.Fatalf("iteration %d has non-positive rounds", i)
		}
	}
	if got := res.Iterations[0].Fragments; got != n {
		t.Fatalf("first iteration saw %d fragments, want %d", got, n)
	}
	// Lemma 4.1 shape: depth stays O(log² n) with small constants.
	if res.MaxTreeDepth > 4*logN*logN {
		t.Fatalf("max tree depth %d exceeds 4·log²n = %d", res.MaxTreeDepth, 4*logN*logN)
	}
	// Degree invariant: inDeg ≤ d_G(v)·O(log n).
	if res.MaxInDegRatio > 4*float64(logN) {
		t.Fatalf("max in-degree ratio %v exceeds 4·log n", res.MaxInDegRatio)
	}
}

func TestMSTDeterministic(t *testing.T) {
	fx := testFixture(t)
	a, err := Run(fx.h, rngutil.NewSource(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fx.h, rngutil.NewSource(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.Weight != b.Weight {
		t.Fatal("same seed, different MST run")
	}
}

func TestMSTOnGnp(t *testing.T) {
	r := rngutil.NewRand(8)
	g, err := graph.ConnectedGnp(48, 0.25, r)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignDistinctRandomWeights(r)
	p := embed.DefaultParams()
	p.Beta = 4
	p.LeafSize = 12
	h, err := embed.Build(g, p, rngutil.NewSource(9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(h, rngutil.NewSource(10))
	if err != nil {
		t.Fatal(err)
	}
	_, wantW := Kruskal(g)
	if res.Weight != wantW {
		t.Fatalf("weight %v, want %v", res.Weight, wantW)
	}
}

func TestForestBasics(t *testing.T) {
	f := NewForest(5)
	if f.NumFragments() != 5 {
		t.Fatalf("fresh forest has %d fragments", f.NumFragments())
	}
	f.Attach(1, 0)
	f.Attach(2, 1)
	if got := f.Relabel(); got != 3 {
		t.Fatalf("fragments after merges = %d, want 3", got)
	}
	if f.Fragment(2) != 0 || f.Fragment(1) != 0 {
		t.Fatal("relabel wrong")
	}
	depths := f.Depths()
	if depths[0] != 0 || depths[1] != 1 || depths[2] != 2 {
		t.Fatalf("depths %v", depths)
	}
	if f.InDegree(0) != 1 || f.InDegree(1) != 1 {
		t.Fatal("in-degrees wrong")
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestForestAttachNonRootPanics(t *testing.T) {
	f := NewForest(3)
	f.Attach(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("attaching non-root did not panic")
		}
	}()
	f.Attach(1, 2)
}

func TestBalanceKeepsValidTree(t *testing.T) {
	// Build a deliberately deep head tree (a path), attach many tails,
	// and verify balancing keeps the structure a valid tree.
	const n = 40
	f := NewForest(n)
	// Path 0 <- 1 <- ... <- 19 (0 is root).
	for v := int32(1); v < 20; v++ {
		f.Attach(v, v-1)
	}
	f.Relabel()
	snapParent := make([]int32, n)
	copy(snapParent, f.parent)
	snapDepth := f.Depths()
	// Attach tails 20..29 to points spread along the path.
	var points []int32
	for i := int32(0); i < 10; i++ {
		y := i * 2
		f.Attach(20+i, y)
		points = append(points, y)
	}
	res := f.balance(0, points, snapParent, snapDepth)
	if res.Waves == 0 {
		t.Fatal("no balancing waves ran")
	}
	f.Relabel()
	if err := f.Validate(); err != nil {
		t.Fatalf("balance broke the forest: %v", err)
	}
	for v := int32(0); v < 30; v++ {
		if f.Fragment(v) != 0 {
			t.Fatalf("node %d left fragment 0", v)
		}
	}
}

func TestComputeMWOE(t *testing.T) {
	// Two fragments {0,1} and {2,3} with crossing edges of weight 5, 3.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	heavy := g.AddEdge(0, 2, 5)
	light := g.AddEdge(1, 3, 3)
	f := NewForest(4)
	f.Attach(1, 0)
	f.Attach(3, 2)
	f.Relabel()
	mwoe := computeMWOE(g, f)
	if got := mwoe[f.Fragment(0)]; got.edge != light || got.y != 3 {
		t.Fatalf("fragment 0 MWOE = %+v, want edge %d to node 3", got, light)
	}
	if got := mwoe[f.Fragment(2)]; got.edge != light || got.y != 1 {
		t.Fatalf("fragment 2 MWOE = %+v", got)
	}
	_ = heavy
}

func TestMSTLedgerDerivesRounds(t *testing.T) {
	f := testFixture(t)
	res, err := Run(f.h, rngutil.NewSource(5))
	if err != nil {
		t.Fatal(err)
	}
	led := res.Costs
	if led == nil {
		t.Fatal("Run left Costs nil")
	}
	if err := led.Err(); err != nil {
		t.Fatal(err)
	}
	con, alg := led.Root.Child("construction"), led.Root.Child("algorithm")
	if con == nil || alg == nil {
		t.Fatal("ledger lacks construction/algorithm spans")
	}
	// Children sum to the parent, and the public figures read off the
	// ledger; the construction child is the hierarchy's own ledger.
	if led.Root.Total() != con.Rolled()+alg.Rolled() {
		t.Fatalf("root %d != construction %d + algorithm %d",
			led.Root.Total(), con.Rolled(), alg.Rolled())
	}
	if res.Rounds != led.Root.Total() {
		t.Fatalf("Rounds %d != root total %d", res.Rounds, led.Root.Total())
	}
	if res.AlgorithmRounds != alg.Total() {
		t.Fatalf("AlgorithmRounds %d != algorithm span %d", res.AlgorithmRounds, alg.Total())
	}
	if con.Total() != f.h.ConstructionRoundsBase() {
		t.Fatalf("construction span %d != hierarchy %d", con.Total(), f.h.ConstructionRoundsBase())
	}
	if f.h.Costs != nil && con != f.h.Costs.Root {
		t.Fatal("construction span is not the hierarchy's own ledger root")
	}
	// Differential: the seed code's accounting still holds.
	if res.Rounds != res.AlgorithmRounds+f.h.ConstructionRoundsBase() {
		t.Fatal("Rounds formula violated")
	}

	// Per-iteration spans: fragment exchange + repeated tree steps.
	sum := 0
	for i, it := range res.Iterations {
		sp := alg.Child(fmt.Sprintf("iteration-%02d", i))
		if sp == nil {
			t.Fatalf("no iteration-%02d span", i)
		}
		if sp.Total() != it.Rounds {
			t.Fatalf("iteration %d span %d != stats %d", i, sp.Total(), it.Rounds)
		}
		fe, ts := sp.Child("fragment-exchange"), sp.Child("tree-steps")
		if fe == nil || ts == nil {
			t.Fatalf("iteration %d lacks fragment-exchange/tree-steps", i)
		}
		if fe.Rolled()+ts.Rolled() != sp.Total() {
			t.Fatalf("iteration %d children %d+%d != %d", i, fe.Rolled(), ts.Rolled(), sp.Total())
		}
		if ts.Total() != it.StepRounds {
			t.Fatalf("iteration %d tree-step span %d != measured step %d", i, ts.Total(), it.StepRounds)
		}
		if it.Rounds != 1+(it.UpcastSteps+it.BalanceWaves)*it.StepRounds {
			t.Fatalf("iteration %d Rounds formula violated", i)
		}
		sum += sp.Total()
	}
	if sum != res.AlgorithmRounds {
		t.Fatalf("iteration spans sum %d != AlgorithmRounds %d", sum, res.AlgorithmRounds)
	}
}
