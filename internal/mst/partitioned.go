package mst

// Cross-cluster MST over the cluster-scoped tier: a per-cluster minimum
// spanning forest phase followed by Borůvka on the sparsified stitch
// graph.
//
// Correctness rests on the cycle property: an edge that is not in its
// cluster's local MST closes a cycle inside the cluster on which it is
// the heaviest edge, so it is in no MST of the base graph. The union of
// the per-cluster trees and all cross edges therefore contains an MST,
// and the MST of that sparsified graph is exactly the MST of the base
// graph — the naive alternative (contract clusters, connect them by
// their lightest boundary edges) is NOT minimum in general.
//
// Costs: the per-cluster phase runs the hierarchical MST (mst.Run) on
// each cluster's embedding — clusters are edge-disjoint, so the phase
// costs the maximum cluster's algorithm rounds. Direct tiers (clusters
// too small for a hierarchy) run flood-based GHS on the cluster graph.
// The stitch phase is mstbase.GHS on the sparsified graph, whose edges
// are real base-graph edges, so its flood rounds are base rounds.

import (
	"fmt"
	"sort"

	"almostmix/internal/cost"
	"almostmix/internal/embed"
	"almostmix/internal/graph"
	"almostmix/internal/mstbase"
	"almostmix/internal/rngutil"
)

// PartitionedResult is the outcome of a cross-cluster MST computation.
type PartitionedResult struct {
	// Edges are the chosen MST edge IDs in the base graph, ascending.
	Edges []int
	// Weight is the total weight of the chosen edges.
	Weight float64
	// Rounds is the total measured base rounds: ClusterRounds +
	// StitchRounds (the tier construction is accounted separately, in
	// Partitioned.Costs, as it is reusable).
	Rounds int
	// ClusterRounds is the per-cluster MSF phase: the maximum cluster's
	// rounds (clusters are edge-disjoint and run in parallel).
	ClusterRounds int
	// StitchRounds is the Borůvka phase on the sparsified graph.
	StitchRounds int
	// StitchIterations counts the stitch phase's Borůvka iterations.
	StitchIterations int
	// SparsifiedEdges is the stitch graph's edge count (per-cluster
	// trees plus cross edges).
	SparsifiedEdges int
	// Costs is the run's ledger, rooted at "decomp-mst" (base rounds):
	// the charged cluster maximum with informational per-cluster
	// ledgers, then the stitch charge.
	Costs *cost.Ledger
}

// RunPartitioned computes the MST of pe's base graph through the
// cluster-scoped tier. Edge weights should be distinct (use
// AssignDistinctRandomWeights) for a unique tree; with ties the reported
// tree is still minimum but tie-breaking differs from Kruskal's.
func RunPartitioned(pe *embed.Partitioned, src *rngutil.Source) (*PartitionedResult, error) {
	g := pe.Base
	if !g.IsConnected() {
		return nil, fmt.Errorf("mst: %w", graph.ErrDisconnected)
	}

	led := cost.New("decomp-mst", "base rounds")
	res := &PartitionedResult{}

	// Phase 1: per-cluster minimum spanning forests. keep marks the base
	// edges surviving the cycle-property filter.
	keep := make([]bool, g.M())
	clusterSpan := led.Open("clusters", "base rounds", 1)
	detail := clusterSpan.NewChild("per-cluster", "base rounds", 0)
	for ci, ce := range pe.Clusters {
		localEdges, rounds, ledRoot, err := clusterMSF(ce, src.Child("cluster", uint64(ci)))
		if err != nil {
			return nil, fmt.Errorf("mst: cluster %d: %w", ci, err)
		}
		for _, le := range localEdges {
			keep[ce.Cluster.Sub.GlobalEdge(le)] = true
		}
		sp := detail.NewChild(fmt.Sprintf("cluster-%02d", ci), "base rounds", 1)
		if ledRoot != nil {
			sp.Children = append(sp.Children, ledRoot)
		} else {
			sp.Add(rounds)
		}
		if rounds > res.ClusterRounds {
			res.ClusterRounds = rounds
		}
	}
	led.Charge(res.ClusterRounds)
	led.CloseExpect(res.ClusterRounds)

	// Phase 2: Borůvka on the sparsified graph — surviving tree edges
	// plus every cross edge, with base weights, in base edge-ID order.
	for _, id := range pe.Dec.CrossEdges {
		keep[id] = true
	}
	sparse := graph.New(g.N())
	toBase := make([]int, 0, g.N())
	for id, e := range g.Edges() {
		if keep[id] {
			sparse.AddEdge(int(e.U), int(e.V), e.W)
			toBase = append(toBase, id)
		}
	}
	res.SparsifiedEdges = sparse.M()
	ghs, err := mstbase.GHS(sparse)
	if err != nil {
		return nil, fmt.Errorf("mst: stitch phase: %w", err)
	}
	res.StitchRounds = ghs.Rounds
	res.StitchIterations = ghs.Iterations
	stitch := led.Open("stitch", "base rounds", 1)
	stitch.NewChild("iterations", "iterations", 0).Add(ghs.Iterations)
	stitch.NewChild("sparsified-edges", "edges", 0).Add(sparse.M())
	led.Charge(ghs.Rounds)
	led.CloseExpect(ghs.Rounds)

	res.Rounds = led.CloseExpect(res.ClusterRounds + res.StitchRounds)
	if err := led.Err(); err != nil {
		return nil, fmt.Errorf("mst: decomp-mst ledger: %w", err)
	}
	res.Costs = led

	for _, he := range ghs.Edges {
		res.Edges = append(res.Edges, toBase[he])
	}
	// GHS chooses in fragment order; report base IDs ascending.
	sort.Ints(res.Edges)
	res.Weight = g.TotalWeight(res.Edges)
	return res, nil
}

// clusterMSF computes one cluster's local MST and its measured cost in
// base rounds: the hierarchical algorithm's rounds for hierarchy tiers
// (whose ledger root is returned for informational grafting), flood GHS
// for direct tiers. Single-node clusters contribute nothing.
func clusterMSF(ce *embed.ClusterEmbedding, src *rngutil.Source) ([]int, int, *cost.Span, error) {
	sub := ce.Cluster.Sub
	if sub.G.N() < 2 {
		return nil, 0, nil, nil
	}
	if ce.Direct {
		r, err := mstbase.GHS(sub.G)
		if err != nil {
			return nil, 0, nil, err
		}
		return r.Edges, r.Rounds, nil, nil
	}
	r, err := Run(ce.H, src)
	if err != nil {
		return nil, 0, nil, err
	}
	return r.Edges, r.AlgorithmRounds, r.Costs.Root, nil
}
