// Package mst implements the paper's distributed minimum-spanning-tree
// algorithm (§4, Theorem 1.1): Borůvka iterations with random head/tail
// coin merges, where each iteration's minimum-weight-outgoing-edge
// computation is an upcast/downcast over per-fragment virtual trees whose
// edges are served by the hierarchical routing scheme of §3.
//
// Round accounting per iteration, all measured on the simulator:
//
//   - one physical round for the fragment-ID exchange between neighbors;
//   - one routing instance (child → parent over every virtual tree edge)
//     measured once and charged per tree level for the upcast, again for
//     the downcast, and per balancing wave (the paper repeats the same
//     routing pattern once per level, so the per-step request multiset is
//     identical; we measure it once per iteration and multiply).
package mst

import (
	"fmt"
	"math"
	"sort"

	"almostmix/internal/cost"
	"almostmix/internal/embed"
	"almostmix/internal/graph"
	"almostmix/internal/mstbase"
	"almostmix/internal/rngutil"
	"almostmix/internal/route"
)

// IterationStats records one Borůvka iteration of the hierarchical MST.
type IterationStats struct {
	Fragments     int // fragments at the start of the iteration
	Merges        int // tail-into-head merges performed
	TreeDepth     int // max virtual-tree depth before merging
	UpcastSteps   int // tree levels walked for upcast + downcast
	BalanceWaves  int // token waves during rebalancing
	StepRounds    int // measured base rounds of one routing step
	Rounds        int // total base rounds charged to this iteration
	MaxInDegRatio float64
}

// Result is the outcome of a hierarchical MST computation.
type Result struct {
	// Edges are the chosen MST edge IDs.
	Edges []int
	// Weight is the total weight of the chosen edges.
	Weight float64
	// Rounds is the total measured base-graph rounds, including the
	// hierarchy construction.
	Rounds int
	// AlgorithmRounds excludes the (reusable) hierarchy construction.
	AlgorithmRounds int
	// Iterations records per-iteration statistics (experiment E9).
	Iterations []IterationStats
	// MaxTreeDepth is the largest virtual-tree depth ever observed.
	MaxTreeDepth int
	// MaxInDegRatio is the largest observed inDeg(v)/d_G(v).
	MaxInDegRatio float64
	// Costs is the run's cost ledger: the hierarchy's construction
	// ledger grafted next to an algorithm span holding one span per
	// Borůvka iteration (fragment exchange plus the measured tree step
	// multiplied by upcast/downcast/balancing repetitions). Rounds and
	// AlgorithmRounds are read off it.
	Costs *cost.Ledger
}

// Run computes the MST of h's weighted base graph using the hierarchical
// routing structure. Edge weights should be distinct (use
// AssignDistinctRandomWeights); ties are broken by edge ID, under which
// the reported tree is still a minimum spanning tree.
func Run(h *embed.Hierarchy, src *rngutil.Source) (*Result, error) {
	g := h.Base
	n := g.N()
	if !g.IsConnected() {
		return nil, fmt.Errorf("mst: %w", graph.ErrDisconnected)
	}
	forest := NewForest(n)
	res := &Result{}
	coinRng := src.Stream("coins", 0)
	maxIter := 30 * (log2int(n) + 1)

	// The MST ledger reuses the hierarchy's construction ledger as a
	// grafted child (the structure is built once and amortized), next to
	// an algorithm span the iterations charge into.
	led := cost.New("mst", "base rounds")
	if h.Costs != nil {
		led.Attach(h.Costs.Root)
	} else {
		led.Open("construction", "base rounds", 1)
		led.Charge(h.ConstructionRoundsBase())
		led.Close()
	}
	led.Open("algorithm", "base rounds", 1)

	for iter := 0; iter < maxIter; iter++ {
		frags := forest.NumFragments()
		if frags == 1 {
			led.CloseExpect(res.AlgorithmRounds) // algorithm span
			res.Rounds = led.Close()             // root: construction + algorithm
			if err := led.Err(); err != nil {
				return nil, fmt.Errorf("mst: cost ledger: %w", err)
			}
			res.Costs = led
			res.Weight = g.TotalWeight(res.Edges)
			return res, nil
		}
		stats := IterationStats{Fragments: frags}

		depths := forest.Depths()
		stats.TreeDepth = maxDepth(depths)
		if stats.TreeDepth > res.MaxTreeDepth {
			res.MaxTreeDepth = stats.TreeDepth
		}

		// Measure the cost of one tree-routing step: every non-root
		// sends one message to its virtual parent.
		stepRep, err := measureTreeStep(h, forest, src.Child("step", uint64(iter)))
		if err != nil {
			return nil, fmt.Errorf("mst: iteration %d: %w", iter, err)
		}
		stepRounds := 0
		if stepRep != nil {
			stepRounds = stepRep.BaseRounds
		}
		stats.StepRounds = stepRounds

		// MWOE per fragment (the upcast's semantic outcome).
		mwoe := computeMWOE(g, forest)

		// Random head/tail coins per fragment, assigned in sorted
		// fragment order so runs are reproducible (map iteration order
		// would otherwise scramble the coin stream).
		fragIDs := make([]int32, 0, len(mwoe))
		for fragID := range mwoe {
			fragIDs = append(fragIDs, fragID)
		}
		sort.Slice(fragIDs, func(a, b int) bool { return fragIDs[a] < fragIDs[b] })
		coins := make(map[int32]bool, len(fragIDs)) // true = head
		for _, fragID := range fragIDs {
			coins[fragID] = coinRng.Uint64()&1 == 0
		}

		// Snapshot for balancing before any attachment.
		snapParent := make([]int32, n)
		copy(snapParent, forest.parent)
		snapDepth := depths

		// Merge tails into heads along their MWOEs (sorted order keeps
		// the edge list and balancing deterministic).
		attach := make(map[int32][]int32) // head root -> attachment points
		for _, fragID := range fragIDs {
			e := mwoe[fragID]
			if e.edge < 0 || coins[fragID] {
				continue // head or no outgoing edge
			}
			target := forest.Fragment(e.y)
			if !coins[target] {
				continue // tail → tail: skip this iteration
			}
			forest.Attach(fragID, e.y)
			res.Edges = append(res.Edges, e.edge)
			attach[target] = append(attach[target], e.y)
			stats.Merges++
		}

		// Rebalance each head tree that received attachments.
		waves := 0
		for headRoot, points := range attach {
			b := forest.balance(headRoot, points, snapParent, snapDepth)
			if b.Waves > waves {
				waves = b.Waves
			}
		}
		stats.BalanceWaves = waves
		forest.Relabel()

		// Audit Lemma 4.1's degree invariant.
		for v := 0; v < n; v++ {
			ratio := float64(forest.InDegree(int32(v))) / float64(g.Degree(v))
			if ratio > stats.MaxInDegRatio {
				stats.MaxInDegRatio = ratio
			}
		}
		if stats.MaxInDegRatio > res.MaxInDegRatio {
			res.MaxInDegRatio = stats.MaxInDegRatio
		}

		// Charge: fragment exchange + (up + down + balancing) steps.
		// The tree-steps span grafts the measured routing instance's own
		// ledger; its multiplier repeats it once per upcast/downcast
		// level and balancing wave. Closing checks the span tree against
		// the direct formula, and the iteration total becomes
		// stats.Rounds.
		stats.UpcastSteps = 2 * (stats.TreeDepth + 1)
		led.Open(fmt.Sprintf("iteration-%02d", iter), "base rounds", 1)
		led.Open("fragment-exchange", "base rounds", 1)
		led.Charge(1)
		led.Close()
		led.Open("tree-steps", "base rounds per step", stats.UpcastSteps+waves)
		if stepRep != nil {
			led.Attach(stepRep.Costs.Root)
		}
		led.CloseExpect(stepRounds)
		stats.Rounds = led.CloseExpect(1 + (stats.UpcastSteps+waves)*stepRounds)
		res.AlgorithmRounds += stats.Rounds
		res.Iterations = append(res.Iterations, stats)
	}
	return nil, fmt.Errorf("mst: did not converge within %d iterations", maxIter)
}

// mwoeEdge is a fragment's minimum-weight outgoing edge: the edge ID and
// its head-side endpoint y (outside the fragment).
type mwoeEdge struct {
	edge int
	y    int32
	w    float64
}

// computeMWOE finds each fragment's minimum-weight outgoing edge, with
// ties broken by edge ID (weights are expected distinct anyway).
func computeMWOE(g *graph.Graph, f *Forest) map[int32]mwoeEdge {
	out := make(map[int32]mwoeEdge)
	for v := int32(0); v < int32(g.N()); v++ {
		if _, ok := out[f.Fragment(v)]; !ok {
			out[f.Fragment(v)] = mwoeEdge{edge: -1}
		}
	}
	for id, e := range g.Edges() {
		fu, fv := f.Fragment(int32(e.U)), f.Fragment(int32(e.V))
		if fu == fv {
			continue
		}
		consider := func(fragID, y int32) {
			best := out[fragID]
			if best.edge < 0 || e.W < best.w || (e.W == best.w && id < best.edge) {
				out[fragID] = mwoeEdge{edge: id, y: y, w: e.W}
			}
		}
		consider(fu, int32(e.V))
		consider(fv, int32(e.U))
	}
	return out
}

// measureTreeStep routes one message from every non-root node to its
// virtual-tree parent and returns the routing report (nil when every node
// is a fragment root and there is nothing to send). This is the per-level
// cost of the upcast/downcast (and of the balancing token waves, which use
// the same channel).
func measureTreeStep(h *embed.Hierarchy, f *Forest, src *rngutil.Source) (*route.Report, error) {
	g := h.Base
	reqs := make([]route.Request, 0, g.N())
	childRank := make(map[int32]int)
	for v := int32(0); v < int32(g.N()); v++ {
		p := f.Parent(v)
		if p < 0 {
			continue
		}
		idx := childRank[p] % g.Degree(int(p))
		childRank[p]++
		reqs = append(reqs, route.Request{SrcNode: int(v), DstNode: int(p), DstIndex: idx})
	}
	if len(reqs) == 0 {
		return nil, nil
	}
	return route.Route(h, reqs, src)
}

func maxDepth(depths []int32) int {
	maxD := int32(0)
	for _, d := range depths {
		if d > maxD {
			maxD = d
		}
	}
	return int(maxD)
}

func log2int(n int) int {
	return int(math.Ceil(math.Log2(float64(n))))
}

// Kruskal computes the MST centrally (sorting by weight with edge-ID tie
// break, union-find) and returns the chosen edge IDs and total weight. It
// is the ground truth the distributed algorithms are verified against.
// It delegates to mstbase.Kruskal, which owns the implementation.
func Kruskal(g *graph.Graph) ([]int, float64) { return mstbase.Kruskal(g) }
