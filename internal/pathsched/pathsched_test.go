package pathsched

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"almostmix/internal/cost"

	"almostmix/internal/graph"
	"almostmix/internal/randomwalk"
	"almostmix/internal/rngutil"
	"almostmix/internal/spectral"
)

func TestEmptyAndTrivial(t *testing.T) {
	res := Schedule(nil)
	if res.Makespan != 0 || res.Delivered != 0 {
		t.Fatalf("empty schedule: %+v", res)
	}
	res = Schedule([][]int32{{5}, {}, {7, 7, 7}})
	if res.Makespan != 0 || res.Delivered != 3 || res.Dilation != 0 {
		t.Fatalf("trivial paths: %+v", res)
	}
}

func TestSinglePath(t *testing.T) {
	res := Schedule([][]int32{{0, 1, 2, 3}})
	if res.Makespan != 3 || res.Congestion != 1 || res.Dilation != 3 {
		t.Fatalf("single path: %+v", res)
	}
}

func TestLazyStepsSkipped(t *testing.T) {
	res := Schedule([][]int32{{0, 0, 1, 1, 2}})
	if res.Makespan != 2 || res.Dilation != 2 {
		t.Fatalf("lazy path: %+v", res)
	}
}

func TestSharedLinkSerializes(t *testing.T) {
	// Three packets over the same directed edge: makespan = 3.
	paths := [][]int32{{0, 1}, {0, 1}, {0, 1}}
	res := Schedule(paths)
	if res.Makespan != 3 || res.Congestion != 3 || res.Dilation != 1 {
		t.Fatalf("shared link: %+v", res)
	}
}

func TestOppositeDirectionsDontCollide(t *testing.T) {
	res := Schedule([][]int32{{0, 1}, {1, 0}})
	if res.Makespan != 1 {
		t.Fatalf("opposite directions collided: %+v", res)
	}
}

func TestDisjointPathsParallel(t *testing.T) {
	paths := [][]int32{{0, 1, 2}, {10, 11, 12}, {20, 21, 22}}
	res := Schedule(paths)
	if res.Makespan != 2 {
		t.Fatalf("disjoint paths: %+v", res)
	}
}

func TestPipelineOnSharedPath(t *testing.T) {
	// k packets along the same length-L path pipeline: makespan = L+k−1.
	k, L := 4, 5
	path := make([]int32, L+1)
	for i := range path {
		path[i] = int32(i)
	}
	paths := make([][]int32, k)
	for i := range paths {
		paths[i] = path
	}
	res := Schedule(paths)
	if res.Makespan != L+k-1 {
		t.Fatalf("pipeline makespan %d, want %d", res.Makespan, L+k-1)
	}
}

func TestDeterministicMakespan(t *testing.T) {
	r := rngutil.NewRand(3)
	g := graph.RandomRegular(32, 4, r)
	src := randomwalk.SourcesPerNode(randomwalk.UniformCountTimesDegree(g, 2))
	walks := randomwalk.Run(g, src, randomwalk.Config{Kind: spectral.Lazy, Steps: 15, Record: true}, r)
	paths := make([][]int32, len(walks.Walks))
	for i, w := range walks.Walks {
		paths[i] = w.Path
	}
	a := Schedule(paths)
	b := Schedule(paths)
	if a != b {
		t.Fatalf("same input, different results: %+v vs %+v", a, b)
	}
}

// Property: makespan is bounded below by max(congestion, dilation) and
// above by congestion·dilation (trivially true for FIFO on fixed paths),
// and everything is delivered.
func TestPropertyMakespanBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := rngutil.NewRand(seed)
		g := graph.RandomRegular(24, 4, r)
		src := randomwalk.SourcesPerNode(randomwalk.UniformCountTimesDegree(g, 1))
		walks := randomwalk.Run(g, src, randomwalk.Config{Kind: spectral.Lazy, Steps: 10, Record: true}, r)
		paths := make([][]int32, len(walks.Walks))
		for i, w := range walks.Walks {
			paths[i] = w.Path
		}
		res := Schedule(paths)
		if res.Delivered != len(paths) {
			return false
		}
		lower := res.Congestion
		if res.Dilation > lower {
			lower = res.Dilation
		}
		if res.Makespan < lower {
			return false
		}
		if res.Congestion > 0 && res.Makespan > res.Congestion*res.Dilation+1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	g := graph.Ring(6)
	adjacent := func(a, b int32) bool { return g.HasEdge(int(a), int(b)) }
	good := [][]int32{{0, 1, 2, 2, 3}}
	if err := Validate(good, adjacent); err != nil {
		t.Fatal(err)
	}
	bad := [][]int32{{0, 3}}
	if err := Validate(bad, adjacent); err == nil {
		t.Fatal("invalid path accepted")
	}
}

// genPaths builds a reproducible random path set: nPaths walks of varying
// length over an arbitrary node-ID space, with occasional lazy steps. The
// scheduler never consults a graph, so arbitrary ID sequences are valid
// inputs.
func genPaths(rng *rand.Rand, nNodes, nPaths, maxLen int) [][]int32 {
	paths := make([][]int32, nPaths)
	for i := range paths {
		hops := 1 + rng.IntN(maxLen)
		p := make([]int32, 0, hops+1)
		p = append(p, int32(rng.IntN(nNodes)))
		for len(p) <= hops {
			if rng.IntN(4) == 0 {
				p = append(p, p[len(p)-1]) // lazy step
			} else {
				p = append(p, int32(rng.IntN(nNodes)))
			}
		}
		paths[i] = p
	}
	return paths
}

func TestPropertyGeneratedPathSets(t *testing.T) {
	rng := rngutil.NewRand(99)
	for trial := 0; trial < 60; trial++ {
		nNodes := 2 + rng.IntN(40)
		paths := genPaths(rng, nNodes, rng.IntN(50), 12)
		res := Schedule(paths)
		if res.Delivered != len(paths) {
			t.Fatalf("trial %d: delivered %d of %d", trial, res.Delivered, len(paths))
		}
		lower := res.Congestion
		if res.Dilation > lower {
			lower = res.Dilation
		}
		if res.Makespan < lower {
			t.Fatalf("trial %d: makespan %d below max(congestion %d, dilation %d)",
				trial, res.Makespan, res.Congestion, res.Dilation)
		}
	}
}

func TestPropertyScheduleDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		rng := rngutil.NewRand(seed)
		paths := genPaths(rng, 2+rng.IntN(30), 1+rng.IntN(40), 10)
		first := Schedule(paths)
		for rep := 0; rep < 3; rep++ {
			if again := Schedule(paths); again != first {
				t.Fatalf("seed %d: run %d returned %+v, first run %+v", seed, rep, again, first)
			}
		}
	}
}

func TestScheduleIntoChargesMakespan(t *testing.T) {
	paths := [][]int32{{0, 1, 2}, {3, 1, 2}, {4, 1, 2}}
	plain := Schedule(paths)

	led := cost.New("root", "rounds")
	sp := led.Open("leaf", "G2 rounds", 3)
	res := ScheduleInto(paths, sp)
	if res != plain {
		t.Fatalf("ScheduleInto result %+v differs from Schedule %+v", res, plain)
	}
	if sp.Total() != res.Makespan {
		t.Fatalf("span charged %d, makespan %d", sp.Total(), res.Makespan)
	}
	led.Close()
	if got := led.Close(); got != 3*res.Makespan {
		t.Fatalf("root total %d, want makespan×mul %d", got, 3*res.Makespan)
	}
	if err := led.Err(); err != nil {
		t.Fatal(err)
	}

	// A nil span only schedules.
	if res := ScheduleInto(paths, nil); res != plain {
		t.Fatalf("nil-span ScheduleInto result %+v differs from Schedule %+v", res, plain)
	}
}
