// Package pathsched schedules packets along fixed paths under CONGEST
// edge capacities and measures the exact number of rounds needed.
//
// The hierarchical embedding (§3.1) maps every virtual edge to a recorded
// path in the base graph. Delivering a batch of virtual messages therefore
// reduces to store-and-forward packet routing along fixed paths, one
// packet per directed edge per round. This package runs that process with
// synchronous FIFO queues and reports the makespan, which is the measured
// emulation cost the experiments compare against the paper's
// O(congestion + dilation)-flavored lemmas (3.1, 3.2, 3.4).
package pathsched

import (
	"fmt"
	"slices"

	"almostmix/internal/cost"
)

// Result summarizes one scheduling run.
type Result struct {
	// Makespan is the number of rounds until every packet reached the
	// end of its path.
	Makespan int
	// Congestion is the maximum number of packets crossing any single
	// directed edge over the whole run (a lower bound on makespan).
	Congestion int
	// Dilation is the maximum path length in hops (also a lower bound).
	Dilation int
	// Delivered is the number of packets routed (= len(paths)).
	Delivered int
}

// linkKey packs a directed edge between two int32 node IDs.
func linkKey(from, to int32) int64 {
	return int64(uint32(from))<<32 | int64(uint32(to))
}

// Schedule routes one packet along each path and returns the measured
// costs. Paths are node-ID sequences; consecutive duplicate entries are
// skipped (lazy steps), and empty or single-node paths are delivered at
// time zero. Node IDs only need to be consistent within the path set —
// the scheduler never consults a graph, so callers are responsible for
// paths being walks of the level they schedule on.
func Schedule(paths [][]int32) Result {
	hops := make([][]int32, len(paths)) // compacted paths (duplicates removed)
	res := Result{Delivered: len(paths)}
	traversals := make(map[int64]int)
	for i, p := range paths {
		compact := make([]int32, 0, len(p))
		for j, v := range p {
			if j == 0 || v != compact[len(compact)-1] {
				compact = append(compact, v)
			}
		}
		hops[i] = compact
		if len(compact)-1 > res.Dilation {
			res.Dilation = len(compact) - 1
		}
		for j := 1; j < len(compact); j++ {
			k := linkKey(compact[j-1], compact[j])
			traversals[k]++
			if traversals[k] > res.Congestion {
				res.Congestion = traversals[k]
			}
		}
	}

	// Synchronous FIFO store-and-forward: every round, each directed
	// link transmits the head-of-line packet.
	pos := make([]int, len(paths)) // next hop index (1-based into hops[i])
	queues := make(map[int64][]int32)
	remaining := 0
	for i, h := range hops {
		if len(h) <= 1 {
			continue
		}
		pos[i] = 1
		k := linkKey(h[0], h[1])
		queues[k] = append(queues[k], int32(i))
		remaining++
	}
	round := 0
	moved := make([]int32, 0, len(queues))
	for remaining > 0 {
		round++
		moved = moved[:0]
		for k, q := range queues {
			pkt := q[0]
			if len(q) == 1 {
				delete(queues, k)
			} else {
				queues[k] = q[1:]
			}
			moved = append(moved, pkt)
		}
		// Sort arrivals so queue order (and thus the makespan) does not
		// depend on map iteration order: runs are deterministic.
		slices.Sort(moved)
		for _, pkt := range moved {
			h := hops[pkt]
			pos[pkt]++
			if pos[pkt] >= len(h) {
				remaining--
				continue
			}
			k := linkKey(h[pos[pkt]-1], h[pos[pkt]])
			queues[k] = append(queues[k], pkt)
		}
	}
	res.Makespan = round
	return res
}

// ScheduleInto schedules like Schedule and charges the measured makespan
// to sp, in sp's own unit — the caller chooses the span whose multiplier
// converts schedule rounds into its parent's currency (a leaf-movement
// span converting G_k rounds to G0 rounds, a baseline span charging base
// rounds directly, …). A nil span only schedules.
func ScheduleInto(paths [][]int32, sp *cost.Span) Result {
	res := Schedule(paths)
	sp.Add(res.Makespan)
	return res
}

// Validate checks that every path is a walk of the adjacency oracle (used
// by tests and by embedding audits). adjacent(a, b) must report whether a
// and b are neighbors at the level the paths live on.
func Validate(paths [][]int32, adjacent func(a, b int32) bool) error {
	for i, p := range paths {
		for j := 1; j < len(p); j++ {
			if p[j] == p[j-1] {
				continue
			}
			if !adjacent(p[j-1], p[j]) {
				return fmt.Errorf("pathsched: path %d hop %d: %d and %d not adjacent", i, j, p[j-1], p[j])
			}
		}
	}
	return nil
}
