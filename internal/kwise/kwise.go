// Package kwise implements W-wise independent hash families via random
// polynomials of degree W−1 over the Mersenne prime field GF(2^61−1).
//
// The paper (§3.1.2) partitions node IDs into the leaves of a β-ary tree
// with a Θ(log n)-wise independent hash function whose Θ(log² n) random
// bits are broadcast once from a leader; every node can then evaluate the
// partition label of every ID locally. This package provides exactly that
// object: the family, its serialized coefficient form (the "shared random
// bits"), evaluation, and extraction of per-level β-ary digits.
package kwise

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
)

// Prime is the field modulus 2^61 − 1.
const Prime uint64 = (1 << 61) - 1

// mulMod multiplies modulo 2^61−1 using the Mersenne reduction.
func mulMod(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a·b = hi·2^64 + lo = hi·8·2^61 + lo ≡ hi·8 + lo (mod 2^61−1),
	// folding twice to bring the value under 2^62.
	sum := (hi << 3) | (lo >> 61)
	res := (lo & Prime) + sum
	res = (res & Prime) + (res >> 61)
	if res >= Prime {
		res -= Prime
	}
	return res
}

func addMod(a, b uint64) uint64 {
	s := a + b
	if s >= Prime {
		s -= Prime
	}
	return s
}

// Family is a W-wise independent hash family member: a degree-(W−1)
// polynomial with uniform random coefficients.
type Family struct {
	coeffs []uint64 // little-endian: h(x) = Σ coeffs[i]·x^i
}

// New draws a random member of the W-wise independent family. W must be
// at least 1.
func New(w int, rng *rand.Rand) *Family {
	if w < 1 {
		panic("kwise: independence parameter must be >= 1")
	}
	coeffs := make([]uint64, w)
	for i := range coeffs {
		coeffs[i] = rng.Uint64N(Prime)
	}
	return &Family{coeffs: coeffs}
}

// Independence returns W, the independence parameter.
func (f *Family) Independence() int { return len(f.coeffs) }

// Bits returns the coefficients — the shared random bits that a leader
// broadcasts so every node evaluates the same function. The slice is a
// copy.
func (f *Family) Bits() []uint64 {
	out := make([]uint64, len(f.coeffs))
	copy(out, f.coeffs)
	return out
}

// FromBits reconstructs a Family from broadcast coefficients.
func FromBits(coeffs []uint64) (*Family, error) {
	if len(coeffs) == 0 {
		return nil, fmt.Errorf("kwise: empty coefficient vector")
	}
	for i, c := range coeffs {
		if c >= Prime {
			return nil, fmt.Errorf("kwise: coefficient %d = %d out of field", i, c)
		}
	}
	out := make([]uint64, len(coeffs))
	copy(out, coeffs)
	return &Family{coeffs: out}, nil
}

// Hash evaluates the polynomial at x (reduced into the field) by Horner's
// rule, returning a value in [0, Prime).
func (f *Family) Hash(x uint64) uint64 {
	x %= Prime
	acc := uint64(0)
	for i := len(f.coeffs) - 1; i >= 0; i-- {
		acc = addMod(mulMod(acc, x), f.coeffs[i])
	}
	return acc
}

// Bucket maps x to one of buckets bins. The modulo bias is at most
// buckets/2^61, negligible for the bucket counts used here.
func (f *Family) Bucket(x, buckets uint64) uint64 {
	if buckets == 0 {
		panic("kwise: zero buckets")
	}
	return f.Hash(x) % buckets
}

// Label is a hierarchical partition label: Digits[p] selects the child at
// level p of the β-ary partition tree (Digits[0] picks the A_i set,
// Digits[1] the B_ji subset, and so on).
type Label struct {
	Digits []int
}

// Prefix reports whether l's first p digits equal other's first p digits.
func (l Label) Prefix(other Label, p int) bool {
	for i := 0; i < p; i++ {
		if l.Digits[i] != other.Digits[i] {
			return false
		}
	}
	return true
}

// LeafLabel maps an ID to its depth-k label in the β-ary tree: the hash is
// reduced to a leaf index in [0, β^k) and split into k base-β digits, most
// significant first.
func (f *Family) LeafLabel(id uint64, beta, k int) Label {
	if beta < 2 || k < 0 {
		panic(fmt.Sprintf("kwise: invalid tree shape beta=%d k=%d", beta, k))
	}
	leaves := uint64(1)
	for i := 0; i < k; i++ {
		leaves *= uint64(beta)
	}
	leaf := f.Bucket(id, leaves)
	digits := make([]int, k)
	for i := k - 1; i >= 0; i-- {
		digits[i] = int(leaf % uint64(beta))
		leaf /= uint64(beta)
	}
	return Label{Digits: digits}
}
