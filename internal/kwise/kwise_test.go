package kwise

import (
	"math"
	"testing"
	"testing/quick"

	"almostmix/internal/rngutil"
)

func TestMulModAgainstBigArithmetic(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= Prime
		b %= Prime
		got := mulMod(a, b)
		// Verify via 128-bit decomposition: compute a*b mod Prime with
		// the schoolbook split a = aHi·2^32 + aLo.
		want := slowMulMod(a, b)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// slowMulMod computes a*b mod Prime by splitting into 32-bit halves and
// reducing with 64-bit-safe shifts.
func slowMulMod(a, b uint64) uint64 {
	const mask32 = (1 << 32) - 1
	aHi, aLo := a>>32, a&mask32
	res := mulShift32(aHi, b) // aHi·2^32·b mod p
	lo := aLo % Prime
	// aLo·b mod p, accumulating via repeated doubling of 32-bit chunks.
	bHi, bLo := b>>32, b&mask32
	part := mulShift32(bHi, lo)
	part = (part + mulSmall(bLo, lo)) % Prime
	return (res + part) % Prime
}

// mulShift32 returns x·2^32·y mod Prime where x,y < 2^61.
func mulShift32(x, y uint64) uint64 {
	v := mulSmall(x%Prime, y%Prime)
	for i := 0; i < 32; i++ {
		v <<= 1
		if v >= Prime {
			v -= Prime
		}
	}
	return v
}

// mulSmall multiplies via binary decomposition (no overflow since values
// stay < 2·Prime < 2^62).
func mulSmall(a, b uint64) uint64 {
	a %= Prime
	b %= Prime
	res := uint64(0)
	for b > 0 {
		if b&1 == 1 {
			res += a
			if res >= Prime {
				res -= Prime
			}
		}
		a <<= 1
		if a >= Prime {
			a -= Prime
		}
		b >>= 1
	}
	return res
}

func TestHashDeterministicAndInField(t *testing.T) {
	r := rngutil.NewRand(1)
	f := New(8, r)
	for x := uint64(0); x < 1000; x++ {
		h1, h2 := f.Hash(x), f.Hash(x)
		if h1 != h2 {
			t.Fatalf("hash not deterministic at %d", x)
		}
		if h1 >= Prime {
			t.Fatalf("hash %d out of field", h1)
		}
	}
}

func TestBitsRoundTrip(t *testing.T) {
	r := rngutil.NewRand(2)
	f := New(6, r)
	g, err := FromBits(f.Bits())
	if err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < 500; x++ {
		if f.Hash(x) != g.Hash(x) {
			t.Fatalf("reconstructed family disagrees at %d", x)
		}
	}
	if g.Independence() != 6 {
		t.Fatalf("independence = %d, want 6", g.Independence())
	}
}

func TestFromBitsRejectsBad(t *testing.T) {
	if _, err := FromBits(nil); err == nil {
		t.Fatal("empty coefficients accepted")
	}
	if _, err := FromBits([]uint64{Prime}); err == nil {
		t.Fatal("out-of-field coefficient accepted")
	}
}

func TestBitsIsACopy(t *testing.T) {
	f := New(3, rngutil.NewRand(3))
	b := f.Bits()
	before := f.Hash(7)
	b[0] = 0
	if f.Hash(7) != before {
		t.Fatal("mutating Bits() output changed the family")
	}
}

func TestConstantPolynomial(t *testing.T) {
	f := &Family{coeffs: []uint64{42}}
	for x := uint64(0); x < 100; x += 7 {
		if f.Hash(x) != 42 {
			t.Fatal("degree-0 polynomial is not constant")
		}
	}
}

func TestLinearPolynomialAlgebra(t *testing.T) {
	// h(x) = 3 + 5x.
	f := &Family{coeffs: []uint64{3, 5}}
	if got := f.Hash(10); got != 53 {
		t.Fatalf("h(10) = %d, want 53", got)
	}
	if got := f.Hash(Prime); got != 3 { // x reduced to 0
		t.Fatalf("h(p) = %d, want 3", got)
	}
}

func TestBucketUniformityRough(t *testing.T) {
	r := rngutil.NewRand(4)
	f := New(10, r)
	const buckets = 16
	const samples = 32000
	counts := make([]int, buckets)
	for x := uint64(0); x < samples; x++ {
		counts[f.Bucket(x, buckets)]++
	}
	want := float64(samples) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.15*want {
			t.Fatalf("bucket %d has %d, want ≈ %v", b, c, want)
		}
	}
}

func TestPairwiseIndependenceStatistical(t *testing.T) {
	// Over random draws of the family, (h(1) mod 2, h(2) mod 2) should
	// hit all four combinations about equally — a consequence of 2-wise
	// independence.
	counts := make(map[[2]uint64]int)
	for seed := uint64(0); seed < 2000; seed++ {
		f := New(2, rngutil.NewRand(seed))
		counts[[2]uint64{f.Hash(1) & 1, f.Hash(2) & 1}]++
	}
	for k, c := range counts {
		if c < 350 || c > 650 {
			t.Fatalf("combination %v seen %d times, want ≈ 500", k, c)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("saw %d combinations, want 4", len(counts))
	}
}

// Property: the family drawn from a seed is a pure function of the seed —
// two draws from identical streams agree on every coefficient and every
// hash. This is the reproducibility contract behind broadcasting the
// coefficients once: every node must reconstruct the same partition.
func TestPropertyDeterministicPerSeed(t *testing.T) {
	f := func(seed uint64) bool {
		a := New(9, rngutil.NewRand(seed))
		b := New(9, rngutil.NewRand(seed))
		for x := uint64(0); x < 64; x++ {
			if a.Hash(x*0x9e3779b9) != b.Hash(x*0x9e3779b9) {
				return false
			}
		}
		bits := a.Bits()
		for i, c := range b.Bits() {
			if bits[i] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: bucket counts over β buckets pass a chi-square sanity bound.
// With df = β−1 = 15 the statistic exceeds 60 with probability ≈ 2·10⁻⁷
// under uniformity, so a generic-seed failure indicates real bias, not
// noise.
func TestPropertyBucketChiSquare(t *testing.T) {
	const (
		beta    = 16
		samples = 8192
		bound   = 60.0
	)
	f := func(seed uint64) bool {
		fam := New(12, rngutil.NewRand(seed))
		counts := make([]float64, beta)
		for x := uint64(0); x < samples; x++ {
			counts[fam.Bucket(x, beta)]++
		}
		exp := float64(samples) / beta
		chi2 := 0.0
		for _, c := range counts {
			d := c - exp
			chi2 += d * d / exp
		}
		return chi2 < bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLeafLabelDigits(t *testing.T) {
	f := New(4, rngutil.NewRand(5))
	beta, k := 4, 5
	for id := uint64(0); id < 300; id++ {
		lbl := f.LeafLabel(id, beta, k)
		if len(lbl.Digits) != k {
			t.Fatalf("label has %d digits, want %d", len(lbl.Digits), k)
		}
		for _, d := range lbl.Digits {
			if d < 0 || d >= beta {
				t.Fatalf("digit %d out of range", d)
			}
		}
		// Re-derivation must agree (nodes compute labels independently).
		again := f.LeafLabel(id, beta, k)
		if !lbl.Prefix(again, k) {
			t.Fatal("label not reproducible")
		}
	}
}

func TestLeafLabelPartitionBalance(t *testing.T) {
	// Property P1: each prefix class receives ≈ m/β^p of m IDs.
	f := New(12, rngutil.NewRand(6))
	beta, k := 4, 3
	const ids = 6400
	counts := make(map[int]int)
	for id := uint64(0); id < ids; id++ {
		counts[f.LeafLabel(id, beta, k).Digits[0]]++
	}
	want := float64(ids) / float64(beta)
	for d, c := range counts {
		if math.Abs(float64(c)-want) > 0.12*want {
			t.Fatalf("top-level part %d has %d ids, want ≈ %v", d, c, want)
		}
	}
}

func TestPrefix(t *testing.T) {
	a := Label{Digits: []int{1, 2, 3}}
	b := Label{Digits: []int{1, 2, 4}}
	if !a.Prefix(b, 2) {
		t.Fatal("2-digit prefixes should match")
	}
	if a.Prefix(b, 3) {
		t.Fatal("3-digit prefixes should differ")
	}
}

func TestLeafLabelZeroDepth(t *testing.T) {
	f := New(2, rngutil.NewRand(7))
	lbl := f.LeafLabel(99, 4, 0)
	if len(lbl.Digits) != 0 {
		t.Fatal("depth-0 label should be empty")
	}
}
