// Package decomp implements a deterministic expander decomposition: it
// partitions a graph into clusters whose induced subgraphs mix well,
// cutting only a bounded fraction of edges, in the style of
// Chang–Saranurak's deterministic expander decompositions. The source
// paper's hierarchy (embed.Build) assumes the whole graph is one
// expander; decomposing first and embedding per cluster converts the
// lollipop/barbell/power-law degradation inputs into handled cases.
//
// The algorithm is conductance-sweep trimming on top of
// internal/spectral: recursively, a piece that falls apart into
// connected components is split along them for free; a connected piece
// whose best Fiedler sweep cut already has conductance ≥ φ (no good cut
// exists) is accepted as a cluster, as is any piece at or below the
// minimum size; otherwise the piece is cut at the best sweep prefix and
// both sides recurse, charging the cut against an ε·m inter-cluster edge
// budget that children inherit proportionally to their edge counts.
// A piece whose best cut would overdraw its budget is accepted as-is
// (Reason = BudgetStop) — the certificate records its actual sweep
// bound, so low-conductance clusters are visible, never silent.
//
// Every accepted cluster carries a Certificate: the sweep upper bound on
// its conductance, the power-iteration λ₂, and the spectral mixing-time
// estimate, all recorded as informational spans in the cost ledger under
// the decomp/ path prefix. By Cheeger's inequality the sweep bound φ_s
// certifies true conductance ≥ φ_s²/4 (up to power-iteration accuracy),
// so "no cut found" is an expansion certificate, not just a heuristic
// shrug.
//
// Determinism contract: the decomposition is a pure function of (graph,
// Params minus Workers). Workers only controls how many recursion
// branches run concurrently; results are joined in recursion order, no
// shared mutable state is touched concurrently, and the output —
// cluster assignment, certificates, ledger — is byte-identical across
// worker counts (the decomp-suite CI job pins this across {1,2,8}).
package decomp

import (
	"fmt"
	"sort"
	"sync"

	"almostmix/internal/cost"
	"almostmix/internal/graph"
	"almostmix/internal/spectral"
)

// Params configures the decomposition.
type Params struct {
	// Phi is the target conductance: a piece is accepted as a cluster
	// when its best sweep cut has conductance ≥ Phi. Default 0.1.
	Phi float64
	// Eps bounds the inter-cluster edges as a fraction of m: the
	// recursion never cuts more than ⌊Eps·m⌋ edges in total. Default 0.3.
	Eps float64
	// MinSize accepts any piece with at most this many nodes outright.
	// Default 8.
	MinSize int
	// Workers bounds the number of recursion branches running
	// concurrently; ≤ 1 is serial. Output is identical for all values.
	Workers int
}

// withDefaults fills zero fields with the defaults above.
func (p Params) withDefaults() Params {
	if p.Phi == 0 {
		p.Phi = 0.1
	}
	if p.Eps == 0 {
		p.Eps = 0.3
	}
	if p.MinSize == 0 {
		p.MinSize = 8
	}
	if p.Workers == 0 {
		p.Workers = 1
	}
	return p
}

func (p Params) validate() error {
	if p.Phi <= 0 || p.Phi >= 1 {
		return fmt.Errorf("decomp: phi must be in (0,1), got %g", p.Phi)
	}
	if p.Eps < 0 || p.Eps >= 1 {
		return fmt.Errorf("decomp: eps must be in [0,1), got %g", p.Eps)
	}
	if p.MinSize < 1 {
		return fmt.Errorf("decomp: min cluster size must be >= 1, got %d", p.MinSize)
	}
	if p.Workers < 1 {
		return fmt.Errorf("decomp: workers must be >= 1, got %d", p.Workers)
	}
	return nil
}

// Reason records why a piece was accepted as a cluster.
type Reason int

const (
	// Expander: the best sweep cut had conductance ≥ Phi, certifying
	// (via Cheeger) that no Ω(Phi²) cut exists.
	Expander Reason = iota + 1
	// SmallPiece: the piece was at or below MinSize.
	SmallPiece
	// BudgetStop: a good cut existed but would overdraw the piece's
	// share of the ε·m cross-edge budget.
	BudgetStop
)

func (r Reason) String() string {
	switch r {
	case Expander:
		return "expander"
	case SmallPiece:
		return "small"
	case BudgetStop:
		return "budget"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Certificate is the per-cluster expansion evidence, recorded in the
// cost ledger. All quantities refer to the cluster's induced subgraph.
type Certificate struct {
	// PhiSweep is the conductance of the best Fiedler sweep cut — an
	// upper bound on the cluster's conductance realized by an actual
	// cut, and via Cheeger a ≥ PhiSweep²/4 lower-bound certificate.
	// Zero for single-node clusters (no cut exists).
	PhiSweep float64
	// Lambda2 is the power-iteration estimate of the walk operator's
	// second eigenvalue.
	Lambda2 float64
	// MixingTime is spectral.MixingTimeEstimate on the cluster (lazy
	// walk). Clusters are connected by construction, so the TimeUnmixed
	// sentinel never appears here.
	MixingTime int
	// Reason is why the recursion stopped at this cluster.
	Reason Reason
}

// Cluster is one part of the decomposition.
type Cluster struct {
	// Index is the cluster's position in Decomposition.Clusters.
	Index int
	// Nodes are the cluster's base-graph nodes, ascending.
	Nodes []int
	// Sub is the induced-subgraph view (local relabeling, boundary
	// edges) the per-cluster embedding runs on.
	Sub *graph.Subgraph
	// Cert is the expansion certificate.
	Cert Certificate
}

// Decomposition is the result of Decompose.
type Decomposition struct {
	// Base is the decomposed graph.
	Base *graph.Graph
	// Params echoes the resolved parameters.
	Params Params
	// Clusters, ordered by smallest contained node.
	Clusters []*Cluster
	// ClusterOf maps each base node to its cluster index.
	ClusterOf []int32
	// CrossEdges lists the base edge IDs with endpoints in different
	// clusters, ascending. At most ⌊Eps·m⌋ by construction.
	CrossEdges []int
	// SweepPasses counts the Fiedler sweep invocations the recursion
	// spent — the ledger root's total.
	SweepPasses int
	// Costs is the decomposition's ledger: root "decomp" (unit "sweep
	// passes") with informational per-cluster certificate spans
	// (decomp/certificates/cluster-NN/...) and the cross-edge count.
	Costs *cost.Ledger
}

// splitOut is one recursion branch's result: accepted clusters in
// deterministic recursion order plus the sweep passes spent.
type splitOut struct {
	clusters []*Cluster
	sweeps   int
}

type decomposer struct {
	g   *graph.Graph
	p   Params
	sem chan struct{} // Workers-1 tokens for extra recursion goroutines
}

// Decompose partitions g into expander clusters. It accepts any graph,
// including disconnected ones (components split for free). The result is
// a pure function of g and the parameters; Workers only changes wall
// time.
func Decompose(g *graph.Graph, p Params) (*Decomposition, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	if g.N() == 0 {
		return nil, fmt.Errorf("decomp: empty graph")
	}
	d := &decomposer{g: g, p: p, sem: make(chan struct{}, p.Workers-1)}
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	budget := int(p.Eps * float64(g.M()))
	out := d.split(all, budget)

	// Recursion order is deterministic but Fiedler-orientation-shaped;
	// reorder by smallest contained node for stable, readable output.
	sort.Slice(out.clusters, func(i, j int) bool {
		return out.clusters[i].Nodes[0] < out.clusters[j].Nodes[0]
	})
	dec := &Decomposition{
		Base:        g,
		Params:      p,
		Clusters:    out.clusters,
		ClusterOf:   make([]int32, g.N()),
		SweepPasses: out.sweeps,
	}
	for i, c := range dec.Clusters {
		c.Index = i
		for _, v := range c.Nodes {
			dec.ClusterOf[v] = int32(i)
		}
	}
	for id, e := range g.Edges() {
		if dec.ClusterOf[e.U] != dec.ClusterOf[e.V] {
			dec.CrossEdges = append(dec.CrossEdges, id)
		}
	}
	if len(dec.CrossEdges) > budget {
		return nil, fmt.Errorf("decomp: internal error: %d cross edges exceed budget %d", len(dec.CrossEdges), budget)
	}
	dec.Costs = dec.buildLedger()
	if err := dec.Costs.Err(); err != nil {
		return nil, err
	}
	return dec, nil
}

// split recursively decomposes the piece `nodes` (global IDs, ascending)
// with the given cross-edge budget.
func (d *decomposer) split(nodes []int, budget int) splitOut {
	sub := d.g.InducedSubgraph(nodes)
	if !sub.G.IsConnected() {
		comps := sub.G.Components()
		parts := make([][]int, len(comps))
		edges := make([]int, len(comps))
		compOf := make([]int32, sub.G.N())
		for ci, comp := range comps {
			for _, l := range comp {
				compOf[l] = int32(ci)
			}
		}
		// Rebuild each part in ascending global order (comp is BFS order;
		// local order is ascending global order because nodes was).
		for l := 0; l < sub.G.N(); l++ {
			ci := compOf[l]
			parts[ci] = append(parts[ci], sub.Global(l))
		}
		for _, e := range sub.G.Edges() {
			edges[compOf[e.U]]++
		}
		return d.runParts(parts, edges, budget)
	}
	if len(nodes) <= d.p.MinSize {
		return d.accept(nodes, sub, SmallPiece, 0, -1)
	}
	phi, inS := spectral.ConductanceSweepCut(sub.G)
	if phi >= d.p.Phi {
		return d.accept(nodes, sub, Expander, 1, phi)
	}
	cut := sub.G.CutSize(inS)
	if cut > budget {
		return d.accept(nodes, sub, BudgetStop, 1, phi)
	}
	var s, t []int
	for l, v := range nodes {
		if inS[l] {
			s = append(s, v)
		} else {
			t = append(t, v)
		}
	}
	mS := 0
	for _, e := range sub.G.Edges() {
		if inS[e.U] && inS[e.V] {
			mS++
		}
	}
	mT := sub.G.M() - mS - cut
	out := d.runParts([][]int{s, t}, []int{mS, mT}, budget-cut)
	out.sweeps++
	return out
}

// runParts recurses into the parts (concurrently when worker tokens are
// free), splitting the remaining budget proportionally to each part's
// internal edge count, and joins the results in part order.
func (d *decomposer) runParts(parts [][]int, edges []int, budget int) splitOut {
	total := 0
	for _, m := range edges {
		total += m
	}
	share := func(i int) int {
		if total == 0 {
			return 0
		}
		return budget * edges[i] / total
	}
	outs := make([]splitOut, len(parts))
	var wg sync.WaitGroup
	for i := range parts {
		i := i
		run := func() { outs[i] = d.split(parts[i], share(i)) }
		if i < len(parts)-1 {
			select {
			case d.sem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-d.sem }()
					run()
				}()
				continue
			default:
			}
		}
		run()
	}
	wg.Wait()
	var out splitOut
	for _, o := range outs {
		out.clusters = append(out.clusters, o.clusters...)
		out.sweeps += o.sweeps
	}
	return out
}

// accept finalizes a piece as a cluster with its certificate. phiKnown
// < 0 means no sweep has run yet for this piece (small pieces); it is
// computed here so every multi-node cluster certificate carries a real
// bound.
func (d *decomposer) accept(nodes []int, sub *graph.Subgraph, why Reason, sweeps int, phiKnown float64) splitOut {
	cert := Certificate{Reason: why}
	if sub.G.N() >= 2 {
		if phiKnown >= 0 {
			cert.PhiSweep = phiKnown
		} else {
			cert.PhiSweep, _ = spectral.ConductanceSweepCut(sub.G)
			sweeps++
		}
		cert.Lambda2 = spectral.SecondEigenvalue(sub.G, spectral.Lazy, 200)
		cert.MixingTime = spectral.MixingTimeEstimate(sub.G, spectral.Lazy)
	}
	return splitOut{
		clusters: []*Cluster{{Nodes: nodes, Sub: sub, Cert: cert}},
		sweeps:   sweeps,
	}
}

// buildLedger renders the decomposition into its cost ledger. The sweep
// work is the only real charge; certificates and the cross-edge count
// export as informational (Mul 0) spans under decomp/.
func (dec *Decomposition) buildLedger() *cost.Ledger {
	led := cost.New("decomp", "sweep passes")
	led.Charge(dec.SweepPasses)
	certs := led.Open("certificates", "", 0)
	for _, c := range dec.Clusters {
		sp := certs.NewChild(fmt.Sprintf("cluster-%02d", c.Index), "", 0)
		sp.NewChild("nodes", "nodes", 0).Add(len(c.Nodes))
		sp.NewChild("edges", "edges", 0).Add(c.Sub.G.M())
		sp.NewChild("boundary", "edges", 0).Add(len(c.Sub.Boundary()))
		sp.NewChild("mixing-time-estimate", "walk steps", 0).Add(c.Cert.MixingTime)
		sp.NewChild("conductance-sweep-ppm", "ppm", 0).Add(int(c.Cert.PhiSweep * 1e6))
		sp.NewChild("reason", "code", 0).Add(int(c.Cert.Reason))
	}
	led.Close()
	led.Open("cross-edges", "edges", 0)
	led.Charge(len(dec.CrossEdges))
	led.Close()
	led.CloseExpect(dec.SweepPasses)
	return led
}
