package decomp

import (
	"fmt"
	"strings"
	"testing"

	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

// checkPartition verifies the structural invariants every decomposition
// must satisfy: clusters partition the node set, each cluster's induced
// subgraph is connected with ascending node lists, ClusterOf agrees with
// the cluster lists, CrossEdges are exactly the inter-cluster edges and
// stay within the ε·m budget, and each cluster's boundary edges are all
// cross edges.
func checkPartition(t *testing.T, g *graph.Graph, dec *Decomposition) {
	t.Helper()
	seen := make([]int, g.N())
	for i := range seen {
		seen[i] = -1
	}
	for ci, c := range dec.Clusters {
		if c.Index != ci {
			t.Fatalf("cluster %d has Index %d", ci, c.Index)
		}
		if len(c.Nodes) == 0 {
			t.Fatalf("cluster %d empty", ci)
		}
		for i, v := range c.Nodes {
			if i > 0 && c.Nodes[i-1] >= v {
				t.Fatalf("cluster %d nodes not ascending: %v", ci, c.Nodes)
			}
			if seen[v] != -1 {
				t.Fatalf("node %d in clusters %d and %d", v, seen[v], ci)
			}
			seen[v] = ci
			if int(dec.ClusterOf[v]) != ci {
				t.Fatalf("ClusterOf[%d]=%d, want %d", v, dec.ClusterOf[v], ci)
			}
		}
		if !c.Sub.G.IsConnected() {
			t.Fatalf("cluster %d induced subgraph disconnected", ci)
		}
		for _, b := range c.Sub.Boundary() {
			if dec.ClusterOf[b.Inside] == dec.ClusterOf[b.Outside] {
				t.Fatalf("cluster %d boundary edge %d is intra-cluster", ci, b.EdgeID)
			}
		}
	}
	for v, ci := range seen {
		if ci == -1 {
			t.Fatalf("node %d in no cluster", v)
		}
	}
	cross := 0
	for _, e := range g.Edges() {
		if dec.ClusterOf[e.U] != dec.ClusterOf[e.V] {
			cross++
		}
	}
	if cross != len(dec.CrossEdges) {
		t.Fatalf("CrossEdges lists %d edges, graph has %d inter-cluster edges", len(dec.CrossEdges), cross)
	}
	if budget := int(dec.Params.Eps * float64(g.M())); cross > budget {
		t.Fatalf("%d cross edges exceed budget %d", cross, budget)
	}
	if err := dec.Costs.Err(); err != nil {
		t.Fatalf("ledger violations: %v", err)
	}
}

func TestDecomposeExpanderSingleCluster(t *testing.T) {
	g := graph.RandomRegular(64, 8, rngutil.NewRand(1))
	dec, err := Decompose(g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g, dec)
	if len(dec.Clusters) != 1 {
		t.Fatalf("expander split into %d clusters", len(dec.Clusters))
	}
	c := dec.Clusters[0]
	if c.Cert.Reason != Expander {
		t.Fatalf("reason = %v, want expander", c.Cert.Reason)
	}
	if c.Cert.PhiSweep < dec.Params.Phi {
		t.Fatalf("certificate phi %g below target %g", c.Cert.PhiSweep, dec.Params.Phi)
	}
	if c.Cert.MixingTime <= 0 {
		t.Fatalf("certificate mixing time %d", c.Cert.MixingTime)
	}
	if len(dec.CrossEdges) != 0 {
		t.Fatalf("single cluster but %d cross edges", len(dec.CrossEdges))
	}
}

func TestDecomposeLollipopSplitsBottleneck(t *testing.T) {
	g := graph.Lollipop(32, 16)
	dec, err := Decompose(g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g, dec)
	if len(dec.Clusters) < 2 {
		t.Fatalf("lollipop stayed one cluster")
	}
	// The clique must land in a single cluster: its internal conductance
	// is high and no sweep cut should cross it.
	cliqueCluster := dec.ClusterOf[0]
	for v := 1; v < 32; v++ {
		if dec.ClusterOf[v] != cliqueCluster {
			t.Fatalf("clique split: node %d in cluster %d, node 0 in %d", v, dec.ClusterOf[v], cliqueCluster)
		}
	}
	// Every cluster certificate is populated.
	for _, c := range dec.Clusters {
		if len(c.Nodes) >= 2 && c.Cert.PhiSweep <= 0 {
			t.Fatalf("cluster %d (n=%d) has empty certificate", c.Index, len(c.Nodes))
		}
		if c.Cert.MixingTime < 0 {
			t.Fatalf("cluster %d has unmixed sentinel in certificate", c.Index)
		}
	}
}

func TestDecomposeBarbell(t *testing.T) {
	g := graph.Barbell(16, 8)
	dec, err := Decompose(g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g, dec)
	if len(dec.Clusters) < 2 {
		t.Fatal("barbell stayed one cluster")
	}
	// The two cliques must not share a cluster.
	if dec.ClusterOf[0] == dec.ClusterOf[16] {
		t.Fatal("both cliques in one cluster")
	}
}

func TestDecomposeDisconnectedComponents(t *testing.T) {
	g := graph.New(7)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(5, 3, 1)
	dec, err := Decompose(g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g, dec)
	if len(dec.Clusters) != 3 {
		t.Fatalf("got %d clusters, want 3 (two triangles + isolated node)", len(dec.Clusters))
	}
	if len(dec.CrossEdges) != 0 {
		t.Fatalf("component split produced %d cross edges", len(dec.CrossEdges))
	}
}

func TestDecomposeBudgetStop(t *testing.T) {
	g := graph.Barbell(8, 4)
	dec, err := Decompose(g, Params{Eps: 1e-9, MinSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g, dec)
	if len(dec.Clusters) != 1 {
		t.Fatalf("zero budget still cut: %d clusters", len(dec.Clusters))
	}
	if dec.Clusters[0].Cert.Reason != BudgetStop {
		t.Fatalf("reason = %v, want budget", dec.Clusters[0].Cert.Reason)
	}
}

func TestDecomposeRandomInvariants(t *testing.T) {
	r := rngutil.NewRand(5)
	for trial := 0; trial < 10; trial++ {
		g := graph.Gnp(20+trial*7, 0.15, r)
		dec, err := Decompose(g, Params{MinSize: 4})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkPartition(t, g, dec)
	}
}

func TestDecomposeParamValidation(t *testing.T) {
	g := graph.Ring(8)
	for _, p := range []Params{
		{Phi: 1.5},
		{Phi: -0.1},
		{Eps: 1},
		{Eps: -0.5},
		{MinSize: -3},
		{Workers: -1},
	} {
		if _, err := Decompose(g, p); err == nil {
			t.Errorf("Decompose accepted invalid params %+v", p)
		}
	}
	if _, err := Decompose(graph.New(0), Params{}); err == nil {
		t.Error("Decompose accepted an empty graph")
	}
}

// Fingerprint serializes everything observable about a decomposition —
// cluster node lists, certificates, cross edges, and the full ledger —
// for byte-comparison across worker counts.
func Fingerprint(dec *Decomposition) string {
	var b strings.Builder
	// Workers is deliberately excluded: it is the one field allowed to
	// differ between runs that must otherwise be byte-identical.
	fmt.Fprintf(&b, "phi=%g eps=%g min=%d sweeps=%d\n", dec.Params.Phi, dec.Params.Eps, dec.Params.MinSize, dec.SweepPasses)
	for _, c := range dec.Clusters {
		fmt.Fprintf(&b, "cluster %d: nodes=%v cert=%+v boundary=%v\n", c.Index, c.Nodes, c.Cert, c.Sub.Boundary())
	}
	fmt.Fprintf(&b, "cross=%v\n", dec.CrossEdges)
	for _, row := range dec.Costs.Rows() {
		fmt.Fprintf(&b, "%+v\n", row)
	}
	return b.String()
}

// TestDecompDeterminismAcrossWorkers is the decomp-suite determinism
// contract: byte-identical decompositions (assignment, certificates,
// ledger) across workers {1,2,8} × 3 seeds, run under -race by `make
// decomp-suite`.
func TestDecompDeterminismAcrossWorkers(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		graphs := map[string]*graph.Graph{
			"lollipop": graph.Lollipop(24, 8),
			"dumbbell": graph.Dumbbell(16, 4, 3, rngutil.NewRand(seed)),
			"chunglu":  graph.ChungLu(96, 2.5, 6, seed),
		}
		for name, g := range graphs {
			var want string
			for _, workers := range []int{1, 2, 8} {
				dec, err := Decompose(g, Params{Workers: workers})
				if err != nil {
					t.Fatalf("%s seed %d workers %d: %v", name, seed, workers, err)
				}
				got := Fingerprint(dec)
				if workers == 1 {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("%s seed %d: workers=%d decomposition differs from workers=1", name, seed, workers)
				}
			}
		}
	}
}
