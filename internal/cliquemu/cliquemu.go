// Package cliquemu implements clique emulation (Theorem 1.3): every node
// of a graph G must deliver one O(log n)-bit message to every other node,
// i.e., one round of the congested-clique model is simulated on top of G.
//
// Two algorithms are provided:
//
//   - Hierarchical: the paper's approach — all n·(n−1) messages are routed
//     with the §3.2 hierarchical routing scheme, split into enough random
//     phases that each phase respects the per-node d_G(v)·O(log n) demand
//     bound (the footnote-3 extension). The conference paper defers the
//     optimized dense-routing construction to its full version; this
//     phased instantiation preserves the claimed n/h(G)·polylog shape and
//     is the documented substitution.
//
//   - Direct: a routing-scheme-free baseline that sends every message
//     along a breadth-first shortest path and schedules all n·(n−1)
//     packets store-and-forward under CONGEST edge capacities.
//
// The cut lower bound n/h(G) (up to log factors) and the Balliu et al.
// comparison curve min{1/p², np} are exposed for the experiments.
package cliquemu

import (
	"fmt"
	"math"

	"almostmix/internal/cost"
	"almostmix/internal/embed"
	"almostmix/internal/graph"
	"almostmix/internal/pathsched"
	"almostmix/internal/rngutil"
	"almostmix/internal/route"
)

// Result summarizes one clique-emulation run.
type Result struct {
	// Rounds is the measured CONGEST round count on the base graph.
	Rounds int
	// Messages is the number of point-to-point deliveries (n·(n−1)).
	Messages int
	// Phases is the number of routing phases used (hierarchical only).
	Phases int
	// Costs is the run's cost ledger; Rounds is its root total. For
	// Hierarchical runs it grafts the phased-routing ledger, for Direct
	// runs it holds the single BFS schedule span.
	Costs *cost.Ledger
}

// AllToAll generates the clique-emulation workload: one request per
// ordered node pair, with destination virtual indices assigned round-robin
// so each virtual node receives ≈ (n−1)/d(v) messages.
func AllToAll(g *graph.Graph) []route.Request {
	n := g.N()
	reqs := make([]route.Request, 0, n*(n-1))
	nextIndex := make([]int, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			idx := nextIndex[v] % g.Degree(v)
			nextIndex[v]++
			reqs = append(reqs, route.Request{SrcNode: u, DstNode: v, DstIndex: idx})
		}
	}
	return reqs
}

// Hierarchical emulates the clique over a prebuilt hierarchy. The number
// of phases is ⌈(n−1)/(minDegree·log₂ n)⌉ so that per phase every node
// sends and receives at most ≈ d_G(v)·log n messages.
func Hierarchical(h *embed.Hierarchy, src *rngutil.Source) (*Result, error) {
	g := h.Base
	n := g.N()
	logN := int(math.Max(1, math.Log2(float64(n))))
	phases := (n - 1 + g.MinDegree()*logN - 1) / (g.MinDegree() * logN)
	if phases < 1 {
		phases = 1
	}
	reqs := AllToAll(g)
	rep, err := route.RoutePhased(h, reqs, phases, src)
	if err != nil {
		return nil, fmt.Errorf("cliquemu: %w", err)
	}
	led := cost.New("clique-emulation", "base rounds")
	led.Attach(rep.Costs.Root)
	rounds := led.CloseExpect(rep.BaseRounds)
	if err := led.Err(); err != nil {
		return nil, fmt.Errorf("cliquemu: cost ledger: %w", err)
	}
	return &Result{
		Rounds:   rounds,
		Messages: rep.Delivered,
		Phases:   phases,
		Costs:    led,
	}, nil
}

// Direct emulates the clique by routing every message along a BFS
// shortest path and scheduling all packets under unit edge capacities.
// This is the natural baseline: optimal up to scheduling slack for small
// graphs, with cost governed by the worst edge congestion.
func Direct(g *graph.Graph) (*Result, error) {
	if !g.IsConnected() {
		return nil, graph.ErrDisconnected
	}
	n := g.N()
	paths := make([][]int32, 0, n*(n-1))
	for u := 0; u < n; u++ {
		parent := bfsParents(g, u)
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			// Reconstruct v ← … ← u, then reverse.
			path := []int32{int32(v)}
			for x := v; x != u; {
				x = parent[x]
				path = append(path, int32(x))
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			paths = append(paths, path)
		}
	}
	led := cost.New("clique-direct", "base rounds")
	sp := led.Open("bfs-schedule", "base rounds", 1)
	res := pathsched.ScheduleInto(paths, sp)
	led.CloseExpect(res.Makespan)
	rounds := led.Close()
	if err := led.Err(); err != nil {
		return nil, fmt.Errorf("cliquemu: cost ledger: %w", err)
	}
	return &Result{
		Rounds:   rounds,
		Messages: res.Delivered,
		Costs:    led,
	}, nil
}

func bfsParents(g *graph.Graph, src int) []int {
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range g.Neighbors(v) {
			if parent[h.To] < 0 {
				parent[h.To] = v
				queue = append(queue, h.To)
			}
		}
	}
	return parent
}

// CutLowerBound returns n/h for edge expansion h: any algorithm delivering
// n messages across every (S, V∖S) cut needs at least ≈ |S|·(n−|S|)/e(S,V∖S)
// ≥ n/(2h) rounds.
func CutLowerBound(n int, h float64) float64 {
	if h <= 0 {
		return math.Inf(1)
	}
	return float64(n) / (2 * h)
}

// BalliuBound returns the Balliu et al. [9] emulation bound
// O(min{1/p², np}) for Erdős–Rényi graphs, used as the comparison curve in
// experiment E7.
func BalliuBound(n int, p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	return math.Min(1/(p*p), float64(n)*p)
}

// PaperBound returns the corollary curve O(1/p + log n) claimed by the
// paper for G(n,p) above the connectivity threshold.
func PaperBound(n int, p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	return 1/p + math.Log2(float64(n))
}
