package cliquemu

import (
	"math"
	"sync"
	"testing"

	"almostmix/internal/embed"
	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

var shared = sync.OnceValues(func() (*embed.Hierarchy, error) {
	r := rngutil.NewRand(1)
	g := graph.RandomRegular(48, 6, r)
	p := embed.DefaultParams()
	p.Beta = 4
	p.LeafSize = 12
	return embed.Build(g, p, rngutil.NewSource(3))
})

func testHierarchy(t *testing.T) *embed.Hierarchy {
	t.Helper()
	h, err := shared()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return h
}

func TestAllToAllWorkload(t *testing.T) {
	g := graph.Ring(10)
	reqs := AllToAll(g)
	if len(reqs) != 90 {
		t.Fatalf("workload size %d, want 90", len(reqs))
	}
	perDest := make([]int, g.N())
	for _, r := range reqs {
		if r.SrcNode == r.DstNode {
			t.Fatal("self message generated")
		}
		if r.DstIndex < 0 || r.DstIndex >= g.Degree(r.DstNode) {
			t.Fatalf("invalid index %d", r.DstIndex)
		}
		perDest[r.DstNode]++
	}
	for v, c := range perDest {
		if c != 9 {
			t.Fatalf("node %d receives %d messages, want 9", v, c)
		}
	}
}

func TestHierarchicalDeliversAll(t *testing.T) {
	h := testHierarchy(t)
	res, err := Hierarchical(h, rngutil.NewSource(5))
	if err != nil {
		t.Fatal(err)
	}
	n := h.Base.N()
	if res.Messages != n*(n-1) {
		t.Fatalf("delivered %d, want %d", res.Messages, n*(n-1))
	}
	if res.Rounds <= 0 || res.Phases < 1 {
		t.Fatalf("bad result %+v", res)
	}
}

func TestDirectDeliversAll(t *testing.T) {
	g := graph.RandomRegular(32, 4, rngutil.NewRand(7))
	res, err := Direct(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 32*31 {
		t.Fatalf("delivered %d", res.Messages)
	}
	// Each node must receive n−1 messages over ≤ Δ edges: rounds are at
	// least (n−1)/Δ.
	if res.Rounds < 31/4 {
		t.Fatalf("rounds %d below trivial lower bound", res.Rounds)
	}
}

func TestDirectRejectsDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	if _, err := Direct(g); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestDirectOnCompleteIsOneRound(t *testing.T) {
	res, err := Direct(graph.Complete(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("clique emulating itself took %d rounds", res.Rounds)
	}
}

func TestBoundsShapes(t *testing.T) {
	if !math.IsInf(CutLowerBound(10, 0), 1) {
		t.Fatal("zero expansion should give infinite bound")
	}
	if CutLowerBound(100, 2) != 25 {
		t.Fatalf("CutLowerBound = %v, want 25", CutLowerBound(100, 2))
	}
	// Balliu: min{1/p², np} — the np branch wins on sparse small graphs,
	// the 1/p² branch on large ones.
	if BalliuBound(100, 0.05) != 5 {
		t.Fatalf("BalliuBound np branch = %v, want 5", BalliuBound(100, 0.05))
	}
	if math.Abs(BalliuBound(10000, 0.05)-400) > 1e-9 {
		t.Fatalf("BalliuBound 1/p² branch = %v, want 400", BalliuBound(10000, 0.05))
	}
	// The paper's curve beats Balliu's in the regime 1/√n < p < 1 where
	// both branches of Balliu's bound are expensive.
	n, p := 1024, 0.1
	if PaperBound(n, p) >= BalliuBound(n, p) {
		t.Fatalf("paper curve %v not below Balliu %v at p=%v",
			PaperBound(n, p), BalliuBound(n, p), p)
	}
	if math.IsInf(PaperBound(10, 0.5), 1) || !math.IsInf(PaperBound(10, 0), 1) {
		t.Fatal("PaperBound edge cases wrong")
	}
}

func TestHierarchicalLedger(t *testing.T) {
	h := testHierarchy(t)
	res, err := Hierarchical(h, rngutil.NewSource(5))
	if err != nil {
		t.Fatal(err)
	}
	led := res.Costs
	if led == nil {
		t.Fatal("Hierarchical left Costs nil")
	}
	if err := led.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Rounds != led.Root.Total() {
		t.Fatalf("Rounds %d != ledger root %d", res.Rounds, led.Root.Total())
	}
	// The grafted child is the phased-routing ledger root; its children
	// (one per phase) sum to the whole run.
	if len(led.Root.Children) != 1 || led.Root.Children[0].Name != "route-phased" {
		t.Fatalf("unexpected ledger children %+v", led.Root.Children)
	}
	phased := led.Root.Children[0]
	sum := 0
	for _, ph := range phased.Children {
		sum += ph.Rolled()
	}
	if sum != res.Rounds {
		t.Fatalf("phase spans sum %d != Rounds %d", sum, res.Rounds)
	}
}

func TestDirectLedger(t *testing.T) {
	g := graph.Ring(12)
	res, err := Direct(g)
	if err != nil {
		t.Fatal(err)
	}
	led := res.Costs
	if led == nil {
		t.Fatal("Direct left Costs nil")
	}
	if err := led.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Rounds != led.Root.Total() {
		t.Fatalf("Rounds %d != ledger root %d", res.Rounds, led.Root.Total())
	}
	sp := led.Root.Child("bfs-schedule")
	if sp == nil {
		t.Fatal("no bfs-schedule span")
	}
	if sp.Total() != res.Rounds {
		t.Fatalf("bfs-schedule span %d != Rounds %d", sp.Total(), res.Rounds)
	}
}
