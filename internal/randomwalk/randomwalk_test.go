package randomwalk

import (
	"math"
	"testing"
	"testing/quick"

	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
	"almostmix/internal/spectral"
)

func TestPathsAreWalks(t *testing.T) {
	f := func(seed uint64) bool {
		r := rngutil.NewRand(seed)
		g := graph.RandomRegular(20, 4, r)
		sources := SourcesPerNode(UniformCountTimesDegree(g, 1))
		res := Run(g, sources, Config{Kind: spectral.Lazy, Steps: 12, Record: true}, r)
		for _, w := range res.Walks {
			if len(w.Path) != 13 {
				return false
			}
			for i := 1; i < len(w.Path); i++ {
				a, b := int(w.Path[i-1]), int(w.Path[i])
				if a != b && !g.HasEdge(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestEndsMatchPaths(t *testing.T) {
	r := rngutil.NewRand(2)
	g := graph.Ring(10)
	sources := []int32{0, 3, 7}
	res := Run(g, sources, Config{Kind: spectral.Lazy, Steps: 20, Record: true}, r)
	for i, w := range res.Walks {
		if w.Source() != int(sources[i]) {
			t.Fatalf("walk %d source %d, want %d", i, w.Source(), sources[i])
		}
		if int32(w.End()) != res.Ends[i] {
			t.Fatalf("walk %d end mismatch: path %d vs ends %d", i, w.End(), res.Ends[i])
		}
	}
}

func TestMovesCount(t *testing.T) {
	w := Walk{Path: []int32{0, 0, 1, 1, 2, 2, 2, 3}}
	if got := w.Moves(); got != 3 {
		t.Fatalf("Moves = %d, want 3", got)
	}
}

func TestLazyWalkConvergesToDegreeDistribution(t *testing.T) {
	// Star graph: lazy walk stationary mass at the center is 1/2.
	g := graph.Star(9)
	r := rngutil.NewRand(3)
	const walks = 4000
	sources := make([]int32, walks)
	for i := range sources {
		sources[i] = int32(1 + i%8) // start at leaves
	}
	res := Run(g, sources, Config{Kind: spectral.Lazy, Steps: 40}, r)
	atCenter := 0
	for _, e := range res.Ends {
		if e == 0 {
			atCenter++
		}
	}
	frac := float64(atCenter) / walks
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("fraction at center %v, want ≈ 0.5", frac)
	}
}

func TestRegularWalkConvergesToUniform(t *testing.T) {
	g := graph.Star(9)
	r := rngutil.NewRand(4)
	const walks = 9000
	sources := make([]int32, walks)
	res := Run(g, sources, Config{Kind: spectral.Regular, Steps: 400}, r)
	counts := make([]int, g.N())
	for _, e := range res.Ends {
		counts[e]++
	}
	want := float64(walks) / float64(g.N())
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 0.25*want {
			t.Fatalf("node %d has %d endpoints, want ≈ %v", v, c, want)
		}
	}
}

func TestLemma24Occupancy(t *testing.T) {
	// With k·d(v) walks per node, occupancy stays O(k·d(v) + log n).
	r := rngutil.NewRand(5)
	g := graph.RandomRegular(64, 4, r)
	k := 4
	sources := SourcesPerNode(UniformCountTimesDegree(g, k))
	res := Run(g, sources, Config{Kind: spectral.Lazy, Steps: 50}, r)
	bound := 4 * (k*4 + int(math.Log2(64))) // generous constant 4
	if res.Stats.MaxTokensAtNode > bound {
		t.Fatalf("max tokens at a node %d exceeds Lemma 2.4-style bound %d",
			res.Stats.MaxTokensAtNode, bound)
	}
}

func TestLemma25Rounds(t *testing.T) {
	// T steps of k·d(v) walks per node should cost O((k+log n)·T) rounds.
	r := rngutil.NewRand(6)
	g := graph.RandomRegular(64, 4, r)
	k, T := 3, 40
	sources := SourcesPerNode(UniformCountTimesDegree(g, k))
	res := Run(g, sources, Config{Kind: spectral.Lazy, Steps: T}, r)
	bound := 4 * (k + int(math.Log2(64))) * T
	if res.Stats.Rounds > bound {
		t.Fatalf("measured rounds %d exceed Lemma 2.5-style bound %d", res.Stats.Rounds, bound)
	}
	if res.Stats.Rounds < T {
		t.Fatalf("rounds %d below %d steps", res.Stats.Rounds, T)
	}
	if len(res.Stats.PerStepMaxLoad) != T {
		t.Fatalf("per-step loads length %d, want %d", len(res.Stats.PerStepMaxLoad), T)
	}
}

func TestZeroStepsIsNoop(t *testing.T) {
	r := rngutil.NewRand(7)
	g := graph.Ring(5)
	res := Run(g, []int32{2}, Config{Kind: spectral.Lazy, Steps: 0, Record: true}, r)
	if res.Stats.Rounds != 0 || res.Ends[0] != 2 || len(res.Walks[0].Path) != 1 {
		t.Fatalf("zero-step run mutated state: %+v", res)
	}
}

func TestSourcesPerNode(t *testing.T) {
	got := SourcesPerNode([]int{2, 0, 1})
	want := []int32{0, 0, 2}
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestReverseDeliveryRounds(t *testing.T) {
	r := rngutil.NewRand(8)
	g := graph.RandomRegular(32, 4, r)
	sources := SourcesPerNode(UniformCountTimesDegree(g, 2))
	res := Run(g, sources, Config{Kind: spectral.Lazy, Steps: 20, Record: true}, r)
	rev := ReverseDeliveryRounds(g, res.Walks, nil)
	if rev <= 0 {
		t.Fatal("reverse delivery cost not positive")
	}
	// Reverse replays the same per-step loads, so costs match closely.
	if rev > 2*res.Stats.Rounds || res.Stats.Rounds > 2*rev {
		t.Fatalf("reverse cost %d far from forward cost %d", rev, res.Stats.Rounds)
	}
	// A subset costs no more than the full set.
	subset := ReverseDeliveryRounds(g, res.Walks, []int{0, 1, 2})
	if subset > rev {
		t.Fatalf("subset reverse cost %d exceeds full cost %d", subset, rev)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g := graph.Ring(16)
	mk := func() *Result {
		return Run(g, []int32{0, 4, 8}, Config{Kind: spectral.Lazy, Steps: 30, Record: true},
			rngutil.NewRand(99))
	}
	a, b := mk(), mk()
	for i := range a.Walks {
		for s := range a.Walks[i].Path {
			if a.Walks[i].Path[s] != b.Walks[i].Path[s] {
				t.Fatal("same seed produced different walks")
			}
		}
	}
}

func TestCorrelatedMarginalDistribution(t *testing.T) {
	// A single correlated step from the star center must still move to
	// each leaf with probability 1/(2d) and stay with probability 1/2.
	g := graph.Star(5)
	stays, moves := 0, 0
	leaves := make([]int, g.N())
	for seed := uint64(0); seed < 4000; seed++ {
		r := rngutil.NewRand(seed)
		res := Run(g, []int32{0}, Config{Kind: spectral.Lazy, Steps: 1, Correlated: true}, r)
		if res.Ends[0] == 0 {
			stays++
		} else {
			moves++
			leaves[res.Ends[0]]++
		}
	}
	if stays < 1800 || stays > 2200 {
		t.Fatalf("stay count %d, want ≈ 2000", stays)
	}
	for leaf := 1; leaf < g.N(); leaf++ {
		if leaves[leaf] < 300 || leaves[leaf] > 700 {
			t.Fatalf("leaf %d got %d visits, want ≈ 500", leaf, leaves[leaf])
		}
	}
}

func TestCorrelatedReducesCongestion(t *testing.T) {
	// With k=1 (one walk per degree), the independent scheduler pays an
	// additive Θ(log n) per step while the correlated one keeps per-edge
	// load at ⌈tokens/deck⌉ — measured rounds/step must drop.
	r := rngutil.NewRand(9)
	g := graph.RandomRegular(128, 4, r)
	sources := SourcesPerNode(UniformCountTimesDegree(g, 1))
	T := 40
	ind := Run(g, sources, Config{Kind: spectral.Lazy, Steps: T}, rngutil.NewRand(10))
	cor := Run(g, sources, Config{Kind: spectral.Lazy, Steps: T, Correlated: true}, rngutil.NewRand(10))
	if cor.Stats.Rounds >= ind.Stats.Rounds {
		t.Fatalf("correlated %d rounds not below independent %d", cor.Stats.Rounds, ind.Stats.Rounds)
	}
	// Occupancy stays balanced as well.
	if cor.Stats.MaxTokensAtNode > ind.Stats.MaxTokensAtNode*2 {
		t.Fatalf("correlated occupancy %d far above independent %d",
			cor.Stats.MaxTokensAtNode, ind.Stats.MaxTokensAtNode)
	}
}

func TestCorrelatedConvergesToStationary(t *testing.T) {
	// Correlated walks must still mix to the degree distribution.
	g := graph.Star(9)
	r := rngutil.NewRand(11)
	const walks = 4000
	sources := make([]int32, walks)
	for i := range sources {
		sources[i] = int32(1 + i%8)
	}
	res := Run(g, sources, Config{Kind: spectral.Lazy, Steps: 40, Correlated: true}, r)
	atCenter := 0
	for _, e := range res.Ends {
		if e == 0 {
			atCenter++
		}
	}
	frac := float64(atCenter) / walks
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("correlated fraction at center %v, want ≈ 0.5", frac)
	}
}

func TestCorrelatedPathsAreWalks(t *testing.T) {
	r := rngutil.NewRand(12)
	g := graph.RandomRegular(20, 4, r)
	sources := SourcesPerNode(UniformCountTimesDegree(g, 2))
	res := Run(g, sources, Config{Kind: spectral.Regular, Steps: 15, Record: true, Correlated: true}, r)
	for _, w := range res.Walks {
		for i := 1; i < len(w.Path); i++ {
			a, b := int(w.Path[i-1]), int(w.Path[i])
			if a != b && !g.HasEdge(a, b) {
				t.Fatalf("correlated path uses non-edge (%d,%d)", a, b)
			}
		}
	}
}
