package randomwalk

// This file runs random-walk tokens as genuine CONGEST node programs on
// the simulator, complementing Run above (which executes the walk
// schedule directly and accounts rounds analytically). Every token hop is
// an actual message on an actual port, subject to the one-message-per-
// port-per-round capacity: tokens wanting the same port queue and drain
// one per round, which is exactly the congestion Lemma 2.5 schedules
// around. The workload is the simulator's natural stress test — per-node
// work every round, traffic on every edge — and is what the engine
// benchmark and the sequential-vs-parallel differential suite run.

import (
	"fmt"

	"almostmix/internal/congest"
	"almostmix/internal/graph"
	"almostmix/internal/metrics"
	"almostmix/internal/rngutil"
)

// walkToken is the message payload: the number of hops the token still
// has to make after the current delivery, plus the token's identity
// (origin node and per-origin sequence number). Identity is inert on
// fault-free runs; the faulty-run driver (RunNetworkFaults) uses it to
// recognize which tokens were absorbed and re-issue the lost ones.
type walkToken struct {
	Left   int32
	Origin int32
	Seq    int32
}

// NetworkWalkResult is the outcome of a node-program walk execution.
type NetworkWalkResult struct {
	// ArrivedAt[v] counts the tokens absorbed at node v after exhausting
	// their hops.
	ArrivedAt []int
	// Rounds is the simulator-measured makespan: walk steps plus all
	// queueing delay from port contention.
	Rounds int
	// Messages is the total hops delivered (= Σ tokens·steps when every
	// source has positive degree).
	Messages int
}

// walkNode is the per-node program: it routes arriving tokens onward with
// a fresh uniform port choice per hop and drains one queued token per port
// per round.
type walkNode struct {
	steps   int
	counts  []int
	arrived []int // shared, but each node writes only its own index
	queues  [][]walkToken

	// Faulty-run extras, nil on fault-free runs: seqBase[v] is the first
	// sequence number of node v's freshly issued tokens this attempt, and
	// absorbed[v] collects the identities of tokens absorbed at v (each
	// node appends only to its own slice, preserving the single-writer
	// sharding).
	seqBase  []int
	absorbed [][]tokenID
}

// tokenID identifies one issued walk token across retry attempts. The
// exported name (wire.go) lets the transport-level retry driver carry
// identities across process boundaries.
type tokenID = WalkTokenID

func (p *walkNode) Init(ctx *congest.Ctx) {
	p.queues = make([][]walkToken, ctx.Degree())
	base := 0
	if p.seqBase != nil {
		base = p.seqBase[ctx.ID()]
	}
	for i := 0; i < p.counts[ctx.ID()]; i++ {
		p.route(ctx, walkToken{
			Left:   int32(p.steps),
			Origin: int32(ctx.ID()),
			Seq:    int32(base + i),
		})
	}
	p.flush(ctx)
}

// route absorbs a token with no hops left, or queues it on a uniformly
// random port. Isolated nodes absorb immediately.
func (p *walkNode) route(ctx *congest.Ctx, tok walkToken) {
	if tok.Left == 0 || ctx.Degree() == 0 {
		p.arrived[ctx.ID()]++
		if p.absorbed != nil {
			p.absorbed[ctx.ID()] = append(p.absorbed[ctx.ID()], tokenID{tok.Origin, tok.Seq})
		}
		return
	}
	port := ctx.Rand().IntN(ctx.Degree())
	tok.Left--
	p.queues[port] = append(p.queues[port], tok)
}

// flush sends the head token of every nonempty port queue.
func (p *walkNode) flush(ctx *congest.Ctx) {
	for port, q := range p.queues {
		if len(q) > 0 {
			ctx.Send(port, q[0])
			p.queues[port] = q[1:]
		}
	}
}

func (p *walkNode) Step(ctx *congest.Ctx, inbox []congest.Inbound) {
	for _, in := range inbox {
		tok, ok := in.Payload.(walkToken)
		if !ok {
			panic(fmt.Sprintf("randomwalk: node %d got %T", ctx.ID(), in.Payload))
		}
		p.route(ctx, tok)
	}
	p.flush(ctx)
}

// RunNetwork starts counts[v] walk tokens at each node v, each making
// exactly steps uniform-random hops (no laziness) as simulator messages,
// and runs until every token is absorbed. workers selects the simulator
// engine: 1 is the sequential reference, > 1 the sharded parallel engine,
// <= 0 one worker per CPU. Results are bit-identical across worker counts
// and reproducible given the seed source.
func RunNetwork(g *graph.Graph, counts []int, steps int, src *rngutil.Source, workers int) (*NetworkWalkResult, error) {
	return RunNetworkProbe(g, counts, steps, src, workers, nil)
}

// RunNetworkProbe runs like RunNetwork with a probe attached to the
// simulator: the probe sees the genuine per-round trajectory (messages
// delivered, inbox sizes = queued tokens entering each node, per-edge
// deliveries), which is the measured counterpart of the analytic trace
// Config.Probe exposes on Run. A nil probe is identical to RunNetwork.
func RunNetworkProbe(g *graph.Graph, counts []int, steps int, src *rngutil.Source, workers int, probe congest.Probe) (*NetworkWalkResult, error) {
	return RunNetworkObserved(g, counts, steps, src, workers, probe, nil)
}

// RunNetworkObserved runs like RunNetworkProbe with a host-metrics
// registry additionally attached to the simulator, so the engine records
// per-round wall time, throughput and worker busy/idle splits alongside
// the probe's simulated-round trajectory. Nil probe and nil registry
// are both valid and independent.
func RunNetworkObserved(g *graph.Graph, counts []int, steps int, src *rngutil.Source, workers int, probe congest.Probe, reg *metrics.Registry) (*NetworkWalkResult, error) {
	if len(counts) != g.N() {
		panic(fmt.Sprintf("randomwalk: %d counts for %d nodes", len(counts), g.N()))
	}
	if steps < 0 {
		panic("randomwalk: negative step count")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	res := &NetworkWalkResult{ArrivedAt: make([]int, g.N())}
	net := congest.NewUniformNetwork(g, func(v int) congest.Program {
		return &walkNode{steps: steps, counts: counts, arrived: res.ArrivedAt}
	}, src).SetWorkers(workers).SetProbe(probe).SetMetrics(reg)
	// Every round at least one token hops while any remain in flight, so
	// total hops bounds the makespan.
	rounds, err := net.RunUntilQuiet(total*steps + 4)
	if err != nil {
		return nil, fmt.Errorf("randomwalk: network walk: %w", err)
	}
	res.Rounds = rounds
	res.Messages = net.Messages()
	return res, nil
}
