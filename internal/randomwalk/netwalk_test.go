package randomwalk

// Tests for the node-program walk workload: conservation invariants, and
// differential equivalence between the sequential and parallel simulator
// engines — the walk workload exercises heavy per-round traffic on every
// edge, the opposite load shape from GHS's sparse event-driven phases.

import (
	"reflect"
	"testing"

	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

func TestRunNetworkConservesTokens(t *testing.T) {
	g := graph.RandomRegular(64, 6, rngutil.NewRand(5))
	counts := make([]int, g.N())
	total := 0
	for v := range counts {
		counts[v] = v % 3
		total += counts[v]
	}
	const steps = 12
	res, err := RunNetwork(g, counts, steps, rngutil.NewSource(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	arrived := 0
	for _, c := range res.ArrivedAt {
		arrived += c
	}
	if arrived != total {
		t.Fatalf("arrived %d tokens, started %d", arrived, total)
	}
	// Every token makes exactly steps hops on a graph with no isolated
	// nodes, and each hop is one message.
	if res.Messages != total*steps {
		t.Fatalf("messages = %d, want %d", res.Messages, total*steps)
	}
	if res.Rounds < steps {
		t.Fatalf("rounds = %d, below the contention-free floor %d", res.Rounds, steps)
	}
}

func TestRunNetworkZeroSteps(t *testing.T) {
	g := graph.Ring(8)
	counts := []int{2, 0, 0, 0, 0, 0, 0, 1}
	res, err := RunNetwork(g, counts, 0, rngutil.NewSource(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.ArrivedAt, []int{2, 0, 0, 0, 0, 0, 0, 1}) {
		t.Fatalf("zero-step tokens moved: %v", res.ArrivedAt)
	}
	if res.Messages != 0 {
		t.Fatalf("zero-step walk sent %d messages", res.Messages)
	}
}

func TestRunNetworkDifferential(t *testing.T) {
	seeds := []uint64{2, 13, 31}
	if testing.Short() {
		seeds = seeds[:1] // keep the race-instrumented CI run fast
	}
	for _, seed := range seeds {
		g := graph.RandomRegular(96, 6, rngutil.NewRand(seed))
		counts := UniformCountTimesDegree(g, 1)
		const steps = 10
		ref, err := RunNetwork(g, counts, steps, rngutil.NewSource(seed), 1)
		if err != nil {
			t.Fatalf("seed %d: sequential: %v", seed, err)
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := RunNetwork(g, counts, steps, rngutil.NewSource(seed), workers)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if got.Rounds != ref.Rounds || got.Messages != ref.Messages ||
				!reflect.DeepEqual(got.ArrivedAt, ref.ArrivedAt) {
				t.Errorf("seed %d workers %d: (rounds=%d msgs=%d) diverges from sequential (rounds=%d msgs=%d)",
					seed, workers, got.Rounds, got.Messages, ref.Rounds, ref.Messages)
			}
		}
	}
}
