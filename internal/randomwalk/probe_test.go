package randomwalk

// Tests of the probe integration: the analytic engine's trace must agree
// with its own Stats accounting, and the node-program walk's exported
// trace must be byte-identical across simulator worker counts.

import (
	"bytes"
	"testing"

	"almostmix/internal/congest"
	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
	"almostmix/internal/spectral"
)

// TestAnalyticTraceMatchesStats: randomwalk.Run emits one round record
// per walk step whose max_edge_load equals Stats.PerStepMaxLoad entry for
// entry — the -trace output of cmd/walks is the same quantity as the E4
// table's congestion column.
func TestAnalyticTraceMatchesStats(t *testing.T) {
	g := graph.RandomRegular(64, 4, rngutil.NewRand(9))
	sources := SourcesPerNode(UniformCountTimesDegree(g, 2))
	trace := congest.NewRoundTrace()
	const steps = 25
	res := Run(g, sources, Config{
		Kind:      spectral.Lazy,
		Steps:     steps,
		Probe:     trace,
		TraceName: "unit",
	}, rngutil.NewRand(9))

	if len(trace.Samples) != steps {
		t.Fatalf("trace has %d samples, want %d", len(trace.Samples), steps)
	}
	if len(res.Stats.PerStepMaxLoad) != steps {
		t.Fatalf("PerStepMaxLoad has %d entries, want %d", len(res.Stats.PerStepMaxLoad), steps)
	}
	maxTokens := 0
	for i, s := range trace.Samples {
		if s.MaxEdgeLoad != int64(res.Stats.PerStepMaxLoad[i]) {
			t.Fatalf("step %d: trace max_edge_load %d != Stats.PerStepMaxLoad %d",
				i, s.MaxEdgeLoad, res.Stats.PerStepMaxLoad[i])
		}
		if s.Run != "unit" || s.Round != i+1 {
			t.Fatalf("sample %d mislabeled: %+v", i, s)
		}
		if s.Active != len(sources) {
			t.Fatalf("step %d: active %d, want the token count %d", i, s.Active, len(sources))
		}
		if s.MaxInbox > maxTokens {
			maxTokens = s.MaxInbox
		}
	}
	if maxTokens != res.Stats.MaxTokensAtNode {
		t.Fatalf("trace max inbox %d != Stats.MaxTokensAtNode %d",
			maxTokens, res.Stats.MaxTokensAtNode)
	}
}

// TestRunNetworkTraceIdenticalAcrossWorkers: attaching the bundled trace
// sink to the node-program walk must export byte-identical files for
// every engine/worker-count choice — traces are measured results and obey
// the same determinism contract as round counts.
func TestRunNetworkTraceIdenticalAcrossWorkers(t *testing.T) {
	g := graph.RandomRegular(48, 4, rngutil.NewRand(21))
	counts := UniformCountTimesDegree(g, 1)
	const steps = 8
	export := func(workers int) []byte {
		sink := congest.NewTraceSink().Label("walks")
		if _, err := RunNetworkProbe(g, counts, steps, rngutil.NewSource(21), workers, sink); err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := sink.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := export(1)
	for _, workers := range []int{2, 8} {
		if got := export(workers); !bytes.Equal(got, want) {
			t.Errorf("workers %d: exported trace differs from sequential (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}
}
