package randomwalk

// Walk execution under injected faults, with the minimal retry story the
// fault model calls for: tokens are identified by (origin, sequence), an
// attempt runs until the network falls silent (RunUntilQuiet — the
// silence timeout: with the fault layer's quiet rules, silence means no
// token is in flight or delayed and no crashed node is due to recover),
// and every issued token that was not absorbed by then is a casualty of a
// drop / sever / crash and is re-issued from its origin on the next
// attempt. Each attempt is a fresh single-use Network sharing the probe
// and metrics registry (both are multi-run aware); the walk RNG of
// attempt k > 0 derives from src.Child("walk-retry", k) so the whole
// faulty execution stays a pure function of (src seed, fault spec, fault
// seed).

import (
	"fmt"

	"almostmix/internal/congest"
	"almostmix/internal/faults"
	"almostmix/internal/graph"
	"almostmix/internal/metrics"
	"almostmix/internal/rngutil"
)

// FaultyWalkResult extends NetworkWalkResult with the retry accounting of
// a faulty run. Rounds and Messages accumulate over all attempts.
type FaultyWalkResult struct {
	NetworkWalkResult
	// Attempts is the number of network runs executed (1 = first attempt
	// already delivered every token).
	Attempts int
	// Reissued counts tokens re-issued after being lost to faults.
	Reissued int
	// Lost counts tokens still unabsorbed when the attempt budget ran
	// out; 0 means every walk completed.
	Lost int
	// Faults aggregates the injected fault events over all attempts.
	Faults faults.Counts
}

// RunNetworkFaults runs the node-program walks under the fault plan built
// from (spec, faultSeed), re-issuing lost tokens for up to maxAttempts
// network runs (maxAttempts < 1 means 1). An empty spec reduces to a
// plain RunNetworkObserved run with retry accounting around it. The
// result is bit-identical across engines and worker counts for a fixed
// (src, spec, faultSeed).
func RunNetworkFaults(g *graph.Graph, counts []int, steps int, src *rngutil.Source, workers int,
	spec string, faultSeed uint64, maxAttempts int, probe congest.Probe, reg *metrics.Registry) (*FaultyWalkResult, error) {
	if len(counts) != g.N() {
		panic(fmt.Sprintf("randomwalk: %d counts for %d nodes", len(counts), g.N()))
	}
	if steps < 0 {
		panic("randomwalk: negative step count")
	}
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	faultSrc := rngutil.NewSource(faultSeed)

	res := &FaultyWalkResult{}
	res.ArrivedAt = make([]int, g.N())

	// outstanding tracks every issued-but-unabsorbed token; issue[v] and
	// seqBase[v] describe the tokens node v injects on the next attempt.
	outstanding := make(map[tokenID]struct{})
	nextSeq := make([]int, g.N())
	issue := make([]int, g.N())
	for v, c := range counts {
		issue[v] = c
		for s := 0; s < c; s++ {
			outstanding[tokenID{int32(v), int32(s)}] = struct{}{}
		}
		nextSeq[v] = c
	}

	for attempt := 0; attempt < maxAttempts && len(outstanding) > 0; attempt++ {
		plan, err := faults.Parse(spec, faultSrc.Derive("attempt", uint64(attempt)))
		if err != nil {
			return nil, fmt.Errorf("randomwalk: faults: %w", err)
		}
		walkSrc := src
		if attempt > 0 {
			walkSrc = src.Child("walk-retry", uint64(attempt))
		}
		absorbed := make([][]tokenID, g.N())
		scratch := make([]int, g.N()) // attempt-local arrival counters
		seqBase := make([]int, g.N())
		issuing := 0
		for v := range issue {
			seqBase[v] = nextSeq[v] - issue[v]
			issuing += issue[v]
		}
		attemptCounts := append([]int(nil), issue...)
		net := congest.NewUniformNetwork(g, func(v int) congest.Program {
			return &walkNode{
				steps:    steps,
				counts:   attemptCounts,
				arrived:  scratch,
				seqBase:  seqBase,
				absorbed: absorbed,
			}
		}, walkSrc).SetWorkers(workers).SetProbe(probe).SetMetrics(reg).SetFaults(plan)
		// Fault-free, total hops bound the makespan; delays and crash
		// recoveries stretch it by their worst-case slack.
		budget := issuing*steps + 4 + steps*plan.MaxDelay() + plan.RecoverySlack()
		rounds, err := net.RunUntilQuiet(budget)
		if err != nil {
			return nil, fmt.Errorf("randomwalk: faulty network walk: %w", err)
		}
		res.Rounds += rounds
		res.Messages += net.Messages()
		res.Faults.Add(plan.Totals())
		res.Attempts++

		// Reconcile: first absorption of an outstanding token counts;
		// duplicate arrivals of already-settled tokens are ignored.
		for v, ids := range absorbed {
			for _, id := range ids {
				if _, open := outstanding[id]; open {
					delete(outstanding, id)
					res.ArrivedAt[v]++
				}
			}
		}
		// Whatever is still outstanding was lost: re-issue it from its
		// origin on the next attempt. The lost IDs are retired and fresh
		// sequence numbers minted, so a straggling duplicate of a lost
		// token can never masquerade as its replacement.
		for v := range issue {
			issue[v] = 0
		}
		for id := range outstanding {
			issue[id.Origin]++
		}
		if len(outstanding) == 0 || attempt+1 == maxAttempts {
			continue // loop condition ends the run; Lost reads outstanding
		}
		fresh := make(map[tokenID]struct{}, len(outstanding))
		for v, c := range issue {
			for s := 0; s < c; s++ {
				fresh[tokenID{int32(v), int32(nextSeq[v] + s)}] = struct{}{}
			}
			nextSeq[v] += c
		}
		res.Reissued += len(outstanding)
		outstanding = fresh
	}
	res.Lost = len(outstanding)
	return res, nil
}
