// Package randomwalk runs many independent random walks in parallel on a
// graph under CONGEST edge-capacity constraints, implementing the
// scheduling of Lemmas 2.4 and 2.5 of the paper.
//
// Per walk step, every token at a node either stays (laziness) or crosses
// an incident edge. Each edge can carry one token per direction per
// CONGEST round, so executing one parallel step costs as many rounds as
// the most loaded directed edge. The engine executes walks step by step,
// measures that cost exactly, and records token paths so that walks can be
// re-run in reverse (the paper's mechanism for turning walk endpoints into
// usable overlay edges) and re-used as embedded routing paths.
package randomwalk

import (
	"fmt"
	"math/rand/v2"

	"almostmix/internal/congest"
	"almostmix/internal/graph"
	"almostmix/internal/spectral"
)

// Walk is one token's trajectory: Path[s] is the node occupied after s
// steps, so Path[0] is the source and Path[len-1] the endpoint. Equal
// consecutive entries are lazy (non-moving) steps.
type Walk struct {
	Path []int32
}

// Source returns the walk's start node.
func (w *Walk) Source() int { return int(w.Path[0]) }

// End returns the walk's final node.
func (w *Walk) End() int { return int(w.Path[len(w.Path)-1]) }

// Moves returns the number of edge traversals (non-lazy steps).
func (w *Walk) Moves() int {
	moves := 0
	for i := 1; i < len(w.Path); i++ {
		if w.Path[i] != w.Path[i-1] {
			moves++
		}
	}
	return moves
}

// Stats captures the congestion quantities that Lemmas 2.4 and 2.5 bound.
// It is the aggregate view; the per-step trajectory is also exposed
// through the simulator's uniform probe layer (Config.Probe), whose
// max_edge_load column equals PerStepMaxLoad entry for entry.
type Stats struct {
	// Rounds is the total measured CONGEST rounds to execute all steps:
	// the sum over steps of the maximum directed-edge load.
	Rounds int
	// MaxTokensAtNode is the maximum, over steps and nodes, of tokens
	// simultaneously at one node (Lemma 2.4's subject).
	MaxTokensAtNode int
	// MaxTokensOverDegree is the maximum over steps and nodes of
	// tokens(v)/d(v), the degree-normalized occupancy.
	MaxTokensOverDegree float64
	// PerStepMaxLoad[s] is the maximum directed-edge load in step s
	// (the measured analogue of Lemma 2.5's O(k+log n) phase length).
	PerStepMaxLoad []int
}

// Config controls a parallel walk execution.
type Config struct {
	Kind  spectral.WalkKind // Lazy or Regular (2Δ-regular)
	Steps int               // walk length T
	// Record keeps full paths (needed for reversal/embedding). When
	// false only endpoints and statistics are tracked.
	Record bool
	// Correlated runs the walks in the negatively-correlated fashion
	// the paper sketches for the k = o(log n) regime (the full-version
	// refinement of Lemma 2.5): per step, each node deals its resident
	// tokens across its transition slots like a shuffled deck instead
	// of sampling independently, so no edge carries more than ⌈tokens/d⌉
	// of them and the additive log n congestion term disappears. Each
	// token's marginal transition distribution is unchanged.
	Correlated bool
	// Probe, when non-nil, observes the execution through the simulator's
	// uniform observability layer: one RoundRecord per walk step, with
	// Delivered = edge traversals, MaxEdgeLoad = the step's maximum
	// directed-edge load (the Lemma 2.5 congestion, == PerStepMaxLoad),
	// InboxSizes = tokens resident per node after the step (the Lemma 2.4
	// occupancy), and Active = the token count. Hooks fire on the calling
	// goroutine; the handed slices are only valid during each call.
	Probe congest.Probe
	// TraceName labels the run in the probe's RunInfo.
	TraceName string
}

// Result is the outcome of a parallel walk execution.
type Result struct {
	Walks []Walk // full paths if cfg.Record, else length-1 stubs updated to endpoints
	Ends  []int32
	Stats Stats
}

// Run executes one walk from each entry of sources (sources[i] = start
// node of walk i) for cfg.Steps parallel steps, and returns trajectories,
// endpoints and congestion statistics. The rng drives all token decisions;
// runs are reproducible given the same rng state.
func Run(g *graph.Graph, sources []int32, cfg Config, rng *rand.Rand) *Result {
	if cfg.Steps < 0 {
		panic("randomwalk: negative step count")
	}
	if cfg.Kind != spectral.Lazy && cfg.Kind != spectral.Regular {
		panic(fmt.Sprintf("randomwalk: unsupported walk kind %v", cfg.Kind))
	}
	nWalks := len(sources)
	res := &Result{
		Ends: make([]int32, nWalks),
	}
	copy(res.Ends, sources)
	if cfg.Record {
		res.Walks = make([]Walk, nWalks)
		for i := range res.Walks {
			path := make([]int32, 1, cfg.Steps+1)
			path[0] = sources[i]
			res.Walks[i].Path = path
		}
	}
	res.Stats.PerStepMaxLoad = make([]int, cfg.Steps)

	delta := g.MaxDegree()
	edgeLoad := make([]int64, 2*g.M()) // directed: 2*id + dir
	touched := make([]int, 0, nWalks)
	tokensAt := make([]int32, g.N())
	for _, s := range sources {
		tokensAt[s]++
	}
	res.noteOccupancy(g, tokensAt)
	var inboxBuf []int // per-node occupancy copy handed to the probe
	if cfg.Probe != nil {
		inboxBuf = make([]int, g.N())
		cfg.Probe.RunStart(congest.RunInfo{
			Name:    cfg.TraceName,
			Engine:  "randomwalk",
			Workers: 1,
			Nodes:   g.N(),
			Edges:   g.M(),
		})
	}

	for step := 0; step < cfg.Steps; step++ {
		maxLoad, moves := 0, 0
		applyMove := func(i, v, next, edgeID int) {
			if next != v {
				moves++
				dir := 0
				if g.Edge(edgeID).V == next {
					dir = 1
				}
				slot := 2*edgeID + dir
				if edgeLoad[slot] == 0 {
					touched = append(touched, slot)
				}
				edgeLoad[slot]++
				if int(edgeLoad[slot]) > maxLoad {
					maxLoad = int(edgeLoad[slot])
				}
				tokensAt[v]--
				tokensAt[next]++
				res.Ends[i] = int32(next)
			}
			if cfg.Record {
				res.Walks[i].Path = append(res.Walks[i].Path, int32(next))
			}
		}
		if cfg.Correlated {
			correlatedStep(g, cfg.Kind, res.Ends, delta, rng, applyMove)
		} else {
			for i := 0; i < nWalks; i++ {
				v := int(res.Ends[i])
				next, edgeID := stepToken(g, cfg.Kind, v, delta, rng)
				applyMove(i, v, next, edgeID)
			}
		}
		if maxLoad == 0 {
			maxLoad = 1 // a phase takes at least one round even if all tokens stayed
		}
		res.Stats.PerStepMaxLoad[step] = maxLoad
		res.Stats.Rounds += maxLoad
		res.noteOccupancy(g, tokensAt)
		if cfg.Probe != nil {
			// Emit the step record before the edge loads are cleared: one
			// "round" per walk step, congestion as Lemma 2.5 counts it.
			rec := &congest.RoundRecord{
				Round:        step + 1,
				Delivered:    moves,
				Active:       nWalks,
				MaxInboxNode: -1,
				MaxEdgeLoad:  int64(maxLoad),
				InboxSizes:   inboxBuf,
				EdgeLoad:     edgeLoad,
			}
			for v, c := range tokensAt {
				inboxBuf[v] = int(c)
				if int(c) > rec.MaxInbox {
					rec.MaxInbox = int(c)
					rec.MaxInboxNode = v
				}
			}
			cfg.Probe.RoundEnd(rec)
		}
		for _, slot := range touched {
			edgeLoad[slot] = 0
		}
		touched = touched[:0]
	}
	if cfg.Probe != nil {
		cfg.Probe.RunEnd(res.Stats.Rounds, nil)
	}
	return res
}

// correlatedStep advances every token one step with negative correlation:
// each node deals its resident tokens over a uniformly rotated "deck" of
// transition slots (d stay slots + d edge slots for the lazy walk;
// 2Δ−d(v) stay slots + d(v) edge slots for the 2Δ-regular walk), so the
// per-edge load is at most ⌈tokens/deck⌉ while every token's marginal
// transition stays exact.
func correlatedStep(g *graph.Graph, kind spectral.WalkKind, ends []int32, delta int,
	rng *rand.Rand, applyMove func(i, v, next, edgeID int)) {
	byNode := make([][]int32, g.N())
	for i, v := range ends {
		byNode[v] = append(byNode[v], int32(i))
	}
	for v, tokens := range byNode {
		if len(tokens) == 0 {
			continue
		}
		d := g.Degree(v)
		if d == 0 {
			for _, i := range tokens {
				applyMove(int(i), v, v, -1)
			}
			continue
		}
		var deckSize, stayCount int
		switch kind {
		case spectral.Lazy:
			deckSize, stayCount = 2*d, d
		case spectral.Regular:
			deckSize, stayCount = 2*delta, 2*delta-d
		default:
			panic("randomwalk: unsupported walk kind")
		}
		// Shuffle tokens, then deal them round-robin from a random
		// deck offset: position in a random permutation plus a uniform
		// rotation makes each token's slot marginally uniform.
		for i := len(tokens) - 1; i > 0; i-- {
			j := rng.IntN(i + 1)
			tokens[i], tokens[j] = tokens[j], tokens[i]
		}
		offset := rng.IntN(deckSize)
		for j, tok := range tokens {
			slot := (offset + j) % deckSize
			if slot < stayCount {
				applyMove(int(tok), v, v, -1)
				continue
			}
			h := g.Neighbors(v)[slot-stayCount]
			applyMove(int(tok), v, h.To, h.EdgeID)
		}
	}
}

// stepToken draws one transition of the configured walk from node v and
// returns the next node and, if moving, the edge used (-1 when staying).
func stepToken(g *graph.Graph, kind spectral.WalkKind, v, delta int, rng *rand.Rand) (next, edgeID int) {
	if g.Degree(v) == 0 {
		return v, -1 // isolated node: the token can only stay
	}
	switch kind {
	case spectral.Lazy:
		if rng.Uint64()&1 == 0 {
			return v, -1
		}
		h := g.Neighbors(v)[rng.IntN(g.Degree(v))]
		return h.To, h.EdgeID
	case spectral.Regular:
		r := rng.IntN(2 * delta)
		if r >= g.Degree(v) {
			return v, -1
		}
		h := g.Neighbors(v)[r]
		return h.To, h.EdgeID
	default:
		panic("randomwalk: unsupported walk kind")
	}
}

func (r *Result) noteOccupancy(g *graph.Graph, tokensAt []int32) {
	for v, c := range tokensAt {
		if int(c) > r.Stats.MaxTokensAtNode {
			r.Stats.MaxTokensAtNode = int(c)
		}
		if d := g.Degree(v); d > 0 {
			if ratio := float64(c) / float64(d); ratio > r.Stats.MaxTokensOverDegree {
				r.Stats.MaxTokensOverDegree = ratio
			}
		}
	}
}

// SourcesPerNode expands per-node walk counts into a flat source list:
// counts[v] walks start at node v.
func SourcesPerNode(counts []int) []int32 {
	total := 0
	for _, c := range counts {
		total += c
	}
	sources := make([]int32, 0, total)
	for v, c := range counts {
		for i := 0; i < c; i++ {
			sources = append(sources, int32(v))
		}
	}
	return sources
}

// UniformCountTimesDegree returns the start-count vector k·d_G(v) used by
// Lemma 2.5's premise.
func UniformCountTimesDegree(g *graph.Graph, k int) []int {
	counts := make([]int, g.N())
	for v := range counts {
		counts[v] = k * g.Degree(v)
	}
	return counts
}

// ReverseDeliveryRounds measures the CONGEST rounds needed to run the
// given recorded walks backwards (the mechanism of §3.1.1 for informing
// sources of their endpoints). By symmetry each reverse step loads edges
// exactly as the forward step did, so the cost equals replaying the
// forward schedule; this function recomputes it from the recorded paths
// for the subset keep of walk indices (nil = all).
func ReverseDeliveryRounds(g *graph.Graph, walks []Walk, keep []int) int {
	if keep == nil {
		keep = make([]int, len(walks))
		for i := range keep {
			keep[i] = i
		}
	}
	if len(keep) == 0 {
		return 0
	}
	steps := 0
	for _, i := range keep {
		if len(walks[i].Path)-1 > steps {
			steps = len(walks[i].Path) - 1
		}
	}
	edgeLoad := make(map[int64]int)
	rounds := 0
	for s := steps; s >= 1; s-- {
		clear(edgeLoad)
		maxLoad := 1
		for _, i := range keep {
			path := walks[i].Path
			if s >= len(path) {
				continue
			}
			from, to := path[s], path[s-1]
			if from == to {
				continue
			}
			key := int64(from)<<32 | int64(to)
			edgeLoad[key]++
			if edgeLoad[key] > maxLoad {
				maxLoad = edgeLoad[key]
			}
		}
		rounds += maxLoad
	}
	return rounds
}
