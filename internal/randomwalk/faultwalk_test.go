package randomwalk

// Tests of the faulty walk driver: an empty fault spec must reduce to the
// plain fault-free run, and under real message loss the retry loop must
// recover every token — deterministically, with bit-identical results
// across engines and worker counts.

import (
	"reflect"
	"testing"

	"almostmix/internal/faults"
	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

// TestRunNetworkFaultsEmptySpec: with no fault spec, RunNetworkFaults is
// RunNetwork plus inert accounting — same arrivals, rounds, messages, one
// attempt, nothing re-issued or lost.
func TestRunNetworkFaultsEmptySpec(t *testing.T) {
	g := graph.RandomRegular(48, 4, rngutil.NewRand(21))
	counts := UniformCountTimesDegree(g, 1)
	const steps = 8

	plain, err := RunNetwork(g, counts, steps, rngutil.NewSource(21), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		faulty, err := RunNetworkFaults(g, counts, steps, rngutil.NewSource(21), workers,
			"", 7, 3, nil, nil)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if !reflect.DeepEqual(faulty.ArrivedAt, plain.ArrivedAt) {
			t.Errorf("workers %d: arrivals differ from fault-free run", workers)
		}
		if faulty.Rounds != plain.Rounds || faulty.Messages != plain.Messages {
			t.Errorf("workers %d: rounds/messages %d/%d, want %d/%d",
				workers, faulty.Rounds, faulty.Messages, plain.Rounds, plain.Messages)
		}
		if faulty.Attempts != 1 || faulty.Reissued != 0 || faulty.Lost != 0 {
			t.Errorf("workers %d: attempts/reissued/lost = %d/%d/%d, want 1/0/0",
				workers, faulty.Attempts, faulty.Reissued, faulty.Lost)
		}
		if faulty.Faults != (faults.Counts{}) {
			t.Errorf("workers %d: fault counts %+v on empty plan", workers, faulty.Faults)
		}
	}
}

// TestRunNetworkFaultsRecoversTokens: under a genuinely lossy plan the
// retry loop must eventually land every token (total arrivals = total
// issued, Lost = 0), re-issuing at least one along the way, and the whole
// execution — arrivals, rounds, messages, attempts, fault totals — must be
// bit-identical across worker counts.
func TestRunNetworkFaultsRecoversTokens(t *testing.T) {
	g := graph.RandomRegular(32, 4, rngutil.NewRand(5))
	counts := UniformCountTimesDegree(g, 1)
	const steps = 10
	const spec = "drop=0.08,dup=0.05,delay=0.08:2"

	run := func(workers int) *FaultyWalkResult {
		res, err := RunNetworkFaults(g, counts, steps, rngutil.NewSource(5), workers,
			spec, 11, 12, nil, nil)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		return res
	}
	want := run(1)

	issued := 0
	for _, c := range counts {
		issued += c
	}
	got := 0
	for _, c := range want.ArrivedAt {
		got += c
	}
	if got != issued || want.Lost != 0 {
		t.Fatalf("recovered %d of %d tokens, lost %d — retry loop failed", got, issued, want.Lost)
	}
	if want.Faults.Dropped == 0 {
		t.Fatalf("no drops injected; test exercises nothing (faults %+v)", want.Faults)
	}
	if want.Reissued == 0 || want.Attempts < 2 {
		t.Fatalf("attempts %d, reissued %d — expected at least one retry under drops",
			want.Attempts, want.Reissued)
	}

	for _, workers := range []int{2, 8} {
		if res := run(workers); !reflect.DeepEqual(res, want) {
			t.Errorf("workers %d: result diverges from sequential\n got %+v\nwant %+v",
				workers, res, want)
		}
	}
}

// TestRunNetworkFaultsExhaustsAttempts: with total loss and a capped
// attempt budget, the driver must stop at the cap and report everything
// still outstanding as lost rather than spinning.
func TestRunNetworkFaultsExhaustsAttempts(t *testing.T) {
	g := graph.Path(4)
	counts := []int{2, 0, 0, 0}
	res, err := RunNetworkFaults(g, counts, 3, rngutil.NewSource(1), 1,
		"drop=1.0", 3, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 4 {
		t.Errorf("attempts %d, want the full budget 4", res.Attempts)
	}
	if res.Lost != 2 {
		t.Errorf("lost %d tokens, want all 2", res.Lost)
	}
	if res.Reissued != 6 {
		t.Errorf("reissued %d, want 2 per non-final attempt = 6", res.Reissued)
	}
	for v, c := range res.ArrivedAt {
		if c != 0 {
			t.Errorf("node %d absorbed %d tokens under total loss", v, c)
		}
	}
}
