package randomwalk

// Wire adapters for the transport layer (internal/transport): an
// exported builder for the node-program walk workload plus the byte
// codec for its (unexported) token payload. See
// internal/congest/wire.go for the codec contract.

import (
	"encoding/binary"
	"fmt"

	"almostmix/internal/congest"
	"almostmix/internal/graph"
)

// WalkPrograms returns the per-node programs of RunNetworkObserved —
// counts[v] tokens start at node v, each making exactly steps uniform
// hops — plus the shared arrival-count slice and the round budget. Run
// with RunUntilQuiet; arrived[v] is valid only on the process owning
// node v. Panics on invalid counts/steps like RunNetworkObserved.
func WalkPrograms(g *graph.Graph, counts []int, steps int) (programs []congest.Program, arrived []int, maxRounds int) {
	if len(counts) != g.N() {
		panic(fmt.Sprintf("randomwalk: %d counts for %d nodes", len(counts), g.N()))
	}
	if steps < 0 {
		panic("randomwalk: negative step count")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	arrived = make([]int, g.N())
	programs = make([]congest.Program, g.N())
	for v := range programs {
		programs[v] = &walkNode{steps: steps, counts: counts, arrived: arrived}
	}
	return programs, arrived, total*steps + 4
}

// WalkTokenID identifies one issued walk token across retry attempts:
// the origin node and a per-origin sequence number, unique across the
// whole faulty run (re-issues mint fresh numbers).
type WalkTokenID struct{ Origin, Seq int32 }

// WalkFaultPrograms returns the per-node programs of one faulty-run
// attempt, exactly as RunNetworkFaults builds them: counts[v] tokens
// start at node v with sequence numbers seqBase[v], seqBase[v]+1, …,
// and every absorption records the token's identity into absorbed[v]
// (single-writer per node, valid only on the process owning v, like
// arrived). The retry driver reconciles absorbed identities against its
// outstanding set and re-issues the rest. The fault-free round budget
// is Σcounts·steps + 4; callers add the plan's delay and recovery slack
// exactly like RunNetworkFaults.
func WalkFaultPrograms(g *graph.Graph, counts, seqBase []int, steps int) (programs []congest.Program, arrived []int, absorbed [][]WalkTokenID) {
	if len(counts) != g.N() {
		panic(fmt.Sprintf("randomwalk: %d counts for %d nodes", len(counts), g.N()))
	}
	if len(seqBase) != g.N() {
		panic(fmt.Sprintf("randomwalk: %d sequence bases for %d nodes", len(seqBase), g.N()))
	}
	if steps < 0 {
		panic("randomwalk: negative step count")
	}
	arrived = make([]int, g.N())
	absorbed = make([][]WalkTokenID, g.N())
	programs = make([]congest.Program, g.N())
	for v := range programs {
		programs[v] = &walkNode{
			steps:    steps,
			counts:   counts,
			arrived:  arrived,
			seqBase:  seqBase,
			absorbed: absorbed,
		}
	}
	return programs, arrived, absorbed
}

// EncodeWalkPayload appends the canonical encoding of a walk token.
func EncodeWalkPayload(buf []byte, m congest.Message) ([]byte, error) {
	tok, ok := m.(walkToken)
	if !ok {
		return nil, fmt.Errorf("randomwalk: walk payload codec got %T", m)
	}
	buf = binary.AppendUvarint(buf, uint64(tok.Left))
	buf = binary.AppendUvarint(buf, uint64(tok.Origin))
	return binary.AppendUvarint(buf, uint64(tok.Seq)), nil
}

// DecodeWalkPayload parses the bytes EncodeWalkPayload produced.
func DecodeWalkPayload(b []byte) (congest.Message, error) {
	left, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("randomwalk: malformed walk payload")
	}
	b = b[n:]
	origin, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("randomwalk: malformed walk payload")
	}
	b = b[n:]
	seq, n := binary.Uvarint(b)
	if n <= 0 || n != len(b) {
		return nil, fmt.Errorf("randomwalk: malformed walk payload")
	}
	return walkToken{Left: int32(left), Origin: int32(origin), Seq: int32(seq)}, nil
}
