package route

import (
	"fmt"

	"almostmix/internal/embed"
	"almostmix/internal/pathsched"
	"almostmix/internal/randomwalk"
	"almostmix/internal/rngutil"
	"almostmix/internal/spectral"
)

// RouteExact measures the same routing execution two ways: with the
// paper's per-level emulation accounting (as Route does) and by expanding
// every packet's full journey — preparation walk, every overlay-edge
// traversal at every level, every portal hop — down to base-graph edges
// and scheduling all packets store-and-forward in one CONGEST schedule.
//
// The exact makespan is the cost of the actual traffic under ideal
// pipelining across phases, so it lower-bounds any faithful execution,
// while the paper-style figure charges a full overlay round per routing
// step; the ratio between the two is the measured slack of the Lemma
// 3.1/3.2 emulation accounting (experiment E12).
type ExactReport struct {
	// Paper is the per-level-accounting report (identical to Route's).
	Paper *Report
	// ExactRounds is the makespan of the fully expanded schedule.
	ExactRounds int
	// Congestion and Dilation are the classic lower bounds of that
	// schedule: max base-edge load and max expanded path length.
	Congestion, Dilation int
}

// traversal records one overlay-edge crossing by a packet. A negative
// edge means "any edge between from and to" (leaf BFS hops, where parallel
// edges are equivalent); portal hops name their exact crossing edge.
type traversal struct {
	level    int
	edge     int32
	from, to int32
}

// RouteExact routes reqs like Route while recording every overlay-edge
// traversal, then expands and schedules the real packet paths.
func RouteExact(h *embed.Hierarchy, reqs []Request, src *rngutil.Source) (*ExactReport, error) {
	r, err := newRouter(h, reqs, src)
	if err != nil {
		return nil, err
	}
	r.trace = make([][]traversal, len(reqs))

	// Preparation with recorded walk paths, so the physical prefix of
	// each packet's journey is part of the exact schedule.
	sources := make([]int32, len(reqs))
	for i, req := range reqs {
		sources[i] = int32(req.SrcNode)
	}
	prep := randomwalk.Run(h.Base, sources, randomwalk.Config{
		Kind:   spectral.Lazy,
		Steps:  h.TauMix,
		Record: true,
	}, src.Stream("prep", 0))
	for i := range reqs {
		end := int(prep.Ends[i])
		r.cur[i] = h.VM.VID(end, r.rng.IntN(h.VM.DegreeOf(end)))
	}
	r.chargePrep(prep.Stats.Rounds)
	r.leafAdj = newPartBFS(h.Overlay(h.Levels))

	g0Cost, err := r.runRecursion()
	if err != nil {
		return nil, err
	}
	if err := r.finish(g0Cost, len(reqs)); err != nil {
		return nil, err
	}

	// Expand every packet's journey to a base-graph walk.
	ex := newExpander(h)
	paths := make([][]int32, 0, len(reqs))
	for i := range reqs {
		path := append([]int32(nil), prep.Walks[i].Path...)
		for _, tr := range r.trace[i] {
			edge := tr.edge
			if edge < 0 {
				edge = ex.edgeBetween(tr.level, tr.from, tr.to)
			}
			seg := ex.expand(tr.level, int(edge), tr.from)
			// Segments join at the shared physical endpoint.
			if len(path) > 0 && len(seg) > 0 && path[len(path)-1] == seg[0] {
				seg = seg[1:]
			}
			path = append(path, seg...)
		}
		paths = append(paths, path)
	}
	sched := pathsched.Schedule(paths)
	if err := pathsched.Validate(paths, func(a, b int32) bool {
		return h.Base.HasEdge(int(a), int(b))
	}); err != nil {
		return nil, fmt.Errorf("route: exact expansion produced a non-walk: %w", err)
	}
	return &ExactReport{
		Paper:       r.report,
		ExactRounds: sched.Makespan,
		Congestion:  sched.Congestion,
		Dilation:    sched.Dilation,
	}, nil
}

// expander memoizes the physical expansion of overlay edges.
type expander struct {
	h *embed.Hierarchy
	// memo[level][edge] is the forward (U→V) physical path.
	memo []map[int][]int32
	// link[level] maps a directed vid pair to an overlay edge at that
	// level (any parallel edge serves).
	link []map[int64]int32
}

func newExpander(h *embed.Hierarchy) *expander {
	ex := &expander{
		h:    h,
		memo: make([]map[int][]int32, h.Levels+1),
		link: make([]map[int64]int32, h.Levels+1),
	}
	for l := 0; l <= h.Levels; l++ {
		ex.memo[l] = make(map[int][]int32)
	}
	return ex
}

// edgeBetween finds an overlay edge between two vids at the given level.
func (ex *expander) edgeBetween(level int, a, b int32) int32 {
	if ex.link[level] == nil {
		o := ex.h.Overlay(level)
		m := make(map[int64]int32, 2*o.Graph.M())
		for id, e := range o.Graph.Edges() {
			m[int64(e.U)<<32|int64(e.V)] = int32(id)
			m[int64(e.V)<<32|int64(e.U)] = int32(id)
		}
		ex.link[level] = m
	}
	id, ok := ex.link[level][int64(a)<<32|int64(b)]
	if !ok {
		panic(fmt.Sprintf("route: no level-%d edge between vids %d and %d", level, a, b))
	}
	return id
}

// expand returns the physical walk of overlay edge `edge` at `level`,
// oriented to start at the owner of vid `from`.
func (ex *expander) expand(level, edge int, from int32) []int32 {
	e := ex.h.Overlay(level).Graph.Edge(edge)
	fwd := ex.forward(level, edge)
	if int(from) == e.U {
		return fwd
	}
	out := make([]int32, len(fwd))
	for i, v := range fwd {
		out[len(fwd)-1-i] = v
	}
	return out
}

// forward computes (and memoizes) the U→V physical path of an overlay
// edge.
func (ex *expander) forward(level, edge int) []int32 {
	if p, ok := ex.memo[level][edge]; ok {
		return p
	}
	o := ex.h.Overlay(level)
	e := o.Graph.Edge(edge)
	below := o.EdgePath(edge, int32(e.U))
	var out []int32
	if level == 0 {
		out = below // already physical
	} else {
		for i := 1; i < len(below); i++ {
			a, b := below[i-1], below[i]
			if a == b {
				continue
			}
			sub := ex.expand(level-1, int(ex.edgeBetween(level-1, a, b)), a)
			if len(out) > 0 && out[len(out)-1] == sub[0] {
				sub = sub[1:]
			} else if len(out) == 0 {
				// keep the full first segment
			}
			out = append(out, sub...)
		}
		if len(out) == 0 {
			// Degenerate all-lazy path: stay at the owner.
			out = []int32{int32(ex.h.VM.Owner(int32(e.U)))}
		}
	}
	ex.memo[level][edge] = out
	return out
}
