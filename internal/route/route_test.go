package route

import (
	"fmt"
	"sync"
	"testing"

	"almostmix/internal/embed"
	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

var shared = sync.OnceValues(func() (*embed.Hierarchy, error) {
	r := rngutil.NewRand(1)
	g := graph.RandomRegular(64, 6, r)
	p := embed.DefaultParams()
	p.Beta = 4
	p.LeafSize = 12
	return embed.Build(g, p, rngutil.NewSource(42))
})

func testHierarchy(t *testing.T) *embed.Hierarchy {
	t.Helper()
	h, err := shared()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return h
}

func TestRoutePermutationDeliversAll(t *testing.T) {
	h := testHierarchy(t)
	reqs := RandomPermutation(h.Base, rngutil.NewRand(7))
	rep, err := Route(h, reqs, rngutil.NewSource(8))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != len(reqs) {
		t.Fatalf("delivered %d of %d", rep.Delivered, len(reqs))
	}
	if rep.BaseRounds <= 0 || rep.G0Rounds <= 0 || rep.PrepRounds <= 0 {
		t.Fatalf("non-positive costs: %+v", rep)
	}
}

func TestRouteDegreeDemandDeliversAll(t *testing.T) {
	h := testHierarchy(t)
	reqs := DegreeDemand(h.Base, rngutil.NewRand(9))
	if len(reqs) != 2*h.Base.M() {
		t.Fatalf("workload size %d, want %d", len(reqs), 2*h.Base.M())
	}
	rep, err := Route(h, reqs, rngutil.NewSource(10))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != len(reqs) {
		t.Fatalf("delivered %d of %d", rep.Delivered, len(reqs))
	}
}

func TestRouteSingleAndSelf(t *testing.T) {
	h := testHierarchy(t)
	reqs := []Request{
		{SrcNode: 0, DstNode: 63, DstIndex: 2},
		{SrcNode: 5, DstNode: 5, DstIndex: 0}, // self-delivery
	}
	rep, err := Route(h, reqs, rngutil.NewSource(11))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 2 {
		t.Fatalf("delivered %d, want 2", rep.Delivered)
	}
}

func TestRouteRejectsBadIndex(t *testing.T) {
	h := testHierarchy(t)
	reqs := []Request{{SrcNode: 0, DstNode: 1, DstIndex: 99}}
	if _, err := Route(h, reqs, rngutil.NewSource(12)); err == nil {
		t.Fatal("bad virtual index accepted")
	}
}

func TestRouteEmptyRequestList(t *testing.T) {
	h := testHierarchy(t)
	rep, err := Route(h, nil, rngutil.NewSource(13))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 0 || rep.G0Rounds != 0 {
		t.Fatalf("empty routing produced %+v", rep)
	}
}

func TestRouteCostDecomposition(t *testing.T) {
	h := testHierarchy(t)
	reqs := RandomPermutation(h.Base, rngutil.NewRand(14))
	rep, err := Route(h, reqs, rngutil.NewSource(15))
	if err != nil {
		t.Fatal(err)
	}
	hops := 0
	for _, c := range rep.HopG0Rounds {
		hops += c
	}
	if rep.LeafG0Rounds+hops != rep.G0Rounds {
		t.Fatalf("decomposition %d (leaf) + %d (hops) != %d (total)",
			rep.LeafG0Rounds, hops, rep.G0Rounds)
	}
	if rep.BaseRounds != rep.PrepRounds+rep.G0Rounds*h.G0.EmulationRounds {
		t.Fatal("BaseRounds formula violated")
	}
}

func TestRoutePhased(t *testing.T) {
	h := testHierarchy(t)
	reqs := DegreeDemand(h.Base, rngutil.NewRand(16))
	rep, err := RoutePhased(h, reqs, 3, rngutil.NewSource(17))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != len(reqs) {
		t.Fatalf("phased delivered %d of %d", rep.Delivered, len(reqs))
	}
	if _, err := RoutePhased(h, reqs, 0, rngutil.NewSource(18)); err == nil {
		t.Fatal("zero phases accepted")
	}
}

func TestRoutePhasedOneEqualsRoute(t *testing.T) {
	h := testHierarchy(t)
	reqs := RandomPermutation(h.Base, rngutil.NewRand(19))
	a, err := Route(h, reqs, rngutil.NewSource(20))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RoutePhased(h, reqs, 1, rngutil.NewSource(20))
	if err != nil {
		t.Fatal(err)
	}
	if a.BaseRounds != b.BaseRounds || a.Delivered != b.Delivered {
		t.Fatal("RoutePhased(1) differs from Route")
	}
}

func TestRouteDeterministic(t *testing.T) {
	h := testHierarchy(t)
	reqs := RandomPermutation(h.Base, rngutil.NewRand(21))
	a, err := Route(h, reqs, rngutil.NewSource(22))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Route(h, reqs, rngutil.NewSource(22))
	if err != nil {
		t.Fatal(err)
	}
	if a.BaseRounds != b.BaseRounds || a.G0Rounds != b.G0Rounds {
		t.Fatalf("same seed, different costs: %+v vs %+v", a, b)
	}
}

func TestRandomPermutationIsPermutation(t *testing.T) {
	g := graph.Ring(30)
	reqs := RandomPermutation(g, rngutil.NewRand(23))
	seen := make([]bool, g.N())
	for _, r := range reqs {
		if seen[r.DstNode] {
			t.Fatal("destination repeated")
		}
		seen[r.DstNode] = true
		if r.DstIndex != 0 {
			t.Fatal("permutation should target index 0")
		}
	}
}

func TestDegreeDemandIndexesValid(t *testing.T) {
	r := rngutil.NewRand(24)
	g := graph.RandomRegular(20, 4, r)
	reqs := DegreeDemand(g, r)
	for _, req := range reqs {
		if req.DstIndex < 0 || req.DstIndex >= g.Degree(req.DstNode) {
			t.Fatalf("invalid virtual index %d for node %d", req.DstIndex, req.DstNode)
		}
	}
}

func TestRouteOnDeeperHierarchy(t *testing.T) {
	// A larger base graph gives three partition levels; the recursion
	// must still deliver everything.
	if testing.Short() {
		t.Skip("skipping deep hierarchy build in -short mode")
	}
	r := rngutil.NewRand(25)
	g := graph.RandomRegular(96, 8, r)
	p := embed.DefaultParams()
	p.Beta = 3
	p.LeafSize = 12
	h, err := embed.Build(g, p, rngutil.NewSource(26))
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels < 3 {
		t.Fatalf("expected >= 3 levels, got %d", h.Levels)
	}
	reqs := RandomPermutation(g, rngutil.NewRand(27))
	rep, err := Route(h, reqs, rngutil.NewSource(28))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != len(reqs) {
		t.Fatalf("deep hierarchy delivered %d of %d", rep.Delivered, len(reqs))
	}
}

// Property: after routing, every packet's final virtual node has the same
// owner and index the request named — checked through the virtual map,
// independent of the router's own bookkeeping.
func TestPropertyDeliveryMatchesRequests(t *testing.T) {
	h := testHierarchy(t)
	reqs := DegreeDemand(h.Base, rngutil.NewRand(41))
	rep, err := Route(h, reqs, rngutil.NewSource(42))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != len(reqs) {
		t.Fatalf("delivered %d of %d", rep.Delivered, len(reqs))
	}
	// Route re-verifies positions internally; cross-check the encoding
	// path: each request's destination vid must exist and round-trip.
	for _, req := range reqs {
		vid := h.VM.VID(req.DstNode, req.DstIndex)
		if h.VM.Owner(vid) != req.DstNode || h.VM.IndexAtOwner(vid) != req.DstIndex {
			t.Fatalf("vid round trip failed for %+v", req)
		}
	}
}

// The hop decomposition must charge only levels that exist.
func TestHopDecompositionLevels(t *testing.T) {
	h := testHierarchy(t)
	rep, err := Route(h, RandomPermutation(h.Base, rngutil.NewRand(43)), rngutil.NewSource(44))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.HopG0Rounds) != h.Levels {
		t.Fatalf("hop vector length %d, want %d", len(rep.HopG0Rounds), h.Levels)
	}
	for l, c := range rep.HopG0Rounds {
		if c < 0 {
			t.Fatalf("negative hop cost at level %d", l)
		}
	}
}

// Routing on a freshly built Margulis expander exercises non-regular
// virtual degree distributions (degree varies 4..8 after simplification).
func TestRouteOnMargulis(t *testing.T) {
	g := graph.Margulis(6)
	p := embed.DefaultParams()
	h, err := embed.Build(g, p, rngutil.NewSource(45))
	if err != nil {
		t.Fatal(err)
	}
	reqs := RandomPermutation(g, rngutil.NewRand(46))
	rep, err := Route(h, reqs, rngutil.NewSource(47))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != len(reqs) {
		t.Fatalf("delivered %d of %d", rep.Delivered, len(reqs))
	}
}

func TestRouteExactDeliversAndBounds(t *testing.T) {
	h := testHierarchy(t)
	reqs := RandomPermutation(h.Base, rngutil.NewRand(51))
	ex, err := RouteExact(h, reqs, rngutil.NewSource(52))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Paper.Delivered != len(reqs) {
		t.Fatalf("delivered %d of %d", ex.Paper.Delivered, len(reqs))
	}
	if ex.ExactRounds <= 0 || ex.Dilation <= 0 {
		t.Fatalf("degenerate exact schedule: %+v", ex)
	}
	// The exact schedule pipelines everything, so it can never exceed
	// the per-level full-round accounting.
	if ex.ExactRounds > ex.Paper.BaseRounds {
		t.Fatalf("exact %d rounds above paper accounting %d", ex.ExactRounds, ex.Paper.BaseRounds)
	}
	lower := ex.Congestion
	if ex.Dilation > lower {
		lower = ex.Dilation
	}
	if ex.ExactRounds < lower {
		t.Fatalf("makespan %d below congestion/dilation bound %d", ex.ExactRounds, lower)
	}
}

func TestRouteExactMatchesRouteSemantics(t *testing.T) {
	// The exact variant must use the same recursion: same seeds give the
	// same paper-side report.
	h := testHierarchy(t)
	reqs := RandomPermutation(h.Base, rngutil.NewRand(53))
	plain, err := Route(h, reqs, rngutil.NewSource(54))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := RouteExact(h, reqs, rngutil.NewSource(54))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Paper.G0Rounds != plain.G0Rounds || ex.Paper.Delivered != plain.Delivered {
		t.Fatalf("paper-side reports differ: %+v vs %+v", ex.Paper, plain)
	}
}

func TestRouteLedgerDerivesReport(t *testing.T) {
	h := testHierarchy(t)
	reqs := RandomPermutation(h.Base, rngutil.NewRand(14))
	rep, err := Route(h, reqs, rngutil.NewSource(15))
	if err != nil {
		t.Fatal(err)
	}
	led := rep.Costs
	if led == nil {
		t.Fatal("Route left Costs nil")
	}
	if err := led.Err(); err != nil {
		t.Fatal(err)
	}
	prep, rec := led.Root.Child("prep"), led.Root.Child("recursion")
	if prep == nil || rec == nil {
		t.Fatal("ledger lacks prep/recursion spans")
	}
	// Children sum to the parent.
	if led.Root.Total() != prep.Rolled()+rec.Rolled() {
		t.Fatalf("root %d != prep %d + recursion %d", led.Root.Total(), prep.Rolled(), rec.Rolled())
	}
	// Every report figure is the corresponding span's value.
	if rep.PrepRounds != prep.Total() {
		t.Fatalf("PrepRounds %d != prep span %d", rep.PrepRounds, prep.Total())
	}
	if rep.G0Rounds != rec.Total() {
		t.Fatalf("G0Rounds %d != recursion span %d", rep.G0Rounds, rec.Total())
	}
	if rep.BaseRounds != led.Root.Total() {
		t.Fatalf("BaseRounds %d != root total %d", rep.BaseRounds, led.Root.Total())
	}
	leaf := rec.Child("leaf-movement")
	if leaf == nil || leaf.Rolled() != rep.LeafG0Rounds {
		t.Fatalf("leaf-movement span does not carry LeafG0Rounds %d", rep.LeafG0Rounds)
	}
	recSum := leaf.Rolled()
	for l, v := range rep.HopG0Rounds {
		sp := rec.Child(fmt.Sprintf("portal-hops-level-%d", l+1))
		if sp == nil || sp.Rolled() != v {
			t.Fatalf("portal-hops-level-%d span does not carry %d", l+1, v)
		}
		recSum += sp.Rolled()
	}
	if recSum != rec.Total() {
		t.Fatalf("recursion children sum %d != span total %d", recSum, rec.Total())
	}
	// Differential: the seed code's closed-form accounting still holds.
	if rep.BaseRounds != rep.PrepRounds+rep.G0Rounds*h.G0.EmulationRounds {
		t.Fatal("BaseRounds formula violated")
	}
}

func TestRouteExactSharesLedgerAccounting(t *testing.T) {
	h := testHierarchy(t)
	reqs := RandomPermutation(h.Base, rngutil.NewRand(24))
	ex, err := RouteExact(h, reqs, rngutil.NewSource(25))
	if err != nil {
		t.Fatal(err)
	}
	rep := ex.Paper
	if rep.Costs == nil || rep.Costs.Err() != nil {
		t.Fatalf("exact route ledger missing or violated: %v", rep.Costs.Err())
	}
	if rep.BaseRounds != rep.Costs.Root.Total() {
		t.Fatalf("BaseRounds %d != ledger root %d", rep.BaseRounds, rep.Costs.Root.Total())
	}
}

func TestRoutePhasedLedger(t *testing.T) {
	h := testHierarchy(t)
	reqs := DegreeDemand(h.Base, rngutil.NewRand(16))
	rep, err := RoutePhased(h, reqs, 3, rngutil.NewSource(17))
	if err != nil {
		t.Fatal(err)
	}
	led := rep.Costs
	if led == nil {
		t.Fatal("RoutePhased left Costs nil")
	}
	if err := led.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.BaseRounds != led.Root.Total() {
		t.Fatalf("BaseRounds %d != ledger root %d", rep.BaseRounds, led.Root.Total())
	}
	sum := 0
	for _, ph := range led.Root.Children {
		sum += ph.Rolled()
	}
	if sum != led.Root.Total() {
		t.Fatalf("phase spans sum %d != root %d", sum, led.Root.Total())
	}
}
