// Package route implements the paper's permutation-routing algorithm
// (§3.2, Theorem 1.2) on a built hierarchical embedding.
//
// Packets are first redistributed uniformly over the virtual nodes by a
// mixing-time random walk (the preparation step), then recursively routed
// through the partition hierarchy: within each part toward either the
// final destination (if it lives in the same part) or toward the portal
// leading to the destination's sibling part, then hopped across a portal
// edge, then routed recursively inside the destination part. At the leaf
// level packets travel along breadth-first paths of the leaf overlay.
//
// All costs are measured: leaf movement and portal hops are scheduled
// store-and-forward on overlay links, and each overlay round is converted
// to base-graph rounds through the measured emulation factors of the
// hierarchy.
package route

import (
	"fmt"
	"math/rand/v2"

	"almostmix/internal/congest"
	"almostmix/internal/cost"
	"almostmix/internal/embed"
	"almostmix/internal/pathsched"
	"almostmix/internal/randomwalk"
	"almostmix/internal/rngutil"
	"almostmix/internal/spectral"
)

// Request is one packet: deliver from physical node SrcNode to the
// destination's virtual node (DstNode, DstIndex). The source is assumed to
// know the destination's ID pair, from which the partition label follows
// via the shared hash (property P2).
type Request struct {
	SrcNode  int
	DstNode  int
	DstIndex int
}

// Report is the measured outcome of a routing run.
type Report struct {
	// Delivered is the number of packets confirmed at their destination
	// virtual node (always all of them, or Route returns an error).
	Delivered int
	// PrepRounds is the measured base-graph cost of the preparation
	// walks that spread packets uniformly over virtual nodes.
	PrepRounds int
	// G0Rounds is the routing cost in G0 rounds (recursive phases plus
	// portal hops plus leaf movement, converted via measured per-level
	// emulation factors).
	G0Rounds int
	// BaseRounds is the end-to-end cost in base-graph rounds:
	// PrepRounds + G0Rounds · (G0 emulation factor).
	BaseRounds int
	// HopG0Rounds[l] is the G0-round cost of portal hops at level l+1
	// (Lemma 3.4's inter-part term, per level — experiment E8).
	HopG0Rounds []int
	// LeafG0Rounds is the G0-round cost of leaf-level movement.
	LeafG0Rounds int
	// LeafSchedules counts pathsched invocations at the leaf level
	// (2^k in the worst case, the recursion's 2·T(m/β) shape).
	LeafSchedules int
	// MaxPortalLoad is the maximum number of packets hopping over a
	// single portal edge in one phase.
	MaxPortalLoad int
	// Costs is the run's cost ledger. The numeric fields above are all
	// derived from it: PrepRounds and BaseRounds from the prep span and
	// the root, G0Rounds from the recursion span, HopG0Rounds and
	// LeafG0Rounds from its per-level portal-hop and leaf-movement
	// children.
	Costs *cost.Ledger
}

// router carries the mutable state of one routing run.
type router struct {
	h       *embed.Hierarchy
	cur     []int32 // packet -> current virtual node
	dst     []int32 // packet -> destination virtual node
	rng     *rand.Rand
	report  *Report
	leafAdj *partBFS
	// trace, when non-nil, records every overlay-edge traversal per
	// packet for RouteExact's full expansion.
	trace [][]traversal
	// probe, when non-nil, observes the run through the simulator's
	// uniform observability layer: the preparation walks emit per-step
	// congestion records, and the recursion emits phase marks positioned
	// at the cumulative G0-round cost they were incurred at (g0Done).
	probe  congest.Probe
	g0Done int
	// led is the run's cost ledger; recSpan is its open recursion span,
	// hopSpans[l] and leafSpan the children that portal hops at level
	// l+1 and leaf schedules charge into.
	led      *cost.Ledger
	recSpan  *cost.Span
	hopSpans []*cost.Span
	leafSpan *cost.Span
}

// mark emits a phase marker at the current cumulative G0 cost.
func (r *router) mark(name string) {
	if r.probe != nil {
		r.probe.PhaseMark(-1, r.g0Done, name)
	}
}

// Route delivers all requests and returns the measured cost report. Each
// destination virtual index must exist (DstIndex < degree of DstNode).
func Route(h *embed.Hierarchy, reqs []Request, src *rngutil.Source) (*Report, error) {
	return RouteTraced(h, reqs, src, nil)
}

// RouteTraced runs like Route with a probe observing the run: the
// preparation walks report per-step congestion through
// randomwalk.Config.Probe (run name "prep"), and the recursion reports a
// phase timeline (run name "recursion") whose marks sit at the cumulative
// G0-round cost each leaf batch or portal hop was incurred at. A nil
// probe is identical to Route.
func RouteTraced(h *embed.Hierarchy, reqs []Request, src *rngutil.Source, probe congest.Probe) (*Report, error) {
	r, err := newRouter(h, reqs, src)
	if err != nil {
		return nil, err
	}
	r.probe = probe

	r.prepare(reqs, src)
	r.leafAdj = newPartBFS(h.Overlay(h.Levels))

	if r.probe != nil {
		r.probe.RunStart(congest.RunInfo{
			Name:    "recursion",
			Engine:  "route",
			Workers: 1,
			Nodes:   h.Base.N(),
			Edges:   h.Base.M(),
		})
	}
	g0Cost, err := r.runRecursion()
	if err != nil {
		return nil, err
	}
	if r.probe != nil {
		r.probe.RunEnd(g0Cost, nil)
	}
	if err := r.finish(g0Cost, len(reqs)); err != nil {
		return nil, err
	}
	return r.report, nil
}

// newRouter builds the shared run state of Route/RouteExact: packet
// positions, destination lookups, and a fresh cost ledger rooted at a
// base-round "route" span.
func newRouter(h *embed.Hierarchy, reqs []Request, src *rngutil.Source) (*router, error) {
	led := cost.New("route", "base rounds")
	r := &router{
		h:   h,
		cur: make([]int32, len(reqs)),
		dst: make([]int32, len(reqs)),
		rng: src.Stream("route", 0),
		led: led,
		report: &Report{
			HopG0Rounds: make([]int, h.Levels),
			Costs:       led,
		},
	}
	for i, req := range reqs {
		if req.DstIndex < 0 || req.DstIndex >= h.VM.DegreeOf(req.DstNode) {
			return nil, fmt.Errorf("route: request %d: node %d has no virtual index %d",
				i, req.DstNode, req.DstIndex)
		}
		r.dst[i] = h.VM.VID(req.DstNode, req.DstIndex)
	}
	return r, nil
}

// chargePrep records the preparation walks as the ledger's prep span.
func (r *router) chargePrep(rounds int) {
	sp := r.led.Open("prep", "base rounds", 1)
	r.led.Charge(rounds)
	r.led.Close()
	r.report.PrepRounds = sp.Total()
}

// runRecursion opens the recursion span (G0 rounds, multiplied into base
// rounds by the G0 emulation factor) with one portal-hop child per level
// and a leaf-movement child, then routes all packets from level 0. The
// span is closed against the recursion's returned G0 cost, making
// "children sum to the return value" a checked identity.
func (r *router) runRecursion() (int, error) {
	r.recSpan = r.led.Open("recursion", "G0 rounds", r.h.G0.EmulationRounds)
	r.hopSpans = make([]*cost.Span, r.h.Levels)
	for l := 0; l < r.h.Levels; l++ {
		r.hopSpans[l] = r.recSpan.NewChild(
			fmt.Sprintf("portal-hops-level-%d", l+1),
			fmt.Sprintf("G%d rounds", l), r.h.EmulationToG0(l))
	}
	r.leafSpan = r.recSpan.NewChild("leaf-movement",
		fmt.Sprintf("G%d rounds", r.h.Levels), r.h.EmulationToG0(r.h.Levels))

	pkts := make([]int, len(r.cur))
	for i := range pkts {
		pkts[i] = i
	}
	g0Cost, err := r.route(0, pkts, r.dst)
	if err != nil {
		return 0, err
	}
	r.led.CloseExpect(g0Cost)
	return g0Cost, nil
}

// finish verifies delivery and derives every Report figure from the
// ledger: per-level hop and leaf costs from their spans, G0Rounds from the
// recursion span, BaseRounds from the closed root.
func (r *router) finish(g0Cost int, delivered int) error {
	r.report.G0Rounds = g0Cost
	for l, sp := range r.hopSpans {
		r.report.HopG0Rounds[l] = sp.Rolled()
	}
	r.report.LeafG0Rounds = r.leafSpan.Rolled()
	r.report.BaseRounds = r.led.Close()
	if err := r.led.Err(); err != nil {
		return fmt.Errorf("route: cost ledger: %w", err)
	}
	for i := range r.cur {
		if r.cur[i] != r.dst[i] {
			return fmt.Errorf("route: packet %d stranded at vid %d, wanted %d", i, r.cur[i], r.dst[i])
		}
	}
	r.report.Delivered = delivered
	return nil
}

// prepare runs the §3.2 preparation step: one lazy walk of mixing-time
// length per packet from its source, landing each packet on a uniformly
// random virtual node.
func (r *router) prepare(reqs []Request, src *rngutil.Source) {
	sources := make([]int32, len(reqs))
	for i, req := range reqs {
		sources[i] = int32(req.SrcNode)
	}
	res := randomwalk.Run(r.h.Base, sources, randomwalk.Config{
		Kind:      spectral.Lazy,
		Steps:     r.h.TauMix,
		Probe:     r.probe,
		TraceName: "prep",
	}, src.Stream("prep", 0))
	for i := range reqs {
		end := int(res.Ends[i])
		r.cur[i] = r.h.VM.VID(end, r.rng.IntN(r.h.VM.DegreeOf(end)))
	}
	r.chargePrep(res.Stats.Rounds)
}

// route recursively delivers packets pkts to targets, all of which lie in
// the same level-`level` part as the packets' current positions. It
// returns the measured cost in G0 rounds.
func (r *router) route(level int, pkts []int, targets []int32) (int, error) {
	if len(pkts) == 0 {
		return 0, nil
	}
	if level == r.h.Levels {
		return r.routeLeaf(pkts, targets)
	}
	next := level + 1
	o := r.h.Overlay(next)
	portals := r.h.PortalsAt(next)

	// Phase A: local packets head to their final target; crossing
	// packets head to their portal toward the destination's digit.
	phaseATargets := make([]int32, len(pkts))
	crossing := make([]int, 0, len(pkts))
	crossEdges := make([]int32, len(pkts)) // per pkt position in pkts
	for idx, p := range pkts {
		cur, dst := r.cur[p], targets[idx]
		if o.SamePart(cur, dst) {
			phaseATargets[idx] = dst
			crossEdges[idx] = -1
			continue
		}
		ref := portals.Get(cur, int(o.Digit[dst]))
		if ref.Portal < 0 {
			return 0, fmt.Errorf("route: no portal from vid %d toward digit %d at level %d",
				cur, o.Digit[dst], next)
		}
		phaseATargets[idx] = ref.Portal
		crossEdges[idx] = ref.CrossEdge
		crossing = append(crossing, idx)
	}
	cost, err := r.route(next, pkts, phaseATargets)
	if err != nil {
		return 0, err
	}

	if len(crossing) == 0 {
		return cost, nil
	}

	// Hop: crossing packets traverse their portal's overlay-`level`
	// edge. Each directed overlay edge carries one packet per
	// overlay-`level` round, so the hop costs the maximum per-edge load.
	below := r.h.Overlay(level)
	load := make(map[int32]int, len(crossing))
	maxLoad := 0
	for _, idx := range crossing {
		p := pkts[idx]
		e := crossEdges[idx]
		edge := below.Graph.Edge(int(e))
		other := int32(edge.U)
		if other == r.cur[p] {
			other = int32(edge.V)
		}
		if r.trace != nil {
			r.trace[p] = append(r.trace[p], traversal{
				level: level, edge: e, from: r.cur[p], to: other,
			})
		}
		r.cur[p] = other
		load[e]++
		if load[e] > maxLoad {
			maxLoad = load[e]
		}
	}
	if maxLoad > r.report.MaxPortalLoad {
		r.report.MaxPortalLoad = maxLoad
	}
	// The hop happens between level-(level+1) parts over G_level edges:
	// maxLoad G_level rounds, converted by the span's multiplier.
	r.hopSpans[level].Add(maxLoad)
	hopG0 := maxLoad * r.h.EmulationToG0(level)
	cost += hopG0
	r.g0Done += hopG0
	if r.probe != nil {
		r.mark(fmt.Sprintf("portal hop level %d", next))
	}

	// Phase B: crossing packets finish inside the destination part.
	bPkts := make([]int, len(crossing))
	bTargets := make([]int32, len(crossing))
	for i, idx := range crossing {
		bPkts[i] = pkts[idx]
		bTargets[i] = targets[idx]
	}
	bCost, err := r.route(next, bPkts, bTargets)
	if err != nil {
		return 0, err
	}
	return cost + bCost, nil
}

// routeLeaf moves packets along BFS paths of the leaf overlay and returns
// the measured cost in G0 rounds.
func (r *router) routeLeaf(pkts []int, targets []int32) (int, error) {
	paths := make([][]int32, 0, len(pkts))
	for idx, p := range pkts {
		if r.cur[p] == targets[idx] {
			continue
		}
		path, err := r.leafAdj.path(r.cur[p], targets[idx])
		if err != nil {
			return 0, err
		}
		if r.trace != nil {
			for j := 1; j < len(path); j++ {
				r.trace[p] = append(r.trace[p], traversal{
					level: r.h.Levels, edge: -1, from: path[j-1], to: path[j],
				})
			}
		}
		paths = append(paths, path)
		r.cur[p] = targets[idx]
	}
	if len(paths) == 0 {
		return 0, nil
	}
	res := pathsched.ScheduleInto(paths, r.leafSpan)
	r.report.LeafSchedules++
	leafG0 := res.Makespan * r.h.EmulationToG0(r.h.Levels)
	r.g0Done += leafG0
	r.mark("leaf movement")
	return leafG0, nil
}
