package route

import (
	"fmt"
	"math/rand/v2"

	"almostmix/internal/cost"
	"almostmix/internal/embed"
	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

// RandomPermutation generates the canonical permutation-routing workload:
// node i sends one packet to node π(i) for a uniform random permutation π
// (fixed points are allowed and route trivially). Every node is the
// destination of exactly one packet, which lands on its virtual index 0.
func RandomPermutation(g *graph.Graph, rng *rand.Rand) []Request {
	perm := rngutil.Perm(rng, g.N())
	reqs := make([]Request, g.N())
	for i, p := range perm {
		reqs[i] = Request{SrcNode: i, DstNode: p, DstIndex: 0}
	}
	return reqs
}

// DegreeDemand generates the paper's full-rate workload: each node v
// sends d_G(v) packets to destinations drawn with probability proportional
// to degree, so every node is also the destination of ≈ d_G(v) packets in
// expectation (the Theorem 1.2 premise). Destination virtual indices are
// assigned round-robin per destination.
func DegreeDemand(g *graph.Graph, rng *rand.Rand) []Request {
	// Degree-proportional sampling via the edge list: a uniform random
	// edge endpoint is degree-distributed.
	reqs := make([]Request, 0, 2*g.M())
	nextIndex := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		for i := 0; i < g.Degree(v); i++ {
			e := g.Edge(rng.IntN(g.M()))
			dst := e.U
			if rng.Uint64()&1 == 0 {
				dst = e.V
			}
			idx := nextIndex[dst] % g.Degree(dst)
			nextIndex[dst]++
			reqs = append(reqs, Request{SrcNode: v, DstNode: dst, DstIndex: idx})
		}
	}
	return reqs
}

// RoutePhased implements the footnote-3 extension: when nodes are sources
// or destinations of up to K·d_G(v) packets, split the packets into
// `phases` uniformly random phases and route each phase separately; the
// reported costs are the sums over phases.
func RoutePhased(h *embed.Hierarchy, reqs []Request, phases int, src *rngutil.Source) (*Report, error) {
	if phases < 1 {
		return nil, fmt.Errorf("route: phases must be >= 1, got %d", phases)
	}
	if phases == 1 {
		return Route(h, reqs, src)
	}
	rng := src.Stream("phase-split", 0)
	buckets := make([][]Request, phases)
	for _, req := range reqs {
		b := rng.IntN(phases)
		buckets[b] = append(buckets[b], req)
	}
	led := cost.New("route-phased", "base rounds")
	total := &Report{HopG0Rounds: make([]int, h.Levels), Costs: led}
	for b, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		rep, err := Route(h, bucket, src.Child("phase", uint64(b)))
		if err != nil {
			return nil, fmt.Errorf("route: phase %d: %w", b, err)
		}
		// Graft the phase's own ledger under a per-phase span, checked
		// against the phase report's base-round total.
		led.Open(fmt.Sprintf("phase-%d", b), "base rounds", 1)
		led.Attach(rep.Costs.Root)
		led.CloseExpect(rep.BaseRounds)
		total.Delivered += rep.Delivered
		total.PrepRounds += rep.PrepRounds
		total.G0Rounds += rep.G0Rounds
		total.LeafG0Rounds += rep.LeafG0Rounds
		total.LeafSchedules += rep.LeafSchedules
		for l := range rep.HopG0Rounds {
			total.HopG0Rounds[l] += rep.HopG0Rounds[l]
		}
		if rep.MaxPortalLoad > total.MaxPortalLoad {
			total.MaxPortalLoad = rep.MaxPortalLoad
		}
	}
	total.BaseRounds = led.Close()
	if err := led.Err(); err != nil {
		return nil, fmt.Errorf("route: phased cost ledger: %w", err)
	}
	return total, nil
}
