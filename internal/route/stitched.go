package route

// Cross-cluster permutation routing over the cluster-scoped tier: packets
// travel within clusters through the per-cluster hierarchies (the §3.2
// router) and across clusters over the decomposition's boundary edges.
//
// The run proceeds in waves. In each wave every packet is inside some
// cluster: packets already in their destination cluster are routed to
// their destination node, and transiting packets are routed to the inside
// endpoint of a boundary edge leading toward the destination cluster
// (chosen round-robin within the bundle so a wide boundary spreads load),
// then hop across it. Clusters are edge-disjoint, so all per-cluster
// batches of one wave run in parallel and the wave's intra-cluster cost
// is the maximum batch cost; all boundary edges fire in parallel and the
// hop cost is the maximum per-edge directed load. Waves are bounded by
// the quotient graph's diameter: every packet gets one cluster closer
// per wave.

import (
	"fmt"

	"almostmix/internal/cost"
	"almostmix/internal/embed"
	"almostmix/internal/graph"
	"almostmix/internal/pathsched"
	"almostmix/internal/rngutil"
)

// PartitionedReport is the measured outcome of a stitched routing run.
type PartitionedReport struct {
	// Delivered is the number of packets confirmed at their destination
	// node (all of them, or RoutePartitioned returns an error).
	Delivered int
	// Waves is the number of cluster-batch + boundary-hop phases.
	Waves int
	// BaseRounds is the end-to-end cost in base-graph rounds: the sum
	// over waves of (max per-cluster batch cost + max boundary load).
	BaseRounds int
	// ClusterRounds is the intra-cluster share of BaseRounds.
	ClusterRounds int
	// BoundaryRounds is the boundary-hop share of BaseRounds.
	BoundaryRounds int
	// MaxBoundaryLoad is the largest directed per-edge load of any
	// single boundary hop phase.
	MaxBoundaryLoad int
	// ClusterBatches counts per-cluster routing batches across all waves.
	ClusterBatches int
	// Costs is the run's ledger, rooted at "decomp-route" (base rounds):
	// one span per wave with the charged cluster maximum, informational
	// per-cluster batch ledgers, and the boundary-hop charge.
	Costs *cost.Ledger
}

// stitchPacket is one request's mutable routing state.
type stitchPacket struct {
	req  int // index into reqs
	cur  int // current base node
	dst  int // destination cluster
	done bool
}

// RoutePartitioned delivers every request over the cluster-scoped tier
// pe. Requests address base-graph nodes; DstIndex must be a valid port of
// DstNode in the base graph (it is folded onto the destination's
// cluster-local virtual copy for the final intra-cluster leg). The base
// graph must be connected for all destinations to be reachable.
func RoutePartitioned(pe *embed.Partitioned, reqs []Request, src *rngutil.Source) (*PartitionedReport, error) {
	g := pe.Base
	for i, q := range reqs {
		if q.SrcNode < 0 || q.SrcNode >= g.N() || q.DstNode < 0 || q.DstNode >= g.N() {
			return nil, fmt.Errorf("route: request %d endpoints (%d,%d) out of range", i, q.SrcNode, q.DstNode)
		}
		if q.DstIndex < 0 || q.DstIndex >= g.Degree(q.DstNode) {
			return nil, fmt.Errorf("route: request %d virtual index %d out of range for node %d (degree %d)",
				i, q.DstIndex, q.DstNode, g.Degree(q.DstNode))
		}
	}

	hops := newQuotientHops(pe)
	pkts := make([]stitchPacket, len(reqs))
	for i, q := range reqs {
		pkts[i] = stitchPacket{req: i, cur: q.SrcNode, dst: pe.ClusterOf(q.DstNode)}
	}

	led := cost.New("decomp-route", "base rounds")
	rep := &PartitionedReport{}
	for remaining := len(pkts); remaining > 0; {
		if rep.Waves > pe.Quotient.N()+1 {
			return nil, fmt.Errorf("route: stitched routing did not converge after %d waves", rep.Waves)
		}
		led.Open(fmt.Sprintf("wave-%02d", rep.Waves), "base rounds", 1)
		delivered, err := runWave(pe, reqs, pkts, hops, led, rep, src.Child("wave", uint64(rep.Waves)))
		if err != nil {
			return nil, err
		}
		remaining -= delivered
		rep.Waves++
	}
	total := rep.ClusterRounds + rep.BoundaryRounds
	led.CloseExpect(total)
	if err := led.Err(); err != nil {
		return nil, fmt.Errorf("route: decomp-route ledger: %w", err)
	}
	rep.BaseRounds = total
	rep.Delivered = len(reqs)
	rep.Costs = led
	return rep, nil
}

// runWave routes one wave: per-cluster batches, then boundary hops.
// It returns the number of packets delivered this wave.
func runWave(pe *embed.Partitioned, reqs []Request, pkts []stitchPacket, hops *quotientHops,
	led *cost.Ledger, rep *PartitionedReport, src *rngutil.Source) (int, error) {
	// Assign each live packet its local target within its current
	// cluster: the destination node, or the inside endpoint of the
	// boundary edge toward the next cluster. crossOn[i] is the base
	// cross-edge packet i hops after the batch (-1 for none).
	nc := len(pe.Clusters)
	batches := make([][]Request, nc)  // cluster-local requests
	crossOn := make([]int, len(pkts)) // assigned cross edge, -1 = terminal
	bundleRR := make(map[[2]int]int)  // (quotient edge, from-cluster) round-robin
	for i := range pkts {
		p := &pkts[i]
		if p.done {
			continue
		}
		crossOn[i] = -1
		ci := pe.ClusterOf(p.cur)
		sub := pe.Clusters[ci].Cluster.Sub
		var target int // base node
		var dstIndex int
		if ci == p.dst {
			target = reqs[p.req].DstNode
			if deg := sub.G.Degree(sub.Local(target)); deg > 0 {
				dstIndex = reqs[p.req].DstIndex % deg
			}
		} else {
			qe := hops.edgeToward(ci, p.dst)
			bundle := pe.Bundles[qe]
			rr := [2]int{qe, ci}
			eid := bundle[bundleRR[rr]%len(bundle)]
			bundleRR[rr]++
			crossOn[i] = eid
			e := pe.Base.Edge(eid)
			target = int(e.U)
			if pe.ClusterOf(target) != ci {
				target = int(e.V)
			}
		}
		batches[ci] = append(batches[ci], Request{
			SrcNode: sub.Local(p.cur), DstNode: sub.Local(target), DstIndex: dstIndex,
		})
		p.cur = target
	}

	// Run the batches (conceptually in parallel: clusters are
	// edge-disjoint, so the wave's cost is the maximum batch cost).
	maxCluster := 0
	perCluster := led.Open("clusters", "base rounds", 1)
	detail := perCluster.NewChild("per-cluster", "base rounds", 0)
	for ci, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		rounds, ledRoot, err := runClusterBatch(pe.Clusters[ci], batch, src.Child("cluster", uint64(ci)))
		if err != nil {
			return 0, fmt.Errorf("route: cluster %d batch: %w", ci, err)
		}
		rep.ClusterBatches++
		sp := detail.NewChild(fmt.Sprintf("cluster-%02d", ci), "base rounds", 1)
		if ledRoot != nil {
			sp.Children = append(sp.Children, ledRoot)
		} else {
			sp.Add(rounds)
		}
		if rounds > maxCluster {
			maxCluster = rounds
		}
	}
	led.Charge(maxCluster)
	led.CloseExpect(maxCluster)

	// Boundary hops: all cross edges fire in parallel; packets sharing a
	// directed edge queue, so the phase costs the maximum directed load.
	load := make(map[int]int)
	maxLoad := 0
	delivered := 0
	for i := range pkts {
		p := &pkts[i]
		if p.done {
			continue
		}
		if crossOn[i] < 0 {
			p.done = true
			delivered++
			continue
		}
		e := pe.Base.Edge(crossOn[i])
		other := int(e.U)
		if other == p.cur {
			other = int(e.V)
		}
		// Direction-sensitive key: opposite directions of one edge
		// carry messages simultaneously in CONGEST.
		key := crossOn[i] << 1
		if p.cur > other {
			key |= 1
		}
		load[key]++
		if load[key] > maxLoad {
			maxLoad = load[key]
		}
		p.cur = other
	}
	led.Open("boundary-hop", "base rounds", 1)
	led.Charge(maxLoad)
	led.CloseExpect(maxLoad)
	led.CloseExpect(maxCluster + maxLoad)

	rep.ClusterRounds += maxCluster
	rep.BoundaryRounds += maxLoad
	if maxLoad > rep.MaxBoundaryLoad {
		rep.MaxBoundaryLoad = maxLoad
	}
	return delivered, nil
}

// runClusterBatch routes one cluster's batch and returns its measured
// cost in base rounds, plus the batch's ledger root for hierarchy
// clusters (nil for direct tiers, whose cost is a bare schedule).
func runClusterBatch(ce *embed.ClusterEmbedding, batch []Request, src *rngutil.Source) (int, *cost.Span, error) {
	if ce.Direct {
		sub := ce.Cluster.Sub
		paths := make([][]int32, 0, len(batch))
		for _, q := range batch {
			if q.SrcNode == q.DstNode {
				continue
			}
			path, err := bfsPath(sub.G, q.SrcNode, q.DstNode)
			if err != nil {
				return 0, nil, err
			}
			paths = append(paths, path)
		}
		if len(paths) == 0 {
			return 0, nil, nil
		}
		res := pathsched.Schedule(paths)
		return res.Makespan, nil, nil
	}
	rep, err := Route(ce.H, batch, src)
	if err != nil {
		return 0, nil, err
	}
	return rep.BaseRounds, rep.Costs.Root, nil
}

// bfsPath returns a shortest path between two nodes of a (small, direct-
// tier) cluster graph as a node sequence starting at src.
func bfsPath(g *graph.Graph, src, dst int) ([]int32, error) {
	parent := make([]int32, g.N())
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = int32(src)
	queue := []int{src}
	for len(queue) > 0 && parent[dst] < 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range g.Neighbors(v) {
			if parent[h.To] < 0 {
				parent[h.To] = int32(v)
				queue = append(queue, int(h.To))
			}
		}
	}
	if parent[dst] < 0 {
		return nil, fmt.Errorf("route: node %d unreachable from %d in direct cluster", dst, src)
	}
	rev := []int32{int32(dst)}
	for v := int32(dst); int(v) != src; {
		v = parent[v]
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// quotientHops precomputes, for every destination cluster, the BFS
// next-hop quotient edge from every other cluster (shortest cluster path;
// deterministic because the quotient's adjacency order is).
type quotientHops struct {
	q *graph.Graph
	// via[d][c] is the quotient edge c uses toward destination d, -1 at d.
	via [][]int32
}

func newQuotientHops(pe *embed.Partitioned) *quotientHops {
	q := pe.Quotient
	h := &quotientHops{q: q, via: make([][]int32, q.N())}
	for d := 0; d < q.N(); d++ {
		via := make([]int32, q.N())
		for i := range via {
			via[i] = -1
		}
		queue := []int{d}
		seen := make([]bool, q.N())
		seen[d] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, he := range q.Neighbors(v) {
				if !seen[he.To] {
					seen[he.To] = true
					via[he.To] = int32(he.EdgeID)
					queue = append(queue, int(he.To))
				}
			}
		}
		h.via[d] = via
	}
	return h
}

// edgeToward returns the quotient edge cluster c crosses next toward
// destination cluster d.
func (h *quotientHops) edgeToward(c, d int) int { return int(h.via[d][c]) }
