package route

import (
	"fmt"

	"almostmix/internal/embed"
)

// partBFS computes shortest paths within the leaf overlay's parts. Leaf
// parts are small (O(log n) nodes), so a fresh BFS per distinct source is
// cheap; results for the most recent source are reused across packets.
type partBFS struct {
	o *embed.Overlay
	// parent[v] for the last BFS; version-stamped to avoid clearing.
	parent  []int32
	stamp   []int32
	version int32
	lastSrc int32
	queue   []int32
}

func newPartBFS(o *embed.Overlay) *partBFS {
	n := o.Graph.N()
	return &partBFS{
		o:       o,
		parent:  make([]int32, n),
		stamp:   make([]int32, n),
		lastSrc: -1,
	}
}

// path returns a shortest path from src to dst within their (shared) leaf
// part, as a node sequence starting at src.
func (b *partBFS) path(src, dst int32) ([]int32, error) {
	if b.o.PartOf[src] != b.o.PartOf[dst] {
		return nil, fmt.Errorf("route: leaf path request across parts (%d vs %d)",
			b.o.PartOf[src], b.o.PartOf[dst])
	}
	if src == dst {
		return []int32{src}, nil
	}
	if b.lastSrc != src {
		b.bfsFrom(src)
	}
	if b.stamp[dst] != b.version {
		return nil, fmt.Errorf("route: vid %d unreachable from %d in leaf part %d",
			dst, src, b.o.PartOf[src])
	}
	// Reconstruct backwards, then reverse.
	rev := []int32{dst}
	for v := dst; v != src; {
		v = b.parent[v]
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

func (b *partBFS) bfsFrom(src int32) {
	b.version++
	b.lastSrc = src
	part := b.o.PartOf[src]
	b.stamp[src] = b.version
	b.parent[src] = src
	b.queue = b.queue[:0]
	b.queue = append(b.queue, src)
	for len(b.queue) > 0 {
		v := b.queue[0]
		b.queue = b.queue[1:]
		for _, h := range b.o.Graph.Neighbors(int(v)) {
			u := int32(h.To)
			if b.stamp[u] == b.version || b.o.PartOf[u] != part {
				continue
			}
			b.stamp[u] = b.version
			b.parent[u] = v
			b.queue = append(b.queue, u)
		}
	}
}
