package route

import (
	"fmt"
	"strings"
	"testing"

	"almostmix/internal/decomp"
	"almostmix/internal/embed"
	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

func buildTier(t *testing.T, g *graph.Graph, dp decomp.Params) *embed.Partitioned {
	t.Helper()
	dec, err := decomp.Decompose(g, dp)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := embed.BuildPartitioned(dec, embed.DefaultParams(), rngutil.NewSource(11))
	if err != nil {
		t.Fatal(err)
	}
	return pe
}

func checkStitchedReport(t *testing.T, rep *PartitionedReport, want int) {
	t.Helper()
	if rep.Delivered != want {
		t.Fatalf("delivered %d of %d", rep.Delivered, want)
	}
	if rep.BaseRounds != rep.ClusterRounds+rep.BoundaryRounds {
		t.Fatalf("BaseRounds %d != ClusterRounds %d + BoundaryRounds %d",
			rep.BaseRounds, rep.ClusterRounds, rep.BoundaryRounds)
	}
	if got := rep.Costs.Root.Total(); got != rep.BaseRounds {
		t.Fatalf("ledger root totals %d, report says %d", got, rep.BaseRounds)
	}
	if err := rep.Costs.Err(); err != nil {
		t.Fatalf("ledger violations: %v", err)
	}
}

func TestRoutePartitionedLollipop(t *testing.T) {
	g := graph.Lollipop(32, 16)
	pe := buildTier(t, g, decomp.Params{})
	reqs := RandomPermutation(g, rngutil.NewRand(2))
	rep, err := RoutePartitioned(pe, reqs, rngutil.NewSource(3))
	if err != nil {
		t.Fatal(err)
	}
	checkStitchedReport(t, rep, len(reqs))
	if rep.Waves < 2 {
		t.Fatalf("cross-cluster permutation finished in %d waves", rep.Waves)
	}
	if rep.BoundaryRounds == 0 {
		t.Fatal("cross-cluster traffic charged no boundary rounds")
	}
}

func TestRoutePartitionedSingleClusterMatchesDirect(t *testing.T) {
	g := graph.RandomRegular(64, 8, rngutil.NewRand(5))
	pe := buildTier(t, g, decomp.Params{})
	if len(pe.Clusters) != 1 {
		t.Fatalf("expander split into %d clusters", len(pe.Clusters))
	}
	reqs := RandomPermutation(g, rngutil.NewRand(6))
	rep, err := RoutePartitioned(pe, reqs, rngutil.NewSource(7))
	if err != nil {
		t.Fatal(err)
	}
	checkStitchedReport(t, rep, len(reqs))
	if rep.Waves != 1 || rep.BoundaryRounds != 0 {
		t.Fatalf("single cluster run used %d waves, %d boundary rounds", rep.Waves, rep.BoundaryRounds)
	}
	// The single batch is a plain §3.2 route of the same requests on the
	// cluster hierarchy (the cluster view of the whole graph is the
	// identity, so the request set maps onto itself).
	direct, err := Route(pe.Clusters[0].H, reqs, rngutil.NewSource(7).Child("wave", 0).Child("cluster", 0))
	if err != nil {
		t.Fatal(err)
	}
	if direct.Delivered != len(reqs) {
		t.Fatalf("direct baseline delivered %d of %d", direct.Delivered, len(reqs))
	}
	if rep.ClusterRounds != direct.BaseRounds {
		t.Fatalf("stitched cluster rounds %d != direct route %d", rep.ClusterRounds, direct.BaseRounds)
	}
}

func TestRoutePartitionedDirectTiers(t *testing.T) {
	// A 4-path under Phi=0.5 splits into two 2-node clusters, both below
	// the hierarchy's minimum, so both tiers are direct BFS tiers.
	g := graph.Path(4)
	pe := buildTier(t, g, decomp.Params{Phi: 0.5, Eps: 0.9, MinSize: 2})
	for i, ce := range pe.Clusters {
		if !ce.Direct {
			t.Fatalf("cluster %d unexpectedly got a hierarchy", i)
		}
	}
	reqs := []Request{
		{SrcNode: 0, DstNode: 3, DstIndex: 0},
		{SrcNode: 3, DstNode: 1, DstIndex: 1},
		{SrcNode: 1, DstNode: 1, DstIndex: 0},
	}
	rep, err := RoutePartitioned(pe, reqs, rngutil.NewSource(1))
	if err != nil {
		t.Fatal(err)
	}
	checkStitchedReport(t, rep, len(reqs))
}

func TestRoutePartitionedBarbellDeterminism(t *testing.T) {
	g := graph.Barbell(16, 8)
	pe := buildTier(t, g, decomp.Params{})
	reqs := RandomPermutation(g, rngutil.NewRand(4))
	fingerprint := func() string {
		rep, err := RoutePartitioned(pe, reqs, rngutil.NewSource(9))
		if err != nil {
			t.Fatal(err)
		}
		checkStitchedReport(t, rep, len(reqs))
		var b strings.Builder
		fmt.Fprintf(&b, "waves=%d base=%d cluster=%d boundary=%d batches=%d maxload=%d\n",
			rep.Waves, rep.BaseRounds, rep.ClusterRounds, rep.BoundaryRounds,
			rep.ClusterBatches, rep.MaxBoundaryLoad)
		for _, row := range rep.Costs.Rows() {
			fmt.Fprintf(&b, "%+v\n", row)
		}
		return b.String()
	}
	a, b := fingerprint(), fingerprint()
	if a != b {
		t.Fatal("identical stitched runs produced different reports")
	}
}

func TestRoutePartitionedRejectsBadRequests(t *testing.T) {
	g := graph.Lollipop(16, 8)
	pe := buildTier(t, g, decomp.Params{})
	for _, bad := range []Request{
		{SrcNode: -1, DstNode: 0, DstIndex: 0},
		{SrcNode: 0, DstNode: g.N(), DstIndex: 0},
		{SrcNode: 0, DstNode: 1, DstIndex: g.Degree(1)},
	} {
		if _, err := RoutePartitioned(pe, []Request{bad}, rngutil.NewSource(1)); err == nil {
			t.Errorf("RoutePartitioned accepted bad request %+v", bad)
		}
	}
}
