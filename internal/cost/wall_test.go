package cost

import (
	"testing"
	"time"
)

// fakeClock pins the package clock to a controllable instant and returns
// an advance function plus the restore hook.
func fakeClock(t *testing.T) func(d time.Duration) {
	t.Helper()
	cur := time.Unix(1_000_000, 0)
	old := now
	now = func() time.Time { return cur }
	t.Cleanup(func() { now = old })
	return func(d time.Duration) { cur = cur.Add(d) }
}

// TestSpanWallClock: Open..Close brackets accumulate host time on the
// span, inclusive of time spent in children, without ever entering the
// round totals.
func TestSpanWallClock(t *testing.T) {
	advance := fakeClock(t)
	l := New("run", "base rounds")
	outer := l.Open("outer", "base rounds", 1)
	advance(5 * time.Millisecond)
	inner := l.Open("inner", "base rounds", 1)
	l.Charge(7)
	advance(3 * time.Millisecond)
	l.CloseExpect(7) // inner: 3ms
	advance(2 * time.Millisecond)
	l.Close() // outer: 5+3+2 = 10ms
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	if got := inner.Wall(); got != 3*time.Millisecond {
		t.Fatalf("inner wall %v, want 3ms", got)
	}
	if got := outer.Wall(); got != 10*time.Millisecond {
		t.Fatalf("outer wall %v, want 10ms", got)
	}
	// Wall time never leaks into the simulated-round accounting.
	if outer.Total() != 7 {
		t.Fatalf("outer total %d, want 7", outer.Total())
	}
}

// TestSpanWallReopen: a span opened again via the same path accumulates —
// but since Open always creates a new child, verify instead that an
// explicitly still-open span reads zero until closed.
func TestSpanWallOpenReadsZero(t *testing.T) {
	advance := fakeClock(t)
	l := New("run", "r")
	s := l.Open("busy", "r", 1)
	advance(time.Second)
	if got := s.Wall(); got != 0 {
		t.Fatalf("open span wall %v, want 0 until closed", got)
	}
	l.Close()
	if got := s.Wall(); got != time.Second {
		t.Fatalf("closed span wall %v, want 1s", got)
	}
}

// TestNewChildNeverOpenedStaysZero: spans built directly with NewChild
// (analytic accounting, no ledger bracket) never accrue wall time.
func TestNewChildNeverOpenedStaysZero(t *testing.T) {
	advance := fakeClock(t)
	l := New("run", "r")
	child := l.Current().NewChild("analytic", "r", 2)
	child.Add(5)
	advance(time.Hour)
	l.Close()
	if got := child.Wall(); got != 0 {
		t.Fatalf("NewChild span wall %v, want 0", got)
	}
}

// TestFlattenWallPathsMatchFlatten: the wall export walks the same
// pre-order with the same slash paths as the round export, so a trace row
// and its metrics wall counter pair by path string equality.
func TestFlattenWallPathsMatchFlatten(t *testing.T) {
	advance := fakeClock(t)
	l := New("run", "r")
	l.Open("a", "r", 1)
	l.Open("a1", "r", 1)
	advance(time.Millisecond)
	l.Close()
	l.Close()
	l.Open("b", "r", 3)
	l.Current().NewChild("b-analytic", "r", 1).Add(2)
	advance(2 * time.Millisecond)
	l.Close()

	rows := l.Rows()
	walls := l.WallRows()
	if len(rows) != len(walls) {
		t.Fatalf("%d rows vs %d wall rows", len(rows), len(walls))
	}
	for i := range rows {
		if rows[i].Path != walls[i].Path {
			t.Fatalf("row %d path %q != wall path %q", i, rows[i].Path, walls[i].Path)
		}
	}
	// Spot checks: the bracketed spans carry their durations, the
	// analytic child stays zero.
	byPath := map[string]int64{}
	for _, w := range walls {
		byPath[w.Path] = w.WallNS
	}
	if byPath["run/a/a1"] != int64(time.Millisecond) {
		t.Fatalf("a1 wall %d", byPath["run/a/a1"])
	}
	if byPath["run/b"] != int64(2*time.Millisecond) {
		t.Fatalf("b wall %d", byPath["run/b"])
	}
	if byPath["run/b/b-analytic"] != 0 {
		t.Fatalf("analytic wall %d, want 0", byPath["run/b/b-analytic"])
	}
}

// TestRowHasNoWallField guards the determinism contract at the type
// level's behavioral edge: two ledgers doing identical simulated work at
// different host speeds flatten to identical Rows.
func TestRowHasNoWallField(t *testing.T) {
	build := func(advanceBy time.Duration) []Row {
		advance := fakeClock(t)
		l := New("run", "r")
		l.Open("work", "r", 1)
		l.Charge(4)
		advance(advanceBy)
		l.Close()
		l.Close()
		return l.Rows()
	}
	fast := build(time.Nanosecond)
	slow := build(time.Hour)
	if len(fast) != len(slow) {
		t.Fatal("row counts differ")
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("row %d differs under host-speed change: %+v vs %+v", i, fast[i], slow[i])
		}
	}
}
