// Package cost is the embedded tier's round ledger: a hierarchical tree
// of spans that is the single source of truth for every base-graph round
// the embedded-tier algorithms charge (DESIGN.md §3, system S21).
//
// Each Span accumulates integer round amounts in its own unit (base
// rounds, G0 rounds, routing steps, …) and carries a multiplier Mul that
// converts one round of its unit into the parent span's unit. A span's
// Total is its directly charged amount plus its children rolled up
// through their multipliers, so the emulation-factor multiplication
// chains of Lemmas 3.1/3.2/3.4 (one Gℓ round = EmulationRounds rounds of
// G_{ℓ−1}, one MST tree step = one measured routing instance, …) become
// tree structure instead of arithmetic repeated at call sites.
//
// Layers open and close spans in a stack discipline through a Ledger.
// CloseExpect turns the call site's legacy formula into a checked
// identity: the ledger records a violation whenever the rolled-up span
// total disagrees with the expected value, so scattered accounting can
// never silently drift from the exported breakdown. Finished spans from
// one ledger may be grafted into another with Attach (a routing run's
// ledger becomes the per-step breakdown of an MST iteration; an MST's
// algorithm span becomes the per-tree cost of a min-cut packing).
//
// A span with Mul == 0 is informational: it is exported with the
// breakdown but contributes nothing to its parent (used for the measured
// per-level emulation factors, which are conversion rates, not charges).
package cost

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// now is the ledger's clock, swappable by tests for deterministic
// wall-time assertions. time.Time carries a monotonic reading, so span
// wall times are immune to wall-clock steps.
var now = time.Now

// Span is one node of the cost tree. Amounts are integers in the span's
// own unit; Mul converts one unit of this span into the parent's unit.
type Span struct {
	// Name identifies the span within its parent.
	Name string
	// Unit documents what one round of this span means (e.g. "base
	// rounds", "G0 rounds", "routing steps").
	Unit string
	// Self is the amount charged directly to this span, excluding
	// children.
	Self int
	// Mul is the cost of one unit of this span in the parent's unit.
	// Zero marks an informational span that rolls nothing into the
	// parent.
	Mul int
	// Children are the sub-spans, in creation order. They roll into
	// this span's Total through their own Mul factors.
	Children []*Span

	// wallNS is the measured host time the span was open under a Ledger
	// (Open → Close, inclusive of children), in nanoseconds. It pairs
	// every simulated-round figure with its wall-clock analogue. Spans
	// created by NewChild and never ledger-opened stay at 0. Deliberately
	// excluded from Row: -trace exports must stay byte-deterministic, so
	// wall times travel through FlattenWall into -metrics snapshots
	// instead.
	wallNS int64
	// opened is the Ledger.Open timestamp, zero once closed.
	opened time.Time
}

// NewChild appends and returns a child span. Unlike Ledger.Open it does
// not touch any stack, so callers may hold the pointer and Add to it out
// of order (aggregation spans charged from within a recursion).
func (s *Span) NewChild(name, unit string, mul int) *Span {
	c := &Span{Name: name, Unit: unit, Mul: mul}
	s.Children = append(s.Children, c)
	return c
}

// Add charges n rounds (in this span's unit) directly to the span. A nil
// span ignores the charge, so optional accounting costs one nil check.
func (s *Span) Add(n int) {
	if s == nil {
		return
	}
	s.Self += n
}

// Total is the span's cost in its own unit: Self plus every child rolled
// up through the child's multiplier. A nil span totals zero.
func (s *Span) Total() int {
	if s == nil {
		return 0
	}
	t := s.Self
	for _, c := range s.Children {
		t += c.Rolled()
	}
	return t
}

// Rolled is the span's contribution to its parent: Mul · Total.
func (s *Span) Rolled() int {
	if s == nil {
		return 0
	}
	return s.Mul * s.Total()
}

// Wall returns the measured host time the span was open under a Ledger
// (inclusive of children). Zero for spans never ledger-opened, still
// open, or nil.
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.wallNS)
}

// Child returns the first child with the given name, or nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	for _, c := range s.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Row is one flattened span for export: the slash-joined path from the
// root, the span's own-unit amounts, and its rolled-up contribution.
type Row struct {
	Path   string `json:"path"`
	Unit   string `json:"unit,omitempty"`
	Depth  int    `json:"depth"`
	Self   int    `json:"self"`
	Mul    int    `json:"mul"`
	Total  int    `json:"total"`
	Rolled int    `json:"rolled"`
}

// Flatten renders the span tree as rows in depth-first pre-order.
func Flatten(s *Span) []Row {
	var rows []Row
	var walk func(sp *Span, prefix string, depth int)
	walk = func(sp *Span, prefix string, depth int) {
		path := sp.Name
		if prefix != "" {
			path = prefix + "/" + sp.Name
		}
		rows = append(rows, Row{
			Path:   path,
			Unit:   sp.Unit,
			Depth:  depth,
			Self:   sp.Self,
			Mul:    sp.Mul,
			Total:  sp.Total(),
			Rolled: sp.Rolled(),
		})
		for _, c := range sp.Children {
			walk(c, path, depth+1)
		}
	}
	if s != nil {
		walk(s, "", 0)
	}
	return rows
}

// Ledger builds a span tree with open/close stack discipline and records
// invariant violations instead of panicking, so algorithm code can
// surface them as ordinary errors after the run.
type Ledger struct {
	// Root is the tree's root span, created by New.
	Root *Span
	// stack holds the open spans, Root first. Empty once Root closes.
	stack []*Span
	// violations collects CloseExpect mismatches and stack misuse.
	violations []string
}

// New returns a ledger whose root span is open and current.
func New(name, unit string) *Ledger {
	root := &Span{Name: name, Unit: unit, Mul: 1, opened: now()}
	return &Ledger{Root: root, stack: []*Span{root}}
}

// Current returns the innermost open span, or nil when all spans are
// closed (or the ledger is nil).
func (l *Ledger) Current() *Span {
	if l == nil || len(l.stack) == 0 {
		return nil
	}
	return l.stack[len(l.stack)-1]
}

// path renders the open stack as a slash-joined span path.
func (l *Ledger) path() string {
	names := make([]string, len(l.stack))
	for i, s := range l.stack {
		names[i] = s.Name
	}
	return strings.Join(names, "/")
}

// violate records an invariant violation.
func (l *Ledger) violate(format string, args ...any) {
	l.violations = append(l.violations, fmt.Sprintf(format, args...))
}

// Open creates a child of the current span and makes it current. Opening
// on a fully closed ledger records a violation and returns a detached
// span so callers stay panic-free.
func (l *Ledger) Open(name, unit string, mul int) *Span {
	if l == nil {
		return nil
	}
	cur := l.Current()
	if cur == nil {
		l.violate("cost: Open(%q) after the root span closed", name)
		return &Span{Name: name, Unit: unit, Mul: mul}
	}
	c := cur.NewChild(name, unit, mul)
	c.opened = now()
	l.stack = append(l.stack, c)
	return c
}

// Charge adds n rounds to the current span.
func (l *Ledger) Charge(n int) {
	if l == nil {
		return
	}
	cur := l.Current()
	if cur == nil {
		l.violate("cost: Charge(%d) with no open span", n)
		return
	}
	cur.Self += n
}

// Attach grafts a finished span (typically another ledger's root) as a
// child of the current span. The attached span's Mul applies as usual.
func (l *Ledger) Attach(s *Span) {
	if l == nil || s == nil {
		return
	}
	cur := l.Current()
	if cur == nil {
		l.violate("cost: Attach(%q) with no open span", s.Name)
		return
	}
	cur.Children = append(cur.Children, s)
}

// Close closes the current span and returns its Total (own units).
func (l *Ledger) Close() int {
	if l == nil {
		return 0
	}
	cur := l.Current()
	if cur == nil {
		l.violate("cost: Close with no open span")
		return 0
	}
	if !cur.opened.IsZero() {
		cur.wallNS += now().Sub(cur.opened).Nanoseconds()
		cur.opened = time.Time{}
	}
	l.stack = l.stack[:len(l.stack)-1]
	return cur.Total()
}

// CloseExpect closes the current span, checking the close-time identity:
// the span's rolled-up Total must equal want (in the span's own unit).
// A mismatch is recorded as a violation; the actual total is returned
// either way.
func (l *Ledger) CloseExpect(want int) int {
	if l == nil {
		return 0
	}
	path := l.path()
	got := l.Close()
	if got != want {
		l.violate("cost: span %s totals %d rounds, call site expected %d", path, got, want)
	}
	return got
}

// Err reports every recorded invariant violation, or nil.
func (l *Ledger) Err() error {
	if l == nil || len(l.violations) == 0 {
		return nil
	}
	return errors.New(strings.Join(l.violations, "; "))
}

// Rows flattens the whole ledger for export (depth-first pre-order).
func (l *Ledger) Rows() []Row {
	if l == nil {
		return nil
	}
	return Flatten(l.Root)
}

// WallRow pairs a flattened span path with its measured host time. The
// Path values coincide index for index with Flatten's, so every
// simulated-round row a trace exports has a same-path wall entry for the
// metrics snapshot.
type WallRow struct {
	Path   string
	WallNS int64
}

// FlattenWall renders the span tree's host times in the same depth-first
// pre-order (and with the same paths) as Flatten.
func FlattenWall(s *Span) []WallRow {
	var rows []WallRow
	var walk func(sp *Span, prefix string)
	walk = func(sp *Span, prefix string) {
		path := sp.Name
		if prefix != "" {
			path = prefix + "/" + sp.Name
		}
		rows = append(rows, WallRow{Path: path, WallNS: sp.wallNS})
		for _, c := range sp.Children {
			walk(c, path)
		}
	}
	if s != nil {
		walk(s, "")
	}
	return rows
}

// WallRows flattens the whole ledger's host times (depth-first
// pre-order, paths matching Rows).
func (l *Ledger) WallRows() []WallRow {
	if l == nil {
		return nil
	}
	return FlattenWall(l.Root)
}
