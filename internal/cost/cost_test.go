package cost

import (
	"strings"
	"testing"
)

func TestLedgerNestedTotals(t *testing.T) {
	l := New("run", "base rounds")
	l.Open("prep", "base rounds", 1)
	l.Charge(10)
	if got := l.CloseExpect(10); got != 10 {
		t.Fatalf("prep total %d, want 10", got)
	}
	rec := l.Open("recursion", "G0 rounds", 3)
	l.Charge(2)
	hop := rec.NewChild("hops", "G1 rounds", 4)
	hop.Add(5)
	if got := l.CloseExpect(2 + 5*4); got != 22 {
		t.Fatalf("recursion total %d, want 22", got)
	}
	total := l.Close()
	if want := 10 + 22*3; total != want {
		t.Fatalf("root total %d, want %d", total, want)
	}
	if err := l.Err(); err != nil {
		t.Fatalf("clean ledger reports error: %v", err)
	}
	if l.Root.Total() != total {
		t.Fatal("Root.Total disagrees with Close")
	}
}

func TestChildrenSumToParent(t *testing.T) {
	l := New("root", "base")
	a := l.Open("a", "base", 1)
	l.Charge(3)
	l.Close()
	b := l.Open("b", "sub", 5)
	l.Charge(2)
	l.Close()
	l.Root.Add(1)
	if got, want := l.Root.Total(), 1+a.Rolled()+b.Rolled(); got != want {
		t.Fatalf("parent total %d != self + children %d", got, want)
	}
}

func TestCloseExpectViolation(t *testing.T) {
	l := New("root", "base")
	l.Open("x", "base", 1)
	l.Charge(7)
	if got := l.CloseExpect(8); got != 7 {
		t.Fatalf("CloseExpect returned %d, want the actual total 7", got)
	}
	err := l.Err()
	if err == nil {
		t.Fatal("mismatched CloseExpect reported no violation")
	}
	if !strings.Contains(err.Error(), "root/x") {
		t.Fatalf("violation does not name the span path: %v", err)
	}
}

func TestInformationalSpanRollsZero(t *testing.T) {
	l := New("root", "base")
	info := l.Open("factors", "", 0)
	l.Charge(99)
	l.Close()
	if info.Total() != 99 || info.Rolled() != 0 {
		t.Fatalf("informational span total %d rolled %d", info.Total(), info.Rolled())
	}
	if l.Close() != 0 {
		t.Fatal("informational child leaked into the root total")
	}
}

func TestAttachGraftsFinishedLedger(t *testing.T) {
	inner := New("step", "base")
	inner.Charge(4)
	inner.Close()

	outer := New("iteration", "base")
	st := outer.Open("tree-steps", "steps", 6)
	outer.Attach(inner.Root)
	outer.CloseExpect(4)
	if got := outer.Close(); got != 24 {
		t.Fatalf("grafted total %d, want 24", got)
	}
	if st.Child("step") == nil {
		t.Fatal("attached span not reachable via Child")
	}
	if err := outer.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestStackMisuseIsRecordedNotPanicking(t *testing.T) {
	l := New("root", "base")
	l.Close()
	l.Charge(1)
	l.Close()
	sp := l.Open("late", "base", 1)
	sp.Add(2)
	l.Attach(&Span{Name: "x"})
	if err := l.Err(); err == nil {
		t.Fatal("stack misuse went unrecorded")
	}
	if l.Root.Total() != 0 {
		t.Fatal("misuse mutated the closed tree")
	}
}

func TestNilSafety(t *testing.T) {
	var l *Ledger
	var s *Span
	l.Charge(1)
	l.Attach(nil)
	if l.Open("x", "", 1) != nil || l.Close() != 0 || l.CloseExpect(0) != 0 {
		t.Fatal("nil ledger produced spans or totals")
	}
	if l.Err() != nil || l.Rows() != nil || l.Current() != nil {
		t.Fatal("nil ledger not inert")
	}
	s.Add(5)
	if s.Total() != 0 || s.Rolled() != 0 || s.Child("x") != nil {
		t.Fatal("nil span not inert")
	}
	if rows := Flatten(nil); rows != nil {
		t.Fatal("Flatten(nil) produced rows")
	}
}

func TestFlattenRows(t *testing.T) {
	l := New("run", "base")
	l.Open("a", "base", 1)
	l.Charge(2)
	l.Open("b", "sub", 3)
	l.Charge(4)
	l.Close()
	l.Close()
	l.Close()
	rows := l.Rows()
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	if rows[0].Path != "run" || rows[0].Depth != 0 || rows[0].Total != 14 {
		t.Fatalf("root row %+v", rows[0])
	}
	if rows[1].Path != "run/a" || rows[1].Self != 2 || rows[1].Total != 14 || rows[1].Rolled != 14 {
		t.Fatalf("a row %+v", rows[1])
	}
	if rows[2].Path != "run/a/b" || rows[2].Depth != 2 || rows[2].Total != 4 || rows[2].Rolled != 12 {
		t.Fatalf("b row %+v", rows[2])
	}
}
