package harness

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "graph", "n", "rounds")
	tb.AddRow("ring", 16, 120)
	tb.AddRow("expander", 1024, 42.5)
	out := tb.String()
	if !strings.Contains(out, "## demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "expander") || !strings.Contains(out, "42.5") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, 2)
	want := "a,b\n1,2\n"
	if got := tb.CSV(); got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

// TestTableCSVEscaping: cells containing separators, quotes or line
// breaks must come out RFC-4180 quoted, with embedded quotes doubled.
func TestTableCSVEscaping(t *testing.T) {
	tb := NewTable("", "name", "note")
	tb.AddRow("a,b", `say "hi"`)
	tb.AddRow("line\nbreak", "cr\r\nlf")
	tb.AddRow("plain", 3.5)
	want := "name,note\n" +
		`"a,b","say ""hi"""` + "\n" +
		"\"line\nbreak\",\"cr\r\nlf\"\n" +
		"plain,3.5\n"
	if got := tb.CSV(); got != want {
		t.Fatalf("CSV escaping:\n got %q\nwant %q", got, want)
	}
}

// Headers go through the same escaping as data cells.
func TestTableCSVEscapesHeader(t *testing.T) {
	tb := NewTable("", "a,b", "c")
	tb.AddRow(1, 2)
	want := "\"a,b\",c\n1,2\n"
	if got := tb.CSV(); got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = 3·x²: slope 2.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	if s := LogLogSlope(xs, ys); math.Abs(s-2) > 1e-9 {
		t.Fatalf("slope %v, want 2", s)
	}
	// Constants have slope 0.
	if s := LogLogSlope(xs, []float64{5, 5, 5, 5, 5}); math.Abs(s) > 1e-9 {
		t.Fatalf("constant slope %v", s)
	}
	// Degenerate inputs.
	if !math.IsNaN(LogLogSlope([]float64{1}, []float64{1})) {
		t.Fatal("single point should be NaN")
	}
	if !math.IsNaN(LogLogSlope(xs, []float64{0, 0, 0, 0, 0})) {
		t.Fatal("nonpositive ys should be NaN")
	}
}

func TestStats(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 {
		t.Fatalf("mean %v", Mean(xs))
	}
	if Max(xs) != 4 {
		t.Fatalf("max %v", Max(xs))
	}
	if Quantile(xs, 0.5) != 2 {
		t.Fatalf("median %v", Quantile(xs, 0.5))
	}
	if Quantile(xs, 1) != 4 || Quantile(xs, 0) != 1 {
		t.Fatal("extreme quantiles wrong")
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Quantile(nil, 0.5) != 0 {
		t.Fatal("empty input handling wrong")
	}
}
