package harness

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "graph", "n", "rounds")
	tb.AddRow("ring", 16, 120)
	tb.AddRow("expander", 1024, 42.5)
	out := tb.String()
	if !strings.Contains(out, "## demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "expander") || !strings.Contains(out, "42.5") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, 2)
	want := "a,b\n1,2\n"
	if got := tb.CSV(); got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

// TestTableCSVEscaping: cells containing separators, quotes or line
// breaks must come out RFC-4180 quoted, with embedded quotes doubled.
func TestTableCSVEscaping(t *testing.T) {
	tb := NewTable("", "name", "note")
	tb.AddRow("a,b", `say "hi"`)
	tb.AddRow("line\nbreak", "cr\r\nlf")
	tb.AddRow("plain", 3.5)
	want := "name,note\n" +
		`"a,b","say ""hi"""` + "\n" +
		"\"line\nbreak\",\"cr\r\nlf\"\n" +
		"plain,3.5\n"
	if got := tb.CSV(); got != want {
		t.Fatalf("CSV escaping:\n got %q\nwant %q", got, want)
	}
}

// Headers go through the same escaping as data cells.
func TestTableCSVEscapesHeader(t *testing.T) {
	tb := NewTable("", "a,b", "c")
	tb.AddRow(1, 2)
	want := "\"a,b\",c\n1,2\n"
	if got := tb.CSV(); got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = 3·x²: slope 2.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	if s, n := LogLogSlope(xs, ys); math.Abs(s-2) > 1e-9 || n != len(xs) {
		t.Fatalf("slope %v with %d pts, want 2 with %d", s, n, len(xs))
	}
	// Constants have slope 0.
	if s, _ := LogLogSlope(xs, []float64{5, 5, 5, 5, 5}); math.Abs(s) > 1e-9 {
		t.Fatalf("constant slope %v", s)
	}
	// Degenerate inputs.
	if s, n := LogLogSlope([]float64{1}, []float64{1}); !math.IsNaN(s) || n != 1 {
		t.Fatalf("single point: slope %v, used %d, want NaN, 1", s, n)
	}
	if s, n := LogLogSlope(xs, []float64{0, 0, 0, 0, 0}); !math.IsNaN(s) || n != 0 {
		t.Fatalf("nonpositive ys: slope %v, used %d, want NaN, 0", s, n)
	}
	if s, n := LogLogSlope(xs, []float64{1, 2}); !math.IsNaN(s) || n != 0 {
		t.Fatalf("length mismatch: slope %v, used %d, want NaN, 0", s, n)
	}
	// Dropped samples must be visible in the used count, not silent: a
	// zero measurement in an otherwise clean series still fits, but the
	// caller sees 4/5 points.
	ysDrop := []float64{3, 0, 48, 192, 768}
	if s, n := LogLogSlope(xs, ysDrop); math.Abs(s-2) > 1e-9 || n != 4 {
		t.Fatalf("dropped sample: slope %v, used %d, want 2, 4", s, n)
	}
	// Identical x values give a vertical line: NaN but a full used count.
	if s, n := LogLogSlope([]float64{1, 1, 1}, []float64{1, 2, 3}); !math.IsNaN(s) || n != 3 {
		t.Fatalf("degenerate xs: slope %v, used %d, want NaN, 3", s, n)
	}
}

func TestStats(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 {
		t.Fatalf("mean %v", Mean(xs))
	}
	if Max(xs) != 4 {
		t.Fatalf("max %v", Max(xs))
	}
	if Quantile(xs, 0.5) != 2 {
		t.Fatalf("median %v", Quantile(xs, 0.5))
	}
	if Quantile(xs, 1) != 4 || Quantile(xs, 0) != 1 {
		t.Fatal("extreme quantiles wrong")
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Quantile(nil, 0.5) != 0 {
		t.Fatal("empty input handling wrong")
	}
	// Single-sample series: every statistic is that sample.
	one := []float64{7}
	if Mean(one) != 7 || Max(one) != 7 ||
		Quantile(one, 0) != 7 || Quantile(one, 0.5) != 7 || Quantile(one, 1) != 7 {
		t.Fatal("single-sample statistics wrong")
	}
	// Negative values: Max must not default to 0.
	neg := []float64{-3, -1, -2}
	if Max(neg) != -1 {
		t.Fatalf("max of negatives %v, want -1", Max(neg))
	}
	if Mean(neg) != -2 {
		t.Fatalf("mean of negatives %v, want -2", Mean(neg))
	}
	// Quantile must not mutate its input.
	orig := append([]float64(nil), xs...)
	Quantile(xs, 0.5)
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatal("Quantile mutated its input")
		}
	}
	// Nearest-rank boundaries on an even-length series.
	if Quantile(xs, 0.25) != 1 || Quantile(xs, 0.75) != 3 {
		t.Fatalf("quartiles %v, %v, want 1, 3", Quantile(xs, 0.25), Quantile(xs, 0.75))
	}
}
