// Package harness provides the small utilities the experiment binaries
// and benchmarks share: aligned table rendering, CSV export, log-log
// scaling fits, and summary statistics.
package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"unicode/utf8"
)

// Table accumulates rows and renders them with aligned columns, in the
// style of the paper's result tables.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v, floats with %.3g.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Fprint renders the table to w.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if w := utf8.RuneCountInString(cell); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.rows {
		line(row)
	}
}

func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// CSV renders the table as RFC-4180 comma-separated values: cells
// containing a comma, quote or line break are quoted, with embedded
// quotes doubled, so free-text cells (run labels, phase names) survive
// round-tripping through standard CSV readers.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// csvEscape quotes a cell per RFC 4180 when it contains a delimiter,
// quote or line break.
func csvEscape(cell string) string {
	if !strings.ContainsAny(cell, ",\"\r\n") {
		return cell
	}
	return `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
}

// LogLogSlope fits ln(y) = a + s·ln(x) by least squares and returns the
// slope s — the empirical scaling exponent of a measurement series —
// together with the number of points actually used by the fit.
// Non-positive samples have no logarithm and are excluded; used < len(xs)
// tells the caller the exponent describes only part of its series rather
// than silently fitting a subset. The slope is NaN when fewer than two
// usable points remain (or the series lengths differ, with used = 0).
func LogLogSlope(xs, ys []float64) (slope float64, used int) {
	if len(xs) != len(ys) {
		return math.NaN(), 0
	}
	var sx, sy, sxx, sxy float64
	n := 0
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	if n < 2 {
		return math.NaN(), n
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return math.NaN(), n
	}
	return (fn*sxy - sx*sy) / den, n
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank on a sorted
// copy.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
