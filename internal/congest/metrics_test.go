package congest

import (
	"fmt"
	"testing"

	"almostmix/internal/graph"
	"almostmix/internal/metrics"
	"almostmix/internal/rngutil"
)

// chatter broadcasts for a fixed number of rounds, then halts — a
// deterministic message-heavy workload for the metrics layer.
type chatter struct{ left int }

func (p *chatter) Init(ctx *Ctx) { ctx.Broadcast("m") }

func (p *chatter) Step(ctx *Ctx, inbox []Inbound) {
	p.left--
	if p.left <= 0 {
		ctx.Halt()
		return
	}
	ctx.Broadcast("m")
}

// TestMetricsDeterministicAcrossWorkers: the deterministic instruments
// (runs, rounds, messages) must merge to bit-identical values for worker
// counts 1, 2 and 8 — the registry-side mirror of the engines'
// bit-identical-execution guarantee — while the wall-time instruments
// must be present and plausible on every engine.
func TestMetricsDeterministicAcrossWorkers(t *testing.T) {
	g := graph.RandomRegular(64, 4, rngutil.NewRand(9))
	type fixed struct {
		rounds, runs, delivered int64
	}
	var want *fixed
	for _, workers := range []int{1, 2, 8} {
		reg := metrics.New()
		net := NewUniformNetwork(g, func(int) Program { return &chatter{left: 10} },
			rngutil.NewSource(5)).SetWorkers(workers).SetMetrics(reg)
		rounds, err := net.Run(64)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		snap := reg.Snapshot()
		read := func(name string) int64 {
			v, ok := snap.Counter(name)
			if !ok {
				t.Fatalf("workers=%d: counter %s missing", workers, name)
			}
			return v
		}
		got := &fixed{
			rounds:    read("congest_rounds_total"),
			runs:      read("congest_runs_total"),
			delivered: read("congest_messages_delivered_total"),
		}
		if got.runs != 1 {
			t.Fatalf("workers=%d: runs=%d, want 1", workers, got.runs)
		}
		if got.rounds != int64(rounds) {
			t.Fatalf("workers=%d: counter rounds=%d, engine says %d", workers, got.rounds, rounds)
		}
		if want == nil {
			want = got
		} else if *got != *want {
			t.Fatalf("workers=%d: deterministic metrics diverged: %+v vs %+v", workers, got, want)
		}

		// Wall instruments: present, positive, and consistent in count.
		if v := read("congest_run_wall_ns_total"); v <= 0 {
			t.Fatalf("workers=%d: run wall %d", workers, v)
		}
		hist := snap.Histogram("congest_round_wall_ns")
		if hist == nil || hist.Count != int64(rounds) {
			t.Fatalf("workers=%d: round histogram %+v, want count %d", workers, hist, rounds)
		}
		if _, ok := snap.Gauge("congest_rounds_per_sec"); !ok {
			t.Fatalf("workers=%d: rounds/sec gauge missing", workers)
		}
		// Per-shard busy/idle instruments exist exactly on the parallel
		// engine, one pair per worker.
		for w := 0; w < workers; w++ {
			name := fmt.Sprintf("congest_worker_busy_ns_total{shard=%02d}", w)
			_, ok := snap.Counter(name)
			if workers == 1 && ok {
				t.Fatalf("sequential run exported %s", name)
			}
			if workers > 1 && !ok {
				t.Fatalf("workers=%d: %s missing", workers, name)
			}
		}
	}
}

// TestMetricsDetached: without a registry the network must not allocate
// metrics state, and a run behaves identically (the nil fast path).
func TestMetricsDetached(t *testing.T) {
	g := graph.Ring(16)
	net := NewUniformNetwork(g, func(int) Program { return &chatter{left: 4} },
		rngutil.NewSource(5))
	if _, err := net.Run(16); err != nil {
		t.Fatal(err)
	}
	if net.ms != nil {
		t.Fatal("metrics state allocated without a registry")
	}
}

// TestMetricsAccumulateAcrossRuns: one registry attached to several
// (single-use) networks accumulates counters across runs — the usage
// pattern of the cmd binaries, where one -metrics session spans every
// experiment instance.
func TestMetricsAccumulateAcrossRuns(t *testing.T) {
	g := graph.Ring(8)
	reg := metrics.New()
	var totalRounds int64
	for i := 0; i < 3; i++ {
		net := NewUniformNetwork(g, func(int) Program { return &chatter{left: 3} },
			rngutil.NewSource(uint64(i))).SetMetrics(reg)
		rounds, err := net.Run(16)
		if err != nil {
			t.Fatal(err)
		}
		totalRounds += int64(rounds)
	}
	snap := reg.Snapshot()
	if v, _ := snap.Counter("congest_runs_total"); v != 3 {
		t.Fatalf("runs=%d, want 3", v)
	}
	if v, _ := snap.Counter("congest_rounds_total"); v != totalRounds {
		t.Fatalf("rounds=%d, want %d", v, totalRounds)
	}
}
