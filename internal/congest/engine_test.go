package congest

// Differential equivalence suite: every bundled node program is executed
// on the sequential reference engine and on the sharded parallel engine
// with several worker counts, and the two executions must agree bit for
// bit — same round count, same total message count, same per-node final
// state. Determinism is the measurement contract of the whole repo (round
// counts ARE the experimental results), so any divergence here is a
// correctness bug, not a flake.

import (
	"reflect"
	"testing"

	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

var diffWorkerCounts = []int{1, 2, 8}

var diffSeeds = []uint64{1, 7, 42}

// diffScenario builds one program-under-test: build returns a fresh
// network plus a closure extracting the observable per-node final state.
type diffScenario struct {
	name      string
	quiet     bool
	maxRounds int
	build     func(seed uint64) (*Network, func() any)
}

func runDifferential(t *testing.T, sc diffScenario) {
	t.Helper()
	seeds := diffSeeds
	if testing.Short() {
		seeds = seeds[:1] // keep the race-instrumented CI run fast
	}
	for _, seed := range seeds {
		net, state := sc.build(seed)
		wantProbe := &recordingProbe{}
		net.SetProbe(wantProbe)
		wantRounds, err := net.runSequential(sc.maxRounds, sc.quiet)
		if err != nil {
			t.Fatalf("%s seed %d: sequential: %v", sc.name, seed, err)
		}
		wantMsgs := net.Messages()
		want := state()
		for _, workers := range diffWorkerCounts {
			par, parState := sc.build(seed)
			gotProbe := &recordingProbe{}
			par.SetProbe(gotProbe)
			gotRounds, err := par.runParallel(sc.maxRounds, workers, sc.quiet)
			if err != nil {
				t.Fatalf("%s seed %d workers %d: parallel: %v", sc.name, seed, workers, err)
			}
			if gotRounds != wantRounds {
				t.Errorf("%s seed %d workers %d: rounds %d, sequential %d",
					sc.name, seed, workers, gotRounds, wantRounds)
			}
			if gotMsgs := par.Messages(); gotMsgs != wantMsgs {
				t.Errorf("%s seed %d workers %d: messages %d, sequential %d",
					sc.name, seed, workers, gotMsgs, wantMsgs)
			}
			if got := parState(); !reflect.DeepEqual(got, want) {
				t.Errorf("%s seed %d workers %d: final state diverges from sequential",
					sc.name, seed, workers)
			}
			// The probe contract: the full event stream — every round
			// record (including the borrowed per-node and per-edge slices),
			// every mark, every halt — is bit-identical across engines and
			// worker counts.
			if !reflect.DeepEqual(gotProbe.events, wantProbe.events) {
				t.Errorf("%s seed %d workers %d: probe event stream diverges from sequential (%d vs %d events)",
					sc.name, seed, workers, len(gotProbe.events), len(wantProbe.events))
			}
		}
	}
}

// diffGraph varies the topology with the seed so the suite does not
// overfit one port layout.
func diffGraph(seed uint64) *graph.Graph {
	r := rngutil.NewRand(seed)
	switch seed % 3 {
	case 0:
		return graph.RandomRegular(48, 4, r)
	case 1:
		g, err := graph.ConnectedGnp(40, 0.15, r)
		if err != nil {
			panic(err)
		}
		return g
	default:
		return graph.Lollipop(16, 10)
	}
}

func TestDifferentialBFS(t *testing.T) {
	runDifferential(t, diffScenario{
		name:      "bfs",
		quiet:     true,
		maxRounds: 200,
		build: func(seed uint64) (*Network, func() any) {
			g := diffGraph(seed)
			res := &BFSResult{
				Root:   0,
				Parent: make([]int, g.N()),
				Dist:   make([]int, g.N()),
			}
			net := NewUniformNetwork(g, func(v int) Program {
				return &bfsProgram{root: v == 0, res: res}
			}, rngutil.NewSource(seed))
			return net, func() any { return *res }
		},
	})
}

func TestDifferentialBroadcast(t *testing.T) {
	runDifferential(t, diffScenario{
		name:      "broadcast",
		quiet:     true,
		maxRounds: 200,
		build: func(seed uint64) (*Network, func() any) {
			g := diffGraph(seed)
			values := make([]Message, g.N())
			net := NewUniformNetwork(g, func(v int) Program {
				return &floodProgram{root: v == 0, value: int(seed), out: values}
			}, rngutil.NewSource(seed))
			return net, func() any { return values }
		},
	})
}

func TestDifferentialLeaderElection(t *testing.T) {
	runDifferential(t, diffScenario{
		name:      "leader",
		quiet:     true,
		maxRounds: 200,
		build: func(seed uint64) (*Network, func() any) {
			g := diffGraph(seed)
			result := make([]int, g.N())
			net := NewUniformNetwork(g, func(v int) Program {
				return &leaderProgram{result: result}
			}, rngutil.NewSource(seed))
			return net, func() any { return result }
		},
	})
}

func TestDifferentialConvergecast(t *testing.T) {
	runDifferential(t, diffScenario{
		name:      "convergecast",
		quiet:     false,
		maxRounds: 200,
		build: func(seed uint64) (*Network, func() any) {
			g := diffGraph(seed)
			tree, err := BFS(g, 0, rngutil.NewSource(seed))
			if err != nil {
				panic(err)
			}
			values := make([]float64, g.N())
			for v := range values {
				values[v] = float64(v + 1)
			}
			totals := make([]float64, g.N())
			net := NewUniformNetwork(g, func(v int) Program {
				return &sumProgram{tree: tree, depth: tree.Depth(), value: values[v], totals: totals}
			}, rngutil.NewSource(seed+1))
			return net, func() any { return totals }
		},
	})
}

// TestDifferentialProbeEvents drives the probe event paths hard: every
// node marks phases each round and the nodes halt in staggered waves, so
// the per-round drain of sharded marks and halt flags is exercised on
// every worker count (the stream equality is asserted by runDifferential).
func TestDifferentialProbeEvents(t *testing.T) {
	runDifferential(t, diffScenario{
		name:      "probe-events",
		quiet:     false,
		maxRounds: 60,
		build: func(seed uint64) (*Network, func() any) {
			g := diffGraph(seed)
			final := make([]int, g.N())
			net := NewUniformNetwork(g, func(v int) Program {
				return programFunc{
					init: func(ctx *Ctx) {
						ctx.Mark("boot")
						ctx.Broadcast(0)
					},
					step: func(ctx *Ctx, inbox []Inbound) {
						if ctx.Round()%3 == ctx.ID()%3 {
							ctx.Mark("beat")
						}
						if ctx.Round() >= 3+ctx.ID()%7 {
							final[ctx.ID()] = ctx.Round()
							ctx.Halt()
							return
						}
						ctx.Broadcast(ctx.Round())
					},
				}
			}, rngutil.NewSource(seed))
			return net, func() any { return final }
		},
	})
}

// TestParallelMessagesAccounting checks the sharded per-node accounting
// against the known message total of a one-round broadcast.
func TestParallelMessagesAccounting(t *testing.T) {
	g := graph.Ring(9)
	received := make([]int, g.N())
	net := NewUniformNetwork(g, func(v int) Program {
		return programFunc{
			init: func(ctx *Ctx) { ctx.Broadcast("ping") },
			step: func(ctx *Ctx, inbox []Inbound) {
				received[ctx.ID()] = len(inbox)
				ctx.Halt()
			},
		}
	}, rngutil.NewSource(3))
	if _, err := net.RunParallel(10, 4); err != nil {
		t.Fatal(err)
	}
	if net.Messages() != 2*g.M() {
		t.Fatalf("Messages() = %d, want %d", net.Messages(), 2*g.M())
	}
	for v, got := range received {
		if got != 2 {
			t.Fatalf("node %d received %d messages, want 2", v, got)
		}
	}
}

// TestParallelPanicPropagates ensures a program panic inside a worker
// reaches the caller, matching sequential semantics.
func TestParallelPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double send on one port did not panic through the pool")
		}
	}()
	g := graph.Ring(6)
	net := NewUniformNetwork(g, func(v int) Program {
		return programFunc{step: func(ctx *Ctx, _ []Inbound) {
			ctx.Send(0, 1)
			ctx.Send(0, 2)
		}}
	}, rngutil.NewSource(1))
	_, _ = net.RunParallel(3, 4)
}

// TestSetWorkersSelectsEngine checks the RunUntilQuiet engine option: a
// quiet-terminated program gives identical results through the option
// path.
func TestSetWorkersSelectsEngine(t *testing.T) {
	run := func(workers int) (int, int, []int) {
		g := graph.Grid(6, 6)
		result := make([]int, g.N())
		net := NewUniformNetwork(g, func(v int) Program {
			return &leaderProgram{result: result}
		}, rngutil.NewSource(11)).SetWorkers(workers)
		rounds, err := net.RunUntilQuiet(500)
		if err != nil {
			t.Fatal(err)
		}
		return rounds, net.Messages(), result
	}
	seqRounds, seqMsgs, seqState := run(1)
	for _, workers := range []int{2, 8} {
		rounds, msgs, state := run(workers)
		if rounds != seqRounds || msgs != seqMsgs || !reflect.DeepEqual(state, seqState) {
			t.Fatalf("workers=%d: (rounds=%d msgs=%d) diverges from sequential (rounds=%d msgs=%d)",
				workers, rounds, msgs, seqRounds, seqMsgs)
		}
	}
}
