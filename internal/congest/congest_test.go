package congest

import (
	"errors"
	"testing"
	"testing/quick"

	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

// pingProgram sends one message on every port and counts replies.
type pingProgram struct {
	received *int
}

func (p *pingProgram) Init(ctx *Ctx) { ctx.Broadcast("ping") }

func (p *pingProgram) Step(ctx *Ctx, inbox []Inbound) {
	*p.received += len(inbox)
	ctx.Halt()
}

func TestPingDelivery(t *testing.T) {
	g := graph.Ring(6)
	received := 0
	net := NewUniformNetwork(g, func(v int) Program {
		return &pingProgram{received: &received}
	}, rngutil.NewSource(1))
	rounds, err := net.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 1 {
		t.Fatalf("rounds = %d, want 1", rounds)
	}
	if received != 2*g.M() {
		t.Fatalf("received %d messages, want %d", received, 2*g.M())
	}
	if net.Messages() != 2*g.M() {
		t.Fatalf("Messages() = %d, want %d", net.Messages(), 2*g.M())
	}
}

// doubleSend verifies the per-port capacity of one message per round.
type doubleSend struct{}

func (doubleSend) Init(ctx *Ctx) {
	ctx.Send(0, 1)
	ctx.Send(0, 2)
}
func (doubleSend) Step(ctx *Ctx, _ []Inbound) { ctx.Halt() }

func TestDoubleSendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double send on one port did not panic")
		}
	}()
	g := graph.Ring(3)
	net := NewUniformNetwork(g, func(int) Program { return doubleSend{} }, rngutil.NewSource(1))
	_, _ = net.Run(2)
}

type neverHalt struct{}

func (neverHalt) Init(*Ctx)            {}
func (neverHalt) Step(*Ctx, []Inbound) {}

func TestRoundLimit(t *testing.T) {
	g := graph.Ring(3)
	net := NewUniformNetwork(g, func(int) Program { return neverHalt{} }, rngutil.NewSource(1))
	_, err := net.Run(5)
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
	if net.Rounds() != 5 {
		t.Fatalf("rounds = %d, want 5", net.Rounds())
	}
}

func TestRunUntilQuietStopsOnSilence(t *testing.T) {
	g := graph.Ring(4)
	net := NewUniformNetwork(g, func(int) Program { return neverHalt{} }, rngutil.NewSource(1))
	rounds, err := net.RunUntilQuiet(100)
	if err != nil {
		t.Fatal(err)
	}
	if rounds > 2 {
		t.Fatalf("silent network ran %d rounds", rounds)
	}
}

func TestCtxAccessors(t *testing.T) {
	g := graph.Path(3)
	var sawN, sawDeg, sawNbr, sawEdge int
	var sawW float64
	probe := func(v int) Program {
		return programFunc{
			init: func(ctx *Ctx) {
				if ctx.ID() == 1 {
					sawN = ctx.N()
					sawDeg = ctx.Degree()
					sawNbr = ctx.NeighborID(0)
					sawEdge = ctx.EdgeID(0)
					sawW = ctx.EdgeWeight(0)
				}
				ctx.Halt()
			},
		}
	}
	net := NewUniformNetwork(g, probe, rngutil.NewSource(1))
	if _, err := net.Run(2); err != nil {
		t.Fatal(err)
	}
	if sawN != 3 || sawDeg != 2 || sawNbr != 0 || sawEdge != 0 || sawW != 1 {
		t.Fatalf("accessors: n=%d deg=%d nbr=%d edge=%d w=%v", sawN, sawDeg, sawNbr, sawEdge, sawW)
	}
}

type programFunc struct {
	init func(*Ctx)
	step func(*Ctx, []Inbound)
}

func (p programFunc) Init(ctx *Ctx) {
	if p.init != nil {
		p.init(ctx)
	}
}

func (p programFunc) Step(ctx *Ctx, inbox []Inbound) {
	if p.step != nil {
		p.step(ctx, inbox)
	} else {
		ctx.Halt()
	}
}

func TestBFSMatchesCentralized(t *testing.T) {
	r := rngutil.NewRand(3)
	for _, g := range []*graph.Graph{
		graph.Ring(12),
		graph.Grid(4, 5),
		graph.RandomRegular(20, 3, r),
		graph.Lollipop(6, 6),
	} {
		res, err := BFS(g, 0, rngutil.NewSource(7))
		if err != nil {
			t.Fatal(err)
		}
		want := g.BFSDist(0)
		for v := 0; v < g.N(); v++ {
			if res.Dist[v] != want[v] {
				t.Fatalf("BFS dist[%d] = %d, want %d", v, res.Dist[v], want[v])
			}
			if v != 0 {
				p := res.Parent[v]
				if p < 0 || want[p] != want[v]-1 || !g.HasEdge(p, v) {
					t.Fatalf("BFS parent of %d is %d (dist %d)", v, p, res.Dist[v])
				}
			}
		}
		// Flooding completes in about eccentricity-many rounds.
		if res.Rounds > res.Depth()+3 {
			t.Fatalf("BFS took %d rounds for depth %d", res.Rounds, res.Depth())
		}
	}
}

func TestElectLeader(t *testing.T) {
	g := graph.Grid(5, 5)
	leader, rounds, err := ElectLeader(g, rngutil.NewSource(5))
	if err != nil {
		t.Fatal(err)
	}
	if leader != g.N()-1 {
		t.Fatalf("leader = %d, want %d", leader, g.N()-1)
	}
	if rounds > 3*g.Diameter()+4 {
		t.Fatalf("election took %d rounds on diameter %d", rounds, g.Diameter())
	}
}

func TestBroadcastFrom(t *testing.T) {
	g := graph.BinaryTree(15)
	values, rounds, err := BroadcastFrom(g, 0, 424242, rngutil.NewSource(6))
	if err != nil {
		t.Fatal(err)
	}
	for v, got := range values {
		if got != 424242 {
			t.Fatalf("node %d got %v", v, got)
		}
	}
	if rounds > g.Diameter()+3 {
		t.Fatalf("broadcast took %d rounds", rounds)
	}
}

func TestConvergecastSum(t *testing.T) {
	g := graph.Grid(4, 4)
	tree, err := BFS(g, 0, rngutil.NewSource(8))
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, g.N())
	want := 0.0
	for v := range values {
		values[v] = float64(v + 1)
		want += values[v]
	}
	got, _, err := ConvergecastSum(g, tree, values, rngutil.NewSource(9))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

// Property: on random connected graphs, BFS distances computed by the
// distributed program equal centralized BFS distances, and leader election
// elects the max ID.
func TestPropertyPrimitives(t *testing.T) {
	f := func(seed uint64) bool {
		r := rngutil.NewRand(seed)
		g, err := graph.ConnectedGnp(20, 0.2, r)
		if err != nil {
			return true
		}
		res, err := BFS(g, int(seed%20), rngutil.NewSource(seed))
		if err != nil {
			return false
		}
		want := g.BFSDist(int(seed % 20))
		for v := range want {
			if res.Dist[v] != want[v] {
				return false
			}
		}
		leader, _, err := ElectLeader(g, rngutil.NewSource(seed+1))
		return err == nil && leader == g.N()-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestCtxRoundAdvances(t *testing.T) {
	g := graph.Ring(4)
	var rounds []int
	net := NewUniformNetwork(g, func(v int) Program {
		return programFunc{step: func(ctx *Ctx, _ []Inbound) {
			if ctx.ID() == 0 {
				rounds = append(rounds, ctx.Round())
			}
			if ctx.Round() >= 3 {
				ctx.Halt()
			}
		}}
	}, rngutil.NewSource(1))
	if _, err := net.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 3 || rounds[0] != 1 || rounds[2] != 3 {
		t.Fatalf("observed rounds %v", rounds)
	}
}

func TestNodeRandIsPerNodeDeterministic(t *testing.T) {
	g := graph.Ring(4)
	draw := func() []uint64 {
		out := make([]uint64, g.N())
		net := NewUniformNetwork(g, func(v int) Program {
			return programFunc{init: func(ctx *Ctx) {
				out[ctx.ID()] = ctx.Rand().Uint64()
				ctx.Halt()
			}}
		}, rngutil.NewSource(9))
		if _, err := net.Run(2); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := draw(), draw()
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("per-node streams not reproducible")
		}
	}
	if a[0] == a[1] {
		t.Fatal("different nodes share a stream")
	}
}

func TestNewNetworkPanicsOnCountMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched program count did not panic")
		}
	}()
	NewNetwork(graph.Ring(3), []Program{neverHalt{}}, rngutil.NewSource(1))
}
