package congest

// The probe layer: per-round observability for simulator runs.
//
// The paper's claims are statements about per-round trajectories — token
// load per phase (Lemma 2.5), congestion per edge, halting waves — not
// just end-of-run totals, so the simulator exposes a hook interface that
// reports what happened in every round. The contract is built around the
// determinism guarantee of the two engines:
//
//   - Every hook is invoked on the coordinating goroutine only, between
//     the round barriers, never from a worker. Probes need no locking and
//     observe both engines identically: attaching the same probe to the
//     sequential and the sharded parallel engine yields bit-identical
//     event sequences for every worker count (asserted by the
//     differential suites).
//   - Event order within a round is fixed: per node in ID order, first
//     that node's phase marks (in emission order), then its halt event if
//     it halted this round; then one RoundEnd with the aggregated record.
//   - Per-node event collection is sharded exactly like message
//     accounting: marks and halt flags live on the Ctx touched only by
//     the owning worker, and the coordinator drains them after the step
//     barrier, so the parallel engine stays free of shared mutable state.
//   - With no probe attached the engines skip all collection — the only
//     residual cost is one nil check per round — so measurement runs pay
//     nothing for the layer's existence (BenchmarkCongestEngine guards
//     this).
//
// Probes must not mutate the network or retain what they are handed: the
// *RoundRecord itself and its InboxSizes/EdgeLoad slices are engine-owned
// buffers recycled every round (part of the zero-alloc steady-state
// contract, DESIGN.md §3), valid only during the RoundEnd call.

import (
	"fmt"

	"almostmix/internal/faults"
)

// RunInfo describes a run at RunStart time.
type RunInfo struct {
	// Name labels the run in exported traces ("E4 k=2"). Engines leave it
	// empty; wrappers like TraceSink.Label fill it in.
	Name string
	// Engine identifies the executor: "sequential", "parallel", or the
	// name of an analytic engine reusing the layer (e.g. "randomwalk").
	Engine string
	// Workers is the effective worker count (1 for sequential).
	Workers int
	// Nodes and Edges describe the graph under simulation.
	Nodes, Edges int
}

// RoundRecord is the aggregated view of one executed round, handed to
// Probe.RoundEnd. For the CONGEST engines Round is the network round
// number (1-based) and per-edge loads are 0 or 1 by the model's capacity;
// analytic engines that reuse the layer (randomwalk.Run) emit one record
// per walk step, where the edge load is the step's congestion — the
// quantity Lemma 2.5 bounds.
type RoundRecord struct {
	// Round is the round (or analytic step) just executed, 1-based.
	Round int
	// Delivered is the number of messages delivered this round.
	Delivered int
	// Active is the number of nodes that executed Step this round.
	Active int
	// Halted is the number of halted nodes after the round.
	Halted int
	// MaxInbox is the largest per-node inbox this round, and MaxInboxNode
	// the smallest node ID attaining it (-1 when no deliveries).
	MaxInbox     int
	MaxInboxNode int
	// MaxEdgeLoad is the largest per-directed-edge delivery count.
	MaxEdgeLoad int64
	// InboxSizes[v] is the number of messages delivered to node v.
	// Borrowed: valid only during the RoundEnd call.
	InboxSizes []int
	// EdgeLoad[2·e+dir] is the delivery count of edge e in direction dir
	// (dir 1 = toward the edge's V endpoint). int64: analytic engines and
	// duplication faults push per-slot counts past what int32 holds over
	// long traced runs. Borrowed: valid only during the RoundEnd call.
	EdgeLoad []int64
	// Dropped, Duplicated, Delayed count fault-injected message events this
	// round; Crashed is the number of nodes crashed during the round. All
	// zero unless a fault plan is attached (see Network.SetFaults).
	Dropped    int
	Duplicated int
	Delayed    int
	Crashed    int
}

// Probe observes a simulator run. All hooks run on the coordinating
// goroutine in a deterministic order (see the package comment above);
// implementations need no synchronization but must not mutate the network
// or retain borrowed slices. NopProbe provides no-op defaults to embed.
type Probe interface {
	// RunStart fires once per run, before Init.
	RunStart(info RunInfo)
	// PhaseMark fires for every Ctx.Mark a program emitted, after the
	// round's step barrier (round 0 = marks emitted during Init).
	PhaseMark(node, round int, name string)
	// NodeHalted fires once per node, after the step barrier of the round
	// in which the node called Halt (round 0 = halted during Init).
	NodeHalted(node, round int)
	// RoundEnd fires once per executed round with the aggregated record,
	// after that round's PhaseMark/NodeHalted events.
	RoundEnd(rec *RoundRecord)
	// RunEnd fires when the run returns (not on a program panic), with
	// the final round count and the run's error, if any.
	RunEnd(rounds int, err error)
}

// NopProbe implements Probe with no-ops; embed it to write probes that
// only care about a subset of the hooks.
type NopProbe struct{}

func (NopProbe) RunStart(RunInfo)           {}
func (NopProbe) PhaseMark(int, int, string) {}
func (NopProbe) NodeHalted(int, int)        {}
func (NopProbe) RoundEnd(*RoundRecord)      {}
func (NopProbe) RunEnd(int, error)          {}

// MultiProbe fans every hook out to each member in order.
type MultiProbe []Probe

func (m MultiProbe) RunStart(info RunInfo) {
	for _, p := range m {
		p.RunStart(info)
	}
}

func (m MultiProbe) PhaseMark(node, round int, name string) {
	for _, p := range m {
		p.PhaseMark(node, round, name)
	}
}

func (m MultiProbe) NodeHalted(node, round int) {
	for _, p := range m {
		p.NodeHalted(node, round)
	}
}

func (m MultiProbe) RoundEnd(rec *RoundRecord) {
	for _, p := range m {
		p.RoundEnd(rec)
	}
}

func (m MultiProbe) RunEnd(rounds int, err error) {
	for _, p := range m {
		p.RunEnd(rounds, err)
	}
}

// SetProbe attaches a probe to the network (nil detaches). It must be set
// before Run — attaching one later panics (see mustConfigure); the
// receiver returns itself so construction can chain.
func (n *Network) SetProbe(p Probe) *Network {
	n.mustConfigure("SetProbe")
	n.probe = p
	return n
}

// Mark emits a named phase marker attributed to this node and the current
// round. Markers are observability only: they reach the attached probe
// (in node-ID order after the round's step barrier) and never affect the
// execution. Without a probe the call is a no-op; guard any expensive
// name construction with Tracing.
func (c *Ctx) Mark(name string) {
	if c.net.probe == nil {
		return
	}
	c.marks = append(c.marks, phaseMark{round: c.net.rounds, name: name})
}

// Tracing reports whether a probe is attached, so programs can skip
// building mark names that would be dropped.
func (c *Ctx) Tracing() bool { return c.net.probe != nil }

// phaseMark is a queued Ctx.Mark, drained by the coordinator.
type phaseMark struct {
	round int
	name  string
}

// probeState holds the per-run scratch buffers of the probe layer,
// allocated only when a probe is attached. The RoundRecord is part of
// the scratch: it is refilled and handed to RoundEnd every round, never
// reallocated, so an attached probe adds no steady-state allocations.
type probeState struct {
	inboxSizes []int
	edgeLoad   []int64
	touched    []int
	rec        RoundRecord
}

// probeRunStart announces the run and allocates the scratch buffers.
func (n *Network) probeRunStart(engine string, workers int) {
	if n.probe == nil {
		return
	}
	if n.ps == nil {
		n.ps = &probeState{
			inboxSizes: make([]int, n.g.N()),
			edgeLoad:   make([]int64, 2*n.g.M()),
		}
	}
	n.probe.RunStart(RunInfo{
		Engine:  engine,
		Workers: workers,
		Nodes:   n.g.N(),
		Edges:   n.g.M(),
	})
}

// probeDrainEvents forwards queued phase marks and halt events in node-ID
// order. Marks and halt flags are written only by the worker owning the
// node's shard; the coordinator drains them between barriers.
func (n *Network) probeDrainEvents() {
	for v := range n.ctxs {
		ctx := &n.ctxs[v]
		if len(ctx.marks) > 0 {
			for _, m := range ctx.marks {
				n.probe.PhaseMark(v, m.round, m.name)
			}
			ctx.marks = ctx.marks[:0]
		}
		if ctx.justHalted {
			ctx.justHalted = false
			n.probe.NodeHalted(v, ctx.haltRound)
		}
	}
}

// probeRoundFlush aggregates the round just executed and fires the
// per-round hooks. It reads the inboxes built by the deliver phase (which
// survive untouched through Step) rather than instrumenting the delivery
// hot path, so the engines carry no per-message probe cost. The record
// and its slices are probeState scratch, refilled in place: a steady
// probed round allocates nothing.
func (n *Network) probeRoundFlush(delivered, active int, fc faults.Counts) {
	ps := n.ps
	rec := &ps.rec
	*rec = RoundRecord{
		Round:        n.rounds,
		Delivered:    delivered,
		Active:       active,
		MaxInboxNode: -1,
		InboxSizes:   ps.inboxSizes,
		EdgeLoad:     ps.edgeLoad,
		Dropped:      int(fc.Dropped),
		Duplicated:   int(fc.Duplicated),
		Delayed:      int(fc.Delayed),
		Crashed:      int(fc.Crashed),
	}
	t := n.topo
	for u, inbox := range n.inboxes {
		ps.inboxSizes[u] = len(inbox)
		if len(inbox) > rec.MaxInbox {
			rec.MaxInbox = len(inbox)
			rec.MaxInboxNode = u
		}
		for _, in := range inbox {
			slot := t.slotOf(t.start[u]+int32(in.Port), u)
			if ps.edgeLoad[slot] == 0 {
				ps.touched = append(ps.touched, slot)
			}
			ps.edgeLoad[slot]++
			if ps.edgeLoad[slot] > rec.MaxEdgeLoad {
				rec.MaxEdgeLoad = ps.edgeLoad[slot]
			}
		}
	}
	for v := range n.ctxs {
		if n.ctxs[v].halted {
			rec.Halted++
		}
	}
	n.probeDrainEvents()
	n.probe.RoundEnd(rec)
	for _, slot := range ps.touched {
		ps.edgeLoad[slot] = 0
	}
	ps.touched = ps.touched[:0]
}

// finish fires RunEnd, closes the metrics run, and returns the run
// result; every engine return path goes through it.
func (n *Network) finish(err error) (int, error) {
	if n.probe != nil {
		n.probe.RunEnd(n.rounds, err)
	}
	if n.ms != nil {
		n.ms.runEnd()
		n.ms = nil
	}
	return n.rounds, err
}

// begin enforces that a Network is single-use: rounds, message shards and
// program state all accumulate across rounds, so re-running Init over
// them would silently corrupt the results.
func (n *Network) begin() error {
	if n.started {
		return fmt.Errorf("congest: %w", ErrNetworkReused)
	}
	n.started = true
	return nil
}
