package congest

// Shard execution: the congest-side half of the TCP transport backend
// (internal/transport). A Shard drives a contiguous node range [lo, hi)
// of a Network replica under an external coordinator, exposing the
// engine's two phases (deliver, step) as explicit calls so the
// coordinator can run the round barriers over the wire.
//
// Every participating process builds the SAME full Network from the
// replayable workload spec — topology, arenas and per-node RNG streams
// are identical everywhere — but each process only ever runs the
// programs of its own range. Cross-shard traffic needs no delivery code
// of its own: an inbound remote message is staged by setting the
// remote sender's outbox slot in the local replica (Inject), after
// which the unmodified deliverTo — THE canonical delivery point —
// assembles the receiver's inbox in port order exactly as the
// in-process engines do. That is what makes TCP-backed traces
// byte-identical to the sequential engine: there is only one delivery
// order in the codebase, and the wire backend reuses it.
//
// The coordinator-facing contract mirrors the in-process round loop
// (runSequential) phase for phase:
//
//	Init()                       — run Init for owned nodes (round 0)
//	Inject(...); Deliver()       — stage remote sends, build inboxes
//	Step()                       — advance the round, run owned programs
//	ExternalSends(...)           — enumerate owned sends that leave the shard
//	DrainEvents(...)             — marks/halts of owned nodes, ID order
//
// Fault plans ride the same canonical path: attach the plan with
// SetFaults BEFORE NewShard (the single-use contract makes SetFaults
// panic afterwards) and deliverFaulty runs unchanged at deliverTo on
// every replica. The shard replica replays crash and sever schedules
// from the spec's rules, while probabilistic per-message fates come
// from the coordinator's fate-table handshake (faults.AttachTable,
// shipped in round windows by internal/transport) so every replica
// agrees on the authoritative rolls. Per-round fault counts are
// drained by the coordinator through FaultCounts — Crashed restricted
// to the owned range so shard counts sum to the global totals — and
// crashed owned nodes skip Step exactly like the in-process step loop.

import (
	"fmt"

	"almostmix/internal/faults"
)

// shardBoundary is one directed cross-shard port pair: an owned node's
// port facing a remote neighbor. The remote side's (node, port) is both
// the destination of outbound traffic over this edge and the staging
// slot Inject writes for inbound traffic over the reverse edge.
type shardBoundary struct {
	owner      int32 // owned node
	ownerPort  int32 // port at owner facing the remote neighbor
	remote     int32 // the remote neighbor
	remotePort int32 // port at the remote neighbor facing owner
}

// Shard drives nodes [lo, hi) of a single-use Network under an external
// coordinator. Obtain one with NewShard; the Network must not be run or
// reconfigured afterwards (NewShard consumes its single use).
type Shard struct {
	net      *Network
	lo, hi   int
	boundary []shardBoundary
}

// NewShard consumes net and returns the shard harness for nodes
// [lo, hi). The network must be freshly built: NewShard claims its
// single use (a second NewShard or Run returns ErrNetworkReused), so
// every Set* option — including SetFaults — must be applied before it
// and panics afterwards. Probes attached to the replica are ignored —
// observability is drained by the coordinator through DrainEvents
// instead, so event collection is always on.
func NewShard(net *Network, lo, hi int) (*Shard, error) {
	if lo < 0 || hi > net.topo.n || lo > hi {
		return nil, fmt.Errorf("congest: shard range [%d, %d) outside nodes [0, %d)", lo, hi, net.topo.n)
	}
	// Event collection (marks, halt rounds) is gated on an attached
	// probe; the shard always collects so the coordinator can rebuild
	// the canonical event stream. The probe itself never fires here.
	net.probe = NopProbe{}
	if err := net.begin(); err != nil {
		return nil, err
	}
	// The deliver/step phases run on the coordinator's single driving
	// goroutine, so the fault scratch needs one count slot.
	net.faultsRunStart(1)
	s := &Shard{net: net, lo: lo, hi: hi}
	t := net.topo
	for u := lo; u < hi; u++ {
		ulo, uhi := t.start[u], t.start[u+1]
		for i := ulo; i < uhi; i++ {
			nbr := int(t.to[i])
			if nbr >= lo && nbr < hi {
				continue
			}
			s.boundary = append(s.boundary, shardBoundary{
				owner:      int32(u),
				ownerPort:  i - ulo,
				remote:     t.to[i],
				remotePort: t.rev[i],
			})
		}
	}
	return s, nil
}

// Nodes returns the owned half-open node range.
func (s *Shard) Nodes() (lo, hi int) { return s.lo, s.hi }

// Init runs Init for every owned node (round 0). Marks and halts it
// emits are drained by the following DrainEvents call.
func (s *Shard) Init() {
	for v := s.lo; v < s.hi; v++ {
		s.net.programs[v].Init(&s.net.ctxs[v])
	}
}

// Inject stages one remote message for delivery to owned node dst on
// the given port, by setting the sending neighbor's outbox slot in the
// local replica. The next Deliver picks it up through the canonical
// port-ordered scan. It is a protocol error — not a silent drop — to
// inject onto an intra-shard port or twice onto the same port in one
// round.
func (s *Shard) Inject(dst, port int, payload Message) error {
	if dst < s.lo || dst >= s.hi {
		return fmt.Errorf("congest: inject to node %d outside shard [%d, %d)", dst, s.lo, s.hi)
	}
	t := s.net.topo
	if port < 0 || port >= t.degree(dst) {
		return fmt.Errorf("congest: inject to node %d on invalid port %d", dst, port)
	}
	i := t.start[dst] + int32(port)
	from := int(t.to[i])
	if from >= s.lo && from < s.hi {
		return fmt.Errorf("congest: inject to node %d port %d crosses no shard boundary (sender %d is owned)", dst, port, from)
	}
	sender := &s.net.ctxs[from]
	sp := t.rev[i]
	if sender.sent[sp] {
		return fmt.Errorf("congest: duplicate inject to node %d port %d", dst, port)
	}
	sender.sent[sp] = true
	sender.outbox[sp] = payload
	return nil
}

// Deliver builds the inbox of every owned node for the round about to
// execute and returns the number of messages delivered to this shard.
// It then clears the staged remote slots, restoring the replica's
// non-owned state to empty for the next round. Message counting is
// unaffected: sends are counted at the sending shard only.
func (s *Shard) Deliver() int {
	delivered := 0
	for u := s.lo; u < s.hi; u++ {
		delivered += s.net.deliverTo(u, 0)
	}
	for _, b := range s.boundary {
		rctx := &s.net.ctxs[b.remote]
		if rctx.sent[b.remotePort] {
			rctx.sent[b.remotePort] = false
			rctx.outbox[b.remotePort] = nil
		}
	}
	return delivered
}

// Inbox returns the inbox built by the last Deliver for owned node u.
// Borrowed: valid until the next Deliver, for coordinator-side stats.
func (s *Shard) Inbox(u int) []Inbound { return s.net.inboxes[u] }

// Step advances the replica's round counter and runs Step for every
// owned non-halted, non-crashed node, mirroring the in-process step
// phase (outboxes cleared for all owned nodes, halted and crashed ones
// skipped and excluded from the active count). It returns the number of
// nodes that executed Step.
func (s *Shard) Step() (active int) {
	s.net.rounds++
	for v := s.lo; v < s.hi; v++ {
		ctx := &s.net.ctxs[v]
		ctx.clearOutbox()
		if ctx.halted || s.net.nodeCrashed(v) {
			continue
		}
		active++
		s.net.programs[v].Step(ctx, s.net.inboxes[v])
	}
	return active
}

// ExternalSends calls fn for every queued send of an owned node whose
// receiver lives outside the shard, in (node ID, port) order — the
// coordinator relays these to the owning shards. dstPort is the port AT
// THE RECEIVER, i.e. the argument the receiving shard passes to Inject.
func (s *Shard) ExternalSends(fn func(dst, dstPort int, payload Message)) {
	for _, b := range s.boundary {
		ctx := &s.net.ctxs[b.owner]
		if ctx.sent[b.ownerPort] {
			fn(int(b.remote), int(b.remotePort), ctx.outbox[b.ownerPort])
		}
	}
}

// DrainEvents forwards the queued phase marks and halt events of owned
// nodes in node-ID order (marks in emission order first, then the halt
// event), exactly like the in-process probe drain, and clears them.
func (s *Shard) DrainEvents(mark func(node, round int, name string), halted func(node, round int)) {
	for v := s.lo; v < s.hi; v++ {
		ctx := &s.net.ctxs[v]
		if len(ctx.marks) > 0 {
			for _, m := range ctx.marks {
				mark(v, m.round, m.name)
			}
			ctx.marks = ctx.marks[:0]
		}
		if ctx.justHalted {
			ctx.justHalted = false
			halted(v, ctx.haltRound)
		}
	}
}

// HaltedCount returns the number of owned nodes that have halted.
func (s *Shard) HaltedCount() int {
	halted := 0
	for v := s.lo; v < s.hi; v++ {
		if s.net.ctxs[v].halted {
			halted++
		}
	}
	return halted
}

// Messages returns the messages sent so far by owned nodes.
func (s *Shard) Messages() int {
	total := 0
	for v := s.lo; v < s.hi; v++ {
		total += s.net.ctxs[v].msgs
	}
	return total
}

// Rounds returns the replica's round counter.
func (s *Shard) Rounds() int { return s.net.rounds }

// FaultCounts drains the fault events counted since the previous call
// (in practice: the round just stepped) and adds the crash node-rounds
// of OWNED crashed nodes, so summing every shard's counts for a round
// reproduces the in-process faultsRoundEnd value exactly once per
// event. Like faultsRoundEnd it also folds the result into the replica
// plan's totals. Zero value with no plan attached.
func (s *Shard) FaultCounts() faults.Counts {
	n := s.net
	if n.fs == nil {
		return faults.Counts{}
	}
	var c faults.Counts
	for w := 0; w < len(n.fs.counts); w += faultCountStride {
		c.Add(n.fs.counts[w])
		n.fs.counts[w] = faults.Counts{}
	}
	c.Crashed = int64(n.fs.plan.CrashedCountIn(n.rounds, s.lo, s.hi))
	n.fs.plan.AddCounts(c)
	return c
}

// PendingDelayed returns the number of delayed messages still buffered
// for owned receivers — the coordinator folds this into the global
// quiet check, since a round with no deliveries is not quiet while a
// delayed message is in flight somewhere.
func (s *Shard) PendingDelayed() int {
	if s.net.fs == nil {
		return 0
	}
	total := 0
	for u := s.lo; u < s.hi; u++ {
		total += len(s.net.fs.pending[u])
	}
	return total
}
