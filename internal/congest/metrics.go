package congest

// Host-side metrics for the round engines: the wall-clock analogue of the
// probe layer. Probes report what the simulated network did per round;
// the metrics registry reports what the host did executing it — per-round
// wall time, delivery throughput, worker-shard busy/idle split, and
// allocation deltas sampled via runtime.ReadMemStats at the run's phase
// marks (start and end; ReadMemStats stops the world, so it never runs
// per round).
//
// The contract matches the probe layer's exactly (DESIGN.md §3): with no
// registry attached the hot loop keeps a single nil check per round and
// the engines allocate nothing for the layer; with one attached, every
// instrument is resolved once at run start so the per-round cost is one
// clock read and a few sharded atomic adds. Worker busy time is written
// by the owning worker into a padded per-shard slot (the same sharding
// discipline as Ctx.msgs) and drained by the coordinator after the run's
// final barrier, so the parallel engine stays free of shared mutable
// state. All deterministic metrics (runs, rounds, messages) are
// bit-identical across engines and worker counts; only the wall-time
// instruments vary by host.

import (
	"fmt"
	"runtime"
	"time"

	"almostmix/internal/faults"
	"almostmix/internal/metrics"
)

// SetMetrics attaches a host-metrics registry to the network (nil
// detaches). Like SetProbe it must be called before Run and panics
// afterwards; the receiver returns itself so construction can chain.
func (n *Network) SetMetrics(reg *metrics.Registry) *Network {
	n.mustConfigure("SetMetrics")
	n.reg = reg
	return n
}

// metricsState is the per-run scratch of the metrics layer, allocated at
// run start only when a registry is attached.
type metricsState struct {
	start        time.Time
	startMem     runtime.MemStats
	roundsRun    int64
	deliveredRun int64
	roundWallNS  int64

	runs, rounds, delivered   *metrics.Counter
	runWall, allocs, gcCycles *metrics.Counter
	roundHist                 *metrics.Histogram
	msgsPerSec, roundsPerSec  *metrics.Gauge

	// Fault counters, resolved only when the run has a fault plan
	// attached (nil otherwise — the fault-free snapshot is unchanged).
	dropped, duplicated     *metrics.Counter
	delayedC, crashedRounds *metrics.Counter

	// Parallel-engine shard accounting: busyNS[w*pad] is written only by
	// the worker executing shard w's task (ordered against the
	// coordinator's run-end drain by the dispatch barriers), busyCtr and
	// idle are the exported per-shard instruments.
	busyNS  []int64
	busyCtr []*metrics.Counter
	idle    []*metrics.Gauge
}

// metricsRunStart resolves the run's instruments and samples the opening
// memstats phase mark. It returns nil (the engines' fast path) when no
// registry is attached.
func (n *Network) metricsRunStart(workers int) *metricsState {
	if n.reg == nil {
		return nil
	}
	reg := n.reg
	ms := &metricsState{
		start:        time.Now(),
		runs:         reg.Counter("congest_runs_total"),
		rounds:       reg.Counter("congest_rounds_total"),
		delivered:    reg.Counter("congest_messages_delivered_total"),
		runWall:      reg.Counter("congest_run_wall_ns_total"),
		allocs:       reg.Counter("congest_alloc_bytes_total"),
		gcCycles:     reg.Counter("congest_gc_cycles_total"),
		roundHist:    reg.Histogram("congest_round_wall_ns", metrics.WallBuckets()),
		msgsPerSec:   reg.Gauge("congest_msgs_per_sec"),
		roundsPerSec: reg.Gauge("congest_rounds_per_sec"),
	}
	if n.fs != nil {
		ms.dropped = reg.Counter("congest_msgs_dropped_total")
		ms.duplicated = reg.Counter("congest_msgs_duplicated_total")
		ms.delayedC = reg.Counter("congest_msgs_delayed_total")
		ms.crashedRounds = reg.Counter("congest_node_crash_rounds_total")
	}
	if workers > 1 {
		ms.busyNS = make([]int64, workers*pad)
		ms.busyCtr = make([]*metrics.Counter, workers)
		ms.idle = make([]*metrics.Gauge, workers)
		for w := 0; w < workers; w++ {
			ms.busyCtr[w] = reg.Counter(fmt.Sprintf("congest_worker_busy_ns_total{shard=%02d}", w))
			ms.idle[w] = reg.Gauge(fmt.Sprintf("congest_worker_idle_ns{shard=%02d}", w))
		}
	}
	runtime.ReadMemStats(&ms.startMem)
	n.ms = ms
	return ms
}

// timed wraps a phase task so the owning worker accumulates its shard's
// busy time. Each slot has a single writer per dispatch and the pool's
// barriers order writes across dispatches, so plain adds suffice.
func (ms *metricsState) timed(fn func(shard int)) func(shard int) {
	return func(w int) {
		t0 := time.Now()
		fn(w)
		ms.busyNS[w*pad] += time.Since(t0).Nanoseconds()
	}
}

// roundEnd records one executed round: its wall time into the fixed
// power-of-two histogram, plus the round and delivery counters.
func (ms *metricsState) roundEnd(t0 time.Time, delivered int, fc faults.Counts) {
	wall := time.Since(t0).Nanoseconds()
	ms.roundHist.Observe(wall)
	ms.roundWallNS += wall
	ms.roundsRun++
	ms.deliveredRun += int64(delivered)
	ms.rounds.Add(1)
	ms.delivered.Add(int64(delivered))
	if ms.dropped != nil {
		ms.dropped.Add(fc.Dropped)
		ms.duplicated.Add(fc.Duplicated)
		ms.delayedC.Add(fc.Delayed)
		ms.crashedRounds.Add(fc.Crashed)
	}
}

// runEnd closes the run: throughput gauges, the closing memstats phase
// mark, and the worker busy/idle drain. Fired from finish, so every
// engine return path lands here exactly once.
func (ms *metricsState) runEnd() {
	elapsed := time.Since(ms.start)
	ms.runs.Add(1)
	ms.runWall.Add(elapsed.Nanoseconds())
	if secs := elapsed.Seconds(); secs > 0 {
		ms.msgsPerSec.Set(float64(ms.deliveredRun) / secs)
		ms.roundsPerSec.Set(float64(ms.roundsRun) / secs)
	}
	var end runtime.MemStats
	runtime.ReadMemStats(&end)
	ms.allocs.Add(int64(end.TotalAlloc - ms.startMem.TotalAlloc))
	ms.gcCycles.Add(int64(end.NumGC - ms.startMem.NumGC))
	for w := range ms.busyCtr {
		busy := ms.busyNS[w*pad]
		ms.busyCtr[w].Add(busy)
		if idle := ms.roundWallNS - busy; idle > 0 {
			ms.idle[w].Set(float64(idle))
		} else {
			ms.idle[w].Set(0)
		}
	}
}
