package congest

// The CSR (compressed sparse row) topology: the simulator's read-only
// view of the graph, flattened into a handful of int32 arrays at
// NewNetwork so the per-round delivery scan touches contiguous memory
// and never chases per-node slice headers or map buckets.
//
// Layout: ports of node v occupy the half-open range
// [start[v], start[v+1]) of the flat arrays; entry start[v]+p describes
// port p of v in the same order as graph.Neighbors(v):
//
//	to[i]   — the neighbor across the port
//	edge[i] — the graph edge ID behind the port
//	rev[i]  — the port index AT THE NEIGHBOR leading back to v, so the
//	          receiver-driven delivery scan finds the sender's outbox
//	          slot with one array read instead of a map lookup
//
// portOf(v, u) — the inverse mapping the old implementation kept as
// []map[int]int — is answered by binary search over a per-node
// neighbor-sorted permutation (sortedTo/sortedPort), costing O(log deg)
// with zero per-node allocations. The property suite asserts it agrees
// with a map-built reference on random graphs.
//
// int32 is safe here: NewNetwork rejects graphs whose node count or
// directed-port count exceeds int32 range (the simulator's arenas would
// exceed addressable memory long before).

import (
	"fmt"
	"math"
	"sort"

	"almostmix/internal/graph"
)

// topology is the flattened adjacency, port and reverse-port table.
type topology struct {
	n     int
	start []int32 // len n+1: CSR offsets
	to    []int32 // len 2m: neighbor across each port
	edge  []int32 // len 2m: edge ID behind each port
	rev   []int32 // len 2m: port at the neighbor leading back

	// Per-node neighbor-sorted permutation for portOf lookups.
	sortedTo   []int32 // len 2m: neighbor IDs, ascending within each node
	sortedPort []int32 // len 2m: port of the matching sortedTo entry

	// edgeV[e] is the V endpoint of edge e, for directed-slot computation
	// (slot = 2e, +1 when the receiver is the V endpoint).
	edgeV []int32
}

// newTopology flattens g. Panics if the graph exceeds int32 addressing.
func newTopology(g *graph.Graph) *topology {
	n, m := g.N(), g.M()
	if int64(n) > math.MaxInt32 || 2*int64(m) > math.MaxInt32 {
		panic(fmt.Sprintf("congest: graph too large for int32 topology (n=%d, m=%d)", n, m))
	}
	t := &topology{
		n:          n,
		start:      make([]int32, n+1),
		to:         make([]int32, 2*m),
		edge:       make([]int32, 2*m),
		rev:        make([]int32, 2*m),
		sortedTo:   make([]int32, 2*m),
		sortedPort: make([]int32, 2*m),
		edgeV:      make([]int32, m),
	}
	for v := 0; v < n; v++ {
		t.start[v+1] = t.start[v] + int32(g.Degree(v))
	}
	// One pass records, per edge, the port it occupies at each endpoint;
	// a second pass derives rev from those without any map.
	portAtU := make([]int32, m)
	portAtV := make([]int32, m)
	for v := 0; v < n; v++ {
		base := t.start[v]
		for p, h := range g.Neighbors(v) {
			i := base + int32(p)
			t.to[i] = int32(h.To)
			t.edge[i] = int32(h.EdgeID)
			if g.Edge(h.EdgeID).U == v {
				portAtU[h.EdgeID] = int32(p)
			} else {
				portAtV[h.EdgeID] = int32(p)
			}
		}
	}
	for e := 0; e < m; e++ {
		t.edgeV[e] = int32(g.Edge(e).V)
	}
	for v := 0; v < n; v++ {
		lo, hi := t.start[v], t.start[v+1]
		for i := lo; i < hi; i++ {
			e := t.edge[i]
			if int(t.edgeV[e]) == v {
				t.rev[i] = portAtU[e] // v is the V endpoint; sender port is at U
			} else {
				t.rev[i] = portAtV[e]
			}
			t.sortedTo[i] = t.to[i]
			t.sortedPort[i] = i - lo
		}
		s := portSorter{to: t.sortedTo[lo:hi], port: t.sortedPort[lo:hi]}
		sort.Sort(s)
	}
	return t
}

// portSorter sorts a node's (neighbor, port) pairs by neighbor ID.
// Neighbor IDs are distinct (simple graphs), so the order is total.
type portSorter struct{ to, port []int32 }

func (s portSorter) Len() int           { return len(s.to) }
func (s portSorter) Less(i, j int) bool { return s.to[i] < s.to[j] }
func (s portSorter) Swap(i, j int) {
	s.to[i], s.to[j] = s.to[j], s.to[i]
	s.port[i], s.port[j] = s.port[j], s.port[i]
}

// degree returns the number of ports of node v.
func (t *topology) degree(v int) int { return int(t.start[v+1] - t.start[v]) }

// portOf returns the port index at v of the edge to neighbor u, or -1 if
// no such edge exists. O(log deg(v)), allocation-free.
func (t *topology) portOf(v, u int) int {
	lo, hi := t.start[v], t.start[v+1]
	target := int32(u)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.sortedTo[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < t.start[v+1] && t.sortedTo[lo] == target {
		return int(t.sortedPort[lo])
	}
	return -1
}

// slotOf returns the directed fault/probe slot of the delivery arriving
// at receiver u over the port-i entry: 2·edge, +1 when u is the edge's V
// endpoint.
func (t *topology) slotOf(i int32, u int) int {
	e := t.edge[i]
	slot := 2 * int(e)
	if int(t.edgeV[e]) == u {
		slot++
	}
	return slot
}
