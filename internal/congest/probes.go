package congest

// Built-in probes: a per-round message/congestion trace, a per-node load
// trace, and a phase timeline, each exportable as JSON and as a
// harness.Table (whose CSV method gives the RFC-4180 form). TraceSink
// bundles the three behind one Probe for the experiment binaries'
// -trace flags.
//
// All built-ins are multi-run aware: a single probe may observe several
// consecutive runs (the -trace flag of cmd/walks records every table row's
// run into one file), and every exported record carries the run's name so
// the segments stay distinguishable. Run names deliberately exclude the
// engine and worker count: traces are part of the measured results, which
// are bit-identical across engines, so the exported bytes must be too.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"almostmix/internal/cost"
	"almostmix/internal/harness"
	"almostmix/internal/metrics"
)

// RoundSample is one exported row of a RoundTrace. The fault columns
// carry omitempty tags so fault-free traces stay byte-identical to the
// pre-fault-layer export format.
type RoundSample struct {
	Run          string `json:"run,omitempty"`
	Round        int    `json:"round"`
	Delivered    int    `json:"delivered"`
	Active       int    `json:"active"`
	Halted       int    `json:"halted"`
	MaxInbox     int    `json:"max_inbox"`
	MaxInboxNode int    `json:"max_inbox_node"`
	MaxEdgeLoad  int64  `json:"max_edge_load"`
	Dropped      int    `json:"dropped,omitempty"`
	Duplicated   int    `json:"duplicated,omitempty"`
	Delayed      int    `json:"delayed,omitempty"`
	Crashed      int    `json:"crashed,omitempty"`
}

// RoundTrace records one RoundSample per executed round: the per-round
// message volume and congestion trajectory (delivered messages, active
// and halted node counts, maximum inbox, maximum directed-edge load).
// For analytic engines the max_edge_load column is the per-step
// congestion Lemma 2.5 bounds — for randomwalk.Run it equals
// Stats.PerStepMaxLoad entry for entry.
type RoundTrace struct {
	NopProbe
	run     string
	faulty  bool // any round carried fault counts → CSV grows fault columns
	Samples []RoundSample
}

// NewRoundTrace returns an empty per-round trace probe.
func NewRoundTrace() *RoundTrace { return &RoundTrace{} }

func (t *RoundTrace) RunStart(info RunInfo) { t.run = info.Name }

func (t *RoundTrace) RoundEnd(rec *RoundRecord) {
	if rec.Dropped|rec.Duplicated|rec.Delayed|rec.Crashed != 0 {
		t.faulty = true
	}
	t.Samples = append(t.Samples, RoundSample{
		Run:          t.run,
		Round:        rec.Round,
		Delivered:    rec.Delivered,
		Active:       rec.Active,
		Halted:       rec.Halted,
		MaxInbox:     rec.MaxInbox,
		MaxInboxNode: rec.MaxInboxNode,
		MaxEdgeLoad:  rec.MaxEdgeLoad,
		Dropped:      rec.Dropped,
		Duplicated:   rec.Duplicated,
		Delayed:      rec.Delayed,
		Crashed:      rec.Crashed,
	})
}

// Table renders the trace as a harness table (one row per round). The
// fault columns appear only when some observed round carried fault
// counts, keeping fault-free CSV exports byte-identical.
func (t *RoundTrace) Table() *harness.Table {
	cols := []string{"run", "round", "delivered", "active", "halted",
		"max_inbox", "max_inbox_node", "max_edge_load"}
	if t.faulty {
		cols = append(cols, "dropped", "duplicated", "delayed", "crashed")
	}
	tb := harness.NewTable("per-round trace", cols...)
	for _, s := range t.Samples {
		row := []any{s.Run, s.Round, s.Delivered, s.Active, s.Halted,
			s.MaxInbox, s.MaxInboxNode, s.MaxEdgeLoad}
		if t.faulty {
			row = append(row, s.Dropped, s.Duplicated, s.Delayed, s.Crashed)
		}
		tb.AddRow(row...)
	}
	return tb
}

// Histogram buckets the per-round max edge load by powers of two — the
// congestion distribution over the run(s).
func (t *RoundTrace) Histogram() *harness.Table {
	var buckets []int
	for _, s := range t.Samples {
		b := 0
		for v := s.MaxEdgeLoad; v > 1; v >>= 1 {
			b++
		}
		for len(buckets) <= b {
			buckets = append(buckets, 0)
		}
		buckets[b]++
	}
	tb := harness.NewTable("max edge load histogram", "load", "rounds")
	for b, c := range buckets {
		lo, hi := 1<<b, 1<<(b+1)-1
		label := fmt.Sprintf("%d", lo)
		if hi > lo {
			label = fmt.Sprintf("%d–%d", lo, hi)
		}
		tb.AddRow(label, c)
	}
	return tb
}

// NodeLoadSample is one exported row of a NodeLoadTrace: the most loaded
// node of one round.
type NodeLoadSample struct {
	Run     string `json:"run,omitempty"`
	Round   int    `json:"round"`
	Node    int    `json:"node"`
	MaxLoad int    `json:"max_load"`
}

// NodeLoadTrace records the max-load-per-node trajectory: per round, the
// node with the largest inbox and its size (the Lemma 2.4 occupancy
// quantity for walk workloads), plus cumulative per-node delivery totals
// aggregated over all observed runs.
type NodeLoadTrace struct {
	NopProbe
	run      string
	PerRound []NodeLoadSample
	// Totals[v] counts all messages delivered to node v across runs.
	Totals []int
}

// NewNodeLoadTrace returns an empty per-node load trace probe.
func NewNodeLoadTrace() *NodeLoadTrace { return &NodeLoadTrace{} }

func (t *NodeLoadTrace) RunStart(info RunInfo) {
	t.run = info.Name
	if len(t.Totals) < info.Nodes {
		grown := make([]int, info.Nodes)
		copy(grown, t.Totals)
		t.Totals = grown
	}
}

func (t *NodeLoadTrace) RoundEnd(rec *RoundRecord) {
	t.PerRound = append(t.PerRound, NodeLoadSample{
		Run:     t.run,
		Round:   rec.Round,
		Node:    rec.MaxInboxNode,
		MaxLoad: rec.MaxInbox,
	})
	for v, s := range rec.InboxSizes {
		t.Totals[v] += s
	}
}

// Table renders the per-round max-load trace.
func (t *NodeLoadTrace) Table() *harness.Table {
	tb := harness.NewTable("per-round max node load", "run", "round", "node", "max_load")
	for _, s := range t.PerRound {
		tb.AddRow(s.Run, s.Round, s.Node, s.MaxLoad)
	}
	return tb
}

// TotalsTable renders the cumulative per-node delivery totals.
func (t *NodeLoadTrace) TotalsTable() *harness.Table {
	tb := harness.NewTable("per-node delivered totals", "node", "delivered")
	for v, c := range t.Totals {
		tb.AddRow(v, c)
	}
	return tb
}

// PhaseEntry is one coalesced phase-timeline entry: all marks sharing a
// name within one run, with the round span they cover. Halt events appear
// under the reserved name "halt".
type PhaseEntry struct {
	Run        string `json:"run,omitempty"`
	Name       string `json:"name"`
	Count      int    `json:"count"`
	FirstRound int    `json:"first_round"`
	LastRound  int    `json:"last_round"`
}

// PhaseTimeline collects the named phase markers programs emit via
// Ctx.Mark, plus node halt events, coalesced by (run, name) so the export
// stays compact even when every node marks every phase.
type PhaseTimeline struct {
	NopProbe
	run     string
	Entries []PhaseEntry
	idx     map[string]int
}

// NewPhaseTimeline returns an empty phase-timeline probe.
func NewPhaseTimeline() *PhaseTimeline { return &PhaseTimeline{idx: map[string]int{}} }

func (t *PhaseTimeline) RunStart(info RunInfo) { t.run = info.Name }

func (t *PhaseTimeline) PhaseMark(node, round int, name string) { t.note(round, name) }

func (t *PhaseTimeline) NodeHalted(node, round int) { t.note(round, "halt") }

func (t *PhaseTimeline) note(round int, name string) {
	key := t.run + "\x00" + name
	if i, ok := t.idx[key]; ok {
		e := &t.Entries[i]
		e.Count++
		if round < e.FirstRound {
			e.FirstRound = round
		}
		if round > e.LastRound {
			e.LastRound = round
		}
		return
	}
	t.idx[key] = len(t.Entries)
	t.Entries = append(t.Entries, PhaseEntry{
		Run: t.run, Name: name, Count: 1, FirstRound: round, LastRound: round,
	})
}

// Table renders the timeline, one row per (run, name).
func (t *PhaseTimeline) Table() *harness.Table {
	tb := harness.NewTable("phase timeline", "run", "phase", "count", "first_round", "last_round")
	for _, e := range t.Entries {
		tb.AddRow(e.Run, e.Name, e.Count, e.FirstRound, e.LastRound)
	}
	return tb
}

// CostSample is one exported row of a cost ledger: a flattened span with
// the run it belongs to.
type CostSample struct {
	Run    string `json:"run,omitempty"`
	Path   string `json:"path"`
	Unit   string `json:"unit,omitempty"`
	Depth  int    `json:"depth"`
	Self   int    `json:"self"`
	Mul    int    `json:"mul"`
	Total  int    `json:"total"`
	Rolled int    `json:"rolled"`
}

// TimelineRow is one phase of one round of one shard as the transport
// coordinator measured it on the wall clock: how long the coordinator
// spent in the named barrier phase attributable to that shard. Shard is
// -1 for whole-barrier rows (broadcast writes) and Round is -1 for the
// pre-round accept handshake. Wall-clock rows are host-dependent, so —
// exactly like the cost ledger's span_wall_ns pairing — they are NEVER
// part of WriteJSON/WriteCSV trace exports (which must stay
// byte-identical across backends); they surface through TimelineTable,
// the metrics registry, and the transport's -obsout document.
type TimelineRow struct {
	Run    string `json:"run,omitempty"`
	Round  int    `json:"round"`
	Shard  int    `json:"shard"`
	Phase  string `json:"phase"`
	WallNS int64  `json:"wall_ns"`
}

// TraceSink bundles the three built-in probes behind one Probe, labels
// consecutive runs, collects cost-ledger breakdowns and transport
// timeline rows, and writes the combined trace to a file — JSON for
// .json paths, concatenated CSV tables otherwise. It backs the -trace
// flag of the cmd/ binaries.
type TraceSink struct {
	label    string
	reg      *metrics.Registry
	Rounds   *RoundTrace
	Loads    *NodeLoadTrace
	Phases   *PhaseTimeline
	Costs    []CostSample
	Timeline []TimelineRow
}

// NewTraceSink returns a sink with fresh built-in probes.
func NewTraceSink() *TraceSink {
	return &TraceSink{
		Rounds: NewRoundTrace(),
		Loads:  NewNodeLoadTrace(),
		Phases: NewPhaseTimeline(),
	}
}

// Label names the next run(s) observed by the sink. Engines start runs
// unnamed; a run that announces its own name (RunInfo.Name) is prefixed
// with the label instead of replaced, so "rr64d8" + "prep" exports as
// "rr64d8 prep".
func (s *TraceSink) Label(name string) *TraceSink {
	s.label = name
	return s
}

// WithMetrics pairs the sink with a host-metrics registry: every ledger
// passed to AddCosts additionally records one wall-clock counter per
// span, named "span_wall_ns{run=<run>,path=<path>}" with run and path
// exactly matching the trace's cost rows. The -trace file itself stays
// byte-deterministic (wall times never enter it); the pairing lives in
// the -metrics snapshot. A nil registry leaves the sink unchanged.
func (s *TraceSink) WithMetrics(reg *metrics.Registry) *TraceSink {
	s.reg = reg
	return s
}

func (s *TraceSink) fanout() MultiProbe { return MultiProbe{s.Rounds, s.Loads, s.Phases} }

func (s *TraceSink) RunStart(info RunInfo) {
	info.Name = strings.TrimSpace(s.label + " " + info.Name)
	s.fanout().RunStart(info)
}

func (s *TraceSink) PhaseMark(node, round int, name string) {
	s.fanout().PhaseMark(node, round, name)
}

func (s *TraceSink) NodeHalted(node, round int) { s.fanout().NodeHalted(node, round) }

func (s *TraceSink) RoundEnd(rec *RoundRecord) { s.fanout().RoundEnd(rec) }

func (s *TraceSink) RunEnd(rounds int, err error) { s.fanout().RunEnd(rounds, err) }

// AddCosts flattens a cost ledger into the sink under the given run name
// (prefixed with the sink's label like every other record). Nil or empty
// ledgers add nothing.
func (s *TraceSink) AddCosts(run string, led *cost.Ledger) {
	if led == nil {
		return
	}
	run = strings.TrimSpace(s.label + " " + run)
	for _, row := range led.Rows() {
		s.Costs = append(s.Costs, CostSample{
			Run:    run,
			Path:   row.Path,
			Unit:   row.Unit,
			Depth:  row.Depth,
			Self:   row.Self,
			Mul:    row.Mul,
			Total:  row.Total,
			Rolled: row.Rolled,
		})
	}
	if s.reg != nil {
		for _, w := range led.WallRows() {
			s.reg.Counter(fmt.Sprintf("span_wall_ns{run=%s,path=%s}", run, w.Path)).Add(w.WallNS)
		}
	}
}

// AddTimeline appends transport barrier-phase rows under the sink's
// label. The transport coordinator calls this through an interface
// assertion on Options.Probe, so any probe wanting the timeline only
// has to expose the same method. Rows never enter WriteJSON/WriteCSV:
// wall clocks are host noise and the trace files are part of the
// byte-identical differential contract (DESIGN.md §3).
func (s *TraceSink) AddTimeline(rows []TimelineRow) {
	for _, r := range rows {
		r.Run = strings.TrimSpace(s.label + " " + r.Run)
		s.Timeline = append(s.Timeline, r)
	}
}

// TimelineTable renders the collected transport timeline as a harness
// table — the "transport-timeline" export cmd/obsreport joins against
// the cost ledger's span_wall_ns paths.
func (s *TraceSink) TimelineTable() *harness.Table {
	tb := harness.NewTable("transport-timeline", "run", "round", "shard", "phase", "wall_ns")
	for _, r := range s.Timeline {
		tb.AddRow(r.Run, r.Round, r.Shard, r.Phase, r.WallNS)
	}
	return tb
}

// CostTable renders the collected cost-ledger rows as a harness table.
func (s *TraceSink) CostTable() *harness.Table {
	tb := harness.NewTable("cost ledger",
		"run", "path", "unit", "depth", "self", "mul", "total", "rolled")
	for _, c := range s.Costs {
		tb.AddRow(c.Run, c.Path, c.Unit, c.Depth, c.Self, c.Mul, c.Total, c.Rolled)
	}
	return tb
}

// traceJSON is the on-disk JSON shape of a TraceSink.
type traceJSON struct {
	Rounds     []RoundSample    `json:"rounds"`
	NodeLoads  []NodeLoadSample `json:"node_loads"`
	NodeTotals []int            `json:"node_totals"`
	Phases     []PhaseEntry     `json:"phases"`
	Costs      []CostSample     `json:"costs,omitempty"`
}

// WriteJSON writes the combined trace as one JSON document.
func (s *TraceSink) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traceJSON{
		Rounds:     s.Rounds.Samples,
		NodeLoads:  s.Loads.PerRound,
		NodeTotals: s.Loads.Totals,
		Phases:     s.Phases.Entries,
		Costs:      s.Costs,
	})
}

// WriteCSV writes the combined trace as consecutive CSV tables separated
// by blank lines, in the order: per-round trace, per-round max node load,
// per-node totals, phase timeline, cost ledger.
func (s *TraceSink) WriteCSV(w io.Writer) error {
	for i, tb := range []*harness.Table{
		s.Rounds.Table(), s.Loads.Table(), s.Loads.TotalsTable(), s.Phases.Table(),
		s.CostTable(),
	} {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, tb.CSV()); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes the trace to path: JSON when the extension is .json,
// CSV otherwise. Every I/O error (create, write or close) is returned,
// wrapped with the path, so the cmd binaries can propagate export
// failures to their exit code instead of best-effort writing.
func (s *TraceSink) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if filepath.Ext(path) == ".json" {
		err = s.WriteJSON(f)
	} else {
		err = s.WriteCSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trace: write %s: %w", path, err)
	}
	return nil
}
