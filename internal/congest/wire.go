package congest

// Wire adapters for the transport layer (internal/transport): exported
// program builders and payload codecs for this package's primitives.
// Payload types are deliberately unexported — programs exchange them as
// opaque Message values — so the byte codecs that ship them across
// process boundaries live here, next to the types they encode.
//
// Codec contract: Encode appends the payload's canonical byte form to
// buf and returns the extended slice; Decode parses exactly the bytes
// Encode produced and rejects trailing garbage. Both are pure, so every
// shard process decodes a payload into the same value the sender held.

import (
	"encoding/binary"
	"fmt"

	"almostmix/internal/graph"
)

// BFSPrograms returns per-node programs flooding a BFS tree from root,
// plus the shared result they record into. Run with RunUntilQuiet and a
// budget of 2·n+4 rounds (see BFS); node v's Parent/Dist entries are
// valid only on the process that owns node v.
func BFSPrograms(g *graph.Graph, root int) ([]Program, *BFSResult) {
	res := &BFSResult{
		Root:   root,
		Parent: make([]int, g.N()),
		Dist:   make([]int, g.N()),
	}
	for v := range res.Parent {
		res.Parent[v] = -1
		res.Dist[v] = -1
	}
	programs := make([]Program, g.N())
	for v := range programs {
		programs[v] = &bfsProgram{root: v == root, res: res}
	}
	return programs, res
}

// EncodeBFSPayload appends the canonical encoding of a BFS token.
func EncodeBFSPayload(buf []byte, m Message) ([]byte, error) {
	tok, ok := m.(bfsToken)
	if !ok {
		return nil, fmt.Errorf("congest: BFS payload codec got %T", m)
	}
	return binary.AppendUvarint(buf, uint64(tok.dist)), nil
}

// DecodeBFSPayload parses the bytes EncodeBFSPayload produced.
func DecodeBFSPayload(b []byte) (Message, error) {
	d, n := binary.Uvarint(b)
	if n <= 0 || n != len(b) {
		return nil, fmt.Errorf("congest: malformed BFS payload (%d bytes)", len(b))
	}
	return bfsToken{dist: int(d)}, nil
}

// FloodPrograms returns per-node programs flooding the integer value
// from root (the wire-friendly restriction of BroadcastFrom), plus the
// shared per-node output slice. Run with RunUntilQuiet and a budget of
// 2·n+4 rounds; out[v] is valid only on the process owning node v.
func FloodPrograms(g *graph.Graph, root, value int) ([]Program, []Message) {
	out := make([]Message, g.N())
	programs := make([]Program, g.N())
	for v := range programs {
		programs[v] = &floodProgram{root: v == root, value: value, out: out}
	}
	return programs, out
}

// EncodeFloodPayload appends the canonical encoding of a flood value
// (an int, as built by FloodPrograms).
func EncodeFloodPayload(buf []byte, m Message) ([]byte, error) {
	v, ok := m.(int)
	if !ok {
		return nil, fmt.Errorf("congest: flood payload codec got %T", m)
	}
	return binary.AppendVarint(buf, int64(v)), nil
}

// DecodeFloodPayload parses the bytes EncodeFloodPayload produced.
func DecodeFloodPayload(b []byte) (Message, error) {
	v, n := binary.Varint(b)
	if n <= 0 || n != len(b) {
		return nil, fmt.Errorf("congest: malformed flood payload (%d bytes)", len(b))
	}
	return int(v), nil
}

// SlotTable answers the directed-slot computation of the probe layer —
// RoundRecord.EdgeLoad[Slot(u, port)] is the delivery count of the port
// as seen at receiver u — for observers outside the package (the TCP
// transport coordinator rebuilds byte-identical RoundRecords from
// per-shard inbox profiles with it). It is a read-only flattened view
// of the graph, safe for concurrent use.
type SlotTable struct{ t *topology }

// NewSlotTable flattens g's topology for slot lookups.
func NewSlotTable(g *graph.Graph) *SlotTable { return &SlotTable{t: newTopology(g)} }

// Slot returns the directed EdgeLoad index of a delivery arriving at
// node u over the given port (see RoundRecord.EdgeLoad).
func (s *SlotTable) Slot(u, port int) int {
	return s.t.slotOf(s.t.start[u]+int32(port), u)
}

// EncodeTickPayload appends the (empty) canonical encoding of Tick.
func EncodeTickPayload(buf []byte, m Message) ([]byte, error) {
	if _, ok := m.(tickToken); !ok {
		return nil, fmt.Errorf("congest: tick payload codec got %T", m)
	}
	return buf, nil
}

// DecodeTickPayload parses the bytes EncodeTickPayload produced.
func DecodeTickPayload(b []byte) (Message, error) {
	if len(b) != 0 {
		return nil, fmt.Errorf("congest: malformed tick payload (%d bytes)", len(b))
	}
	return Tick, nil
}
