package congest

import (
	"fmt"

	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

// BFSResult describes a breadth-first spanning tree computed distributedly.
type BFSResult struct {
	Root   int
	Parent []int // Parent[v] = BFS parent, -1 for the root
	Dist   []int // Dist[v] = hop distance from the root
	Rounds int   // CONGEST rounds consumed
}

// Depth returns the depth of the BFS tree (= eccentricity of the root).
func (r *BFSResult) Depth() int {
	depth := 0
	for _, d := range r.Dist {
		if d > depth {
			depth = d
		}
	}
	return depth
}

type bfsProgram struct {
	root   bool
	dist   int
	parent int
	res    *BFSResult
}

type bfsToken struct{ dist int }

func (p *bfsProgram) Init(ctx *Ctx) {
	p.dist = -1
	p.parent = -1
	if p.root {
		p.dist = 0
		ctx.Broadcast(bfsToken{dist: 0})
	}
}

func (p *bfsProgram) Step(ctx *Ctx, inbox []Inbound) {
	if p.dist >= 0 {
		p.record(ctx)
		return
	}
	for _, in := range inbox {
		tok, ok := in.Payload.(bfsToken)
		if !ok {
			panic(fmt.Sprintf("congest: BFS node %d got %T", ctx.ID(), in.Payload))
		}
		if p.dist < 0 {
			p.dist = tok.dist + 1
			p.parent = in.From
			ctx.Broadcast(bfsToken{dist: p.dist})
		}
	}
	if p.dist >= 0 {
		p.record(ctx)
	}
}

func (p *bfsProgram) record(ctx *Ctx) {
	p.res.Parent[ctx.ID()] = p.parent
	p.res.Dist[ctx.ID()] = p.dist
	ctx.Halt()
}

// BFS builds a BFS tree rooted at root by distributed flooding. It costs
// O(D) rounds and returns the tree along with the measured round count.
func BFS(g *graph.Graph, root int, src *rngutil.Source) (*BFSResult, error) {
	res := &BFSResult{
		Root:   root,
		Parent: make([]int, g.N()),
		Dist:   make([]int, g.N()),
	}
	for v := range res.Parent {
		res.Parent[v] = -1
		res.Dist[v] = -1
	}
	net := NewUniformNetwork(g, func(v int) Program {
		return &bfsProgram{root: v == root, res: res}
	}, src)
	rounds, err := net.RunUntilQuiet(2*g.N() + 4)
	if err != nil {
		return nil, fmt.Errorf("bfs: %w", err)
	}
	res.Rounds = rounds
	return res, nil
}

type leaderProgram struct {
	best   int
	result []int
}

func (p *leaderProgram) Init(ctx *Ctx) {
	p.best = ctx.ID()
	ctx.Broadcast(p.best)
}

func (p *leaderProgram) Step(ctx *Ctx, inbox []Inbound) {
	improved := false
	for _, in := range inbox {
		id, ok := in.Payload.(int)
		if !ok {
			panic(fmt.Sprintf("congest: leader node %d got %T", ctx.ID(), in.Payload))
		}
		if id > p.best {
			p.best = id
			improved = true
		}
	}
	if improved {
		ctx.Broadcast(p.best)
	}
	p.result[ctx.ID()] = p.best
}

// ElectLeader floods the maximum node ID; every node learns the leader.
// It costs O(D) rounds (with quiescence detection) and returns the leader
// ID and the measured round count.
func ElectLeader(g *graph.Graph, src *rngutil.Source) (leader, rounds int, err error) {
	result := make([]int, g.N())
	net := NewUniformNetwork(g, func(v int) Program {
		return &leaderProgram{result: result}
	}, src)
	rounds, err = net.RunUntilQuiet(2*g.N() + 4)
	if err != nil {
		return 0, rounds, fmt.Errorf("leader election: %w", err)
	}
	leader = result[0]
	for v, got := range result {
		if got != leader {
			return 0, rounds, fmt.Errorf("leader election: node %d decided %d, node 0 decided %d", v, got, leader)
		}
	}
	return leader, rounds, nil
}

// BroadcastFrom floods a value from the root; every node learns it. The
// returned rounds count measures the flood. The value must fit in one
// CONGEST message (O(log n) bits).
func BroadcastFrom(g *graph.Graph, root int, value Message, src *rngutil.Source) (values []Message, rounds int, err error) {
	values = make([]Message, g.N())
	net := NewUniformNetwork(g, func(v int) Program {
		return &floodProgram{root: v == root, value: value, out: values}
	}, src)
	rounds, err = net.RunUntilQuiet(2*g.N() + 4)
	if err != nil {
		return nil, rounds, fmt.Errorf("broadcast: %w", err)
	}
	return values, rounds, nil
}

type floodProgram struct {
	root  bool
	value Message
	got   bool
	out   []Message
}

func (p *floodProgram) Init(ctx *Ctx) {
	if p.root {
		p.got = true
		p.out[ctx.ID()] = p.value
		ctx.Broadcast(p.value)
	}
}

func (p *floodProgram) Step(ctx *Ctx, inbox []Inbound) {
	if p.got {
		ctx.Halt()
		return
	}
	if len(inbox) > 0 {
		p.got = true
		p.out[ctx.ID()] = inbox[0].Payload
		ctx.Broadcast(inbox[0].Payload)
		ctx.Halt()
	}
}

// ConvergecastSum computes the sum of per-node float values up a BFS tree
// to the root, distributedly, and returns the total (as known by the
// root) plus the measured round count.
func ConvergecastSum(g *graph.Graph, tree *BFSResult, values []float64, src *rngutil.Source) (float64, int, error) {
	depth := tree.Depth()
	totals := make([]float64, g.N())
	net := NewUniformNetwork(g, func(v int) Program {
		return &sumProgram{tree: tree, depth: depth, value: values[v], totals: totals}
	}, src)
	rounds, err := net.Run(depth + 2)
	if err != nil {
		return 0, rounds, fmt.Errorf("convergecast: %w", err)
	}
	return totals[tree.Root], rounds, nil
}

type sumProgram struct {
	tree   *BFSResult
	depth  int
	value  float64
	acc    float64
	totals []float64
}

func (p *sumProgram) Init(_ *Ctx) { p.acc = p.value }

func (p *sumProgram) Step(ctx *Ctx, inbox []Inbound) {
	for _, in := range inbox {
		p.acc += in.Payload.(float64)
	}
	v := ctx.ID()
	// Level ℓ nodes forward to their parents in round depth−ℓ+1, so each
	// node receives all children's partial sums before it forwards.
	sendRound := p.depth - p.tree.Dist[v] + 1
	switch {
	case ctx.Round() == sendRound && p.tree.Parent[v] >= 0:
		if port := ctx.PortTo(p.tree.Parent[v]); port >= 0 {
			ctx.Send(port, p.acc)
		}
		p.totals[v] = p.acc
		ctx.Halt()
	case ctx.Round() > sendRound:
		p.totals[v] = p.acc
		ctx.Halt()
	}
}
