package congest

import (
	"testing"

	"almostmix/internal/faults"
	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

// Node 1 receives a token in round 1 and would forward it in its next
// step, but crashes rounds 2..4 (recovers at round 5). The network is
// silent while it is crashed; on recovery it should forward the token.
func TestScratchQuietRecovery(t *testing.T) {
	g := graph.Path(3)
	plan := faults.New(1).WithCrash(1, 2, 3)
	pending := false
	got := 0
	net := NewUniformNetwork(g, func(v int) Program {
		return programFunc{
			init: func(ctx *Ctx) {
				if ctx.ID() == 0 {
					ctx.Send(0, "token")
				}
			},
			step: func(ctx *Ctx, inbox []Inbound) {
				switch ctx.ID() {
				case 1:
					if len(inbox) > 0 {
						pending = true
						return // forward on NEXT step (queued state)
					}
					if pending {
						pending = false
						ctx.Send(1, "token") // toward node 2
					}
				case 2:
					got += len(inbox)
				}
			},
		}
	}, rngutil.NewSource(1)).SetFaults(plan)
	rounds, err := net.RunUntilQuiet(50)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("rounds=%d got=%d", rounds, got)
	if got != 1 {
		t.Fatalf("node 2 received %d tokens, want 1 (recovery round never executed?)", got)
	}
}
