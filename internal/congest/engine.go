package congest

// The parallel round engine. Rounds alternate two sharded phases separated
// by barriers:
//
//	deliver: each worker builds the inboxes of its receiver shard,
//	         receiver-driven — a receiver scans its own ports in order and
//	         reads the matching outbox slot of the sender across each
//	         port. Outboxes are only read in this phase.
//	step:    each worker clears the outboxes of its shard and calls Step
//	         on its non-halted nodes. Each node's outbox, RNG and program
//	         state are touched only by the worker owning its shard.
//
// Because inboxes are assembled in port order at the receiver (the same
// canonical order the sequential engine uses) and every node is owned by
// exactly one worker per phase, the execution is bit-identical to the
// sequential reference engine for every worker count: same rounds, same
// message counts, same per-node final state, same per-node RNG
// consumption. Parallelism changes wall-clock time only.
//
// Message accounting is sharded per node (Ctx.msgs, incremented only by
// the owning worker) and aggregated by Network.Messages after the run, so
// the engine has no shared mutable counters at all; the only cross-worker
// communication is the read-only outbox scan in the deliver phase, which
// the barriers order against the writes of the neighboring step phases.

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// normalizeWorkers resolves a worker-count request: values <= 0 select one
// worker per available CPU.
func normalizeWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// pad keeps per-worker counters on distinct cache lines.
const pad = 8

// workerPool is a fixed set of goroutines executing one task per shard per
// phase. Program panics are captured and re-raised on the coordinating
// goroutine, preserving the sequential engine's panic semantics.
type workerPool struct {
	tasks chan poolTask
	wg    sync.WaitGroup

	mu     sync.Mutex
	panics []any
}

type poolTask struct {
	fn    func(shard int)
	shard int
}

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{tasks: make(chan poolTask, workers)}
	for i := 0; i < workers; i++ {
		go func() {
			for t := range p.tasks {
				p.runOne(t)
			}
		}()
	}
	return p
}

func (p *workerPool) runOne(t poolTask) {
	defer p.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			p.mu.Lock()
			p.panics = append(p.panics, r)
			p.mu.Unlock()
		}
	}()
	t.fn(t.shard)
}

// dispatch runs fn once per shard and waits for all shards to finish. If
// any shard panicked, the first panic is re-raised here.
func (p *workerPool) dispatch(shards int, fn func(shard int)) {
	p.wg.Add(shards)
	for w := 0; w < shards; w++ {
		p.tasks <- poolTask{fn: fn, shard: w}
	}
	p.wg.Wait()
	if len(p.panics) > 0 {
		r := p.panics[0]
		p.panics = nil
		panic(r)
	}
}

func (p *workerPool) close() { close(p.tasks) }

// runParallel executes rounds on the sharded engine. Nodes are split into
// contiguous shards, one per worker; see the package comment above for the
// phase structure and the determinism argument.
func (n *Network) runParallel(maxRounds, workers int, quiet bool) (int, error) {
	if err := n.begin(); err != nil {
		return n.rounds, err
	}
	nNodes := n.g.N()
	if workers > nNodes {
		workers = nNodes
	}
	if workers < 1 {
		workers = 1
	}
	n.probeRunStart("parallel", workers)
	n.faultsRunStart(workers)
	ms := n.metricsRunStart(workers)
	for v, prog := range n.programs {
		prog.Init(&n.ctxs[v])
	}
	if n.probe != nil {
		n.probeDrainEvents() // marks/halts emitted during Init, round 0
	}
	bounds := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		bounds[w] = w * nNodes / workers
	}
	delivered := make([]int, workers*pad)

	deliverPhase := func(w int) {
		count := 0
		for u := bounds[w]; u < bounds[w+1]; u++ {
			count += n.deliverTo(u, w)
		}
		delivered[w*pad] = count
	}
	stepPhase := func(w int) {
		for v := bounds[w]; v < bounds[w+1]; v++ {
			ctx := &n.ctxs[v]
			ctx.clearOutbox()
			if ctx.halted || n.nodeCrashed(v) {
				continue
			}
			n.programs[v].Step(ctx, n.inboxes[v])
		}
	}

	// With metrics attached, wrap both phase tasks so each worker
	// accumulates its shard's busy time; the fast path keeps the bare
	// closures.
	deliver, step := deliverPhase, stepPhase
	if ms != nil {
		deliver, step = ms.timed(deliverPhase), ms.timed(stepPhase)
	}
	sumDelivered := func() int {
		total := 0
		for w := 0; w < workers; w++ {
			total += delivered[w*pad]
		}
		return total
	}

	pool := newWorkerPool(workers)
	defer pool.close()
	for r := 0; r < maxRounds; r++ {
		if n.allHalted() {
			return n.finish(nil)
		}
		var t0 time.Time
		if ms != nil {
			t0 = time.Now()
		}
		pool.dispatch(workers, deliver)
		if quiet && r > 0 && sumDelivered() == 0 && n.faultsQuiet() {
			return n.finish(nil)
		}
		n.rounds++
		// The probe's active count (nodes about to step) is read here, on
		// the coordinator, between the deliver and step barriers.
		active := 0
		if n.probe != nil {
			for v := range n.ctxs {
				if !n.ctxs[v].halted && !n.nodeCrashed(v) {
					active++
				}
			}
		}
		pool.dispatch(workers, step)
		fc := n.faultsRoundEnd()
		if n.probe != nil {
			n.probeRoundFlush(sumDelivered(), active, fc)
		}
		if ms != nil {
			ms.roundEnd(t0, sumDelivered(), fc)
		}
	}
	if n.allHalted() {
		return n.finish(nil)
	}
	return n.finish(fmt.Errorf("after %d rounds: %w", n.rounds, ErrRoundLimit))
}
