package congest

// Tests of the probe layer: the per-round records and event streams the
// engines emit, the regression guards for the lifecycle bugs (stale
// Ctx.Round after Halt, silent Network reuse), and the built-in probes'
// exporters.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"almostmix/internal/cost"
	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

// recordingProbe formats every hook invocation into one string, copying
// the borrowed slices so records can be compared after the run. The
// engine and worker count are deliberately excluded from the start event:
// the stream must be bit-identical across engines.
type recordingProbe struct {
	events []string
}

func (p *recordingProbe) RunStart(info RunInfo) {
	p.events = append(p.events, fmt.Sprintf("start name=%q n=%d m=%d", info.Name, info.Nodes, info.Edges))
}

func (p *recordingProbe) PhaseMark(node, round int, name string) {
	p.events = append(p.events, fmt.Sprintf("mark node=%d round=%d name=%q", node, round, name))
}

func (p *recordingProbe) NodeHalted(node, round int) {
	p.events = append(p.events, fmt.Sprintf("halt node=%d round=%d", node, round))
}

func (p *recordingProbe) RoundEnd(rec *RoundRecord) {
	e := fmt.Sprintf(
		"round=%d delivered=%d active=%d halted=%d maxInbox=%d@%d maxEdge=%d inboxes=%v edges=%v",
		rec.Round, rec.Delivered, rec.Active, rec.Halted,
		rec.MaxInbox, rec.MaxInboxNode, rec.MaxEdgeLoad,
		append([]int(nil), rec.InboxSizes...), append([]int64(nil), rec.EdgeLoad...))
	// Fault counts only when present, so fault-free want-strings stay short.
	if rec.Dropped|rec.Duplicated|rec.Delayed|rec.Crashed != 0 {
		e += fmt.Sprintf(" faults=%d/%d/%d/%d",
			rec.Dropped, rec.Duplicated, rec.Delayed, rec.Crashed)
	}
	p.events = append(p.events, e)
}

func (p *recordingProbe) RunEnd(rounds int, err error) {
	p.events = append(p.events, fmt.Sprintf("end rounds=%d err=%v", rounds, err))
}

// TestProbeRoundRecord checks every field of the aggregated round record
// on a path graph where the traffic is known exactly: one broadcast round,
// then silence.
func TestProbeRoundRecord(t *testing.T) {
	g := graph.Path(3) // edges 0-1, 1-2; node 1 has degree 2
	rec := &recordingProbe{}
	net := NewUniformNetwork(g, func(v int) Program {
		return programFunc{
			init: func(ctx *Ctx) { ctx.Broadcast("ping") },
			step: func(ctx *Ctx, _ []Inbound) { ctx.Halt() },
		}
	}, rngutil.NewSource(1)).SetProbe(rec)
	if _, err := net.Run(5); err != nil {
		t.Fatal(err)
	}
	want := []string{
		`start name="" n=3 m=2`,
		"halt node=0 round=1",
		"halt node=1 round=1",
		"halt node=2 round=1",
		"round=1 delivered=4 active=3 halted=3 maxInbox=2@1 maxEdge=1 inboxes=[1 2 1] edges=[1 1 1 1]",
		"end rounds=1 err=<nil>",
	}
	if fmt.Sprint(rec.events) != fmt.Sprint(want) {
		t.Fatalf("event stream:\n got %q\nwant %q", rec.events, want)
	}
}

// TestProbePhaseMarks checks that Ctx.Mark events reach the probe with
// the emitting node, the correct round (0 for Init), and in node-ID
// order, and that Tracing reports the probe's presence.
func TestProbePhaseMarks(t *testing.T) {
	g := graph.Ring(3)
	rec := &recordingProbe{}
	net := NewUniformNetwork(g, func(v int) Program {
		return programFunc{
			init: func(ctx *Ctx) {
				if !ctx.Tracing() {
					t.Error("Tracing() = false with a probe attached")
				}
				ctx.Mark("boot")
			},
			step: func(ctx *Ctx, _ []Inbound) {
				if ctx.ID() == 2 {
					ctx.Mark(fmt.Sprintf("step %d", ctx.Round()))
				}
				if ctx.Round() >= 2 {
					ctx.Halt()
				}
			},
		}
	}, rngutil.NewSource(1)).SetProbe(rec)
	if _, err := net.Run(10); err != nil {
		t.Fatal(err)
	}
	var marks []string
	for _, e := range rec.events {
		if strings.HasPrefix(e, "mark") {
			marks = append(marks, e)
		}
	}
	want := []string{
		`mark node=0 round=0 name="boot"`,
		`mark node=1 round=0 name="boot"`,
		`mark node=2 round=0 name="boot"`,
		`mark node=2 round=1 name="step 1"`,
		`mark node=2 round=2 name="step 2"`,
	}
	if fmt.Sprint(marks) != fmt.Sprint(want) {
		t.Fatalf("marks:\n got %q\nwant %q", marks, want)
	}
}

// TestMarkWithoutProbeIsNoop: Ctx.Mark and Tracing must be free and safe
// when no probe is attached.
func TestMarkWithoutProbeIsNoop(t *testing.T) {
	g := graph.Ring(3)
	net := NewUniformNetwork(g, func(v int) Program {
		return programFunc{init: func(ctx *Ctx) {
			if ctx.Tracing() {
				t.Error("Tracing() = true without a probe")
			}
			ctx.Mark("dropped")
			ctx.Halt()
		}}
	}, rngutil.NewSource(1))
	if _, err := net.Run(2); err != nil {
		t.Fatal(err)
	}
}

// TestCtxRoundAdvancesAfterHalt is the regression test for the stale-
// round bug: a node that halts early must still observe the global round
// counter advancing, not the round it halted in.
func TestCtxRoundAdvancesAfterHalt(t *testing.T) {
	g := graph.Ring(4)
	var ctx0 *Ctx
	net := NewUniformNetwork(g, func(v int) Program {
		return programFunc{
			init: func(ctx *Ctx) {
				if ctx.ID() == 0 {
					ctx0 = ctx
				}
			},
			step: func(ctx *Ctx, _ []Inbound) {
				if ctx.ID() == 0 || ctx.Round() >= 5 {
					ctx.Halt()
				}
			},
		}
	}, rngutil.NewSource(1))
	if _, err := net.Run(10); err != nil {
		t.Fatal(err)
	}
	if net.Rounds() != 5 {
		t.Fatalf("network ran %d rounds, want 5", net.Rounds())
	}
	if got := ctx0.Round(); got != net.Rounds() {
		t.Fatalf("halted node's Round() = %d, want the global %d", got, net.Rounds())
	}
}

// TestNetworkSingleUse: a second run through any entry point must fail
// loudly with ErrNetworkReused instead of silently corrupting state.
func TestNetworkSingleUse(t *testing.T) {
	build := func() *Network {
		return NewUniformNetwork(graph.Ring(4), func(v int) Program {
			return programFunc{}
		}, rngutil.NewSource(1))
	}
	rerun := map[string]func(n *Network) (int, error){
		"Run":           func(n *Network) (int, error) { return n.Run(5) },
		"RunParallel":   func(n *Network) (int, error) { return n.RunParallel(5, 2) },
		"RunUntilQuiet": func(n *Network) (int, error) { return n.RunUntilQuiet(5) },
	}
	for name, second := range rerun {
		net := build()
		rounds, err := net.Run(5)
		if err != nil {
			t.Fatalf("%s: first run: %v", name, err)
		}
		got, err := second(net)
		if !errors.Is(err, ErrNetworkReused) {
			t.Fatalf("%s after Run: err = %v, want ErrNetworkReused", name, err)
		}
		if got != rounds || net.Rounds() != rounds {
			t.Fatalf("%s: rejected rerun changed the round count: %d, want %d", name, got, rounds)
		}
	}
}

// TestNetworkSingleUseEmitsNoSpuriousEvents: a rejected rerun never ran,
// so it must not append any events to an attached probe — the stream
// stays one balanced RunStart…RunEnd.
func TestNetworkSingleUseEmitsNoSpuriousEvents(t *testing.T) {
	rec := &recordingProbe{}
	net := NewUniformNetwork(graph.Ring(3), func(v int) Program {
		return programFunc{}
	}, rngutil.NewSource(1)).SetProbe(rec)
	if _, err := net.Run(3); err != nil {
		t.Fatal(err)
	}
	before := len(rec.events)
	if _, err := net.Run(3); !errors.Is(err, ErrNetworkReused) {
		t.Fatalf("second run: %v", err)
	}
	if len(rec.events) != before {
		t.Fatalf("rejected rerun emitted events: %q", rec.events[before:])
	}
}

// TestWorkerPoolMultiShardPanic: when several shards panic in one
// dispatch, exactly one panic propagates and the pool remains usable for
// the next dispatch.
func TestWorkerPoolMultiShardPanic(t *testing.T) {
	pool := newWorkerPool(4)
	defer pool.close()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("no panic propagated from the pool")
			}
			if s, ok := r.(string); !ok || !strings.HasPrefix(s, "shard ") {
				t.Fatalf("unexpected panic payload %v", r)
			}
		}()
		pool.dispatch(4, func(shard int) {
			panic(fmt.Sprintf("shard %d", shard))
		})
	}()
	// The pool must have cleared the captured panics and stay usable.
	var hits [4]bool
	pool.dispatch(4, func(shard int) { hits[shard] = true })
	for shard, ok := range hits {
		if !ok {
			t.Fatalf("shard %d did not run after the panicking dispatch", shard)
		}
	}
}

// alwaysSend keeps one message per round in flight so RunUntilQuiet never
// observes silence.
type alwaysSend struct{}

func (alwaysSend) Init(ctx *Ctx) { ctx.Send(0, "tick") }
func (alwaysSend) Step(ctx *Ctx, _ []Inbound) {
	ctx.Send(0, "tick")
}

// TestRoundLimitErrorsIdenticalAcrossEngines: both engines, through both
// Run and RunUntilQuiet, must fail the round limit with the same error
// text and the same wrapped sentinel.
func TestRoundLimitErrorsIdenticalAcrossEngines(t *testing.T) {
	for _, quiet := range []bool{false, true} {
		build := func() *Network {
			return NewUniformNetwork(graph.Ring(4), func(v int) Program {
				return alwaysSend{}
			}, rngutil.NewSource(1))
		}
		run := func(net *Network, workers int) (int, error) {
			net.SetWorkers(workers)
			if quiet {
				return net.RunUntilQuiet(5)
			}
			return net.Run(5)
		}
		seqNet := build()
		seqRounds, seqErr := run(seqNet, 1)
		if !errors.Is(seqErr, ErrRoundLimit) {
			t.Fatalf("quiet=%v: sequential err = %v, want ErrRoundLimit", quiet, seqErr)
		}
		for _, workers := range []int{2, 8} {
			parNet := build()
			parRounds, parErr := run(parNet, workers)
			if !errors.Is(parErr, ErrRoundLimit) {
				t.Fatalf("quiet=%v workers=%d: err = %v, want ErrRoundLimit", quiet, workers, parErr)
			}
			if parErr.Error() != seqErr.Error() || parRounds != seqRounds {
				t.Fatalf("quiet=%v workers=%d: (rounds=%d, err=%q) diverges from sequential (rounds=%d, err=%q)",
					quiet, workers, parRounds, parErr, seqRounds, seqErr)
			}
		}
	}
}

// TestTraceSinkExporters runs a small workload through the bundled sink
// and checks both export formats round-trip the expected records.
func TestTraceSinkExporters(t *testing.T) {
	g := graph.Ring(4)
	sink := NewTraceSink().Label("unit")
	net := NewUniformNetwork(g, func(v int) Program {
		return programFunc{
			init: func(ctx *Ctx) {
				ctx.Mark("boot")
				ctx.Broadcast("ping")
			},
			step: func(ctx *Ctx, _ []Inbound) { ctx.Halt() },
		}
	}, rngutil.NewSource(1)).SetProbe(sink)
	if _, err := net.Run(5); err != nil {
		t.Fatal(err)
	}

	if len(sink.Rounds.Samples) != 1 {
		t.Fatalf("round samples = %d, want 1", len(sink.Rounds.Samples))
	}
	s := sink.Rounds.Samples[0]
	if s.Run != "unit" || s.Round != 1 || s.Delivered != 2*g.M() || s.MaxEdgeLoad != 1 {
		t.Fatalf("round sample %+v", s)
	}

	var buf bytes.Buffer
	if err := sink.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Rounds []RoundSample `json:"rounds"`
		Phases []PhaseEntry  `json:"phases"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	if len(doc.Rounds) != 1 || doc.Rounds[0] != s {
		t.Fatalf("JSON rounds %+v, want [%+v]", doc.Rounds, s)
	}
	// "boot" marks from all 4 nodes coalesce; halts appear as "halt".
	byName := map[string]PhaseEntry{}
	for _, e := range doc.Phases {
		byName[e.Name] = e
	}
	if e := byName["boot"]; e.Count != 4 || e.FirstRound != 0 || e.LastRound != 0 {
		t.Fatalf("boot phase entry %+v", e)
	}
	if e := byName["halt"]; e.Count != 4 || e.FirstRound != 1 {
		t.Fatalf("halt phase entry %+v", e)
	}

	buf.Reset()
	if err := sink.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	for _, header := range []string{
		"run,round,delivered,active,halted,max_inbox,max_inbox_node,max_edge_load",
		"run,round,node,max_load",
		"node,delivered",
		"run,phase,count,first_round,last_round",
	} {
		if !strings.Contains(csv, header) {
			t.Fatalf("CSV export missing header %q:\n%s", header, csv)
		}
	}

	if sink.Rounds.Histogram().NumRows() == 0 {
		t.Fatal("histogram is empty")
	}
	if got := sink.Loads.Totals[0]; got != 2 {
		t.Fatalf("node 0 delivered total = %d, want 2", got)
	}
}

// TestMultiProbeFansOut: every hook must reach every member, in order.
func TestMultiProbeFansOut(t *testing.T) {
	a, b := &recordingProbe{}, &recordingProbe{}
	net := NewUniformNetwork(graph.Ring(3), func(v int) Program {
		return programFunc{init: func(ctx *Ctx) { ctx.Halt() }}
	}, rngutil.NewSource(1)).SetProbe(MultiProbe{a, b})
	if _, err := net.Run(2); err != nil {
		t.Fatal(err)
	}
	if len(a.events) == 0 || fmt.Sprint(a.events) != fmt.Sprint(b.events) {
		t.Fatalf("fan-out diverged:\n a=%q\n b=%q", a.events, b.events)
	}
}

func TestTraceSinkCosts(t *testing.T) {
	led := cost.New("demo", "base rounds")
	led.Open("prep", "base rounds", 1)
	led.Charge(3)
	led.Close()
	led.Open("recursion", "G0 rounds", 4)
	led.Charge(2)
	led.Close()
	led.Close()
	if err := led.Err(); err != nil {
		t.Fatal(err)
	}

	sink := NewTraceSink().Label("unit")
	sink.AddCosts("route", led)
	sink.AddCosts("ignored", nil) // nil ledgers are dropped silently

	if len(sink.Costs) != 3 {
		t.Fatalf("cost samples = %d, want 3", len(sink.Costs))
	}
	root := sink.Costs[0]
	if root.Run != "unit route" || root.Path != "demo" || root.Depth != 0 ||
		root.Total != 3+4*2 || root.Rolled != 11 {
		t.Fatalf("root sample %+v", root)
	}
	byPath := map[string]CostSample{}
	for _, c := range sink.Costs {
		byPath[c.Path] = c
	}
	if c := byPath["demo/prep"]; c.Self != 3 || c.Mul != 1 || c.Rolled != 3 || c.Depth != 1 {
		t.Fatalf("prep sample %+v", c)
	}
	if c := byPath["demo/recursion"]; c.Self != 2 || c.Mul != 4 || c.Rolled != 8 || c.Unit != "G0 rounds" {
		t.Fatalf("recursion sample %+v", c)
	}

	var buf bytes.Buffer
	if err := sink.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Costs []CostSample `json:"costs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	if len(doc.Costs) != 3 || doc.Costs[0] != root {
		t.Fatalf("JSON costs %+v", doc.Costs)
	}

	buf.Reset()
	if err := sink.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	if !strings.Contains(csv, "run,path,unit,depth,self,mul,total,rolled") {
		t.Fatalf("CSV lacks the cost-ledger header:\n%s", csv)
	}
	if !strings.Contains(csv, "unit route,demo/recursion,G0 rounds,1,2,4,2,8") {
		t.Fatalf("CSV lacks the recursion row:\n%s", csv)
	}
}
