package congest

// Lifecycle regression tests for the configuration seam: every Set*
// option applied after a Network has started must fail loudly (the
// silent alternative is a spent network that looks half-configured),
// and the Shard harness must enforce the same single-use contract the
// engines do — including SetFaults after NewShard, which would
// otherwise silently diverge the replica from its coordinator.

import (
	"errors"
	"strings"
	"testing"

	"almostmix/internal/faults"
	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

func tickerNetwork(t *testing.T) *Network {
	t.Helper()
	g := graph.Ring(8)
	return NewUniformNetwork(g, func(int) Program { return NewTicker(3) }, rngutil.NewSource(1))
}

func mustPanic(t *testing.T, option string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s after Run: no panic", option)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, option) || !strings.Contains(msg, "after Run") {
			t.Fatalf("%s after Run panicked with %v, want a message naming the option and the lifecycle rule", option, r)
		}
	}()
	fn()
}

func TestConfigureAfterRunPanics(t *testing.T) {
	plan, err := faults.Parse("drop=0.1", 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		option string
		apply  func(n *Network)
	}{
		{"SetWorkers", func(n *Network) { n.SetWorkers(2) }},
		{"SetProbe", func(n *Network) { n.SetProbe(NopProbe{}) }},
		{"SetMetrics", func(n *Network) { n.SetMetrics(nil) }},
		{"SetFaults", func(n *Network) { n.SetFaults(plan) }},
	}
	for _, tc := range cases {
		t.Run(tc.option, func(t *testing.T) {
			net := tickerNetwork(t)
			if _, err := net.Run(10); err != nil {
				t.Fatalf("first run: %v", err)
			}
			mustPanic(t, tc.option, func() { tc.apply(net) })
		})
	}
}

func TestConfigureBeforeRunStillChains(t *testing.T) {
	net := tickerNetwork(t).SetWorkers(2).SetProbe(NopProbe{}).SetMetrics(nil).SetFaults(nil)
	if _, err := net.Run(10); err != nil {
		t.Fatalf("run after full configuration chain: %v", err)
	}
}

func TestNewShardConsumesSingleUse(t *testing.T) {
	net := tickerNetwork(t)
	if _, err := NewShard(net, 0, 4); err != nil {
		t.Fatalf("first NewShard: %v", err)
	}
	if _, err := NewShard(net, 4, 8); !errors.Is(err, ErrNetworkReused) {
		t.Fatalf("second NewShard: err = %v, want ErrNetworkReused", err)
	}
	if _, err := net.Run(10); !errors.Is(err, ErrNetworkReused) {
		t.Fatalf("Run after NewShard: err = %v, want ErrNetworkReused", err)
	}
	mustPanic(t, "SetProbe", func() { net.SetProbe(NopProbe{}) })
}

func TestNewShardRejectsBadRange(t *testing.T) {
	if _, err := NewShard(tickerNetwork(t), -1, 4); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := NewShard(tickerNetwork(t), 0, 9); err == nil {
		t.Error("hi beyond n accepted")
	}
	if _, err := NewShard(tickerNetwork(t), 5, 4); err == nil {
		t.Error("inverted range accepted")
	}
}

// TestShardAcceptsFaultPlanOnceOnly pins the lifted restriction and its
// replacement contract: a fault plan attached BEFORE NewShard is
// accepted (the wire backend's fate handshake depends on it), while
// SetFaults after NewShard — a replica that would silently diverge from
// its coordinator — panics through the same mustConfigure seam as every
// other post-Run Set* call.
func TestShardAcceptsFaultPlanOnceOnly(t *testing.T) {
	plan, err := faults.Parse("drop=0.1", 1)
	if err != nil {
		t.Fatal(err)
	}
	net := tickerNetwork(t).SetFaults(plan)
	s, err := NewShard(net, 0, 4)
	if err != nil {
		t.Fatalf("NewShard with fault plan: %v", err)
	}
	s.Init()
	mustPanic(t, "SetFaults", func() { net.SetFaults(plan) })
	if got := s.FaultCounts(); got.Any() {
		t.Errorf("fault counts before any round: %+v, want zero", got)
	}
}

func TestShardInjectValidation(t *testing.T) {
	// Ring(8) split [0,4) | [4,8): node 0's ports face 7 (remote) and 1
	// (owned); node 1 is interior.
	s, err := NewShard(tickerNetwork(t), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Init()
	if err := s.Inject(5, 0, Tick); err == nil {
		t.Error("inject outside shard accepted")
	}
	if err := s.Inject(0, 7, Tick); err == nil {
		t.Error("invalid port accepted")
	}
	intraPort := -1
	remotePort := -1
	for p := 0; p < 2; p++ {
		// Find which of node 0's ports faces owned node 1 vs remote node 7.
		if err := s.Inject(0, p, Tick); err != nil && strings.Contains(err.Error(), "crosses no shard boundary") {
			intraPort = p
		} else if err == nil {
			remotePort = p
		}
	}
	if intraPort == -1 {
		t.Error("intra-shard inject accepted on both ports")
	}
	if remotePort == -1 {
		t.Fatal("no port accepted a boundary inject")
	}
	if err := s.Inject(0, remotePort, Tick); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate inject: err = %v, want duplicate rejection", err)
	}
}
