package congest

// The allocation-regression suite: the hot-path contract (package doc,
// DESIGN.md §3) is that a steady-state round allocates NOTHING on either
// engine once the arenas are warm. These tests pin that number at zero
// on the integer scale (see steadyAllocNoiseFloor) — any append that
// escapes an arena, any map lookup that boxes, any per-round scratch
// that grows shows up here as at least one alloc/round and fails the
// build.
//
// Measurement: networks are single-use, so a bare testing.AllocsPerRun
// around Run would charge construction and run-start scratch to every
// sample. MeasureSteadyAllocs (workload.go) instead differences an
// R-round run against a 2R-round run of the same configuration — the
// construction, run-start and warmup-growth costs appear in both and
// cancel, leaving the marginal cost of R steady rounds.
//
// Documented constants:
//   - bare engines, either worker count: 0 allocs/round;
//   - counting (non-retaining) probe attached: 0 — probeRoundFlush
//     refills one reused RoundRecord and reuses its scratch slices;
//   - drop/sever/crash faults: 0 — fate decisions are pure hashes;
//   - duplication/delay faults: not zero in general, because duplicated
//     deliveries regrow inboxes past the arena subslice and delayed
//     messages grow per-receiver pending queues; both retain their
//     capacity, so the cost amortizes downward with the window length
//     (measured ~0.54 allocs/round at 48 rounds, ~0.38 at 384, on the
//     gate's exact configuration) and is asserted below
//     growthFaultAllocBound;
//   - retaining probes (TraceSink): O(1) records retained per round by
//     design — that cost belongs to the sink, not the engines, and is
//     deliberately not asserted to be zero.

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"almostmix/internal/faults"
	"almostmix/internal/graph"
	"almostmix/internal/metrics"
	"almostmix/internal/rngutil"
)

// countingProbe is a non-retaining probe: it reads every record it is
// handed (forcing the probe layer to do its full per-round aggregation)
// but keeps only scalars.
type countingProbe struct {
	NopProbe
	rounds    int
	delivered int
	maxLoad   int64
}

func (p *countingProbe) RoundEnd(rec *RoundRecord) {
	p.rounds++
	p.delivered += rec.Delivered
	for _, l := range rec.EdgeLoad {
		if l > p.maxLoad {
			p.maxLoad = l
		}
	}
}

func steadyBuilder(g *graph.Graph, workers int, probe bool, spec string) func() *Network {
	return func() *Network {
		net := NewUniformNetwork(g, func(int) Program { return NewTicker(1 << 30) }, rngutil.NewSource(7))
		net.SetWorkers(workers)
		if probe {
			net.SetProbe(&countingProbe{})
		}
		if spec != "" {
			plan, err := faults.Parse(spec, 99)
			if err != nil {
				panic(err)
			}
			net.SetFaults(plan)
		}
		return net
	}
}

// steadyAllocNoiseFloor is the assertion threshold: a steady round must
// allocate 0 on the integer scale, i.e. measured allocs/round < 0.5.
// The measurement cannot demand a literal 0.000: the parallel engine's
// round barriers park workers on channels, and the runtime re-allocates
// its cached sudog/stack bookkeeping whenever a GC cycle lands inside a
// window — an O(1)-per-GC cost outside the engine that shows up as a
// few hundredths per round. Any genuine hot-path regression is at least
// one allocation per ROUND (usually per node or per message, i.e. 512+
// here), so the gate still trips decisively.
const steadyAllocNoiseFloor = 0.5

// TestSteadyRoundsZeroAlloc is the regression gate for the zero-alloc
// contract: integer-zero allocs/round for the bare engines, the probed
// engines, and the buffer-stable fault fates, on both the sequential
// and the sharded parallel engine.
func TestSteadyRoundsZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("differential alloc measurement is not -short")
	}
	g := graph.RingLattice(512, 4)
	const rounds = 48
	cases := []struct {
		name    string
		workers int
		probe   bool
		spec    string
	}{
		{"sequential/bare", 1, false, ""},
		{"sequential/probe", 1, true, ""},
		{"sequential/faults-drop", 1, false, "drop=0.3"},
		{"sequential/faults-crash-sever", 1, false, "drop=0.1,crash=3@4+6,sever=2@5"},
		{"workers=2/bare", 2, false, ""},
		{"workers=8/bare", 8, false, ""},
		{"workers=8/probe", 8, true, ""},
		{"workers=8/faults-drop", 8, false, "drop=0.3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			per := MeasureSteadyAllocs(steadyBuilder(g, tc.workers, tc.probe, tc.spec), rounds)
			if per >= steadyAllocNoiseFloor {
				t.Fatalf("steady-state round allocates: %.3f allocs/round, want 0 (< %.1f)", per, steadyAllocNoiseFloor)
			}
			if per != 0 {
				t.Logf("residual %.3f allocs/round (runtime noise floor, see steadyAllocNoiseFloor)", per)
			}
		})
	}
}

// growthFaultAllocBound is the measured regression bound for the one
// documented exception to the zero gate. On the exact configuration
// asserted below — RingLattice(512,4), sequential engine, spec
// "dup=0.1,delay=0.2:2", 48-round differential window — repeated
// measurement gives 0.50–0.55 allocs/round (max observed 0.5417), and
// the rate falls with longer windows (~0.38 at 384 rounds), confirming
// the cost is buffer regrowth that amortizes rather than a per-round
// leak. The residual sits ABOVE steadyAllocNoiseFloor because dup
// regrows inboxes past their arena subslices and delay maintains
// per-receiver pending queues, so this gate carries its own threshold:
// 0.65 leaves headroom over the observed max of 0.5417 while still
// tripping decisively on any real regression, which costs at least one
// whole allocation per round (usually per message, i.e. hundreds here).
const growthFaultAllocBound = 0.65

// TestSteadyRoundsZeroAllocWithTelemetry extends the zero gate to the
// full telemetry stack: a metrics registry AND a counting probe
// attached together must keep steady rounds allocation-free. The
// metrics layer resolves every instrument once at run start
// (metricsRunStart) so a steady round's cost is clock reads and
// sharded atomic adds; the registry is shared across the differential
// runs, so even first-resolution map growth cancels.
func TestSteadyRoundsZeroAllocWithTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("differential alloc measurement is not -short")
	}
	g := graph.RingLattice(512, 4)
	const rounds = 48
	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			reg := metrics.New()
			per := MeasureSteadyAllocs(func() *Network {
				net := NewUniformNetwork(g, func(int) Program { return NewTicker(1 << 30) }, rngutil.NewSource(7))
				net.SetWorkers(workers)
				net.SetProbe(&countingProbe{})
				net.SetMetrics(reg)
				return net
			}, rounds)
			if per >= steadyAllocNoiseFloor {
				t.Fatalf("telemetry-on steady round allocates: %.3f allocs/round, want 0 (< %.1f)",
					per, steadyAllocNoiseFloor)
			}
			if per != 0 {
				t.Logf("residual %.3f allocs/round (runtime noise floor)", per)
			}
		})
	}
}

// TestSteadyRoundsGrowthFaultsBounded pins the one documented exception:
// duplication and delay fates regrow inbox and pending buffers, which
// retain their capacity — so the steady cost must stay under the
// measured bound rather than under the integer-zero noise floor.
func TestSteadyRoundsGrowthFaultsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("differential alloc measurement is not -short")
	}
	g := graph.RingLattice(512, 4)
	per := MeasureSteadyAllocs(steadyBuilder(g, 1, false, "dup=0.1,delay=0.2:2"), 48)
	if per >= growthFaultAllocBound {
		t.Fatalf("duplication/delay faults allocate %.3f/round, want < %.2f (measured ~0.54 max)",
			per, growthFaultAllocBound)
	}
	t.Logf("dup/delay steady cost %.4f allocs/round (bound %.2f)", per, growthFaultAllocBound)
}

// shardFaultyRun executes `rounds` coordinator-driven shard rounds with
// a fault plan answering from an attached fate table — the TCP
// backend's per-round hot path (attach, deliver, step, drain counts) on
// a full-range shard, with no wire in between. The table is pre-built
// by the caller: over TCP its bytes are parsed once per 64-round FATES
// window, an amortized per-window cost the transport layer owns, so the
// gate isolates what the replica's round loop itself allocates.
func shardFaultyRun(g *graph.Graph, spec string, table *faults.FateTable, rounds int) {
	plan, err := faults.Parse(spec, 99)
	if err != nil {
		panic(err)
	}
	net := NewUniformNetwork(g, func(int) Program { return NewTicker(1 << 30) }, rngutil.NewSource(7))
	net.SetFaults(plan)
	s, err := NewShard(net, 0, g.N())
	if err != nil {
		panic(err)
	}
	plan.AttachTable(table)
	s.Init()
	var total faults.Counts
	for r := 0; r < rounds; r++ {
		s.Deliver()
		s.Step()
		total.Add(s.FaultCounts())
	}
}

// TestShardFaultyRoundsZeroAlloc extends the zero gate to the TCP
// backend's side of a faulty round: a shard replica whose plan answers
// MessageFate from a coordinator-shipped fate table must keep steady
// deliver/step/drain rounds allocation-free for the buffer-stable fates
// (drop, crash, sever), exactly like the in-process engines. One table
// covering both differential windows is attached in full, so the only
// measured work is the canonical delivery path's table lookups.
func TestShardFaultyRoundsZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("differential alloc measurement is not -short")
	}
	g := graph.RingLattice(512, 4)
	const rounds = 48
	for _, spec := range []string{"drop=0.3", "drop=0.1,crash=3@4+6,sever=2@5"} {
		t.Run(spec, func(t *testing.T) {
			// The coordinator's table: same spec and seed as the replica
			// plan, rolled from the pure (seed, round, slot) hashes.
			// deliverFaulty consults round n.rounds+1, so lookups span
			// [1, 2·rounds+1); one window covers both differential runs.
			coord, err := faults.Parse(spec, 99)
			if err != nil {
				t.Fatal(err)
			}
			table := faults.BuildFateTable(coord, 1, 2*rounds+2, 2*g.M())
			per := MeasureSteadyAllocsFunc(func(r int) {
				shardFaultyRun(g, spec, table, r)
			}, rounds)
			if per >= steadyAllocNoiseFloor {
				t.Fatalf("faulty shard round allocates: %.3f allocs/round, want 0 (< %.1f)", per, steadyAllocNoiseFloor)
			}
			if per != 0 {
				t.Logf("residual %.3f allocs/round (runtime noise floor)", per)
			}
		})
	}
}

// TestPortOfMatchesMapReference is the differential property test for
// the CSR port table: on random graphs, topology.portOf (binary search
// over the per-node sorted permutation) must agree with the obvious
// map-based reference built from the graph's own adjacency — for every
// adjacent pair in both directions and for absent pairs.
func TestPortOfMatchesMapReference(t *testing.T) {
	property := func(seed uint64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%30) + 2
		p := float64(pRaw%100) / 99
		g := graph.Gnp(n, p, rngutil.NewRand(seed))
		topo := newTopology(g)

		ref := make([]map[int]int, n)
		for v := 0; v < n; v++ {
			ref[v] = make(map[int]int, g.Degree(v))
			for port, h := range g.Neighbors(v) {
				ref[v][h.To] = port
			}
		}
		for v := 0; v < n; v++ {
			for u := 0; u < n; u++ {
				want, ok := ref[v][u]
				if !ok {
					want = -1
				}
				if got := topo.portOf(v, u); got != want {
					t.Logf("seed=%d n=%d p=%.2f: portOf(%d,%d)=%d, want %d", seed, n, p, v, u, got, want)
					return false
				}
			}
		}
		// The sorted permutation itself must be a permutation of the
		// node's ports with neighbors in ascending order.
		for v := 0; v < n; v++ {
			lo, hi := topo.start[v], topo.start[v+1]
			span := topo.sortedTo[lo:hi]
			if !sort.SliceIsSorted(span, func(i, j int) bool { return span[i] < span[j] }) {
				t.Logf("seed=%d: node %d sorted neighbors out of order", seed, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCtxPortToRoundTrip checks the public lookup against NeighborID on
// a structured high-degree graph (the star stresses the asymmetric
// case: the hub owns a long sorted table, each leaf a single entry).
func TestCtxPortToRoundTrip(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Star(64), graph.Complete(24), graph.Lollipop(10, 5)} {
		net := NewUniformNetwork(g, func(int) Program { return NewTicker(1) }, rngutil.NewSource(1))
		for v := 0; v < g.N(); v++ {
			ctx := &net.ctxs[v]
			for port := 0; port < ctx.Degree(); port++ {
				u := ctx.NeighborID(port)
				if got := ctx.PortTo(u); got != port {
					t.Fatalf("node %d: PortTo(NeighborID(%d)=%d) = %d", v, port, u, got)
				}
			}
			if got := ctx.PortTo(v); got != -1 {
				t.Fatalf("node %d: PortTo(self) = %d, want -1", v, got)
			}
		}
	}
}

// BenchmarkSteadyAllocsReport is not a regression gate (the tests above
// are); it exists so `go test -bench SteadyAllocs` prints the measured
// steady allocs/round as a benchmark metric for the perf trajectory.
func BenchmarkSteadyAllocsReport(b *testing.B) {
	g := graph.RingLattice(2048, 4)
	for _, workers := range []int{1, 8} {
		name := "sequential"
		if workers != 1 {
			name = fmt.Sprintf("workers=%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			var per float64
			for i := 0; i < b.N; i++ {
				per = MeasureSteadyAllocs(steadyBuilder(g, workers, false, ""), 32)
			}
			b.ReportMetric(per, "steady-allocs/round")
		})
	}
}
