package congest

// Tests of the fault-injection layer: the differential contract (a fixed
// (seed, spec) pair reproduces a bit-identical faulty execution on both
// engines and every worker count), the empty-plan byte-identity guarantee,
// the crash/recovery and sever semantics, the fault counters' journey
// through probe records and metrics, the pinned Halt-round send contract,
// and the int32 edge-load wraparound regression.

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"almostmix/internal/faults"
	"almostmix/internal/graph"
	"almostmix/internal/metrics"
	"almostmix/internal/rngutil"
)

// faultScenario is a diffScenario plus the fault spec attached to every
// engine run. Faulty runs may legitimately end in ErrRoundLimit (a
// permanently crashed node never halts), so errors are compared across
// engines instead of failing the test.
type faultScenario struct {
	name      string
	spec      string
	quiet     bool
	maxRounds int
	build     func(seed uint64) (*Network, func() any)
}

// runFaultDifferential executes the scenario on the sequential engine and
// on the parallel engine with workers {1,2,8}, each run with a fresh plan
// parsed from the same (spec, seed), and asserts the full observable
// execution — rounds, error, messages, final state, probe event stream,
// fault totals — is bit-identical.
func runFaultDifferential(t *testing.T, sc faultScenario) {
	t.Helper()
	seeds := diffSeeds
	if testing.Short() {
		seeds = seeds[:1]
	}
	errStr := func(err error) string {
		if err == nil {
			return "<nil>"
		}
		return err.Error()
	}
	for _, seed := range seeds {
		plan := func() *faults.Plan {
			p, err := faults.Parse(sc.spec, seed*2654435761+1)
			if err != nil {
				t.Fatalf("%s: spec %q: %v", sc.name, sc.spec, err)
			}
			return p
		}
		net, state := sc.build(seed)
		wantPlan := plan()
		wantProbe := &recordingProbe{}
		net.SetFaults(wantPlan).SetProbe(wantProbe)
		wantRounds, wantErr := net.runSequential(sc.maxRounds, sc.quiet)
		wantMsgs := net.Messages()
		want := state()
		for _, workers := range diffWorkerCounts {
			par, parState := sc.build(seed)
			gotPlan := plan()
			gotProbe := &recordingProbe{}
			par.SetFaults(gotPlan).SetProbe(gotProbe)
			gotRounds, gotErr := par.runParallel(sc.maxRounds, workers, sc.quiet)
			if gotRounds != wantRounds || errStr(gotErr) != errStr(wantErr) {
				t.Errorf("%s seed %d workers %d: (rounds=%d err=%v) diverges from sequential (rounds=%d err=%v)",
					sc.name, seed, workers, gotRounds, gotErr, wantRounds, wantErr)
			}
			if gotMsgs := par.Messages(); gotMsgs != wantMsgs {
				t.Errorf("%s seed %d workers %d: messages %d, sequential %d",
					sc.name, seed, workers, gotMsgs, wantMsgs)
			}
			if got := parState(); !reflect.DeepEqual(got, want) {
				t.Errorf("%s seed %d workers %d: final state diverges from sequential",
					sc.name, seed, workers)
			}
			if !reflect.DeepEqual(gotProbe.events, wantProbe.events) {
				t.Errorf("%s seed %d workers %d: probe event stream diverges from sequential (%d vs %d events)",
					sc.name, seed, workers, len(gotProbe.events), len(wantProbe.events))
			}
			if gotPlan.Totals() != wantPlan.Totals() {
				t.Errorf("%s seed %d workers %d: fault totals %+v, sequential %+v",
					sc.name, seed, workers, gotPlan.Totals(), wantPlan.Totals())
			}
		}
		if wantErr == nil && !wantPlan.Totals().Any() {
			t.Errorf("%s seed %d: scenario injected no faults — not exercising the layer", sc.name, seed)
		}
	}
}

// beatBuild is the workhorse fault workload: every node broadcasts each
// round and accumulates how many messages it received, halting in
// staggered waves, so the final state depends on every injected event.
func beatBuild(lastRound int) func(seed uint64) (*Network, func() any) {
	return func(seed uint64) (*Network, func() any) {
		g := diffGraph(seed)
		received := make([]int, g.N())
		net := NewUniformNetwork(g, func(v int) Program {
			return programFunc{
				init: func(ctx *Ctx) { ctx.Broadcast(0) },
				step: func(ctx *Ctx, inbox []Inbound) {
					received[ctx.ID()] += len(inbox)
					if ctx.Round() >= lastRound+ctx.ID()%5 {
						ctx.Halt()
						return
					}
					ctx.Broadcast(ctx.Round())
				},
			}
		}, rngutil.NewSource(seed))
		return net, func() any { return received }
	}
}

func TestDifferentialFaultsMessages(t *testing.T) {
	runFaultDifferential(t, faultScenario{
		name:      "msg-faults",
		spec:      "drop=0.1,dup=0.08,delay=0.1:3",
		maxRounds: 60,
		build:     beatBuild(12),
	})
}

func TestDifferentialFaultsCrashRecover(t *testing.T) {
	runFaultDifferential(t, faultScenario{
		name:      "crash-recover",
		spec:      "drop=0.05,crash=3@4+5,crash=7@2+8",
		maxRounds: 80,
		build:     beatBuild(12),
	})
}

func TestDifferentialFaultsPermanentCrash(t *testing.T) {
	// Node 5 never recovers, so it never halts and the run must end in
	// the same ErrRoundLimit on every engine.
	runFaultDifferential(t, faultScenario{
		name:      "crash-permanent",
		spec:      "crash=5@3,drop=0.05",
		maxRounds: 40,
		build:     beatBuild(10),
	})
}

func TestDifferentialFaultsSever(t *testing.T) {
	runFaultDifferential(t, faultScenario{
		name:      "sever",
		spec:      "sever=0@2,sever=3@5,dup=0.05",
		maxRounds: 60,
		build:     beatBuild(12),
	})
}

// TestEmptyFaultPlanByteIdentity: attaching an empty plan must leave the
// execution — probe event stream and exported trace bytes — byte-identical
// to a run with no plan at all, on both engines.
func TestEmptyFaultPlanByteIdentity(t *testing.T) {
	run := func(plan *faults.Plan, workers int) ([]string, []byte) {
		net, _ := beatBuild(8)(7)
		rec := &recordingProbe{}
		sink := NewTraceSink().Label("unit")
		net.SetFaults(plan).SetProbe(MultiProbe{rec, sink})
		var err error
		if workers == 0 {
			_, err = net.runSequential(40, false)
		} else {
			_, err = net.runParallel(40, workers, false)
		}
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sink.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return rec.events, buf.Bytes()
	}
	baseEvents, baseJSON := run(nil, 0)
	for _, workers := range []int{0, 1, 2, 8} {
		events, doc := run(faults.New(99), workers)
		if !reflect.DeepEqual(events, baseEvents) {
			t.Errorf("workers=%d: empty plan changes the probe event stream", workers)
		}
		if !bytes.Equal(doc, baseJSON) {
			t.Errorf("workers=%d: empty plan changes the exported trace bytes", workers)
		}
	}
	if ct := faults.New(99).Totals(); ct.Any() {
		t.Errorf("empty plan accumulated totals %+v", ct)
	}
}

// TestFaultCountsReachProbeAndMetrics follows the counters through both
// observability channels: the per-round probe records must sum to the
// plan totals, and the metrics snapshot must carry the same values.
func TestFaultCountsReachProbeAndMetrics(t *testing.T) {
	plan := faults.New(5).WithDrop(0.2).WithDuplicate(0.1).WithDelay(0.1, 2).WithCrash(2, 3, 4)
	reg := metrics.New()
	var sum faults.Counts
	probe := roundEndFunc(func(rec *RoundRecord) {
		sum.Add(faults.Counts{
			Dropped:    int64(rec.Dropped),
			Duplicated: int64(rec.Duplicated),
			Delayed:    int64(rec.Delayed),
			Crashed:    int64(rec.Crashed),
		})
	})
	net, _ := beatBuild(10)(1)
	net.SetFaults(plan).SetProbe(probe).SetMetrics(reg)
	if _, err := net.RunParallel(60, 2); err != nil {
		t.Fatal(err)
	}
	tot := plan.Totals()
	if !tot.Any() {
		t.Fatal("plan injected nothing")
	}
	if sum != tot {
		t.Errorf("probe-record sum %+v != plan totals %+v", sum, tot)
	}
	got := map[string]int64{}
	for _, c := range reg.Snapshot().Counters {
		got[c.Name] = c.Value
	}
	for name, want := range map[string]int64{
		"congest_msgs_dropped_total":      tot.Dropped,
		"congest_msgs_duplicated_total":   tot.Duplicated,
		"congest_msgs_delayed_total":      tot.Delayed,
		"congest_node_crash_rounds_total": tot.Crashed,
	} {
		if got[name] != want {
			t.Errorf("metrics %s = %d, want %d", name, got[name], want)
		}
	}
}

// roundEndFunc adapts a func to a Probe that only observes RoundEnd.
type roundEndFunc func(rec *RoundRecord)

func (roundEndFunc) RunStart(RunInfo)            {}
func (roundEndFunc) PhaseMark(int, int, string)  {}
func (roundEndFunc) NodeHalted(int, int)         {}
func (f roundEndFunc) RoundEnd(rec *RoundRecord) { f(rec) }
func (roundEndFunc) RunEnd(int, error)           {}

// TestCrashSemantics pins the crash contract on a concrete 3-node path:
// in-flight sends of the crashing node still deliver, messages toward the
// crashed node are dropped and counted, and the node resumes stepping
// with preserved state at its recovery round.
func TestCrashSemantics(t *testing.T) {
	g := graph.Path(3) // 0-1-2; node 1 crashes rounds 2..3, recovers at 4
	plan := faults.New(1).WithCrash(1, 2, 2)
	var stepsOf1 []int
	recvOf1 := 0
	net := NewUniformNetwork(g, func(v int) Program {
		return programFunc{
			init: func(ctx *Ctx) { ctx.Broadcast(0) },
			step: func(ctx *Ctx, inbox []Inbound) {
				if ctx.ID() == 1 {
					stepsOf1 = append(stepsOf1, ctx.Round())
					recvOf1 += len(inbox)
				}
				if ctx.Round() >= 6 {
					ctx.Halt()
					return
				}
				ctx.Broadcast(ctx.Round())
			},
		}
	}, rngutil.NewSource(1)).SetFaults(plan)
	if _, err := net.Run(10); err != nil {
		t.Fatal(err)
	}
	// Node 1 steps in round 1, is crashed in 2 and 3, resumes in 4.
	if want := []int{1, 4, 5, 6}; !reflect.DeepEqual(stepsOf1, want) {
		t.Fatalf("node 1 stepped in rounds %v, want %v", stepsOf1, want)
	}
	// Receives 2 in round 1, loses 2+2 while crashed (counted), then 2
	// per round once recovered (node 1's round-1 sends were in flight at
	// the crash and still delivered to 0 and 2).
	if recvOf1 != 2+3*2 {
		t.Fatalf("node 1 received %d messages, want %d", recvOf1, 2+3*2)
	}
	tot := plan.Totals()
	if tot.Dropped != 4 {
		t.Fatalf("dropped = %d, want 4 (two rounds x two neighbors)", tot.Dropped)
	}
	if tot.Crashed != 2 {
		t.Fatalf("crashed node-rounds = %d, want 2", tot.Crashed)
	}
}

// TestDelayedDeliveryOrder pins the delay contract: a delayed message is
// rolled once, delivers at its due round BEFORE that round's fresh
// messages, and blocks quiet termination while in flight.
func TestDelayedDeliveryOrder(t *testing.T) {
	g := graph.Path(2)
	// delay=1.0:2 → every message is delayed by exactly 2 rounds.
	plan := faults.New(3).WithDelay(1, 2)
	var got []string
	net := NewUniformNetwork(g, func(v int) Program {
		return programFunc{
			init: func(ctx *Ctx) {
				if ctx.ID() == 0 {
					ctx.Send(0, "early")
				}
			},
			step: func(ctx *Ctx, inbox []Inbound) {
				if ctx.ID() == 1 {
					for _, in := range inbox {
						got = append(got, fmt.Sprintf("%v@%d", in.Payload, ctx.Round()))
					}
				}
				if ctx.ID() == 0 && ctx.Round() == 1 {
					ctx.Send(0, "late")
				}
			},
		}
	}, rngutil.NewSource(1)).SetFaults(plan)
	if _, err := net.RunUntilQuiet(20); err != nil {
		t.Fatal(err)
	}
	// "early" (sent in Init, would deliver round 1) arrives round 3;
	// "late" (sent round 1, would deliver round 2) arrives round 4. The
	// quiet engine must have survived the silent rounds in between.
	if want := []string{"early@3", "late@4"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("deliveries %v, want %v", got, want)
	}
	if tot := plan.Totals(); tot.Delayed != 2 {
		t.Fatalf("delayed = %d, want 2", tot.Delayed)
	}
}

// TestHaltRoundSendDelivered pins the Halt-round send contract (DESIGN.md
// §3): a message Sent in the same Step that calls Halt is delivered
// exactly once, on both engines and every worker count.
func TestHaltRoundSendDelivered(t *testing.T) {
	run := func(workers int) []int {
		g := graph.Ring(8)
		received := make([]int, g.N())
		net := NewUniformNetwork(g, func(v int) Program {
			return programFunc{
				step: func(ctx *Ctx, inbox []Inbound) {
					received[ctx.ID()] += len(inbox)
					if ctx.Round() == 1 {
						// Send and halt in the same Step: the send must
						// still deliver next round, exactly once.
						ctx.Broadcast("farewell")
						ctx.Halt()
					}
				},
			}
		}, rngutil.NewSource(1))
		var err error
		if workers == 0 {
			_, err = net.runSequential(6, false)
		} else {
			_, err = net.runParallel(6, workers, false)
		}
		if err != nil {
			t.Fatal(err)
		}
		return received
	}
	want := run(0)
	for v, got := range want {
		// Every node halts in round 1, so its neighbors' farewells are
		// dropped at its inbox — but the sends were made, and a HALTED
		// sender's outbox must survive into the next deliver phase.
		// With everyone halting simultaneously nothing is received; use a
		// staggered variant below for the delivered-exactly-once check.
		if got != 0 {
			t.Fatalf("node %d received %d, want 0 (all halted together)", v, got)
		}
	}
	for _, workers := range []int{1, 2, 8} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: received %v, sequential %v", workers, got, want)
		}
	}

	// Staggered: node 0 sends+halts in round 1; node 1 stays alive and
	// must receive that farewell exactly once.
	staggered := func(workers int) []int {
		g := graph.Path(3)
		received := make([]int, g.N())
		net := NewUniformNetwork(g, func(v int) Program {
			return programFunc{
				step: func(ctx *Ctx, inbox []Inbound) {
					received[ctx.ID()] += len(inbox)
					switch {
					case ctx.ID() == 0 && ctx.Round() == 1:
						ctx.Send(0, "farewell")
						ctx.Halt()
					case ctx.Round() >= 4:
						ctx.Halt()
					}
				},
			}
		}, rngutil.NewSource(1))
		var err error
		if workers == 0 {
			_, err = net.runSequential(8, false)
		} else {
			_, err = net.runParallel(8, workers, false)
		}
		if err != nil {
			t.Fatal(err)
		}
		return received
	}
	want = staggered(0)
	if want[1] != 1 {
		t.Fatalf("halting sender's farewell delivered %d times, want exactly 1", want[1])
	}
	for _, workers := range []int{1, 2, 8} {
		if got := staggered(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: received %v, sequential %v", workers, got, want)
		}
	}
}

// TestEdgeLoadNoInt32Wraparound is the regression test for the int32
// per-edge load counters: with a slot already carrying MaxInt32 deliveries
// (as a long traced analytic run with duplication faults can), one more
// delivery must report MaxInt32+1, not wrap negative.
func TestEdgeLoadNoInt32Wraparound(t *testing.T) {
	g := graph.Path(2)
	var rec RoundRecord
	probe := roundEndFunc(func(r *RoundRecord) { rec = *r })
	net := NewUniformNetwork(g, func(v int) Program {
		return programFunc{}
	}, rngutil.NewSource(1)).SetProbe(probe)
	net.probeRunStart("test", 1)
	net.ps.edgeLoad[0] = math.MaxInt32 // accumulated load of edge 0 toward node 0...
	net.rounds = 1
	net.inboxes[0] = append(net.inboxes[0][:0], Inbound{Port: 0, From: 1, Payload: 0})
	net.inboxes[1] = net.inboxes[1][:0]
	net.probeRoundFlush(1, 2, faults.Counts{})
	if want := int64(math.MaxInt32) + 1; rec.MaxEdgeLoad != want {
		t.Fatalf("MaxEdgeLoad = %d, want %d (old int32 counter wrapped negative)", rec.MaxEdgeLoad, want)
	}
}
