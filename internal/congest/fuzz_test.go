package congest

// Go-native fuzz harness for the simulator: arbitrary small graphs, a
// message-echo program, both engines. The target asserts the simulator's
// structural invariants (no panics, rounds within the budget, delivered
// ports valid and consistent with the topology) and differentially checks
// the parallel engine against the sequential reference on every input.
// The f.Add calls below are the committed seed corpus.

import (
	"errors"
	"reflect"
	"testing"

	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

// echoProgram broadcasts at init and echoes every received message back on
// the port it arrived on, validating delivery metadata as it goes.
type echoProgram struct {
	recv    []int // shared; each node writes only its own index
	maxEcho int
	t       *testing.T
}

func (p *echoProgram) Init(ctx *Ctx) { ctx.Broadcast(ctx.ID()) }

func (p *echoProgram) Step(ctx *Ctx, inbox []Inbound) {
	for _, in := range inbox {
		if in.Port < 0 || in.Port >= ctx.Degree() {
			p.t.Errorf("node %d delivered on invalid port %d (degree %d)", ctx.ID(), in.Port, ctx.Degree())
			continue
		}
		if got := ctx.NeighborID(in.Port); got != in.From {
			p.t.Errorf("node %d port %d: From=%d but neighbor is %d", ctx.ID(), in.Port, in.From, got)
		}
		p.recv[ctx.ID()]++
		ctx.Send(in.Port, in.Payload)
	}
	if ctx.Round() >= p.maxEcho {
		ctx.Halt()
	}
}

func FuzzNetworkRun(f *testing.F) {
	f.Add(uint64(1), uint16(0xffff), uint8(4), uint8(8), uint8(1))
	f.Add(uint64(2), uint16(0x0001), uint8(2), uint8(1), uint8(2))
	f.Add(uint64(3), uint16(0xaaaa), uint8(7), uint8(20), uint8(3))
	f.Add(uint64(4), uint16(0x0000), uint8(5), uint8(3), uint8(0))
	f.Add(uint64(5), uint16(0x7777), uint8(6), uint8(31), uint8(8))
	// Degree-extreme topologies stressing the CSR port tables: a pure
	// star on 6 nodes (pair indices 0–4 are exactly (0,v); one long
	// sorted port table at the hub, singletons at the leaves) and the
	// complete graph K8 (maximum degree, every port table full).
	f.Add(uint64(6), uint16(0x001f), uint8(4), uint8(12), uint8(2))
	f.Add(uint64(7), uint16(0xffff), uint8(6), uint8(12), uint8(4))

	f.Fuzz(func(t *testing.T, seed uint64, edgeMask uint16, nRaw, budgetRaw, workersRaw uint8) {
		n := int(nRaw%7) + 2 // 2..8 nodes
		maxRounds := int(budgetRaw%32) + 1
		workers := int(workersRaw % 9) // 0 (=GOMAXPROCS) .. 8

		g := graph.New(n)
		bit := 0
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if edgeMask&(1<<(bit%16)) != 0 {
					g.AddEdge(u, v, 1)
				}
				bit++
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("generated graph invalid: %v", err)
		}

		run := func(parallel bool) (int, int, []int) {
			recv := make([]int, n)
			net := NewUniformNetwork(g, func(v int) Program {
				return &echoProgram{recv: recv, maxEcho: maxRounds / 2, t: t}
			}, rngutil.NewSource(seed))
			var rounds int
			var err error
			if parallel {
				rounds, err = net.RunParallel(maxRounds, workers)
			} else {
				rounds, err = net.Run(maxRounds)
			}
			if err != nil && !errors.Is(err, ErrRoundLimit) {
				t.Fatalf("unexpected error: %v", err)
			}
			if rounds > maxRounds {
				t.Fatalf("rounds = %d exceeds budget %d", rounds, maxRounds)
			}
			if rounds != net.Rounds() {
				t.Fatalf("returned rounds %d != Rounds() %d", rounds, net.Rounds())
			}
			return rounds, net.Messages(), recv
		}

		seqRounds, seqMsgs, seqRecv := run(false)
		parRounds, parMsgs, parRecv := run(true)
		if parRounds != seqRounds || parMsgs != seqMsgs || !reflect.DeepEqual(parRecv, seqRecv) {
			t.Fatalf("parallel engine diverges: (rounds=%d msgs=%d) vs sequential (rounds=%d msgs=%d)",
				parRounds, parMsgs, seqRounds, seqMsgs)
		}
	})
}
