// Package congest implements the standard CONGEST model of distributed
// computation as a discrete-time synchronous simulator.
//
// The network is an n-node graph; per synchronous round every node may
// send one O(log n)-bit message over each incident edge. Algorithms are
// written as node programs (the Program interface): per round each node
// reads the messages delivered on its ports and queues at most one
// outgoing message per port. The simulator enforces the per-edge capacity,
// counts rounds and messages, and detects termination.
//
// The simulator is the measurement instrument for all experiments: the
// paper's complexity claims are statements about the number of rounds this
// model needs, so round counts reported by Network.Run are the quantities
// compared against the theorems.
//
// Memory layout (DESIGN.md §3): the hot path is built for zero-alloc
// steady-state rounds at n ≥ 10^6. Adjacency, port and reverse-port
// tables are flat int32 CSR arrays (topology.go); node contexts are one
// flat []Ctx; outboxes, sent flags and inboxes are subslices of three
// arenas sized once at NewNetwork and recycled every round by slice
// reset. After the first few warmup rounds a steady round performs no
// heap allocation on either engine (pinned by alloc_test.go).
package congest

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"almostmix/internal/faults"
	"almostmix/internal/graph"
	"almostmix/internal/metrics"
	"almostmix/internal/rngutil"
)

// Message is an opaque O(log n)-bit payload. Programs exchange small
// structs or scalars; the simulator counts one message per send.
type Message any

// Inbound is a message delivered to a node: the port it arrived on and the
// ID of the sending neighbor.
type Inbound struct {
	Port    int
	From    int
	Payload Message
}

// Ctx is the per-node view of the network handed to programs. It exposes
// exactly the knowledge the CONGEST model grants a node: its ID, its
// incident edges (ports) with the IDs of the neighbors across them, the
// total node count, and a private random stream.
//
// All mutable per-node state (outboxes, halt flags, message counts) lives
// here rather than on the Network, so that the parallel engine can shard
// nodes across workers without any shared-counter data races: each Ctx is
// touched by exactly one worker per phase, and network-wide totals are
// aggregated from the per-node shards. Contexts are stored as one flat
// []Ctx on the Network, and outbox/sent are subslices of arenas shared by
// all nodes, so building a million-node network costs a handful of
// allocations rather than O(n).
type Ctx struct {
	id     int
	net    *Network
	rng    *rand.Rand // created on first Rand() call; derivation is pure
	outbox []Message  // one slot per port; nil = no send this round
	sent   []bool
	halted bool
	msgs   int // messages sent by this node (sharded accounting)

	// Probe bookkeeping, populated only when a probe is attached. Like
	// msgs these are sharded: written by the owning worker, drained by
	// the coordinator between barriers.
	marks      []phaseMark
	justHalted bool
	haltRound  int
}

// ID returns the node's identifier.
func (c *Ctx) ID() int { return c.id }

// N returns the number of nodes in the network (globally known, as usual
// in CONGEST algorithms that assume knowledge of n).
func (c *Ctx) N() int { return c.net.topo.n }

// Degree returns the node's degree (number of ports).
func (c *Ctx) Degree() int { return len(c.outbox) }

// NeighborID returns the ID of the neighbor across the given port.
func (c *Ctx) NeighborID(port int) int {
	t := c.net.topo
	return int(t.to[t.start[c.id]+int32(port)])
}

// EdgeID returns the graph edge identifier behind the given port.
func (c *Ctx) EdgeID(port int) int {
	t := c.net.topo
	return int(t.edge[t.start[c.id]+int32(port)])
}

// EdgeWeight returns the weight of the edge behind the given port.
func (c *Ctx) EdgeWeight(port int) float64 {
	return c.net.g.Edge(c.EdgeID(port)).W
}

// PortTo returns the port leading to neighbor u, or -1 when no edge to u
// exists. O(log deg) by binary search on the CSR port table — programs
// that need to answer "which port reaches u?" should use this instead of
// scanning NeighborID over all ports.
func (c *Ctx) PortTo(u int) int { return c.net.topo.portOf(c.id, u) }

// Rand returns the node's private deterministic random stream. The
// stream is derived purely from (source seed, node ID) on first use, so
// lazily creating it here costs construction time only for nodes that
// actually draw randomness, without changing any drawn value.
func (c *Ctx) Rand() *rand.Rand {
	if c.rng == nil {
		c.rng = c.net.src.Stream("node", uint64(c.id))
	}
	return c.rng
}

// Round returns the current network round number (0 during Init). It
// reads the network's round counter directly, so it keeps advancing with
// the network even after this node halts — a halted node that is queried
// later (e.g. by post-run inspection) sees the true global round, not the
// round it halted in. Safe under the parallel engine: the counter is
// written only between the round barriers.
func (c *Ctx) Round() int { return c.net.rounds }

// Send queues a message on the given port for delivery next round. At
// most one message may be sent per port per round; a second send on the
// same port panics, since it is a bug in the node program.
func (c *Ctx) Send(port int, payload Message) {
	if port < 0 || port >= len(c.outbox) {
		panic(fmt.Sprintf("congest: node %d sends on invalid port %d", c.id, port))
	}
	if c.sent[port] {
		panic(fmt.Sprintf("congest: node %d sends twice on port %d in one round", c.id, port))
	}
	c.sent[port] = true
	c.outbox[port] = payload
	c.msgs++
}

// Broadcast queues the same message on every port.
func (c *Ctx) Broadcast(payload Message) {
	for p := 0; p < len(c.outbox); p++ {
		c.Send(p, payload)
	}
}

// Halt marks the node as finished. A halted node's Step is no longer
// called; the network terminates when every node has halted. Delivery to
// halted nodes still occurs but the messages are dropped.
func (c *Ctx) Halt() {
	if c.halted {
		return
	}
	c.halted = true
	if c.net.probe != nil {
		c.justHalted = true
		c.haltRound = c.net.rounds
	}
}

// Program is a node algorithm. Init runs once before round 0; Step runs
// every round with the messages delivered in that round. The inbox slice
// handed to Step is an engine-owned buffer recycled every round: Step
// must not retain it (or any Inbound in it) past its own return.
type Program interface {
	Init(ctx *Ctx)
	Step(ctx *Ctx, inbox []Inbound)
}

// Network simulates a CONGEST execution of one Program replicated on all
// nodes of a graph.
type Network struct {
	g        *graph.Graph
	topo     *topology
	src      *rngutil.Source
	ctxs     []Ctx
	programs []Program
	// inboxes[v] is node v's delivery buffer, a subslice of one flat
	// arena sized to the directed-port count at NewNetwork. Engines
	// recycle it every round by slice reset; it only regrows when
	// duplication faults push a round's deliveries past a node's degree,
	// after which the grown buffer is retained and reused.
	inboxes [][]Inbound
	rounds  int
	// workers is the engine option consumed by Run and RunUntilQuiet:
	// 1 (the default) selects the sequential reference engine, >1 the
	// sharded parallel engine, <=0 one worker per available CPU.
	workers int
	// started enforces that a Network is single-use (see begin).
	started bool
	// probe, when non-nil, observes the run (see probe.go); ps holds its
	// lazily allocated scratch buffers.
	probe Probe
	ps    *probeState
	// reg, when non-nil, receives host-side metrics (see metrics.go); ms
	// is the per-run state the engines consult through one nil check.
	reg *metrics.Registry
	ms  *metricsState
	// faultPlan, when non-nil, injects deterministic faults at the
	// canonical delivery point (see faultnet.go); fs is its per-run
	// state, nil on the fault-free fast path.
	faultPlan *faults.Plan
	fs        *faultState
}

// NewNetwork builds a network over g where node v runs programs[v].
// Programs may share state only through messages; the simulator never
// copies payloads, so programs must not mutate received payloads.
func NewNetwork(g *graph.Graph, programs []Program, src *rngutil.Source) *Network {
	if len(programs) != g.N() {
		panic(fmt.Sprintf("congest: %d programs for %d nodes", len(programs), g.N()))
	}
	n := g.N()
	topo := newTopology(g)
	net := &Network{
		g:        g,
		topo:     topo,
		src:      src,
		ctxs:     make([]Ctx, n),
		programs: programs,
		inboxes:  make([][]Inbound, n),
		workers:  1,
	}
	// All per-port state lives in three arenas subsliced per node; the
	// full-slice expressions pin each node's capacity to its degree so a
	// neighbor's append can never bleed into the next node's range.
	ports := int(topo.start[n])
	outArena := make([]Message, ports)
	sentArena := make([]bool, ports)
	inArena := make([]Inbound, ports)
	for v := 0; v < n; v++ {
		lo, hi := topo.start[v], topo.start[v+1]
		ctx := &net.ctxs[v]
		ctx.id = v
		ctx.net = net
		ctx.outbox = outArena[lo:hi:hi]
		ctx.sent = sentArena[lo:hi:hi]
		net.inboxes[v] = inArena[lo:lo:hi]
	}
	return net
}

// NewUniformNetwork builds a network where every node runs a fresh program
// produced by factory.
func NewUniformNetwork(g *graph.Graph, factory func(v int) Program, src *rngutil.Source) *Network {
	programs := make([]Program, g.N())
	for v := range programs {
		programs[v] = factory(v)
	}
	return NewNetwork(g, programs, src)
}

// Rounds returns the number of rounds executed so far.
func (n *Network) Rounds() int { return n.rounds }

// Messages returns the total number of messages sent so far, aggregated
// from the per-node shards. It must not be called while a run is in
// flight (no caller does: runs are synchronous).
func (n *Network) Messages() int {
	total := 0
	for v := range n.ctxs {
		total += n.ctxs[v].msgs
	}
	return total
}

// SetWorkers configures the engine used by Run and RunUntilQuiet: 1 (the
// default) is the sequential reference engine, w > 1 shards nodes across w
// workers, and w <= 0 selects one worker per available CPU. Results are
// bit-identical across all settings; only wall-clock time changes. The
// receiver returns itself so construction can chain.
func (n *Network) SetWorkers(w int) *Network {
	n.mustConfigure("SetWorkers")
	n.workers = normalizeWorkers(w)
	return n
}

// mustConfigure panics when a Set* option is applied after the network has
// started. A Network is single-use (see ErrNetworkReused): once Run (or a
// Shard) has consumed it, reconfiguring it cannot take effect and would
// silently mutate a spent network — worse, a probe or fault plan attached
// between two Run calls would make the ErrNetworkReused failure look like
// a partially-configured run. Configuration after start is therefore a
// caller bug and fails loudly, like Send on an invalid port.
func (n *Network) mustConfigure(option string) {
	if n.started {
		panic(fmt.Sprintf("congest: %s after Run on a single-use network (configure before the first Run)", option))
	}
}

// Graph returns the underlying graph.
func (n *Network) Graph() *graph.Graph { return n.g }

// ErrRoundLimit is returned by Run when maxRounds elapse before all nodes
// halt.
var ErrRoundLimit = errors.New("congest: round limit reached before all nodes halted")

// ErrNetworkReused is returned when Run (or RunParallel/RunUntilQuiet) is
// called a second time on the same Network. A Network is single-use:
// rounds, per-node message shards and program state accumulate across
// rounds, so re-running Init over them would silently corrupt both the
// accounting and the algorithm state. Build a fresh Network (the graph
// and source can be reused) for another run; Rounds and Messages remain
// readable after the first run completes.
var ErrNetworkReused = errors.New("network is single-use: Run already called; build a new Network")

// Run initializes all programs and executes rounds until every node halts
// or maxRounds elapse. It returns the number of rounds executed. The
// engine is selected by SetWorkers (sequential by default); results are
// identical either way. A Network is single-use: a second Run (or
// RunParallel/RunUntilQuiet) call returns ErrNetworkReused.
func (n *Network) Run(maxRounds int) (int, error) {
	if n.workers > 1 {
		return n.runParallel(maxRounds, n.workers, false)
	}
	return n.runSequential(maxRounds, false)
}

// RunParallel runs like Run but always on the sharded parallel engine with
// the given worker count (<= 0 selects one worker per available CPU).
// Delivery order is canonical (port-sorted at the receiver), so rounds,
// message counts and final node states are bit-identical to Run for every
// worker count.
func (n *Network) RunParallel(maxRounds, workers int) (int, error) {
	return n.runParallel(maxRounds, normalizeWorkers(workers), false)
}

// RunUntilQuiet runs like Run but also terminates (successfully) after a
// round in which no node sent any message, which is the natural stopping
// condition for flooding-style algorithms whose nodes cannot detect global
// termination locally. Like Run it consumes the SetWorkers engine option.
func (n *Network) RunUntilQuiet(maxRounds int) (int, error) {
	if n.workers > 1 {
		return n.runParallel(maxRounds, n.workers, true)
	}
	return n.runSequential(maxRounds, true)
}

// runSequential is the reference engine: one goroutine, rounds executed
// strictly in node-ID order. The parallel engine is differentially tested
// against it; both build inboxes receiver-driven in port order, which
// fixes the one canonical delivery order.
func (n *Network) runSequential(maxRounds int, quiet bool) (int, error) {
	if err := n.begin(); err != nil {
		return n.rounds, err
	}
	n.probeRunStart("sequential", 1)
	n.faultsRunStart(1)
	ms := n.metricsRunStart(1)
	for v, prog := range n.programs {
		prog.Init(&n.ctxs[v])
	}
	if n.probe != nil {
		n.probeDrainEvents() // marks/halts emitted during Init, round 0
	}
	for r := 0; r < maxRounds; r++ {
		if n.allHalted() {
			return n.finish(nil)
		}
		var t0 time.Time
		if ms != nil {
			t0 = time.Now()
		}
		// Deliver round r−1's sends through the canonical delivery point
		// (shared with the parallel engine; see deliverTo).
		delivered := 0
		for u := range n.inboxes {
			delivered += n.deliverTo(u, 0)
		}
		if quiet && r > 0 && delivered == 0 && n.faultsQuiet() {
			return n.finish(nil)
		}
		n.rounds++
		active := 0
		for v, prog := range n.programs {
			ctx := &n.ctxs[v]
			ctx.clearOutbox()
			if ctx.halted || n.nodeCrashed(v) {
				continue
			}
			active++
			prog.Step(ctx, n.inboxes[v])
		}
		fc := n.faultsRoundEnd()
		if n.probe != nil {
			n.probeRoundFlush(delivered, active, fc)
		}
		if ms != nil {
			ms.roundEnd(t0, delivered, fc)
		}
	}
	if n.allHalted() {
		return n.finish(nil)
	}
	return n.finish(fmt.Errorf("after %d rounds: %w", n.rounds, ErrRoundLimit))
}

// deliverTo rebuilds node u's inbox for the round about to execute
// (n.rounds+1, 1-based) and returns the number of messages delivered to
// it. It is THE canonical receiver-driven delivery point: both engines
// call it once per receiver per round, each receiver scanning its own
// CSR port range in order and reading the matching outbox slot of the
// sender across each port (one rev-table read), so delivery order is
// fixed regardless of engine or worker count. Messages to halted nodes
// are dropped. The inbox is the node's recycled arena subslice, reset to
// length zero here — steady-state rounds never allocate. When a fault
// plan is attached this is also the single injection point (see
// faultnet.go); w is the calling worker's shard index for the fault
// layer's padded count slots (0 on the sequential engine).
func (n *Network) deliverTo(u, w int) int {
	inbox := n.inboxes[u][:0]
	if n.fs != nil {
		inbox = n.fs.deliverFaulty(n, u, inbox, w)
		n.inboxes[u] = inbox
		return len(inbox)
	}
	if n.ctxs[u].halted {
		n.inboxes[u] = inbox
		return 0
	}
	t := n.topo
	lo, hi := t.start[u], t.start[u+1]
	for i := lo; i < hi; i++ {
		sender := &n.ctxs[t.to[i]]
		sp := t.rev[i]
		if sender.sent[sp] {
			inbox = append(inbox, Inbound{
				Port:    int(i - lo),
				From:    int(t.to[i]),
				Payload: sender.outbox[sp],
			})
		}
	}
	n.inboxes[u] = inbox
	return len(inbox)
}

// clearOutbox resets the node's sent flags and outbox slots after a
// delivery pass.
func (c *Ctx) clearOutbox() {
	for p, s := range c.sent {
		if s {
			c.sent[p] = false
			c.outbox[p] = nil
		}
	}
}

func (n *Network) allHalted() bool {
	for v := range n.ctxs {
		if !n.ctxs[v].halted {
			return false
		}
	}
	return true
}
