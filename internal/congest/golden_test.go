package congest

// Golden differential suite for the hot-path refactors: the exact trace
// bytes and fault fates of a fixed scenario set are pinned in testdata/,
// generated from the pre-CSR (map-based portOf, per-round inbox
// allocation) engines. Any rework of the delivery path — CSR port
// tables, recycled inbox arenas, int32 IDs — must reproduce these files
// byte for byte, on both engines and for every worker count, or it has
// changed observable behavior, not just memory layout.
//
// Regenerate with `go test ./internal/congest -run Golden -update` ONLY
// when the delivery contract itself is deliberately changed.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"almostmix/internal/faults"
	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden testdata files")

// goldenProgram is a deterministic workload exercising every contract the
// refactor must preserve: port-ordered delivery, per-node RNG streams,
// phase marks, staggered halting, and payload forwarding.
type goldenProgram struct {
	haltAt int
	seen   int
	sent   []bool // per-port guard: duplication faults redeliver on one port
}

func (p *goldenProgram) Init(ctx *Ctx) {
	p.sent = make([]bool, ctx.Degree())
	ctx.Broadcast(ctx.ID())
}

func (p *goldenProgram) Step(ctx *Ctx, inbox []Inbound) {
	for i := range p.sent {
		p.sent[i] = false
	}
	for _, in := range inbox {
		v := in.Payload.(int)
		p.seen += v
		// Forward on the arrival port with a per-node-stream coin, so the
		// refactor must also preserve RNG consumption order.
		if ctx.Rand().IntN(4) != 0 && !p.sent[in.Port] {
			p.sent[in.Port] = true
			ctx.Send(in.Port, v+1)
		}
	}
	if ctx.Round()%3 == 0 && ctx.Tracing() {
		ctx.Mark(fmt.Sprintf("beat-%d", ctx.Round()/3))
	}
	if ctx.Round() >= p.haltAt {
		ctx.Halt()
	}
}

// goldenDoc is the on-disk golden format: the full trace export plus the
// run totals and fault fates.
type goldenDoc struct {
	Trace    json.RawMessage `json:"trace"`
	Rounds   int             `json:"rounds"`
	Messages int             `json:"messages"`
	Faults   faults.Counts   `json:"faults"`
}

type goldenScenario struct {
	name      string
	build     func() *graph.Graph
	faultSpec string
	maxRounds int
}

func goldenScenarios() []goldenScenario {
	return []goldenScenario{
		{name: "gnp24", build: func() *graph.Graph { return graph.Gnp(24, 0.3, rngutil.NewRand(7)) }, maxRounds: 40},
		{name: "star16", build: func() *graph.Graph { return graph.Star(16) }, maxRounds: 40},
		{name: "lollipop8x6", build: func() *graph.Graph { return graph.Lollipop(8, 6) }, maxRounds: 40},
		{name: "rr32d4", build: func() *graph.Graph { return graph.RandomRegular(32, 4, rngutil.NewRand(9)) }, maxRounds: 40},
		{
			name:      "faults-gnp24",
			build:     func() *graph.Graph { return graph.Gnp(24, 0.3, rngutil.NewRand(7)) },
			faultSpec: "drop=0.15,dup=0.1,delay=0.15:2,crash=3@4+5,sever=2@6",
			maxRounds: 40,
		},
		{
			name:      "faults-star16",
			build:     func() *graph.Graph { return graph.Star(16) },
			faultSpec: "drop=0.1,dup=0.2,delay=0.1:3,crash=0@5+4",
			maxRounds: 40,
		},
		{
			name:      "faults-rr32d4",
			build:     func() *graph.Graph { return graph.RandomRegular(32, 4, rngutil.NewRand(9)) },
			faultSpec: "drop=0.2,delay=0.2:1,sever=5@3,crash=7@2+6",
			maxRounds: 40,
		},
	}
}

// runGolden executes one scenario on the given engine/worker combination
// and returns the serialized golden document.
func runGolden(t *testing.T, sc goldenScenario, workers int) []byte {
	t.Helper()
	g := sc.build()
	sink := NewTraceSink()
	net := NewUniformNetwork(g, func(v int) Program {
		return &goldenProgram{haltAt: 12 + v%5}
	}, rngutil.NewSource(41)).SetProbe(sink).SetWorkers(workers)
	var plan *faults.Plan
	if sc.faultSpec != "" {
		var err error
		plan, err = faults.Parse(sc.faultSpec, 99)
		if err != nil {
			t.Fatalf("%s: parse fault spec: %v", sc.name, err)
		}
		net.SetFaults(plan)
	}
	rounds, err := net.Run(sc.maxRounds)
	if err != nil {
		t.Fatalf("%s workers=%d: run: %v", sc.name, workers, err)
	}
	var trace bytes.Buffer
	if err := sink.WriteJSON(&trace); err != nil {
		t.Fatalf("%s: trace export: %v", sc.name, err)
	}
	doc := goldenDoc{
		Trace:    trace.Bytes(),
		Rounds:   rounds,
		Messages: net.Messages(),
	}
	if plan != nil {
		doc.Faults = plan.Totals()
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatalf("%s: marshal: %v", sc.name, err)
	}
	return append(buf, '\n')
}

// TestGoldenTraceFaultFates pins trace bytes and fault fates of the fixed
// scenario set against the committed pre-refactor goldens, across the
// sequential engine and the parallel engine at workers 2 and 8.
func TestGoldenTraceFaultFates(t *testing.T) {
	for _, sc := range goldenScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", sc.name+".json")
			got := runGolden(t, sc, 1)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to generate): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("sequential engine diverges from pre-refactor golden %s", path)
			}
			for _, workers := range []int{2, 8} {
				if par := runGolden(t, sc, workers); !bytes.Equal(par, want) {
					t.Fatalf("parallel engine (workers=%d) diverges from golden %s", workers, path)
				}
			}
		})
	}
}
