package congest

// Benchmark/regression workloads for the hot path. The ticker is the
// canonical steady-state load: every node broadcasts a pre-boxed
// zero-size token on every port every round, so a steady round moves the
// maximum 2m messages with zero program-side allocation — what the
// delivery path does per round is exactly what the measurement sees.

import (
	"errors"
	"runtime"
)

// tickToken is the zero-size payload: converting a zero-width value to
// an interface never allocates (it boxes the runtime's shared zero
// base), so sends cost nothing on the heap.
type tickToken struct{}

// Tick is the shared pre-boxed payload tickers broadcast.
var Tick Message = tickToken{}

// ticker broadcasts Tick on every port each round and halts after the
// configured round. It is stateless per round; one instance may be
// shared by every node of a network.
type ticker struct{ rounds int }

// NewTicker returns the steady-state benchmark program: broadcast a
// zero-size token on every port each round, halt after `rounds` rounds.
func NewTicker(rounds int) Program { return &ticker{rounds: rounds} }

func (t *ticker) Init(ctx *Ctx) { ctx.Broadcast(Tick) }

func (t *ticker) Step(ctx *Ctx, inbox []Inbound) {
	if ctx.Round() >= t.rounds {
		ctx.Halt()
		return
	}
	ctx.Broadcast(Tick)
}

// MeasureSteadyAllocs reports the average heap allocations per
// steady-state round of an engine configuration, by differencing two
// otherwise-identical runs of `rounds` and `2·rounds` rounds: network
// construction, run-start scratch (probe/fault/metrics state, worker
// pool) and warmup growth appear in both runs and cancel, leaving only
// what a steady round allocates. build must return a fresh Network with
// identical construction on every call (networks are single-use);
// ErrRoundLimit from the run is tolerated so non-halting workloads can
// be cut off at the measured round count.
//
// The measurement pins GOMAXPROCS to 1 (like testing.AllocsPerRun) so
// scheduler-dependent allocation noise cannot leak in; the parallel
// engine still exercises its full barrier structure, merely serialized.
// Residual runtime noise (a GC cycle landing inside one window) is
// strictly additive, so the minimum over a few independent short/long
// pairs converges to the true steady cost — which keeps a strict == 0
// regression gate assertable (alloc_test.go, cmd/benchsuite -gate).
func MeasureSteadyAllocs(build func() *Network, rounds int) float64 {
	return MeasureSteadyAllocsFunc(func(r int) {
		if _, err := build().Run(r); err != nil && !errors.Is(err, ErrRoundLimit) {
			panic(err)
		}
	}, rounds)
}

// MeasureSteadyAllocsFunc is MeasureSteadyAllocs for an arbitrary run
// function: run(r) must execute r rounds of the configuration under
// measurement, with identical setup on every call. It exists for round
// loops the Network does not drive itself — the shard harness under an
// external coordinator (alloc_test.go) and the transport benchsuite.
func MeasureSteadyAllocsFunc(run func(rounds int), rounds int) float64 {
	measure := func(r int) float64 {
		return allocsPerRun(3, func() { run(r) })
	}
	const trials = 3
	best := 0.0
	for trial := 0; trial < trials; trial++ {
		short := measure(rounds)
		long := measure(2 * rounds)
		per := (long - short) / float64(rounds)
		if per < 0 {
			per = 0 // jitter on an allocation-free path
		}
		if trial == 0 || per < best {
			best = per
		}
		if best == 0 {
			break
		}
	}
	return best
}

// allocsPerRun mirrors testing.AllocsPerRun without importing testing
// into the non-test build: one warmup call, then the average mallocs of
// runs calls under GOMAXPROCS(1).
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warmup: steady-states allocator caches and arena growth
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}
