package congest

// Fault injection for the round engines. With a faults.Plan attached
// (SetFaults), the one canonical receiver-driven delivery point —
// Network.deliverTo, shared verbatim by the sequential and the parallel
// engine — consults the plan per message and injects drops, duplicates
// and delays; crashed nodes neither step nor receive while crashed. All
// decisions are pure hashes of (plan seed, round, directed-edge slot), so
// a fixed (seed, spec) pair reproduces a bit-identical faulty execution
// on every engine and worker count (asserted by the differential suites).
//
// Contract details, mirroring the probe layer's sharding discipline:
//
//   - Delayed messages are buffered per receiver: fs.pending[u] is
//     written and read only while building u's inbox, i.e. only by the
//     worker owning u's deliver shard, so the layer adds no shared
//     mutable state. Due delayed messages are delivered BEFORE the
//     round's fresh messages, in enqueue order — that fixes the one
//     canonical inbox order under faults.
//   - A message is rolled exactly once, at its original delivery round;
//     a delayed message delivers plainly at its due round.
//   - A node crashed in round r (1-based, the round being executed) does
//     not step in r, and every message that would reach it in r — fresh
//     or due-delayed — is dropped and counted. Sends it made before
//     crashing still deliver: they were already in flight. Messages to
//     HALTED nodes keep the fault-free semantics (silently discarded,
//     not counted as fault drops).
//   - Severed edges drop both directions from the sever round on,
//     counted as drops.
//   - Per-round fault counts are accumulated in padded per-worker slots
//     and drained by the coordinator between barriers (faultsRoundEnd),
//     which also folds them into the plan totals and hands them to the
//     probe record and the metrics counters.
//
// With no plan attached the engines keep a single nil check on the
// delivery path; an attached-but-empty plan takes the fault path but
// produces byte-identical executions and traces (asserted by tests).

import "almostmix/internal/faults"

// SetFaults attaches a fault-injection plan to the network (nil
// detaches). Like SetProbe it must be called before Run and panics
// afterwards; the receiver returns itself so construction can chain.
func (n *Network) SetFaults(plan *faults.Plan) *Network {
	n.mustConfigure("SetFaults")
	n.faultPlan = plan
	return n
}

// delayedMsg is one in-flight delayed delivery, buffered at the receiver.
type delayedMsg struct {
	due int // 1-based round at which it delivers
	in  Inbound
}

// faultCountStride spaces per-worker Counts (32 bytes each) a cache line
// apart, matching the engines' padded-counter discipline.
const faultCountStride = 2

// faultState is the per-run scratch of the fault layer, allocated at run
// start only when a plan is attached.
type faultState struct {
	plan    *faults.Plan
	pending [][]delayedMsg // per receiver; single-writer per phase
	counts  []faults.Counts
}

// faultsRunStart allocates the fault scratch for the run. workers is the
// effective worker count (1 for the sequential engine).
func (n *Network) faultsRunStart(workers int) {
	if n.faultPlan == nil {
		n.fs = nil
		return
	}
	n.fs = &faultState{
		plan:    n.faultPlan,
		pending: make([][]delayedMsg, n.g.N()),
		counts:  make([]faults.Counts, workers*faultCountStride),
	}
}

// nodeCrashed reports whether node v is crashed in the current round
// (n.rounds, already incremented when the step phase consults it).
func (n *Network) nodeCrashed(v int) bool {
	return n.fs != nil && n.fs.plan.Crashed(v, n.rounds)
}

// faultsQuiet reports whether the fault layer allows a quiet termination:
// no delayed message is still in flight and no crashed node is due to
// recover (a recovery can resume traffic from queued program state). It
// is called by the coordinator only, between barriers.
func (n *Network) faultsQuiet() bool {
	if n.fs == nil {
		return true
	}
	for _, pend := range n.fs.pending {
		if len(pend) > 0 {
			return false
		}
	}
	// n.rounds is the last executed round here: the quiet check runs
	// before the round counter advances. The run must survive through
	// the recovery round itself: a node that recovers at round r steps
	// again only IN round r, so checking just the next round quit one
	// round early and dropped the queued program state the recovery was
	// meant to resume (TestScratchQuietRecovery pins this).
	return !n.fs.plan.RecoveringAt(n.rounds) && !n.fs.plan.RecoveringAt(n.rounds+1)
}

// faultsRoundEnd drains the per-worker fault counts of the round just
// executed, adds the round's crashed-node count, folds the result into
// the plan totals and returns it for the probe record and the metrics
// counters. Coordinator only, after the step barrier.
func (n *Network) faultsRoundEnd() faults.Counts {
	if n.fs == nil {
		return faults.Counts{}
	}
	var c faults.Counts
	for w := 0; w < len(n.fs.counts); w += faultCountStride {
		c.Add(n.fs.counts[w])
		n.fs.counts[w] = faults.Counts{}
	}
	c.Crashed = int64(n.fs.plan.CrashedCount(n.rounds))
	n.fs.plan.AddCounts(c)
	return c
}

// deliverFaulty is the fault-injecting body of deliverTo: it rebuilds
// receiver u's inbox for round n.rounds+1, applying the plan at this one
// point. w is the caller's worker index for the sharded count slots.
func (fs *faultState) deliverFaulty(n *Network, u int, inbox []Inbound, w int) []Inbound {
	round := n.rounds + 1
	fc := &fs.counts[w*faultCountStride]
	ctx := &n.ctxs[u]

	if ctx.halted {
		// A halted node never steps again: discard anything still aimed
		// at it, delayed or fresh, under the fault-free halted-drop rule.
		fs.pending[u] = fs.pending[u][:0]
		return inbox
	}
	crashed := fs.plan.Crashed(u, round)

	// Due delayed messages first, in enqueue order.
	kept := fs.pending[u][:0]
	for _, d := range fs.pending[u] {
		switch {
		case d.due > round:
			kept = append(kept, d)
		case crashed:
			fc.Dropped++
		default:
			inbox = append(inbox, d.in)
		}
	}
	fs.pending[u] = kept

	// Fresh messages, receiver-driven in port order over the CSR range —
	// the same canonical scan as the fault-free path.
	t := n.topo
	lo, hi := t.start[u], t.start[u+1]
	for i := lo; i < hi; i++ {
		sender := &n.ctxs[t.to[i]]
		sp := t.rev[i]
		if !sender.sent[sp] {
			continue
		}
		if crashed || fs.plan.Severed(int(t.edge[i]), round) {
			fc.Dropped++
			continue
		}
		in := Inbound{Port: int(i - lo), From: int(t.to[i]), Payload: sender.outbox[sp]}
		slot := t.slotOf(i, u)
		fate, delay := fs.plan.MessageFate(round, slot)
		switch fate {
		case faults.Drop:
			fc.Dropped++
		case faults.Duplicate:
			fc.Duplicated++
			inbox = append(inbox, in, in)
		case faults.Delay:
			fc.Delayed++
			fs.pending[u] = append(fs.pending[u], delayedMsg{due: round + delay, in: in})
		default:
			inbox = append(inbox, in)
		}
	}
	return inbox
}
