// Package rngutil provides a deterministic, splittable random-number
// fabric for the simulator.
//
// Every component of the simulation (each node program, each walk batch,
// each algorithm phase) draws from its own independent stream derived from
// a root seed. Streams are derived by hashing a (seed, label, index) tuple
// with SplitMix64, so results are reproducible regardless of scheduling
// order and independent of how many values other components consume.
package rngutil

import (
	"math/rand/v2"
)

// splitMix64 advances a SplitMix64 state and returns the next output.
// SplitMix64 is a well-known 64-bit finalizer-based generator; here it is
// used only for seed derivation, never as the consumer-facing stream.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashString folds a label into a 64-bit value using FNV-1a.
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Source derives child seeds and streams from a root seed.
type Source struct {
	seed uint64
}

// NewSource returns a Source rooted at seed.
func NewSource(seed uint64) *Source {
	return &Source{seed: seed}
}

// Seed returns the root seed of the source.
func (s *Source) Seed() uint64 { return s.seed }

// Derive returns the child seed for (label, index).
func (s *Source) Derive(label string, index uint64) uint64 {
	state := s.seed ^ hashString(label)
	_ = splitMix64(&state)
	state ^= index * 0xd1342543de82ef95
	return splitMix64(&state)
}

// Stream returns an independent *rand.Rand for (label, index).
func (s *Source) Stream(label string, index uint64) *rand.Rand {
	seed := s.Derive(label, index)
	return rand.New(rand.NewPCG(seed, seed^0x5851f42d4c957f2d))
}

// Child returns a Source whose streams are independent from the parent's
// other children.
func (s *Source) Child(label string, index uint64) *Source {
	return &Source{seed: s.Derive(label, index)}
}

// NewRand returns a standalone deterministic *rand.Rand for a bare seed.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, splitMixOnce(seed)))
}

func splitMixOnce(seed uint64) uint64 {
	state := seed
	return splitMix64(&state)
}

// Perm fills a random permutation of [0,n) using r.
func Perm(r *rand.Rand, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
