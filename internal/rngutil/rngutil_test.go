package rngutil

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := NewSource(42).Stream("walks", 7)
	b := NewSource(42).Stream("walks", 7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestStreamIndependenceByLabel(t *testing.T) {
	s := NewSource(42)
	a := s.Stream("walks", 0)
	b := s.Stream("hash", 0)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws across differently-labeled streams", same)
	}
}

func TestStreamIndependenceByIndex(t *testing.T) {
	s := NewSource(1)
	if s.Derive("x", 0) == s.Derive("x", 1) {
		t.Fatal("indices 0 and 1 derived identical seeds")
	}
}

func TestChildIndependence(t *testing.T) {
	s := NewSource(9)
	c1 := s.Child("phase", 1)
	c2 := s.Child("phase", 2)
	if c1.Seed() == c2.Seed() {
		t.Fatal("children share seed")
	}
	if c1.Seed() == s.Seed() {
		t.Fatal("child equals parent")
	}
}

func TestSeedAccessor(t *testing.T) {
	if NewSource(123).Seed() != 123 {
		t.Fatal("Seed() mismatch")
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, szRaw uint8) bool {
		n := int(szRaw)%50 + 1
		p := Perm(NewRand(seed), n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformityRough(t *testing.T) {
	// Position of element 0 should be roughly uniform over 4 slots.
	counts := make([]int, 4)
	for seed := uint64(0); seed < 4000; seed++ {
		p := Perm(NewRand(seed), 4)
		for i, v := range p {
			if v == 0 {
				counts[i]++
			}
		}
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("slot %d count %d far from 1000", i, c)
		}
	}
}
