// Package faults provides a deterministic, seed-reproducible fault plan
// for the CONGEST simulator: per-message drop, duplication and delay,
// node crashes with optional recovery, and severed links.
//
// The paper's algorithms assume a fault-free synchronous network; this
// package is the controlled way to weaken that assumption and measure
// what degrades (EXPERIMENTS.md E15). Every per-message decision is a
// pure hash of (seed, round, directed-edge slot) via an rngutil stream —
// never a draw from a shared sequential generator — so a fixed
// (seed, spec) pair injects the exact same fault events regardless of
// engine, worker count or iteration order. That is what lets the
// differential suites assert bit-identical faulty executions across the
// sequential and parallel engines.
//
// The package is deliberately independent of the simulator: it only
// answers "what happens to the message in this slot this round?" and
// "is this node crashed this round?". The one canonical injection point
// lives in internal/congest's receiver-driven delivery path.
package faults

import (
	"fmt"
	"strconv"
	"strings"

	"almostmix/internal/rngutil"
)

// Counts are injected-fault event totals: messages dropped (including
// losses at severed links and crashed receivers), duplicated and delayed,
// plus node-rounds spent crashed. The zero value is ready to use.
type Counts struct {
	Dropped    int64 `json:"dropped,omitempty"`
	Duplicated int64 `json:"duplicated,omitempty"`
	Delayed    int64 `json:"delayed,omitempty"`
	Crashed    int64 `json:"crashed,omitempty"`
}

// Add folds o into c.
func (c *Counts) Add(o Counts) {
	c.Dropped += o.Dropped
	c.Duplicated += o.Duplicated
	c.Delayed += o.Delayed
	c.Crashed += o.Crashed
}

// Any reports whether any event was counted.
func (c Counts) Any() bool {
	return c.Dropped != 0 || c.Duplicated != 0 || c.Delayed != 0 || c.Crashed != 0
}

// Crash is one node-crash rule: Node stops executing and receiving from
// round Round (1-based, inclusive) for Recover rounds; Recover == 0 means
// the crash is permanent. Program state is preserved across recovery
// (crash-stop with state-preserving restart), so the model is message
// omission for the crashed interval.
type Crash struct {
	Node, Round, Recover int
}

// Sever is one link-failure rule: from round Round on, every delivery
// across edge Edge (both directions) is dropped.
type Sever struct {
	Edge, Round int
}

// Fate is the per-message outcome of the plan's deterministic roll.
type Fate int

const (
	// Deliver leaves the message untouched.
	Deliver Fate = iota
	// Drop discards the message.
	Drop
	// Duplicate delivers the message twice in the same round.
	Duplicate
	// Delay postpones delivery by the plan's delay (MessageFate's second
	// return). A delayed message is rolled only once: it delivers plainly
	// at its due round.
	Delay
)

// Plan is a deterministic fault-injection plan. Build one with Parse (the
// -faults flag syntax) or New plus the With* builders; attach it to a
// simulator run with congest.Network.SetFaults. Decisions are stateless
// hashes, so a Plan may observe several consecutive runs (totals
// accumulate, like the multi-run trace probes), but it must not be shared
// by two concurrently running networks.
type Plan struct {
	src     *rngutil.Source
	seed    uint64
	drop    float64
	dup     float64
	delayP  float64
	delayBy int
	crashes []Crash
	severs  []Sever

	// table, when attached, answers MessageFate for its round window in
	// place of the raw hashes — the TCP transport's fate-table handshake
	// (see fatetable.go). Crash and sever rules are rule lookups with no
	// delivery-state dependence and are never tabled.
	table *FateTable

	// totals is written only by the engine coordinator between round
	// barriers (AddCounts) and read after the run (Totals).
	totals Counts
}

// New returns an empty plan rooted at seed: no rules, every message
// delivered untouched. Attaching an empty plan to a network is
// byte-identical to attaching none (asserted by the congest tests).
func New(seed uint64) *Plan {
	return &Plan{src: rngutil.NewSource(seed), seed: seed}
}

// Seed returns the plan's root seed.
func (p *Plan) Seed() uint64 { return p.seed }

// Empty reports whether the plan has no rules at all.
func (p *Plan) Empty() bool {
	return p.drop == 0 && p.dup == 0 && p.delayP == 0 &&
		len(p.crashes) == 0 && len(p.severs) == 0
}

// Probabilistic reports whether the plan rolls any per-message fate
// (drop, duplication or delay). Crash and sever rules are deterministic
// schedules that replay from the spec alone, so only probabilistic plans
// need a fate table shipped to replicas.
func (p *Plan) Probabilistic() bool {
	return p.drop+p.dup+p.delayP > 0
}

// AttachTable installs (or, with nil, detaches) a pre-rolled fate table;
// subsequent MessageFate calls inside the table's window answer from it.
// Attaching replaces any previous window — callers ship consecutive
// windows as a run progresses. Like the Set* options on a network, this
// is a between-rounds configuration call, never concurrent with
// delivery.
func (p *Plan) AttachTable(t *FateTable) { p.table = t }

// WithDrop sets the per-message drop probability.
func (p *Plan) WithDrop(prob float64) *Plan {
	mustProb("drop", prob)
	p.drop = prob
	p.checkBudget()
	return p
}

// WithDuplicate sets the per-message duplication probability.
func (p *Plan) WithDuplicate(prob float64) *Plan {
	mustProb("dup", prob)
	p.dup = prob
	p.checkBudget()
	return p
}

// WithDelay makes each message independently delayed by rounds with the
// given probability.
func (p *Plan) WithDelay(prob float64, rounds int) *Plan {
	mustProb("delay", prob)
	if rounds < 1 {
		panic(fmt.Sprintf("faults: delay of %d rounds (want >= 1)", rounds))
	}
	p.delayP = prob
	p.delayBy = rounds
	p.checkBudget()
	return p
}

// WithCrash adds a crash rule (recover == 0 is permanent).
func (p *Plan) WithCrash(node, round, recover int) *Plan {
	if node < 0 || round < 1 || recover < 0 {
		panic(fmt.Sprintf("faults: invalid crash node=%d round=%d recover=%d", node, round, recover))
	}
	p.crashes = append(p.crashes, Crash{Node: node, Round: round, Recover: recover})
	return p
}

// WithSever adds a link-failure rule.
func (p *Plan) WithSever(edge, round int) *Plan {
	if edge < 0 || round < 1 {
		panic(fmt.Sprintf("faults: invalid sever edge=%d round=%d", edge, round))
	}
	p.severs = append(p.severs, Sever{Edge: edge, Round: round})
	return p
}

func mustProb(name string, prob float64) {
	if prob < 0 || prob > 1 {
		panic(fmt.Sprintf("faults: %s probability %v outside [0,1]", name, prob))
	}
}

func (p *Plan) checkBudget() {
	if p.drop+p.dup+p.delayP > 1 {
		panic(fmt.Sprintf("faults: drop+dup+delay probabilities sum to %v > 1",
			p.drop+p.dup+p.delayP))
	}
}

// MessageFate decides what happens to the message delivered in the given
// round on the given directed-edge slot (2·edgeID + direction, the probe
// layer's encoding — unique per message per round under the CONGEST
// capacity). It returns the fate and, for Delay, the delay in rounds. The
// decision is a pure function of (seed, round, slot): one uniform roll
// partitioned into drop / duplicate / delay / deliver bands.
func (p *Plan) MessageFate(round, slot int) (Fate, int) {
	if p.drop == 0 && p.dup == 0 && p.delayP == 0 {
		return Deliver, 0
	}
	if p.table != nil {
		return p.table.Lookup(round, slot)
	}
	return p.rawFate(round, slot)
}

// rawFate is the hash path shared by MessageFate and BuildFateTable: it
// always rolls, never consults an attached table.
func (p *Plan) rawFate(round, slot int) (Fate, int) {
	u := p.src.Derive("msg", uint64(round)<<33^uint64(slot))
	roll := float64(u>>11) / (1 << 53)
	switch {
	case roll < p.drop:
		return Drop, 0
	case roll < p.drop+p.dup:
		return Duplicate, 0
	case roll < p.drop+p.dup+p.delayP:
		return Delay, p.delayBy
	default:
		return Deliver, 0
	}
}

// Crashed reports whether node is crashed in the given (1-based) round.
func (p *Plan) Crashed(node, round int) bool {
	for _, c := range p.crashes {
		if c.Node != node || round < c.Round {
			continue
		}
		if c.Recover == 0 || round < c.Round+c.Recover {
			return true
		}
	}
	return false
}

// Severed reports whether edge is severed in the given round.
func (p *Plan) Severed(edge, round int) bool {
	for _, s := range p.severs {
		if s.Edge == edge && round >= s.Round {
			return true
		}
	}
	return false
}

// CrashedCount returns the number of nodes crashed in the given round.
func (p *Plan) CrashedCount(round int) int {
	n := 0
	for _, c := range p.crashes {
		if round >= c.Round && (c.Recover == 0 || round < c.Round+c.Recover) {
			n++
		}
	}
	return n
}

// CrashedCountIn returns the number of nodes in [lo, hi) crashed in the
// given round — the sharded engines count crash node-rounds over their
// owned range so per-shard counts sum exactly to CrashedCount.
func (p *Plan) CrashedCountIn(round, lo, hi int) int {
	n := 0
	for _, c := range p.crashes {
		if c.Node >= lo && c.Node < hi &&
			round >= c.Round && (c.Recover == 0 || round < c.Round+c.Recover) {
			n++
		}
	}
	return n
}

// RecoveringAt reports whether any crashed node is due to recover after
// the given round — the engines keep a quiet-terminating run alive while
// this holds, so a recovery can resume traffic.
func (p *Plan) RecoveringAt(round int) bool {
	for _, c := range p.crashes {
		if c.Recover > 0 && round >= c.Round && round < c.Round+c.Recover {
			return true
		}
	}
	return false
}

// MaxDelay returns the largest delay the plan can impose on one message
// (0 with no delay rule), for callers sizing round budgets.
func (p *Plan) MaxDelay() int {
	if p.delayP > 0 {
		return p.delayBy
	}
	return 0
}

// RecoverySlack returns the total number of crashed-with-recovery
// node-rounds, a round-budget supplement for runs that must outlive every
// scheduled recovery.
func (p *Plan) RecoverySlack() int {
	total := 0
	for _, c := range p.crashes {
		total += c.Recover
	}
	return total
}

// AddCounts folds one round's injected-event counts into the plan totals.
// It must be called only from the engine coordinator between round
// barriers (congest does; see faultsRoundEnd).
func (p *Plan) AddCounts(c Counts) { p.totals.Add(c) }

// Totals returns the accumulated injected-event counts across every run
// the plan has observed.
func (p *Plan) Totals() Counts { return p.totals }

// Parse builds a plan from the -faults flag syntax: comma-separated
// clauses
//
//	drop=P            drop each message with probability P
//	dup=P             duplicate each message with probability P
//	delay=P:D         delay each message by D rounds with probability P
//	crash=V@R         crash node V at round R, permanently
//	crash=V@R+K       crash node V at round R, recover after K rounds
//	sever=E@R         sever edge E from round R on
//
// e.g. "drop=0.05,dup=0.01,delay=0.1:3,crash=5@40+20,sever=2@10". An
// empty spec yields an empty plan. The seed feeds every probabilistic
// decision; (seed, spec) fully determines the injected event stream.
func Parse(spec string, seed uint64) (*Plan, error) {
	p := New(seed)
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	if err := p.parse(spec); err != nil {
		return nil, fmt.Errorf("faults: spec %q: %w", spec, err)
	}
	return p, nil
}

func (p *Plan) parse(spec string) (err error) {
	// The builders panic on out-of-range values so programmatic misuse
	// fails loudly; for flag input, convert those panics to errors.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return fmt.Errorf("clause %q: want key=value", clause)
		}
		switch key {
		case "drop", "dup":
			prob, perr := strconv.ParseFloat(val, 64)
			if perr != nil {
				return fmt.Errorf("clause %q: bad probability: %v", clause, perr)
			}
			if key == "drop" {
				p.WithDrop(prob)
			} else {
				p.WithDuplicate(prob)
			}
		case "delay":
			probS, roundsS, ok := strings.Cut(val, ":")
			if !ok {
				return fmt.Errorf("clause %q: want delay=P:rounds", clause)
			}
			prob, perr := strconv.ParseFloat(probS, 64)
			if perr != nil {
				return fmt.Errorf("clause %q: bad probability: %v", clause, perr)
			}
			rounds, rerr := strconv.Atoi(roundsS)
			if rerr != nil {
				return fmt.Errorf("clause %q: bad round count: %v", clause, rerr)
			}
			p.WithDelay(prob, rounds)
		case "crash":
			nodeS, rest, ok := strings.Cut(val, "@")
			if !ok {
				return fmt.Errorf("clause %q: want crash=node@round[+recover]", clause)
			}
			roundS, recoverS, hasRecover := strings.Cut(rest, "+")
			node, nerr := strconv.Atoi(nodeS)
			round, rerr := strconv.Atoi(roundS)
			if nerr != nil || rerr != nil {
				return fmt.Errorf("clause %q: bad node or round", clause)
			}
			recover := 0
			if hasRecover {
				var kerr error
				if recover, kerr = strconv.Atoi(recoverS); kerr != nil || recover < 1 {
					return fmt.Errorf("clause %q: bad recovery round count", clause)
				}
			}
			p.WithCrash(node, round, recover)
		case "sever":
			edgeS, roundS, ok := strings.Cut(val, "@")
			if !ok {
				return fmt.Errorf("clause %q: want sever=edge@round", clause)
			}
			edge, eerr := strconv.Atoi(edgeS)
			round, rerr := strconv.Atoi(roundS)
			if eerr != nil || rerr != nil {
				return fmt.Errorf("clause %q: bad edge or round", clause)
			}
			p.WithSever(edge, round)
		default:
			return fmt.Errorf("clause %q: unknown rule %q (want drop, dup, delay, crash or sever)", clause, key)
		}
	}
	return nil
}
