package faults

// The fate table is the wire form of a plan's probabilistic decisions:
// a pre-rolled window of per-(round, slot) message fates. The TCP
// transport cannot let each shard roll fates lazily — deliverFaulty
// consults delivery state (sender outboxes) a replica only holds for its
// own senders — so the coordinator, which owns the authoritative plan,
// enumerates the pure (seed, round, slot) hashes for a round window
// once, slices the result per shard by receiving endpoint, and ships
// each shard its slice. A plan with an attached table answers
// MessageFate from the table instead of hashing, so the canonical
// delivery path in internal/congest runs unchanged on every replica and
// stays byte-identical to the in-process engines.
//
// Tables are windows, not whole runs: walk workloads carry round
// budgets in the tens of thousands, and a full-horizon table would both
// blow the frame-size cap and hash fates for rounds that never execute.
// Lookup outside the attached window is a protocol violation and panics
// rather than silently delivering.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// FateTable holds every non-Deliver message fate for rounds in
// [start, end), sorted by (round, slot). Deliver is implicit: a (round,
// slot) pair absent from the table delivers untouched, which keeps the
// table proportional to the fault rate rather than the message rate.
type FateTable struct {
	start, end int
	// offs[r-start] .. offs[r-start+1] index the entry arrays for round r.
	offs   []int32
	slots  []int32
	fates  []uint8
	delays []int32
}

// BuildFateTable rolls the plan's probabilistic fates for every round in
// [start, end) and every directed-edge slot in [0, slots), recording the
// non-Deliver outcomes. It always uses the raw (seed, round, slot)
// hashes, never an attached table, so building from a coordinator plan
// is safe at any time. A plan with no probabilistic rules yields an
// empty (all-Deliver) table.
func BuildFateTable(p *Plan, start, end, slots int) *FateTable {
	if start < 1 || end < start {
		panic(fmt.Sprintf("faults: fate table window [%d,%d) invalid", start, end))
	}
	t := &FateTable{start: start, end: end, offs: make([]int32, 1, end-start+1)}
	if !p.Probabilistic() {
		for r := start; r < end; r++ {
			t.offs = append(t.offs, 0)
		}
		return t
	}
	for r := start; r < end; r++ {
		for s := 0; s < slots; s++ {
			fate, delay := p.rawFate(r, s)
			if fate == Deliver {
				continue
			}
			t.slots = append(t.slots, int32(s))
			t.fates = append(t.fates, uint8(fate))
			t.delays = append(t.delays, int32(delay))
		}
		t.offs = append(t.offs, int32(len(t.slots)))
	}
	return t
}

// Rounds returns the half-open round window [start, end) the table
// covers.
func (t *FateTable) Rounds() (start, end int) { return t.start, t.end }

// Entries returns the number of non-Deliver fates recorded.
func (t *FateTable) Entries() int { return len(t.slots) }

// Filter returns a copy of the table keeping only the entries whose slot
// satisfies keep — the coordinator uses it to slice a window down to the
// slots whose receiving endpoint a shard owns.
func (t *FateTable) Filter(keep func(slot int) bool) *FateTable {
	f := &FateTable{start: t.start, end: t.end, offs: make([]int32, 1, len(t.offs))}
	for r := t.start; r < t.end; r++ {
		lo, hi := t.offs[r-t.start], t.offs[r-t.start+1]
		for i := lo; i < hi; i++ {
			if !keep(int(t.slots[i])) {
				continue
			}
			f.slots = append(f.slots, t.slots[i])
			f.fates = append(f.fates, t.fates[i])
			f.delays = append(f.delays, t.delays[i])
		}
		f.offs = append(f.offs, int32(len(f.slots)))
	}
	return f
}

// Lookup returns the fate rolled for (round, slot), Deliver for pairs
// not in the table. A round outside the attached window means the
// coordinator and shard disagree about shipped fate coverage — a
// protocol bug, never a recoverable condition — so it panics.
func (t *FateTable) Lookup(round, slot int) (Fate, int) {
	if round < t.start || round >= t.end {
		panic(fmt.Sprintf("faults: fate lookup for round %d outside shipped window [%d,%d)",
			round, t.start, t.end))
	}
	lo, hi := int(t.offs[round-t.start]), int(t.offs[round-t.start+1])
	span := t.slots[lo:hi]
	i := sort.Search(len(span), func(i int) bool { return span[i] >= int32(slot) })
	if i == len(span) || span[i] != int32(slot) {
		return Deliver, 0
	}
	return Fate(t.fates[lo+i]), int(t.delays[lo+i])
}

// AppendFateTable appends the table's wire encoding to dst: uvarint
// start and window length, then per round a uvarint entry count followed
// by (slot-delta uvarint, fate byte, delay uvarint for Delay) triples
// with strictly increasing slots. The format is strict enough that
// ParseFateTable round-trips byte-exactly.
func AppendFateTable(dst []byte, t *FateTable) []byte {
	dst = binary.AppendUvarint(dst, uint64(t.start))
	dst = binary.AppendUvarint(dst, uint64(t.end-t.start))
	for r := t.start; r < t.end; r++ {
		lo, hi := t.offs[r-t.start], t.offs[r-t.start+1]
		dst = binary.AppendUvarint(dst, uint64(hi-lo))
		prev := int32(-1)
		for i := lo; i < hi; i++ {
			dst = binary.AppendUvarint(dst, uint64(t.slots[i]-prev))
			dst = append(dst, t.fates[i])
			if Fate(t.fates[i]) == Delay {
				dst = binary.AppendUvarint(dst, uint64(t.delays[i]))
			}
			prev = t.slots[i]
		}
	}
	return dst
}

// ParseFateTable decodes an AppendFateTable payload, validating every
// structural invariant a hostile peer could violate: the window is
// well-formed and bounded by the payload size, entry counts fit the
// remaining bytes, slots are strictly increasing within a round, fates
// are the three non-Deliver codes, delays are present exactly for Delay
// and at least 1, and no bytes trail the last round.
func ParseFateTable(b []byte) (*FateTable, error) {
	c := fateCursor{b: b}
	start := c.uvarint("start")
	span := c.uvarint("window length")
	if c.err != nil {
		return nil, c.err
	}
	if start < 1 || start > math.MaxInt32 {
		return nil, fmt.Errorf("faults: fate table start round %d invalid", start)
	}
	// Every round costs at least one byte (its entry count), so a window
	// longer than the payload cannot be honest — reject before sizing the
	// offset array from attacker-controlled input.
	if span > uint64(len(b)) {
		return nil, fmt.Errorf("faults: fate table window length %d exceeds payload", span)
	}
	t := &FateTable{start: int(start), end: int(start + span), offs: make([]int32, 1, span+1)}
	for r := 0; r < int(span); r++ {
		count := c.uvarint("entry count")
		if c.err != nil {
			return nil, c.err
		}
		// Each entry costs at least two bytes (slot delta + fate).
		if count > uint64(len(b))/2 {
			return nil, fmt.Errorf("faults: fate table round %d entry count %d exceeds payload", t.start+r, count)
		}
		prev := int64(-1)
		for i := uint64(0); i < count; i++ {
			delta := c.uvarint("slot delta")
			fate := c.byte("fate")
			if c.err != nil {
				return nil, c.err
			}
			if delta == 0 {
				return nil, fmt.Errorf("faults: fate table round %d: non-increasing slot", t.start+r)
			}
			slot := prev + int64(delta)
			if slot > math.MaxInt32 {
				return nil, fmt.Errorf("faults: fate table round %d: slot overflow", t.start+r)
			}
			delay := uint64(0)
			switch Fate(fate) {
			case Drop, Duplicate:
			case Delay:
				delay = c.uvarint("delay")
				if c.err != nil {
					return nil, c.err
				}
				if delay < 1 || delay > math.MaxInt32 {
					return nil, fmt.Errorf("faults: fate table round %d: delay %d invalid", t.start+r, delay)
				}
			default:
				return nil, fmt.Errorf("faults: fate table round %d: unknown fate %d", t.start+r, fate)
			}
			t.slots = append(t.slots, int32(slot))
			t.fates = append(t.fates, fate)
			t.delays = append(t.delays, int32(delay))
			prev = slot
		}
		t.offs = append(t.offs, int32(len(t.slots)))
	}
	if c.n != len(b) {
		return nil, fmt.Errorf("faults: fate table: %d trailing bytes", len(b)-c.n)
	}
	return t, nil
}

// fateCursor is a minimal sticky-error byte reader for ParseFateTable
// (the transport package has its own; faults cannot import it without a
// cycle).
type fateCursor struct {
	b   []byte
	n   int
	err error
}

func (c *fateCursor) uvarint(what string) uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.n:])
	if n <= 0 {
		c.err = fmt.Errorf("faults: fate table: truncated %s", what)
		return 0
	}
	c.n += n
	return v
}

func (c *fateCursor) byte(what string) uint8 {
	if c.err != nil {
		return 0
	}
	if c.n >= len(c.b) {
		c.err = fmt.Errorf("faults: fate table: truncated %s", what)
		return 0
	}
	v := c.b[c.n]
	c.n++
	return v
}
