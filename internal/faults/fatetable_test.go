package faults_test

// Fate-table unit suite: the table must be a lossless, wire-stable
// projection of the plan's raw hashes — same fates as a table-free plan
// over the window, byte-exact codec round-trips, receiver filtering
// that only ever removes entries, and loud failure outside the shipped
// window. The transport-level handshake tests build on these
// invariants; the hostile-input side is FuzzParseFateTable (in
// internal/transport, next to FuzzReadFrame).

import (
	"bytes"
	"strings"
	"testing"

	"almostmix/internal/faults"
)

const (
	tableSpec  = "drop=0.15,dup=0.1,delay=0.15:2,crash=3@4+5,sever=2@6"
	tableSlots = 48
)

func tablePlan(t *testing.T, seed uint64) *faults.Plan {
	t.Helper()
	p, err := faults.Parse(tableSpec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFateTableMatchesRawRolls(t *testing.T) {
	raw := tablePlan(t, 99)
	tabled := tablePlan(t, 99)
	tabled.AttachTable(faults.BuildFateTable(tabled, 1, 25, tableSlots))
	for r := 1; r < 25; r++ {
		for s := 0; s < tableSlots; s++ {
			wf, wd := raw.MessageFate(r, s)
			gf, gd := tabled.MessageFate(r, s)
			if gf != wf || gd != wd {
				t.Fatalf("round %d slot %d: table (%v,%d) != raw (%v,%d)", r, s, gf, gd, wf, wd)
			}
		}
	}
}

func TestFateTableCodecRoundTrip(t *testing.T) {
	p := tablePlan(t, 7)
	orig := faults.BuildFateTable(p, 3, 40, tableSlots)
	enc := faults.AppendFateTable(nil, orig)
	dec, err := faults.ParseFateTable(enc)
	if err != nil {
		t.Fatalf("parse own encoding: %v", err)
	}
	if s, e := dec.Rounds(); s != 3 || e != 40 {
		t.Fatalf("decoded window [%d,%d), want [3,40)", s, e)
	}
	if dec.Entries() != orig.Entries() {
		t.Fatalf("decoded %d entries, want %d", dec.Entries(), orig.Entries())
	}
	for r := 3; r < 40; r++ {
		for s := 0; s < tableSlots; s++ {
			wf, wd := orig.Lookup(r, s)
			gf, gd := dec.Lookup(r, s)
			if gf != wf || gd != wd {
				t.Fatalf("round %d slot %d: decoded (%v,%d) != original (%v,%d)", r, s, gf, gd, wf, wd)
			}
		}
	}
	if re := faults.AppendFateTable(nil, dec); !bytes.Equal(re, enc) {
		t.Fatal("re-encoding the decoded table is not byte-identical")
	}
}

func TestFateTableFilter(t *testing.T) {
	p := tablePlan(t, 11)
	full := faults.BuildFateTable(p, 1, 30, tableSlots)
	odd := full.Filter(func(slot int) bool { return slot%2 == 1 })
	even := full.Filter(func(slot int) bool { return slot%2 == 0 })
	if odd.Entries()+even.Entries() != full.Entries() {
		t.Fatalf("filter partition lost entries: %d + %d != %d", odd.Entries(), even.Entries(), full.Entries())
	}
	for r := 1; r < 30; r++ {
		for s := 0; s < tableSlots; s++ {
			keep := odd
			if s%2 == 0 {
				keep = even
			}
			wf, wd := full.Lookup(r, s)
			if gf, gd := keep.Lookup(r, s); gf != wf || gd != wd {
				t.Fatalf("round %d slot %d: filtered (%v,%d) != full (%v,%d)", r, s, gf, gd, wf, wd)
			}
			drop := even
			if s%2 == 0 {
				drop = odd
			}
			if gf, gd := drop.Lookup(r, s); gf != faults.Deliver || gd != 0 {
				t.Fatalf("round %d slot %d: filtered-out lookup (%v,%d), want Deliver", r, s, gf, gd)
			}
		}
	}
}

func TestFateTableLookupOutsideWindowPanics(t *testing.T) {
	p := tablePlan(t, 5)
	tab := faults.BuildFateTable(p, 5, 10, tableSlots)
	for _, round := range []int{4, 10} {
		func() {
			defer func() {
				r := recover()
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "outside shipped window") {
					t.Fatalf("Lookup(round=%d): recover = %v, want out-of-window panic", round, r)
				}
			}()
			tab.Lookup(round, 0)
		}()
	}
}

func TestParseFateTableRejectsMalformed(t *testing.T) {
	p := tablePlan(t, 9)
	good := faults.AppendFateTable(nil, faults.BuildFateTable(p, 1, 12, tableSlots))
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"truncated", good[:len(good)-1]},
		{"trailing", append(append([]byte{}, good...), 0)},
		{"zero start round", []byte{0, 1, 0}},
		{"window exceeds payload", []byte{1, 200}},
		{"zero slot delta", []byte{1, 1, 1, 0, 1}},
		{"unknown fate", []byte{1, 1, 1, 1, 9}},
		{"zero delay", []byte{1, 1, 1, 1, 3, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tab, err := faults.ParseFateTable(tc.b); err == nil {
				t.Fatalf("accepted (%d entries)", tab.Entries())
			}
		})
	}
}
