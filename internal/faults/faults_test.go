package faults

import (
	"math"
	"testing"
	"testing/quick"
)

// TestParseRoundTrip checks every clause kind lands in the plan.
func TestParse(t *testing.T) {
	p, err := Parse("drop=0.05, dup=0.01, delay=0.1:3, crash=5@40+20, crash=2@9, sever=7@50", 11)
	if err != nil {
		t.Fatal(err)
	}
	if p.Empty() {
		t.Fatal("parsed plan reports Empty")
	}
	if p.drop != 0.05 || p.dup != 0.01 || p.delayP != 0.1 || p.delayBy != 3 {
		t.Fatalf("message rules: drop=%v dup=%v delay=%v:%d", p.drop, p.dup, p.delayP, p.delayBy)
	}
	if len(p.crashes) != 2 || p.crashes[0] != (Crash{Node: 5, Round: 40, Recover: 20}) ||
		p.crashes[1] != (Crash{Node: 2, Round: 9}) {
		t.Fatalf("crashes: %+v", p.crashes)
	}
	if len(p.severs) != 1 || p.severs[0] != (Sever{Edge: 7, Round: 50}) {
		t.Fatalf("severs: %+v", p.severs)
	}
	if p.MaxDelay() != 3 || p.RecoverySlack() != 20 {
		t.Fatalf("MaxDelay=%d RecoverySlack=%d", p.MaxDelay(), p.RecoverySlack())
	}
}

func TestParseEmpty(t *testing.T) {
	for _, spec := range []string{"", "  ", ","} {
		p, err := Parse(spec, 1)
		if err != nil {
			t.Fatalf("spec %q: %v", spec, err)
		}
		if !p.Empty() {
			t.Fatalf("spec %q: plan not empty", spec)
		}
		if f, _ := p.MessageFate(3, 4); f != Deliver {
			t.Fatalf("spec %q: empty plan fate %v", spec, f)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"drop", "drop=x", "drop=1.5", "drop=-0.1",
		"delay=0.5", "delay=0.5:0", "delay=0.5:x",
		"crash=5", "crash=x@2", "crash=5@0", "crash=5@2+0", "crash=-1@2",
		"sever=5", "sever=x@2", "sever=5@0",
		"bogus=1", "drop=0.6,dup=0.6", // probability budget > 1
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("spec %q: expected parse error", spec)
		}
	}
}

// TestCrashWindows pins the crash interval semantics: [Round, Round+Recover),
// permanent when Recover == 0.
func TestCrashWindows(t *testing.T) {
	p := New(1).WithCrash(3, 10, 5).WithCrash(4, 7, 0)
	cases := []struct {
		node, round int
		want        bool
	}{
		{3, 9, false}, {3, 10, true}, {3, 14, true}, {3, 15, false},
		{4, 6, false}, {4, 7, true}, {4, 1000, true},
		{5, 10, false},
	}
	for _, c := range cases {
		if got := p.Crashed(c.node, c.round); got != c.want {
			t.Errorf("Crashed(%d, %d) = %v, want %v", c.node, c.round, got, c.want)
		}
	}
	if n := p.CrashedCount(12); n != 2 {
		t.Errorf("CrashedCount(12) = %d, want 2", n)
	}
	if !p.RecoveringAt(12) || p.RecoveringAt(15) || p.RecoveringAt(9) {
		t.Error("RecoveringAt wrong around the recovery window")
	}
}

func TestSevered(t *testing.T) {
	p := New(1).WithSever(2, 10)
	if p.Severed(2, 9) || !p.Severed(2, 10) || !p.Severed(2, 99) || p.Severed(3, 50) {
		t.Error("Severed interval wrong")
	}
}

// TestFateDeterminism is the core reproducibility property: the same
// (seed, spec) pair yields the identical fate for every (round, slot),
// while a different seed diverges somewhere.
func TestFateDeterminism(t *testing.T) {
	const spec = "drop=0.2,dup=0.1,delay=0.15:2"
	build := func(seed uint64) *Plan {
		p, err := Parse(spec, seed)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b, other := build(42), build(42), build(43)
	diverged := false
	for round := 1; round <= 64; round++ {
		for slot := 0; slot < 64; slot++ {
			fa, da := a.MessageFate(round, slot)
			fb, db := b.MessageFate(round, slot)
			if fa != fb || da != db {
				t.Fatalf("round %d slot %d: same seed diverges (%v,%d) vs (%v,%d)",
					round, slot, fa, da, fb, db)
			}
			if fo, _ := other.MessageFate(round, slot); fo != fa {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Error("seed 42 and 43 produce identical event streams over 4096 slots")
	}
}

// TestFateDeterminismQuick extends the same-seed property over random
// (seed, round, slot) triples.
func TestFateDeterminismQuick(t *testing.T) {
	f := func(seed uint64, round, slot uint16) bool {
		p1 := New(seed).WithDrop(0.3).WithDelay(0.3, 4)
		p2 := New(seed).WithDrop(0.3).WithDelay(0.3, 4)
		f1, d1 := p1.MessageFate(int(round)+1, int(slot))
		f2, d2 := p2.MessageFate(int(round)+1, int(slot))
		return f1 == f2 && d1 == d2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFateFrequencies sanity-checks that the partitioned roll honours the
// configured probabilities within loose tolerances.
func TestFateFrequencies(t *testing.T) {
	p := New(7).WithDrop(0.2).WithDuplicate(0.1).WithDelay(0.15, 2)
	var counts [4]int
	const n = 20000
	for i := 0; i < n; i++ {
		f, _ := p.MessageFate(1+i/64, i%64)
		counts[f]++
	}
	frac := func(f Fate) float64 { return float64(counts[f]) / n }
	for _, c := range []struct {
		fate Fate
		want float64
	}{{Drop, 0.2}, {Duplicate, 0.1}, {Delay, 0.15}, {Deliver, 0.55}} {
		if got := frac(c.fate); math.Abs(got-c.want) > 0.02 {
			t.Errorf("fate %v frequency %.3f, want ~%.2f", c.fate, got, c.want)
		}
	}
}

func TestCountsAddAny(t *testing.T) {
	var c Counts
	if c.Any() {
		t.Error("zero Counts reports Any")
	}
	c.Add(Counts{Dropped: 2, Delayed: 1})
	c.Add(Counts{Dropped: 1, Duplicated: 5, Crashed: 3})
	want := Counts{Dropped: 3, Duplicated: 5, Delayed: 1, Crashed: 3}
	if c != want {
		t.Errorf("Counts = %+v, want %+v", c, want)
	}
	if !c.Any() {
		t.Error("nonzero Counts reports !Any")
	}
}

func TestPlanTotals(t *testing.T) {
	p := New(1)
	p.AddCounts(Counts{Dropped: 4})
	p.AddCounts(Counts{Delayed: 2})
	if got := p.Totals(); got != (Counts{Dropped: 4, Delayed: 2}) {
		t.Errorf("Totals = %+v", got)
	}
}
