package cliutil

import (
	"os"
	"path/filepath"
	"testing"
)

// withExitCapture replaces the exit hook and reports the code of the
// first exit taken during fn (or -1 if none). A panic unwinds past the
// rest of the validation under test, mimicking the real process exit.
func withExitCapture(fn func()) (code int) {
	code = -1
	exit = func(c int) {
		code = c
		panic("cliutil: exit")
	}
	defer func() {
		exit = os.Exit
		recover()
	}()
	fn()
	return code
}

func TestMin(t *testing.T) {
	if code := withExitCapture(func() { Min("n", 5, 1) }); code != -1 {
		t.Fatalf("valid value exited with %d", code)
	}
	if code := withExitCapture(func() { Min("n", 0, 1) }); code != 2 {
		t.Fatalf("invalid value exited with %d, want 2", code)
	}
	if code := withExitCapture(func() { Min("steps", -3, 0) }); code != 2 {
		t.Fatalf("negative steps exited with %d, want 2", code)
	}
}

func TestWorkers(t *testing.T) {
	for _, v := range []int{0, 1, 8} {
		if code := withExitCapture(func() { Workers("workers", v) }); code != -1 {
			t.Fatalf("workers=%d exited with %d", v, code)
		}
	}
	if code := withExitCapture(func() { Workers("workers", -1) }); code != 2 {
		t.Fatalf("workers=-1 exited with %d, want 2", code)
	}
}

func TestPhi(t *testing.T) {
	for _, v := range []float64{0.001, 0.1, 0.5, 0.999} {
		if code := withExitCapture(func() { Phi("phi", v) }); code != -1 {
			t.Fatalf("phi=%g exited with %d", v, code)
		}
	}
	for _, v := range []float64{0, -0.1, 1, 1.5} {
		if code := withExitCapture(func() { Phi("phi", v) }); code != 2 {
			t.Fatalf("phi=%g exited with %d, want 2", v, code)
		}
	}
}

func TestFaultSpec(t *testing.T) {
	for _, spec := range []string{"", "drop=0.1", "drop=0.05,dup=0.01,delay=0.1:3,crash=2@5+4,sever=1@2"} {
		if code := withExitCapture(func() { FaultSpec("faults", spec) }); code != -1 {
			t.Fatalf("spec %q exited with %d", spec, code)
		}
	}
	for _, spec := range []string{"drop", "drop=2.0", "bogus=1", "crash=x@y"} {
		if code := withExitCapture(func() { FaultSpec("faults", spec) }); code != 2 {
			t.Fatalf("spec %q exited with %d, want 2", spec, code)
		}
	}
}

func TestWritable(t *testing.T) {
	dir := t.TempDir()

	if code := withExitCapture(func() { Writable("trace", "") }); code != -1 {
		t.Fatalf("empty path exited with %d", code)
	}

	// A creatable path passes and leaves no file behind.
	fresh := filepath.Join(dir, "out.json")
	if code := withExitCapture(func() { Writable("trace", fresh) }); code != -1 {
		t.Fatalf("creatable path exited with %d", code)
	}
	if _, err := os.Stat(fresh); !os.IsNotExist(err) {
		t.Fatal("probe left its scratch file behind")
	}

	// An existing file passes and keeps its contents.
	kept := filepath.Join(dir, "kept.json")
	if err := os.WriteFile(kept, []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := withExitCapture(func() { Writable("metrics", kept) }); code != -1 {
		t.Fatalf("existing path exited with %d", code)
	}
	if b, err := os.ReadFile(kept); err != nil || string(b) != "data" {
		t.Fatalf("probe damaged the existing file: %q, %v", b, err)
	}

	// A path under a missing directory fails up front.
	if code := withExitCapture(func() { Writable("pprofout", filepath.Join(dir, "no/such/dir/p.pprof")) }); code != 2 {
		t.Fatalf("unwritable path exited with %d, want 2", code)
	}
}
