// Package cliutil centralizes the up-front flag validation the cmd/
// binaries share, so a nonsensical invocation fails loudly before any
// work starts — with one message format and one exit code — instead of
// failing mid-run, panicking in a library, or being silently clamped.
package cliutil

import (
	"fmt"
	"net"
	"os"
	"path/filepath"

	"almostmix/internal/faults"
)

// exit is swapped out by tests.
var exit = os.Exit

// Fail prints a uniform "<prog>: invalid -flag" diagnostic to stderr and
// exits with status 2, the same code the flag package uses for usage
// errors.
func Fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", filepath.Base(os.Args[0]), fmt.Sprintf(format, args...))
	exit(2)
}

// Min rejects values of -name below lo.
func Min(name string, v, lo int) {
	if v < lo {
		Fail("invalid -%s %d: must be at least %d", name, v, lo)
	}
}

// Workers rejects negative worker counts. Zero is valid and selects one
// worker per CPU; before this check a negative count was silently clamped
// to the same.
func Workers(name string, v int) {
	if v < 0 {
		Fail("invalid -%s %d: must be >= 0 (0 = one worker per CPU)", name, v)
	}
}

// Transport rejects execution backends other than the known names. The
// valid set lives here (not in internal/transport) so the usage error
// stays a flag-validation failure with exit code 2, uniform with every
// other bad flag.
func Transport(name, v string) {
	if v != "proc" && v != "tcp" {
		Fail("invalid -%s %q: must be proc or tcp", name, v)
	}
}

// Listen rejects coordinator listen addresses that are not host:port
// shaped (":0" and "127.0.0.1:0" pass; a bare hostname or port does not).
func Listen(name, v string) {
	if v == "" {
		return
	}
	if _, _, err := net.SplitHostPort(v); err != nil {
		Fail("invalid -%s %q: %v", name, v, err)
	}
}

// Phi rejects conductance targets outside (0,1): the expander
// decomposition accepts a piece when its best sweep cut is at least phi,
// and both endpoints make every graph degenerate (0 accepts everything,
// 1 is unattainable — a cut of conductance 1 still "fails").
func Phi(name string, v float64) {
	if v <= 0 || v >= 1 {
		Fail("invalid -%s %g: conductance target must be in (0,1)", name, v)
	}
}

// ObsOut rejects an observability-document export on backends that do
// not produce one: the merged document describes a distributed run, so
// a non-empty path needs -transport=tcp. Both experiment binaries share
// this rule; hoisting it keeps one message and one exit-2 path.
func ObsOut(name, path, transport string) {
	if path != "" && transport != "tcp" {
		Fail("-%s needs -transport=tcp: the observability document describes a distributed run", name)
	}
}

// FaultSpec rejects a fault-injection spec that does not parse, quoting
// the parser's complaint.
func FaultSpec(name, spec string) {
	if _, err := faults.Parse(spec, 0); err != nil {
		Fail("invalid -%s %q: %v", name, spec, err)
	}
}

// Writable verifies that the output path for -name can be opened for
// writing, so a doomed export is caught before the run burns minutes. An
// empty path (the feature is off) passes. The probe appends nothing and
// removes any file it had to create.
func Writable(name, path string) {
	if path == "" {
		return
	}
	_, statErr := os.Stat(path)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		Fail("invalid -%s %q: not writable: %v", name, path, err)
	}
	f.Close()
	if statErr != nil {
		os.Remove(path)
	}
}
