package embed

import (
	"fmt"

	"almostmix/internal/cost"
	"almostmix/internal/decomp"
	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

// ClusterEmbedding is one cluster's embedded tier: either a full §3.1
// hierarchy built on the cluster's induced subgraph, or — when Build
// rejects the cluster (too small for the walk machinery) — a direct tier
// that routes along BFS paths of the cluster graph. Node IDs inside H are
// the cluster's local IDs; the Subgraph in Cluster translates back.
type ClusterEmbedding struct {
	// Cluster is the decomposition cluster this tier covers.
	Cluster *decomp.Cluster
	// H is the cluster-local hierarchy, nil when Direct.
	H *Hierarchy
	// Direct marks a BFS-routed fallback tier (tiny clusters).
	Direct bool
	// DirectRounds is the construction cost charged for a direct tier:
	// the cluster diameter (BFS flood to establish routing trees).
	// Zero for hierarchy tiers.
	DirectRounds int
}

// ConstructionRounds is the tier's construction cost in base-graph
// rounds: the hierarchy's measured construction, or the BFS flood for a
// direct tier.
func (ce *ClusterEmbedding) ConstructionRounds() int {
	if ce.Direct {
		return ce.DirectRounds
	}
	return ce.H.ConstructionRoundsBase()
}

// Partitioned is the cluster-scoped embedded tier: one embedding per
// decomposition cluster plus the boundary layer that stitches them — a
// quotient graph with one node per cluster and one edge per adjacent
// cluster pair, each quotient edge bundling the base cross edges between
// the pair. Cross-cluster routing and MST run within clusters through
// the per-cluster embeddings and across clusters through the bundles.
type Partitioned struct {
	// Base is the decomposed base graph.
	Base *graph.Graph
	// Dec is the decomposition the tier was built on.
	Dec *decomp.Decomposition
	// Clusters holds one embedding per decomposition cluster, same order.
	Clusters []*ClusterEmbedding
	// Quotient has one node per cluster and one edge per adjacent
	// cluster pair (unit weights; multiplicity lives in Bundles).
	Quotient *graph.Graph
	// Bundles maps each quotient edge ID to the base cross-edge IDs it
	// bundles, ascending.
	Bundles [][]int
	// Costs is the tier's construction ledger, rooted at "decomp-build"
	// (base rounds): clusters build in parallel on disjoint edge sets,
	// so the charged cost is the maximum per-cluster construction, with
	// every cluster's own construction ledger grafted informationally,
	// plus the decomposition's certificate ledger.
	Costs *cost.Ledger
}

// BuildPartitioned builds one embedding per cluster of dec and assembles
// the boundary layer. Each cluster draws randomness from its own
// src.Child("cluster", i) stream, so the result is independent of build
// order and reproducible. Clusters of at most two nodes, and clusters
// the hierarchy Build rejects, fall back to direct BFS tiers rather
// than failing the whole build.
func BuildPartitioned(dec *decomp.Decomposition, p Params, src *rngutil.Source) (*Partitioned, error) {
	pe := &Partitioned{Base: dec.Base, Dec: dec}
	for i, c := range dec.Clusters {
		ce := &ClusterEmbedding{Cluster: c}
		// Clusters of ≤ 2 nodes get direct tiers outright: a hierarchy
		// there is pure overhead, BFS routing is exact in ≤ 1 round.
		// Larger clusters the hierarchy Build still rejects fall back
		// the same way.
		var h *Hierarchy
		var err error
		if c.Sub.G.N() > 2 {
			h, err = Build(c.Sub.G, p, src.Child("cluster", uint64(i)))
		}
		if h == nil || err != nil {
			ce.Direct = true
			if c.Sub.G.N() >= 2 {
				ce.DirectRounds = c.Sub.G.Diameter()
			}
		} else {
			ce.H = h
		}
		pe.Clusters = append(pe.Clusters, ce)
	}
	pe.buildQuotient()
	pe.Costs = pe.buildLedger()
	if err := pe.Costs.Err(); err != nil {
		return nil, fmt.Errorf("embed: decomp-build ledger: %w", err)
	}
	return pe, nil
}

// buildQuotient assembles the cluster quotient graph and its bundles.
// Iterating CrossEdges ascending makes bundle membership ascending and
// quotient edge order deterministic (first cross edge between a pair
// creates the quotient edge).
func (pe *Partitioned) buildQuotient() {
	q := graph.New(len(pe.Clusters))
	index := make(map[[2]int]int)
	for _, id := range pe.Dec.CrossEdges {
		e := pe.Base.Edge(id)
		a, b := int(pe.Dec.ClusterOf[e.U]), int(pe.Dec.ClusterOf[e.V])
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		qi, ok := index[key]
		if !ok {
			qi = q.AddEdge(a, b, 1)
			index[key] = qi
			pe.Bundles = append(pe.Bundles, nil)
		}
		pe.Bundles[qi] = append(pe.Bundles[qi], id)
	}
	pe.Quotient = q
}

// buildLedger renders the tier's construction into the decomp-build
// ledger. Cluster constructions touch only intra-cluster edges, which
// are disjoint across clusters, so they run in parallel and the charged
// cost is the maximum; the per-cluster ledgers travel as informational
// (Mul 0) grafts so traces keep the full breakdown.
func (pe *Partitioned) buildLedger() *cost.Ledger {
	max := pe.ConstructionRoundsBase()
	led := cost.New("decomp-build", "base rounds")

	led.Open("clusters", "base rounds", 1)
	led.Charge(max)
	led.CloseExpect(max)

	led.Open("per-cluster", "base rounds", 0)
	for i, ce := range pe.Clusters {
		led.Open(fmt.Sprintf("cluster-%02d", i), "base rounds", 1)
		if ce.Direct {
			led.Open("direct-bfs", "base rounds", 1)
			led.Charge(ce.DirectRounds)
			led.Close()
		} else {
			led.Attach(ce.H.Costs.Root)
		}
		led.CloseExpect(ce.ConstructionRounds())
	}
	led.Close()

	led.Open("quotient-edges", "edges", 0)
	led.Charge(pe.Quotient.M())
	led.Close()

	led.Open("decomposition", "sweep passes", 0)
	led.Attach(pe.Dec.Costs.Root)
	led.Close()

	led.CloseExpect(max)
	return led
}

// ConstructionRoundsBase is the tier's construction cost in base-graph
// rounds: the maximum per-cluster construction (clusters build on
// disjoint edge sets, in parallel).
func (pe *Partitioned) ConstructionRoundsBase() int {
	max := 0
	for _, ce := range pe.Clusters {
		if r := ce.ConstructionRounds(); r > max {
			max = r
		}
	}
	return max
}

// ClusterOf returns the cluster index of base node v.
func (pe *Partitioned) ClusterOf(v int) int { return int(pe.Dec.ClusterOf[v]) }
