// Package embed builds the paper's hierarchical embedding of random
// graphs (§3.1): the level-zero Erdős–Rényi-style overlay G0 on 2m virtual
// nodes, the recursive β-ary partition with per-part random graphs
// G1..Gk, and the portals used to hop packets between sibling parts.
//
// Every overlay edge stores the path (in the level below) along which it
// was embedded, so higher-level communication expands into measured
// store-and-forward schedules rather than assumed asymptotic costs.
package embed

import (
	"fmt"
	"math"

	"almostmix/internal/graph"
)

// Params configures the hierarchical embedding. The zero value is not
// valid; use DefaultParams and override fields as needed.
//
// The paper's asymptotic constants (200·log n walks, 100·log n overlay
// degree, β = 2^Θ(√(log n·log log n))) exceed practical sizes at
// laptop-scale n, so the defaults keep the paper's formulas with smaller
// leading constants; every experiment records the parameter set used.
type Params struct {
	// Beta is the partition branching factor β. Zero selects the
	// paper's formula 2^⌈√(log₂ n · log₂ log₂ n)⌉ clamped to
	// [MinBeta, MaxBeta].
	Beta int
	// MinBeta/MaxBeta clamp the automatic β choice.
	MinBeta, MaxBeta int
	// WalksPerVirtualNode is the number of level-zero random walks
	// started per virtual node (paper: 200·log n). Zero selects
	// WalksC·log₂ n.
	WalksPerVirtualNode int
	// WalksC is the multiplier for the automatic walk count.
	WalksC int
	// DegreeG0 is the number of outgoing G0 neighbors kept per virtual
	// node (paper: 100·log n). Zero selects DegreeG0C·log₂ n.
	DegreeG0 int
	// DegreeG0C is the multiplier for the automatic G0 degree.
	DegreeG0C int
	// OverlayDegree is the number of same-part neighbors each node
	// keeps at levels ≥ 1 (paper: Θ(log n)). Zero selects
	// 2·⌈log₂ 2m⌉.
	OverlayDegree int
	// WalkLenFactor multiplies the mixing time for level-zero walks
	// (the Lemma 3.1 remark suggests at least 2).
	WalkLenFactor int
	// LeafSize stops the recursion once parts are at most this big
	// (paper: O(log n)). Zero selects 4·⌈log₂ 2m⌉.
	LeafSize int
	// HashIndependence is the W of the W-wise independent partition
	// hash. Zero selects ⌈log₂ 2m⌉.
	HashIndependence int
	// TauMix overrides the base-graph lazy mixing time; zero computes a
	// spectral estimate (exact computation is exposed separately in
	// internal/spectral for experiments that can afford it).
	TauMix int
	// SuccessMargin multiplies the expected number of walks needed at
	// levels ≥ 1 so that enough walks succeed w.h.p.
	SuccessMargin float64
}

// DefaultParams returns the parameter set used by the experiments.
func DefaultParams() Params {
	return Params{
		MinBeta:       4,
		MaxBeta:       16,
		WalksC:        6,
		DegreeG0C:     2,
		WalkLenFactor: 2,
		SuccessMargin: 2.5,
	}
}

// log2ceil returns ⌈log₂ x⌉ for x ≥ 1.
func log2ceil(x int) int {
	if x <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(x))))
}

// resolved holds the concrete values derived from Params for a given
// graph.
type resolved struct {
	beta          int
	walksPerVNode int
	degreeG0      int
	overlayDegree int
	walkLenFactor int
	leafSize      int
	hashW         int
	levels        int // k: number of partition levels (≥ 1)
	successMargin float64
}

// resolve turns Params into concrete values for graph g.
func (p Params) resolve(g *graph.Graph) (resolved, error) {
	n, m2 := g.N(), 2*g.M()
	if n < 2 || m2 == 0 {
		return resolved{}, fmt.Errorf("embed: graph too small (n=%d, m=%d)", n, g.M())
	}
	logN := log2ceil(n)
	logM2 := log2ceil(m2)
	r := resolved{
		beta:          p.Beta,
		walksPerVNode: p.WalksPerVirtualNode,
		degreeG0:      p.DegreeG0,
		overlayDegree: p.OverlayDegree,
		walkLenFactor: p.WalkLenFactor,
		leafSize:      p.LeafSize,
		hashW:         p.HashIndependence,
		successMargin: p.SuccessMargin,
	}
	if r.beta == 0 {
		loglog := math.Log2(math.Max(2, float64(logN)))
		exp := math.Ceil(math.Sqrt(float64(logN) * loglog))
		beta := 1 << int(exp)
		minB, maxB := p.MinBeta, p.MaxBeta
		if minB == 0 {
			minB = 4
		}
		if maxB == 0 {
			maxB = 16
		}
		if beta < minB {
			beta = minB
		}
		if beta > maxB {
			beta = maxB
		}
		r.beta = beta
	}
	if r.beta < 2 {
		return resolved{}, fmt.Errorf("embed: beta must be >= 2, got %d", r.beta)
	}
	// The paper's analysis needs β ≤ √m (Lemma 3.4); clamp so sibling
	// parts always share overlay edges.
	if rootM := int(math.Sqrt(float64(m2) / 2)); r.beta > rootM {
		r.beta = maxInt(2, rootM)
	}
	if r.walksPerVNode == 0 {
		c := p.WalksC
		if c == 0 {
			c = 6
		}
		r.walksPerVNode = c * maxInt(1, logN)
	}
	if r.degreeG0 == 0 {
		c := p.DegreeG0C
		if c == 0 {
			c = 2
		}
		r.degreeG0 = c * maxInt(1, logN)
	}
	if r.degreeG0 > r.walksPerVNode {
		return resolved{}, fmt.Errorf("embed: degreeG0 %d exceeds walks per node %d", r.degreeG0, r.walksPerVNode)
	}
	if r.overlayDegree == 0 {
		r.overlayDegree = 2 * maxInt(2, logM2)
	}
	if r.leafSize == 0 {
		r.leafSize = 4 * maxInt(2, logM2)
	}
	if r.hashW == 0 {
		r.hashW = maxInt(2, logM2)
	}
	if r.walkLenFactor == 0 {
		r.walkLenFactor = 2
	}
	if r.successMargin == 0 {
		r.successMargin = 2.5
	}
	// Number of levels: split while the children stay at least
	// max(leafSize, 2β) — below ≈ 2β nodes per part, sibling parts stop
	// sharing overlay edges and portals (Lemma 3.3) cannot exist.
	minPart := maxInt(r.leafSize, 2*r.beta)
	k := 0
	size := m2
	for size/r.beta >= minPart {
		size /= r.beta
		k++
	}
	if k == 0 {
		k = 1 // always at least one partition level
	}
	r.levels = k
	return r, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
