package embed

import (
	"fmt"
	"math/rand/v2"

	"almostmix/internal/graph"
	"almostmix/internal/randomwalk"
	"almostmix/internal/spectral"
)

// buildG0 constructs the level-zero overlay of §3.1.1: every virtual node
// starts walksPerVNode lazy random walks of length walkLenFactor·τ_mix in
// the base graph; each walk endpoint, being (near-)stationary, lands on a
// physical node with probability proportional to its degree, and choosing
// a uniform virtual node of that endpoint yields a uniform virtual node
// overall. Each virtual node keeps degreeG0 sampled out-neighbors, and the
// recorded walk becomes the embedded path of the overlay edge.
//
// The returned overlay's ConstructionRounds is the measured cost in
// physical rounds: the forward walk execution plus the backward replay
// that informs sources of their endpoints plus the second forward replay
// that informs endpoints of their in-edges (three traversals, as in the
// paper).
func buildG0(g *graph.Graph, vm *VirtualMap, r resolved, tau int, rng *rand.Rand) (*Overlay, error) {
	m2 := vm.Count()
	walkLen := r.walkLenFactor * tau
	if walkLen < 1 {
		walkLen = 1
	}

	sources := make([]int32, 0, m2*r.walksPerVNode)
	for vid := 0; vid < m2; vid++ {
		owner := int32(vm.Owner(int32(vid)))
		for j := 0; j < r.walksPerVNode; j++ {
			sources = append(sources, owner)
		}
	}
	res := randomwalk.Run(g, sources, randomwalk.Config{
		Kind:   spectral.Lazy,
		Steps:  walkLen,
		Record: true,
	}, rng)

	overlay := &Overlay{
		Level:    0,
		Graph:    graph.New(m2),
		PartOf:   make([]int32, m2),
		Digit:    make([]int32, m2),
		NumParts: 1,
	}
	kept := make([]int, 0, m2*r.degreeG0)
	for vid := 0; vid < m2; vid++ {
		base := vid * r.walksPerVNode
		// Deduplicate candidate endpoints, then keep a random
		// degreeG0-subset (the paper keeps exactly 100·log n of the at
		// least 100·log n distinct endpoints).
		seen := make(map[int32]int, r.walksPerVNode) // target vid -> walk index
		order := make([]int32, 0, r.walksPerVNode)
		for j := 0; j < r.walksPerVNode; j++ {
			w := base + j
			endPhys := int(res.Ends[w])
			target := vm.VID(endPhys, rng.IntN(vm.DegreeOf(endPhys)))
			if int(target) == vid {
				continue
			}
			if _, dup := seen[target]; dup {
				continue
			}
			seen[target] = w
			order = append(order, target)
		}
		take := r.degreeG0
		if take > len(order) {
			take = len(order)
		}
		// Partial Fisher–Yates to sample `take` targets uniformly.
		for i := 0; i < take; i++ {
			j := i + rng.IntN(len(order)-i)
			order[i], order[j] = order[j], order[i]
			target := order[i]
			w := seen[target]
			e := overlay.Graph.AddEdge(vid, int(target), 1)
			overlay.Paths = append(overlay.Paths, res.Walks[w].Path)
			if e != len(overlay.Paths)-1 {
				panic("embed: G0 edge/path misalignment")
			}
			kept = append(kept, w)
		}
	}

	if !overlay.Graph.IsConnected() {
		return nil, fmt.Errorf("embed: G0 is disconnected (%d virtual nodes, %d edges); increase DegreeG0 or walk count",
			m2, overlay.Graph.M())
	}
	reverse := randomwalk.ReverseDeliveryRounds(g, res.Walks, kept)
	overlay.walkRounds = res.Stats.Rounds
	overlay.replayRounds = 2 * reverse
	overlay.ConstructionRounds = overlay.walkRounds + overlay.replayRounds
	overlay.measureEmulation()
	return overlay, nil
}
