package embed

import (
	"fmt"

	"almostmix/internal/cost"
	"almostmix/internal/graph"
	"almostmix/internal/kwise"
	"almostmix/internal/rngutil"
	"almostmix/internal/spectral"
)

// Hierarchy is the complete hierarchical routing structure of §3.1: the
// virtual-node mapping, the shared partition hash, the overlays G0..Gk,
// and the per-level portal tables, together with the measured construction
// and emulation costs.
type Hierarchy struct {
	Base    *graph.Graph
	VM      *VirtualMap
	Hash    *kwise.Family
	Beta    int
	Levels  int // k: partition levels; overlays are G0..G_Levels
	TauMix  int // lazy mixing time of the base graph used for G0 walks
	G0      *Overlay
	Upper   []*Overlay     // Upper[l-1] = G_l
	Portals []*PortalTable // Portals[l-1] = portals at level l
	// Resolved records the concrete parameter values used.
	Resolved ResolvedParams
	// Costs is the construction cost ledger: one span per overlay level
	// (walk execution and endpoint replay as children, the level's
	// emulation chain as the multiplier) plus an informational
	// emulation-factors span. Its root total is the construction cost in
	// base-graph rounds; ConstructionRoundsBase reads it.
	Costs *cost.Ledger
}

// ResolvedParams is the public snapshot of the concrete values a Build
// resolved from its Params.
type ResolvedParams struct {
	Beta                int
	WalksPerVirtualNode int
	DegreeG0            int
	OverlayDegree       int
	WalkLen             int
	LeafSize            int
	HashIndependence    int
	Levels              int
}

// Build constructs the full hierarchy on base graph g. The mixing time is
// taken from p.TauMix if set, otherwise estimated spectrally. All
// randomness derives from src, so builds are reproducible.
func Build(g *graph.Graph, p Params, src *rngutil.Source) (*Hierarchy, error) {
	r, err := p.resolve(g)
	if err != nil {
		return nil, err
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("embed: base graph is disconnected (%d connected components); the single-expander hierarchy needs a connected graph — decompose into clusters first (-decomp): %w",
			len(g.Components()), graph.ErrDisconnected)
	}
	tau := p.TauMix
	if tau == 0 {
		tau = spectral.MixingTimeEstimate(g, spectral.Lazy)
	}

	vm := NewVirtualMap(g)
	// The leader draws the Θ(log² n) shared bits; conceptually they are
	// broadcast to all nodes (O(D·log n) rounds), after which every node
	// evaluates the same hash.
	hash := kwise.New(r.hashW, src.Stream("partition-hash", 0))

	h := &Hierarchy{
		Base:   g,
		VM:     vm,
		Hash:   hash,
		Beta:   r.beta,
		Levels: r.levels,
		TauMix: tau,
		Resolved: ResolvedParams{
			Beta:                r.beta,
			WalksPerVirtualNode: r.walksPerVNode,
			DegreeG0:            r.degreeG0,
			OverlayDegree:       r.overlayDegree,
			WalkLen:             r.walkLenFactor * tau,
			LeafSize:            r.leafSize,
			HashIndependence:    r.hashW,
			Levels:              r.levels,
		},
	}

	led := cost.New("construction", "base rounds")

	h.G0, err = buildG0(g, vm, r, tau, src.Stream("g0", 0))
	if err != nil {
		return nil, err
	}
	chargeOverlay(led, h.G0, "g0", "base rounds", 1)

	digits := computeDigits(vm, hash, r.beta, r.levels)
	below := h.G0
	for level := 1; level <= r.levels; level++ {
		overlay, err := buildLevel(level, below, digits[level-1], r, src.Stream("level", uint64(level)))
		if err != nil {
			return nil, err
		}
		portals, err := buildPortals(overlay, below, r.beta, src.Stream("portals", uint64(level)))
		if err != nil {
			return nil, err
		}
		h.Upper = append(h.Upper, overlay)
		h.Portals = append(h.Portals, portals)
		chargeOverlay(led, overlay,
			fmt.Sprintf("level-%d", level),
			fmt.Sprintf("G%d rounds", level-1),
			h.EmulationToBase(level-1))
		below = overlay
	}

	// Informational span (Mul 0): the per-level emulation factors, so
	// trace exports carry the full round-conversion chain without the
	// factors themselves being charged as construction work.
	info := led.Open("emulation-factors", "rounds of level below", 0)
	info.NewChild("g0", "base rounds per G0 round", 0).Add(h.G0.EmulationRounds)
	for l := 1; l <= r.levels; l++ {
		info.NewChild(fmt.Sprintf("level-%d", l),
			fmt.Sprintf("G%d rounds per G%d round", l-1, l), 0).Add(h.Upper[l-1].EmulationRounds)
	}
	led.Close()

	// Closing the root checks the ledger against the legacy per-overlay
	// formula: the two must agree exactly.
	led.CloseExpect(h.constructionRoundsFromOverlays())
	if err := led.Err(); err != nil {
		return nil, fmt.Errorf("embed: construction ledger: %w", err)
	}
	h.Costs = led
	return h, nil
}

// chargeOverlay opens one ledger span for a freshly built overlay, with the
// walk-execution and endpoint-replay components as children. mul converts
// the overlay's construction rounds (measured in rounds of the level below)
// into base-graph rounds.
func chargeOverlay(led *cost.Ledger, o *Overlay, name, unit string, mul int) {
	sp := led.Open(name, unit, mul)
	sp.NewChild("walks", unit, 1).Add(o.walkRounds)
	sp.NewChild("endpoint-replay", unit, 1).Add(o.replayRounds)
	led.CloseExpect(o.ConstructionRounds)
}

// Overlay returns G_level (level 0 = G0).
func (h *Hierarchy) Overlay(level int) *Overlay {
	if level == 0 {
		return h.G0
	}
	return h.Upper[level-1]
}

// PortalsAt returns the portal table of the given level (1..Levels).
func (h *Hierarchy) PortalsAt(level int) *PortalTable { return h.Portals[level-1] }

// EmulationToG0 returns the measured cost, in G0 rounds, of one round of
// G_level: the product of per-level emulation factors (Lemma 3.2's
// (log n)^{O(i)} quantity, here measured instead of assumed).
func (h *Hierarchy) EmulationToG0(level int) int {
	cost := 1
	for l := 1; l <= level; l++ {
		cost *= h.Upper[l-1].EmulationRounds
	}
	return cost
}

// EmulationToBase returns the measured cost, in base-graph rounds, of one
// round of G_level.
func (h *Hierarchy) EmulationToBase(level int) int {
	return h.EmulationToG0(level) * h.G0.EmulationRounds
}

// ConstructionRoundsBase totals the measured construction cost of all
// levels, expressed in base-graph rounds. The value is read from the
// construction cost ledger; Build verified at close time that it matches
// the per-overlay sum.
func (h *Hierarchy) ConstructionRoundsBase() int {
	if h.Costs != nil {
		return h.Costs.Root.Total()
	}
	return h.constructionRoundsFromOverlays()
}

// constructionRoundsFromOverlays is the direct per-overlay sum, kept as the
// ledger's cross-check (and the fallback for hierarchies assembled without
// Build in tests).
func (h *Hierarchy) constructionRoundsFromOverlays() int {
	total := h.G0.ConstructionRounds
	for l := 1; l <= h.Levels; l++ {
		total += h.Upper[l-1].ConstructionRounds * h.EmulationToBase(l-1)
	}
	return total
}

// DigitAt returns vid's partition digit at the given level (1..Levels).
func (h *Hierarchy) DigitAt(vid int32, level int) int32 {
	return h.Overlay(level).Digit[vid]
}

// LeafPart returns vid's part index at the deepest level.
func (h *Hierarchy) LeafPart(vid int32) int32 {
	return h.Overlay(h.Levels).PartOf[vid]
}

// DigitsOfID computes the partition digits of an encoded virtual-node
// identity without consulting the tables — this is property (P2): any node
// can compute any other node's position from its ID alone.
func (h *Hierarchy) DigitsOfID(encoded uint64) []int {
	return h.Hash.LeafLabel(encoded, h.Beta, h.Levels).Digits
}

// Validate checks structural invariants of the whole hierarchy: embedded
// paths are walks of the right level, endpoints match, parts refine, and
// labels agree with the shared hash. Intended for tests and audits.
func (h *Hierarchy) Validate() error {
	identity := func(vid int32) int32 { return vid }
	toOwner := func(vid int32) int32 { return int32(h.VM.Owner(vid)) }
	if err := h.G0.Validate(func(a, b int32) bool { return h.Base.HasEdge(int(a), int(b)) }, toOwner); err != nil {
		return err
	}
	below := h.G0
	for l := 1; l <= h.Levels; l++ {
		o := h.Overlay(l)
		if err := o.Validate(func(a, b int32) bool { return below.Graph.HasEdge(int(a), int(b)) }, identity); err != nil {
			return err
		}
		for vid := 0; vid < h.VM.Count(); vid++ {
			want := h.DigitsOfID(h.VM.EncodedID(int32(vid)))[l-1]
			if int(o.Digit[vid]) != want {
				return fmt.Errorf("embed: vid %d level %d digit %d != hash %d", vid, l, o.Digit[vid], want)
			}
			if o.PartOf[vid] != below.PartOf[vid]*int32(h.Beta)+o.Digit[vid] {
				return fmt.Errorf("embed: vid %d level %d part does not refine parent", vid, l)
			}
		}
		// Overlay edges must connect nodes of the same part.
		for _, e := range o.Graph.Edges() {
			if o.PartOf[e.U] != o.PartOf[e.V] {
				return fmt.Errorf("embed: level %d edge (%d,%d) crosses parts", l, e.U, e.V)
			}
		}
		below = o
	}
	return nil
}
