package embed

import (
	"fmt"

	"almostmix/internal/graph"
	"almostmix/internal/kwise"
	"almostmix/internal/rngutil"
	"almostmix/internal/spectral"
)

// Hierarchy is the complete hierarchical routing structure of §3.1: the
// virtual-node mapping, the shared partition hash, the overlays G0..Gk,
// and the per-level portal tables, together with the measured construction
// and emulation costs.
type Hierarchy struct {
	Base    *graph.Graph
	VM      *VirtualMap
	Hash    *kwise.Family
	Beta    int
	Levels  int // k: partition levels; overlays are G0..G_Levels
	TauMix  int // lazy mixing time of the base graph used for G0 walks
	G0      *Overlay
	Upper   []*Overlay     // Upper[l-1] = G_l
	Portals []*PortalTable // Portals[l-1] = portals at level l
	// Resolved records the concrete parameter values used.
	Resolved ResolvedParams
}

// ResolvedParams is the public snapshot of the concrete values a Build
// resolved from its Params.
type ResolvedParams struct {
	Beta                int
	WalksPerVirtualNode int
	DegreeG0            int
	OverlayDegree       int
	WalkLen             int
	LeafSize            int
	HashIndependence    int
	Levels              int
}

// Build constructs the full hierarchy on base graph g. The mixing time is
// taken from p.TauMix if set, otherwise estimated spectrally. All
// randomness derives from src, so builds are reproducible.
func Build(g *graph.Graph, p Params, src *rngutil.Source) (*Hierarchy, error) {
	r, err := p.resolve(g)
	if err != nil {
		return nil, err
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("embed: base graph disconnected: %w", graph.ErrDisconnected)
	}
	tau := p.TauMix
	if tau == 0 {
		tau = spectral.MixingTimeEstimate(g, spectral.Lazy)
	}

	vm := NewVirtualMap(g)
	// The leader draws the Θ(log² n) shared bits; conceptually they are
	// broadcast to all nodes (O(D·log n) rounds), after which every node
	// evaluates the same hash.
	hash := kwise.New(r.hashW, src.Stream("partition-hash", 0))

	h := &Hierarchy{
		Base:   g,
		VM:     vm,
		Hash:   hash,
		Beta:   r.beta,
		Levels: r.levels,
		TauMix: tau,
		Resolved: ResolvedParams{
			Beta:                r.beta,
			WalksPerVirtualNode: r.walksPerVNode,
			DegreeG0:            r.degreeG0,
			OverlayDegree:       r.overlayDegree,
			WalkLen:             r.walkLenFactor * tau,
			LeafSize:            r.leafSize,
			HashIndependence:    r.hashW,
			Levels:              r.levels,
		},
	}

	h.G0, err = buildG0(g, vm, r, tau, src.Stream("g0", 0))
	if err != nil {
		return nil, err
	}

	digits := computeDigits(vm, hash, r.beta, r.levels)
	below := h.G0
	for level := 1; level <= r.levels; level++ {
		overlay, err := buildLevel(level, below, digits[level-1], r, src.Stream("level", uint64(level)))
		if err != nil {
			return nil, err
		}
		portals, err := buildPortals(overlay, below, r.beta, src.Stream("portals", uint64(level)))
		if err != nil {
			return nil, err
		}
		h.Upper = append(h.Upper, overlay)
		h.Portals = append(h.Portals, portals)
		below = overlay
	}
	return h, nil
}

// Overlay returns G_level (level 0 = G0).
func (h *Hierarchy) Overlay(level int) *Overlay {
	if level == 0 {
		return h.G0
	}
	return h.Upper[level-1]
}

// PortalsAt returns the portal table of the given level (1..Levels).
func (h *Hierarchy) PortalsAt(level int) *PortalTable { return h.Portals[level-1] }

// EmulationToG0 returns the measured cost, in G0 rounds, of one round of
// G_level: the product of per-level emulation factors (Lemma 3.2's
// (log n)^{O(i)} quantity, here measured instead of assumed).
func (h *Hierarchy) EmulationToG0(level int) int {
	cost := 1
	for l := 1; l <= level; l++ {
		cost *= h.Upper[l-1].EmulationRounds
	}
	return cost
}

// EmulationToBase returns the measured cost, in base-graph rounds, of one
// round of G_level.
func (h *Hierarchy) EmulationToBase(level int) int {
	return h.EmulationToG0(level) * h.G0.EmulationRounds
}

// ConstructionRoundsBase totals the measured construction cost of all
// levels, expressed in base-graph rounds.
func (h *Hierarchy) ConstructionRoundsBase() int {
	total := h.G0.ConstructionRounds
	for l := 1; l <= h.Levels; l++ {
		total += h.Upper[l-1].ConstructionRounds * h.EmulationToBase(l-1)
	}
	return total
}

// DigitAt returns vid's partition digit at the given level (1..Levels).
func (h *Hierarchy) DigitAt(vid int32, level int) int32 {
	return h.Overlay(level).Digit[vid]
}

// LeafPart returns vid's part index at the deepest level.
func (h *Hierarchy) LeafPart(vid int32) int32 {
	return h.Overlay(h.Levels).PartOf[vid]
}

// DigitsOfID computes the partition digits of an encoded virtual-node
// identity without consulting the tables — this is property (P2): any node
// can compute any other node's position from its ID alone.
func (h *Hierarchy) DigitsOfID(encoded uint64) []int {
	return h.Hash.LeafLabel(encoded, h.Beta, h.Levels).Digits
}

// Validate checks structural invariants of the whole hierarchy: embedded
// paths are walks of the right level, endpoints match, parts refine, and
// labels agree with the shared hash. Intended for tests and audits.
func (h *Hierarchy) Validate() error {
	identity := func(vid int32) int32 { return vid }
	toOwner := func(vid int32) int32 { return int32(h.VM.Owner(vid)) }
	if err := h.G0.Validate(func(a, b int32) bool { return h.Base.HasEdge(int(a), int(b)) }, toOwner); err != nil {
		return err
	}
	below := h.G0
	for l := 1; l <= h.Levels; l++ {
		o := h.Overlay(l)
		if err := o.Validate(func(a, b int32) bool { return below.Graph.HasEdge(int(a), int(b)) }, identity); err != nil {
			return err
		}
		for vid := 0; vid < h.VM.Count(); vid++ {
			want := h.DigitsOfID(h.VM.EncodedID(int32(vid)))[l-1]
			if int(o.Digit[vid]) != want {
				return fmt.Errorf("embed: vid %d level %d digit %d != hash %d", vid, l, o.Digit[vid], want)
			}
			if o.PartOf[vid] != below.PartOf[vid]*int32(h.Beta)+o.Digit[vid] {
				return fmt.Errorf("embed: vid %d level %d part does not refine parent", vid, l)
			}
		}
		// Overlay edges must connect nodes of the same part.
		for _, e := range o.Graph.Edges() {
			if o.PartOf[e.U] != o.PartOf[e.V] {
				return fmt.Errorf("embed: level %d edge (%d,%d) crosses parts", l, e.U, e.V)
			}
		}
		below = o
	}
	return nil
}
