package embed

import (
	"errors"
	"strings"
	"testing"

	"almostmix/internal/decomp"
	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

func buildPartitionedOn(t *testing.T, g *graph.Graph) *Partitioned {
	t.Helper()
	dec, err := decomp.Decompose(g, decomp.Params{})
	if err != nil {
		t.Fatal(err)
	}
	pe, err := BuildPartitioned(dec, DefaultParams(), rngutil.NewSource(7))
	if err != nil {
		t.Fatal(err)
	}
	return pe
}

func TestBuildPartitionedLollipop(t *testing.T) {
	g := graph.Lollipop(32, 16)
	pe := buildPartitionedOn(t, g)
	if len(pe.Clusters) != len(pe.Dec.Clusters) {
		t.Fatalf("%d embeddings for %d clusters", len(pe.Clusters), len(pe.Dec.Clusters))
	}
	sawHierarchy := false
	for i, ce := range pe.Clusters {
		if ce.Cluster != pe.Dec.Clusters[i] {
			t.Fatalf("embedding %d bound to wrong cluster", i)
		}
		if ce.Direct {
			if ce.H != nil {
				t.Fatalf("direct tier %d carries a hierarchy", i)
			}
			continue
		}
		sawHierarchy = true
		if ce.H.Base != ce.Cluster.Sub.G {
			t.Fatalf("hierarchy %d not built on the cluster subgraph", i)
		}
		if err := ce.H.Validate(); err != nil {
			t.Fatalf("cluster %d hierarchy invalid: %v", i, err)
		}
	}
	if !sawHierarchy {
		t.Fatal("no cluster got a hierarchy (clique should)")
	}
	// The quotient must be connected (base graph is) and its bundles
	// must partition the cross edges.
	if !pe.Quotient.IsConnected() {
		t.Fatal("quotient of a connected base graph is disconnected")
	}
	bundled := 0
	for qi, bundle := range pe.Bundles {
		if len(bundle) == 0 {
			t.Fatalf("quotient edge %d has an empty bundle", qi)
		}
		qe := pe.Quotient.Edge(qi)
		for j, id := range bundle {
			if j > 0 && bundle[j-1] >= id {
				t.Fatalf("bundle %d not ascending: %v", qi, bundle)
			}
			e := g.Edge(id)
			cu, cv := pe.ClusterOf(e.U), pe.ClusterOf(e.V)
			if cu > cv {
				cu, cv = cv, cu
			}
			a, b := int(qe.U), int(qe.V)
			if a > b {
				a, b = b, a
			}
			if cu != a || cv != b {
				t.Fatalf("bundle %d edge %d connects clusters (%d,%d), quotient edge is (%d,%d)", qi, id, cu, cv, a, b)
			}
		}
		bundled += len(bundle)
	}
	if bundled != len(pe.Dec.CrossEdges) {
		t.Fatalf("bundles cover %d cross edges of %d", bundled, len(pe.Dec.CrossEdges))
	}
	// Construction cost is the max over clusters, and the ledger agrees.
	max := 0
	for _, ce := range pe.Clusters {
		if r := ce.ConstructionRounds(); r > max {
			max = r
		}
	}
	if pe.ConstructionRoundsBase() != max {
		t.Fatalf("ConstructionRoundsBase=%d, max cluster=%d", pe.ConstructionRoundsBase(), max)
	}
	if got := pe.Costs.Root.Total(); got != max {
		t.Fatalf("ledger root totals %d, want max cluster construction %d", got, max)
	}
}

func TestBuildPartitionedSingleClusterExpander(t *testing.T) {
	g := graph.RandomRegular(64, 8, rngutil.NewRand(3))
	pe := buildPartitionedOn(t, g)
	if len(pe.Clusters) != 1 {
		t.Fatalf("expander split into %d clusters", len(pe.Clusters))
	}
	if pe.Clusters[0].Direct {
		t.Fatal("expander cluster fell back to direct tier")
	}
	if pe.Quotient.M() != 0 || len(pe.Bundles) != 0 {
		t.Fatalf("single cluster but quotient has %d edges", pe.Quotient.M())
	}
}

func TestBuildPartitionedDirectFallback(t *testing.T) {
	// A 4-path under Phi=0.5 splits at the middle edge into two 2-node
	// clusters (each at MinSize), both below the hierarchy's minimum —
	// the tiers must be direct.
	g := graph.Path(4)
	dec, err := decomp.Decompose(g, decomp.Params{Phi: 0.5, Eps: 0.9, MinSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Clusters) < 2 {
		t.Fatalf("4-path stayed %d cluster(s)", len(dec.Clusters))
	}
	pe, err := BuildPartitioned(dec, Params{}, rngutil.NewSource(1))
	if err != nil {
		t.Fatal(err)
	}
	for i, ce := range pe.Clusters {
		if !ce.Direct {
			t.Fatalf("cluster %d (n=%d) should be a direct tier", i, ce.Cluster.Sub.G.N())
		}
		if ce.H != nil {
			t.Fatalf("direct tier %d carries a hierarchy", i)
		}
		if ce.DirectRounds != ce.Cluster.Sub.G.Diameter() {
			t.Fatalf("cluster %d direct rounds %d != diameter %d", i, ce.DirectRounds, ce.Cluster.Sub.G.Diameter())
		}
	}
}

// TestBuildDisconnectedError pins the error contract of satellite (c):
// embed.Build on a disconnected graph reports the component count and
// points the caller at the decomposition path.
func TestBuildDisconnectedError(t *testing.T) {
	g := graph.New(8)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(5, 6, 1)
	g.AddEdge(6, 3, 1)
	_, err := Build(g, DefaultParams(), rngutil.NewSource(1))
	if err == nil {
		t.Fatal("Build accepted a disconnected graph")
	}
	if !errors.Is(err, graph.ErrDisconnected) {
		t.Fatalf("error does not wrap graph.ErrDisconnected: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "disconnected (3 connected components)") {
		t.Fatalf("error does not report the component count: %q", msg)
	}
	if !strings.Contains(msg, "-decomp") {
		t.Fatalf("error does not point at -decomp: %q", msg)
	}
}
