package embed

import (
	"fmt"
	"math/rand/v2"
)

// PortalRef identifies, for a node s in a level-ℓ part, the portal toward
// a sibling part: a node Portal in s's own part owning a level-(ℓ−1)
// overlay edge CrossEdge whose other endpoint lies in the sibling part.
// Portal < 0 means no portal exists (the parts share no overlay edge).
type PortalRef struct {
	Portal    int32
	CrossEdge int32
}

// PortalTable stores, per virtual node, the portals toward each of the β
// sibling digits at one level. Entry (vid, j) is meaningless when j is
// vid's own digit.
type PortalTable struct {
	beta    int
	refs    []PortalRef // vid*beta + digit
	Missing int         // count of (vid, digit) pairs with no portal
}

// Get returns the portal of vid toward sibling digit j.
func (t *PortalTable) Get(vid int32, j int) PortalRef {
	return t.refs[int(vid)*t.beta+j]
}

// buildPortals elects the level-ℓ portals per §3.1.2/Lemma 3.3. For every
// (part, sibling digit) pair we collect the boundary set — the part's
// nodes with a level-(ℓ−1) overlay edge into the sibling — and each node
// independently picks a uniformly random boundary node as its portal
// (the output distribution of the paper's walk-based election). A missing
// boundary leaves Portal = −1 and is counted.
func buildPortals(level *Overlay, below *Overlay, beta int, rng *rand.Rand) (*PortalTable, error) {
	m2 := level.Graph.N()
	if below.Graph.N() != m2 {
		return nil, fmt.Errorf("embed: level/below node count mismatch %d vs %d", m2, below.Graph.N())
	}
	type boundary struct {
		node int32
		edge int32
	}
	// boundaries[(part, digit)] lists boundary nodes of part toward the
	// sibling with that digit.
	type key struct {
		part  int32
		digit int32
	}
	boundaries := make(map[key][]boundary)
	for e, edge := range below.Graph.Edges() {
		a, b := int32(edge.U), int32(edge.V)
		if below.PartOf[a] != below.PartOf[b] {
			continue // not siblings: different parents
		}
		if level.Digit[a] == level.Digit[b] {
			continue // same part at this level
		}
		boundaries[key{level.PartOf[a], level.Digit[b]}] = append(
			boundaries[key{level.PartOf[a], level.Digit[b]}], boundary{a, int32(e)})
		boundaries[key{level.PartOf[b], level.Digit[a]}] = append(
			boundaries[key{level.PartOf[b], level.Digit[a]}], boundary{b, int32(e)})
	}

	table := &PortalTable{
		beta: beta,
		refs: make([]PortalRef, m2*beta),
	}
	for i := range table.refs {
		table.refs[i] = PortalRef{Portal: -1, CrossEdge: -1}
	}
	sizes := level.PartSizes()
	for vid := 0; vid < m2; vid++ {
		part := level.PartOf[vid]
		parent := below.PartOf[vid]
		own := level.Digit[vid]
		for j := 0; j < beta; j++ {
			if int32(j) == own {
				continue
			}
			list := boundaries[key{part, int32(j)}]
			if len(list) == 0 {
				// Only a nonempty sibling with no shared edge is a
				// real gap; empty sibling parts never receive packets.
				if sizes[parent*int32(beta)+int32(j)] > 0 {
					table.Missing++
				}
				continue
			}
			pick := list[rng.IntN(len(list))]
			table.refs[vid*beta+j] = PortalRef{Portal: pick.node, CrossEdge: pick.edge}
		}
	}
	return table, nil
}
