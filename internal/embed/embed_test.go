package embed

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

var buildShared = sync.OnceValues(func() (*Hierarchy, error) {
	r := rngutil.NewRand(1)
	g := graph.RandomRegular(64, 6, r)
	p := DefaultParams()
	p.Beta = 4
	p.LeafSize = 12
	return Build(g, p, rngutil.NewSource(42))
})

// testHierarchy returns a two-level hierarchy on a small expander, built
// once and shared read-only across tests (construction is the expensive
// part).
func testHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := buildShared()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return h
}

func TestVirtualMap(t *testing.T) {
	g := graph.Star(4) // degrees: 3,1,1,1
	vm := NewVirtualMap(g)
	if vm.Count() != 6 {
		t.Fatalf("count = %d, want 2m = 6", vm.Count())
	}
	if vm.DegreeOf(0) != 3 || vm.DegreeOf(2) != 1 {
		t.Fatal("DegreeOf wrong")
	}
	vid := vm.VID(0, 2)
	if vm.Owner(vid) != 0 || vm.IndexAtOwner(vid) != 2 {
		t.Fatal("VID round trip failed")
	}
	if vm.EncodedID(vid) != EncodeID(0, 2) {
		t.Fatal("EncodedID disagrees with EncodeID")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("VID out of range did not panic")
		}
	}()
	vm.VID(1, 1)
}

func TestResolveDefaults(t *testing.T) {
	g := graph.RandomRegular(64, 6, rngutil.NewRand(2))
	r, err := DefaultParams().resolve(g)
	if err != nil {
		t.Fatal(err)
	}
	if r.beta < 4 || r.beta > 16 {
		t.Fatalf("beta = %d outside clamp", r.beta)
	}
	if r.levels < 1 {
		t.Fatal("levels < 1")
	}
	if r.degreeG0 > r.walksPerVNode {
		t.Fatal("degreeG0 exceeds walks")
	}
}

func TestResolveErrors(t *testing.T) {
	if _, err := DefaultParams().resolve(graph.New(1)); err == nil {
		t.Fatal("tiny graph accepted")
	}
	p := DefaultParams()
	p.DegreeG0 = 100
	p.WalksPerVirtualNode = 10
	if _, err := p.resolve(graph.Ring(16)); err == nil {
		t.Fatal("degree > walks accepted")
	}
	p = DefaultParams()
	p.Beta = 1
	if _, err := p.resolve(graph.Ring(16)); err == nil {
		t.Fatal("beta=1 accepted")
	}
}

func TestBuildRejectsDisconnected(t *testing.T) {
	g := graph.New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(4, 5, 1)
	if _, err := Build(g, DefaultParams(), rngutil.NewSource(1)); err == nil {
		t.Fatal("disconnected base accepted")
	}
}

func TestHierarchyStructure(t *testing.T) {
	h := testHierarchy(t)
	if h.Levels < 2 {
		t.Fatalf("expected >= 2 levels with beta=4, got %d", h.Levels)
	}
	if h.VM.Count() != 2*h.Base.M() {
		t.Fatal("virtual node count != 2m")
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestG0Degrees(t *testing.T) {
	h := testHierarchy(t)
	// Every virtual node selected DegreeG0 out-neighbors, so total
	// edges = 2m·DegreeG0 and every node has degree >= DegreeG0.
	want := h.VM.Count() * h.Resolved.DegreeG0
	if h.G0.Graph.M() != want {
		t.Fatalf("G0 has %d edges, want %d", h.G0.Graph.M(), want)
	}
	for vid := 0; vid < h.VM.Count(); vid++ {
		if d := h.G0.Graph.Degree(vid); d < h.Resolved.DegreeG0 {
			t.Fatalf("vid %d has G0 degree %d < %d", vid, d, h.Resolved.DegreeG0)
		}
	}
	if !h.G0.Graph.IsConnected() {
		t.Fatal("G0 disconnected")
	}
}

func TestPartitionBalanceP1(t *testing.T) {
	h := testHierarchy(t)
	for l := 1; l <= h.Levels; l++ {
		sizes := h.Overlay(l).PartSizes()
		expected := float64(h.VM.Count()) / float64(intPow(h.Beta, l))
		for part, size := range sizes {
			if float64(size) < expected/4 || float64(size) > expected*4 {
				t.Fatalf("level %d part %d has %d nodes, expected ≈ %v", l, part, size, expected)
			}
		}
	}
}

func intPow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

func TestPartsRefine(t *testing.T) {
	h := testHierarchy(t)
	for l := 2; l <= h.Levels; l++ {
		o, below := h.Overlay(l), h.Overlay(l-1)
		for vid := 0; vid < h.VM.Count(); vid++ {
			if o.PartOf[vid]/int32(h.Beta) != below.PartOf[vid] {
				t.Fatalf("level %d part of vid %d does not refine", l, vid)
			}
		}
	}
}

func TestPortalsComplete(t *testing.T) {
	h := testHierarchy(t)
	totalPairs := 0
	for l := 1; l <= h.Levels; l++ {
		pt := h.PortalsAt(l)
		totalPairs += h.VM.Count() * (h.Beta - 1)
		if pt.Missing > totalPairs/100 {
			t.Fatalf("level %d: %d missing portals", l, pt.Missing)
		}
	}
}

func TestPortalsPointIntoSiblings(t *testing.T) {
	h := testHierarchy(t)
	for l := 1; l <= h.Levels; l++ {
		o, below, pt := h.Overlay(l), h.Overlay(l-1), h.PortalsAt(l)
		for vid := int32(0); vid < int32(h.VM.Count()); vid += 7 {
			for j := 0; j < h.Beta; j++ {
				if int32(j) == o.Digit[vid] {
					continue
				}
				ref := pt.Get(vid, j)
				if ref.Portal < 0 {
					continue
				}
				if o.PartOf[ref.Portal] != o.PartOf[vid] {
					t.Fatalf("level %d portal of %d toward %d is outside own part", l, vid, j)
				}
				e := below.Graph.Edge(int(ref.CrossEdge))
				other := int32(e.U)
				if other == ref.Portal {
					other = int32(e.V)
				}
				if o.Digit[other] != int32(j) || below.PartOf[other] != below.PartOf[vid] {
					t.Fatalf("level %d cross edge of %d toward %d lands wrong (digit %d)",
						l, vid, j, o.Digit[other])
				}
			}
		}
	}
}

func TestEmulationCostsPositive(t *testing.T) {
	h := testHierarchy(t)
	if h.G0.EmulationRounds < 1 {
		t.Fatal("G0 emulation cost < 1")
	}
	prev := 1
	for l := 1; l <= h.Levels; l++ {
		cost := h.EmulationToG0(l)
		if cost < prev {
			t.Fatalf("emulation cost shrank at level %d: %d < %d", l, cost, prev)
		}
		prev = cost
	}
	if h.EmulationToBase(h.Levels) < h.EmulationToG0(h.Levels) {
		t.Fatal("base emulation below G0 emulation")
	}
	if h.ConstructionRoundsBase() <= 0 {
		t.Fatal("construction rounds not positive")
	}
}

func TestDigitsOfIDMatchesTables(t *testing.T) {
	h := testHierarchy(t)
	for vid := int32(0); vid < int32(h.VM.Count()); vid += 5 {
		digits := h.DigitsOfID(h.VM.EncodedID(vid))
		for l := 1; l <= h.Levels; l++ {
			if int32(digits[l-1]) != h.DigitAt(vid, l) {
				t.Fatalf("vid %d level %d digit mismatch", vid, l)
			}
		}
	}
}

func TestLeafPartsSmall(t *testing.T) {
	h := testHierarchy(t)
	for part, size := range h.Overlay(h.Levels).PartSizes() {
		if size > 4*h.Resolved.LeafSize {
			t.Fatalf("leaf part %d has %d nodes, leaf target %d", part, size, h.Resolved.LeafSize)
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	r := rngutil.NewRand(5)
	g := graph.RandomRegular(32, 4, r)
	p := DefaultParams()
	p.Beta = 4
	p.LeafSize = 12
	h1, err := Build(g, p, rngutil.NewSource(9))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Build(g, p, rngutil.NewSource(9))
	if err != nil {
		t.Fatal(err)
	}
	if h1.G0.Graph.M() != h2.G0.Graph.M() {
		t.Fatal("same seed, different G0 size")
	}
	for e := 0; e < h1.G0.Graph.M(); e++ {
		if h1.G0.Graph.Edge(e) != h2.G0.Graph.Edge(e) {
			t.Fatal("same seed, different G0 edges")
		}
	}
}

func TestEdgePathOrientation(t *testing.T) {
	h := testHierarchy(t)
	e := 0
	edge := h.G0.Graph.Edge(e)
	fwd := h.G0.EdgePath(e, int32(edge.U))
	// Paths are physical: endpoints are the owners of the vids.
	if int(fwd[0]) != h.VM.Owner(int32(edge.U)) {
		t.Fatalf("forward path starts at %d, want owner of %d", fwd[0], edge.U)
	}
	rev := h.G0.EdgePath(e, int32(edge.V))
	if int(rev[0]) != h.VM.Owner(int32(edge.V)) {
		t.Fatal("reverse path starts wrong")
	}
	if len(fwd) != len(rev) {
		t.Fatal("orientations differ in length")
	}
}

func TestBuildErrorMentionsCause(t *testing.T) {
	// A ring has terrible expansion; with a tiny walk budget G0 will
	// either be fine (walks still mix: ring(8) is tiny) — so instead
	// check the disconnected-graph message is descriptive.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	_, err := Build(g, DefaultParams(), rngutil.NewSource(3))
	if err == nil || !strings.Contains(err.Error(), "disconnected") {
		t.Fatalf("err = %v, want mention of disconnection", err)
	}
}

// Property: hierarchy construction succeeds on random expanders across
// seeds and the full structural validation passes.
func TestPropertyBuildValidates(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping property build in -short mode")
	}
	for seed := uint64(0); seed < 3; seed++ {
		r := rngutil.NewRand(seed)
		g := graph.RandomRegular(32, 6, r)
		p := DefaultParams()
		p.Beta = 4
		p.LeafSize = 12
		h, err := Build(g, p, rngutil.NewSource(seed+100))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestBetaClampedToSqrtM(t *testing.T) {
	// A tiny graph cannot support β=16: resolve must clamp to √m.
	g := graph.RandomRegular(16, 4, rngutil.NewRand(7))
	p := DefaultParams()
	p.Beta = 64
	r, err := p.resolve(g)
	if err != nil {
		t.Fatal(err)
	}
	if r.beta*r.beta > 2*g.M() {
		t.Fatalf("beta %d not clamped for 2m=%d", r.beta, 2*g.M())
	}
}

func TestLevelsRespectMinPartRule(t *testing.T) {
	g := graph.RandomRegular(64, 6, rngutil.NewRand(8))
	p := DefaultParams()
	p.Beta = 4
	p.LeafSize = 12
	r, err := p.resolve(g)
	if err != nil {
		t.Fatal(err)
	}
	// After r.levels splits the expected part size must still be at
	// least max(leafSize, 2β); one more split would drop below it.
	size := 2 * g.M()
	for l := 0; l < r.levels; l++ {
		size /= r.beta
	}
	if size < maxInt(r.leafSize, 2*r.beta) {
		t.Fatalf("expected leaf size %d below the floor", size)
	}
}

func TestConstructionLedger(t *testing.T) {
	h := testHierarchy(t)
	led := h.Costs
	if led == nil {
		t.Fatal("Build left Costs nil")
	}
	if err := led.Err(); err != nil {
		t.Fatal(err)
	}
	// Differential: the ledger's root total is the legacy per-overlay sum,
	// and ConstructionRoundsBase reads the ledger.
	if got, want := led.Root.Total(), h.constructionRoundsFromOverlays(); got != want {
		t.Fatalf("ledger total %d, per-overlay formula %d", got, want)
	}
	if h.ConstructionRoundsBase() != led.Root.Total() {
		t.Fatal("ConstructionRoundsBase does not read the ledger")
	}

	// Children sum to the parent: g0 and level spans carry exactly the
	// per-overlay construction costs, converted by their multipliers.
	g0 := led.Root.Child("g0")
	if g0 == nil {
		t.Fatal("no g0 span")
	}
	if g0.Total() != h.G0.ConstructionRounds {
		t.Fatalf("g0 span total %d, overlay %d", g0.Total(), h.G0.ConstructionRounds)
	}
	walks, replay := g0.Child("walks"), g0.Child("endpoint-replay")
	if walks == nil || replay == nil {
		t.Fatal("g0 span lacks walks/endpoint-replay children")
	}
	if walks.Total()+replay.Total() != g0.Total() {
		t.Fatalf("g0 children %d+%d != %d", walks.Total(), replay.Total(), g0.Total())
	}
	sum := g0.Rolled()
	for l := 1; l <= h.Levels; l++ {
		sp := led.Root.Child(fmt.Sprintf("level-%d", l))
		if sp == nil {
			t.Fatalf("no level-%d span", l)
		}
		if sp.Total() != h.Upper[l-1].ConstructionRounds {
			t.Fatalf("level-%d span total %d, overlay %d", l, sp.Total(), h.Upper[l-1].ConstructionRounds)
		}
		if want := h.Upper[l-1].ConstructionRounds * h.EmulationToBase(l-1); sp.Rolled() != want {
			t.Fatalf("level-%d rolled %d, want %d", l, sp.Rolled(), want)
		}
		sum += sp.Rolled()
	}
	if sum != led.Root.Total() {
		t.Fatalf("children sum %d != root total %d", sum, led.Root.Total())
	}

	// The emulation-factors span is informational: present, zero rolled.
	info := led.Root.Child("emulation-factors")
	if info == nil {
		t.Fatal("no emulation-factors span")
	}
	if info.Rolled() != 0 {
		t.Fatalf("informational span rolled %d, want 0", info.Rolled())
	}
	if got := info.Child("g0").Total(); got != h.G0.EmulationRounds {
		t.Fatalf("emulation-factors/g0 %d, want %d", got, h.G0.EmulationRounds)
	}
}
