package embed

import (
	"fmt"

	"almostmix/internal/graph"
)

// VirtualIDBits is the number of low bits reserved for the per-node
// virtual index when encoding a virtual node identity for hashing.
const VirtualIDBits = 20

// VirtualMap is the correspondence between the 2m virtual nodes of the
// overlay hierarchy and the physical nodes of the base graph: physical
// node v simulates d_G(v) virtual nodes (§3.1.1).
type VirtualMap struct {
	owner  []int32 // vid -> physical node
	index  []int32 // vid -> index within the owner (0..d(v)-1)
	vstart []int32 // physical node -> first vid
	n2     int
}

// NewVirtualMap builds the virtual-node mapping for g.
func NewVirtualMap(g *graph.Graph) *VirtualMap {
	m2 := 2 * g.M()
	vm := &VirtualMap{
		owner:  make([]int32, 0, m2),
		index:  make([]int32, 0, m2),
		vstart: make([]int32, g.N()+1),
		n2:     m2,
	}
	for v := 0; v < g.N(); v++ {
		vm.vstart[v] = int32(len(vm.owner))
		for i := 0; i < g.Degree(v); i++ {
			vm.owner = append(vm.owner, int32(v))
			vm.index = append(vm.index, int32(i))
		}
	}
	vm.vstart[g.N()] = int32(len(vm.owner))
	return vm
}

// Count returns the number of virtual nodes (2m).
func (vm *VirtualMap) Count() int { return vm.n2 }

// Owner returns the physical node simulating vid.
func (vm *VirtualMap) Owner(vid int32) int { return int(vm.owner[vid]) }

// IndexAtOwner returns vid's index among its owner's virtual nodes.
func (vm *VirtualMap) IndexAtOwner(vid int32) int { return int(vm.index[vid]) }

// DegreeOf returns the number of virtual nodes owned by physical node v.
func (vm *VirtualMap) DegreeOf(v int) int { return int(vm.vstart[v+1] - vm.vstart[v]) }

// VID returns the virtual node (v, i).
func (vm *VirtualMap) VID(v, i int) int32 {
	if i < 0 || i >= vm.DegreeOf(v) {
		panic(fmt.Sprintf("embed: node %d has no virtual index %d", v, i))
	}
	return vm.vstart[v] + int32(i)
}

// EncodedID returns the globally hashable identity of vid: the owner's ID
// shifted past the virtual index. Any node that knows a destination's
// physical ID and virtual index can compute this and hence the partition
// label, which is property (P2) of §3.1.2.
func (vm *VirtualMap) EncodedID(vid int32) uint64 {
	return uint64(vm.owner[vid])<<VirtualIDBits | uint64(vm.index[vid])
}

// EncodeID computes the hashable identity from a (physical, index) pair
// without a VirtualMap lookup; it must agree with EncodedID.
func EncodeID(physical, index int) uint64 {
	return uint64(physical)<<VirtualIDBits | uint64(index)
}
