package embed

import (
	"fmt"

	"almostmix/internal/graph"
	"almostmix/internal/pathsched"
)

// Overlay is one level of the hierarchical embedding: a virtual graph on
// the 2m virtual nodes, together with, for each overlay edge, the path in
// the level below along which it is embedded.
//
// Level 0 is the Erdős–Rényi-style graph G0, embedded in the base graph
// (paths are physical node sequences). Level ℓ ≥ 1 is a disjoint union of
// per-part random graphs, embedded in level ℓ−1 (paths are virtual node
// sequences over the level-(ℓ−1) overlay).
type Overlay struct {
	// Level is 0 for G0, ℓ for Gℓ.
	Level int
	// Graph is the overlay topology on virtual-node indices.
	Graph *graph.Graph
	// Paths[e] is the embedded path of overlay edge e in the level
	// below (physical nodes for level 0).
	Paths [][]int32
	// PartOf[vid] is the part index of vid at this level; level 0 has a
	// single part 0. Part indices satisfy
	// part_ℓ = part_{ℓ-1}·β + digit_ℓ, so siblings share a parent quotient.
	PartOf []int32
	// Digit[vid] is this level's β-ary partition digit (level 0: 0).
	Digit []int32
	// NumParts is β^level (parts may be empty).
	NumParts int
	// ConstructionRounds is the measured cost of building this level,
	// in rounds of the level below (physical rounds for level 0).
	ConstructionRounds int
	// EmulationRounds is the measured cost of one full communication
	// round of this overlay (one message each way on every overlay
	// edge), in rounds of the level below.
	EmulationRounds int
	// walkRounds and replayRounds split ConstructionRounds into the
	// walk-execution and endpoint-replay components, recorded for the
	// construction cost ledger's child spans.
	walkRounds, replayRounds int
}

// measureEmulation schedules one packet per direction over every overlay
// edge's embedded path and records the makespan as EmulationRounds.
func (o *Overlay) measureEmulation() {
	paths := make([][]int32, 0, 2*len(o.Paths))
	for _, p := range o.Paths {
		paths = append(paths, p, reversed(p))
	}
	res := pathsched.Schedule(paths)
	o.EmulationRounds = res.Makespan
	if o.EmulationRounds == 0 {
		o.EmulationRounds = 1
	}
}

func reversed(p []int32) []int32 {
	out := make([]int32, len(p))
	for i, v := range p {
		out[len(p)-1-i] = v
	}
	return out
}

// EdgePath returns the embedded path of edge e oriented to start at the
// overlay endpoint from. Paths are stored oriented U→V; note that path
// entries live in the space of the level below (physical nodes for level
// 0), so orientation keys off the edge's endpoints, not path contents.
func (o *Overlay) EdgePath(e int, from int32) []int32 {
	edge := o.Graph.Edge(e)
	switch int(from) {
	case edge.U:
		return o.Paths[e]
	case edge.V:
		return reversed(o.Paths[e])
	default:
		panic(fmt.Sprintf("embed: vid %d is not an endpoint of edge %d", from, e))
	}
}

// SamePart reports whether two virtual nodes are in the same part at this
// level.
func (o *Overlay) SamePart(a, b int32) bool { return o.PartOf[a] == o.PartOf[b] }

// PartSizes returns the size of every non-empty part, keyed by part index.
func (o *Overlay) PartSizes() map[int32]int {
	sizes := make(map[int32]int)
	for _, p := range o.PartOf {
		sizes[p]++
	}
	return sizes
}

// Validate checks that every embedded path is a walk in the provided
// level-below adjacency and connects the edge's endpoints. project maps
// an overlay endpoint into the space path entries live in (the owner's
// physical node for level 0, identity for upper levels).
func (o *Overlay) Validate(adjacentBelow func(a, b int32) bool, project func(vid int32) int32) error {
	for e, edge := range o.Graph.Edges() {
		p := o.Paths[e]
		if len(p) == 0 {
			return fmt.Errorf("embed: level %d edge %d has empty path", o.Level, e)
		}
		u, v := project(int32(edge.U)), project(int32(edge.V))
		endsOK := p[0] == u && p[len(p)-1] == v
		if !endsOK {
			return fmt.Errorf("embed: level %d edge %d=(%d,%d) path ends (%d,%d)",
				o.Level, e, edge.U, edge.V, p[0], p[len(p)-1])
		}
		if err := pathsched.Validate([][]int32{p}, adjacentBelow); err != nil {
			return fmt.Errorf("embed: level %d edge %d: %w", o.Level, e, err)
		}
	}
	return nil
}
