package embed

import (
	"fmt"
	"math/rand/v2"

	"almostmix/internal/graph"
	"almostmix/internal/kwise"
	"almostmix/internal/randomwalk"
	"almostmix/internal/spectral"
)

// buildLevel constructs overlay Gℓ (ℓ ≥ 1) on top of `below` (G_{ℓ−1}),
// following §3.1.2: every virtual node starts Θ(β·log) 2Δ-regular walks
// on the level below (whose stationary distribution is uniform within
// each part); walks ending in the walker's own level-ℓ part are
// "successful" and each successful walk contributes one uniformly random
// same-part neighbor, embedded along the recorded walk path.
//
// digits[vid] is the β-ary digit of vid at level ℓ; the level-ℓ part of a
// node is partOf_{ℓ−1}·β + digit.
func buildLevel(level int, below *Overlay, digits []int32, r resolved, rng *rand.Rand) (*Overlay, error) {
	m2 := below.Graph.N()
	overlay := &Overlay{
		Level:    level,
		Graph:    graph.New(m2),
		PartOf:   make([]int32, m2),
		Digit:    make([]int32, m2),
		NumParts: below.NumParts * r.beta,
	}
	for vid := 0; vid < m2; vid++ {
		d := digits[vid]
		if d < 0 || int(d) >= r.beta {
			return nil, fmt.Errorf("embed: level %d digit %d out of range at vid %d", level, d, vid)
		}
		overlay.Digit[vid] = d
		overlay.PartOf[vid] = below.PartOf[vid]*int32(r.beta) + d
	}

	// Walk length: past the mixing time of the per-part random graphs,
	// which are Θ(log)-degree expanders: O(log of the part size) steps.
	maxBelow := 0
	for _, s := range below.PartSizes() {
		if s > maxBelow {
			maxBelow = s
		}
	}
	walkLen := 2*log2ceil(maxBelow) + 4

	walksPerNode := int(r.successMargin * float64(r.overlayDegree) * float64(r.beta))
	sources := make([]int32, 0, m2*walksPerNode)
	for vid := 0; vid < m2; vid++ {
		for j := 0; j < walksPerNode; j++ {
			sources = append(sources, int32(vid))
		}
	}
	res := randomwalk.Run(below.Graph, sources, randomwalk.Config{
		Kind:   spectral.Regular,
		Steps:  walkLen,
		Record: true,
	}, rng)

	partSizes := make(map[int32]int)
	for _, p := range overlay.PartOf {
		partSizes[p]++
	}
	kept := make([]int, 0, m2*r.overlayDegree)
	short := 0
	for vid := 0; vid < m2; vid++ {
		base := vid * walksPerNode
		part := overlay.PartOf[vid]
		taken := 0
		for j := 0; j < walksPerNode && taken < r.overlayDegree; j++ {
			w := base + j
			end := res.Ends[w]
			if int(end) == vid || overlay.PartOf[end] != part {
				continue
			}
			e := overlay.Graph.AddEdge(vid, int(end), 1)
			overlay.Paths = append(overlay.Paths, res.Walks[w].Path)
			if e != len(overlay.Paths)-1 {
				panic("embed: level edge/path misalignment")
			}
			kept = append(kept, w)
			taken++
		}
		// A node in a part of s nodes can only expect successes in
		// proportion to s−1, so the degree target is capped by the part
		// size (tiny leaf parts are near-complete multigraphs anyway).
		target := r.overlayDegree
		if limit := partSizes[part] - 1; limit < target {
			target = limit
		}
		if taken < target/2 {
			short++
		}
	}
	if short > 0 {
		return nil, fmt.Errorf("embed: level %d: %d nodes got under half the target degree %d; increase SuccessMargin",
			level, short, r.overlayDegree)
	}
	// Every part must induce a connected component for routing to work.
	if err := checkPartsConnected(overlay); err != nil {
		return nil, err
	}
	reverse := randomwalk.ReverseDeliveryRounds(below.Graph, res.Walks, kept)
	overlay.walkRounds = res.Stats.Rounds
	overlay.replayRounds = reverse
	overlay.ConstructionRounds = overlay.walkRounds + overlay.replayRounds
	overlay.measureEmulation()
	return overlay, nil
}

// checkPartsConnected verifies each part of the overlay induces a single
// connected component.
func checkPartsConnected(o *Overlay) error {
	m2 := o.Graph.N()
	sizes := o.PartSizes()
	visited := make([]bool, m2)
	for start := 0; start < m2; start++ {
		if visited[start] {
			continue
		}
		// BFS within the part.
		part := o.PartOf[start]
		size := 0
		queue := []int{start}
		visited[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			size++
			for _, h := range o.Graph.Neighbors(v) {
				if !visited[h.To] && o.PartOf[h.To] == part {
					visited[h.To] = true
					queue = append(queue, h.To)
				}
			}
		}
		if total := sizes[part]; size != total {
			return fmt.Errorf("embed: level %d part %d disconnected: component %d of %d nodes",
				o.Level, part, size, total)
		}
	}
	return nil
}

// computeDigits evaluates the shared hash on every virtual node's encoded
// ID and returns the per-level digit table digits[level-1][vid].
func computeDigits(vm *VirtualMap, hash *kwise.Family, beta, levels int) [][]int32 {
	digits := make([][]int32, levels)
	for l := range digits {
		digits[l] = make([]int32, vm.Count())
	}
	for vid := 0; vid < vm.Count(); vid++ {
		lbl := hash.LeafLabel(vm.EncodedID(int32(vid)), beta, levels)
		for l := 0; l < levels; l++ {
			digits[l][vid] = int32(lbl.Digits[l])
		}
	}
	return digits
}
