// Package spectral computes the expansion and mixing quantities the paper
// parameterizes its bounds by: the lazy and 2Δ-regular random-walk mixing
// times (Definition 2.1/2.2), edge expansion h(G), conductance φ(G), and
// spectral estimates of all of these for graphs too large for exact
// computation.
//
// Exact quantities are computed by dense evolution of walk distributions
// (mixing times) and subset enumeration (expansion, n ≤ 24). Estimates use
// power iteration for the second eigenvalue and Fiedler-vector sweep cuts.
package spectral

import (
	"errors"
	"fmt"
	"math"

	"almostmix/internal/graph"
)

// WalkKind selects which random walk a computation refers to.
type WalkKind int

const (
	// Lazy is the standard lazy walk: stay with probability 1/2,
	// otherwise move to a uniform neighbor. Its stationary distribution
	// is proportional to degrees (Definition 2.1).
	Lazy WalkKind = iota + 1
	// Regular is the 2Δ-regular walk of Definition 2.2: stay with
	// probability 1 − d(v)/(2Δ), move along each incident edge with
	// probability 1/(2Δ). Its stationary distribution is uniform.
	Regular
)

func (k WalkKind) String() string {
	switch k {
	case Lazy:
		return "lazy"
	case Regular:
		return "2Δ-regular"
	default:
		return fmt.Sprintf("WalkKind(%d)", int(k))
	}
}

// Stationary returns the stationary distribution of the walk on g.
func Stationary(g *graph.Graph, kind WalkKind) []float64 {
	n := g.N()
	pi := make([]float64, n)
	switch kind {
	case Lazy:
		twoM := float64(2 * g.M())
		for v := 0; v < n; v++ {
			pi[v] = float64(g.Degree(v)) / twoM
		}
	case Regular:
		for v := 0; v < n; v++ {
			pi[v] = 1 / float64(n)
		}
	default:
		panic("spectral: unknown walk kind")
	}
	return pi
}

// Step advances a probability distribution (or any vector) by one step of
// the transpose walk operator: out[u] = Σ_v dist[v]·P(v,u). It allocates
// and returns the next vector.
func Step(g *graph.Graph, kind WalkKind, dist []float64) []float64 {
	n := g.N()
	out := make([]float64, n)
	switch kind {
	case Lazy:
		for v := 0; v < n; v++ {
			p := dist[v]
			if p == 0 {
				continue
			}
			out[v] += p / 2
			share := p / (2 * float64(g.Degree(v)))
			for _, h := range g.Neighbors(v) {
				out[h.To] += share
			}
		}
	case Regular:
		delta := float64(g.MaxDegree())
		for v := 0; v < n; v++ {
			p := dist[v]
			if p == 0 {
				continue
			}
			d := float64(g.Degree(v))
			out[v] += p * (1 - d/(2*delta))
			share := p / (2 * delta)
			for _, h := range g.Neighbors(v) {
				out[h.To] += share
			}
		}
	default:
		panic("spectral: unknown walk kind")
	}
	return out
}

// ErrNotMixed is returned when the mixing criterion was not reached within
// the step budget.
var ErrNotMixed = errors.New("spectral: walk did not mix within the step budget")

// mixed reports whether dist satisfies the Definition 2.1 criterion
// |dist(u) − π(u)| ≤ π(u)/n for all u.
func mixed(dist, pi []float64, n int) bool {
	for u := range dist {
		if math.Abs(dist[u]-pi[u]) > pi[u]/float64(n) {
			return false
		}
	}
	return true
}

// MixingTimeFrom returns the minimum t such that the walk started at src
// satisfies the Definition 2.1 closeness criterion, evolving the exact
// distribution. It returns ErrNotMixed if maxT steps do not suffice.
func MixingTimeFrom(g *graph.Graph, kind WalkKind, src, maxT int) (int, error) {
	n := g.N()
	pi := Stationary(g, kind)
	dist := make([]float64, n)
	dist[src] = 1
	if mixed(dist, pi, n) {
		return 0, nil
	}
	for t := 1; t <= maxT; t++ {
		dist = Step(g, kind, dist)
		if mixed(dist, pi, n) {
			return t, nil
		}
	}
	return 0, fmt.Errorf("from node %d after %d steps: %w", src, maxT, ErrNotMixed)
}

// MixingTime returns the exact mixing time per Definition 2.1: the minimum
// t at which every start node's distribution is close to stationary. It
// evolves one distribution per start node; cost O(n·(n+m)) per step.
func MixingTime(g *graph.Graph, kind WalkKind, maxT int) (int, error) {
	n := g.N()
	pi := Stationary(g, kind)
	dists := make([][]float64, n)
	for v := 0; v < n; v++ {
		dists[v] = make([]float64, n)
		dists[v][v] = 1
	}
	pending := make([]int, 0, n) // start nodes not yet mixed
	for v := 0; v < n; v++ {
		if !mixed(dists[v], pi, n) {
			pending = append(pending, v)
		}
	}
	if len(pending) == 0 {
		return 0, nil
	}
	for t := 1; t <= maxT; t++ {
		// All start nodes must satisfy the criterion at the *same* t;
		// for lazy/regular walks the total-variation distance is
		// non-increasing, so once a source mixes it stays mixed and we
		// can drop it from the pending set. (Definition 2.1 asks for
		// pointwise closeness, which for these aperiodic reversible
		// walks is monotone in practice; tests cross-check small cases
		// by keeping all sources when n ≤ 64.)
		keep := pending[:0]
		for _, v := range pending {
			dists[v] = Step(g, kind, dists[v])
			if !mixed(dists[v], pi, n) {
				keep = append(keep, v)
			}
		}
		pending = keep
		if len(pending) == 0 {
			return t, nil
		}
	}
	return 0, fmt.Errorf("%d sources unmixed after %d steps: %w", len(pending), maxT, ErrNotMixed)
}

// SecondEigenvalue estimates λ₂, the second-largest eigenvalue of the walk
// operator, by power iteration on functions kept π-orthogonal to the
// constant eigenfunction. Both walk kinds are reversible, so eigenvalues
// are real; laziness makes them nonnegative.
func SecondEigenvalue(g *graph.Graph, kind WalkKind, iters int) float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	pi := Stationary(g, kind)
	// Deterministic non-degenerate start vector.
	f := make([]float64, n)
	for v := 0; v < n; v++ {
		f[v] = math.Sin(float64(3*v + 1))
	}
	projectOut(f, pi)
	normalize(f)
	lambda := 0.0
	for i := 0; i < iters; i++ {
		f = applyToFunction(g, kind, f)
		projectOut(f, pi)
		lambda = norm(f)
		if lambda == 0 {
			return 0
		}
		normalize(f)
	}
	return lambda
}

// applyToFunction computes (P f)(v) = Σ_u P(v,u) f(u).
func applyToFunction(g *graph.Graph, kind WalkKind, f []float64) []float64 {
	n := g.N()
	out := make([]float64, n)
	switch kind {
	case Lazy:
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, h := range g.Neighbors(v) {
				sum += f[h.To]
			}
			out[v] = f[v]/2 + sum/(2*float64(g.Degree(v)))
		}
	case Regular:
		delta := float64(g.MaxDegree())
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, h := range g.Neighbors(v) {
				sum += f[h.To]
			}
			d := float64(g.Degree(v))
			out[v] = f[v]*(1-d/(2*delta)) + sum/(2*delta)
		}
	default:
		panic("spectral: unknown walk kind")
	}
	return out
}

// projectOut removes the π-weighted mean from f, keeping it orthogonal to
// the constant eigenfunction in the π inner product.
func projectOut(f, pi []float64) {
	mean := 0.0
	for v := range f {
		mean += pi[v] * f[v]
	}
	for v := range f {
		f[v] -= mean
	}
}

func norm(f []float64) float64 {
	s := 0.0
	for _, x := range f {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalize(f []float64) {
	n := norm(f)
	if n == 0 {
		return
	}
	for i := range f {
		f[i] /= n
	}
}

// TimeUnmixed is the sentinel MixingTimeEstimate returns for graphs whose
// walks never mix (disconnected graphs have λ₂ = 1, so the spectral
// formula would otherwise emit an arbitrarily large garbage value).
const TimeUnmixed = -1

// MixingTimeEstimate returns a spectral upper estimate of the mixing time:
// t ≈ ln(n / (ε·π_min)) / (1 − λ₂) with ε the Definition 2.1 slack
// π_min/n. For graphs where the exact computation is infeasible this is
// the quantity experiments report, and tests confirm it brackets the exact
// value on small graphs.
//
// Disconnected graphs return TimeUnmixed: their walk operator has a second
// eigenvalue of exactly 1, so no finite mixing time exists (the
// decomposition recursion probes subgraphs that hit this case). Graphs
// with fewer than two nodes are already mixed and return 0.
func MixingTimeEstimate(g *graph.Graph, kind WalkKind) int {
	if g.N() < 2 {
		return 0
	}
	if !g.IsConnected() {
		return TimeUnmixed
	}
	lambda := SecondEigenvalue(g, kind, 200)
	if lambda >= 1 {
		lambda = 1 - 1e-9
	}
	pi := Stationary(g, kind)
	piMin := math.Inf(1)
	for _, p := range pi {
		if p < piMin {
			piMin = p
		}
	}
	t := math.Log(float64(g.N())/(piMin*piMin)) / (1 - lambda)
	return int(math.Ceil(t))
}

// EdgeExpansion computes h(G) = min_{1≤|S|≤n/2} e(S,V\S)/|S| exactly by
// enumerating subsets with a Gray-code walk. Feasible for n ≤ 24.
func EdgeExpansion(g *graph.Graph) float64 {
	n := g.N()
	if n > 24 {
		panic("spectral: exact edge expansion limited to n <= 24")
	}
	if n < 2 {
		return 0
	}
	best := math.Inf(1)
	inS := make([]bool, n)
	cut, size := 0, 0
	// Gray code: flipping one node changes the cut by its degree minus
	// twice its edges into the current S.
	total := 1 << n
	for i := 1; i < total; i++ {
		v := trailingZeros(i)
		intoS := 0
		for _, h := range g.Neighbors(v) {
			if inS[h.To] {
				intoS++
			}
		}
		if inS[v] {
			inS[v] = false
			size--
			cut -= g.Degree(v) - 2*intoS
		} else {
			inS[v] = true
			size++
			cut += g.Degree(v) - 2*intoS
		}
		if size >= 1 && size <= n/2 {
			if ratio := float64(cut) / float64(size); ratio < best {
				best = ratio
			}
		}
	}
	return best
}

// Conductance computes φ(G) = min_{vol(S)≤m} e(S,V\S)/vol(S) exactly by
// subset enumeration. Feasible for n ≤ 24.
//
// Disconnected graphs return 0, the mathematical convention (a connected
// component is a zero-cut set). The explicit check matters because the
// enumeration's vol ≥ 1 admissibility filter would otherwise skip
// zero-volume components (isolated nodes) and report a garbage positive
// value.
func Conductance(g *graph.Graph) float64 {
	n := g.N()
	if n > 24 {
		panic("spectral: exact conductance limited to n <= 24")
	}
	if n < 2 {
		return 0
	}
	if !g.IsConnected() {
		return 0
	}
	m := g.M()
	best := math.Inf(1)
	inS := make([]bool, n)
	cut, vol := 0, 0
	total := 1 << n
	for i := 1; i < total; i++ {
		v := trailingZeros(i)
		intoS := 0
		for _, h := range g.Neighbors(v) {
			if inS[h.To] {
				intoS++
			}
		}
		if inS[v] {
			inS[v] = false
			vol -= g.Degree(v)
			cut -= g.Degree(v) - 2*intoS
		} else {
			inS[v] = true
			vol += g.Degree(v)
			cut += g.Degree(v) - 2*intoS
		}
		if vol >= 1 && vol <= m {
			if ratio := float64(cut) / float64(vol); ratio < best {
				best = ratio
			}
		}
	}
	return best
}

func trailingZeros(i int) int {
	z := 0
	for i&1 == 0 {
		i >>= 1
		z++
	}
	return z
}

// EdgeExpansionSweep estimates h(G) from above by a sweep cut over the
// approximate second eigenvector of the lazy walk (Fiedler ordering). The
// returned value is the expansion of an actual cut, hence always an upper
// bound on h(G).
func EdgeExpansionSweep(g *graph.Graph) float64 {
	h, _, _ := sweepCut(g, func(cut, size, _ int) float64 {
		return float64(cut) / float64(size)
	}, func(size, vol, n, m int) bool { return size >= 1 && size <= n/2 })
	return h
}

// ConductanceSweep estimates φ(G) from above by a Fiedler sweep cut.
//
// Disconnected graphs return 0, the true conductance (a connected
// component is a zero-cut set); the power iteration's Fiedler
// approximation does not converge on a disconnected walk operator, so
// without the check the sweep could return an arbitrary positive value.
func ConductanceSweep(g *graph.Graph) float64 {
	phi, _ := ConductanceSweepCut(g)
	return phi
}

// ConductanceSweepCut returns the ConductanceSweep upper bound together
// with the side S realizing it (inS[v] reports membership in the sweep
// prefix; both S and its complement are nonempty). The decomposition
// trimming loop needs the cut itself, not just its value.
//
// Disconnected graphs return (0, nil): split along connected components
// before sweeping. Graphs with fewer than two nodes also return (0, nil).
func ConductanceSweepCut(g *graph.Graph) (float64, []bool) {
	if g.N() < 2 || !g.IsConnected() {
		return 0, nil
	}
	phi, size, order := sweepCut(g, func(cut, _, vol int) float64 {
		return float64(cut) / float64(vol)
	}, func(size, vol, n, m int) bool { return vol >= 1 && vol <= m })
	inS := make([]bool, g.N())
	for _, v := range order[:size] {
		inS[v] = true
	}
	return phi, inS
}

// sweepCut orders nodes by the approximate Fiedler vector and scans all
// prefixes, returning the best objective value, the prefix size, and the
// Fiedler order itself (order[:size] is the best prefix).
func sweepCut(g *graph.Graph, objective func(cut, size, vol int) float64,
	admissible func(size, vol, n, m int) bool) (float64, int, []int) {
	n := g.N()
	if n < 2 {
		return 0, 0, nil
	}
	pi := Stationary(g, Lazy)
	f := make([]float64, n)
	for v := 0; v < n; v++ {
		f[v] = math.Sin(float64(3*v + 1))
	}
	projectOut(f, pi)
	normalize(f)
	for i := 0; i < 120; i++ {
		f = applyToFunction(g, Lazy, f)
		projectOut(f, pi)
		normalize(f)
	}
	order := argsort(f)
	inS := make([]bool, n)
	best := math.Inf(1)
	bestSize := 0
	cut, vol := 0, 0
	for size := 1; size < n; size++ {
		v := order[size-1]
		intoS := 0
		for _, h := range g.Neighbors(v) {
			if inS[h.To] {
				intoS++
			}
		}
		inS[v] = true
		vol += g.Degree(v)
		cut += g.Degree(v) - 2*intoS
		if admissible(size, vol, n, g.M()) {
			if obj := objective(cut, size, vol); obj < best {
				best = obj
				bestSize = size
			}
		}
	}
	return best, bestSize, order
}

func argsort(f []float64) []int {
	order := make([]int, len(f))
	for i := range order {
		order[i] = i
	}
	// Insertion-free sort via sort.Slice is avoided to keep the import
	// list minimal; a simple heapless quicksort suffices here.
	quickArgsort(f, order, 0, len(order)-1)
	return order
}

func quickArgsort(f []float64, order []int, lo, hi int) {
	for lo < hi {
		p := f[order[(lo+hi)/2]]
		i, j := lo, hi
		for i <= j {
			for f[order[i]] < p {
				i++
			}
			for f[order[j]] > p {
				j--
			}
			if i <= j {
				order[i], order[j] = order[j], order[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quickArgsort(f, order, lo, j)
			lo = i
		} else {
			quickArgsort(f, order, i, hi)
			hi = j
		}
	}
}

// Lemma23Bound returns the Lemma 2.3 upper bound 8·Δ²·ln(n)/h² on the
// 2Δ-regular mixing time, given the edge expansion h.
func Lemma23Bound(g *graph.Graph, h float64) float64 {
	delta := float64(g.MaxDegree())
	return 8 * delta * delta * math.Log(float64(g.N())) / (h * h)
}
