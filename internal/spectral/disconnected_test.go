package spectral

// Tests for the disconnected-graph contract: the decomposition recursion
// probes induced subgraphs that fall apart into components, and the
// spectral quantities must return their documented sentinels there
// instead of garbage (λ₂ = 1 makes the mixing-time formula blow up, and
// zero-volume components break the conductance enumeration's
// admissibility filter).

import (
	"testing"

	"almostmix/internal/graph"
)

// twoTriangles returns two disjoint triangles plus one isolated node.
func twoTriangles() *graph.Graph {
	g := graph.New(7)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(5, 3, 1)
	return g
}

func TestMixingTimeEstimateDisconnected(t *testing.T) {
	g := twoTriangles()
	for _, kind := range []WalkKind{Lazy, Regular} {
		if got := MixingTimeEstimate(g, kind); got != TimeUnmixed {
			t.Errorf("MixingTimeEstimate(two components, %v) = %d, want TimeUnmixed (%d)", kind, got, TimeUnmixed)
		}
	}
	// Trivial graphs are already mixed.
	if got := MixingTimeEstimate(graph.New(1), Lazy); got != 0 {
		t.Errorf("MixingTimeEstimate(single node) = %d, want 0", got)
	}
	// Control: a connected graph still yields a positive finite estimate.
	if got := MixingTimeEstimate(graph.Complete(8), Lazy); got <= 0 {
		t.Errorf("MixingTimeEstimate(K8) = %d, want > 0", got)
	}
}

func TestConductanceDisconnected(t *testing.T) {
	g := twoTriangles()
	if got := Conductance(g); got != 0 {
		t.Errorf("Conductance(two components) = %g, want 0", got)
	}
	if got := ConductanceSweep(g); got != 0 {
		t.Errorf("ConductanceSweep(two components) = %g, want 0", got)
	}
	if phi, inS := ConductanceSweepCut(g); phi != 0 || inS != nil {
		t.Errorf("ConductanceSweepCut(two components) = (%g, %v), want (0, nil)", phi, inS)
	}
	if got := Conductance(graph.Complete(6)); got <= 0 {
		t.Errorf("Conductance(K6) = %g, want > 0", got)
	}
}

// TestConductanceSweepCutConsistent checks the returned cut realizes the
// returned value: φ = cut(S)/min(vol(S), vol(V\S))... the sweep's
// admissibility already restricts to vol(S) ≤ m, so φ = cut/vol(S).
func TestConductanceSweepCutConsistent(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Barbell(6, 2), graph.Lollipop(8, 4), graph.Ring(12)} {
		phi, inS := ConductanceSweepCut(g)
		if inS == nil {
			t.Fatalf("ConductanceSweepCut returned nil cut on connected graph")
		}
		size, vol := 0, 0
		for v, in := range inS {
			if in {
				size++
				vol += g.Degree(v)
			}
		}
		if size == 0 || size == g.N() {
			t.Fatalf("sweep cut side empty: size=%d of %d", size, g.N())
		}
		want := float64(g.CutSize(inS)) / float64(vol)
		if phi != want {
			t.Fatalf("sweep phi=%g but returned cut realizes %g", phi, want)
		}
		if sweep := ConductanceSweep(g); sweep != phi {
			t.Fatalf("ConductanceSweep=%g disagrees with ConductanceSweepCut=%g", sweep, phi)
		}
	}
}
