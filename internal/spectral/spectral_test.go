package spectral

import (
	"math"
	"testing"
	"testing/quick"

	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestStationarySums(t *testing.T) {
	g := graph.Lollipop(6, 4)
	for _, kind := range []WalkKind{Lazy, Regular} {
		pi := Stationary(g, kind)
		sum := 0.0
		for _, p := range pi {
			sum += p
		}
		if !almostEqual(sum, 1, 1e-12) {
			t.Fatalf("%v stationary sums to %v", kind, sum)
		}
	}
}

func TestStationaryShapes(t *testing.T) {
	g := graph.Star(5)
	pi := Stationary(g, Lazy)
	// Center has degree 4 of 2m=8.
	if !almostEqual(pi[0], 0.5, 1e-12) {
		t.Fatalf("star center stationary %v, want 0.5", pi[0])
	}
	piR := Stationary(g, Regular)
	for v, p := range piR {
		if !almostEqual(p, 0.2, 1e-12) {
			t.Fatalf("regular stationary at %d is %v, want 0.2", v, p)
		}
	}
}

func TestStepPreservesMass(t *testing.T) {
	f := func(seed uint64) bool {
		r := rngutil.NewRand(seed)
		g, err := graph.ConnectedGnp(24, 0.25, r)
		if err != nil {
			return true // skip rare disconnected draw
		}
		dist := make([]float64, g.N())
		dist[int(seed%uint64(g.N()))] = 1
		for _, kind := range []WalkKind{Lazy, Regular} {
			d := dist
			for s := 0; s < 5; s++ {
				d = Step(g, kind, d)
			}
			sum := 0.0
			for _, p := range d {
				sum += p
				if p < 0 {
					return false
				}
			}
			if !almostEqual(sum, 1, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestStepConvergesToStationary(t *testing.T) {
	g := graph.Lollipop(5, 3)
	for _, kind := range []WalkKind{Lazy, Regular} {
		pi := Stationary(g, kind)
		dist := make([]float64, g.N())
		dist[g.N()-1] = 1
		for s := 0; s < 3000; s++ {
			dist = Step(g, kind, dist)
		}
		for v := range dist {
			if !almostEqual(dist[v], pi[v], 1e-9) {
				t.Fatalf("%v: node %d has %v, stationary %v", kind, v, dist[v], pi[v])
			}
		}
	}
}

func TestMixingTimeCompleteIsSmall(t *testing.T) {
	g := graph.Complete(16)
	tm, err := MixingTime(g, Lazy, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tm < 1 || tm > 25 {
		t.Fatalf("K16 lazy mixing time %d, expected small", tm)
	}
}

func TestMixingTimeRingScales(t *testing.T) {
	t8, err := MixingTime(graph.Ring(8), Lazy, 5000)
	if err != nil {
		t.Fatal(err)
	}
	t16, err := MixingTime(graph.Ring(16), Lazy, 5000)
	if err != nil {
		t.Fatal(err)
	}
	// Ring mixing grows quadratically; 16 vs 8 should be ≥ 2.5x.
	if float64(t16) < 2.5*float64(t8) {
		t.Fatalf("ring mixing times %d (n=8) vs %d (n=16): no quadratic growth", t8, t16)
	}
}

func TestMixingTimeFromMatchesGlobal(t *testing.T) {
	g := graph.Lollipop(6, 6)
	global, err := MixingTime(g, Lazy, 20000)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0
	for v := 0; v < g.N(); v++ {
		tv, err := MixingTimeFrom(g, Lazy, v, 20000)
		if err != nil {
			t.Fatal(err)
		}
		if tv > worst {
			worst = tv
		}
	}
	if worst != global {
		t.Fatalf("max per-source mixing %d != global %d", worst, global)
	}
}

func TestMixingTimeBudgetError(t *testing.T) {
	if _, err := MixingTime(graph.Ring(32), Lazy, 3); err == nil {
		t.Fatal("expected ErrNotMixed for tiny budget")
	}
}

func TestSecondEigenvalueComplete(t *testing.T) {
	// Lazy walk on K_n: λ2 = 1/2 − 1/(2(n−1)).
	n := 16
	want := 0.5 - 1/(2*float64(n-1))
	got := SecondEigenvalue(graph.Complete(n), Lazy, 300)
	if !almostEqual(got, want, 1e-6) {
		t.Fatalf("λ2(K16 lazy) = %v, want %v", got, want)
	}
}

func TestSecondEigenvalueRing(t *testing.T) {
	// Lazy walk on C_n: λ2 = 1/2 + cos(2π/n)/2.
	n := 12
	want := 0.5 + math.Cos(2*math.Pi/float64(n))/2
	got := SecondEigenvalue(graph.Ring(n), Lazy, 4000)
	if !almostEqual(got, want, 1e-4) {
		t.Fatalf("λ2(C12 lazy) = %v, want %v", got, want)
	}
}

func TestEdgeExpansionKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want float64
	}{
		{"K8", graph.Complete(8), 4},            // n−|S| minimized at |S|=n/2
		{"ring12", graph.Ring(12), 2.0 / 6.0},   // arc cut
		{"barbell4", graph.Barbell(4, 0), 0.25}, // bridge / clique size
		{"path6", graph.Path(6), 1.0 / 3.0},     // split in the middle
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := EdgeExpansion(tc.g)
			if !almostEqual(got, tc.want, 1e-12) {
				t.Fatalf("h = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestConductanceKnownValues(t *testing.T) {
	// Ring: cut 2 over volume n (arc of n/2 nodes, each degree 2).
	got := Conductance(graph.Ring(12))
	if !almostEqual(got, 2.0/12.0, 1e-12) {
		t.Fatalf("φ(C12) = %v, want 1/6", got)
	}
	// Barbell(4,0): S = one clique, cut 1, vol = 4·3+1 = 13.
	got = Conductance(graph.Barbell(4, 0))
	if !almostEqual(got, 1.0/13.0, 1e-12) {
		t.Fatalf("φ(barbell) = %v, want 1/13", got)
	}
}

func TestSweepUpperBounds(t *testing.T) {
	r := rngutil.NewRand(11)
	graphs := map[string]*graph.Graph{
		"ring16":     graph.Ring(16),
		"barbell6":   graph.Barbell(6, 0),
		"lollipop":   graph.Lollipop(8, 8),
		"rr16":       graph.RandomRegular(16, 4, r),
		"torus(4x4)": func() *graph.Graph { return graph.Torus(4, 4) }(),
	}
	for name, g := range graphs {
		exact := EdgeExpansion(g)
		sweep := EdgeExpansionSweep(g)
		if sweep < exact-1e-9 {
			t.Fatalf("%s: sweep %v below exact %v", name, sweep, exact)
		}
		// The Fiedler sweep should be within 3x on these easy graphs.
		if sweep > 3*exact+1e-9 {
			t.Fatalf("%s: sweep %v too loose vs exact %v", name, sweep, exact)
		}
		exactPhi := Conductance(g)
		sweepPhi := ConductanceSweep(g)
		if sweepPhi < exactPhi-1e-9 {
			t.Fatalf("%s: conductance sweep %v below exact %v", name, sweepPhi, exactPhi)
		}
	}
}

func TestLemma23BoundHolds(t *testing.T) {
	// τ̄_mix ≤ 8Δ²·ln(n)/h² (Lemma 2.3) on assorted small graphs.
	r := rngutil.NewRand(13)
	graphs := map[string]*graph.Graph{
		"ring14":   graph.Ring(14),
		"K10":      graph.Complete(10),
		"barbell5": graph.Barbell(5, 0),
		"rr18":     graph.RandomRegular(18, 4, r),
		"star12":   graph.Star(12),
	}
	for name, g := range graphs {
		h := EdgeExpansion(g)
		bound := Lemma23Bound(g, h)
		tm, err := MixingTime(g, Regular, int(bound)+10)
		if err != nil {
			t.Fatalf("%s: %v (bound %v)", name, err, bound)
		}
		if float64(tm) > bound {
			t.Fatalf("%s: τ̄_mix = %d exceeds Lemma 2.3 bound %v", name, tm, bound)
		}
	}
}

func TestMixingTimeEstimateBrackets(t *testing.T) {
	// The spectral estimate should be ≥ the exact mixing time (it is an
	// upper-bound-style estimate) and not absurdly loose on expanders.
	r := rngutil.NewRand(17)
	g := graph.RandomRegular(24, 4, r)
	exact, err := MixingTime(g, Lazy, 10000)
	if err != nil {
		t.Fatal(err)
	}
	est := MixingTimeEstimate(g, Lazy)
	if est < exact {
		t.Fatalf("estimate %d below exact %d", est, exact)
	}
	if est > 60*exact {
		t.Fatalf("estimate %d wildly above exact %d", est, exact)
	}
}

func TestWalkKindString(t *testing.T) {
	if Lazy.String() != "lazy" || Regular.String() != "2Δ-regular" {
		t.Fatal("WalkKind strings wrong")
	}
	if WalkKind(99).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}
