package mstbase

import (
	"fmt"
	"math"

	"almostmix/internal/congest"
	"almostmix/internal/graph"
	"almostmix/internal/metrics"
	"almostmix/internal/rngutil"
)

// This file implements synchronous Borůvka/GHS as genuine node programs
// on the CONGEST simulator — every fragment-ID exchange, candidate
// convergecast, decision downcast, merge request and adoption wave is an
// actual O(log n)-bit message crossing an actual edge, and the round
// count is whatever the simulator measures. It is the full-fidelity
// counterpart of the charged-cost GHS model above and the textbook
// O(n log n) synchronous algorithm: iterations run in fixed windows of
// Θ(n) rounds, inside which the phases are event-driven.
//
// Window layout (local offset ℓ within a window of length 3n+6):
//
//	ℓ = 0                every node sends its fragment ID to all neighbors
//	ℓ ∈ [1, n+1)         MWOE candidates convergecast up the fragment tree
//	ℓ = n+1              fragment roots open the decision downcast
//	ℓ ∈ (n+1, 3n+6)      decisions flood down; chosen-edge owners send
//	                     merge requests; the higher-ID endpoint of each
//	                     mutually-chosen (core) edge starts the adoption
//	                     wave that re-roots the merged fragment
//
// A fragment whose root sees no outgoing edge spans the whole graph; its
// "none" decision makes every node halt at the window boundary.

// ghsCandidate is an MWOE candidate: the edge's weight and endpoints
// (inside node first). A +Inf weight encodes "no outgoing edge".
type ghsCandidate struct {
	W    float64
	X, Y int32
}

func (c ghsCandidate) better(o ghsCandidate) bool {
	if c.W != o.W {
		return c.W < o.W
	}
	if c.X != o.X {
		return c.X < o.X
	}
	return c.Y < o.Y
}

// Message payloads.
type (
	ghsFragID   struct{ Frag int32 }
	ghsReport   struct{ Cand ghsCandidate }
	ghsDecision struct{ Cand ghsCandidate }
	ghsMergeReq struct{}
	ghsAdopt    struct{ Frag int32 }

	// ghsWin wraps every payload with its window index on faulty runs, so
	// a delayed message straggling across a window boundary is recognized
	// and discarded instead of corrupting the next window's counters. The
	// discard matches fault-free semantics: the boundary step never reads
	// its inbox, so a message crossing a boundary is already lost.
	ghsWin struct {
		Win  int32
		Body congest.Message
	}
)

// ghsNode is the per-node program state.
type ghsNode struct {
	run *ghsRun

	frag       int32
	parentPort int    // -1 at fragment roots
	treePort   []bool // MST edges chosen so far (ports)
	// chosen collects the MST edge IDs this node selected as the owning
	// (inside) endpoint. Recording is per node — never into shared run
	// state — so concurrent Steps under the parallel engine stay
	// race-free; GHSNetwork aggregates after the run.
	chosen []int

	// Per-window scratch, reset at ℓ = 0.
	nbrFrag     []int32
	gotFrag     int
	childWait   int
	bestCand    ghsCandidate
	reported    bool
	decided     bool
	decision    ghsCandidate
	sentMerge   bool
	mergedPort  []bool // ports that received/sent a merge request
	adopted     bool
	newParent   int
	newFrag     int32
	complete    bool
	pendingSend []pendingMsg

	// Faulty-run extras, inert when run.faulty is false. curWin/lastWin
	// track the window index so stamped messages can be produced and a
	// boundary missed while crashed can be detected. poisoned marks a
	// window in which this node observed an inconsistency (label split
	// across a tree edge, report from an unexpected port, recovery
	// mid-window): a poisoned node abstains from reporting, which stalls
	// its fragment's decision for the window — the window retries cleanly
	// after the next boundary instead of committing a corrupt choice.
	// repairFrag heals label splits: the largest conflicting fragment ID
	// seen across a tree edge is adopted at the next boundary, converging
	// a split component back to a single label one tree hop per window.
	curWin     int32
	lastWin    int32
	poisoned   bool
	repairFrag int32
	gotReport  []bool // per-port report dedup, allocated on faulty runs
}

type pendingMsg struct {
	port    int
	payload congest.Message
}

// ghsRun holds shared run metadata. It is read-only during the run.
type ghsRun struct {
	window int
	// faulty enables the defensive machinery (window stamping, dedup,
	// poisoning, label repair). Off by default so fault-free executions
	// stay byte-identical to the plain algorithm.
	faulty bool
}

func noneCandidate() ghsCandidate {
	return ghsCandidate{W: math.Inf(1), X: -1, Y: -1}
}

func (p *ghsNode) Init(ctx *congest.Ctx) {
	p.frag = int32(ctx.ID())
	p.parentPort = -1
	p.treePort = make([]bool, ctx.Degree())
	p.nbrFrag = make([]int32, ctx.Degree())
	p.resetWindow(ctx)
}

func (p *ghsNode) resetWindow(ctx *congest.Ctx) {
	for i := range p.nbrFrag {
		p.nbrFrag[i] = -1
	}
	p.gotFrag = 0
	p.childWait = 0
	for port, tree := range p.treePort {
		if tree && port != p.parentPort {
			p.childWait++
		}
	}
	p.bestCand = noneCandidate()
	p.reported = false
	p.decided = false
	p.sentMerge = false
	p.mergedPort = make([]bool, ctx.Degree())
	p.adopted = false
	p.newParent = -1
	p.newFrag = -1
	p.pendingSend = p.pendingSend[:0]
	p.poisoned = false
	p.repairFrag = -1
	if p.run.faulty {
		p.gotReport = make([]bool, ctx.Degree())
	}
}

// send queues a message; at most one per port is flushed per round, which
// keeps the program within CONGEST capacity even when phases abut.
func (p *ghsNode) send(port int, payload congest.Message) {
	p.pendingSend = append(p.pendingSend, pendingMsg{port: port, payload: payload})
}

func (p *ghsNode) flush(ctx *congest.Ctx) {
	usedPort := make(map[int]bool, len(p.pendingSend))
	rest := p.pendingSend[:0]
	for _, m := range p.pendingSend {
		if usedPort[m.port] {
			rest = append(rest, m)
			continue
		}
		usedPort[m.port] = true
		if p.run.faulty {
			ctx.Send(m.port, ghsWin{Win: p.curWin, Body: m.payload})
		} else {
			ctx.Send(m.port, m.payload)
		}
	}
	p.pendingSend = rest
}

func (p *ghsNode) Step(ctx *congest.Ctx, inbox []congest.Inbound) {
	w := p.run.window
	offset := (ctx.Round() - 1) % w
	p.curWin = int32((ctx.Round() - 1) / w)

	if offset == 0 {
		// Window boundary: commit the previous window's merge, halt if
		// the graph is spanned, then open the new window. Node 0 marks
		// the boundary for the phase timeline (it steps until the end:
		// every node halts at the same boundary, after the spanning
		// fragment's "none" decision floods).
		if ctx.ID() == 0 && ctx.Tracing() {
			ctx.Mark(fmt.Sprintf("window %d", (ctx.Round()-1)/w))
		}
		p.commitWindow(ctx)
		if p.complete {
			ctx.Halt()
			return
		}
		p.resetWindow(ctx)
		p.lastWin = p.curWin
		for port := 0; port < ctx.Degree(); port++ {
			p.send(port, ghsFragID{Frag: p.frag})
		}
		p.flush(ctx)
		return
	}

	if p.run.faulty && p.curWin != p.lastWin {
		// A crash carried this node across a window boundary: its scratch
		// still describes the old window and its neighbors never got its
		// fragment ID. Commit what the old window concluded, resync, and
		// sit the rest of this window out — the neighborhood stalls on the
		// missing fragment ID anyway and retries at the next boundary.
		p.commitWindow(ctx)
		if p.complete {
			ctx.Halt()
			return
		}
		p.resetWindow(ctx)
		p.lastWin = p.curWin
		p.poisoned = true
	}

	for _, in := range inbox {
		if p.run.faulty {
			wm, ok := in.Payload.(ghsWin)
			if !ok {
				panic(fmt.Sprintf("mstbase: node %d got unstamped %T", ctx.ID(), in.Payload))
			}
			if wm.Win != p.curWin {
				continue // straggler from another window
			}
			in.Payload = wm.Body
		}
		p.handle(ctx, in)
	}
	p.maybeReport(ctx, offset)
	p.flush(ctx)
}

// commitWindow applies the previous window's merge outcome and, on faulty
// runs, the label repair: a node that saw a larger fragment ID across one
// of its tree edges adopts it, converging a label-split component back to
// one ID a tree hop per window.
func (p *ghsNode) commitWindow(ctx *congest.Ctx) {
	if p.adopted {
		p.frag = p.newFrag
		p.parentPort = p.newParent
		for port, m := range p.mergedPort {
			if m {
				p.treePort[port] = true
			}
		}
	}
	if p.run.faulty && p.repairFrag > p.frag {
		p.frag = p.repairFrag
	}
}

func (p *ghsNode) handle(ctx *congest.Ctx, in congest.Inbound) {
	switch msg := in.Payload.(type) {
	case ghsFragID:
		// Count each port once: fault-free every neighbor sends exactly
		// one ID per window, so this is a no-op; under duplication it
		// keeps gotFrag honest.
		if p.nbrFrag[in.Port] == -1 {
			p.gotFrag++
		}
		p.nbrFrag[in.Port] = msg.Frag
		if p.run.faulty && p.treePort[in.Port] && msg.Frag != p.frag {
			// Label split across a committed tree edge (an adoption wave
			// was cut short by a fault). Stall this window and heal
			// toward the larger label at the next boundary.
			p.poisoned = true
			if msg.Frag > p.repairFrag {
				p.repairFrag = msg.Frag
			}
		}
	case ghsReport:
		if p.run.faulty {
			if !p.treePort[in.Port] || in.Port == p.parentPort {
				// A report from a port this node does not consider a
				// child edge: tree-topology asymmetry left by a fault.
				// Ignore it and stall rather than corrupt childWait.
				p.poisoned = true
				return
			}
			if p.gotReport[in.Port] {
				return // duplicate
			}
			p.gotReport[in.Port] = true
		}
		if msg.Cand.better(p.bestCand) {
			p.bestCand = msg.Cand
		}
		p.childWait--
	case ghsDecision:
		if p.run.faulty && in.Port != p.parentPort {
			// Fault-free, decisions only flow parent → child.
			p.poisoned = true
			return
		}
		p.applyDecision(ctx, msg.Cand)
	case ghsMergeReq:
		p.mergedPort[in.Port] = true
		// If the adoption wave already passed through this node, the
		// late-arriving subtree behind this request must be flooded too.
		if p.adopted {
			p.send(in.Port, ghsAdopt{Frag: p.newFrag})
		}
		if p.sentMerge && int(p.decision.Y) == ctx.NeighborID(in.Port) &&
			int(p.decision.X) == ctx.ID() {
			// Mutual choice: this edge is the core. The higher-ID
			// endpoint becomes the new fragment root.
			if ctx.ID() > ctx.NeighborID(in.Port) {
				p.startAdoption(ctx)
			}
		}
	case ghsAdopt:
		if p.adopted {
			return
		}
		p.adopted = true
		p.newFrag = msg.Frag
		p.newParent = in.Port
		p.mergedPort[in.Port] = true
		p.forwardAdoption(ctx, in.Port)
	default:
		panic(fmt.Sprintf("mstbase: node %d got %T", ctx.ID(), in.Payload))
	}
}

// maybeReport sends this node's aggregated candidate to its parent once
// all fragment children reported and all neighbor fragment IDs are known.
func (p *ghsNode) maybeReport(ctx *congest.Ctx, offset int) {
	if p.reported || offset < 1 || p.gotFrag < ctx.Degree() || p.childWait > 0 {
		return
	}
	if p.poisoned {
		// This window's counters are suspect: abstain. The missing report
		// stalls the fragment's decision, and the window retries after
		// the next boundary instead of committing a corrupt choice.
		return
	}
	p.reported = true
	// Fold in the local candidate: the lightest incident edge leaving
	// the fragment.
	for port := 0; port < ctx.Degree(); port++ {
		if p.nbrFrag[port] == p.frag || p.nbrFrag[port] == -1 {
			continue
		}
		cand := ghsCandidate{
			W: ctx.EdgeWeight(port),
			X: int32(ctx.ID()),
			Y: int32(ctx.NeighborID(port)),
		}
		if cand.better(p.bestCand) {
			p.bestCand = cand
		}
	}
	if p.parentPort >= 0 {
		p.send(p.parentPort, ghsReport{Cand: p.bestCand})
		return
	}
	// Root: decide and open the downcast.
	p.applyDecision(ctx, p.bestCand)
}

// applyDecision records the fragment's MWOE, forwards it down the tree,
// and triggers the merge request if this node owns the chosen edge.
func (p *ghsNode) applyDecision(ctx *congest.Ctx, cand ghsCandidate) {
	if p.decided {
		return
	}
	p.decided = true
	p.decision = cand
	for port, tree := range p.treePort {
		if tree && port != p.parentPort {
			p.send(port, ghsDecision{Cand: cand})
		}
	}
	if math.IsInf(cand.W, 1) {
		// No outgoing edge: the fragment spans the graph.
		p.complete = true
		return
	}
	if int(cand.X) == ctx.ID() {
		for port := 0; port < ctx.Degree(); port++ {
			if ctx.NeighborID(port) == int(cand.Y) {
				p.sentMerge = true
				// The peer's request may already have arrived (it can
				// decide earlier): detect the mutual core edge now.
				mutual := p.mergedPort[port]
				p.mergedPort[port] = true
				p.chosen = append(p.chosen, ctx.EdgeID(port))
				p.send(port, ghsMergeReq{})
				if mutual && ctx.ID() > int(cand.Y) {
					p.startAdoption(ctx)
				}
				// If the adoption wave already passed this node, it
				// must be extended over the just-marked chosen edge.
				if p.adopted {
					p.send(port, ghsAdopt{Frag: p.newFrag})
				}
				break
			}
		}
	}
}

// startAdoption makes this node the merged fragment's root and floods the
// new fragment ID over tree and merge edges.
func (p *ghsNode) startAdoption(ctx *congest.Ctx) {
	if p.adopted {
		return
	}
	p.adopted = true
	p.newFrag = int32(ctx.ID())
	p.newParent = -1
	p.forwardAdoption(ctx, -1)
}

func (p *ghsNode) forwardAdoption(ctx *congest.Ctx, fromPort int) {
	for port := 0; port < ctx.Degree(); port++ {
		if port == fromPort {
			continue
		}
		if p.treePort[port] || p.mergedPort[port] {
			p.send(port, ghsAdopt{Frag: p.newFrag})
		}
	}
}

// GHSNetwork runs the node-program synchronous Borůvka on g and returns
// the MST with the simulator-measured round count. Weights should be
// distinct.
func GHSNetwork(g *graph.Graph, src *rngutil.Source) (*Result, error) {
	return GHSNetworkParallel(g, src, 1)
}

// GHSNetworkParallel runs GHSNetwork on the simulator's sharded parallel
// engine with the given worker count (1 = the sequential reference engine,
// <= 0 = one worker per CPU). The result — tree, rounds, message-level
// schedule — is bit-identical for every worker count; only wall-clock time
// changes.
func GHSNetworkParallel(g *graph.Graph, src *rngutil.Source, workers int) (*Result, error) {
	return GHSNetworkProbe(g, src, workers, nil)
}

// GHSNetworkProbe runs like GHSNetworkParallel with a probe attached to
// the simulator (see congest.Probe): the probe sees every round's
// delivery profile plus a phase mark per Borůvka window, emitted by node
// 0 at each window boundary. A nil probe is identical to
// GHSNetworkParallel.
func GHSNetworkProbe(g *graph.Graph, src *rngutil.Source, workers int, probe congest.Probe) (*Result, error) {
	return GHSNetworkObserved(g, src, workers, probe, nil)
}

// GHSNetworkObserved runs like GHSNetworkProbe with a host-metrics
// registry additionally attached to the simulator (per-round wall time,
// throughput, worker busy/idle). Nil probe and nil registry are both
// valid and independent.
func GHSNetworkObserved(g *graph.Graph, src *rngutil.Source, workers int, probe congest.Probe, reg *metrics.Registry) (*Result, error) {
	if !g.IsConnected() {
		return nil, fmt.Errorf("mstbase: %w", graph.ErrDisconnected)
	}
	run := &ghsRun{window: 3*g.N() + 6}
	nodes := make([]*ghsNode, g.N())
	net := congest.NewUniformNetwork(g, func(v int) congest.Program {
		nodes[v] = &ghsNode{run: run}
		return nodes[v]
	}, src).SetWorkers(workers).SetProbe(probe).SetMetrics(reg)
	iterBudget := 2*log2int(g.N()) + 4
	rounds, err := net.Run(run.window*iterBudget + 2)
	if err != nil {
		return nil, fmt.Errorf("mstbase: GHSNetwork: %w", err)
	}
	res := &Result{
		Rounds:     rounds,
		Iterations: (rounds + run.window - 1) / run.window,
	}
	seen := make(map[int]struct{}, g.N()-1)
	for _, node := range nodes {
		for _, id := range node.chosen {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				res.Edges = append(res.Edges, id)
			}
		}
	}
	res.Weight = g.TotalWeight(res.Edges)
	return res, nil
}

func log2int(n int) int {
	return int(math.Ceil(math.Log2(float64(n))))
}
