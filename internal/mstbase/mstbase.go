// Package mstbase implements the classical distributed MST baselines the
// paper competes against, with measured round accounting:
//
//   - GHS: synchronous flood-based Borůvka in the style of Gallager,
//     Humblet and Spira. Per iteration, every node exchanges fragment IDs
//     with its neighbors (1 round) and each fragment convergecasts its
//     minimum-weight outgoing edge over its own fragment tree and floods
//     the decision back (2 tree depths each way). Fragment trees are the
//     MST edges chosen so far, so iteration cost grows with fragment
//     diameter — the classic Õ(n) behaviour on high-diameter fragments.
//
//   - KP: a Garay–Kutten–Peleg-style Õ(D+√n) algorithm. Phase 1 runs
//     controlled Borůvka, where only fragments smaller than √n select
//     outgoing edges, until every fragment has ≥ √n nodes. Phase 2 builds
//     a BFS tree and finishes Borůvka globally: each remaining iteration
//     pipelines the ≤ n/√n fragment minima up the BFS tree (depth + #fragments
//     rounds) and floods decisions back down.
//
// Both produce the exact MST (verified against Kruskal in tests); their
// round counts are the baseline curves of experiment E1.
package mstbase

import (
	"fmt"
	"math"
	"sort"

	"almostmix/internal/graph"
)

// Result is the outcome of a baseline MST computation.
type Result struct {
	Edges      []int
	Weight     float64
	Rounds     int
	Iterations int
	// Phase1Rounds/Phase2Rounds decompose KP's cost (zero for GHS).
	Phase1Rounds, Phase2Rounds int
}

// state tracks Borůvka fragments and the forest of chosen edges.
type state struct {
	g      *graph.Graph
	frag   []int32
	chosen []int
	inTree []bool // edge id -> chosen
}

func newState(g *graph.Graph) *state {
	s := &state{
		g:      g,
		frag:   make([]int32, g.N()),
		inTree: make([]bool, g.M()),
	}
	for v := range s.frag {
		s.frag[v] = int32(v)
	}
	return s
}

// fragments returns the number of distinct fragments.
func (s *state) fragments() int {
	seen := make(map[int32]struct{})
	for _, f := range s.frag {
		seen[f] = struct{}{}
	}
	return len(seen)
}

// sizes returns per-fragment node counts.
func (s *state) sizes() map[int32]int {
	out := make(map[int32]int)
	for _, f := range s.frag {
		out[f]++
	}
	return out
}

// mwoe returns each fragment's minimum-weight outgoing edge (edge ID, or
// -1 when the fragment has none), restricted to fragments in the active
// set (nil = all).
func (s *state) mwoe(active map[int32]bool) map[int32]int {
	out := make(map[int32]int)
	for _, f := range s.frag {
		if active == nil || active[f] {
			if _, ok := out[f]; !ok {
				out[f] = -1
			}
		}
	}
	edges := s.g.Edges()
	for id, e := range edges {
		fu, fv := s.frag[e.U], s.frag[e.V]
		if fu == fv {
			continue
		}
		better := func(id, best int) bool {
			if best < 0 {
				return true
			}
			if edges[id].W != edges[best].W {
				return edges[id].W < edges[best].W
			}
			return id < best
		}
		if best, ok := out[fu]; ok && better(id, best) {
			out[fu] = id
		}
		if best, ok := out[fv]; ok && better(id, best) {
			out[fv] = id
		}
	}
	return out
}

// merge adds the selected edges to the forest and relabels fragments as
// the connected components of the chosen-edge subgraph. It returns how
// many edges were newly added.
func (s *state) merge(selected map[int32]int) int {
	added := 0
	for _, id := range selected {
		if id >= 0 && !s.inTree[id] {
			s.inTree[id] = true
			s.chosen = append(s.chosen, id)
			added++
		}
	}
	// Relabel by BFS over tree edges; fragment ID = minimum node ID.
	visited := make([]bool, s.g.N())
	for start := 0; start < s.g.N(); start++ {
		if visited[start] {
			continue
		}
		comp := s.treeComponent(start, visited)
		minID := comp[0]
		for _, v := range comp {
			if v < minID {
				minID = v
			}
		}
		for _, v := range comp {
			s.frag[v] = int32(minID)
		}
	}
	return added
}

// treeComponent collects the component of start in the chosen-edge forest.
func (s *state) treeComponent(start int, visited []bool) []int {
	comp := []int{start}
	visited[start] = true
	for i := 0; i < len(comp); i++ {
		v := comp[i]
		for _, h := range s.g.Neighbors(v) {
			if s.inTree[h.EdgeID] && !visited[h.To] {
				visited[h.To] = true
				comp = append(comp, h.To)
			}
		}
	}
	return comp
}

// treeDepths returns, per fragment, the BFS depth of its tree from the
// fragment leader (the minimum-ID node).
func (s *state) treeDepths() map[int32]int {
	depths := make(map[int32]int)
	visited := make([]bool, s.g.N())
	for start := 0; start < s.g.N(); start++ {
		if visited[start] || int32(start) != s.frag[start] {
			continue // only start from leaders
		}
		// BFS over tree edges, tracking depth.
		type qe struct{ v, d int }
		queue := []qe{{start, 0}}
		visited[start] = true
		maxD := 0
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if cur.d > maxD {
				maxD = cur.d
			}
			for _, h := range s.g.Neighbors(cur.v) {
				if s.inTree[h.EdgeID] && !visited[h.To] {
					visited[h.To] = true
					queue = append(queue, qe{h.To, cur.d + 1})
				}
			}
		}
		depths[s.frag[start]] = maxD
	}
	return depths
}

func maxOf(m map[int32]int) int {
	out := 0
	for _, v := range m {
		if v > out {
			out = v
		}
	}
	return out
}

// GHS runs flood-based synchronous Borůvka and returns the MST with the
// measured round count.
func GHS(g *graph.Graph) (*Result, error) {
	if !g.IsConnected() {
		return nil, fmt.Errorf("mstbase: %w", graph.ErrDisconnected)
	}
	s := newState(g)
	res := &Result{}
	for s.fragments() > 1 {
		res.Iterations++
		if res.Iterations > g.N() {
			return nil, fmt.Errorf("mstbase: GHS did not converge")
		}
		depth := maxOf(s.treeDepths())
		selected := s.mwoe(nil)
		s.merge(selected)
		// 1 round of fragment-ID exchange, then convergecast up and
		// flood down the fragment tree (depth rounds each, twice: once
		// to agree on the MWOE, once to announce the merge).
		res.Rounds += 1 + 4*depth + 2
	}
	res.Edges = s.chosen
	res.Weight = g.TotalWeight(s.chosen)
	return res, nil
}

// KP runs the two-phase Õ(D+√n) algorithm and returns the MST with the
// measured round count.
func KP(g *graph.Graph) (*Result, error) {
	if !g.IsConnected() {
		return nil, fmt.Errorf("mstbase: %w", graph.ErrDisconnected)
	}
	s := newState(g)
	res := &Result{}
	sqrtN := int(math.Ceil(math.Sqrt(float64(g.N()))))

	// Phase 1: controlled Borůvka — only fragments below √n nodes select.
	for {
		sizes := s.sizes()
		active := make(map[int32]bool)
		for f, size := range sizes {
			if size < sqrtN {
				active[f] = true
			}
		}
		if len(active) == 0 || len(sizes) == 1 {
			break
		}
		res.Iterations++
		if res.Iterations > g.N() {
			return nil, fmt.Errorf("mstbase: KP phase 1 did not converge")
		}
		depth := maxOf(s.treeDepths())
		selected := s.mwoe(active)
		if s.merge(selected) == 0 {
			break // all small fragments already attached to large ones
		}
		res.Phase1Rounds += 1 + 4*depth + 2
	}

	// Phase 2: finish over a global BFS tree with pipelined upcasts.
	bfsDepth := 0
	for _, d := range g.BFSDist(0) {
		if d > bfsDepth {
			bfsDepth = d
		}
	}
	res.Phase2Rounds += bfsDepth // building the BFS tree
	for s.fragments() > 1 {
		res.Iterations++
		if res.Iterations > 2*g.N() {
			return nil, fmt.Errorf("mstbase: KP phase 2 did not converge")
		}
		frags := s.fragments()
		selected := s.mwoe(nil)
		s.merge(selected)
		// One round of fragment-ID exchange, then the ≤ frags fragment
		// minima pipeline up the BFS tree and decisions flood back.
		res.Phase2Rounds += 1 + 2*(bfsDepth+frags)
	}
	res.Rounds = res.Phase1Rounds + res.Phase2Rounds
	res.Edges = s.chosen
	res.Weight = g.TotalWeight(s.chosen)
	return res, nil
}

// Kruskal computes the MST centrally (sorting by weight with edge-ID tie
// break, union-find) and returns the chosen edge IDs and total weight. It
// is the ground truth the distributed algorithms are verified against.
func Kruskal(g *graph.Graph) ([]int, float64) {
	ids := make([]int, g.M())
	for i := range ids {
		ids[i] = i
	}
	edges := g.Edges()
	sort.Slice(ids, func(a, b int) bool {
		ea, eb := edges[ids[a]], edges[ids[b]]
		if ea.W != eb.W {
			return ea.W < eb.W
		}
		return ids[a] < ids[b]
	})
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	chosen := make([]int, 0, g.N()-1)
	total := 0.0
	for _, id := range ids {
		e := edges[id]
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			continue
		}
		parent[ru] = rv
		chosen = append(chosen, id)
		total += e.W
	}
	return chosen, total
}
