package mstbase

import (
	"sort"
	"testing"
	"testing/quick"

	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

func sortedCopy(xs []int) []int {
	out := make([]int, len(xs))
	copy(out, xs)
	sort.Ints(out)
	return out
}

func assertMatchesKruskal(t *testing.T, g *graph.Graph, got *Result) {
	t.Helper()
	wantEdges, wantW := Kruskal(g)
	if got.Weight != wantW {
		t.Fatalf("weight %v, want %v", got.Weight, wantW)
	}
	a, b := sortedCopy(got.Edges), sortedCopy(wantEdges)
	if len(a) != len(b) {
		t.Fatalf("edge count %d, want %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edges differ at %d", i)
		}
	}
}

func TestGHSMatchesKruskal(t *testing.T) {
	r := rngutil.NewRand(1)
	for _, g := range []*graph.Graph{
		graph.Ring(20),
		graph.Grid(5, 6),
		graph.RandomRegular(40, 4, r),
		graph.Lollipop(10, 10),
	} {
		g.AssignDistinctRandomWeights(r)
		res, err := GHS(g)
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesKruskal(t, g, res)
		if res.Rounds <= 0 || res.Iterations <= 0 {
			t.Fatalf("bad accounting: %+v", res)
		}
	}
}

func TestKPMatchesKruskal(t *testing.T) {
	r := rngutil.NewRand(2)
	for _, g := range []*graph.Graph{
		graph.Ring(20),
		graph.Grid(5, 6),
		graph.RandomRegular(40, 4, r),
		graph.Lollipop(10, 10),
		graph.Star(15),
	} {
		g.AssignDistinctRandomWeights(r)
		res, err := KP(g)
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesKruskal(t, g, res)
		if res.Rounds != res.Phase1Rounds+res.Phase2Rounds {
			t.Fatalf("phase decomposition broken: %+v", res)
		}
	}
}

func TestBaselinesRejectDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	if _, err := GHS(g); err == nil {
		t.Fatal("GHS accepted disconnected graph")
	}
	if _, err := KP(g); err == nil {
		t.Fatal("KP accepted disconnected graph")
	}
}

func TestGHSRoundsGrowOnRings(t *testing.T) {
	// Ring fragments have diameter Θ(fragment size): GHS cost is ~linear.
	r := rngutil.NewRand(3)
	g32 := graph.Ring(32)
	g32.AssignDistinctRandomWeights(r)
	g128 := graph.Ring(128)
	g128.AssignDistinctRandomWeights(r)
	a, err := GHS(g32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GHS(g128)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rounds < 2*a.Rounds {
		t.Fatalf("GHS rounds %d (n=32) vs %d (n=128): expected ~linear growth", a.Rounds, b.Rounds)
	}
}

func TestKPBeatsGHSOnLowDiameterDenseGraphs(t *testing.T) {
	// On a low-diameter expander with long fragment chains avoided,
	// KP's pipelined phase 2 should not be slower than GHS by much; the
	// crossover experiment (E1) quantifies this. Here: sanity that KP
	// terminates with Õ(D+√n)-flavored costs, i.e., far below n on a
	// large expander.
	r := rngutil.NewRand(4)
	g := graph.RandomRegular(256, 8, r)
	g.AssignDistinctRandomWeights(r)
	res, err := KP(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 20*256 {
		t.Fatalf("KP rounds %d look superlinear", res.Rounds)
	}
}

func TestPropertyBothBaselinesAgree(t *testing.T) {
	f := func(seed uint64) bool {
		r := rngutil.NewRand(seed)
		g, err := graph.ConnectedGnp(24, 0.25, r)
		if err != nil {
			return true
		}
		g.AssignDistinctRandomWeights(r)
		a, err := GHS(g)
		if err != nil {
			return false
		}
		b, err := KP(g)
		if err != nil {
			return false
		}
		return a.Weight == b.Weight && len(a.Edges) == len(b.Edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStateHelpers(t *testing.T) {
	g := graph.Path(4)
	g.AssignDistinctRandomWeights(rngutil.NewRand(5))
	s := newState(g)
	if s.fragments() != 4 {
		t.Fatalf("fresh state has %d fragments", s.fragments())
	}
	sel := s.mwoe(nil)
	if len(sel) != 4 {
		t.Fatalf("mwoe map size %d", len(sel))
	}
	s.merge(sel)
	if s.fragments() != 1 {
		// A path's Borůvka may need two iterations depending on weights.
		s.merge(s.mwoe(nil))
		if s.fragments() != 1 {
			t.Fatal("path did not merge")
		}
	}
	depths := s.treeDepths()
	if len(depths) != 1 {
		t.Fatalf("depths for %d fragments", len(depths))
	}
}

func TestGHSNetworkMatchesKruskal(t *testing.T) {
	r := rngutil.NewRand(11)
	for _, g := range []*graph.Graph{
		graph.Ring(16),
		graph.Grid(4, 5),
		graph.RandomRegular(24, 4, r),
		graph.Star(12),
		graph.Lollipop(8, 6),
		graph.BinaryTree(15),
	} {
		g.AssignDistinctRandomWeights(r)
		res, err := GHSNetwork(g, rngutil.NewSource(12))
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesKruskal(t, g, res)
		if res.Rounds <= 0 {
			t.Fatal("no rounds measured")
		}
	}
}

func TestGHSNetworkWindowAccounting(t *testing.T) {
	r := rngutil.NewRand(13)
	g := graph.RandomRegular(32, 4, r)
	g.AssignDistinctRandomWeights(r)
	res, err := GHSNetwork(g, rngutil.NewSource(14))
	if err != nil {
		t.Fatal(err)
	}
	// Textbook synchronous Borůvka: ≤ log₂n+1 windows of 3n+6 rounds.
	window := 3*g.N() + 6
	if res.Iterations > log2int(g.N())+2 {
		t.Fatalf("%d iterations exceed log n budget", res.Iterations)
	}
	if res.Rounds > (log2int(g.N())+2)*window {
		t.Fatalf("rounds %d exceed textbook budget", res.Rounds)
	}
}

func TestGHSNetworkAgreesWithChargedModel(t *testing.T) {
	// The node-program execution and the charged-cost model must choose
	// the same spanning tree (identical weight and edge set).
	f := func(seed uint64) bool {
		r := rngutil.NewRand(seed)
		g, err := graph.ConnectedGnp(20, 0.3, r)
		if err != nil {
			return true
		}
		g.AssignDistinctRandomWeights(r)
		a, err := GHSNetwork(g, rngutil.NewSource(seed))
		if err != nil {
			return false
		}
		b, err := GHS(g)
		if err != nil {
			return false
		}
		return a.Weight == b.Weight && len(a.Edges) == len(b.Edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestGHSNetworkRejectsDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	if _, err := GHSNetwork(g, rngutil.NewSource(15)); err == nil {
		t.Fatal("disconnected accepted")
	}
}
