package mstbase

// GHS execution under injected faults. The node program's defensive
// machinery (window stamping, per-port dedup, poisoning, label repair —
// see ghsnet.go) makes a faulted window stall and retry rather than
// commit a corrupt choice, so most fault patterns heal in-run: a window
// wrecked by drops or a crashed fragment coordinator simply reruns the
// MWOE discovery at the next boundary with the same committed fragments.
// The driver adds the outer retry story: each attempt's chosen edges are
// validated against the centralized GHS oracle (weights are distinct, so
// the MST is unique), and an attempt that stalled past its round budget
// or — in rare multi-fault corners the in-protocol repair cannot untangle,
// e.g. label splits straddling an uncommitted core edge — produced a
// non-MST edge set is restarted from scratch with a derived RNG stream.
// The whole faulty execution is a pure function of (src seed, fault spec,
// fault seed) and bit-identical across engines and worker counts.

import (
	"errors"
	"fmt"
	"sort"

	"almostmix/internal/congest"
	"almostmix/internal/faults"
	"almostmix/internal/graph"
	"almostmix/internal/metrics"
	"almostmix/internal/rngutil"
)

// FaultyMSTResult extends Result with the retry accounting of a faulty
// run. Rounds and Iterations accumulate over all attempts.
type FaultyMSTResult struct {
	Result
	// Attempts is the number of network runs executed (1 = the first
	// attempt already produced the MST).
	Attempts int
	// Recovered reports whether the final attempt's edge set is exactly
	// the MST. When false, Edges and Weight are zero — the attempt budget
	// ran out before the algorithm converged.
	Recovered bool
	// Faults aggregates the injected fault events over all attempts.
	Faults faults.Counts
}

// GHSNetworkFaults runs the node-program synchronous Borůvka under the
// fault plan built from (spec, faultSeed), restarting the computation for
// up to maxAttempts network runs (maxAttempts < 1 means 1). An empty spec
// reduces to a plain fault-free run with retry accounting around it.
// Weights should be distinct.
func GHSNetworkFaults(g *graph.Graph, src *rngutil.Source, workers int,
	spec string, faultSeed uint64, maxAttempts int, probe congest.Probe, reg *metrics.Registry) (*FaultyMSTResult, error) {
	if !g.IsConnected() {
		return nil, fmt.Errorf("mstbase: %w", graph.ErrDisconnected)
	}
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	ref, err := GHS(g)
	if err != nil {
		return nil, err
	}
	want := append([]int(nil), ref.Edges...)
	sort.Ints(want)

	faultSrc := rngutil.NewSource(faultSeed)
	res := &FaultyMSTResult{}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		plan, err := faults.Parse(spec, faultSrc.Derive("attempt", uint64(attempt)))
		if err != nil {
			return nil, fmt.Errorf("mstbase: faults: %w", err)
		}
		ghsSrc := src
		if attempt > 0 {
			ghsSrc = src.Child("ghs-retry", uint64(attempt))
		}
		run := &ghsRun{window: 3*g.N() + 6, faulty: !plan.Empty()}
		nodes := make([]*ghsNode, g.N())
		net := congest.NewUniformNetwork(g, func(v int) congest.Program {
			nodes[v] = &ghsNode{run: run}
			return nodes[v]
		}, ghsSrc).SetWorkers(workers).SetProbe(probe).SetMetrics(reg).SetFaults(plan)
		iterBudget := 2*log2int(g.N()) + 4
		budget := run.window*iterBudget + 2
		if run.faulty {
			// Faulted windows stall and retry, delays stretch phases, and
			// crashed nodes sit out until recovery: give headroom.
			budget = run.window*(iterBudget+6) + plan.MaxDelay() + plan.RecoverySlack()
		}
		rounds, err := net.Run(budget)
		if err != nil && !errors.Is(err, congest.ErrRoundLimit) {
			return nil, fmt.Errorf("mstbase: GHSNetworkFaults: %w", err)
		}
		res.Rounds += rounds
		res.Iterations += (rounds + run.window - 1) / run.window
		res.Faults.Add(plan.Totals())
		res.Attempts++

		// A round-limited attempt is not necessarily a failure: when the
		// "none" decision is partially dropped, some nodes halt while the
		// rest stall against their silence — with the MST already chosen.
		// The oracle check, not the error, decides.
		got := chosenEdges(nodes)
		if intsEqual(got, want) {
			res.Recovered = true
			res.Edges = got
			res.Weight = g.TotalWeight(got)
			return res, nil
		}
	}
	return res, nil
}

// chosenEdges collects the deduplicated, sorted union of the MST edges
// the nodes selected as owning endpoints.
func chosenEdges(nodes []*ghsNode) []int {
	seen := make(map[int]struct{})
	var out []int
	for _, node := range nodes {
		for _, id := range node.chosen {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
	}
	sort.Ints(out)
	return out
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
