package mstbase

// Wire adapters for the transport layer (internal/transport): an
// exported builder for the node-program GHS plus the byte codec for its
// (unexported) message payloads, so shard processes can exchange them
// over TCP. See internal/congest/wire.go for the codec contract: Encode
// appends a canonical byte form, Decode parses exactly those bytes, and
// both are pure so every process agrees on every payload value.

import (
	"encoding/binary"
	"fmt"
	"math"

	"almostmix/internal/congest"
	"almostmix/internal/graph"
)

// GHSPrograms returns the per-node synchronous Borůvka/GHS programs for
// g (fault-free variant) and the round budget GHSNetworkObserved would
// use. Run to completion with Run (not RunUntilQuiet); collect each
// node's chosen MST edges afterwards with GHSChosenEdges.
func GHSPrograms(g *graph.Graph) (programs []congest.Program, maxRounds int) {
	run := &ghsRun{window: 3*g.N() + 6}
	programs = make([]congest.Program, g.N())
	for v := range programs {
		programs[v] = &ghsNode{run: run}
	}
	return programs, run.window*(2*log2int(g.N())+4) + 2
}

// GHSFaultPrograms returns the per-node GHS programs of one faulty-run
// attempt, exactly as GHSNetworkFaults builds them: faulty enables the
// defensive machinery (window stamping, per-port dedup, poisoning, label
// repair) and should mirror !plan.Empty(). The returned budget is the
// attempt's base round budget — on faulty runs callers add the plan's
// MaxDelay and RecoverySlack, exactly like GHSNetworkFaults. Collect
// chosen edges afterwards with GHSChosenEdges.
func GHSFaultPrograms(g *graph.Graph, faulty bool) (programs []congest.Program, baseBudget int) {
	run := &ghsRun{window: 3*g.N() + 6, faulty: faulty}
	programs = make([]congest.Program, g.N())
	for v := range programs {
		programs[v] = &ghsNode{run: run}
	}
	iterBudget := 2*log2int(g.N()) + 4
	if faulty {
		return programs, run.window * (iterBudget + 6)
	}
	return programs, run.window*iterBudget + 2
}

// GHSChosenEdges returns the MST edge IDs chosen by nodes [lo, hi) of a
// GHSPrograms run, in node order with per-node emission order kept and
// no cross-node dedup — the same raw stream GHSNetworkObserved
// aggregates, so a coordinator concatenating per-shard streams in shard
// order and deduplicating first-seen reproduces its Edges exactly.
func GHSChosenEdges(programs []congest.Program, lo, hi int) []int {
	var edges []int
	for v := lo; v < hi; v++ {
		edges = append(edges, programs[v].(*ghsNode).chosen...)
	}
	return edges
}

// Payload type tags for the GHS wire codec.
const (
	ghsWireFragID byte = 1 + iota
	ghsWireReport
	ghsWireDecision
	ghsWireMergeReq
	ghsWireAdopt
	ghsWireWin // window-stamped wrapper, faulty runs only: varint window + recursive body
)

func appendGHSCandidate(buf []byte, c ghsCandidate) []byte {
	// W may be +Inf ("no outgoing edge"), so ship the raw IEEE bits; X
	// and Y may be -1, so they go as signed varints.
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c.W))
	buf = binary.AppendVarint(buf, int64(c.X))
	return binary.AppendVarint(buf, int64(c.Y))
}

func parseGHSCandidate(b []byte) (ghsCandidate, []byte, error) {
	if len(b) < 8 {
		return ghsCandidate{}, nil, fmt.Errorf("mstbase: truncated GHS candidate")
	}
	w := math.Float64frombits(binary.BigEndian.Uint64(b))
	b = b[8:]
	x, n := binary.Varint(b)
	if n <= 0 {
		return ghsCandidate{}, nil, fmt.Errorf("mstbase: malformed GHS candidate X")
	}
	b = b[n:]
	y, n := binary.Varint(b)
	if n <= 0 {
		return ghsCandidate{}, nil, fmt.Errorf("mstbase: malformed GHS candidate Y")
	}
	return ghsCandidate{W: w, X: int32(x), Y: int32(y)}, b[n:], nil
}

// EncodeGHSPayload appends the canonical encoding of a GHS message
// payload. Faulty runs wrap every payload in ghsWin; the wrapper ships
// as its own tag with the body encoded recursively, so one codec covers
// both variants.
func EncodeGHSPayload(buf []byte, m congest.Message) ([]byte, error) {
	switch msg := m.(type) {
	case ghsWin:
		buf = binary.AppendVarint(append(buf, ghsWireWin), int64(msg.Win))
		inner, err := EncodeGHSPayload(buf, msg.Body)
		if err != nil {
			return nil, fmt.Errorf("mstbase: window-stamped body: %w", err)
		}
		return inner, nil
	case ghsFragID:
		return binary.AppendVarint(append(buf, ghsWireFragID), int64(msg.Frag)), nil
	case ghsReport:
		return appendGHSCandidate(append(buf, ghsWireReport), msg.Cand), nil
	case ghsDecision:
		return appendGHSCandidate(append(buf, ghsWireDecision), msg.Cand), nil
	case ghsMergeReq:
		return append(buf, ghsWireMergeReq), nil
	case ghsAdopt:
		return binary.AppendVarint(append(buf, ghsWireAdopt), int64(msg.Frag)), nil
	default:
		return nil, fmt.Errorf("mstbase: GHS payload codec got %T", m)
	}
}

// DecodeGHSPayload parses the bytes EncodeGHSPayload produced.
func DecodeGHSPayload(b []byte) (congest.Message, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("mstbase: empty GHS payload")
	}
	tag, body := b[0], b[1:]
	switch tag {
	case ghsWireWin:
		win, n := binary.Varint(body)
		if n <= 0 {
			return nil, fmt.Errorf("mstbase: malformed GHS window stamp")
		}
		inner, err := DecodeGHSPayload(body[n:])
		if err != nil {
			return nil, err
		}
		if _, nested := inner.(ghsWin); nested {
			return nil, fmt.Errorf("mstbase: nested GHS window stamp")
		}
		return ghsWin{Win: int32(win), Body: inner}, nil
	case ghsWireFragID, ghsWireAdopt:
		frag, n := binary.Varint(body)
		if n <= 0 || n != len(body) {
			return nil, fmt.Errorf("mstbase: malformed GHS frag payload (%d bytes)", len(b))
		}
		if tag == ghsWireFragID {
			return ghsFragID{Frag: int32(frag)}, nil
		}
		return ghsAdopt{Frag: int32(frag)}, nil
	case ghsWireReport, ghsWireDecision:
		cand, rest, err := parseGHSCandidate(body)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("mstbase: %d trailing bytes after GHS candidate", len(rest))
		}
		if tag == ghsWireReport {
			return ghsReport{Cand: cand}, nil
		}
		return ghsDecision{Cand: cand}, nil
	case ghsWireMergeReq:
		if len(body) != 0 {
			return nil, fmt.Errorf("mstbase: %d trailing bytes after GHS merge request", len(body))
		}
		return ghsMergeReq{}, nil
	default:
		return nil, fmt.Errorf("mstbase: unknown GHS payload tag %d", tag)
	}
}
