package mstbase

// Tests of GHS under injected faults: the empty spec must reduce to the
// plain fault-free run, faulty executions must converge to the exact MST
// (validated against Kruskal) bit-identically across engines and worker
// counts, and a crashed fragment coordinator must be survivable via the
// window-retry / restart machinery.

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"almostmix/internal/faults"
	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

func ghsFaultGraph(seed uint64) *graph.Graph {
	r := rngutil.NewRand(seed)
	g := graph.RandomRegular(24, 4, r)
	g.AssignDistinctRandomWeights(r)
	return g
}

// TestGHSFaultsEmptySpec: with no fault spec, GHSNetworkFaults is
// GHSNetwork plus inert accounting — same tree, rounds, one attempt.
func TestGHSFaultsEmptySpec(t *testing.T) {
	g := ghsFaultGraph(3)
	plain, err := GHSNetwork(g, rngutil.NewSource(3))
	if err != nil {
		t.Fatal(err)
	}
	plainEdges := append([]int(nil), plain.Edges...)
	sort.Ints(plainEdges)

	for _, workers := range []int{1, 2, 8} {
		res, err := GHSNetworkFaults(g, rngutil.NewSource(3), workers, "", 7, 3, nil, nil)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if !res.Recovered || res.Attempts != 1 {
			t.Fatalf("workers %d: recovered=%v attempts=%d, want true/1", workers, res.Recovered, res.Attempts)
		}
		if res.Rounds != plain.Rounds || res.Weight != plain.Weight ||
			!reflect.DeepEqual(res.Edges, plainEdges) {
			t.Errorf("workers %d: (rounds=%d weight=%v) differs from fault-free (rounds=%d weight=%v)",
				workers, res.Rounds, res.Weight, plain.Rounds, plain.Weight)
		}
	}
}

// TestGHSFaultsConvergesToMST: under drops, duplication and delays the
// faulty execution must still land the exact MST, and the whole result —
// rounds, attempts, fault totals, tree — must be bit-identical across
// worker counts.
func TestGHSFaultsConvergesToMST(t *testing.T) {
	specs := []string{
		"drop=0.02",
		"drop=0.03,dup=0.03,delay=0.03:2",
	}
	for _, spec := range specs {
		g := ghsFaultGraph(11)
		_, wantWeight := Kruskal(g)

		run := func(workers int) *FaultyMSTResult {
			res, err := GHSNetworkFaults(g, rngutil.NewSource(11), workers, spec, 5, 8, nil, nil)
			if err != nil {
				t.Fatalf("%s workers %d: %v", spec, workers, err)
			}
			return res
		}
		want := run(1)
		if !want.Recovered {
			t.Fatalf("%s: did not recover the MST in %d attempts (faults %+v)",
				spec, want.Attempts, want.Faults)
		}
		if want.Weight != wantWeight {
			t.Fatalf("%s: recovered weight %v, Kruskal %v", spec, want.Weight, wantWeight)
		}
		if want.Faults == (faults.Counts{}) {
			t.Fatalf("%s: no faults injected; test exercises nothing", spec)
		}
		for _, workers := range []int{2, 8} {
			if got := run(workers); !reflect.DeepEqual(got, want) {
				t.Errorf("%s workers %d: result diverges from sequential\n got %+v\nwant %+v",
					spec, workers, got, want)
			}
		}
	}
}

// TestGHSFaultsCoordinatorCrash: crashing nodes mid-run — including
// stretches long enough to take out a fragment coordinator across a
// window boundary — must be survivable: the affected windows stall and
// retry after recovery, and the run still produces the exact MST.
func TestGHSFaultsCoordinatorCrash(t *testing.T) {
	g := ghsFaultGraph(29)
	_, wantWeight := Kruskal(g)
	// Node 23 is the largest ID, hence the root of whatever fragment it
	// merges into; knock it out across two window boundaries.
	w := 3*g.N() + 6
	spec := fmt.Sprintf("crash=23@2+%d,crash=5@%d+%d", 2*w, w+3, w)

	run := func(workers int) *FaultyMSTResult {
		res, err := GHSNetworkFaults(g, rngutil.NewSource(29), workers, spec, 13, 8, nil, nil)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		return res
	}
	want := run(1)
	if !want.Recovered || want.Weight != wantWeight {
		t.Fatalf("crash run: recovered=%v weight=%v (want %v) after %d attempts, faults %+v",
			want.Recovered, want.Weight, wantWeight, want.Attempts, want.Faults)
	}
	if want.Faults.Crashed == 0 {
		t.Fatal("no crash rounds recorded; spec exercised nothing")
	}
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Errorf("workers %d: result diverges from sequential", workers)
		}
	}
}

// TestGHSFaultsUnrecoverable: a permanently severed link starves the
// fragment-ID exchange forever; every attempt must burn its budget and
// the driver must report the failure honestly instead of fabricating a
// tree.
func TestGHSFaultsUnrecoverable(t *testing.T) {
	g := ghsFaultGraph(7)
	res, err := GHSNetworkFaults(g, rngutil.NewSource(7), 1, "sever=0@1", 3, 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered {
		t.Fatal("recovered an MST with a permanently severed edge starving the exchange")
	}
	if res.Attempts != 2 {
		t.Errorf("attempts %d, want the full budget 2", res.Attempts)
	}
	if len(res.Edges) != 0 || res.Weight != 0 {
		t.Errorf("unrecovered result carries edges/weight: %v/%v", res.Edges, res.Weight)
	}
}
