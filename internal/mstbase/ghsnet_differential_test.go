package mstbase

// Differential equivalence of the full-fidelity GHS node program across
// simulator engines: the tree, the measured rounds and the message total
// must be bit-identical between the sequential reference engine and the
// sharded parallel engine for every worker count. GHS is the most
// state-heavy program in the repo (five message types, event-driven
// phases, adoption waves), so it is the strongest single witness that the
// parallel engine preserves program semantics.

import (
	"reflect"
	"sort"
	"testing"

	"almostmix/internal/graph"
	"almostmix/internal/mst"
	"almostmix/internal/rngutil"
)

func TestGHSNetworkDifferential(t *testing.T) {
	seeds := []uint64{3, 11, 29}
	if testing.Short() {
		seeds = seeds[:1] // keep the race-instrumented CI run fast
	}
	for _, seed := range seeds {
		r := rngutil.NewRand(seed)
		var g *graph.Graph
		switch seed % 3 {
		case 0:
			g = graph.RandomRegular(32, 4, r)
		case 1:
			g = graph.Grid(6, 5)
		default:
			g = graph.Lollipop(12, 8)
		}
		g.AssignDistinctRandomWeights(r)

		ref, err := GHSNetwork(g, rngutil.NewSource(seed))
		if err != nil {
			t.Fatalf("seed %d: sequential: %v", seed, err)
		}
		_, wantWeight := mst.Kruskal(g)
		if ref.Weight != wantWeight {
			t.Fatalf("seed %d: sequential GHS weight %v, Kruskal %v", seed, ref.Weight, wantWeight)
		}
		refEdges := append([]int(nil), ref.Edges...)
		sort.Ints(refEdges)

		for _, workers := range []int{1, 2, 8} {
			got, err := GHSNetworkParallel(g, rngutil.NewSource(seed), workers)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			gotEdges := append([]int(nil), got.Edges...)
			sort.Ints(gotEdges)
			if got.Rounds != ref.Rounds || got.Weight != ref.Weight ||
				!reflect.DeepEqual(gotEdges, refEdges) {
				t.Errorf("seed %d workers %d: (rounds=%d weight=%v) diverges from sequential (rounds=%d weight=%v)",
					seed, workers, got.Rounds, got.Weight, ref.Rounds, ref.Weight)
			}
		}
	}
}
