package mstbase

// Differential equivalence of the full-fidelity GHS node program across
// simulator engines: the tree, the measured rounds and the message total
// must be bit-identical between the sequential reference engine and the
// sharded parallel engine for every worker count. GHS is the most
// state-heavy program in the repo (five message types, event-driven
// phases, adoption waves), so it is the strongest single witness that the
// parallel engine preserves program semantics.

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"almostmix/internal/congest"
	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

// ghsTrace runs the GHS node program with the bundled trace sink attached
// and returns the exported JSON bytes.
func ghsTrace(t *testing.T, g *graph.Graph, seed uint64, workers int) ([]byte, *Result) {
	t.Helper()
	sink := congest.NewTraceSink().Label("ghs")
	res, err := GHSNetworkProbe(g, rngutil.NewSource(seed), workers, sink)
	if err != nil {
		t.Fatalf("seed %d workers %d: %v", seed, workers, err)
	}
	var buf bytes.Buffer
	if err := sink.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

func TestGHSNetworkDifferential(t *testing.T) {
	seeds := []uint64{3, 11, 29}
	if testing.Short() {
		seeds = seeds[:1] // keep the race-instrumented CI run fast
	}
	for _, seed := range seeds {
		r := rngutil.NewRand(seed)
		var g *graph.Graph
		switch seed % 3 {
		case 0:
			g = graph.RandomRegular(32, 4, r)
		case 1:
			g = graph.Grid(6, 5)
		default:
			g = graph.Lollipop(12, 8)
		}
		g.AssignDistinctRandomWeights(r)

		refTrace, ref := ghsTrace(t, g, seed, 1)
		_, wantWeight := Kruskal(g)
		if ref.Weight != wantWeight {
			t.Fatalf("seed %d: sequential GHS weight %v, Kruskal %v", seed, ref.Weight, wantWeight)
		}
		refEdges := append([]int(nil), ref.Edges...)
		sort.Ints(refEdges)

		for _, workers := range []int{1, 2, 8} {
			gotTrace, got := ghsTrace(t, g, seed, workers)
			gotEdges := append([]int(nil), got.Edges...)
			sort.Ints(gotEdges)
			if got.Rounds != ref.Rounds || got.Weight != ref.Weight ||
				!reflect.DeepEqual(gotEdges, refEdges) {
				t.Errorf("seed %d workers %d: (rounds=%d weight=%v) diverges from sequential (rounds=%d weight=%v)",
					seed, workers, got.Rounds, got.Weight, ref.Rounds, ref.Weight)
			}
			// The exported trace is part of the measured results, so it
			// must be byte-identical across engines and worker counts.
			if !bytes.Equal(gotTrace, refTrace) {
				t.Errorf("seed %d workers %d: exported trace diverges from sequential (%d vs %d bytes)",
					seed, workers, len(gotTrace), len(refTrace))
			}
		}
	}
}
