package mincut

import (
	"testing"
	"testing/quick"

	"almostmix/internal/cost"
	"almostmix/internal/graph"
	"almostmix/internal/mst"
	"almostmix/internal/rngutil"
)

func TestStoerWagnerKnownCuts(t *testing.T) {
	r := rngutil.NewRand(1)
	cases := []struct {
		name string
		g    *graph.Graph
		want float64
	}{
		{"barbell", graph.Barbell(5, 0), 1},
		{"barbell-bridge", graph.Barbell(4, 3), 1},
		{"ring", graph.Ring(12), 2},
		{"complete", graph.Complete(7), 6},
		{"dumbbell3", graph.Dumbbell(12, 4, 3, r), 3},
		{"path", graph.Path(6), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			val, side, err := StoerWagner(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if val != tc.want {
				t.Fatalf("min cut %v, want %v", val, tc.want)
			}
			// The side must be a proper nontrivial cut of that value.
			cnt := 0
			for _, in := range side {
				if in {
					cnt++
				}
			}
			if cnt == 0 || cnt == tc.g.N() {
				t.Fatal("degenerate cut side")
			}
			if got := tc.g.CutSize(side); float64(got) != tc.want {
				t.Fatalf("side cut size %d, want %v", got, tc.want)
			}
		})
	}
}

func TestStoerWagnerErrors(t *testing.T) {
	if _, _, err := StoerWagner(graph.New(1)); err == nil {
		t.Fatal("single node accepted")
	}
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	if _, _, err := StoerWagner(g); err == nil {
		t.Fatal("disconnected accepted")
	}
}

func TestApproxFindsBridges(t *testing.T) {
	r := rngutil.NewRand(2)
	for _, g := range []*graph.Graph{
		graph.Barbell(6, 0),
		graph.Barbell(5, 4),
		graph.Lollipop(8, 5),
	} {
		res, err := Approx(g, 4, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.CutSize != 1 {
			t.Fatalf("bridge cut found as %d, want 1", res.CutSize)
		}
		if got := g.CutSize(res.Side); got != 1 {
			t.Fatalf("reported side has cut %d", got)
		}
	}
}

func TestApproxOnPlantedCut(t *testing.T) {
	r := rngutil.NewRand(3)
	g := graph.Dumbbell(16, 4, 2, r)
	exact, _, err := StoerWagner(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Approx(g, 0, r) // default tree count
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.CutSize) < exact {
		t.Fatalf("approx %d below exact %v — impossible", res.CutSize, exact)
	}
	if float64(res.CutSize) > 2*exact {
		t.Fatalf("approx %d more than 2x exact %v", res.CutSize, exact)
	}
	if res.TreesUsed <= 0 {
		t.Fatal("TreesUsed not recorded")
	}
}

func TestApproxNeverBelowExact(t *testing.T) {
	f := func(seed uint64) bool {
		r := rngutil.NewRand(seed)
		g, err := graph.ConnectedGnp(20, 0.3, r)
		if err != nil {
			return true
		}
		exact, _, err := StoerWagner(g)
		if err != nil {
			return false
		}
		res, err := Approx(g, 6, r)
		if err != nil {
			return false
		}
		// A reported cut is an actual cut, so it cannot be lighter than
		// the true minimum, and the side must certify the value.
		return float64(res.CutSize) >= exact && g.CutSize(res.Side) == res.CutSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestApproxRejectsDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	if _, err := Approx(g, 2, rngutil.NewRand(4)); err == nil {
		t.Fatal("disconnected accepted")
	}
}

func TestBest1RespectingOnPath(t *testing.T) {
	// On a path, every tree edge removal is a cut of size 1.
	g := graph.Path(5)
	tree := []int{0, 1, 2, 3}
	cut, side := best1Respecting(g, tree)
	if cut != 1 {
		t.Fatalf("path 1-respecting cut %d, want 1", cut)
	}
	if g.CutSize(side) != 1 {
		t.Fatal("side does not certify the cut")
	}
}

func TestPackingCharge(t *testing.T) {
	// Fabricate an MST result whose ledger carries a 37-round algorithm span.
	led := cost.New("mst", "base rounds")
	led.Open("algorithm", "base rounds", 1)
	led.Charge(37)
	led.Close()
	led.Close()
	if err := led.Err(); err != nil {
		t.Fatal(err)
	}
	per := &mst.Result{AlgorithmRounds: 37, Costs: led}
	res := &ApproxResult{TreesUsed: 5}

	pl, total := PackingCharge(res, per)
	if err := pl.Err(); err != nil {
		t.Fatal(err)
	}
	if total != 5*37 {
		t.Fatalf("charged %d, want %d", total, 5*37)
	}
	if pl.Root.Total() != total {
		t.Fatalf("ledger root %d != returned total %d", pl.Root.Total(), total)
	}
	sp := pl.Root.Child("tree-packing")
	if sp == nil {
		t.Fatal("no tree-packing span")
	}
	if sp.Mul != 5 || sp.Total() != 37 {
		t.Fatalf("tree-packing span mul=%d total=%d, want 5 and 37", sp.Mul, sp.Total())
	}
	// The grafted subtree is the MST ledger's algorithm span.
	if len(sp.Children) != 1 || sp.Children[0] != led.Root.Child("algorithm") {
		t.Fatal("tree-packing span does not graft the MST algorithm span")
	}

	// Fallback: no ledger on the MST result still charges correctly.
	pl2, total2 := PackingCharge(&ApproxResult{TreesUsed: 3}, &mst.Result{AlgorithmRounds: 11})
	if err := pl2.Err(); err != nil {
		t.Fatal(err)
	}
	if total2 != 33 || pl2.Root.Total() != 33 {
		t.Fatalf("fallback charged %d (root %d), want 33", total2, pl2.Root.Total())
	}
}
