// Package mincut provides the (1+ε)-flavored approximate minimum cut the
// paper obtains from its MST machinery (§4's closing remark), plus an
// exact Stoer–Wagner verifier.
//
// The paper defers the min-cut details to its full version, pointing to
// the tree-packing framework of Ghaffari–Haeupler/Nanongkai–Su. The
// documented substitution implemented here is the classic greedy
// tree-packing approach: pack k = O(log n) spanning trees, each a minimum
// spanning tree under edge weights equal to current packing loads; for
// every packed tree, examine all cuts that 1-respect it (one tree edge
// removed) and return the lightest cut found. Bridges and other small
// cuts are 1-respected by every spanning tree, and sparse planted cuts
// are found with high probability; the experiment (E10) quantifies the
// approximation against Stoer–Wagner.
//
// In the distributed setting each packed tree is one MST computation on
// the hierarchy and the 1-respecting cut values are computed by subtree
// aggregation (two tree-routing sweeps); callers charge rounds
// accordingly via the TreesUsed count.
package mincut

import (
	"fmt"
	"math"
	"math/rand/v2"

	"almostmix/internal/cost"
	"almostmix/internal/graph"
	"almostmix/internal/mst"
)

// ApproxResult is the outcome of the tree-packing approximation.
type ApproxResult struct {
	// CutSize is the best (smallest) cut value found.
	CutSize int
	// Side is one side of that cut (node membership flags).
	Side []bool
	// TreesUsed is the number of packed trees (for round accounting:
	// one hierarchical MST plus two tree sweeps per tree).
	TreesUsed int
}

// Approx packs `trees` spanning trees greedily and returns the best
// 1-respecting cut. If trees <= 0, 2·⌈log₂ n⌉ trees are packed.
func Approx(g *graph.Graph, trees int, rng *rand.Rand) (*ApproxResult, error) {
	if !g.IsConnected() {
		return nil, fmt.Errorf("mincut: %w", graph.ErrDisconnected)
	}
	n := g.N()
	if trees <= 0 {
		trees = 2 * int(math.Ceil(math.Log2(float64(n))))
	}
	load := make([]float64, g.M())
	best := &ApproxResult{CutSize: g.M() + 1, TreesUsed: trees}
	work := g.Clone()
	for t := 0; t < trees; t++ {
		// MST under current loads; small random jitter breaks ties so
		// repeated trees explore different structures.
		for id := range load {
			work.SetWeight(id, load[id]+rng.Float64()*1e-3)
		}
		treeEdges, _ := mst.Kruskal(work)
		for _, id := range treeEdges {
			load[id]++
		}
		cut, side := best1Respecting(g, treeEdges)
		if cut < best.CutSize {
			best.CutSize = cut
			best.Side = side
		}
	}
	return best, nil
}

// PackingCharge builds the distributed round charge of a packing run: each
// of the TreesUsed packed trees costs one hierarchical MST (the
// construction is shared and excluded, as per the package comment on
// subtree aggregation riding the same channel). perTree is a measured MST
// run on the same hierarchy; its algorithm span is grafted under a
// tree-packing span whose multiplier repeats it per tree. Returns the
// ledger and its root total in base rounds.
func PackingCharge(res *ApproxResult, perTree *mst.Result) (*cost.Ledger, int) {
	led := cost.New("mincut-packing", "base rounds")
	led.Open("tree-packing", "base rounds per tree", res.TreesUsed)
	if perTree.Costs != nil {
		if alg := perTree.Costs.Root.Child("algorithm"); alg != nil {
			led.Attach(alg)
		} else {
			led.Charge(perTree.AlgorithmRounds)
		}
	} else {
		led.Charge(perTree.AlgorithmRounds)
	}
	led.CloseExpect(perTree.AlgorithmRounds)
	total := led.CloseExpect(res.TreesUsed * perTree.AlgorithmRounds)
	return led, total
}

// best1Respecting returns the lightest cut obtained by removing a single
// edge of the given spanning tree, together with the smaller side.
func best1Respecting(g *graph.Graph, treeEdges []int) (int, []bool) {
	n := g.N()
	// Build rooted tree structure.
	adj := make([][]int, n) // neighbor via tree edge
	for _, id := range treeEdges {
		e := g.Edge(id)
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	// Euler tour times for subtree membership tests.
	tin := make([]int, n)
	tout := make([]int, n)
	parent := make([]int, n)
	order := make([]int, 0, n)
	for i := range parent {
		parent[i] = -1
		tin[i] = -1
	}
	timer := 0
	stack := []int{0}
	parent[0] = 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		if tin[v] < 0 {
			tin[v] = timer
			timer++
			order = append(order, v)
			for _, u := range adj[v] {
				if parent[u] < 0 {
					parent[u] = v
					stack = append(stack, u)
				}
			}
		} else {
			tout[v] = timer
			timer++
			stack = stack[:len(stack)-1]
		}
	}
	// tout was set when popping; ensure all got both stamps (tree spans).
	inSubtree := func(x, c int) bool { return tin[c] <= tin[x] && tout[x] <= tout[c] }

	bestCut := g.M() + 1
	bestChild := -1
	for _, c := range order {
		if c == 0 {
			continue
		}
		cut := 0
		for _, e := range g.Edges() {
			if inSubtree(e.U, c) != inSubtree(e.V, c) {
				cut++
			}
		}
		if cut < bestCut {
			bestCut = cut
			bestChild = c
		}
	}
	side := make([]bool, n)
	if bestChild >= 0 {
		for v := 0; v < n; v++ {
			side[v] = inSubtree(v, bestChild)
		}
	}
	return bestCut, side
}

// StoerWagner computes the exact global minimum cut of an unweighted (or
// weighted) graph in O(n³) time and returns the cut value and one side.
func StoerWagner(g *graph.Graph) (float64, []bool, error) {
	n := g.N()
	if n < 2 {
		return 0, nil, fmt.Errorf("mincut: need at least 2 nodes")
	}
	if !g.IsConnected() {
		return 0, nil, fmt.Errorf("mincut: %w", graph.ErrDisconnected)
	}
	// Dense weight matrix; parallel edges accumulate.
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for _, e := range g.Edges() {
		w[e.U][e.V] += e.W
		w[e.V][e.U] += e.W
	}
	// members[i] = original nodes merged into supernode i.
	members := make([][]int, n)
	active := make([]bool, n)
	for i := range members {
		members[i] = []int{i}
		active[i] = true
	}
	bestVal := math.Inf(1)
	var bestSide []int

	for phase := n; phase > 1; phase-- {
		// Maximum adjacency ordering.
		weights := make([]float64, n)
		added := make([]bool, n)
		var prev, last int = -1, -1
		for step := 0; step < phase; step++ {
			sel := -1
			for v := 0; v < n; v++ {
				if active[v] && !added[v] && (sel < 0 || weights[v] > weights[sel]) {
					sel = v
				}
			}
			added[sel] = true
			prev, last = last, sel
			for v := 0; v < n; v++ {
				if active[v] && !added[v] {
					weights[v] += w[sel][v]
				}
			}
		}
		// Cut of the phase: last added vs the rest.
		if weights[last] < bestVal {
			bestVal = weights[last]
			bestSide = append([]int(nil), members[last]...)
		}
		// Merge last into prev.
		for v := 0; v < n; v++ {
			if v != prev && v != last && active[v] {
				w[prev][v] += w[last][v]
				w[v][prev] = w[prev][v]
			}
		}
		members[prev] = append(members[prev], members[last]...)
		active[last] = false
	}
	side := make([]bool, n)
	for _, v := range bestSide {
		side[v] = true
	}
	return bestVal, side, nil
}
