package flightrec

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderNoops(t *testing.T) {
	var r *Recorder
	r.Record(KindBarrier, "", 1, 0, 0, "")
	d := r.Dump(ReasonFinish)
	if d.Schema != Schema || d.Role != "none" || len(d.Events) != 0 {
		t.Errorf("nil recorder dump = %+v, want empty schema-stamped dump", d)
	}
	if err := Validate(&d); err != nil {
		t.Errorf("nil recorder dump invalid: %v", err)
	}
}

func TestRingKeepsNewestInOrder(t *testing.T) {
	r := New("coord", -1, 8)
	for i := 0; i < 20; i++ {
		r.Record(KindFrameSent, "STEP", i, i%3, 10, "")
	}
	d := r.Dump(ReasonError)
	if len(d.Events) != 8 {
		t.Fatalf("ring kept %d events, want 8", len(d.Events))
	}
	if d.Dropped != 12 {
		t.Errorf("dropped = %d, want 12", d.Dropped)
	}
	for i, ev := range d.Events {
		if want := uint64(12 + i); ev.Seq != want {
			t.Errorf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
	if d.LastRound != 19 {
		t.Errorf("last round = %d, want 19 (highest surviving round)", d.LastRound)
	}
	if err := Validate(&d); err != nil {
		t.Errorf("wrapped ring dump invalid: %v", err)
	}
}

func TestPartialRingDump(t *testing.T) {
	r := New("shard", 2, 16)
	r.Record(KindFrameRecv, "SPEC", 0, -1, 33, "")
	r.Record(KindBarrier, "", 1, -1, 0, "deliver")
	d := r.Dump(ReasonFinish)
	if len(d.Events) != 2 || d.Dropped != 0 {
		t.Fatalf("dump = %d events / %d dropped, want 2 / 0", len(d.Events), d.Dropped)
	}
	if d.Role != "shard" || d.Shard != 2 {
		t.Errorf("dump role/shard = %s/%d, want shard/2", d.Role, d.Shard)
	}
	if d.GuiltyShard != -1 {
		t.Errorf("default guilty shard = %d, want -1", d.GuiltyShard)
	}
}

func TestAttribute(t *testing.T) {
	d := New("coord", -1, 4).Dump(ReasonBarrierDeadline).
		Attribute(3, 17, "step-wait", "read timeout")
	if d.GuiltyShard != 3 || d.LastRound != 17 || d.Phase != "step-wait" || d.Error != "read timeout" {
		t.Errorf("attributed dump = %+v", d)
	}
	if err := Validate(&d); err != nil {
		t.Errorf("attributed dump invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() Dump { return New("coord", -1, 4).Dump(ReasonFinish) }
	for name, mutate := range map[string]func(*Dump){
		"bad schema":     func(d *Dump) { d.Schema = "nope" },
		"bad reason":     func(d *Dump) { d.Reason = "overheated" },
		"no role":        func(d *Dump) { d.Role = "" },
		"out of order":   func(d *Dump) { d.Events = []Event{{Seq: 5, Kind: KindBarrier}, {Seq: 5, Kind: KindBarrier}} },
		"kindless event": func(d *Dump) { d.Events = []Event{{Seq: 1}} },
	} {
		d := base()
		mutate(&d)
		if err := Validate(&d); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, d)
		}
	}
}

func TestDumpJSONRoundTrip(t *testing.T) {
	r := New("shard", 1, 8)
	r.Record(KindFrameSent, "STEPPED", 4, -1, 99, "")
	r.Record(KindTimeout, "", 5, -1, 0, "deadline")
	want := r.Dump(ReasonShardDeath).Attribute(1, 4, "step-wait", "connection reset")
	var buf bytes.Buffer
	if err := want.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDump(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != want.Reason || got.GuiltyShard != 1 || got.LastRound != 4 ||
		got.Phase != "step-wait" || len(got.Events) != 2 {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
}

func TestWriteDumpFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dump.json")
	if err := WriteDump(path, New("coord", -1, 4).Dump(ReasonSigterm)); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), Schema) {
		t.Errorf("dump file lacks the schema stamp:\n%s", b)
	}
	if _, err := ReadDump(b); err != nil {
		t.Errorf("written dump does not validate: %v", err)
	}
	if err := WriteDump(filepath.Join(t.TempDir(), "no", "such", "dir", "d.json"),
		New("coord", -1, 4).Dump(ReasonFinish)); err == nil {
		t.Error("WriteDump to an unwritable path reported success")
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := New("coord", -1, 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(KindFrameRecv, "DELIVERED", i, w, 7, "")
			}
		}(w)
	}
	wg.Wait()
	d := r.Dump(ReasonFinish)
	if err := Validate(&d); err != nil {
		t.Fatalf("concurrent dump invalid: %v", err)
	}
	if d.Dropped+uint64(len(d.Events)) != 800 {
		t.Errorf("events + dropped = %d, want 800", d.Dropped+uint64(len(d.Events)))
	}
}

func TestDefaultCapacity(t *testing.T) {
	r := New("coord", -1, 0)
	for i := 0; i < DefaultCapacity+10; i++ {
		r.Record(KindBarrier, "", i, -1, 0, fmt.Sprintf("r%d", i))
	}
	if d := r.Dump(ReasonFinish); len(d.Events) != DefaultCapacity {
		t.Errorf("default-capacity ring kept %d events, want %d", len(d.Events), DefaultCapacity)
	}
}
