// Package flightrec is the crash-safe flight recorder of the transport
// tier: a fixed-size ring buffer of recent transport events (frames
// sent and received, barrier transitions, timeouts, signals) kept on
// the coordinator and on every shard process, cheap enough to stay on
// unconditionally. When a run dies — shard death, barrier deadline,
// panic, SIGTERM — the ring is dumped as a deterministic-schema JSON
// document that names the guilty shard, its last completed round and
// the barrier phase it died in, so a stall on a real TCP run leaves
// evidence instead of a bare timeout error.
//
// The recorder follows the repo's nil-off-switch discipline
// (DESIGN.md §3): every method on a nil *Recorder is a no-op, so call
// sites thread it unconditionally. Recording allocates nothing after
// construction — events are fixed-size structs written into a
// preallocated ring, and the note strings passed in are only ever
// literals or values that already exist on the failure path.
package flightrec

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Schema identifies the dump layout. Bump on any incompatible change so
// downstream consumers (cmd/obsreport, the obs-suite smoke) can
// dispatch on it.
const Schema = "almostmix-flightrec/v1"

// DefaultCapacity is the ring size used when a caller passes cap <= 0:
// large enough to hold several rounds of frame traffic on every
// plausible shard count, small enough to be irrelevant in memory.
const DefaultCapacity = 512

// Event kinds. Dumps are consumed by scripts, so these are stable
// strings rather than iota constants.
const (
	KindFrameSent = "frame-sent"
	KindFrameRecv = "frame-recv"
	KindBarrier   = "barrier"
	KindTimeout   = "timeout"
	KindError     = "error"
	KindSignal    = "signal"
	KindPanic     = "panic"
)

// Dump reasons. Validate rejects anything else, so a new trigger must
// be added here before a dump can carry it.
const (
	ReasonFinish          = "finish"
	ReasonShardDeath      = "shard-death"
	ReasonBarrierDeadline = "barrier-deadline"
	ReasonPanic           = "panic"
	ReasonSigterm         = "sigterm"
	ReasonError           = "error"
)

var validReasons = map[string]bool{
	ReasonFinish:          true,
	ReasonShardDeath:      true,
	ReasonBarrierDeadline: true,
	ReasonPanic:           true,
	ReasonSigterm:         true,
	ReasonError:           true,
}

// Event is one recorded transport event. TNS is nanoseconds since the
// recorder was created (relative, so two dumps from one run can be
// interleaved without clock agreement between processes). Shard is the
// peer the event concerns, -1 when not applicable.
type Event struct {
	Seq   uint64 `json:"seq"`
	TNS   int64  `json:"t_ns"`
	Kind  string `json:"kind"`
	Frame string `json:"frame,omitempty"`
	Round int    `json:"round"`
	Shard int    `json:"shard"`
	Bytes int    `json:"bytes,omitempty"`
	Note  string `json:"note,omitempty"`
}

// Recorder is a concurrency-safe fixed-size ring of Events. The zero
// value is not usable — New allocates one — but a nil *Recorder is: all
// its methods no-op, the recording-off fast path.
type Recorder struct {
	mu    sync.Mutex
	role  string
	shard int
	start time.Time
	buf   []Event // ring storage, len == capacity after warmup
	cap   int
	seq   uint64 // total events ever recorded
}

// New returns a recorder for one endpoint: role is "coord" or "shard",
// shard the owning shard index (-1 for the coordinator), capacity the
// ring size (<= 0 selects DefaultCapacity).
func New(role string, shard, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		role:  role,
		shard: shard,
		start: time.Now(),
		buf:   make([]Event, 0, capacity),
		cap:   capacity,
	}
}

// Record appends one event, overwriting the oldest when the ring is
// full. Safe for concurrent use; a nil recorder ignores the call.
func (r *Recorder) Record(kind, frame string, round, shard, bytes int, note string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ev := Event{
		Seq:   r.seq,
		TNS:   time.Since(r.start).Nanoseconds(),
		Kind:  kind,
		Frame: frame,
		Round: round,
		Shard: shard,
		Bytes: bytes,
		Note:  note,
	}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[int(r.seq)%r.cap] = ev
	}
	r.seq++
	r.mu.Unlock()
}

// Dump is the crash-safe export of one recorder: the surviving ring in
// sequence order plus the failure attribution. GuiltyShard is -1 when
// no single shard is to blame (clean finish, coordinator-side error).
type Dump struct {
	Schema      string  `json:"schema"`
	Role        string  `json:"role"`
	Shard       int     `json:"shard"`
	Reason      string  `json:"reason"`
	GuiltyShard int     `json:"guilty_shard"`
	LastRound   int     `json:"last_round"`
	Phase       string  `json:"phase,omitempty"`
	Error       string  `json:"error,omitempty"`
	Dropped     uint64  `json:"dropped_events"`
	Events      []Event `json:"events"`
}

// Dump snapshots the ring under the given reason. LastRound defaults to
// the highest round any surviving event carries (callers with better
// knowledge — the coordinator knows its barrier counter — overwrite
// it); GuiltyShard defaults to -1. A nil recorder returns a schema-
// stamped empty dump so crash paths never branch.
func (r *Recorder) Dump(reason string) Dump {
	d := Dump{Schema: Schema, Role: "none", Shard: -1, Reason: reason, GuiltyShard: -1}
	if r == nil {
		return d
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	d.Role = r.role
	d.Shard = r.shard
	d.Dropped = r.seq - uint64(len(r.buf))
	d.Events = make([]Event, 0, len(r.buf))
	if len(r.buf) == r.cap {
		// Ring wrapped: oldest surviving event sits at seq % cap.
		at := int(r.seq) % r.cap
		d.Events = append(d.Events, r.buf[at:]...)
		d.Events = append(d.Events, r.buf[:at]...)
	} else {
		d.Events = append(d.Events, r.buf...)
	}
	for _, ev := range d.Events {
		if ev.Round > d.LastRound {
			d.LastRound = ev.Round
		}
	}
	return d
}

// Attribute fills the failure fields of a dump in place and returns it,
// so crash paths read as one expression.
func (d Dump) Attribute(guilty, lastRound int, phase, errMsg string) Dump {
	d.GuiltyShard = guilty
	d.LastRound = lastRound
	d.Phase = phase
	d.Error = errMsg
	return d
}

// Validate checks a dump against the schema contract: the stamp, a
// known reason, a role, and events in strictly ascending sequence
// order. The obs-suite smoke and cmd/obsreport both gate on it.
func Validate(d *Dump) error {
	if d == nil {
		return fmt.Errorf("flightrec: nil dump")
	}
	if d.Schema != Schema {
		return fmt.Errorf("flightrec: schema %q, want %q", d.Schema, Schema)
	}
	if !validReasons[d.Reason] {
		return fmt.Errorf("flightrec: unknown dump reason %q", d.Reason)
	}
	if d.Role == "" {
		return fmt.Errorf("flightrec: dump has no role")
	}
	for i := 1; i < len(d.Events); i++ {
		if d.Events[i].Seq <= d.Events[i-1].Seq {
			return fmt.Errorf("flightrec: events out of sequence at index %d (%d after %d)",
				i, d.Events[i].Seq, d.Events[i-1].Seq)
		}
	}
	for i, ev := range d.Events {
		if ev.Kind == "" {
			return fmt.Errorf("flightrec: event %d has no kind", i)
		}
	}
	return nil
}

// WriteJSON writes the dump as one indented JSON document.
func (d Dump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteDump writes the dump to path, or to stderr when path is "" —
// the crash path of a shard process whose stderr is piped through to
// the coordinator's. Every I/O error is returned wrapped with the
// destination so exit paths can still report it.
func WriteDump(path string, d Dump) error {
	if path == "" {
		if err := d.WriteJSON(os.Stderr); err != nil {
			return fmt.Errorf("flightrec: write stderr: %w", err)
		}
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("flightrec: %w", err)
	}
	err = d.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("flightrec: write %s: %w", path, err)
	}
	return nil
}

// ReadDump parses one dump document and validates it.
func ReadDump(b []byte) (*Dump, error) {
	var d Dump
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("flightrec: decoding dump: %w", err)
	}
	if err := Validate(&d); err != nil {
		return nil, err
	}
	return &d, nil
}
