package transport

// Typed frame payload encodings for the TCP backend: uvarint-packed
// batches of relayed messages, probe events and inbox profiles. All
// encodings are canonical (one byte form per value, written in one
// fixed order), which makes the coordinator's probe stream — and hence
// exported traces — byte-identical to the in-process engines.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"almostmix/internal/faults"
	"almostmix/internal/flightrec"
)

// wireSpec is the JSON body of the SPEC frame: the replayable workload
// spec plus the shard layout the run uses. FlightRec is the flight-
// recorder ring capacity every shard should run with (0 selects
// flightrec.DefaultCapacity), so one coordinator flag sizes the rings
// of the whole run.
type wireSpec struct {
	Version   int  `json:"version"`
	Shards    int  `json:"shards"`
	FlightRec int  `json:"flightrec,omitempty"`
	Spec      Spec `json:"spec"`
}

// wireTelemetry is the JSON body of the TELEMETRY frame every shard
// sends after FINAL: its side of the wire tallies plus its flight-
// recorder dump, so one -obsout file on the coordinator merges both
// ends of every connection. SentByType/RecvByType are keyed by frame
// name (stable across builds, unlike the numeric type bytes).
type wireTelemetry struct {
	Shard      int              `json:"shard"`
	SentFrames int64            `json:"sent_frames"`
	RecvFrames int64            `json:"recv_frames"`
	SentBytes  int64            `json:"sent_bytes"`
	RecvBytes  int64            `json:"recv_bytes"`
	SentByType map[string]int64 `json:"sent_by_type,omitempty"`
	RecvByType map[string]int64 `json:"recv_by_type,omitempty"`
	Flushes    int64            `json:"flushes"`
	FlushNS    int64            `json:"flush_ns"`
	// Faults is the shard replica plan's accumulated totals — fault
	// events applied at this shard's owned receivers (plus its owned
	// crash node-rounds), so the per-shard values sum to the run totals.
	Faults faults.Counts  `json:"faults,omitempty"`
	Dump   flightrec.Dump `json:"flightrec"`
}

// telemetryFromTally builds the ship-back document from one endpoint's
// tallies and flight dump.
func telemetryFromTally(shard int, t *connTally, dump flightrec.Dump) wireTelemetry {
	wt := wireTelemetry{
		Shard:      shard,
		SentFrames: t.sentFrames,
		RecvFrames: t.recvFrames,
		SentBytes:  t.sentBytes,
		RecvBytes:  t.recvBytes,
		Flushes:    t.flushes,
		FlushNS:    t.flushNS,
		Dump:       dump,
	}
	for typ, n := range t.sentByType {
		if n > 0 {
			if wt.SentByType == nil {
				wt.SentByType = make(map[string]int64)
			}
			wt.SentByType[frameName(byte(typ))] = n
		}
	}
	for typ, n := range t.recvByType {
		if n > 0 {
			if wt.RecvByType == nil {
				wt.RecvByType = make(map[string]int64)
			}
			wt.RecvByType[frameName(byte(typ))] = n
		}
	}
	return wt
}

// shardBounds is the contiguous node split shared by the coordinator
// and every shard process: shard i owns [i·n/k, (i+1)·n/k) — the same
// split the in-process parallel engine uses.
func shardBounds(n, shards, i int) (lo, hi int) {
	return i * n / shards, (i + 1) * n / shards
}

// cursor is a parsing cursor over one frame payload; the first error
// sticks and every later read returns zero values, so parse functions
// can chain reads and check once.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) fail(what string) {
	if c.err == nil {
		c.err = fmt.Errorf("transport: malformed %s", what)
	}
}

func (c *cursor) uvarint(what string) uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		c.fail(what)
		return 0
	}
	c.b = c.b[n:]
	return v
}

// length reads a uvarint that sizes a subsequent read; it additionally
// bounds it by the bytes actually remaining, so a hostile length cannot
// drive a huge allocation.
func (c *cursor) length(what string) int {
	v := c.uvarint(what)
	if c.err == nil && v > uint64(len(c.b)) {
		c.fail(what + " length")
		return 0
	}
	return int(v)
}

func (c *cursor) bytes(n int, what string) []byte {
	if c.err != nil {
		return nil
	}
	if len(c.b) < n {
		c.fail(what)
		return nil
	}
	b := c.b[:n]
	c.b = c.b[n:]
	return b
}

func (c *cursor) byte(what string) byte {
	b := c.bytes(1, what)
	if c.err != nil {
		return 0
	}
	return b[0]
}

// done returns the sticky error, or complains about trailing garbage.
func (c *cursor) done(what string) error {
	if c.err != nil {
		return c.err
	}
	if len(c.b) != 0 {
		return fmt.Errorf("transport: %d trailing bytes after %s", len(c.b), what)
	}
	return nil
}

// wireEvent is one probe event (phase mark or node halt) in canonical
// emission order: per node in ID order, marks first, then the halt.
type wireEvent struct {
	halt  bool
	node  int
	round int
	name  string // marks only
}

const (
	eventMark byte = iota
	eventHalt
)

func appendEvents(buf []byte, evs []wireEvent) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(evs)))
	for _, e := range evs {
		kind := eventMark
		if e.halt {
			kind = eventHalt
		}
		buf = append(buf, kind)
		buf = binary.AppendUvarint(buf, uint64(e.node))
		buf = binary.AppendUvarint(buf, uint64(e.round))
		if !e.halt {
			buf = binary.AppendUvarint(buf, uint64(len(e.name)))
			buf = append(buf, e.name...)
		}
	}
	return buf
}

func (c *cursor) events(dst []wireEvent) []wireEvent {
	n := int(c.uvarint("event count"))
	for i := 0; i < n && c.err == nil; i++ {
		kind := c.byte("event kind")
		e := wireEvent{
			halt:  kind == eventHalt,
			node:  int(c.uvarint("event node")),
			round: int(c.uvarint("event round")),
		}
		if kind == eventMark {
			e.name = string(c.bytes(c.length("event name"), "event name"))
		} else if kind != eventHalt {
			c.fail("event kind")
		}
		dst = append(dst, e)
	}
	return dst
}

// wireSend is one relayed cross-shard message: the receiving node, the
// port AT THE RECEIVER, and the workload-encoded payload.
type wireSend struct {
	dst, port int
	payload   []byte
}

func appendSends(buf []byte, sends []wireSend) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(sends)))
	for _, s := range sends {
		buf = binary.AppendUvarint(buf, uint64(s.dst))
		buf = binary.AppendUvarint(buf, uint64(s.port))
		buf = binary.AppendUvarint(buf, uint64(len(s.payload)))
		buf = append(buf, s.payload...)
	}
	return buf
}

// sends parses a relayed-message batch. Payload slices alias the frame
// buffer: valid only until the next frame read, decode before then.
func (c *cursor) sends(dst []wireSend) []wireSend {
	n := int(c.uvarint("send count"))
	for i := 0; i < n && c.err == nil; i++ {
		s := wireSend{
			dst:  int(c.uvarint("send dst")),
			port: int(c.uvarint("send port")),
		}
		s.payload = c.bytes(c.length("send payload"), "send payload")
		dst = append(dst, s)
	}
	return dst
}

// stepReply is the body of INITACK and STEPPED frames: what one shard
// reports after running Init or one Step. The fault counts ride the
// STEPPED reply — not DELIVERED — because the in-process engines drain
// counts only for rounds that actually step: a quiet exit discards the
// aborted deliver phase's counts, and the wire backend must agree.
type stepReply struct {
	active int // nodes that executed Step (0 for INITACK)
	halted int // owned nodes halted, cumulative
	faults faults.Counts
	events []wireEvent
	sends  []wireSend
}

func appendStepReply(buf []byte, r *stepReply) []byte {
	buf = binary.AppendUvarint(buf, uint64(r.active))
	buf = binary.AppendUvarint(buf, uint64(r.halted))
	buf = binary.AppendUvarint(buf, uint64(r.faults.Dropped))
	buf = binary.AppendUvarint(buf, uint64(r.faults.Duplicated))
	buf = binary.AppendUvarint(buf, uint64(r.faults.Delayed))
	buf = binary.AppendUvarint(buf, uint64(r.faults.Crashed))
	buf = appendEvents(buf, r.events)
	return appendSends(buf, r.sends)
}

func parseStepReply(b []byte, r *stepReply) error {
	c := cursor{b: b}
	r.active = int(c.uvarint("step active"))
	r.halted = int(c.uvarint("step halted"))
	r.faults.Dropped = int64(c.uvarint("step dropped"))
	r.faults.Duplicated = int64(c.uvarint("step duplicated"))
	r.faults.Delayed = int64(c.uvarint("step delayed"))
	r.faults.Crashed = int64(c.uvarint("step crashed"))
	r.events = c.events(r.events[:0])
	r.sends = c.sends(r.sends[:0])
	return c.done("step reply")
}

// deliveredReply is the body of a DELIVERED frame: the shard's total
// and pending delayed-message count, plus, per owned node in ID order,
// the inbox size and the ports the messages arrived on — exactly what
// the coordinator needs to rebuild InboxSizes, EdgeLoad and the
// max-inbox fields of the RoundRecord, and to extend the quiet check to
// in-flight delayed messages.
type deliveredReply struct {
	delivered int
	pending   int   // delayed messages still buffered for owned receivers
	sizes     []int // one per owned node
	ports     []int // concatenated arrival ports
}

func appendDeliveredReply(buf []byte, r *deliveredReply) []byte {
	buf = binary.AppendUvarint(buf, uint64(r.delivered))
	buf = binary.AppendUvarint(buf, uint64(r.pending))
	pi := 0
	for _, size := range r.sizes {
		buf = binary.AppendUvarint(buf, uint64(size))
		for j := 0; j < size; j++ {
			buf = binary.AppendUvarint(buf, uint64(r.ports[pi]))
			pi++
		}
	}
	return buf
}

func parseDeliveredReply(b []byte, owned int, r *deliveredReply) error {
	c := cursor{b: b}
	r.delivered = int(c.uvarint("delivered total"))
	r.pending = int(c.uvarint("delivered pending"))
	r.sizes = r.sizes[:0]
	r.ports = r.ports[:0]
	for u := 0; u < owned && c.err == nil; u++ {
		size := int(c.uvarint("inbox size"))
		r.sizes = append(r.sizes, size)
		for j := 0; j < size && c.err == nil; j++ {
			r.ports = append(r.ports, int(c.uvarint("inbox port")))
		}
	}
	return c.done("delivered reply")
}

// finalReply is the body of a FINAL frame: the shard's message count
// and its Finish blob.
type finalReply struct {
	messages int
	result   []byte
}

func appendFinalReply(buf []byte, r *finalReply) []byte {
	buf = binary.AppendUvarint(buf, uint64(r.messages))
	buf = binary.AppendUvarint(buf, uint64(len(r.result)))
	return append(buf, r.result...)
}

func parseFinalReply(b []byte, r *finalReply) error {
	c := cursor{b: b}
	r.messages = int(c.uvarint("final messages"))
	r.result = append(r.result[:0], c.bytes(c.length("final result"), "final result")...)
	return c.done("final reply")
}

// parseHello parses a HELLO body: version byte + shard index.
func parseHello(b []byte) (shard int, err error) {
	c := cursor{b: b}
	if v := c.byte("hello version"); c.err == nil && v != wireVersion {
		return 0, fmt.Errorf("transport: protocol version mismatch: peer %d, this build %d", v, wireVersion)
	}
	shard = int(c.uvarint("hello shard"))
	if err := c.done("hello"); err != nil {
		return 0, err
	}
	return shard, nil
}

func appendHello(buf []byte, shard int) []byte {
	buf = append(buf, wireVersion)
	return binary.AppendUvarint(buf, uint64(shard))
}

// errShardStopped is returned by a shard runtime asked to exit by a
// test hook; exported via errors.Is only within the package tests.
var errShardStopped = errors.New("transport: shard stopped by test hook")
