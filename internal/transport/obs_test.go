package transport_test

// Observability-tier tests: the -obsout document on every exit path
// (finish, shard death, barrier deadline), the shard telemetry
// ship-back reaching the coordinator's metrics registry, and the
// differential guarantee that turning all of it on leaves probe/trace
// output byte-identical across backends and worker counts.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"almostmix/internal/congest"
	"almostmix/internal/flightrec"
	"almostmix/internal/metrics"
	"almostmix/internal/transport"
)

// obsSpec is the walks suite spec: enough rounds to die mid-run.
func obsSpec() transport.Spec {
	return transport.Spec{Workload: "walks", Graph: "rr", N: 32, D: 4, K: 1, Steps: 8, Seed: 1, SrcSeed: 81}
}

func readObsFile(t *testing.T, path string) *transport.ObsDoc {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading obs document: %v", err)
	}
	d, err := transport.ReadObs(b)
	if err != nil {
		t.Fatalf("obs document invalid: %v", err)
	}
	return d
}

// TestObsFinishDoc runs a clean tcp run with the full observability
// stack on and checks the merged document: both sides' flight
// recorders, wire rows from both endpoints of every connection, a
// non-empty barrier timeline and per-round skew. It also pins
// satellite (a): the shard-side frameConn tallies must reach the
// coordinator's registry as tcpnet_shard_* instruments.
func TestObsFinishDoc(t *testing.T) {
	out := filepath.Join(t.TempDir(), "obs.json")
	reg := metrics.New()
	sink := congest.NewTraceSink()
	tcp := transport.TCP{
		Shards:  2,
		Timeout: 30 * time.Second,
		Spawn:   goroutineSpawner(nil),
		ObsOut:  out,
	}
	if _, err := tcp.Run(obsSpec(), transport.Options{Probe: sink.Label("obs"), Metrics: reg}); err != nil {
		t.Fatalf("clean run: %v", err)
	}

	d := readObsFile(t, out)
	if d.Reason != flightrec.ReasonFinish {
		t.Errorf("reason = %q, want finish", d.Reason)
	}
	if d.GuiltyShard != -1 {
		t.Errorf("clean finish blames shard %d", d.GuiltyShard)
	}
	for i, sd := range d.ShardDumps {
		if sd == nil {
			t.Errorf("shard %d shipped no flight dump on a clean finish", i)
		}
	}
	if len(d.Wire) != 2*d.Shards {
		t.Errorf("wire rows = %d, want both endpoints of %d connections", len(d.Wire), d.Shards)
	}
	if len(d.Timeline) == 0 {
		t.Error("no barrier timeline rows")
	}
	if len(d.Skew) == 0 {
		t.Error("no per-round skew samples")
	}
	for _, ws := range d.Wire {
		if ws.SentFrames == 0 || ws.RecvFrames == 0 {
			t.Errorf("wire row %s/%d has zero frame tallies: %+v", ws.Endpoint, ws.Shard, ws)
		}
	}
	if len(sink.Timeline) == 0 {
		t.Error("TraceSink received no transport-timeline rows")
	}

	snap := reg.Snapshot()
	for shard := 0; shard < 2; shard++ {
		name := fmt.Sprintf("tcpnet_shard_frames_total{shard=%d}", shard)
		if v, ok := snap.Counter(name); !ok || v == 0 {
			t.Errorf("%s = %d, ok=%v: shard-side tallies did not reach the registry", name, v, ok)
		}
	}
	if v, ok := snap.Counter("tcpnet_frames_total{shard=0}"); !ok || v == 0 {
		t.Errorf("coordinator tcpnet_frames_total{shard=0} = %d, ok=%v", v, ok)
	}
	if h := snap.Histogram("tcpnet_round_skew_ns"); h == nil || h.Count == 0 {
		t.Error("tcpnet_round_skew_ns histogram missing or empty")
	}
}

// TestObsStallDump pins the barrier-deadline exit path: a stalled shard
// must leave a schema-valid document naming the guilty shard, its last
// completed round and the barrier phase it hung in.
func TestObsStallDump(t *testing.T) {
	out := filepath.Join(t.TempDir(), "obs.json")
	tcp := transport.TCP{
		Shards:  2,
		Timeout: 1 * time.Second,
		ObsOut:  out,
		Spawn: goroutineSpawner(func(shard int) transport.ShardConfig {
			if shard == 0 {
				return transport.ShardConfig{StallAtRound: 2}
			}
			return transport.ShardConfig{}
		}),
	}
	_, err := tcp.Run(obsSpec(), transport.Options{})
	if err == nil {
		t.Fatal("stalled shard: run reported success")
	}

	d := readObsFile(t, out)
	if d.Reason != flightrec.ReasonBarrierDeadline {
		t.Errorf("reason = %q, want barrier-deadline", d.Reason)
	}
	if d.GuiltyShard != 0 {
		t.Errorf("guilty shard = %d, want 0", d.GuiltyShard)
	}
	if d.LastRound != 1 {
		t.Errorf("last completed round = %d, want 1 (stall at round 2's STEP)", d.LastRound)
	}
	if d.Phase != "step-wait" {
		t.Errorf("phase = %q, want step-wait", d.Phase)
	}
	if d.Error == "" {
		t.Error("document carries no error text")
	}
	if d.Coordinator.GuiltyShard != 0 {
		t.Errorf("coordinator dump blames shard %d, want 0", d.Coordinator.GuiltyShard)
	}
	if len(d.Coordinator.Events) == 0 {
		t.Error("coordinator dump has no events")
	}
}

// TestObsDeathDump pins the shard-death exit path and its attribution.
func TestObsDeathDump(t *testing.T) {
	out := filepath.Join(t.TempDir(), "obs.json")
	tcp := transport.TCP{
		Shards:  2,
		Timeout: 5 * time.Second,
		ObsOut:  out,
		Spawn: goroutineSpawner(func(shard int) transport.ShardConfig {
			if shard == 1 {
				return transport.ShardConfig{FailAtRound: 3}
			}
			return transport.ShardConfig{}
		}),
	}
	_, err := tcp.Run(obsSpec(), transport.Options{})
	if err == nil {
		t.Fatal("shard death: run reported success")
	}

	d := readObsFile(t, out)
	if d.Reason != flightrec.ReasonShardDeath {
		t.Errorf("reason = %q, want shard-death", d.Reason)
	}
	if d.GuiltyShard != 1 {
		t.Errorf("guilty shard = %d, want 1", d.GuiltyShard)
	}
	if d.LastRound != 2 {
		t.Errorf("last completed round = %d, want 2 (death at round 3's STEP)", d.LastRound)
	}
}

// TestTelemetryTraceParity is satellite (c): running with the FULL
// telemetry stack enabled — metrics registry, obs document, timeline
// sink — must leave the trace/probe output byte-identical across the
// proc engine at workers 1, 2 and 8 and the tcp backend at shards 1, 2
// and 8. Wall-clock observability must never leak into trace bytes.
func TestTelemetryTraceParity(t *testing.T) {
	spec := obsSpec()
	run := func(tr transport.Transport) []byte {
		t.Helper()
		sink := congest.NewTraceSink().WithMetrics(metrics.New())
		if _, err := tr.Run(spec, transport.Options{Probe: sink.Label("parity"), Metrics: metrics.New()}); err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		var buf bytes.Buffer
		if err := sink.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	want := run(transport.Proc{Workers: 1})
	for _, workers := range []int{2, 8} {
		if got := run(transport.Proc{Workers: workers}); !bytes.Equal(want, got) {
			t.Errorf("proc workers=%d: trace bytes diverge with telemetry on (%d vs %d bytes)",
				workers, len(want), len(got))
		}
	}
	for _, shards := range []int{1, 2, 8} {
		out := filepath.Join(t.TempDir(), fmt.Sprintf("obs%d.json", shards))
		tcp := transport.TCP{Shards: shards, Timeout: 30 * time.Second, Spawn: goroutineSpawner(nil), ObsOut: out}
		if got := run(tcp); !bytes.Equal(want, got) {
			t.Errorf("tcp shards=%d: trace bytes diverge with telemetry on (%d vs %d bytes)",
				shards, len(want), len(got))
		}
		readObsFile(t, out) // the parity run's document must still validate
	}
}

// TestFlightRecOutPerShardDumps pins the spawner plumbing: with
// FlightRecOut set, the real-process path hands each tcpnode a
// -flightrec path. The goroutine spawner cannot exercise exec argv, so
// this asserts at the config level via ServeShard's spec-driven ring
// sizing instead: a FlightRecCap in the wire spec must bound the
// shipped-back dump.
func TestFlightRecCapBoundsShardDump(t *testing.T) {
	out := filepath.Join(t.TempDir(), "obs.json")
	const ringCap = 8
	tcp := transport.TCP{
		Shards:       1,
		Timeout:      30 * time.Second,
		Spawn:        goroutineSpawner(nil),
		ObsOut:       out,
		FlightRecCap: ringCap,
	}
	if _, err := tcp.Run(obsSpec(), transport.Options{}); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	d := readObsFile(t, out)
	sd := d.ShardDumps[0]
	if sd == nil {
		t.Fatal("no shard dump shipped")
	}
	if len(sd.Events) > ringCap {
		t.Errorf("shard dump has %d events, ring capacity %d", len(sd.Events), ringCap)
	}
	if sd.Dropped == 0 {
		t.Errorf("ring of %d should have wrapped on an 8-step run (dropped=0)", ringCap)
	}
}
