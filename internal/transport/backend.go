package transport

import (
	"fmt"
	"os"
	"path/filepath"
)

// NewBackend resolves a -transport flag value into a backend. For tcp,
// an empty nodeBin defaults to a "tcpnode" binary next to the calling
// executable, and either way the binary must exist — a missing shard
// runtime should fail here, not as k dial timeouts mid-run.
func NewBackend(name string, workers, shards int, listen, nodeBin string) (Transport, error) {
	switch name {
	case "proc":
		return Proc{Workers: workers}, nil
	case "tcp":
		if nodeBin == "" {
			exe, err := os.Executable()
			if err != nil {
				return nil, fmt.Errorf("transport: locating own executable for the tcpnode default: %w", err)
			}
			nodeBin = filepath.Join(filepath.Dir(exe), "tcpnode")
		}
		if _, err := os.Stat(nodeBin); err != nil {
			return nil, fmt.Errorf("transport: tcpnode binary: %w (build cmd/tcpnode next to this binary or pass -tcpnode)", err)
		}
		return TCP{Shards: shards, ListenAddr: listen, NodeBin: nodeBin}, nil
	default:
		return nil, fmt.Errorf("transport: unknown backend %q (known: proc, tcp)", name)
	}
}
