package transport

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// BackendConfig carries every backend-tuning flag a cmd binary exposes,
// so adding a transport knob means one field here instead of a longer
// positional signature at every call site. Zero values select defaults;
// fields irrelevant to the chosen backend are ignored.
type BackendConfig struct {
	// Workers is the proc backend's engine worker count (0 = one per
	// CPU).
	Workers int
	// Shards is the tcp backend's node-process count.
	Shards int
	// Listen is the tcp coordinator's listen address ("" or
	// "127.0.0.1:0" for loopback with a kernel-assigned port).
	Listen string
	// NodeBin is the tcpnode binary; "" defaults to a "tcpnode" next to
	// the calling executable.
	NodeBin string
	// Timeout bounds every tcp wire barrier; 0 keeps the transport
	// default (60s).
	Timeout time.Duration
	// ObsOut, when set, makes every tcp run write its merged
	// observability document (ObsDoc) to this path on every exit path.
	ObsOut string
	// FlightRecCap sizes the flight-recorder rings on both ends; 0
	// selects flightrec.DefaultCapacity.
	FlightRecCap int
	// FlightRecOut, when set, makes each spawned tcpnode dump its own
	// ring to <FlightRecOut>.shard<i>.json on death.
	FlightRecOut string
}

// NewBackend resolves a -transport flag value into a backend. For tcp,
// an empty NodeBin defaults to a "tcpnode" binary next to the calling
// executable, and either way the binary must exist — a missing shard
// runtime should fail here, not as k dial timeouts mid-run.
func NewBackend(name string, cfg BackendConfig) (Transport, error) {
	switch name {
	case "proc":
		return Proc{Workers: cfg.Workers}, nil
	case "tcp":
		nodeBin := cfg.NodeBin
		if nodeBin == "" {
			exe, err := os.Executable()
			if err != nil {
				return nil, fmt.Errorf("transport: locating own executable for the tcpnode default: %w", err)
			}
			nodeBin = filepath.Join(filepath.Dir(exe), "tcpnode")
		}
		if _, err := os.Stat(nodeBin); err != nil {
			return nil, fmt.Errorf("transport: tcpnode binary: %w (build cmd/tcpnode next to this binary or pass -tcpnode)", err)
		}
		return TCP{
			Shards:       cfg.Shards,
			ListenAddr:   cfg.Listen,
			NodeBin:      nodeBin,
			Timeout:      cfg.Timeout,
			ObsOut:       cfg.ObsOut,
			FlightRecCap: cfg.FlightRecCap,
			FlightRecOut: cfg.FlightRecOut,
		}, nil
	default:
		return nil, fmt.Errorf("transport: unknown backend %q (known: proc, tcp)", name)
	}
}
