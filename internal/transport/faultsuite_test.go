package transport_test

// The fault-over-wire differential suite: faulty executions must be
// byte-identical between the in-process engines and the TCP backend.
// The tentpole assertion replays internal/congest's committed fault
// goldens (testdata/golden/faults-*.json) through the transport layer —
// proc and tcp at shards 1, 2 and 4 — and requires the full golden
// document (trace bytes, rounds, messages, fault totals) to reproduce
// byte for byte. On top sit the retry stories: walks re-issue and
// windowed-GHS recovery over real shard processes, including a
// whole-shard crash-and-recover round, each pinned against its
// in-process driver. Shards run as goroutines so the whole fate-table
// handshake sits under the race detector.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"almostmix/internal/congest"
	"almostmix/internal/faults"
	"almostmix/internal/graph"
	"almostmix/internal/mstbase"
	"almostmix/internal/randomwalk"
	"almostmix/internal/rngutil"
	"almostmix/internal/transport"
	"almostmix/internal/transport/workloads"
)

// goldenFaultProgram replicates internal/congest's goldenProgram
// exactly (same RNG consumption, marks, staggered halting, per-port
// duplication guard), so a transport run of the "goldenfault" workload
// is the same execution the committed goldens pin.
type goldenFaultProgram struct {
	haltAt int
	seen   int
	sent   []bool
}

func (p *goldenFaultProgram) Init(ctx *congest.Ctx) {
	p.sent = make([]bool, ctx.Degree())
	ctx.Broadcast(ctx.ID())
}

func (p *goldenFaultProgram) Step(ctx *congest.Ctx, inbox []congest.Inbound) {
	for i := range p.sent {
		p.sent[i] = false
	}
	for _, in := range inbox {
		v := in.Payload.(int)
		p.seen += v
		if ctx.Rand().IntN(4) != 0 && !p.sent[in.Port] {
			p.sent[in.Port] = true
			ctx.Send(in.Port, v+1)
		}
	}
	if ctx.Round()%3 == 0 && ctx.Tracing() {
		ctx.Mark(fmt.Sprintf("beat-%d", ctx.Round()/3))
	}
	if ctx.Round() >= p.haltAt {
		ctx.Halt()
	}
}

// goldenFaultScenarios mirror congest's golden fault scenarios; Value
// selects the graph in buildGoldenFault since Gnp is not a BuildGraph
// kind.
var goldenFaultScenarios = []struct {
	name      string
	value     int
	faultSpec string
}{
	{"faults-gnp24", 0, "drop=0.15,dup=0.1,delay=0.15:2,crash=3@4+5,sever=2@6"},
	{"faults-star16", 1, "drop=0.1,dup=0.2,delay=0.1:3,crash=0@5+4"},
	{"faults-rr32d4", 2, "drop=0.2,delay=0.2:1,sever=5@3,crash=7@2+6"},
}

func buildGoldenFault(spec transport.Spec) (*transport.Instance, error) {
	var g *graph.Graph
	switch spec.Value {
	case 0:
		g = graph.Gnp(24, 0.3, rngutil.NewRand(7))
	case 1:
		g = graph.Star(16)
	case 2:
		g = graph.RandomRegular(32, 4, rngutil.NewRand(9))
	default:
		return nil, fmt.Errorf("goldenfault: unknown scenario %d", spec.Value)
	}
	plan, err := spec.FaultPlan()
	if err != nil {
		return nil, err
	}
	programs := make([]congest.Program, g.N())
	for v := range programs {
		programs[v] = &goldenFaultProgram{haltAt: 12 + v%5}
	}
	return &transport.Instance{
		Graph:     g,
		Programs:  programs,
		Source:    rngutil.NewSource(spec.SrcSeed),
		Faults:    plan,
		MaxRounds: 40,
	}, nil
}

func init() {
	transport.Register(transport.Workload{
		Name:  "goldenfault",
		Build: buildGoldenFault,
		Encode: func(buf []byte, m congest.Message) ([]byte, error) {
			v, ok := m.(int)
			if !ok {
				return nil, fmt.Errorf("goldenfault: payload codec got %T", m)
			}
			return binary.AppendUvarint(buf, uint64(v)), nil
		},
		Decode: func(b []byte) (congest.Message, error) {
			v, n := binary.Uvarint(b)
			if n <= 0 || n != len(b) {
				return nil, fmt.Errorf("goldenfault: malformed payload")
			}
			return int(v), nil
		},
	})
}

// goldenFaultDoc replicates congest's goldenDoc layout so the marshaled
// bytes can be compared against the committed files directly.
type goldenFaultDoc struct {
	Trace    json.RawMessage `json:"trace"`
	Rounds   int             `json:"rounds"`
	Messages int             `json:"messages"`
	Faults   faults.Counts   `json:"faults"`
}

// runGoldenFault executes one golden fault scenario on tr and returns
// the serialized golden document, built exactly like congest's
// runGolden.
func runGoldenFault(t *testing.T, tr transport.Transport, value int, faultSpec string) []byte {
	t.Helper()
	sink := congest.NewTraceSink()
	res, err := tr.Run(transport.Spec{
		Workload:  "goldenfault",
		Value:     value,
		SrcSeed:   41,
		FaultSpec: faultSpec,
		FaultSeed: 99,
	}, transport.Options{Probe: sink})
	if err != nil {
		t.Fatalf("%s run: %v", tr.Name(), err)
	}
	var trace bytes.Buffer
	if err := sink.WriteJSON(&trace); err != nil {
		t.Fatalf("trace export: %v", err)
	}
	buf, err := json.MarshalIndent(goldenFaultDoc{
		Trace:    trace.Bytes(),
		Rounds:   res.Rounds,
		Messages: res.Messages,
		Faults:   res.Faults,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(buf, '\n')
}

// TestGoldenFaultParityOverTCP is the tentpole assertion: the three
// committed fault goldens reproduce byte for byte through the transport
// layer — trace bytes, rounds, messages and fault totals — on proc and
// on tcp at shards 1, 2 and 4.
func TestGoldenFaultParityOverTCP(t *testing.T) {
	for _, sc := range goldenFaultScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			want, err := os.ReadFile(filepath.Join("..", "congest", "testdata", "golden", sc.name+".json"))
			if err != nil {
				t.Fatalf("missing congest golden: %v", err)
			}
			if got := runGoldenFault(t, transport.Proc{Workers: 1}, sc.value, sc.faultSpec); !bytes.Equal(got, want) {
				t.Fatalf("proc diverges from committed golden (%d vs %d bytes)", len(got), len(want))
			}
			for _, shards := range []int{1, 2, 4} {
				tcp := transport.TCP{Shards: shards, Timeout: 30 * time.Second, Spawn: goroutineSpawner(nil)}
				if got := runGoldenFault(t, tcp, sc.value, sc.faultSpec); !bytes.Equal(got, want) {
					t.Errorf("tcp shards=%d diverges from committed golden (%d vs %d bytes)", shards, len(got), len(want))
				}
			}
		})
	}
}

// TestCrossShardFaultCountsSumToProc pins the counted-exactly-once
// contract: a message crossing shards has its fate applied at the
// receiving shard's delivery scan, never at Inject, so the per-shard
// totals shipped back in TELEMETRY frames sum to the sequential
// engine's totals field for field.
func TestCrossShardFaultCountsSumToProc(t *testing.T) {
	sc := goldenFaultScenarios[0] // gnp24: dense cross-shard traffic, all fate kinds
	spec := transport.Spec{
		Workload:  "goldenfault",
		Value:     sc.value,
		SrcSeed:   41,
		FaultSpec: sc.faultSpec,
		FaultSeed: 99,
	}
	procRes, err := transport.Proc{Workers: 1}.Run(spec, transport.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !procRes.Faults.Any() {
		t.Fatal("proc run injected no faults; scenario is not exercising the counters")
	}
	for _, shards := range []int{2, 4} {
		out := filepath.Join(t.TempDir(), "obs.json")
		tcp := transport.TCP{Shards: shards, Timeout: 30 * time.Second, Spawn: goroutineSpawner(nil), ObsOut: out}
		tcpRes, err := tcp.Run(spec, transport.Options{})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if tcpRes.Faults != procRes.Faults {
			t.Errorf("shards=%d: coordinator totals %+v, proc %+v", shards, tcpRes.Faults, procRes.Faults)
		}
		raw, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := transport.ReadObs(raw)
		if err != nil {
			t.Fatal(err)
		}
		var sum faults.Counts
		rows := 0
		for _, ws := range doc.Wire {
			if ws.Endpoint == "shard" {
				sum.Add(ws.Faults)
				rows++
			} else if ws.Faults.Any() {
				t.Errorf("shards=%d: coord wire row for shard %d carries fault counts %+v", shards, ws.Shard, ws.Faults)
			}
		}
		if rows != shards {
			t.Fatalf("shards=%d: %d shard telemetry rows", shards, rows)
		}
		if sum != procRes.Faults {
			t.Errorf("shards=%d: per-shard fault totals sum to %+v, proc counted %+v — some fate applied twice or not at all",
				shards, sum, procRes.Faults)
		}
	}
}

// faultTransports are the backends every retry-story test runs against.
func faultTransports() []transport.Transport {
	return []transport.Transport{
		transport.Proc{Workers: 1},
		transport.TCP{Shards: 2, Timeout: 30 * time.Second, Spawn: goroutineSpawner(nil)},
		transport.TCP{Shards: 4, Timeout: 30 * time.Second, Spawn: goroutineSpawner(nil)},
	}
}

// TestWalksFaultsMatchesInProcessDriver pins the transport-level walks
// retry driver against randomwalk.RunNetworkFaults: identical arrival
// placement, rounds, messages, attempts, re-issue and fault accounting
// on proc and on tcp.
func TestWalksFaultsMatchesInProcessDriver(t *testing.T) {
	spec := transport.Spec{
		Workload: "walks-faults", Graph: "rr", N: 32, D: 4, K: 1, Steps: 8,
		Seed: 11, SrcSeed: 111,
		FaultSpec: "drop=0.08,dup=0.05,delay=0.1:2", FaultSeed: 5,
	}
	const attempts = 8
	g, err := transport.BuildGraph(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := randomwalk.RunNetworkFaults(g, randomwalk.UniformCountTimesDegree(g, spec.K), spec.Steps,
		rngutil.NewSource(spec.SrcSeed), 1, spec.FaultSpec, spec.FaultSeed, attempts, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want.Reissued == 0 {
		t.Fatal("in-process driver re-issued nothing; the scenario is not exercising the retry story")
	}
	if want.Lost != 0 {
		t.Fatalf("in-process driver lost %d tokens within %d attempts", want.Lost, attempts)
	}
	for _, tr := range faultTransports() {
		got, err := workloads.RunWalksFaults(tr, spec, transport.Options{}, attempts)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: faulty walk result diverges from in-process driver:\nwant %+v\ngot  %+v", tr.Name(), want, got)
		}
	}
}

// TestGHSFaultsMatchesInProcessDriver pins the transport-level GHS
// retry driver against mstbase.GHSNetworkFaults: the recovered MST, the
// accumulated rounds/iterations/attempts and the fault totals must be
// identical on proc and on tcp.
func TestGHSFaultsMatchesInProcessDriver(t *testing.T) {
	spec := transport.Spec{
		Workload: "ghs-faults", Graph: "rr", N: 24, D: 4,
		Seed: 3, SrcSeed: 73, WeightSeed: 10,
		FaultSpec: "drop=0.05,delay=0.1:2", FaultSeed: 9,
	}
	const attempts = 6
	g, err := transport.BuildGraph(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mstbase.GHSNetworkFaults(g, rngutil.NewSource(spec.SrcSeed), 1,
		spec.FaultSpec, spec.FaultSeed, attempts, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Recovered {
		t.Fatalf("in-process driver did not recover the MST within %d attempts", attempts)
	}
	if !want.Faults.Any() {
		t.Fatal("in-process driver injected no faults")
	}
	for _, tr := range faultTransports() {
		got, err := workloads.RunGHSFaults(tr, spec, transport.Options{}, attempts)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: faulty GHS result diverges from in-process driver:\nwant %+v\ngot  %+v", tr.Name(), want, got)
		}
	}
}

// TestWholeShardCrashRecoversOverTCP is the killed-and-recovering-shard
// story: every node of one shard crashes mid-run and recovers rounds
// later, with probabilistic drops layered on top, over real shard
// barriers. The run must complete with every token re-delivered and the
// crash accounted at exactly crashed-nodes × crashed-rounds, identical
// to the in-process driver.
func TestWholeShardCrashRecoversOverTCP(t *testing.T) {
	const n, shards = 24, 4
	crashSpec := "drop=0.05," + workloads.CrashShardSpec(n, shards, 2, 3, 4)
	spec := transport.Spec{
		Workload: "walks-faults", Graph: "rr", N: n, D: 4, K: 1, Steps: 6,
		Seed: 21, SrcSeed: 121,
		FaultSpec: crashSpec, FaultSeed: 17,
	}
	// The crash schedule replays every attempt (each re-run crashes the
	// shard again at round 3), so re-issued tokens keep braving the same
	// window; 16 attempts deterministically drains this seed.
	const attempts = 16
	g, err := transport.BuildGraph(spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := randomwalk.UniformCountTimesDegree(g, spec.K)
	issued := 0
	for _, c := range counts {
		issued += c
	}
	want, err := randomwalk.RunNetworkFaults(g, counts, spec.Steps,
		rngutil.NewSource(spec.SrcSeed), 1, spec.FaultSpec, spec.FaultSeed, attempts, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tcp := transport.TCP{Shards: shards, Timeout: 30 * time.Second, Spawn: goroutineSpawner(nil)}
	got, err := workloads.RunWalksFaults(tcp, spec, transport.Options{}, attempts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("whole-shard crash walk result diverges from in-process driver:\nwant %+v\ngot  %+v", want, got)
	}
	if got.Lost != 0 {
		t.Errorf("%d tokens lost across %d attempts", got.Lost, attempts)
	}
	arrived := 0
	for _, c := range got.ArrivedAt {
		arrived += c
	}
	if arrived != issued {
		t.Errorf("%d of %d tokens arrived", arrived, issued)
	}
	// Shard 2 owns nodes [12, 18): 6 nodes crashed for 4 rounds in every
	// attempt's replay of the schedule.
	if wantCrash := int64(6 * 4 * got.Attempts); got.Faults.Crashed != wantCrash {
		t.Errorf("crash node-rounds = %d over %d attempts, want %d", got.Faults.Crashed, got.Attempts, wantCrash)
	}
}

// TestGHSRecoveryAfterShardCrashOverTCP runs the windowed-GHS recovery
// story over real shard barriers with a crash-only plan (no FATES
// frames: crash schedules replay from the spec on every replica) that
// takes down a whole shard and brings it back. The oracle-validated MST
// must come out identical to the in-process driver's.
func TestGHSRecoveryAfterShardCrashOverTCP(t *testing.T) {
	const n, shards = 16, 4
	spec := transport.Spec{
		Workload: "ghs-faults", Graph: "rr", N: n, D: 4,
		Seed: 5, SrcSeed: 75, WeightSeed: 12,
		FaultSpec: workloads.CrashShardSpec(n, shards, 1, 5, 6), FaultSeed: 23,
	}
	const attempts = 4
	g, err := transport.BuildGraph(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mstbase.GHSNetworkFaults(g, rngutil.NewSource(spec.SrcSeed), 1,
		spec.FaultSpec, spec.FaultSeed, attempts, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Recovered {
		t.Fatalf("in-process driver did not recover the MST within %d attempts", attempts)
	}
	tcp := transport.TCP{Shards: shards, Timeout: 60 * time.Second, Spawn: goroutineSpawner(nil)}
	got, err := workloads.RunGHSFaults(tcp, spec, transport.Options{}, attempts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("shard-crash GHS result diverges from in-process driver:\nwant %+v\ngot  %+v", want, got)
	}
	ref, err := mstbase.GHS(g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Weight != ref.Weight {
		t.Errorf("recovered MST weight %v, oracle %v", got.Weight, ref.Weight)
	}
}

// TestPlainWorkloadsRejectFaultSpec pins the satellite contract: the
// five fault-unaware workloads error out on a FaultSpec instead of
// silently ignoring it, on both backends (the builder runs before any
// network exists, so one code path serves both).
func TestPlainWorkloadsRejectFaultSpec(t *testing.T) {
	for _, spec := range suiteSpecs(1) {
		spec.FaultSpec = "drop=0.1"
		if _, err := (transport.Proc{Workers: 1}).Run(spec, transport.Options{}); err == nil {
			t.Errorf("%s: fault spec accepted by a fault-unaware workload", spec.Workload)
		}
	}
}
