// Package transport factors the simulator's execution contract into a
// Transport interface with interchangeable backends: Proc runs a
// workload on the in-process CONGEST engines (internal/congest,
// unchanged and still zero-alloc in steady rounds), TCP runs the same
// workload as real OS processes — one shard of nodes per process —
// exchanging length-prefixed framed messages over TCP with a
// coordinator driving the round barriers over the wire.
//
// The portability hinge is the replayable Spec: a workload is described
// by pure seeds and sizes, never by in-memory object graphs, so every
// participating process can rebuild the identical graph, programs and
// RNG streams from a few dozen JSON bytes. Delivery semantics are NOT
// reimplemented per backend — both funnel into congest's canonical
// receiver-driven, port-ordered deliverTo (the TCP backend through
// congest.Shard), which is why Probe/TraceSink output is byte-identical
// across backends (asserted by the differential suite, `make
// tcp-suite`).
//
// Invariants every backend must satisfy are documented in DESIGN.md
// ("Transport contract").
package transport

import (
	"fmt"
	"sort"

	"almostmix/internal/congest"
	"almostmix/internal/faults"
	"almostmix/internal/graph"
	"almostmix/internal/metrics"
	"almostmix/internal/rngutil"
)

// Spec is the replayable description of one workload run: everything a
// process needs to rebuild the graph, the per-node programs and the
// simulator's random source, as plain seeds and sizes. Field meaning is
// fixed by the workload (K is the walks-per-degree multiplier for
// "walks", unused elsewhere; D is the path length for "lollipop"
// graphs, the lattice halfwidth for "ringlattice", the degree for
// "rr").
type Spec struct {
	Workload   string `json:"workload"`
	Graph      string `json:"graph"`
	N          int    `json:"n"`
	D          int    `json:"d,omitempty"`
	K          int    `json:"k,omitempty"`
	Steps      int    `json:"steps,omitempty"`
	Root       int    `json:"root,omitempty"`
	Value      int    `json:"value,omitempty"`
	Seed       uint64 `json:"seed"`
	SrcSeed    uint64 `json:"src_seed"`
	WeightSeed uint64 `json:"weight_seed,omitempty"`

	// FaultSpec/FaultSeed describe the fault plan (faults.Parse syntax;
	// FaultSeed is the plan's seed, used raw). Retry is the fault-aware
	// workloads' attempt index: it offsets the program RNG stream
	// (Child("…-retry", Retry)) exactly like the in-process retry
	// drivers, never the fault seed — callers derive per-attempt fault
	// seeds themselves and place the result in FaultSeed. WalkCounts and
	// WalkSeqBase carry the walks re-issue state between attempts.
	FaultSpec   string `json:"fault_spec,omitempty"`
	FaultSeed   uint64 `json:"fault_seed,omitempty"`
	Retry       int    `json:"retry,omitempty"`
	WalkCounts  []int  `json:"walk_counts,omitempty"`
	WalkSeqBase []int  `json:"walk_seq_base,omitempty"`
}

// FaultPlan materializes the spec's fault plan: nil with no FaultSpec,
// else the plan every process of the run parses identically —
// deterministic in (FaultSpec, FaultSeed) alone, like BuildGraph is in
// the graph fields.
func (s Spec) FaultPlan() (*faults.Plan, error) {
	if s.FaultSpec == "" {
		return nil, nil
	}
	return faults.Parse(s.FaultSpec, s.FaultSeed)
}

// BuildGraph rebuilds the spec's graph: deterministic in the spec alone,
// so every process of a TCP run holds an identical topology. A nonzero
// WeightSeed additionally assigns the distinct random edge weights the
// MST workloads need.
func BuildGraph(spec Spec) (*graph.Graph, error) {
	var g *graph.Graph
	switch spec.Graph {
	case "rr":
		g = graph.RandomRegular(spec.N, spec.D, rngutil.NewRand(spec.Seed))
	case "ring":
		g = graph.Ring(spec.N)
	case "ringlattice":
		g = graph.RingLattice(spec.N, spec.D)
	case "star":
		g = graph.Star(spec.N)
	case "lollipop":
		g = graph.Lollipop(spec.N, spec.D)
	default:
		return nil, fmt.Errorf("transport: unknown graph kind %q", spec.Graph)
	}
	if spec.WeightSeed != 0 {
		g.AssignDistinctRandomWeights(rngutil.NewRand(spec.WeightSeed))
	}
	return g, nil
}

// Instance is a Spec materialized on one process: the graph, the
// per-node programs, and how to run and harvest them.
type Instance struct {
	Graph    *graph.Graph
	Programs []congest.Program
	Source   *rngutil.Source
	// Faults is the instance's fault plan, nil for fault-free runs. A
	// fault-aware workload builds it from the spec (FaultPlan) so every
	// process holds an identical plan; backends attach it to their
	// networks before running and harvest its totals into Result.Faults.
	Faults *faults.Plan
	// MaxRounds is the round budget; Quiet selects RunUntilQuiet-style
	// termination (stop after the first round ≥ 1 that delivers nothing).
	MaxRounds int
	Quiet     bool
	// Finish serializes the run's outcome held by nodes [lo, hi) — nil
	// when the workload has no output beyond rounds/messages. Merge
	// combines the per-shard Finish blobs, concatenated in shard (= node)
	// order, into the workload's output value. Proc uses a single
	// [0, n) blob so both backends share one harvest path.
	Finish func(lo, hi int) []byte
	Merge  func(g *graph.Graph, parts [][]byte) (any, error)
}

// Workload couples a Spec builder with the byte codec for the payload
// types its programs exchange. Codecs are pure and canonical (see
// internal/congest/wire.go), which the TCP backend relies on for
// deterministic cross-process replay.
type Workload struct {
	Name   string
	Build  func(spec Spec) (*Instance, error)
	Encode func(buf []byte, m congest.Message) ([]byte, error)
	Decode func(b []byte) (congest.Message, error)
}

var registry = map[string]Workload{}

// Register adds a workload to the process-global registry (called from
// package init of internal/transport/workloads). Duplicate names panic:
// two workloads answering to one spec cannot both be what a remote
// shard replays.
func Register(w Workload) {
	if w.Name == "" || w.Build == nil {
		panic("transport: Register needs a name and a builder")
	}
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("transport: workload %q registered twice", w.Name))
	}
	registry[w.Name] = w
}

// Lookup resolves a workload by name, listing the known names on a miss
// so a typo in a spec (or a version-skewed peer) fails comprehensibly.
func Lookup(name string) (Workload, error) {
	if w, ok := registry[name]; ok {
		return w, nil
	}
	known := make([]string, 0, len(registry))
	for n := range registry {
		known = append(known, n)
	}
	sort.Strings(known)
	return Workload{}, fmt.Errorf("transport: unknown workload %q (known: %v)", name, known)
}

// Options carries the observability hooks a backend threads through its
// run. Both are optional; the probe sees the byte-identical event
// stream on every backend.
type Options struct {
	Probe   congest.Probe
	Metrics *metrics.Registry
}

// Result is the backend-independent outcome of a run. Output is the
// workload's Merge value (nil when the workload defines none); Faults
// holds the plan's accumulated injected-event totals (zero for
// fault-free runs), identical across backends for one spec.
type Result struct {
	Rounds   int
	Messages int
	Output   any
	Faults   faults.Counts
}

// Transport executes workload specs. Implementations must satisfy the
// contract in DESIGN.md: canonical port-ordered delivery, engine round
// barriers, halt semantics, and a probe event stream byte-identical to
// the sequential reference engine.
type Transport interface {
	Name() string
	Run(spec Spec, opts Options) (Result, error)
}
