package transport

// The TCP backend's merged observability document: one -obsout file per
// run joining the coordinator's flight recorder, every shard's
// shipped-back flight recorder and wire tallies (the TELEMETRY frame),
// the coordinator's barrier-phase timeline, and the per-round
// cross-shard skew — written on clean finish AND on every failure path
// (shard death, barrier deadline, panic, SIGTERM), so a dead run
// leaves a complete attribution trail instead of a bare error.
//
// The document is deliberately wall-clock-bearing: like the metrics
// snapshot (and unlike -trace files) it is host-dependent and sits
// outside the byte-identical differential contract. cmd/obsreport
// joins it with a metrics snapshot and a BENCH_*.json into a
// per-round report.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"almostmix/internal/congest"
	"almostmix/internal/faults"
	"almostmix/internal/flightrec"
)

// ObsSchema identifies the -obsout document layout. Bump on any
// incompatible change so cmd/obsreport and the obs-suite smoke can
// dispatch on it.
const ObsSchema = "almostmix-obs/v1"

// WireStats is one endpoint's wire tallies: the coordinator's side of
// one shard connection (Endpoint "coord") or the shard's own side as
// shipped back in its TELEMETRY frame (Endpoint "shard"). The two rows
// for one shard index describe the same connection from both ends —
// their frame counts mirror each other, their flush latencies do not.
type WireStats struct {
	Endpoint   string           `json:"endpoint"`
	Shard      int              `json:"shard"`
	SentFrames int64            `json:"sent_frames"`
	RecvFrames int64            `json:"recv_frames"`
	SentBytes  int64            `json:"sent_bytes"`
	RecvBytes  int64            `json:"recv_bytes"`
	SentByType map[string]int64 `json:"sent_by_type,omitempty"`
	RecvByType map[string]int64 `json:"recv_by_type,omitempty"`
	Flushes    int64            `json:"flushes"`
	FlushNS    int64            `json:"flush_ns"`
	// Faults holds shard rows' fault-event totals (events applied at the
	// shard's owned receivers); always zero on coord rows, which count
	// wire traffic only.
	Faults faults.Counts `json:"faults,omitempty"`
}

// RoundSkew is one round's cross-shard step-barrier skew: the wall-time
// spread between the first and last shard reply the coordinator
// observed. Replies are drained in shard order, so a fast shard behind
// a slow one reads as already-buffered (≈0 wait) — the spread is a
// lower bound on true skew, tight when the slowest shard is the
// bottleneck (the case worth attributing).
type RoundSkew struct {
	Round  int   `json:"round"`
	SkewNS int64 `json:"skew_ns"`
}

// ObsDoc is the merged per-run observability document.
type ObsDoc struct {
	Schema      string                `json:"schema"`
	Backend     string                `json:"backend"`
	Spec        Spec                  `json:"spec"`
	Shards      int                   `json:"shards"`
	Rounds      int                   `json:"rounds"`
	Reason      string                `json:"reason"`
	GuiltyShard int                   `json:"guilty_shard"`
	LastRound   int                   `json:"last_round"`
	Phase       string                `json:"phase,omitempty"`
	Error       string                `json:"error,omitempty"`
	Coordinator flightrec.Dump        `json:"coordinator"`
	ShardDumps  []*flightrec.Dump     `json:"shard_dumps"`
	Wire        []WireStats           `json:"wire"`
	Timeline    []congest.TimelineRow `json:"timeline"`
	Skew        []RoundSkew           `json:"skew"`
}

// ValidateObs checks the document against its schema contract: the
// stamp, a coordinator dump that itself validates, shard dump slots
// matching the shard count, and every present shard dump valid. The
// obs-suite smoke and cmd/obsreport both gate on it.
func ValidateObs(d *ObsDoc) error {
	if d == nil {
		return fmt.Errorf("transport: nil obs document")
	}
	if d.Schema != ObsSchema {
		return fmt.Errorf("transport: obs schema %q, want %q", d.Schema, ObsSchema)
	}
	if d.Backend != "tcp" {
		return fmt.Errorf("transport: obs backend %q, want tcp", d.Backend)
	}
	if d.Shards < 1 {
		return fmt.Errorf("transport: obs document with %d shards", d.Shards)
	}
	if len(d.ShardDumps) != d.Shards {
		return fmt.Errorf("transport: obs document has %d shard dump slots for %d shards", len(d.ShardDumps), d.Shards)
	}
	if err := flightrec.Validate(&d.Coordinator); err != nil {
		return fmt.Errorf("transport: obs coordinator dump: %w", err)
	}
	for i, sd := range d.ShardDumps {
		if sd == nil {
			continue // shard died before shipping telemetry
		}
		if err := flightrec.Validate(sd); err != nil {
			return fmt.Errorf("transport: obs shard %d dump: %w", i, err)
		}
	}
	return nil
}

// WriteJSON writes the document as one indented JSON document.
func (d *ObsDoc) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteObs writes the document to path, wrapped-error discipline like
// every other exporter so cmd binaries can turn failures into exit 1.
func WriteObs(path string, d *ObsDoc) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("transport: obs: %w", err)
	}
	err = d.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("transport: obs: write %s: %w", path, err)
	}
	return nil
}

// ReadObs parses one -obsout document and validates it.
func ReadObs(b []byte) (*ObsDoc, error) {
	var d ObsDoc
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("transport: decoding obs document: %w", err)
	}
	if err := ValidateObs(&d); err != nil {
		return nil, err
	}
	return &d, nil
}

// timelineSink is the optional capability a probe exposes to receive
// the coordinator's barrier-phase timeline — *congest.TraceSink
// implements it. Detected by interface assertion so Options stays a
// plain congest.Probe.
type timelineSink interface {
	AddTimeline(rows []congest.TimelineRow)
}

// wireStatsCoord converts the coordinator's side of one connection.
func wireStatsCoord(shard int, t *connTally) WireStats {
	ws := WireStats{
		Endpoint:   "coord",
		Shard:      shard,
		SentFrames: t.sentFrames,
		RecvFrames: t.recvFrames,
		SentBytes:  t.sentBytes,
		RecvBytes:  t.recvBytes,
		Flushes:    t.flushes,
		FlushNS:    t.flushNS,
	}
	for typ, n := range t.sentByType {
		if n > 0 {
			if ws.SentByType == nil {
				ws.SentByType = make(map[string]int64)
			}
			ws.SentByType[frameName(byte(typ))] = n
		}
	}
	for typ, n := range t.recvByType {
		if n > 0 {
			if ws.RecvByType == nil {
				ws.RecvByType = make(map[string]int64)
			}
			ws.RecvByType[frameName(byte(typ))] = n
		}
	}
	return ws
}

// wireStatsShard converts a shard's shipped-back TELEMETRY tallies.
func wireStatsShard(wt *wireTelemetry) WireStats {
	return WireStats{
		Endpoint:   "shard",
		Shard:      wt.Shard,
		SentFrames: wt.SentFrames,
		RecvFrames: wt.RecvFrames,
		SentBytes:  wt.SentBytes,
		RecvBytes:  wt.RecvBytes,
		SentByType: wt.SentByType,
		RecvByType: wt.RecvByType,
		Flushes:    wt.Flushes,
		FlushNS:    wt.FlushNS,
		Faults:     wt.Faults,
	}
}
