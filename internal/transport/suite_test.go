package transport_test

// The differential suite: every workload × shard count × seed must
// produce byte-identical TraceSink output — and identical
// rounds/messages/merged outputs — on the TCP backend and the
// in-process engines. Shards run as goroutines here so the whole wire
// protocol sits under the race detector; real-process coverage is in
// process_test.go. Failure-injection tests (shard death mid-round,
// shard stall) assert the coordinator degrades to a clean
// shard-attributed error within its timeout, never a hang.

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"almostmix/internal/congest"
	"almostmix/internal/randomwalk"
	"almostmix/internal/rngutil"
	"almostmix/internal/transport"
	"almostmix/internal/transport/workloads"
)

// suiteSpecs is one spec per workload, sized for seconds-long runs.
func suiteSpecs(seed uint64) []transport.Spec {
	return []transport.Spec{
		{Workload: "ticker", Graph: "ring", N: 12, Steps: 5, SrcSeed: seed + 90},
		{Workload: "bfs", Graph: "rr", N: 32, D: 4, Root: 3, Seed: seed, SrcSeed: seed + 50},
		{Workload: "broadcast", Graph: "ringlattice", N: 24, D: 2, Root: 5, Value: 42, SrcSeed: seed + 60},
		{Workload: "ghs", Graph: "rr", N: 24, D: 4, Seed: seed, SrcSeed: seed + 70, WeightSeed: seed + 7},
		{Workload: "walks", Graph: "rr", N: 32, D: 4, K: 1, Steps: 8, Seed: seed, SrcSeed: seed + 80},
	}
}

// goroutineSpawner runs each shard as an in-process goroutine speaking
// the real TCP loopback protocol.
func goroutineSpawner(cfgFor func(shard int) transport.ShardConfig) transport.SpawnFunc {
	return func(shard int, addr string) (transport.ShardHandle, error) {
		done := make(chan error, 1)
		go func() {
			conn, err := transport.DialShard(addr, 5*time.Second)
			if err != nil {
				done <- err
				return
			}
			var cfg transport.ShardConfig
			if cfgFor != nil {
				cfg = cfgFor(shard)
			}
			done <- transport.ServeShard(conn, shard, cfg)
		}()
		return transport.ShardHandle{
			Wait: func() error { return <-done },
			Kill: func() {},
		}, nil
	}
}

// traceRun executes spec on tr with a labeled TraceSink and returns the
// sink's JSON bytes alongside the result.
func traceRun(t *testing.T, tr transport.Transport, spec transport.Spec, label string) ([]byte, transport.Result) {
	t.Helper()
	sink := congest.NewTraceSink()
	res, err := tr.Run(spec, transport.Options{Probe: sink.Label(label)})
	if err != nil {
		t.Fatalf("%s: %s run: %v", spec.Workload, tr.Name(), err)
	}
	var buf bytes.Buffer
	if err := sink.WriteJSON(&buf); err != nil {
		t.Fatalf("%s: encoding trace: %v", spec.Workload, err)
	}
	return buf.Bytes(), res
}

func sameResult(t *testing.T, what string, want, got transport.Result) {
	t.Helper()
	if want.Rounds != got.Rounds || want.Messages != got.Messages || !reflect.DeepEqual(want.Output, got.Output) {
		t.Errorf("%s: result diverged: sequential %+v, got %+v", what, want, got)
	}
}

func TestDifferentialSuite(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		for _, spec := range suiteSpecs(seed) {
			t.Run(fmt.Sprintf("%s/seed%d", spec.Workload, seed), func(t *testing.T) {
				t.Parallel()
				want, wantRes := traceRun(t, transport.Proc{Workers: 1}, spec, "diff")
				for _, shards := range []int{1, 2, 4} {
					tcp := transport.TCP{Shards: shards, Timeout: 30 * time.Second, Spawn: goroutineSpawner(nil)}
					got, gotRes := traceRun(t, tcp, spec, "diff")
					if !bytes.Equal(want, got) {
						t.Errorf("shards=%d: trace bytes diverge from the sequential engine (%d vs %d bytes)",
							shards, len(want), len(got))
					}
					sameResult(t, fmt.Sprintf("shards=%d", shards), wantRes, gotRes)
				}
				_, parRes := traceRun(t, transport.Proc{Workers: 4}, spec, "diff")
				sameResult(t, "proc workers=4", wantRes, parRes)
			})
		}
	}
}

// TestProcMatchesDirectEngine pins the cmd-level refactor: routing the
// walks workload through the Transport interface must reproduce the
// direct RunNetworkObserved call bit for bit, trace included.
func TestProcMatchesDirectEngine(t *testing.T) {
	spec := transport.Spec{Workload: "walks", Graph: "rr", N: 32, D: 4, K: 2, Steps: 8, Seed: 7, SrcSeed: 107}
	got, res := traceRun(t, transport.Proc{Workers: 1}, spec, "direct")

	g, err := transport.BuildGraph(spec)
	if err != nil {
		t.Fatal(err)
	}
	sink := congest.NewTraceSink()
	direct, err := randomwalk.RunNetworkObserved(g, randomwalk.UniformCountTimesDegree(g, spec.K),
		spec.Steps, rngutil.NewSource(spec.SrcSeed), 1, sink.Label("direct"), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sink.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf.Bytes()) {
		t.Error("transport proc trace diverges from the direct engine call")
	}
	arrived := 0
	for _, c := range direct.ArrivedAt {
		arrived += c
	}
	if res.Rounds != direct.Rounds || res.Messages != direct.Messages ||
		res.Output.(workloads.WalksOutput).Arrived != arrived {
		t.Errorf("transport proc result %+v diverges from direct engine (rounds=%d messages=%d arrived=%d)",
			res, direct.Rounds, direct.Messages, arrived)
	}
}

func TestShardDeathMidRound(t *testing.T) {
	spec := suiteSpecs(1)[4] // walks: plenty of rounds to die in
	tcp := transport.TCP{
		Shards:  2,
		Timeout: 5 * time.Second,
		Spawn: goroutineSpawner(func(shard int) transport.ShardConfig {
			if shard == 1 {
				return transport.ShardConfig{FailAtRound: 3}
			}
			return transport.ShardConfig{}
		}),
	}
	start := time.Now()
	_, err := tcp.Run(spec, transport.Options{})
	if err == nil {
		t.Fatal("shard death mid-round: run reported success")
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Errorf("error does not attribute the dead shard: %v", err)
	}
	// Attribution detail: the shard died at round 3's STEP, so it last
	// completed round 2 and the last frame it delivered was round 3's
	// DELIVERED reply.
	if !strings.Contains(err.Error(), "last completed round 2") {
		t.Errorf("error does not name the shard's last completed round: %v", err)
	}
	if !strings.Contains(err.Error(), "last frame DELIVERED") {
		t.Errorf("error does not name the shard's last frame: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("death took %v to surface, want well under the barrier timeout budget", elapsed)
	}
}

func TestShardStallHitsDeadline(t *testing.T) {
	spec := suiteSpecs(1)[4]
	tcp := transport.TCP{
		Shards:  2,
		Timeout: 1 * time.Second,
		Spawn: goroutineSpawner(func(shard int) transport.ShardConfig {
			if shard == 0 {
				return transport.ShardConfig{StallAtRound: 2}
			}
			return transport.ShardConfig{}
		}),
	}
	start := time.Now()
	_, err := tcp.Run(spec, transport.Options{})
	if err == nil {
		t.Fatal("stalled shard: run reported success")
	}
	var nerr net.Error
	if !strings.Contains(err.Error(), "shard 0") {
		t.Errorf("error does not attribute the stalled shard: %v", err)
	}
	// Attribution detail: the shard stalled at round 2's STEP after
	// answering round 2's DELIVER, so it last completed round 1 and hung
	// the coordinator in the step-wait barrier phase.
	if !strings.Contains(err.Error(), "last completed round 1") {
		t.Errorf("error does not name the shard's last completed round: %v", err)
	}
	if !strings.Contains(err.Error(), "last frame DELIVERED") {
		t.Errorf("error does not name the shard's last frame: %v", err)
	}
	if !strings.Contains(err.Error(), "phase step-wait") {
		t.Errorf("error does not name the barrier phase: %v", err)
	}
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Errorf("stall surfaced as %v, want a deadline (timeout) error", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("stall took %v to surface, want a few timeout periods at most", elapsed)
	}
}

func TestDialShardRetriesUntilListen(t *testing.T) {
	// Reserve an address, close it, and only start the real listener
	// after the first dial attempts have failed.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	ready := make(chan net.Listener, 1)
	go func() {
		time.Sleep(300 * time.Millisecond)
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			ready <- nil
			return
		}
		ready <- ln
		conn, err := ln.Accept()
		if err == nil {
			conn.Close()
		}
	}()
	conn, err := transport.DialShard(addr, 10*time.Second)
	if err != nil {
		t.Fatalf("dial with retry: %v", err)
	}
	conn.Close()
	if ln := <-ready; ln != nil {
		ln.Close()
	}

	if _, err := transport.DialShard(addr, 300*time.Millisecond); err == nil {
		t.Error("dial against a dead address: no error after budget")
	}
}

func TestTCPValidatesShardCount(t *testing.T) {
	spec := suiteSpecs(1)[0] // ticker on ring n=12
	for _, shards := range []int{0, -1, 13} {
		tcp := transport.TCP{Shards: shards, Spawn: goroutineSpawner(nil)}
		if _, err := tcp.Run(spec, transport.Options{}); err == nil {
			t.Errorf("shards=%d accepted for n=12", shards)
		}
	}
}

func TestLookupUnknownWorkload(t *testing.T) {
	_, err := transport.Proc{}.Run(transport.Spec{Workload: "nope", Graph: "ring", N: 8}, transport.Options{})
	if err == nil || !strings.Contains(err.Error(), "known:") {
		t.Errorf("unknown workload: err = %v, want the known-names list", err)
	}
}
