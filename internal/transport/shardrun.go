package transport

// The shard side of the TCP backend: dial the coordinator with backoff,
// replay the spec into a congest.Shard over nodes [i·n/k, (i+1)·n/k),
// then answer barrier frames until the coordinator says FINISH (or
// closes the connection). cmd/tcpnode is a thin wrapper around
// DialShard + ServeShard; tests drive ServeShard directly on in-process
// connections to put the whole protocol under the race detector.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"almostmix/internal/congest"
	"almostmix/internal/faults"
	"almostmix/internal/flightrec"
)

// ShardConfig tunes a shard runtime beyond what the wire spec carries.
type ShardConfig struct {
	// FailAtRound > 0 makes the runtime drop its connection without
	// replying when it receives the STEP request of that round
	// (1-based) — the fault injection behind the coordinator's
	// shard-death-mid-round tests. 0 disables.
	FailAtRound int
	// StallAtRound > 0 makes the runtime stop replying (without closing
	// the connection) at that round's STEP, so the coordinator's read
	// deadline — not a connection error — has to surface the failure.
	StallAtRound int
	// Recorder is the shard's flight recorder. cmd/tcpnode passes one it
	// also dumps on panic/SIGTERM; when nil, ServeShard creates one
	// sized by the wire spec's flightrec field, so every shard records
	// either way and its dump ships back in the TELEMETRY frame.
	Recorder *flightrec.Recorder
}

// DialShard connects to the coordinator, retrying with doubling backoff
// (10ms up to 500ms per wait) until the budget runs out — the
// coordinator may still be between Listen and Accept, or the OS still
// scheduling sibling processes, when a shard starts dialing.
func DialShard(addr string, budget time.Duration) (net.Conn, error) {
	if budget <= 0 {
		budget = 10 * time.Second
	}
	deadline := time.Now().Add(budget)
	backoff := 10 * time.Millisecond
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Until(deadline))
		if err == nil {
			return conn, nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("transport: dialing coordinator %s: %w", addr, err)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
}

// ServeShard runs one shard endpoint over an established connection:
// handshake, spec replay, then the barrier loop. It returns nil on a
// graceful end (FINISH answered, or the coordinator closed the
// connection at a frame boundary before FINISH — how error-path
// teardown looks from the shard side).
func ServeShard(conn net.Conn, shard int, cfg ShardConfig) error {
	defer conn.Close()
	fc := newFrameConn(conn)
	if err := fc.write(frameHello, appendHello(nil, shard)); err != nil {
		return err
	}
	if err := fc.flush(); err != nil {
		return err
	}
	typ, body, err := fc.read()
	if err != nil {
		return fmt.Errorf("transport: shard %d: reading spec: %w", shard, err)
	}
	if typ != frameSpec {
		return fmt.Errorf("transport: shard %d: frame type %d, want SPEC", shard, typ)
	}
	var ws wireSpec
	if err := json.Unmarshal(body, &ws); err != nil {
		return fmt.Errorf("transport: shard %d: decoding spec: %w", shard, err)
	}
	if ws.Version != wireVersion {
		return fmt.Errorf("transport: shard %d: protocol version mismatch: coordinator %d, this build %d", shard, ws.Version, wireVersion)
	}
	if shard < 0 || ws.Shards < 1 || shard >= ws.Shards {
		return fmt.Errorf("transport: shard index %d outside layout of %d shards", shard, ws.Shards)
	}
	wl, err := Lookup(ws.Spec.Workload)
	if err != nil {
		return err
	}
	if wl.Encode == nil || wl.Decode == nil {
		return fmt.Errorf("transport: workload %q has no payload codec, cannot run over tcp", ws.Spec.Workload)
	}
	inst, err := wl.Build(ws.Spec)
	if err != nil {
		return err
	}
	lo, hi := shardBounds(inst.Graph.N(), ws.Shards, shard)
	net := congest.NewNetwork(inst.Graph, inst.Programs, inst.Source)
	if inst.Faults != nil {
		// The replica's plan replays crash/sever schedules from the spec;
		// probabilistic fates arrive in FATES windows (AttachTable below).
		net.SetFaults(inst.Faults)
	}
	s, err := congest.NewShard(net, lo, hi)
	if err != nil {
		return err
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = flightrec.New("shard", shard, ws.FlightRec)
	}
	r := &shardRuntime{fc: fc, shard: shard, s: s, wl: wl, inst: inst, cfg: cfg, rec: rec}
	return r.loop()
}

// shardRuntime is the per-run state of one ServeShard call. Reply
// scratch buffers are reused across rounds so a steady round allocates
// only what payload encoding forces.
type shardRuntime struct {
	fc    *frameConn
	shard int
	s     *congest.Shard
	wl    Workload
	inst  *Instance
	cfg   ShardConfig
	rec   *flightrec.Recorder

	steps   int
	reply   stepReply
	prof    deliveredReply
	inSends []wireSend
	sendBuf []byte
	body    []byte
}

func (r *shardRuntime) loop() error {
	for {
		typ, body, err := r.fc.read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				// Coordinator closed at a frame boundary: teardown.
				return nil
			}
			r.rec.Record(flightrec.KindError, "", r.steps, -1, 0, err.Error())
			return fmt.Errorf("transport: shard %d: read: %w", r.shard, err)
		}
		r.rec.Record(flightrec.KindFrameRecv, frameName(typ), r.steps, -1, len(body), "")
		switch typ {
		case frameInit:
			r.s.Init()
			err = r.respondStep(frameInitAck, 0, faults.Counts{})
		case frameFates:
			err = r.attachFates(body)
		case frameDeliver:
			err = r.deliver(body)
		case frameStep:
			r.steps++
			if r.cfg.FailAtRound > 0 && r.steps >= r.cfg.FailAtRound {
				r.rec.Record(flightrec.KindError, "STEP", r.steps, -1, 0, "induced shard death")
				return errShardStopped
			}
			if r.cfg.StallAtRound > 0 && r.steps >= r.cfg.StallAtRound {
				select {} // hold the connection open, never reply
			}
			active := r.s.Step()
			// FaultCounts drains the round just stepped — the same point
			// the in-process engines drain, so counts for a deliver phase
			// aborted by a quiet exit are discarded identically.
			err = r.respondStep(frameStepped, active, r.s.FaultCounts())
		case frameFinish:
			if err := r.finish(); err != nil {
				return err
			}
			return nil
		default:
			return fmt.Errorf("transport: shard %d: unexpected frame type %d", r.shard, typ)
		}
		if err != nil {
			return err
		}
	}
}

// attachFates answers a FATES frame: parse the fate-table window and
// attach it to the replica's plan, so MessageFate at the canonical
// delivery point answers from the coordinator's authoritative rolls.
func (r *shardRuntime) attachFates(body []byte) error {
	if r.inst.Faults == nil {
		return fmt.Errorf("transport: shard %d: FATES frame without a fault plan", r.shard)
	}
	t, err := faults.ParseFateTable(body)
	if err != nil {
		return fmt.Errorf("transport: shard %d: %w", r.shard, err)
	}
	r.inst.Faults.AttachTable(t)
	return nil
}

// respondStep answers INIT or STEP: drain owned events in canonical
// order, enumerate the owned sends that leave the shard, report the
// cumulative halt count and the round's drained fault counts.
func (r *shardRuntime) respondStep(typ byte, active int, fc faults.Counts) error {
	r.reply.active = active
	r.reply.faults = fc
	r.reply.halted = r.s.HaltedCount()
	r.reply.events = r.reply.events[:0]
	r.s.DrainEvents(
		func(node, round int, name string) {
			r.reply.events = append(r.reply.events, wireEvent{node: node, round: round, name: name})
		},
		func(node, round int) {
			r.reply.events = append(r.reply.events, wireEvent{halt: true, node: node, round: round})
		},
	)
	r.reply.sends = r.reply.sends[:0]
	r.sendBuf = r.sendBuf[:0]
	var encErr error
	r.s.ExternalSends(func(dst, dstPort int, payload congest.Message) {
		if encErr != nil {
			return
		}
		off := len(r.sendBuf)
		buf, err := r.wl.Encode(r.sendBuf, payload)
		if err != nil {
			encErr = err
			return
		}
		r.sendBuf = buf
		// If append regrew sendBuf, earlier payload slices still point at
		// the old backing array — stale storage, correct bytes.
		r.reply.sends = append(r.reply.sends, wireSend{dst: dst, port: dstPort, payload: r.sendBuf[off:]})
	})
	if encErr != nil {
		return fmt.Errorf("transport: shard %d: encoding send: %w", r.shard, encErr)
	}
	r.body = appendStepReply(r.body[:0], &r.reply)
	return r.send(typ)
}

// deliver answers DELIVER: inject the relayed batch, run the canonical
// delivery scan, report the per-node inbox profile.
func (r *shardRuntime) deliver(body []byte) error {
	c := cursor{b: body}
	r.inSends = c.sends(r.inSends[:0])
	if err := c.done("deliver batch"); err != nil {
		return fmt.Errorf("transport: shard %d: %w", r.shard, err)
	}
	for _, s := range r.inSends {
		m, err := r.wl.Decode(s.payload)
		if err != nil {
			return fmt.Errorf("transport: shard %d: decoding relayed payload: %w", r.shard, err)
		}
		if err := r.s.Inject(s.dst, s.port, m); err != nil {
			return err
		}
	}
	r.prof.delivered = r.s.Deliver()
	r.prof.pending = r.s.PendingDelayed()
	r.prof.sizes = r.prof.sizes[:0]
	r.prof.ports = r.prof.ports[:0]
	lo, hi := r.s.Nodes()
	for u := lo; u < hi; u++ {
		inbox := r.s.Inbox(u)
		r.prof.sizes = append(r.prof.sizes, len(inbox))
		for _, in := range inbox {
			r.prof.ports = append(r.prof.ports, in.Port)
		}
	}
	r.body = appendDeliveredReply(r.body[:0], &r.prof)
	return r.send(frameDelivered)
}

// finish answers FINISH with the owned message count and Finish blob,
// then ships the shard's wire telemetry — its side of the frame/byte
// tallies plus its flight-recorder dump — in a final TELEMETRY frame,
// so the coordinator's registry and -obsout file cover both ends of
// the connection. The tallies are snapshotted after FINAL is flushed
// and therefore count every protocol frame except TELEMETRY itself.
func (r *shardRuntime) finish() error {
	lo, hi := r.s.Nodes()
	f := finalReply{messages: r.s.Messages()}
	if r.inst.Finish != nil {
		f.result = r.inst.Finish(lo, hi)
	}
	r.body = appendFinalReply(r.body[:0], &f)
	if err := r.send(frameFinal); err != nil {
		return err
	}
	wt := telemetryFromTally(r.shard, &r.fc.tally, r.rec.Dump(flightrec.ReasonFinish))
	if r.inst.Faults != nil {
		wt.Faults = r.inst.Faults.Totals()
	}
	body, err := json.Marshal(wt)
	if err != nil {
		return fmt.Errorf("transport: shard %d: encoding telemetry: %w", r.shard, err)
	}
	r.body = append(r.body[:0], body...)
	return r.send(frameTelemetry)
}

func (r *shardRuntime) send(typ byte) error {
	if err := r.fc.write(typ, r.body); err != nil {
		return fmt.Errorf("transport: shard %d: write: %w", r.shard, err)
	}
	if err := r.fc.flush(); err != nil {
		return fmt.Errorf("transport: shard %d: flush: %w", r.shard, err)
	}
	r.rec.Record(flightrec.KindFrameSent, frameName(typ), r.steps, -1, len(r.body), "")
	return nil
}
