package transport

// Length-prefixed framing for the TCP backend. One frame is
//
//	[4-byte big-endian length][1-byte type][length-1 payload bytes]
//
// where length counts the type byte plus the payload, so a frame is
// never empty and a reader can reject zero or absurd lengths before
// allocating. The framing is deliberately minimal — all structure lives
// in the typed payload encodings (proto.go) — and is fuzzed with a
// committed corpus (frame_test.go): truncated prefixes, oversized
// lengths and split reads must all surface as errors, never as panics
// or hangs.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// Frame types. The coordinator initiates every phase; shards only ever
// respond, so each request type pairs with the response below it.
const (
	frameHello     byte = 1 + iota // shard → coord: version, shard index
	frameSpec                      // coord → shard: JSON wireSpec
	frameInit                      // coord → shard: run Init (round 0)
	frameInitAck                   // shard → coord: round-0 events, halted, external sends
	frameDeliver                   // coord → shard: relayed cross-shard messages
	frameDelivered                 // shard → coord: delivered count, per-node inbox profile
	frameStep                      // coord → shard: run one Step
	frameStepped                   // shard → coord: active, events, halted, external sends
	frameFinish                    // coord → shard: run over, harvest
	frameFinal                     // shard → coord: message count, Finish blob
	frameTelemetry                 // shard → coord: JSON wireTelemetry (tallies + flight dump)
	frameFates                     // coord → shard: fate-table window (faults.AppendFateTable)

	// frameTypeCount sizes per-type tally arrays indexed by frame type.
	frameTypeCount
)

// frameNames maps frame types to the stable names used in telemetry
// exports, flight-recorder events, and attributed errors.
var frameNames = [frameTypeCount]string{
	frameHello:     "HELLO",
	frameSpec:      "SPEC",
	frameInit:      "INIT",
	frameInitAck:   "INITACK",
	frameDeliver:   "DELIVER",
	frameDelivered: "DELIVERED",
	frameStep:      "STEP",
	frameStepped:   "STEPPED",
	frameFinish:    "FINISH",
	frameFinal:     "FINAL",
	frameTelemetry: "TELEMETRY",
	frameFates:     "FATES",
}

// frameName names a frame type for telemetry and error attribution;
// unknown types (and the zero "no frame yet" value) render as "none".
func frameName(typ byte) string {
	if int(typ) < len(frameNames) && frameNames[typ] != "" {
		return frameNames[typ]
	}
	return "none"
}

// wireVersion guards against coordinator/shard skew; bumped with any
// incompatible protocol or codec change. Version 2 added the mandatory
// TELEMETRY frame after FINAL and the flightrec field of the wire spec.
// Version 3 added faults over the wire: the spec's fault fields, FATES
// fate-table windows, per-round fault counts on STEPPED, the pending
// delayed count on DELIVERED, and the fault totals on TELEMETRY.
const wireVersion = 3

// maxFramePayload bounds a frame's payload. Generous — the largest
// legitimate frame is a DELIVER batch, linear in a shard's boundary
// cut — while still rejecting a corrupt or hostile length prefix long
// before a multi-gigabyte allocation.
const maxFramePayload = 16 << 20

// errFrameTooLarge is surfaced for oversized length prefixes, distinct
// from I/O errors so tests (and peers) can tell corruption from a
// dropped connection.
var errFrameTooLarge = errors.New("transport: frame exceeds size limit")

// appendFrame appends one encoded frame to buf.
func appendFrame(buf []byte, typ byte, payload []byte) ([]byte, error) {
	if len(payload) > maxFramePayload {
		return nil, fmt.Errorf("%w (%d bytes)", errFrameTooLarge, len(payload))
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)+1))
	buf = append(buf, typ)
	return append(buf, payload...), nil
}

// readFrame reads one frame, reusing buf for the payload when it fits.
// Truncated input surfaces as io.ErrUnexpectedEOF (io.EOF only at a
// clean frame boundary); oversized or zero lengths as errFrameTooLarge
// or a malformed-frame error.
func readFrame(r io.Reader, buf []byte) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, nil, err
	}
	length := binary.BigEndian.Uint32(hdr[:4])
	if length == 0 {
		return 0, nil, errors.New("transport: malformed frame: zero length")
	}
	if length > maxFramePayload+1 {
		return 0, nil, fmt.Errorf("%w (%d bytes)", errFrameTooLarge, length)
	}
	if _, err := io.ReadFull(r, hdr[4:5]); err != nil {
		return 0, nil, eofIsUnexpected(err)
	}
	typ = hdr[4]
	n := int(length) - 1
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, eofIsUnexpected(err)
	}
	return typ, payload, nil
}

// eofIsUnexpected maps a clean EOF mid-frame to io.ErrUnexpectedEOF:
// only an EOF before any header byte means the peer closed cleanly.
func eofIsUnexpected(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// connTally is the wire-telemetry counter block of one frameConn
// endpoint: directional frame/byte totals, per-frame-type breakdowns,
// and flush count/latency. It is plain int64s updated by the single
// goroutine that owns the connection — cheap enough to stay on
// unconditionally — and is snapshotted into tcpnet_* metrics and the
// -obsout document at run end.
type connTally struct {
	sentFrames int64
	recvFrames int64
	sentBytes  int64
	recvBytes  int64
	sentByType [frameTypeCount]int64
	recvByType [frameTypeCount]int64
	flushes    int64
	flushNS    int64
}

// frames and bytes aggregate both directions — the tallies the
// pre-telemetry tcpnet_frames_total/tcpnet_bytes_total counters export.
func (t *connTally) frames() int64 { return t.sentFrames + t.recvFrames }
func (t *connTally) bytes() int64  { return t.sentBytes + t.recvBytes }

// frameConn is one framed, buffered connection endpoint. Reads reuse a
// single payload buffer (valid until the next read); writes accumulate
// in the bufio writer until flush. It also tallies traffic for the
// tcpnet_* metrics (per frame type and direction, plus flush latency).
type frameConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	rbuf []byte
	wbuf []byte

	tally connTally
}

func newFrameConn(c net.Conn) *frameConn {
	return &frameConn{conn: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
}

// read reads the next frame; the returned payload is only valid until
// the next read call.
func (c *frameConn) read() (byte, []byte, error) {
	typ, payload, err := readFrame(c.r, c.rbuf)
	if err != nil {
		return 0, nil, err
	}
	if cap(payload) > cap(c.rbuf) {
		c.rbuf = payload[:cap(payload)]
	}
	c.tally.recvFrames++
	c.tally.recvBytes += int64(len(payload)) + 5
	if int(typ) < len(c.tally.recvByType) {
		c.tally.recvByType[typ]++
	}
	return typ, payload, nil
}

// write queues one frame; flush sends the queue.
func (c *frameConn) write(typ byte, payload []byte) error {
	buf, err := appendFrame(c.wbuf[:0], typ, payload)
	if err != nil {
		return err
	}
	c.wbuf = buf[:0]
	c.tally.sentFrames++
	c.tally.sentBytes += int64(len(buf))
	if int(typ) < len(c.tally.sentByType) {
		c.tally.sentByType[typ]++
	}
	_, err = c.w.Write(buf)
	return err
}

// flush sends the queued frames, timing the write-out for the
// tcpnet_flush_ns telemetry (one flush per barrier per peer, so the two
// clock reads sit far outside the per-message hot path).
func (c *frameConn) flush() error {
	t0 := time.Now()
	err := c.w.Flush()
	c.tally.flushes++
	c.tally.flushNS += time.Since(t0).Nanoseconds()
	return err
}
