package transport

// Length-prefixed framing for the TCP backend. One frame is
//
//	[4-byte big-endian length][1-byte type][length-1 payload bytes]
//
// where length counts the type byte plus the payload, so a frame is
// never empty and a reader can reject zero or absurd lengths before
// allocating. The framing is deliberately minimal — all structure lives
// in the typed payload encodings (proto.go) — and is fuzzed with a
// committed corpus (frame_test.go): truncated prefixes, oversized
// lengths and split reads must all surface as errors, never as panics
// or hangs.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
)

// Frame types. The coordinator initiates every phase; shards only ever
// respond, so each request type pairs with the response below it.
const (
	frameHello     byte = 1 + iota // shard → coord: version, shard index
	frameSpec                      // coord → shard: JSON wireSpec
	frameInit                      // coord → shard: run Init (round 0)
	frameInitAck                   // shard → coord: round-0 events, halted, external sends
	frameDeliver                   // coord → shard: relayed cross-shard messages
	frameDelivered                 // shard → coord: delivered count, per-node inbox profile
	frameStep                      // coord → shard: run one Step
	frameStepped                   // shard → coord: active, events, halted, external sends
	frameFinish                    // coord → shard: run over, harvest
	frameFinal                     // shard → coord: message count, Finish blob
)

// wireVersion guards against coordinator/shard skew; bumped with any
// incompatible protocol or codec change.
const wireVersion = 1

// maxFramePayload bounds a frame's payload. Generous — the largest
// legitimate frame is a DELIVER batch, linear in a shard's boundary
// cut — while still rejecting a corrupt or hostile length prefix long
// before a multi-gigabyte allocation.
const maxFramePayload = 16 << 20

// errFrameTooLarge is surfaced for oversized length prefixes, distinct
// from I/O errors so tests (and peers) can tell corruption from a
// dropped connection.
var errFrameTooLarge = errors.New("transport: frame exceeds size limit")

// appendFrame appends one encoded frame to buf.
func appendFrame(buf []byte, typ byte, payload []byte) ([]byte, error) {
	if len(payload) > maxFramePayload {
		return nil, fmt.Errorf("%w (%d bytes)", errFrameTooLarge, len(payload))
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)+1))
	buf = append(buf, typ)
	return append(buf, payload...), nil
}

// readFrame reads one frame, reusing buf for the payload when it fits.
// Truncated input surfaces as io.ErrUnexpectedEOF (io.EOF only at a
// clean frame boundary); oversized or zero lengths as errFrameTooLarge
// or a malformed-frame error.
func readFrame(r io.Reader, buf []byte) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, nil, err
	}
	length := binary.BigEndian.Uint32(hdr[:4])
	if length == 0 {
		return 0, nil, errors.New("transport: malformed frame: zero length")
	}
	if length > maxFramePayload+1 {
		return 0, nil, fmt.Errorf("%w (%d bytes)", errFrameTooLarge, length)
	}
	if _, err := io.ReadFull(r, hdr[4:5]); err != nil {
		return 0, nil, eofIsUnexpected(err)
	}
	typ = hdr[4]
	n := int(length) - 1
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, eofIsUnexpected(err)
	}
	return typ, payload, nil
}

// eofIsUnexpected maps a clean EOF mid-frame to io.ErrUnexpectedEOF:
// only an EOF before any header byte means the peer closed cleanly.
func eofIsUnexpected(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// frameConn is one framed, buffered connection endpoint. Reads reuse a
// single payload buffer (valid until the next read); writes accumulate
// in the bufio writer until flush. It also tallies traffic for the
// tcpnet_* metrics.
type frameConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	rbuf []byte
	wbuf []byte

	frames int64
	bytes  int64
}

func newFrameConn(c net.Conn) *frameConn {
	return &frameConn{conn: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
}

// read reads the next frame; the returned payload is only valid until
// the next read call.
func (c *frameConn) read() (byte, []byte, error) {
	typ, payload, err := readFrame(c.r, c.rbuf)
	if err != nil {
		return 0, nil, err
	}
	if cap(payload) > cap(c.rbuf) {
		c.rbuf = payload[:cap(payload)]
	}
	c.frames++
	c.bytes += int64(len(payload)) + 5
	return typ, payload, nil
}

// write queues one frame; flush sends the queue.
func (c *frameConn) write(typ byte, payload []byte) error {
	buf, err := appendFrame(c.wbuf[:0], typ, payload)
	if err != nil {
		return err
	}
	c.wbuf = buf[:0]
	c.frames++
	c.bytes += int64(len(buf))
	_, err = c.w.Write(buf)
	return err
}

func (c *frameConn) flush() error { return c.w.Flush() }
