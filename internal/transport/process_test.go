package transport_test

// Real-process coverage: the same parity and failure assertions as the
// goroutine-mode suite, but with cmd/tcpnode compiled and spawned as
// actual OS processes — the configuration -transport=tcp ships. One
// binary is built per test run; `make tcp-suite` runs this alongside
// the full goroutine-mode matrix under -race.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"almostmix/internal/transport"
)

func TestMain(m *testing.M) {
	os.Exit(func() int {
		defer func() {
			if tcpnodeDir != "" {
				os.RemoveAll(tcpnodeDir)
			}
		}()
		return m.Run()
	}())
}

var (
	tcpnodeDir string
	tcpnodeBin string
)

// buildTCPNode compiles cmd/tcpnode once per test binary.
func buildTCPNode(t *testing.T) string {
	t.Helper()
	if tcpnodeBin != "" {
		return tcpnodeBin
	}
	dir, err := os.MkdirTemp("", "tcpnode-test")
	if err != nil {
		t.Fatal(err)
	}
	tcpnodeDir = dir
	bin := filepath.Join(dir, "tcpnode")
	cmd := exec.Command("go", "build", "-o", bin, "almostmix/cmd/tcpnode")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building tcpnode: %v\n%s", err, out)
	}
	tcpnodeBin = bin
	return bin
}

func TestRealProcessParity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns real processes")
	}
	bin := buildTCPNode(t)
	for _, spec := range []transport.Spec{
		suiteSpecs(1)[4], // walks
		suiteSpecs(1)[3], // ghs
	} {
		t.Run(spec.Workload, func(t *testing.T) {
			want, wantRes := traceRun(t, transport.Proc{Workers: 1}, spec, "proc-vs-os")
			tcp := transport.TCP{Shards: 2, NodeBin: bin, Timeout: 60 * time.Second}
			got, gotRes := traceRun(t, tcp, spec, "proc-vs-os")
			if !bytes.Equal(want, got) {
				t.Errorf("real-process trace bytes diverge from the sequential engine (%d vs %d bytes)",
					len(want), len(got))
			}
			sameResult(t, "real-process", wantRes, gotRes)
		})
	}
}

func TestRealProcessShardDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns real processes")
	}
	bin := buildTCPNode(t)
	t.Setenv("TCPNODE_FAIL_SHARD", "1")
	t.Setenv("TCPNODE_FAIL_ROUND", "2")
	tcp := transport.TCP{Shards: 2, NodeBin: bin, Timeout: 10 * time.Second}
	start := time.Now()
	_, err := tcp.Run(suiteSpecs(1)[4], transport.Options{})
	if err == nil {
		t.Fatal("killed shard process: run reported success")
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Errorf("error does not attribute the dead shard: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 60*time.Second {
		t.Errorf("death took %v to surface", elapsed)
	}
}

func TestRealProcessMissingBinaryFailsFast(t *testing.T) {
	tcp := transport.TCP{Shards: 2, NodeBin: filepath.Join(t.TempDir(), "nope"), Timeout: 5 * time.Second}
	if _, err := tcp.Run(suiteSpecs(1)[0], transport.Options{}); err == nil {
		t.Fatal("missing node binary: run reported success")
	} else if !strings.Contains(err.Error(), "spawn shard") {
		t.Errorf("err = %v, want a spawn failure", err)
	}
}
