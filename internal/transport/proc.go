package transport

// Proc: the in-process Transport backend. It is a thin adapter — build
// the instance, hand it to the unchanged congest engines, harvest — so
// routing a binary through the Transport interface with Proc produces
// bit-identical results (and trace bytes) to calling the engines
// directly, at zero added steady-state allocation.

import (
	"errors"

	"almostmix/internal/congest"
)

// Proc runs workloads on the in-process CONGEST engines. Workers
// selects the engine exactly like congest.Network.SetWorkers: 1 (and,
// for convenience, 0) is the sequential reference engine, w > 1 the
// sharded parallel engine, w < 0 one worker per CPU.
type Proc struct {
	Workers int
}

// Name implements Transport.
func (Proc) Name() string { return "proc" }

// Run implements Transport.
func (p Proc) Run(spec Spec, opts Options) (Result, error) {
	wl, err := Lookup(spec.Workload)
	if err != nil {
		return Result{}, err
	}
	inst, err := wl.Build(spec)
	if err != nil {
		return Result{}, err
	}
	workers := p.Workers
	if workers == 0 {
		workers = 1
	}
	net := congest.NewNetwork(inst.Graph, inst.Programs, inst.Source).
		SetWorkers(workers).
		SetProbe(opts.Probe).
		SetMetrics(opts.Metrics).
		SetFaults(inst.Faults)
	var rounds int
	if inst.Quiet {
		rounds, err = net.RunUntilQuiet(inst.MaxRounds)
	} else {
		rounds, err = net.Run(inst.MaxRounds)
	}
	// A round-limit exit still harvests: fault-tolerant retry drivers
	// inspect the partial output (and totals) of a budget-exhausted
	// attempt, exactly as the in-process drivers read program state after
	// tolerating ErrRoundLimit. Other errors return nothing.
	if err != nil && !errors.Is(err, congest.ErrRoundLimit) {
		return Result{}, err
	}
	res := Result{Rounds: rounds, Messages: net.Messages()}
	if inst.Faults != nil {
		res.Faults = inst.Faults.Totals()
	}
	if inst.Finish != nil && inst.Merge != nil {
		out, merr := inst.Merge(inst.Graph, [][]byte{inst.Finish(0, inst.Graph.N())})
		if merr != nil {
			return Result{}, merr
		}
		res.Output = out
	}
	return res, err
}
