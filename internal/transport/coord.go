package transport

// The TCP backend's coordinator: it listens on loopback (or any
// host:port), spawns one cmd/tcpnode process per shard, and drives the
// engine's round structure as wire barriers:
//
//	HELLO/SPEC    handshake: version + shard index, replayable spec
//	INIT→INITACK  round 0: Init on every shard, drain its events/sends
//	per round:
//	  DELIVER→DELIVERED   relay cross-shard messages, build inboxes
//	  (quiet check — same position as the in-process engines)
//	  STEP→STEPPED        run programs, drain events and new sends
//	FINISH→FINAL  harvest message counts and workload outputs
//	←TELEMETRY    each shard ships its wire tallies + flight dump back
//
// The two barriers per round replicate the sequential engine's phase
// ordering exactly — in particular the quiet check sits between deliver
// and step, before the round counter advances — so the probe stream the
// coordinator synthesizes (marks/halts in node order, then one
// RoundEnd rebuilt from the shards' inbox profiles) is byte-identical
// to a sequential in-process run of the same spec.
//
// Observability: the coordinator keeps an always-on flight recorder
// (internal/flightrec) plus per-shard last-completed-round/last-frame
// attribution, and — when a probe, metrics registry or -obsout file is
// attached — a per-round, per-shard barrier-phase timeline
// (accept/deliver-write/deliver-wait/step-write/step-wait/harvest)
// with a cross-shard skew series. Wall clocks NEVER enter the probe
// stream (trace files stay byte-identical to proc, the span_wall_ns
// discipline); they flow to the metrics registry, the TraceSink's
// transport-timeline table, and the merged ObsDoc written to ObsOut on
// every exit path including panic and SIGTERM.
//
// Failure policy: every read carries a deadline. A shard that dies
// mid-round (or wedges) surfaces as a clean shard-attributed error —
// naming the shard, its last completed round, the last frame it sent
// and the barrier phase — within one timeout, never a hang; remaining
// processes are killed on the way out.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"almostmix/internal/congest"
	"almostmix/internal/faults"
	"almostmix/internal/flightrec"
	"almostmix/internal/metrics"
)

// ShardHandle controls one spawned shard runtime.
type ShardHandle struct {
	// Wait blocks until the shard exits and reports its exit error.
	Wait func() error
	// Kill force-terminates the shard; safe after exit.
	Kill func()
}

// SpawnFunc starts the shard runtime for one shard index, told to dial
// the coordinator at addr. The default spawner execs the NodeBin
// binary; tests substitute in-process goroutines to put the whole
// protocol under the race detector.
type SpawnFunc func(shard int, addr string) (ShardHandle, error)

// TCP runs workloads across real processes over TCP. The zero value is
// not usable: Shards and (unless Spawn is set) NodeBin are required.
type TCP struct {
	// Shards is the number of node processes (1 ≤ Shards ≤ spec nodes).
	Shards int
	// ListenAddr is the coordinator's listen address, default
	// "127.0.0.1:0" (loopback, kernel-assigned port).
	ListenAddr string
	// NodeBin is the tcpnode binary the default spawner execs.
	NodeBin string
	// Timeout bounds every wire barrier (accept, per-frame read, flush)
	// and the post-run process wait; default 60s.
	Timeout time.Duration
	// Spawn overrides process spawning (tests); nil execs NodeBin.
	Spawn SpawnFunc
	// ObsOut, when set, is the path the merged observability document
	// (ObsDoc: both sides' flight recorders, wire tallies, barrier
	// timeline, round skew) is written to on every exit — clean finish,
	// shard death, barrier deadline, panic, SIGTERM.
	ObsOut string
	// FlightRecCap sizes the flight-recorder rings on the coordinator
	// and (via the wire spec) on every shard; 0 selects
	// flightrec.DefaultCapacity.
	FlightRecCap int
	// FlightRecOut, when set, makes the default spawner hand each
	// tcpnode process -flightrec <FlightRecOut>.shard<i>.json, so a
	// shard that dies leaves its own dump on disk even when the
	// TELEMETRY ship-back never happens.
	FlightRecOut string
}

// Name implements Transport.
func (TCP) Name() string { return "tcp" }

func (t TCP) timeout() time.Duration {
	if t.Timeout > 0 {
		return t.Timeout
	}
	return 60 * time.Second
}

// Run implements Transport.
func (t TCP) Run(spec Spec, opts Options) (Result, error) {
	wl, err := Lookup(spec.Workload)
	if err != nil {
		return Result{}, err
	}
	inst, err := wl.Build(spec)
	if err != nil {
		return Result{}, err
	}
	if wl.Encode == nil || wl.Decode == nil {
		return Result{}, fmt.Errorf("transport: workload %q has no payload codec, cannot run over tcp", spec.Workload)
	}
	n := inst.Graph.N()
	if t.Shards < 1 || t.Shards > n {
		return Result{}, fmt.Errorf("transport: %d shards for %d nodes (need 1 ≤ shards ≤ n)", t.Shards, n)
	}
	c := &coordinator{
		tcp:      t,
		spec:     spec,
		inst:     inst,
		opts:     opts,
		plan:     inst.Faults,
		fatesEnd: 1,
	}
	return c.run()
}

// shardError attributes a barrier failure to one shard: which shard,
// which barrier phase, the last round that shard completed and the
// last frame type it successfully sent. It wraps the underlying error
// (a net.Error deadline for stalls, a connection error for deaths) so
// errors.As classification keeps working through it.
type shardError struct {
	shard     int
	what      string // "read", "write", "flush"
	phase     string
	lastRound int
	lastFrame string
	err       error
}

func (e *shardError) Error() string {
	return fmt.Sprintf("transport: shard %d: %s: %v (phase %s, last completed round %d, last frame %s)",
		e.shard, e.what, e.err, e.phase, e.lastRound, e.lastFrame)
}

func (e *shardError) Unwrap() error { return e.err }

// classifyReason maps a run error to a flight-recorder dump reason: a
// deadline means a stalled shard hit the barrier timeout, a shard-
// attributed connection error means the shard died, anything else is a
// generic error; nil is a clean finish.
func classifyReason(err error) string {
	if err == nil {
		return flightrec.ReasonFinish
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return flightrec.ReasonBarrierDeadline
	}
	var se *shardError
	if errors.As(err, &se) {
		return flightrec.ReasonShardDeath
	}
	return flightrec.ReasonError
}

// obsInstruments are the coordinator's telemetry histograms; all nil
// (no-op) without a metrics registry.
type obsInstruments struct {
	roundFrames *metrics.Histogram // frames per round, both directions
	roundBytes  *metrics.Histogram // bytes per round, both directions
	flushNS     *metrics.Histogram // per-flush write-out latency
	skewNS      *metrics.Histogram // per-round cross-shard step skew
	deliverWait *metrics.Histogram // per-shard deliver-barrier read wait
	stepWait    *metrics.Histogram // per-shard step-barrier read wait
}

// coordinator is the per-run state of a TCP backend execution.
type coordinator struct {
	tcp  TCP
	spec Spec
	inst *Instance
	opts Options

	conns   []*frameConn
	handles []ShardHandle
	bounds  []int // bounds[i], bounds[i+1] = shard i's node range

	rounds  int
	halted  int
	relayed int64

	// Fault-over-wire state: the coordinator's authoritative plan (the
	// instance's, identical to every replica's) and the exclusive end of
	// the fate-table window shipped so far. The coordinator never
	// delivers locally — its plan only builds FATES windows and
	// accumulates the per-round counts the STEPPED replies return.
	plan     *faults.Plan
	fatesEnd int
	// Fault counters, registered by metricsStart when a plan and a
	// registry are both attached; nil otherwise.
	fcDropped, fcDuplicated, fcDelayed, fcCrashed *metrics.Counter
	// pending[i] holds the cross-shard messages to relay to shard i in
	// the next DELIVER, payload bytes owned by pendingBuf.
	pending    [][]wireSend
	pendingBuf [][]byte

	// Always-on attribution state: the flight recorder ring plus, per
	// shard, the last round it completed (STEPPED received) and the
	// last frame type it successfully delivered to us.
	rec        *flightrec.Recorder
	shardRound []int
	lastType   []byte
	phase      string
	phaseRound int

	// Timeline/skew accumulation and instruments, active when a probe
	// sink, metrics registry or ObsOut is attached.
	obsOn      bool
	tsink      timelineSink
	timeline   []congest.TimelineRow
	skew       []RoundSkew
	shardTel   []*wireTelemetry
	prevFrames int64
	prevBytes  int64
	obs        obsInstruments

	// Probe scratch, mirroring congest's probeState.
	slots      *congest.SlotTable
	inboxSizes []int
	edgeLoad   []int64
	touched    []int
	roundRec   congest.RoundRecord
}

func (c *coordinator) run() (res Result, err error) {
	t0 := time.Now()
	addr := c.tcp.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return Result{}, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	defer ln.Close()

	k := c.tcp.Shards
	n := c.inst.Graph.N()
	c.bounds = make([]int, k+1)
	for i := 0; i <= k; i++ {
		c.bounds[i] = i * n / k
	}
	c.pending = make([][]wireSend, k)
	c.pendingBuf = make([][]byte, k)
	c.obsInit(k)

	defer func() {
		for _, fc := range c.conns {
			if fc != nil {
				fc.conn.Close()
			}
		}
		c.reap(err != nil)
	}()

	if c.tcp.ObsOut != "" {
		// Crash-safe epilogue: a panic inside the protocol (or a SIGTERM
		// from outside) still leaves an attribution document behind.
		defer func() {
			if p := recover(); p != nil {
				c.rec.Record(flightrec.KindPanic, "", c.phaseRound, -1, 0, fmt.Sprint(p))
				if werr := c.writeObs(flightrec.ReasonPanic, fmt.Errorf("panic: %v", p)); werr != nil {
					fmt.Fprintln(os.Stderr, "transport:", werr)
				}
				panic(p)
			}
		}()
		stop := c.watchSigterm()
		defer stop()
	}

	res, err = func() (Result, error) {
		spawn := c.tcp.Spawn
		if spawn == nil {
			spawn = c.execSpawner()
		}
		for i := 0; i < k; i++ {
			h, err := spawn(i, ln.Addr().String())
			if err != nil {
				return Result{}, fmt.Errorf("transport: spawn shard %d: %w", i, err)
			}
			c.handles = append(c.handles, h)
		}
		if err := c.accept(ln); err != nil {
			return Result{}, err
		}
		if err := c.sendSpec(); err != nil {
			return Result{}, err
		}
		return c.drive()
	}()

	// Observability epilogue on every path, like the engines' finish().
	if p := c.opts.Probe; p != nil {
		p.RunEnd(c.rounds, err)
	}
	if c.tsink != nil {
		c.tsink.AddTimeline(c.timeline)
	}
	if reg := c.opts.Metrics; reg != nil {
		c.metricsEnd(reg, time.Since(t0))
	}
	if c.tcp.ObsOut != "" {
		if werr := c.writeObs(classifyReason(err), err); werr != nil {
			if err == nil {
				err = werr
			} else {
				fmt.Fprintln(os.Stderr, "transport:", werr)
			}
		}
	}
	// res is the zero Result on every error path except a harvested
	// round-limit exit, which carries the partial result alongside the
	// wrapped congest.ErrRoundLimit.
	return res, err
}

// obsInit builds the per-run observability state: the always-on pieces
// (flight recorder, per-shard attribution) plus — when any consumer is
// attached — the timeline sink hookup and the tcpnet_* instruments.
func (c *coordinator) obsInit(k int) {
	c.rec = flightrec.New("coord", -1, c.tcp.FlightRecCap)
	c.shardRound = make([]int, k)
	c.lastType = make([]byte, k)
	c.shardTel = make([]*wireTelemetry, k)
	c.tsink, _ = c.opts.Probe.(timelineSink)
	c.obsOn = c.tcp.ObsOut != "" || c.tsink != nil || c.opts.Metrics != nil
	if reg := c.opts.Metrics; reg != nil {
		c.obs = obsInstruments{
			roundFrames: reg.Histogram("tcpnet_round_frames", metrics.PowersOf2(0, 20)),
			roundBytes:  reg.Histogram("tcpnet_round_bytes", metrics.PowersOf2(4, 30)),
			flushNS:     reg.Histogram("tcpnet_flush_ns", metrics.WallBuckets()),
			skewNS:      reg.Histogram("tcpnet_round_skew_ns", metrics.WallBuckets()),
			deliverWait: reg.Histogram("tcpnet_deliver_wait_ns", metrics.WallBuckets()),
			stepWait:    reg.Histogram("tcpnet_step_wait_ns", metrics.WallBuckets()),
		}
	}
}

// phaseStart marks the coordinator's entry into one barrier phase for
// round attribution; the transition lands in the flight recorder.
func (c *coordinator) phaseStart(phase string, round int) {
	c.phase, c.phaseRound = phase, round
	c.rec.Record(flightrec.KindBarrier, "", round, -1, 0, phase)
}

// notePhase attributes ns of coordinator wall time in the current phase
// to one shard: a timeline row, plus the matching wait histogram.
func (c *coordinator) notePhase(shard int, ns int64) {
	switch c.phase {
	case "deliver-wait":
		c.obs.deliverWait.Observe(ns)
	case "step-wait":
		c.obs.stepWait.Observe(ns)
	}
	if c.obsOn {
		c.timeline = append(c.timeline, congest.TimelineRow{
			Round: c.phaseRound, Shard: shard, Phase: c.phase, WallNS: ns,
		})
	}
}

// shardFail records a barrier failure against shard i and wraps it with
// the attribution the tests (and the obs document) key on.
func (c *coordinator) shardFail(i int, what string, err error) error {
	kind := flightrec.KindError
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		kind = flightrec.KindTimeout
	}
	c.rec.Record(kind, frameName(c.lastType[i]), c.phaseRound, i, 0, err.Error())
	return &shardError{
		shard:     i,
		what:      what,
		phase:     c.phase,
		lastRound: c.shardRound[i],
		lastFrame: frameName(c.lastType[i]),
		err:       err,
	}
}

// execSpawner is the default SpawnFunc: exec the tcpnode binary with
// the shard index and coordinator address, stderr passed through.
func (c *coordinator) execSpawner() SpawnFunc {
	bin := c.tcp.NodeBin
	flightOut := c.tcp.FlightRecOut
	return func(shard int, addr string) (ShardHandle, error) {
		if bin == "" {
			return ShardHandle{}, errors.New("transport: TCP.NodeBin not set (path to the tcpnode binary)")
		}
		args := []string{"-connect", addr, "-shard", strconv.Itoa(shard)}
		if flightOut != "" {
			args = append(args, "-flightrec", fmt.Sprintf("%s.shard%d.json", flightOut, shard))
		}
		cmd := exec.Command(bin, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return ShardHandle{}, err
		}
		return ShardHandle{
			Wait: cmd.Wait,
			Kill: func() { cmd.Process.Kill() },
		}, nil
	}
}

// accept collects one HELLO-identified connection per shard, all under
// the barrier deadline.
func (c *coordinator) accept(ln net.Listener) error {
	c.phaseStart("accept", -1)
	deadline := time.Now().Add(c.tcp.timeout())
	c.conns = make([]*frameConn, c.tcp.Shards)
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	for got := 0; got < c.tcp.Shards; got++ {
		t0 := time.Now()
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("transport: accepting shard connections (%d/%d): %w", got, c.tcp.Shards, err)
		}
		fc := newFrameConn(conn)
		conn.SetReadDeadline(deadline)
		typ, body, err := fc.read()
		if err != nil || typ != frameHello {
			conn.Close()
			return fmt.Errorf("transport: shard handshake: type=%d err=%v", typ, err)
		}
		shard, err := parseHello(body)
		if err != nil {
			conn.Close()
			return err
		}
		if shard < 0 || shard >= c.tcp.Shards || c.conns[shard] != nil {
			conn.Close()
			return fmt.Errorf("transport: bad or duplicate shard index %d in handshake", shard)
		}
		c.conns[shard] = fc
		c.lastType[shard] = frameHello
		c.rec.Record(flightrec.KindFrameRecv, "HELLO", -1, shard, len(body), "")
		c.notePhase(shard, time.Since(t0).Nanoseconds())
	}
	return nil
}

func (c *coordinator) sendSpec() error {
	body, err := json.Marshal(wireSpec{
		Version:   wireVersion,
		Shards:    c.tcp.Shards,
		FlightRec: c.tcp.FlightRecCap,
		Spec:      c.spec,
	})
	if err != nil {
		return fmt.Errorf("transport: encode spec: %w", err)
	}
	c.phaseStart("spec", -1)
	return c.broadcast(frameSpec, func(int) []byte { return body })
}

// broadcast writes one frame to every shard (payload built per shard)
// and flushes, under a write deadline. Per-shard write+flush wall time
// lands in the current phase's timeline; each flush is observed into
// the flush-latency histogram.
func (c *coordinator) broadcast(typ byte, payload func(shard int) []byte) error {
	deadline := time.Now().Add(c.tcp.timeout())
	for i, fc := range c.conns {
		t0 := time.Now()
		fc.conn.SetWriteDeadline(deadline)
		body := payload(i)
		if err := fc.write(typ, body); err != nil {
			return c.shardFail(i, "write", err)
		}
		preFlush := fc.tally.flushNS
		if err := fc.flush(); err != nil {
			return c.shardFail(i, "flush", err)
		}
		c.obs.flushNS.Observe(fc.tally.flushNS - preFlush)
		c.rec.Record(flightrec.KindFrameSent, frameName(typ), c.phaseRound, i, len(body), "")
		c.notePhase(i, time.Since(t0).Nanoseconds())
	}
	return nil
}

// expect reads one frame of the given type from shard i under the
// barrier deadline, attributing the blocked wall time to the current
// phase.
func (c *coordinator) expect(i int, want byte, deadline time.Time) ([]byte, error) {
	fc := c.conns[i]
	fc.conn.SetReadDeadline(deadline)
	t0 := time.Now()
	typ, body, err := fc.read()
	c.notePhase(i, time.Since(t0).Nanoseconds())
	if err != nil {
		return nil, c.shardFail(i, "read", err)
	}
	if typ != want {
		return nil, c.shardFail(i, "read", fmt.Errorf("frame type %d, want %s", typ, frameName(want)))
	}
	c.lastType[i] = typ
	c.rec.Record(flightrec.KindFrameRecv, frameName(typ), c.phaseRound, i, len(body), "")
	return body, nil
}

// drive runs the round loop after the handshake.
func (c *coordinator) drive() (Result, error) {
	g := c.inst.Graph
	n := g.N()
	if p := c.opts.Probe; p != nil {
		c.slots = congest.NewSlotTable(g)
		c.inboxSizes = make([]int, n)
		c.edgeLoad = make([]int64, 2*g.M())
		p.RunStart(congest.RunInfo{
			Engine:  "tcpnet",
			Workers: c.tcp.Shards,
			Nodes:   n,
			Edges:   g.M(),
		})
	}

	// Round 0: Init everywhere, drain its events and outbound sends.
	c.phaseStart("init", 0)
	if err := c.broadcast(frameInit, func(int) []byte { return nil }); err != nil {
		return Result{}, err
	}
	var reply stepReply
	var delivered deliveredReply
	c.phaseStart("init-wait", 0)
	deadline := time.Now().Add(c.tcp.timeout())
	for i := range c.conns {
		body, err := c.expect(i, frameInitAck, deadline)
		if err != nil {
			return Result{}, err
		}
		if err := parseStepReply(body, &reply); err != nil {
			return Result{}, fmt.Errorf("transport: shard %d: %w", i, err)
		}
		c.absorbReply(i, &reply)
	}

	deliveredCounter, roundsCounter := c.metricsStart()

	for r := 0; r < c.inst.MaxRounds; r++ {
		if c.halted == n {
			return c.harvest(nil)
		}
		// Ship the next fate-table window before the first DELIVER that
		// needs it: every replica must hold the fates of the round it is
		// about to build inboxes for.
		if err := c.shipFates(); err != nil {
			return Result{}, err
		}
		// Deliver barrier: relay the pending cross-shard messages, get
		// back each shard's delivery profile.
		c.phaseStart("deliver-write", c.rounds+1)
		if err := c.broadcast(frameDeliver, c.takeDeliverBody); err != nil {
			return Result{}, err
		}
		c.phaseStart("deliver-wait", c.rounds+1)
		deadline = time.Now().Add(c.tcp.timeout())
		deliveredTotal, pendingTotal := 0, 0
		for i := range c.conns {
			body, err := c.expect(i, frameDelivered, deadline)
			if err != nil {
				return Result{}, err
			}
			if err := parseDeliveredReply(body, c.bounds[i+1]-c.bounds[i], &delivered); err != nil {
				return Result{}, fmt.Errorf("transport: shard %d: %w", i, err)
			}
			deliveredTotal += delivered.delivered
			pendingTotal += delivered.pending
			c.absorbProfile(i, &delivered)
		}
		if c.inst.Quiet && r > 0 && deliveredTotal == 0 && pendingTotal == 0 && c.faultsQuiet() {
			return c.harvest(nil)
		}
		c.rounds++
		// Step barrier: everyone advances one round; events, halt
		// counts, the round's fault counts and the next round's
		// cross-shard sends come back.
		c.phaseStart("step-write", c.rounds)
		if err := c.broadcast(frameStep, func(int) []byte { return nil }); err != nil {
			return Result{}, err
		}
		c.phaseStart("step-wait", c.rounds)
		deadline = time.Now().Add(c.tcp.timeout())
		barrier0 := time.Now()
		var firstDone, lastDone int64
		active := 0
		c.halted = 0
		var roundFaults faults.Counts
		for i := range c.conns {
			body, err := c.expect(i, frameStepped, deadline)
			if err != nil {
				return Result{}, err
			}
			done := time.Since(barrier0).Nanoseconds()
			if i == 0 {
				firstDone = done
			}
			lastDone = done
			if err := parseStepReply(body, &reply); err != nil {
				return Result{}, fmt.Errorf("transport: shard %d: %w", i, err)
			}
			c.shardRound[i] = c.rounds
			active += reply.active
			roundFaults.Add(reply.faults)
			c.absorbReply(i, &reply)
		}
		if c.plan != nil {
			c.plan.AddCounts(roundFaults)
			c.obsFaultRound(roundFaults)
		}
		c.roundEnd(deliveredTotal, active, roundFaults)
		c.roundObs(lastDone - firstDone)
		if deliveredCounter != nil {
			deliveredCounter.Add(int64(deliveredTotal))
			roundsCounter.Add(1)
		}
	}
	if c.halted == n {
		return c.harvest(nil)
	}
	// Round-limit exits still harvest (mirroring Proc): fault-tolerant
	// retry drivers inspect the partial output of a budget-exhausted
	// attempt before deciding to retry.
	res, herr := c.harvest(nil)
	if herr != nil {
		return Result{}, herr
	}
	return res, fmt.Errorf("transport: after %d rounds: %w", c.rounds, congest.ErrRoundLimit)
}

// fateWindow is the number of rounds one FATES frame covers. Windowed
// shipping keeps frame size and fate-hash work proportional to the
// rounds actually executed — workload round budgets (walks especially)
// are orders of magnitude above typical completion, and a full-horizon
// table would both waste that compute and breach maxFramePayload on
// large graphs.
const fateWindow = 64

// shipFates extends every replica's fate-table coverage through the
// round about to be delivered, when needed: probabilistic plans only
// (crash/sever schedules replay from the spec's rules on each shard),
// and only when the delivered round would leave the shipped window. If
// a window's densest per-shard slice overflows the frame cap the window
// halves until it fits — correctness only needs coverage of the next
// round.
func (c *coordinator) shipFates() error {
	if c.plan == nil || !c.plan.Probabilistic() || c.rounds+1 < c.fatesEnd {
		return nil
	}
	g := c.inst.Graph
	start := c.fatesEnd
	for window := fateWindow; ; window /= 2 {
		end := start + window
		full := faults.BuildFateTable(c.plan, start, end, 2*g.M())
		bodies := make([][]byte, c.tcp.Shards)
		fits := true
		for i := range bodies {
			lo, hi := c.bounds[i], c.bounds[i+1]
			slice := full.Filter(func(slot int) bool {
				e := g.Edge(slot / 2)
				recv := e.U
				if slot%2 == 1 {
					recv = e.V
				}
				return recv >= lo && recv < hi
			})
			bodies[i] = faults.AppendFateTable(nil, slice)
			if len(bodies[i]) > maxFramePayload {
				fits = false
				break
			}
		}
		if !fits {
			if window <= 1 {
				return fmt.Errorf("transport: fate table for round %d exceeds frame cap", start)
			}
			continue
		}
		c.phaseStart("fates", start)
		if err := c.broadcast(frameFates, func(i int) []byte { return bodies[i] }); err != nil {
			return err
		}
		c.fatesEnd = end
		return nil
	}
}

// faultsQuiet mirrors congest.Network.faultsQuiet's recovery half: a
// quiet round must not end the run while a crashed node is still due to
// recover (through the recovery round itself — see the in-process
// comment). The delayed-message half is the summed pending counts the
// DELIVERED replies report.
func (c *coordinator) faultsQuiet() bool {
	return c.plan == nil ||
		(!c.plan.RecoveringAt(c.rounds) && !c.plan.RecoveringAt(c.rounds+1))
}

// roundObs closes one round's telemetry: the cross-shard step skew and
// the round's frame/byte volume deltas. Replies drain in shard order,
// so the skew is the spread between the first and last reply read —
// a lower bound on true skew, tight when the slow shard is last.
func (c *coordinator) roundObs(skewNS int64) {
	if c.obsOn {
		c.skew = append(c.skew, RoundSkew{Round: c.rounds, SkewNS: skewNS})
	}
	c.obs.skewNS.Observe(skewNS)
	var frames, bytes int64
	for _, fc := range c.conns {
		frames += fc.tally.frames()
		bytes += fc.tally.bytes()
	}
	c.obs.roundFrames.Observe(frames - c.prevFrames)
	c.obs.roundBytes.Observe(bytes - c.prevBytes)
	c.prevFrames, c.prevBytes = frames, bytes
}

// absorbReply folds one INITACK/STEPPED into coordinator state: replay
// its probe events (shards arrive in node order, so replay order is the
// canonical one), update the halt tally, and buffer its outbound sends
// for the next DELIVER.
func (c *coordinator) absorbReply(shard int, r *stepReply) {
	if p := c.opts.Probe; p != nil {
		for _, e := range r.events {
			if e.halt {
				p.NodeHalted(e.node, e.round)
			} else {
				p.PhaseMark(e.node, e.round, e.name)
			}
		}
	}
	c.halted += r.halted
	n := c.inst.Graph.N()
	k := c.tcp.Shards
	for _, s := range r.sends {
		dst := min(s.dst*k/n, k-1)
		// Resolve the owning shard exactly: bounds are contiguous, so a
		// linear fixup of the estimate terminates in O(1) expected.
		for s.dst < c.bounds[dst] {
			dst--
		}
		for s.dst >= c.bounds[dst+1] {
			dst++
		}
		off := len(c.pendingBuf[dst])
		c.pendingBuf[dst] = append(c.pendingBuf[dst], s.payload...)
		c.pending[dst] = append(c.pending[dst], wireSend{
			dst:     s.dst,
			port:    s.port,
			payload: c.pendingBuf[dst][off:],
		})
		c.relayed++
	}
}

// takeDeliverBody serializes and clears shard i's pending batch.
func (c *coordinator) takeDeliverBody(i int) []byte {
	body := appendSends(nil, c.pending[i])
	c.pending[i] = c.pending[i][:0]
	c.pendingBuf[i] = c.pendingBuf[i][:0]
	return body
}

// absorbProfile folds one shard's delivery profile into the probe
// scratch (no-op without a probe).
func (c *coordinator) absorbProfile(shard int, d *deliveredReply) {
	if c.opts.Probe == nil {
		return
	}
	lo := c.bounds[shard]
	pi := 0
	for j, size := range d.sizes {
		u := lo + j
		c.inboxSizes[u] = size
		for x := 0; x < size; x++ {
			slot := c.slots.Slot(u, d.ports[pi])
			pi++
			if c.edgeLoad[slot] == 0 {
				c.touched = append(c.touched, slot)
			}
			c.edgeLoad[slot]++
		}
	}
}

// roundEnd synthesizes the round's aggregated RoundRecord from the
// collected profiles, field for field like congest.probeRoundFlush —
// including the round's fault counts summed over the STEPPED replies —
// and resets the touched scratch.
func (c *coordinator) roundEnd(delivered, active int, fc faults.Counts) {
	p := c.opts.Probe
	if p == nil {
		return
	}
	c.roundRec = congest.RoundRecord{
		Round:        c.rounds,
		Delivered:    delivered,
		Active:       active,
		Halted:       c.halted,
		MaxInboxNode: -1,
		InboxSizes:   c.inboxSizes,
		EdgeLoad:     c.edgeLoad,
		Dropped:      int(fc.Dropped),
		Duplicated:   int(fc.Duplicated),
		Delayed:      int(fc.Delayed),
		Crashed:      int(fc.Crashed),
	}
	for u, size := range c.inboxSizes {
		if size > c.roundRec.MaxInbox {
			c.roundRec.MaxInbox = size
			c.roundRec.MaxInboxNode = u
		}
	}
	for _, slot := range c.touched {
		if c.edgeLoad[slot] > c.roundRec.MaxEdgeLoad {
			c.roundRec.MaxEdgeLoad = c.edgeLoad[slot]
		}
	}
	p.RoundEnd(&c.roundRec)
	for _, slot := range c.touched {
		c.edgeLoad[slot] = 0
	}
	c.touched = c.touched[:0]
}

// harvest ends the run: FINISH to every shard, collect FINAL replies
// and each shard's TELEMETRY ship-back, merge the workload outputs in
// shard order.
func (c *coordinator) harvest(runErr error) (Result, error) {
	if runErr != nil {
		return Result{}, runErr
	}
	c.phaseStart("harvest", c.rounds)
	if err := c.broadcast(frameFinish, func(int) []byte { return nil }); err != nil {
		return Result{}, err
	}
	deadline := time.Now().Add(c.tcp.timeout())
	res := Result{Rounds: c.rounds}
	if c.plan != nil {
		res.Faults = c.plan.Totals()
	}
	var parts [][]byte
	var final finalReply
	for i := range c.conns {
		body, err := c.expect(i, frameFinal, deadline)
		if err != nil {
			return Result{}, err
		}
		if err := parseFinalReply(body, &final); err != nil {
			return Result{}, fmt.Errorf("transport: shard %d: %w", i, err)
		}
		res.Messages += final.messages
		parts = append(parts, append([]byte(nil), final.result...))

		telBody, err := c.expect(i, frameTelemetry, deadline)
		if err != nil {
			return Result{}, err
		}
		wt := &wireTelemetry{}
		if err := json.Unmarshal(telBody, wt); err != nil {
			return Result{}, fmt.Errorf("transport: shard %d: decoding telemetry: %w", i, err)
		}
		c.shardTel[i] = wt
	}
	if c.inst.Finish != nil && c.inst.Merge != nil {
		out, err := c.inst.Merge(c.inst.Graph, parts)
		if err != nil {
			return Result{}, err
		}
		res.Output = out
	}
	return res, nil
}

// reap closes out the shard runtimes: on the error path everything is
// killed immediately; on success each runtime gets one timeout to exit
// on its own (the closed connections tell it the run is over) before
// being killed.
func (c *coordinator) reap(killAll bool) {
	for _, h := range c.handles {
		if killAll {
			h.Kill()
		}
	}
	for _, h := range c.handles {
		done := make(chan struct{})
		go func(wait func() error) {
			if wait != nil {
				wait()
			}
			close(done)
		}(h.Wait)
		select {
		case <-done:
		case <-time.After(c.tcp.timeout()):
			h.Kill()
			// Bounded second wait: a handle whose Kill cannot unstick its
			// Wait (a wedged test goroutine) must not hang the run.
			select {
			case <-done:
			case <-time.After(c.tcp.timeout()):
			}
		}
	}
}

// metricsStart registers the coordinator's instruments: the
// deterministic congest counters the in-process engines also export —
// including the fault counters when a plan is attached, same names as
// congest's metricsRunStart — plus the tcpnet traffic counters.
func (c *coordinator) metricsStart() (delivered, rounds *metrics.Counter) {
	reg := c.opts.Metrics
	if reg == nil {
		return nil, nil
	}
	if c.plan != nil {
		c.fcDropped = reg.Counter("congest_msgs_dropped_total")
		c.fcDuplicated = reg.Counter("congest_msgs_duplicated_total")
		c.fcDelayed = reg.Counter("congest_msgs_delayed_total")
		c.fcCrashed = reg.Counter("congest_node_crash_rounds_total")
	}
	return reg.Counter("congest_messages_delivered_total"), reg.Counter("congest_rounds_total")
}

// obsFaultRound folds one round's summed fault counts into the congest
// fault counters (no-op without a metrics registry).
func (c *coordinator) obsFaultRound(fc faults.Counts) {
	if c.fcDropped == nil {
		return
	}
	c.fcDropped.Add(fc.Dropped)
	c.fcDuplicated.Add(fc.Duplicated)
	c.fcDelayed.Add(fc.Delayed)
	c.fcCrashed.Add(fc.Crashed)
}

// metricsEnd exports the run's wire telemetry: aggregate and per-shard
// frame/byte/flush counters for the coordinator's side of every
// connection, per-frame-type directional counters, and — for shards
// that shipped their TELEMETRY frame — the shard-side tallies under
// tcpnet_shard_* (the counters that previously never left the shard
// process).
func (c *coordinator) metricsEnd(reg *metrics.Registry, elapsed time.Duration) {
	reg.Counter("congest_runs_total").Add(1)
	reg.Counter("congest_run_wall_ns_total").Add(elapsed.Nanoseconds())
	reg.Counter("tcpnet_relayed_messages_total").Add(c.relayed)
	var frames, bytes, flushes, flushNS int64
	var sentByType, recvByType [frameTypeCount]int64
	for i, fc := range c.conns {
		if fc == nil {
			continue
		}
		t := &fc.tally
		frames += t.frames()
		bytes += t.bytes()
		flushes += t.flushes
		flushNS += t.flushNS
		for typ := range t.sentByType {
			sentByType[typ] += t.sentByType[typ]
			recvByType[typ] += t.recvByType[typ]
		}
		reg.Counter(fmt.Sprintf("tcpnet_frames_total{shard=%d}", i)).Add(t.frames())
		reg.Counter(fmt.Sprintf("tcpnet_bytes_total{shard=%d}", i)).Add(t.bytes())
	}
	reg.Counter("tcpnet_frames_total").Add(frames)
	reg.Counter("tcpnet_bytes_total").Add(bytes)
	reg.Counter("tcpnet_flushes_total").Add(flushes)
	reg.Counter("tcpnet_flush_ns_total").Add(flushNS)
	for typ := byte(1); typ < frameTypeCount; typ++ {
		if n := sentByType[typ]; n > 0 {
			reg.Counter(fmt.Sprintf("tcpnet_frames_sent_total{type=%s}", frameName(typ))).Add(n)
		}
		if n := recvByType[typ]; n > 0 {
			reg.Counter(fmt.Sprintf("tcpnet_frames_recv_total{type=%s}", frameName(typ))).Add(n)
		}
	}
	for i, wt := range c.shardTel {
		if wt == nil {
			continue
		}
		reg.Counter(fmt.Sprintf("tcpnet_shard_frames_total{shard=%d}", i)).Add(wt.SentFrames + wt.RecvFrames)
		reg.Counter(fmt.Sprintf("tcpnet_shard_bytes_total{shard=%d}", i)).Add(wt.SentBytes + wt.RecvBytes)
		reg.Counter(fmt.Sprintf("tcpnet_shard_flush_ns_total{shard=%d}", i)).Add(wt.FlushNS)
		if wt.Faults.Any() {
			reg.Counter(fmt.Sprintf("tcpnet_shard_msgs_dropped_total{shard=%d}", i)).Add(wt.Faults.Dropped)
			reg.Counter(fmt.Sprintf("tcpnet_shard_msgs_duplicated_total{shard=%d}", i)).Add(wt.Faults.Duplicated)
			reg.Counter(fmt.Sprintf("tcpnet_shard_msgs_delayed_total{shard=%d}", i)).Add(wt.Faults.Delayed)
			reg.Counter(fmt.Sprintf("tcpnet_shard_node_crash_rounds_total{shard=%d}", i)).Add(wt.Faults.Crashed)
		}
	}
	reg.Gauge("tcpnet_shards").Set(float64(c.tcp.Shards))
}

// writeObs writes the merged observability document to ObsOut.
func (c *coordinator) writeObs(reason string, runErr error) error {
	return WriteObs(c.tcp.ObsOut, c.obsDoc(reason, runErr))
}

// obsDoc assembles the merged document from the coordinator's state:
// its own flight dump (attributed when the run failed), every shipped
// shard dump, both sides' wire tallies, the barrier timeline and the
// skew series.
func (c *coordinator) obsDoc(reason string, runErr error) *ObsDoc {
	doc := &ObsDoc{
		Schema:     ObsSchema,
		Backend:    "tcp",
		Spec:       c.spec,
		Shards:     c.tcp.Shards,
		Rounds:     c.rounds,
		Reason:     reason,
		ShardDumps: make([]*flightrec.Dump, c.tcp.Shards),
		Timeline:   c.timeline,
		Skew:       c.skew,
	}
	guilty, lastRound, phase, errMsg := -1, c.rounds, "", ""
	if runErr != nil {
		errMsg = runErr.Error()
		var se *shardError
		if errors.As(runErr, &se) {
			guilty, lastRound, phase = se.shard, se.lastRound, se.phase
		}
	}
	doc.GuiltyShard, doc.LastRound, doc.Phase, doc.Error = guilty, lastRound, phase, errMsg
	doc.Coordinator = c.rec.Dump(reason).Attribute(guilty, lastRound, phase, errMsg)
	for i, wt := range c.shardTel {
		if wt != nil {
			d := wt.Dump
			doc.ShardDumps[i] = &d
		}
	}
	for i, fc := range c.conns {
		if fc != nil {
			doc.Wire = append(doc.Wire, wireStatsCoord(i, &fc.tally))
		}
	}
	for _, wt := range c.shardTel {
		if wt != nil {
			doc.Wire = append(doc.Wire, wireStatsShard(wt))
		}
	}
	return doc
}

// watchSigterm dumps the flight recorder on SIGTERM. The handler runs
// concurrently with a possibly-blocked round loop, so it only touches
// the mutex-protected recorder — never the timeline/wire state — then
// restores the default disposition and re-delivers the signal so the
// process still dies.
func (c *coordinator) watchSigterm() (stop func()) {
	sigc := make(chan os.Signal, 1)
	done := make(chan struct{})
	signal.Notify(sigc, syscall.SIGTERM)
	go func() {
		select {
		case <-done:
		case <-sigc:
			c.rec.Record(flightrec.KindSignal, "", -1, -1, 0, "SIGTERM")
			dump := c.rec.Dump(flightrec.ReasonSigterm)
			doc := &ObsDoc{
				Schema:      ObsSchema,
				Backend:     "tcp",
				Spec:        c.spec,
				Shards:      c.tcp.Shards,
				Reason:      flightrec.ReasonSigterm,
				GuiltyShard: -1,
				LastRound:   dump.LastRound,
				Error:       "terminated by SIGTERM",
				Coordinator: dump,
				ShardDumps:  make([]*flightrec.Dump, c.tcp.Shards),
			}
			if err := WriteObs(c.tcp.ObsOut, doc); err != nil {
				fmt.Fprintln(os.Stderr, "transport:", err)
			}
			signal.Stop(sigc)
			syscall.Kill(os.Getpid(), syscall.SIGTERM)
		}
	}()
	return func() {
		signal.Stop(sigc)
		close(done)
	}
}
