package transport

// The TCP backend's coordinator: it listens on loopback (or any
// host:port), spawns one cmd/tcpnode process per shard, and drives the
// engine's round structure as wire barriers:
//
//	HELLO/SPEC    handshake: version + shard index, replayable spec
//	INIT→INITACK  round 0: Init on every shard, drain its events/sends
//	per round:
//	  DELIVER→DELIVERED   relay cross-shard messages, build inboxes
//	  (quiet check — same position as the in-process engines)
//	  STEP→STEPPED        run programs, drain events and new sends
//	FINISH→FINAL  harvest message counts and workload outputs
//
// The two barriers per round replicate the sequential engine's phase
// ordering exactly — in particular the quiet check sits between deliver
// and step, before the round counter advances — so the probe stream the
// coordinator synthesizes (marks/halts in node order, then one
// RoundEnd rebuilt from the shards' inbox profiles) is byte-identical
// to a sequential in-process run of the same spec.
//
// Failure policy: every read carries a deadline. A shard that dies
// mid-round (or wedges) surfaces as a clean shard-attributed error
// within one timeout, never a hang; remaining processes are killed on
// the way out.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"time"

	"almostmix/internal/congest"
	"almostmix/internal/metrics"
)

// ShardHandle controls one spawned shard runtime.
type ShardHandle struct {
	// Wait blocks until the shard exits and reports its exit error.
	Wait func() error
	// Kill force-terminates the shard; safe after exit.
	Kill func()
}

// SpawnFunc starts the shard runtime for one shard index, told to dial
// the coordinator at addr. The default spawner execs the NodeBin
// binary; tests substitute in-process goroutines to put the whole
// protocol under the race detector.
type SpawnFunc func(shard int, addr string) (ShardHandle, error)

// TCP runs workloads across real processes over TCP. The zero value is
// not usable: Shards and (unless Spawn is set) NodeBin are required.
type TCP struct {
	// Shards is the number of node processes (1 ≤ Shards ≤ spec nodes).
	Shards int
	// ListenAddr is the coordinator's listen address, default
	// "127.0.0.1:0" (loopback, kernel-assigned port).
	ListenAddr string
	// NodeBin is the tcpnode binary the default spawner execs.
	NodeBin string
	// Timeout bounds every wire barrier (accept, per-frame read, flush)
	// and the post-run process wait; default 60s.
	Timeout time.Duration
	// Spawn overrides process spawning (tests); nil execs NodeBin.
	Spawn SpawnFunc
}

// Name implements Transport.
func (TCP) Name() string { return "tcp" }

func (t TCP) timeout() time.Duration {
	if t.Timeout > 0 {
		return t.Timeout
	}
	return 60 * time.Second
}

// Run implements Transport.
func (t TCP) Run(spec Spec, opts Options) (Result, error) {
	wl, err := Lookup(spec.Workload)
	if err != nil {
		return Result{}, err
	}
	inst, err := wl.Build(spec)
	if err != nil {
		return Result{}, err
	}
	if wl.Encode == nil || wl.Decode == nil {
		return Result{}, fmt.Errorf("transport: workload %q has no payload codec, cannot run over tcp", spec.Workload)
	}
	n := inst.Graph.N()
	if t.Shards < 1 || t.Shards > n {
		return Result{}, fmt.Errorf("transport: %d shards for %d nodes (need 1 ≤ shards ≤ n)", t.Shards, n)
	}
	c := &coordinator{
		tcp:  t,
		spec: spec,
		inst: inst,
		opts: opts,
	}
	return c.run()
}

// coordinator is the per-run state of a TCP backend execution.
type coordinator struct {
	tcp  TCP
	spec Spec
	inst *Instance
	opts Options

	conns   []*frameConn
	handles []ShardHandle
	bounds  []int // bounds[i], bounds[i+1] = shard i's node range

	rounds  int
	halted  int
	relayed int64
	// pending[i] holds the cross-shard messages to relay to shard i in
	// the next DELIVER, payload bytes owned by pendingBuf.
	pending    [][]wireSend
	pendingBuf [][]byte

	// Probe scratch, mirroring congest's probeState.
	slots      *congest.SlotTable
	inboxSizes []int
	edgeLoad   []int64
	touched    []int
	rec        congest.RoundRecord
}

func (c *coordinator) run() (res Result, err error) {
	t0 := time.Now()
	addr := c.tcp.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return Result{}, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	defer ln.Close()

	k := c.tcp.Shards
	n := c.inst.Graph.N()
	c.bounds = make([]int, k+1)
	for i := 0; i <= k; i++ {
		c.bounds[i] = i * n / k
	}
	c.pending = make([][]wireSend, k)
	c.pendingBuf = make([][]byte, k)

	defer func() {
		for _, fc := range c.conns {
			if fc != nil {
				fc.conn.Close()
			}
		}
		c.reap(err != nil)
	}()

	spawn := c.tcp.Spawn
	if spawn == nil {
		spawn = c.execSpawner()
	}
	for i := 0; i < k; i++ {
		h, err := spawn(i, ln.Addr().String())
		if err != nil {
			return Result{}, fmt.Errorf("transport: spawn shard %d: %w", i, err)
		}
		c.handles = append(c.handles, h)
	}
	if err := c.accept(ln); err != nil {
		return Result{}, err
	}
	if err := c.sendSpec(); err != nil {
		return Result{}, err
	}

	res, err = c.drive()

	// Observability epilogue on every path, like the engines' finish().
	if p := c.opts.Probe; p != nil {
		p.RunEnd(c.rounds, err)
	}
	if reg := c.opts.Metrics; reg != nil {
		c.metricsEnd(reg, time.Since(t0))
	}
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// execSpawner is the default SpawnFunc: exec the tcpnode binary with
// the shard index and coordinator address, stderr passed through.
func (c *coordinator) execSpawner() SpawnFunc {
	bin := c.tcp.NodeBin
	return func(shard int, addr string) (ShardHandle, error) {
		if bin == "" {
			return ShardHandle{}, errors.New("transport: TCP.NodeBin not set (path to the tcpnode binary)")
		}
		cmd := exec.Command(bin, "-connect", addr, "-shard", strconv.Itoa(shard))
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return ShardHandle{}, err
		}
		return ShardHandle{
			Wait: cmd.Wait,
			Kill: func() { cmd.Process.Kill() },
		}, nil
	}
}

// accept collects one HELLO-identified connection per shard, all under
// the barrier deadline.
func (c *coordinator) accept(ln net.Listener) error {
	deadline := time.Now().Add(c.tcp.timeout())
	c.conns = make([]*frameConn, c.tcp.Shards)
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	for got := 0; got < c.tcp.Shards; got++ {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("transport: accepting shard connections (%d/%d): %w", got, c.tcp.Shards, err)
		}
		fc := newFrameConn(conn)
		conn.SetReadDeadline(deadline)
		typ, body, err := fc.read()
		if err != nil || typ != frameHello {
			conn.Close()
			return fmt.Errorf("transport: shard handshake: type=%d err=%v", typ, err)
		}
		shard, err := parseHello(body)
		if err != nil {
			conn.Close()
			return err
		}
		if shard < 0 || shard >= c.tcp.Shards || c.conns[shard] != nil {
			conn.Close()
			return fmt.Errorf("transport: bad or duplicate shard index %d in handshake", shard)
		}
		c.conns[shard] = fc
	}
	return nil
}

func (c *coordinator) sendSpec() error {
	body, err := json.Marshal(wireSpec{Version: wireVersion, Shards: c.tcp.Shards, Spec: c.spec})
	if err != nil {
		return fmt.Errorf("transport: encode spec: %w", err)
	}
	return c.broadcast(frameSpec, func(int) []byte { return body })
}

// broadcast writes one frame to every shard (payload built per shard)
// and flushes, under a write deadline.
func (c *coordinator) broadcast(typ byte, payload func(shard int) []byte) error {
	deadline := time.Now().Add(c.tcp.timeout())
	for i, fc := range c.conns {
		fc.conn.SetWriteDeadline(deadline)
		if err := fc.write(typ, payload(i)); err != nil {
			return fmt.Errorf("transport: shard %d: write: %w", i, err)
		}
		if err := fc.flush(); err != nil {
			return fmt.Errorf("transport: shard %d: flush: %w", i, err)
		}
	}
	return nil
}

// expect reads one frame of the given type from shard i under the
// barrier deadline.
func (c *coordinator) expect(i int, want byte, deadline time.Time) ([]byte, error) {
	fc := c.conns[i]
	fc.conn.SetReadDeadline(deadline)
	typ, body, err := fc.read()
	if err != nil {
		return nil, fmt.Errorf("transport: shard %d: read: %w", i, err)
	}
	if typ != want {
		return nil, fmt.Errorf("transport: shard %d: frame type %d, want %d", i, typ, want)
	}
	return body, nil
}

// drive runs the round loop after the handshake.
func (c *coordinator) drive() (Result, error) {
	g := c.inst.Graph
	n := g.N()
	if p := c.opts.Probe; p != nil {
		c.slots = congest.NewSlotTable(g)
		c.inboxSizes = make([]int, n)
		c.edgeLoad = make([]int64, 2*g.M())
		p.RunStart(congest.RunInfo{
			Engine:  "tcpnet",
			Workers: c.tcp.Shards,
			Nodes:   n,
			Edges:   g.M(),
		})
	}

	// Round 0: Init everywhere, drain its events and outbound sends.
	if err := c.broadcast(frameInit, func(int) []byte { return nil }); err != nil {
		return Result{}, err
	}
	var reply stepReply
	var delivered deliveredReply
	deadline := time.Now().Add(c.tcp.timeout())
	for i := range c.conns {
		body, err := c.expect(i, frameInitAck, deadline)
		if err != nil {
			return Result{}, err
		}
		if err := parseStepReply(body, &reply); err != nil {
			return Result{}, fmt.Errorf("transport: shard %d: %w", i, err)
		}
		c.absorbReply(i, &reply)
	}

	deliveredCounter, roundsCounter := c.metricsStart()

	for r := 0; r < c.inst.MaxRounds; r++ {
		if c.halted == n {
			return c.harvest(nil)
		}
		// Deliver barrier: relay the pending cross-shard messages, get
		// back each shard's delivery profile.
		if err := c.broadcast(frameDeliver, c.takeDeliverBody); err != nil {
			return Result{}, err
		}
		deadline = time.Now().Add(c.tcp.timeout())
		deliveredTotal := 0
		for i := range c.conns {
			body, err := c.expect(i, frameDelivered, deadline)
			if err != nil {
				return Result{}, err
			}
			if err := parseDeliveredReply(body, c.bounds[i+1]-c.bounds[i], &delivered); err != nil {
				return Result{}, fmt.Errorf("transport: shard %d: %w", i, err)
			}
			deliveredTotal += delivered.delivered
			c.absorbProfile(i, &delivered)
		}
		if c.inst.Quiet && r > 0 && deliveredTotal == 0 {
			return c.harvest(nil)
		}
		c.rounds++
		// Step barrier: everyone advances one round; events, halt
		// counts and the next round's cross-shard sends come back.
		if err := c.broadcast(frameStep, func(int) []byte { return nil }); err != nil {
			return Result{}, err
		}
		deadline = time.Now().Add(c.tcp.timeout())
		active := 0
		c.halted = 0
		for i := range c.conns {
			body, err := c.expect(i, frameStepped, deadline)
			if err != nil {
				return Result{}, err
			}
			if err := parseStepReply(body, &reply); err != nil {
				return Result{}, fmt.Errorf("transport: shard %d: %w", i, err)
			}
			active += reply.active
			c.absorbReply(i, &reply)
		}
		c.roundEnd(deliveredTotal, active)
		if deliveredCounter != nil {
			deliveredCounter.Add(int64(deliveredTotal))
			roundsCounter.Add(1)
		}
	}
	if c.halted == n {
		return c.harvest(nil)
	}
	return Result{}, fmt.Errorf("transport: after %d rounds: %w", c.rounds, congest.ErrRoundLimit)
}

// absorbReply folds one INITACK/STEPPED into coordinator state: replay
// its probe events (shards arrive in node order, so replay order is the
// canonical one), update the halt tally, and buffer its outbound sends
// for the next DELIVER.
func (c *coordinator) absorbReply(shard int, r *stepReply) {
	if p := c.opts.Probe; p != nil {
		for _, e := range r.events {
			if e.halt {
				p.NodeHalted(e.node, e.round)
			} else {
				p.PhaseMark(e.node, e.round, e.name)
			}
		}
	}
	c.halted += r.halted
	n := c.inst.Graph.N()
	k := c.tcp.Shards
	for _, s := range r.sends {
		dst := min(s.dst*k/n, k-1)
		// Resolve the owning shard exactly: bounds are contiguous, so a
		// linear fixup of the estimate terminates in O(1) expected.
		for s.dst < c.bounds[dst] {
			dst--
		}
		for s.dst >= c.bounds[dst+1] {
			dst++
		}
		off := len(c.pendingBuf[dst])
		c.pendingBuf[dst] = append(c.pendingBuf[dst], s.payload...)
		c.pending[dst] = append(c.pending[dst], wireSend{
			dst:     s.dst,
			port:    s.port,
			payload: c.pendingBuf[dst][off:],
		})
		c.relayed++
	}
}

// takeDeliverBody serializes and clears shard i's pending batch.
func (c *coordinator) takeDeliverBody(i int) []byte {
	body := appendSends(nil, c.pending[i])
	c.pending[i] = c.pending[i][:0]
	c.pendingBuf[i] = c.pendingBuf[i][:0]
	return body
}

// absorbProfile folds one shard's delivery profile into the probe
// scratch (no-op without a probe).
func (c *coordinator) absorbProfile(shard int, d *deliveredReply) {
	if c.opts.Probe == nil {
		return
	}
	lo := c.bounds[shard]
	pi := 0
	for j, size := range d.sizes {
		u := lo + j
		c.inboxSizes[u] = size
		for x := 0; x < size; x++ {
			slot := c.slots.Slot(u, d.ports[pi])
			pi++
			if c.edgeLoad[slot] == 0 {
				c.touched = append(c.touched, slot)
			}
			c.edgeLoad[slot]++
		}
	}
}

// roundEnd synthesizes the round's aggregated RoundRecord from the
// collected profiles, field for field like congest.probeRoundFlush, and
// resets the touched scratch.
func (c *coordinator) roundEnd(delivered, active int) {
	p := c.opts.Probe
	if p == nil {
		return
	}
	c.rec = congest.RoundRecord{
		Round:        c.rounds,
		Delivered:    delivered,
		Active:       active,
		Halted:       c.halted,
		MaxInboxNode: -1,
		InboxSizes:   c.inboxSizes,
		EdgeLoad:     c.edgeLoad,
	}
	for u, size := range c.inboxSizes {
		if size > c.rec.MaxInbox {
			c.rec.MaxInbox = size
			c.rec.MaxInboxNode = u
		}
	}
	for _, slot := range c.touched {
		if c.edgeLoad[slot] > c.rec.MaxEdgeLoad {
			c.rec.MaxEdgeLoad = c.edgeLoad[slot]
		}
	}
	p.RoundEnd(&c.rec)
	for _, slot := range c.touched {
		c.edgeLoad[slot] = 0
	}
	c.touched = c.touched[:0]
}

// harvest ends the run: FINISH to every shard, collect FINAL replies,
// merge the workload outputs in shard order.
func (c *coordinator) harvest(runErr error) (Result, error) {
	if runErr != nil {
		return Result{}, runErr
	}
	if err := c.broadcast(frameFinish, func(int) []byte { return nil }); err != nil {
		return Result{}, err
	}
	deadline := time.Now().Add(c.tcp.timeout())
	res := Result{Rounds: c.rounds}
	var parts [][]byte
	var final finalReply
	for i := range c.conns {
		body, err := c.expect(i, frameFinal, deadline)
		if err != nil {
			return Result{}, err
		}
		if err := parseFinalReply(body, &final); err != nil {
			return Result{}, fmt.Errorf("transport: shard %d: %w", i, err)
		}
		res.Messages += final.messages
		parts = append(parts, append([]byte(nil), final.result...))
	}
	if c.inst.Finish != nil && c.inst.Merge != nil {
		out, err := c.inst.Merge(c.inst.Graph, parts)
		if err != nil {
			return Result{}, err
		}
		res.Output = out
	}
	return res, nil
}

// reap closes out the shard runtimes: on the error path everything is
// killed immediately; on success each runtime gets one timeout to exit
// on its own (the closed connections tell it the run is over) before
// being killed.
func (c *coordinator) reap(killAll bool) {
	for _, h := range c.handles {
		if killAll {
			h.Kill()
		}
	}
	for _, h := range c.handles {
		done := make(chan struct{})
		go func(wait func() error) {
			if wait != nil {
				wait()
			}
			close(done)
		}(h.Wait)
		select {
		case <-done:
		case <-time.After(c.tcp.timeout()):
			h.Kill()
			// Bounded second wait: a handle whose Kill cannot unstick its
			// Wait (a wedged test goroutine) must not hang the run.
			select {
			case <-done:
			case <-time.After(c.tcp.timeout()):
			}
		}
	}
}

// metricsStart registers the coordinator's instruments: the
// deterministic congest counters the in-process engines also export,
// plus the tcpnet traffic counters.
func (c *coordinator) metricsStart() (delivered, rounds *metrics.Counter) {
	reg := c.opts.Metrics
	if reg == nil {
		return nil, nil
	}
	return reg.Counter("congest_messages_delivered_total"), reg.Counter("congest_rounds_total")
}

func (c *coordinator) metricsEnd(reg *metrics.Registry, elapsed time.Duration) {
	reg.Counter("congest_runs_total").Add(1)
	reg.Counter("congest_run_wall_ns_total").Add(elapsed.Nanoseconds())
	reg.Counter("tcpnet_relayed_messages_total").Add(c.relayed)
	var frames, bytes int64
	for _, fc := range c.conns {
		if fc != nil {
			frames += fc.frames
			bytes += fc.bytes
		}
	}
	reg.Counter("tcpnet_frames_total").Add(frames)
	reg.Counter("tcpnet_bytes_total").Add(bytes)
	reg.Gauge("tcpnet_shards").Set(float64(c.tcp.Shards))
}
