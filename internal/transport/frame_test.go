package transport

// Framing and payload-parser robustness: truncated frames, oversized
// or zero length prefixes, and split reads must surface as errors —
// never panics, hangs, or silent truncation. The fuzz corpus under
// testdata/fuzz/FuzzReadFrame pins the historically interesting shapes.

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/iotest"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []struct {
		typ     byte
		payload []byte
	}{
		{frameHello, []byte{wireVersion, 0}},
		{frameStep, nil},
		{frameDeliver, bytes.Repeat([]byte("abc"), 100)},
		{frameFinal, []byte{0xff}},
	}
	var wire []byte
	for _, f := range frames {
		var err error
		wire, err = appendFrame(wire, f.typ, f.payload)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Whole reads and byte-at-a-time reads must decode identically.
	for _, r := range []io.Reader{bytes.NewReader(wire), iotest.OneByteReader(bytes.NewReader(wire))} {
		var buf []byte
		for i, f := range frames {
			typ, payload, err := readFrame(r, buf)
			if err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			if typ != f.typ || !bytes.Equal(payload, f.payload) {
				t.Fatalf("frame %d: got (%d, %q), want (%d, %q)", i, typ, payload, f.typ, f.payload)
			}
		}
		if _, _, err := readFrame(r, buf); !errors.Is(err, io.EOF) {
			t.Fatalf("after last frame: err = %v, want clean io.EOF", err)
		}
	}
}

func TestReadFrameRejectsMalformedInput(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want error // nil = any error
	}{
		{"empty", nil, io.EOF},
		{"truncated header", []byte{0, 0}, nil},
		{"zero length", []byte{0, 0, 0, 0}, nil},
		{"missing type byte", []byte{0, 0, 0, 1}, io.ErrUnexpectedEOF},
		{"truncated payload", []byte{0, 0, 0, 16, 1, 'a', 'b'}, io.ErrUnexpectedEOF},
		{"oversized length", []byte{0xff, 0xff, 0xff, 0xff, 1}, errFrameTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := readFrame(bytes.NewReader(tc.in), nil)
			if err == nil {
				t.Fatal("malformed input accepted")
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestAppendFrameRejectsOversizedPayload(t *testing.T) {
	if _, err := appendFrame(nil, 1, make([]byte, maxFramePayload+1)); !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("err = %v, want errFrameTooLarge", err)
	}
}

func FuzzReadFrame(f *testing.F) {
	valid, _ := appendFrame(nil, frameStepped, []byte("payload"))
	two, _ := appendFrame(valid, frameFinish, nil)
	f.Add(valid)
	f.Add(two)
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	f.Add([]byte{0, 0, 0, 16, 1, 'a', 'b'})
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrame(bytes.NewReader(data), nil)
		// A split read of the same bytes must agree with the whole read.
		styp, spayload, serr := readFrame(iotest.OneByteReader(bytes.NewReader(data)), nil)
		if (err == nil) != (serr == nil) {
			t.Fatalf("whole read err=%v, split read err=%v", err, serr)
		}
		if err != nil {
			return
		}
		if typ != styp || !bytes.Equal(payload, spayload) {
			t.Fatalf("whole read (%d, %q) != split read (%d, %q)", typ, payload, styp, spayload)
		}
		// Round-trip: re-encoding must reproduce the consumed prefix.
		enc, encErr := appendFrame(nil, typ, payload)
		if encErr != nil {
			t.Fatalf("re-encoding a decoded frame: %v", encErr)
		}
		if !bytes.Equal(enc, data[:len(enc)]) {
			t.Fatalf("re-encoded frame differs from input prefix")
		}
	})
}

// FuzzParseReplies drives the typed payload parsers with arbitrary
// bodies: errors are expected, panics and unbounded allocations are not
// (the cursor bounds every length field by the bytes remaining).
func FuzzParseReplies(f *testing.F) {
	f.Add([]byte{}, 4)
	f.Add(appendStepReply(nil, &stepReply{active: 3, halted: 1,
		events: []wireEvent{{node: 1, round: 2, name: "m"}, {halt: true, node: 1, round: 2}},
		sends:  []wireSend{{dst: 7, port: 1, payload: []byte("x")}}}), 8)
	f.Add(appendDeliveredReply(nil, &deliveredReply{delivered: 2, sizes: []int{1, 1}, ports: []int{0, 3}}), 2)
	f.Add(appendFinalReply(nil, &finalReply{messages: 9, result: []byte("blob")}), 1)
	f.Add(appendHello(nil, 3), 1)
	f.Fuzz(func(t *testing.T, data []byte, owned int) {
		if owned < 0 || owned > 1<<16 {
			return
		}
		var step stepReply
		_ = parseStepReply(data, &step)
		var del deliveredReply
		_ = parseDeliveredReply(data, owned, &del)
		var fin finalReply
		_ = parseFinalReply(data, &fin)
		_, _ = parseHello(data)
	})
}
