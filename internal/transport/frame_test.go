package transport

// Framing and payload-parser robustness: truncated frames, oversized
// or zero length prefixes, and split reads must surface as errors —
// never panics, hangs, or silent truncation. The fuzz corpus under
// testdata/fuzz/FuzzReadFrame pins the historically interesting shapes.

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/iotest"

	"almostmix/internal/faults"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []struct {
		typ     byte
		payload []byte
	}{
		{frameHello, []byte{wireVersion, 0}},
		{frameStep, nil},
		{frameDeliver, bytes.Repeat([]byte("abc"), 100)},
		{frameFinal, []byte{0xff}},
	}
	var wire []byte
	for _, f := range frames {
		var err error
		wire, err = appendFrame(wire, f.typ, f.payload)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Whole reads and byte-at-a-time reads must decode identically.
	for _, r := range []io.Reader{bytes.NewReader(wire), iotest.OneByteReader(bytes.NewReader(wire))} {
		var buf []byte
		for i, f := range frames {
			typ, payload, err := readFrame(r, buf)
			if err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			if typ != f.typ || !bytes.Equal(payload, f.payload) {
				t.Fatalf("frame %d: got (%d, %q), want (%d, %q)", i, typ, payload, f.typ, f.payload)
			}
		}
		if _, _, err := readFrame(r, buf); !errors.Is(err, io.EOF) {
			t.Fatalf("after last frame: err = %v, want clean io.EOF", err)
		}
	}
}

func TestReadFrameRejectsMalformedInput(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want error // nil = any error
	}{
		{"empty", nil, io.EOF},
		{"truncated header", []byte{0, 0}, nil},
		{"zero length", []byte{0, 0, 0, 0}, nil},
		{"missing type byte", []byte{0, 0, 0, 1}, io.ErrUnexpectedEOF},
		{"truncated payload", []byte{0, 0, 0, 16, 1, 'a', 'b'}, io.ErrUnexpectedEOF},
		{"oversized length", []byte{0xff, 0xff, 0xff, 0xff, 1}, errFrameTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := readFrame(bytes.NewReader(tc.in), nil)
			if err == nil {
				t.Fatal("malformed input accepted")
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestAppendFrameRejectsOversizedPayload(t *testing.T) {
	if _, err := appendFrame(nil, 1, make([]byte, maxFramePayload+1)); !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("err = %v, want errFrameTooLarge", err)
	}
}

func FuzzReadFrame(f *testing.F) {
	valid, _ := appendFrame(nil, frameStepped, []byte("payload"))
	two, _ := appendFrame(valid, frameFinish, nil)
	f.Add(valid)
	f.Add(two)
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	f.Add([]byte{0, 0, 0, 16, 1, 'a', 'b'})
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrame(bytes.NewReader(data), nil)
		// A split read of the same bytes must agree with the whole read.
		styp, spayload, serr := readFrame(iotest.OneByteReader(bytes.NewReader(data)), nil)
		if (err == nil) != (serr == nil) {
			t.Fatalf("whole read err=%v, split read err=%v", err, serr)
		}
		if err != nil {
			return
		}
		if typ != styp || !bytes.Equal(payload, spayload) {
			t.Fatalf("whole read (%d, %q) != split read (%d, %q)", typ, payload, styp, spayload)
		}
		// Round-trip: re-encoding must reproduce the consumed prefix.
		enc, encErr := appendFrame(nil, typ, payload)
		if encErr != nil {
			t.Fatalf("re-encoding a decoded frame: %v", encErr)
		}
		if !bytes.Equal(enc, data[:len(enc)]) {
			t.Fatalf("re-encoded frame differs from input prefix")
		}
	})
}

// FuzzParseFateTable drives the FATES frame body parser with arbitrary
// bytes: the shard side feeds it straight off the wire, so malformed
// input must error — never panic or allocate unboundedly. Anything it
// accepts must re-encode to a fixpoint (encode → parse → encode is
// byte-stable; the input itself may use non-minimal varints) and answer
// every in-window lookup without panicking. The corpus under
// testdata/fuzz/FuzzParseFateTable pins the interesting shapes
// alongside FuzzReadFrame's.
func FuzzParseFateTable(f *testing.F) {
	plan, err := faults.Parse("drop=0.2,dup=0.1,delay=0.2:3", 7)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(faults.AppendFateTable(nil, faults.BuildFateTable(plan, 1, 9, 24)))
	f.Add(faults.AppendFateTable(nil, faults.BuildFateTable(faults.New(3), 5, 7, 8)))
	f.Add([]byte{})                 // truncated start
	f.Add([]byte{0, 1, 0})          // zero start round
	f.Add([]byte{1, 200})           // window exceeding payload
	f.Add([]byte{1, 1, 1, 0, 1})    // zero slot delta
	f.Add([]byte{1, 1, 1, 1, 9})    // unknown fate
	f.Add([]byte{1, 1, 1, 1, 3, 0}) // zero delay on a Delay fate
	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := faults.ParseFateTable(data)
		if err != nil {
			return
		}
		enc := faults.AppendFateTable(nil, tab)
		tab2, err := faults.ParseFateTable(enc)
		if err != nil {
			t.Fatalf("re-encoded accepted table rejected: %v", err)
		}
		if enc2 := faults.AppendFateTable(nil, tab2); !bytes.Equal(enc2, enc) {
			t.Fatalf("encode → parse → encode not a fixpoint (%d vs %d bytes)", len(enc2), len(enc))
		}
		start, end := tab.Rounds()
		for r := start; r < end && r < start+4; r++ {
			for slot := 0; slot < 8; slot++ {
				f1, d1 := tab.Lookup(r, slot)
				f2, d2 := tab2.Lookup(r, slot)
				if f1 != f2 || d1 != d2 {
					t.Fatalf("lookup(%d, %d) diverges after round-trip", r, slot)
				}
			}
		}
	})
}

// FuzzParseReplies drives the typed payload parsers with arbitrary
// bodies: errors are expected, panics and unbounded allocations are not
// (the cursor bounds every length field by the bytes remaining).
func FuzzParseReplies(f *testing.F) {
	f.Add([]byte{}, 4)
	f.Add(appendStepReply(nil, &stepReply{active: 3, halted: 1,
		events: []wireEvent{{node: 1, round: 2, name: "m"}, {halt: true, node: 1, round: 2}},
		sends:  []wireSend{{dst: 7, port: 1, payload: []byte("x")}}}), 8)
	f.Add(appendDeliveredReply(nil, &deliveredReply{delivered: 2, sizes: []int{1, 1}, ports: []int{0, 3}}), 2)
	f.Add(appendFinalReply(nil, &finalReply{messages: 9, result: []byte("blob")}), 1)
	f.Add(appendHello(nil, 3), 1)
	f.Fuzz(func(t *testing.T, data []byte, owned int) {
		if owned < 0 || owned > 1<<16 {
			return
		}
		var step stepReply
		_ = parseStepReply(data, &step)
		var del deliveredReply
		_ = parseDeliveredReply(data, owned, &del)
		var fin finalReply
		_ = parseFinalReply(data, &fin)
		_, _ = parseHello(data)
	})
}
