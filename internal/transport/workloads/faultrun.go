package workloads

// Transport-level retry drivers for the fault-aware workloads. Each
// mirrors its in-process counterpart exactly — RunWalksFaults is
// randomwalk.RunNetworkFaults with tr.Run as the attempt executor,
// RunGHSFaults is mstbase.GHSNetworkFaults — so running them over Proc
// reproduces the in-process drivers bit-for-bit, and running them over
// TCP reproduces Proc (the differential suite's fault legs assert
// both). The cross-attempt state travels in the Spec: the derived
// per-attempt fault seed in FaultSeed, the attempt index in Retry
// (offsetting the program RNG stream only), and for walks the re-issue
// counts and sequence bases in WalkCounts/WalkSeqBase.

import (
	"errors"
	"fmt"
	"sort"

	"almostmix/internal/congest"
	"almostmix/internal/mstbase"
	"almostmix/internal/randomwalk"
	"almostmix/internal/rngutil"
	"almostmix/internal/transport"
)

// RunWalksFaults runs the walks-faults workload over tr for up to
// maxAttempts attempts (maxAttempts < 1 means 1), re-issuing tokens
// lost to faults exactly like randomwalk.RunNetworkFaults: tokens are
// identified by (origin, sequence), an attempt runs until the network
// falls silent, and every issued token not absorbed by then is
// re-issued from its origin with a fresh sequence number. Spec's
// Workload/Retry/WalkCounts/WalkSeqBase fields are owned by the driver
// and overwritten; FaultSeed seeds the per-attempt derivation.
func RunWalksFaults(tr transport.Transport, spec transport.Spec, opts transport.Options, maxAttempts int) (*randomwalk.FaultyWalkResult, error) {
	g, err := transport.BuildGraph(spec)
	if err != nil {
		return nil, err
	}
	if spec.Steps < 0 {
		return nil, fmt.Errorf("workloads: walks-faults needs steps ≥ 0, got %d", spec.Steps)
	}
	counts := spec.WalkCounts
	if counts == nil {
		if spec.K < 1 {
			return nil, fmt.Errorf("workloads: walks-faults needs k ≥ 1 walks per degree (or explicit walk_counts), got %d", spec.K)
		}
		counts = randomwalk.UniformCountTimesDegree(g, spec.K)
	} else if len(counts) != g.N() {
		return nil, fmt.Errorf("workloads: walks-faults got %d walk_counts for %d nodes", len(counts), g.N())
	}
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	faultSrc := rngutil.NewSource(spec.FaultSeed)

	res := &randomwalk.FaultyWalkResult{}
	res.ArrivedAt = make([]int, g.N())

	// outstanding tracks every issued-but-unabsorbed token; issue[v] and
	// seqBase[v] describe the tokens node v injects on the next attempt —
	// the same bookkeeping as RunNetworkFaults, shipped through the spec.
	outstanding := make(map[randomwalk.WalkTokenID]struct{})
	nextSeq := make([]int, g.N())
	issue := make([]int, g.N())
	for v, c := range counts {
		issue[v] = c
		for s := 0; s < c; s++ {
			outstanding[randomwalk.WalkTokenID{Origin: int32(v), Seq: int32(s)}] = struct{}{}
		}
		nextSeq[v] = c
	}

	for attempt := 0; attempt < maxAttempts && len(outstanding) > 0; attempt++ {
		seqBase := make([]int, g.N())
		for v := range issue {
			seqBase[v] = nextSeq[v] - issue[v]
		}
		aspec := spec
		aspec.Workload = "walks-faults"
		aspec.FaultSeed = faultSrc.Derive("attempt", uint64(attempt))
		aspec.Retry = attempt
		aspec.WalkCounts = append([]int(nil), issue...)
		aspec.WalkSeqBase = seqBase
		run, err := tr.Run(aspec, opts)
		if err != nil {
			return nil, fmt.Errorf("workloads: walks-faults attempt %d: %w", attempt, err)
		}
		out, ok := run.Output.(WalksFaultsOutput)
		if !ok {
			return nil, fmt.Errorf("workloads: walks-faults attempt %d returned %T", attempt, run.Output)
		}
		res.Rounds += run.Rounds
		res.Messages += run.Messages
		res.Faults.Add(run.Faults)
		res.Attempts++

		// Reconcile: first absorption of an outstanding token counts;
		// duplicate arrivals of already-settled tokens are ignored.
		for v, ids := range out.Absorbed {
			for _, id := range ids {
				if _, open := outstanding[id]; open {
					delete(outstanding, id)
					res.ArrivedAt[v]++
				}
			}
		}
		// Whatever is still outstanding was lost: re-issue it from its
		// origin on the next attempt under fresh sequence numbers.
		for v := range issue {
			issue[v] = 0
		}
		for id := range outstanding {
			issue[id.Origin]++
		}
		if len(outstanding) == 0 || attempt+1 == maxAttempts {
			continue // loop condition ends the run; Lost reads outstanding
		}
		fresh := make(map[randomwalk.WalkTokenID]struct{}, len(outstanding))
		for v, c := range issue {
			for s := 0; s < c; s++ {
				fresh[randomwalk.WalkTokenID{Origin: int32(v), Seq: int32(nextSeq[v] + s)}] = struct{}{}
			}
			nextSeq[v] += c
		}
		res.Reissued += len(outstanding)
		outstanding = fresh
	}
	res.Lost = len(outstanding)
	return res, nil
}

// RunGHSFaults runs the ghs-faults workload over tr for up to
// maxAttempts attempts (maxAttempts < 1 means 1), restarting from
// scratch exactly like mstbase.GHSNetworkFaults: each attempt's merged
// edge set is validated against the centralized GHS oracle, a
// round-limited attempt is still checked (its harvest may hold the
// MST), and a failed attempt reruns with a derived fault seed and a
// Retry-offset program RNG. Spec's Workload/Retry fields are owned by
// the driver; FaultSeed seeds the per-attempt derivation.
func RunGHSFaults(tr transport.Transport, spec transport.Spec, opts transport.Options, maxAttempts int) (*mstbase.FaultyMSTResult, error) {
	g, err := transport.BuildGraph(spec)
	if err != nil {
		return nil, err
	}
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	ref, err := mstbase.GHS(g)
	if err != nil {
		return nil, err
	}
	want := append([]int(nil), ref.Edges...)
	sort.Ints(want)

	faultSrc := rngutil.NewSource(spec.FaultSeed)
	window := 3*g.N() + 6
	res := &mstbase.FaultyMSTResult{}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		aspec := spec
		aspec.Workload = "ghs-faults"
		aspec.FaultSeed = faultSrc.Derive("attempt", uint64(attempt))
		aspec.Retry = attempt
		run, rerr := tr.Run(aspec, opts)
		// A round-limited attempt is not necessarily a failure: the
		// backends harvest it (partial output and totals included) and the
		// oracle check, not the error, decides. Anything else is fatal.
		if rerr != nil && !errors.Is(rerr, congest.ErrRoundLimit) {
			return nil, fmt.Errorf("workloads: ghs-faults attempt %d: %w", attempt, rerr)
		}
		out, ok := run.Output.(MSTOutput)
		if !ok {
			return nil, fmt.Errorf("workloads: ghs-faults attempt %d returned %T", attempt, run.Output)
		}
		res.Rounds += run.Rounds
		res.Iterations += (run.Rounds + window - 1) / window
		res.Faults.Add(run.Faults)
		res.Attempts++

		got := append([]int(nil), out.Edges...)
		sort.Ints(got)
		if intsEqual(got, want) {
			res.Recovered = true
			res.Edges = got
			res.Weight = g.TotalWeight(got)
			return res, nil
		}
	}
	return res, nil
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CrashShardSpec builds a fault-spec clause crashing every node of
// shard i (of shards over n nodes) at round at, recovering after dur
// rounds — the "kill a whole shard and let it come back" scenario the
// TCP fault suite runs end-to-end. Compose with other clauses by
// joining with commas.
func CrashShardSpec(n, shards, i, at, dur int) string {
	lo, hi := i*n/shards, (i+1)*n/shards // the TCP backend's shard layout
	spec := ""
	for v := lo; v < hi; v++ {
		if spec != "" {
			spec += ","
		}
		spec += fmt.Sprintf("crash=%d@%d+%d", v, at, dur)
	}
	return spec
}
