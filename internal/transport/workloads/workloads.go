// Package workloads registers the canonical transport workloads —
// ticker, bfs, broadcast, ghs, walks — with internal/transport. Each is
// a pure function of its Spec: the graph, programs, RNG streams and
// payload codecs are rebuilt identically on every process of a TCP run,
// and the in-process backends build through the same path, which is
// what the differential suite's byte-equality assertions rest on.
//
// Import for side effects from binaries and tests that resolve
// workloads by name.
package workloads

import (
	"encoding/binary"
	"fmt"

	"almostmix/internal/congest"
	"almostmix/internal/graph"
	"almostmix/internal/mstbase"
	"almostmix/internal/randomwalk"
	"almostmix/internal/rngutil"
	"almostmix/internal/transport"
)

// BFSOutput is the merged outcome of the "bfs" workload.
type BFSOutput struct {
	// Depth is the BFS tree depth; Reached the number of nodes the flood
	// reached (n on a connected graph).
	Depth   int
	Reached int
}

// BroadcastOutput is the merged outcome of the "broadcast" workload.
type BroadcastOutput struct {
	// Got is the number of nodes holding the flooded value at the end.
	Got int
}

// MSTOutput is the merged outcome of the "ghs" workload. Iterations is
// derived by callers from Result.Rounds and the phase window 3n+6.
type MSTOutput struct {
	Edges  []int
	Weight float64
}

// WalksOutput is the merged outcome of the "walks" workload.
type WalksOutput struct {
	// Arrived is the total number of walk tokens that completed.
	Arrived int
}

func init() {
	transport.Register(transport.Workload{
		Name:   "ticker",
		Build:  buildTicker,
		Encode: congest.EncodeTickPayload,
		Decode: congest.DecodeTickPayload,
	})
	transport.Register(transport.Workload{
		Name:   "bfs",
		Build:  buildBFS,
		Encode: congest.EncodeBFSPayload,
		Decode: congest.DecodeBFSPayload,
	})
	transport.Register(transport.Workload{
		Name:   "broadcast",
		Build:  buildBroadcast,
		Encode: congest.EncodeFloodPayload,
		Decode: congest.DecodeFloodPayload,
	})
	transport.Register(transport.Workload{
		Name:   "ghs",
		Build:  buildGHS,
		Encode: mstbase.EncodeGHSPayload,
		Decode: mstbase.DecodeGHSPayload,
	})
	transport.Register(transport.Workload{
		Name:   "walks",
		Build:  buildWalks,
		Encode: randomwalk.EncodeWalkPayload,
		Decode: randomwalk.DecodeWalkPayload,
	})
}

// buildTicker: every node broadcasts Tick for Steps rounds, then halts.
// No output beyond rounds/messages — the minimal workload the framing
// and lifecycle tests lean on.
func buildTicker(spec transport.Spec) (*transport.Instance, error) {
	g, err := transport.BuildGraph(spec)
	if err != nil {
		return nil, err
	}
	if spec.Steps < 1 {
		return nil, fmt.Errorf("workloads: ticker needs steps ≥ 1, got %d", spec.Steps)
	}
	programs := make([]congest.Program, g.N())
	for v := range programs {
		programs[v] = congest.NewTicker(spec.Steps)
	}
	return &transport.Instance{
		Graph:     g,
		Programs:  programs,
		Source:    rngutil.NewSource(spec.SrcSeed),
		MaxRounds: spec.Steps + 4,
	}, nil
}

func buildBFS(spec transport.Spec) (*transport.Instance, error) {
	g, err := transport.BuildGraph(spec)
	if err != nil {
		return nil, err
	}
	if spec.Root < 0 || spec.Root >= g.N() {
		return nil, fmt.Errorf("workloads: bfs root %d outside nodes [0, %d)", spec.Root, g.N())
	}
	programs, res := congest.BFSPrograms(g, spec.Root)
	return &transport.Instance{
		Graph:     g,
		Programs:  programs,
		Source:    rngutil.NewSource(spec.SrcSeed),
		MaxRounds: 2*g.N() + 4,
		Quiet:     true,
		// Dist[v] is only valid on the process owning v; ship dist+1 so
		// the unreached sentinel -1 packs as a uvarint.
		Finish: func(lo, hi int) []byte {
			var buf []byte
			for v := lo; v < hi; v++ {
				buf = binary.AppendUvarint(buf, uint64(res.Dist[v]+1))
			}
			return buf
		},
		Merge: func(g *graph.Graph, parts [][]byte) (any, error) {
			vals, err := uvarints(parts, g.N(), "bfs dist")
			if err != nil {
				return nil, err
			}
			out := BFSOutput{}
			for _, d := range vals {
				if d == 0 {
					continue
				}
				out.Reached++
				out.Depth = max(out.Depth, int(d)-1)
			}
			return out, nil
		},
	}, nil
}

func buildBroadcast(spec transport.Spec) (*transport.Instance, error) {
	g, err := transport.BuildGraph(spec)
	if err != nil {
		return nil, err
	}
	if spec.Root < 0 || spec.Root >= g.N() {
		return nil, fmt.Errorf("workloads: broadcast root %d outside nodes [0, %d)", spec.Root, g.N())
	}
	programs, out := congest.FloodPrograms(g, spec.Root, spec.Value)
	return &transport.Instance{
		Graph:     g,
		Programs:  programs,
		Source:    rngutil.NewSource(spec.SrcSeed),
		MaxRounds: 2*g.N() + 4,
		Quiet:     true,
		Finish: func(lo, hi int) []byte {
			got := 0
			for v := lo; v < hi; v++ {
				if val, ok := out[v].(int); ok && val == spec.Value {
					got++
				}
			}
			return binary.AppendUvarint(nil, uint64(got))
		},
		Merge: func(g *graph.Graph, parts [][]byte) (any, error) {
			vals, err := uvarints(parts, len(parts), "broadcast count")
			if err != nil {
				return nil, err
			}
			res := BroadcastOutput{}
			for _, v := range vals {
				res.Got += int(v)
			}
			return res, nil
		},
	}, nil
}

func buildGHS(spec transport.Spec) (*transport.Instance, error) {
	if spec.WeightSeed == 0 {
		return nil, fmt.Errorf("workloads: ghs needs a nonzero weight_seed (distinct edge weights)")
	}
	g, err := transport.BuildGraph(spec)
	if err != nil {
		return nil, err
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("workloads: ghs needs a connected graph")
	}
	programs, maxRounds := mstbase.GHSPrograms(g)
	return &transport.Instance{
		Graph:     g,
		Programs:  programs,
		Source:    rngutil.NewSource(spec.SrcSeed),
		MaxRounds: maxRounds,
		Finish: func(lo, hi int) []byte {
			edges := mstbase.GHSChosenEdges(programs, lo, hi)
			buf := binary.AppendUvarint(nil, uint64(len(edges)))
			for _, e := range edges {
				buf = binary.AppendUvarint(buf, uint64(e))
			}
			return buf
		},
		// First-seen dedup over the shard-ordered streams reproduces
		// GHSNetworkObserved's edge list exactly.
		Merge: func(g *graph.Graph, parts [][]byte) (any, error) {
			out := MSTOutput{}
			seen := make(map[int]bool)
			for _, part := range parts {
				count, rest, err := uvarint(part, "ghs edge count")
				if err != nil {
					return nil, err
				}
				for j := uint64(0); j < count; j++ {
					var e uint64
					if e, rest, err = uvarint(rest, "ghs edge id"); err != nil {
						return nil, err
					}
					if id := int(e); !seen[id] {
						seen[id] = true
						out.Edges = append(out.Edges, id)
					}
				}
				if len(rest) != 0 {
					return nil, fmt.Errorf("workloads: %d trailing bytes in ghs part", len(rest))
				}
			}
			out.Weight = g.TotalWeight(out.Edges)
			return out, nil
		},
	}, nil
}

func buildWalks(spec transport.Spec) (*transport.Instance, error) {
	g, err := transport.BuildGraph(spec)
	if err != nil {
		return nil, err
	}
	if spec.K < 1 {
		return nil, fmt.Errorf("workloads: walks needs k ≥ 1 walks per degree, got %d", spec.K)
	}
	if spec.Steps < 0 {
		return nil, fmt.Errorf("workloads: walks needs steps ≥ 0, got %d", spec.Steps)
	}
	programs, arrived, maxRounds := randomwalk.WalkPrograms(g, randomwalk.UniformCountTimesDegree(g, spec.K), spec.Steps)
	return &transport.Instance{
		Graph:     g,
		Programs:  programs,
		Source:    rngutil.NewSource(spec.SrcSeed),
		MaxRounds: maxRounds,
		Quiet:     true,
		Finish: func(lo, hi int) []byte {
			total := 0
			for v := lo; v < hi; v++ {
				total += arrived[v]
			}
			return binary.AppendUvarint(nil, uint64(total))
		},
		Merge: func(g *graph.Graph, parts [][]byte) (any, error) {
			vals, err := uvarints(parts, len(parts), "walks arrived")
			if err != nil {
				return nil, err
			}
			res := WalksOutput{}
			for _, v := range vals {
				res.Arrived += int(v)
			}
			return res, nil
		},
	}, nil
}

// uvarint reads one uvarint off b, returning the remainder.
func uvarint(b []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("workloads: malformed %s", what)
	}
	return v, b[n:], nil
}

// uvarints parses the concatenation of parts as exactly want uvarints.
func uvarints(parts [][]byte, want int, what string) ([]uint64, error) {
	vals := make([]uint64, 0, want)
	for _, part := range parts {
		for len(part) > 0 {
			v, rest, err := uvarint(part, what)
			if err != nil {
				return nil, err
			}
			part = rest
			vals = append(vals, v)
		}
	}
	if len(vals) != want {
		return nil, fmt.Errorf("workloads: %d %s values, want %d", len(vals), what, want)
	}
	return vals, nil
}
