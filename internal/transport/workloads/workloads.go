// Package workloads registers the canonical transport workloads —
// ticker, bfs, broadcast, ghs, walks, plus the fault-aware walks-faults
// and ghs-faults — with internal/transport. Each is a pure function of
// its Spec: the graph, programs, RNG streams, fault plan and payload
// codecs are rebuilt identically on every process of a TCP run, and the
// in-process backends build through the same path, which is what the
// differential suite's byte-equality assertions rest on.
//
// Only the fault-aware workloads accept a FaultSpec: the plain five
// reject one instead of silently ignoring it, because their programs
// carry no retry identity and their budgets no fault slack. The
// fault-aware workloads describe ONE attempt each; RunWalksFaults and
// RunGHSFaults (faultrun.go) add the cross-attempt retry story on top,
// mirroring the in-process drivers exactly.
//
// Import for side effects from binaries and tests that resolve
// workloads by name.
package workloads

import (
	"encoding/binary"
	"fmt"

	"almostmix/internal/congest"
	"almostmix/internal/graph"
	"almostmix/internal/mstbase"
	"almostmix/internal/randomwalk"
	"almostmix/internal/rngutil"
	"almostmix/internal/transport"
)

// BFSOutput is the merged outcome of the "bfs" workload.
type BFSOutput struct {
	// Depth is the BFS tree depth; Reached the number of nodes the flood
	// reached (n on a connected graph).
	Depth   int
	Reached int
}

// BroadcastOutput is the merged outcome of the "broadcast" workload.
type BroadcastOutput struct {
	// Got is the number of nodes holding the flooded value at the end.
	Got int
}

// MSTOutput is the merged outcome of the "ghs" workload. Iterations is
// derived by callers from Result.Rounds and the phase window 3n+6.
type MSTOutput struct {
	Edges  []int
	Weight float64
}

// WalksOutput is the merged outcome of the "walks" workload.
type WalksOutput struct {
	// Arrived is the total number of walk tokens that completed.
	Arrived int
}

// WalksFaultsOutput is the merged outcome of one "walks-faults" attempt:
// the identities of every token absorbed this attempt, indexed by the
// absorbing node. RunWalksFaults reconciles them against its outstanding
// set; arrivals are len(Absorbed[v]) minus duplicate deliveries of
// already-settled tokens, which only the driver can tell apart.
type WalksFaultsOutput struct {
	Absorbed [][]randomwalk.WalkTokenID
}

func init() {
	transport.Register(transport.Workload{
		Name:   "ticker",
		Build:  buildTicker,
		Encode: congest.EncodeTickPayload,
		Decode: congest.DecodeTickPayload,
	})
	transport.Register(transport.Workload{
		Name:   "bfs",
		Build:  buildBFS,
		Encode: congest.EncodeBFSPayload,
		Decode: congest.DecodeBFSPayload,
	})
	transport.Register(transport.Workload{
		Name:   "broadcast",
		Build:  buildBroadcast,
		Encode: congest.EncodeFloodPayload,
		Decode: congest.DecodeFloodPayload,
	})
	transport.Register(transport.Workload{
		Name:   "ghs",
		Build:  buildGHS,
		Encode: mstbase.EncodeGHSPayload,
		Decode: mstbase.DecodeGHSPayload,
	})
	transport.Register(transport.Workload{
		Name:   "walks",
		Build:  buildWalks,
		Encode: randomwalk.EncodeWalkPayload,
		Decode: randomwalk.DecodeWalkPayload,
	})
	transport.Register(transport.Workload{
		Name:   "walks-faults",
		Build:  buildWalksFaults,
		Encode: randomwalk.EncodeWalkPayload,
		Decode: randomwalk.DecodeWalkPayload,
	})
	transport.Register(transport.Workload{
		Name:   "ghs-faults",
		Build:  buildGHSFaults,
		Encode: mstbase.EncodeGHSPayload,
		Decode: mstbase.DecodeGHSPayload,
	})
}

// noFaults rejects a FaultSpec on a workload that cannot honor one —
// the plain workloads' programs carry no retry identity and their
// budgets no fault slack, so ignoring the spec would silently change
// its meaning.
func noFaults(spec transport.Spec, name string) error {
	if spec.FaultSpec != "" {
		return fmt.Errorf("workloads: %s does not take a fault spec (fault-aware workloads: walks-faults, ghs-faults)", name)
	}
	return nil
}

// buildTicker: every node broadcasts Tick for Steps rounds, then halts.
// No output beyond rounds/messages — the minimal workload the framing
// and lifecycle tests lean on.
func buildTicker(spec transport.Spec) (*transport.Instance, error) {
	if err := noFaults(spec, "ticker"); err != nil {
		return nil, err
	}
	g, err := transport.BuildGraph(spec)
	if err != nil {
		return nil, err
	}
	if spec.Steps < 1 {
		return nil, fmt.Errorf("workloads: ticker needs steps ≥ 1, got %d", spec.Steps)
	}
	programs := make([]congest.Program, g.N())
	for v := range programs {
		programs[v] = congest.NewTicker(spec.Steps)
	}
	return &transport.Instance{
		Graph:     g,
		Programs:  programs,
		Source:    rngutil.NewSource(spec.SrcSeed),
		MaxRounds: spec.Steps + 4,
	}, nil
}

func buildBFS(spec transport.Spec) (*transport.Instance, error) {
	if err := noFaults(spec, "bfs"); err != nil {
		return nil, err
	}
	g, err := transport.BuildGraph(spec)
	if err != nil {
		return nil, err
	}
	if spec.Root < 0 || spec.Root >= g.N() {
		return nil, fmt.Errorf("workloads: bfs root %d outside nodes [0, %d)", spec.Root, g.N())
	}
	programs, res := congest.BFSPrograms(g, spec.Root)
	return &transport.Instance{
		Graph:     g,
		Programs:  programs,
		Source:    rngutil.NewSource(spec.SrcSeed),
		MaxRounds: 2*g.N() + 4,
		Quiet:     true,
		// Dist[v] is only valid on the process owning v; ship dist+1 so
		// the unreached sentinel -1 packs as a uvarint.
		Finish: func(lo, hi int) []byte {
			var buf []byte
			for v := lo; v < hi; v++ {
				buf = binary.AppendUvarint(buf, uint64(res.Dist[v]+1))
			}
			return buf
		},
		Merge: func(g *graph.Graph, parts [][]byte) (any, error) {
			vals, err := uvarints(parts, g.N(), "bfs dist")
			if err != nil {
				return nil, err
			}
			out := BFSOutput{}
			for _, d := range vals {
				if d == 0 {
					continue
				}
				out.Reached++
				out.Depth = max(out.Depth, int(d)-1)
			}
			return out, nil
		},
	}, nil
}

func buildBroadcast(spec transport.Spec) (*transport.Instance, error) {
	if err := noFaults(spec, "broadcast"); err != nil {
		return nil, err
	}
	g, err := transport.BuildGraph(spec)
	if err != nil {
		return nil, err
	}
	if spec.Root < 0 || spec.Root >= g.N() {
		return nil, fmt.Errorf("workloads: broadcast root %d outside nodes [0, %d)", spec.Root, g.N())
	}
	programs, out := congest.FloodPrograms(g, spec.Root, spec.Value)
	return &transport.Instance{
		Graph:     g,
		Programs:  programs,
		Source:    rngutil.NewSource(spec.SrcSeed),
		MaxRounds: 2*g.N() + 4,
		Quiet:     true,
		Finish: func(lo, hi int) []byte {
			got := 0
			for v := lo; v < hi; v++ {
				if val, ok := out[v].(int); ok && val == spec.Value {
					got++
				}
			}
			return binary.AppendUvarint(nil, uint64(got))
		},
		Merge: func(g *graph.Graph, parts [][]byte) (any, error) {
			vals, err := uvarints(parts, len(parts), "broadcast count")
			if err != nil {
				return nil, err
			}
			res := BroadcastOutput{}
			for _, v := range vals {
				res.Got += int(v)
			}
			return res, nil
		},
	}, nil
}

func buildGHS(spec transport.Spec) (*transport.Instance, error) {
	if err := noFaults(spec, "ghs"); err != nil {
		return nil, err
	}
	if spec.WeightSeed == 0 {
		return nil, fmt.Errorf("workloads: ghs needs a nonzero weight_seed (distinct edge weights)")
	}
	g, err := transport.BuildGraph(spec)
	if err != nil {
		return nil, err
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("workloads: ghs needs a connected graph")
	}
	programs, maxRounds := mstbase.GHSPrograms(g)
	return &transport.Instance{
		Graph:     g,
		Programs:  programs,
		Source:    rngutil.NewSource(spec.SrcSeed),
		MaxRounds: maxRounds,
		Finish:    ghsFinish(programs),
		Merge:     ghsMerge,
	}, nil
}

// ghsFinish ships the owned nodes' chosen MST edge IDs: a count then
// the IDs, per-node emission order kept. Shared by ghs and ghs-faults.
func ghsFinish(programs []congest.Program) func(lo, hi int) []byte {
	return func(lo, hi int) []byte {
		edges := mstbase.GHSChosenEdges(programs, lo, hi)
		buf := binary.AppendUvarint(nil, uint64(len(edges)))
		for _, e := range edges {
			buf = binary.AppendUvarint(buf, uint64(e))
		}
		return buf
	}
}

// ghsMerge combines the shard-ordered chosen-edge streams. First-seen
// dedup reproduces GHSNetworkObserved's edge list exactly.
func ghsMerge(g *graph.Graph, parts [][]byte) (any, error) {
	out := MSTOutput{}
	seen := make(map[int]bool)
	for _, part := range parts {
		count, rest, err := uvarint(part, "ghs edge count")
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < count; j++ {
			var e uint64
			if e, rest, err = uvarint(rest, "ghs edge id"); err != nil {
				return nil, err
			}
			if id := int(e); !seen[id] {
				seen[id] = true
				out.Edges = append(out.Edges, id)
			}
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("workloads: %d trailing bytes in ghs part", len(rest))
		}
	}
	out.Weight = g.TotalWeight(out.Edges)
	return out, nil
}

func buildWalks(spec transport.Spec) (*transport.Instance, error) {
	if err := noFaults(spec, "walks"); err != nil {
		return nil, err
	}
	g, err := transport.BuildGraph(spec)
	if err != nil {
		return nil, err
	}
	if spec.K < 1 {
		return nil, fmt.Errorf("workloads: walks needs k ≥ 1 walks per degree, got %d", spec.K)
	}
	if spec.Steps < 0 {
		return nil, fmt.Errorf("workloads: walks needs steps ≥ 0, got %d", spec.Steps)
	}
	programs, arrived, maxRounds := randomwalk.WalkPrograms(g, randomwalk.UniformCountTimesDegree(g, spec.K), spec.Steps)
	return &transport.Instance{
		Graph:     g,
		Programs:  programs,
		Source:    rngutil.NewSource(spec.SrcSeed),
		MaxRounds: maxRounds,
		Quiet:     true,
		Finish: func(lo, hi int) []byte {
			total := 0
			for v := lo; v < hi; v++ {
				total += arrived[v]
			}
			return binary.AppendUvarint(nil, uint64(total))
		},
		Merge: func(g *graph.Graph, parts [][]byte) (any, error) {
			vals, err := uvarints(parts, len(parts), "walks arrived")
			if err != nil {
				return nil, err
			}
			res := WalksOutput{}
			for _, v := range vals {
				res.Arrived += int(v)
			}
			return res, nil
		},
	}, nil
}

// buildWalksFaults materializes ONE attempt of a faulty walk run,
// exactly as randomwalk.RunNetworkFaults builds its per-attempt
// network: WalkCounts tokens per node (default k·deg like "walks"),
// sequence numbers from WalkSeqBase (default 0), the walk RNG offset by
// Retry, and the fault plan from (FaultSpec, FaultSeed). The Finish
// blob ships the absorbed token identities per owned node —
// RunWalksFaults reconciles them and drives the next attempt.
func buildWalksFaults(spec transport.Spec) (*transport.Instance, error) {
	g, err := transport.BuildGraph(spec)
	if err != nil {
		return nil, err
	}
	if spec.Steps < 0 {
		return nil, fmt.Errorf("workloads: walks-faults needs steps ≥ 0, got %d", spec.Steps)
	}
	counts := spec.WalkCounts
	if counts == nil {
		if spec.K < 1 {
			return nil, fmt.Errorf("workloads: walks-faults needs k ≥ 1 walks per degree (or explicit walk_counts), got %d", spec.K)
		}
		counts = randomwalk.UniformCountTimesDegree(g, spec.K)
	} else if len(counts) != g.N() {
		return nil, fmt.Errorf("workloads: walks-faults got %d walk_counts for %d nodes", len(counts), g.N())
	}
	seqBase := spec.WalkSeqBase
	if seqBase == nil {
		seqBase = make([]int, g.N())
	} else if len(seqBase) != g.N() {
		return nil, fmt.Errorf("workloads: walks-faults got %d walk_seq_base values for %d nodes", len(seqBase), g.N())
	}
	plan, err := spec.FaultPlan()
	if err != nil {
		return nil, fmt.Errorf("workloads: walks-faults: %w", err)
	}
	programs, _, absorbed := randomwalk.WalkFaultPrograms(g, counts, seqBase, spec.Steps)
	src := rngutil.NewSource(spec.SrcSeed)
	if spec.Retry > 0 {
		src = src.Child("walk-retry", uint64(spec.Retry))
	}
	issuing := 0
	for _, c := range counts {
		issuing += c
	}
	budget := issuing*spec.Steps + 4
	if plan != nil {
		budget += spec.Steps*plan.MaxDelay() + plan.RecoverySlack()
	}
	return &transport.Instance{
		Graph:     g,
		Programs:  programs,
		Source:    src,
		Faults:    plan,
		MaxRounds: budget,
		Quiet:     true,
		Finish: func(lo, hi int) []byte {
			var buf []byte
			for v := lo; v < hi; v++ {
				buf = binary.AppendUvarint(buf, uint64(len(absorbed[v])))
				for _, id := range absorbed[v] {
					buf = binary.AppendUvarint(buf, uint64(id.Origin))
					buf = binary.AppendUvarint(buf, uint64(id.Seq))
				}
			}
			return buf
		},
		// Shard blobs arrive in node order, so the per-node records simply
		// concatenate across parts; each part must end on a record boundary.
		Merge: func(g *graph.Graph, parts [][]byte) (any, error) {
			out := WalksFaultsOutput{Absorbed: make([][]randomwalk.WalkTokenID, g.N())}
			v := 0
			for _, part := range parts {
				for len(part) > 0 {
					if v >= g.N() {
						return nil, fmt.Errorf("workloads: walks-faults absorbed records beyond %d nodes", g.N())
					}
					count, rest, err := uvarint(part, "walks-faults absorbed count")
					if err != nil {
						return nil, err
					}
					part = rest
					for j := uint64(0); j < count; j++ {
						var origin, seq uint64
						if origin, part, err = uvarint(part, "walks-faults token origin"); err != nil {
							return nil, err
						}
						if seq, part, err = uvarint(part, "walks-faults token seq"); err != nil {
							return nil, err
						}
						out.Absorbed[v] = append(out.Absorbed[v], randomwalk.WalkTokenID{Origin: int32(origin), Seq: int32(seq)})
					}
					v++
				}
			}
			if v != g.N() {
				return nil, fmt.Errorf("workloads: walks-faults absorbed records for %d of %d nodes", v, g.N())
			}
			return out, nil
		},
	}, nil
}

// buildGHSFaults materializes ONE attempt of a faulty GHS run, exactly
// as mstbase.GHSNetworkFaults builds its per-attempt network: the
// defensive program variant when the plan has any rule, the GHS RNG
// offset by Retry, and the stretched round budget. Output is MSTOutput
// like "ghs"; RunGHSFaults checks it against the oracle and drives
// retries.
func buildGHSFaults(spec transport.Spec) (*transport.Instance, error) {
	if spec.WeightSeed == 0 {
		return nil, fmt.Errorf("workloads: ghs-faults needs a nonzero weight_seed (distinct edge weights)")
	}
	g, err := transport.BuildGraph(spec)
	if err != nil {
		return nil, err
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("workloads: ghs-faults needs a connected graph")
	}
	plan, err := spec.FaultPlan()
	if err != nil {
		return nil, fmt.Errorf("workloads: ghs-faults: %w", err)
	}
	faulty := plan != nil && !plan.Empty()
	programs, budget := mstbase.GHSFaultPrograms(g, faulty)
	if faulty {
		budget += plan.MaxDelay() + plan.RecoverySlack()
	}
	src := rngutil.NewSource(spec.SrcSeed)
	if spec.Retry > 0 {
		src = src.Child("ghs-retry", uint64(spec.Retry))
	}
	return &transport.Instance{
		Graph:     g,
		Programs:  programs,
		Source:    src,
		Faults:    plan,
		MaxRounds: budget,
		Finish:    ghsFinish(programs),
		Merge:     ghsMerge,
	}, nil
}

// uvarint reads one uvarint off b, returning the remainder.
func uvarint(b []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("workloads: malformed %s", what)
	}
	return v, b[n:], nil
}

// uvarints parses the concatenation of parts as exactly want uvarints.
func uvarints(parts [][]byte, want int, what string) ([]uint64, error) {
	vals := make([]uint64, 0, want)
	for _, part := range parts {
		for len(part) > 0 {
			v, rest, err := uvarint(part, what)
			if err != nil {
				return nil, err
			}
			part = rest
			vals = append(vals, v)
		}
	}
	if len(vals) != want {
		return nil, fmt.Errorf("workloads: %d %s values, want %d", len(vals), what, want)
	}
	return vals, nil
}
