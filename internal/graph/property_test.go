package graph

// Property tests (testing/quick) for the structural invariants every
// generator must satisfy: the handshake lemma (Σ deg = 2m) and port
// symmetry — the halfedge across port p of v leads to a neighbor whose
// own port map routes straight back to v over the same edge. The CONGEST
// simulator's receiver-driven delivery depends on exactly this
// round-trip, so a violation here would corrupt message routing.

import (
	"testing"
	"testing/quick"

	"almostmix/internal/rngutil"
)

// sampleGraph draws a generator and size from the seed.
func sampleGraph(seed uint64) *Graph {
	r := rngutil.NewRand(seed)
	n := int(seed%48) + 8
	switch seed % 5 {
	case 0:
		return RandomRegular(n-n%2, 4, r)
	case 1:
		g, err := ConnectedGnp(n, 0.2, r)
		if err != nil {
			return Ring(n)
		}
		return g
	case 2:
		return Lollipop(n/2+2, n/2+1)
	case 3:
		return Torus(int(seed%5)+3, int(seed/5%5)+3)
	default:
		return Hypercube(int(seed%4) + 2)
	}
}

func TestPropertyHandshakeLemma(t *testing.T) {
	f := func(seed uint64) bool {
		g := sampleGraph(seed)
		degSum := 0
		for v := 0; v < g.N(); v++ {
			degSum += g.Degree(v)
		}
		return degSum == 2*g.M() && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPortSymmetryRoundTrips(t *testing.T) {
	f := func(seed uint64) bool {
		g := sampleGraph(seed)
		// portOf mirrors the simulator's routing table construction.
		portOf := make([]map[int]int, g.N())
		for v := 0; v < g.N(); v++ {
			portOf[v] = make(map[int]int, g.Degree(v))
			for p, h := range g.Neighbors(v) {
				portOf[v][h.To] = p
			}
		}
		for v := 0; v < g.N(); v++ {
			for p, h := range g.Neighbors(v) {
				back, ok := portOf[h.To][v]
				if !ok {
					return false // neighbor has no port back
				}
				rev := g.Neighbors(h.To)[back]
				// The reverse halfedge must return to v over the same
				// edge, and the round-trip must land on the same port.
				if rev.To != v || rev.EdgeID != h.EdgeID || portOf[v][h.To] != p {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
