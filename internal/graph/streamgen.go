package graph

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Real-world-topology generators for the decomposition experiments
// (E18): a power-law random graph and a road-like grid with long-range
// shortcuts. Unlike the other randomized generators, both stream through
// the two-pass graph.Build path: their randomness is re-derived from the
// seed inside the emit closure (a fresh identically-seeded PCG per pass,
// or a pure per-index hash), so both passes replay the identical edge
// sequence and construction stays O(1) allocations in the edge count.

// ChungLu returns a Chung–Lu power-law random graph: node i carries an
// expected-degree weight w_i ∝ (i+1)^(-1/(exponent-1)) scaled so the mean
// weight is avgDeg, and each edge {u,v} appears independently with
// probability min(1, w_u·w_v/Σw). Sampling uses the Miller–Hagberg skip
// enumeration over v > u, which runs in expected O(n + m) time rather
// than Θ(n²). exponent is the power-law degree exponent, conventionally
// in (2, 3]; it must exceed 2 so the weight sequence has bounded mean.
func ChungLu(n int, exponent, avgDeg float64, seed uint64) *Graph {
	if n < 2 {
		panic("graph: chung-lu needs n >= 2")
	}
	if exponent <= 2 {
		panic("graph: chung-lu needs exponent > 2")
	}
	if avgDeg <= 0 {
		panic("graph: chung-lu needs avgDeg > 0")
	}
	alpha := 1 / (exponent - 1)
	return Build(n, func(add func(u, v int, w float64)) {
		// Weights and the PCG stream are rebuilt identically on each of
		// Build's two passes, so the emitted sequence replays exactly.
		wts := make([]float64, n)
		sum := 0.0
		for i := range wts {
			wts[i] = math.Pow(float64(i+1), -alpha)
			sum += wts[i]
		}
		scale := avgDeg * float64(n) / sum
		total := avgDeg * float64(n)
		for i := range wts {
			wts[i] *= scale
		}
		r := rand.New(rand.NewPCG(seed, seed^0x5851f42d4c957f2d))
		for u := 0; u < n-1; u++ {
			v := u + 1
			p := math.Min(1, wts[u]*wts[v]/total)
			// Below ~1e-12 the remaining tail contributes no edges in
			// expectation and log1p underflow would break the skip step.
			for v < n && p > 1e-12 {
				if p < 1 {
					// Geometric skip to the next success under the
					// current (over-)estimate p; w is non-increasing in
					// v, so the true probability q ≤ p below.
					v += int(math.Log(1-r.Float64()) / math.Log(1-p))
				}
				if v < n {
					q := math.Min(1, wts[u]*wts[v]/total)
					if r.Float64()*p < q {
						add(u, v, 1)
					}
					p = q
					v++
				}
			}
		}
	})
}

// ConnectedChungLu draws ChungLu samples with successive seeds until a
// connected one is found, up to 100 attempts (power-law graphs at
// moderate average degree leave a few isolated low-weight nodes with
// constant probability).
func ConnectedChungLu(n int, exponent, avgDeg float64, seed uint64) (*Graph, error) {
	for attempt := uint64(0); attempt < 100; attempt++ {
		g := ChungLu(n, exponent, avgDeg, seed+attempt)
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: no connected chung-lu(n=%d, exp=%g, deg=%g) in 100 attempts from seed %d: %w",
		n, exponent, avgDeg, seed, ErrDisconnected)
}

// GridShortcuts returns a road-like graph: the rows×cols grid plus up to
// `shortcuts` long-range chords ("highways"). Shortcut k runs from node
// k to node (k + jump_k) mod n, where jump_k ∈ [2, n-2] is a pure hash
// of (seed, k); chords that would duplicate a grid edge or another chord
// are skipped, so the realized chord count can be slightly below
// shortcuts. shortcuts must not exceed n. The emit stream is a pure
// function of (seed, k) — no rng state — so it replays exactly and
// construction allocates O(1).
func GridShortcuts(rows, cols, shortcuts int, seed uint64) *Graph {
	if rows < 2 || cols < 2 {
		panic("graph: grid shortcuts needs both dimensions >= 2")
	}
	n := rows * cols
	if shortcuts < 0 || shortcuts > n {
		panic("graph: grid shortcuts needs 0 <= shortcuts <= rows*cols")
	}
	jump := func(k int) int {
		x := seed ^ (0x9e3779b97f4a7c15 * uint64(k+1))
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return 2 + int(x%uint64(n-3))
	}
	gridAdjacent := func(u, v int) bool {
		ru, cu := u/cols, u%cols
		rv, cv := v/cols, v%cols
		if ru == rv {
			return cu-cv == 1 || cv-cu == 1
		}
		if cu == cv {
			return ru-rv == 1 || rv-ru == 1
		}
		return false
	}
	id := func(r, c int) int { return r*cols + c }
	return Build(n, func(add func(u, v int, w float64)) {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if r+1 < rows {
					add(id(r, c), id(r+1, c), 1)
				}
				if c+1 < cols {
					add(id(r, c), id(r, c+1), 1)
				}
			}
		}
		for k := 0; k < shortcuts; k++ {
			v := (k + jump(k)) % n
			if gridAdjacent(k, v) {
				continue
			}
			// A chord whose far endpoint is an earlier chord source may
			// mirror that chord exactly; keep only the first occurrence.
			if v < k && v < shortcuts && (v+jump(v))%n == k {
				continue
			}
			add(k, v, 1)
		}
	})
}
