package graph

// Tests for the streaming real-world-topology generators (E18 inputs):
// both must emit deterministically (identical graphs from identical
// seeds — Build itself panics if the two passes disagree), stay simple
// graphs, and construct in O(1) allocations.

import (
	"testing"
)

func edgePairs(g *Graph) map[[2]int]bool {
	pairs := make(map[[2]int]bool, g.M())
	for _, e := range g.Edges() {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if pairs[key] {
			return nil // duplicate
		}
		pairs[key] = true
	}
	return pairs
}

func TestChungLuValid(t *testing.T) {
	const n, avg = 512, 6.0
	g := ChungLu(n, 2.5, avg, 42)
	if err := g.Validate(); err != nil {
		t.Fatalf("ChungLu invalid: %v", err)
	}
	if edgePairs(g) == nil {
		t.Fatal("ChungLu emitted a duplicate edge")
	}
	mean := 2 * float64(g.M()) / n
	if mean < avg/4 || mean > 2*avg {
		t.Fatalf("ChungLu mean degree %.2f far from target %.1f", mean, avg)
	}
	// Power-law shape: the top-weight node should beat the mean by a lot.
	if g.MaxDegree() < 4*int(mean) {
		t.Fatalf("ChungLu max degree %d shows no heavy tail (mean %.2f)", g.MaxDegree(), mean)
	}
}

func TestChungLuDeterminism(t *testing.T) {
	a := ChungLu(256, 2.7, 5, 9)
	b := ChungLu(256, 2.7, 5, 9)
	if a.M() != b.M() {
		t.Fatalf("same seed: m=%d vs %d", a.M(), b.M())
	}
	for id := 0; id < a.M(); id++ {
		if a.Edge(id) != b.Edge(id) {
			t.Fatalf("same seed: edge %d differs: %+v vs %+v", id, a.Edge(id), b.Edge(id))
		}
	}
	c := ChungLu(256, 2.7, 5, 10)
	if c.M() == a.M() {
		same := true
		for id := 0; id < a.M(); id++ {
			if a.Edge(id) != c.Edge(id) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced the identical graph")
		}
	}
}

func TestConnectedChungLu(t *testing.T) {
	g, err := ConnectedChungLu(192, 2.5, 8, 1)
	if err != nil {
		t.Fatalf("ConnectedChungLu: %v", err)
	}
	if !g.IsConnected() {
		t.Fatal("ConnectedChungLu returned a disconnected graph")
	}
}

func TestChungLuAllocs(t *testing.T) {
	allocs := testing.AllocsPerRun(5, func() {
		ChungLu(2048, 2.5, 4, 3)
	})
	// Build's fixed cost plus, per pass: one weight slice and one PCG
	// stream. Constant in n and m.
	if allocs > 24 {
		t.Fatalf("ChungLu costs %.0f allocs, want O(1) (<= 24)", allocs)
	}
}

func TestChungLuRejectsBadParams(t *testing.T) {
	mustPanic(t, "n too small", func() { ChungLu(1, 2.5, 4, 1) })
	mustPanic(t, "exponent <= 2", func() { ChungLu(16, 2, 4, 1) })
	mustPanic(t, "avgDeg <= 0", func() { ChungLu(16, 2.5, 0, 1) })
}

func TestGridShortcutsValid(t *testing.T) {
	const rows, cols, sc = 12, 14, 40
	g := GridShortcuts(rows, cols, sc, 77)
	if err := g.Validate(); err != nil {
		t.Fatalf("GridShortcuts invalid: %v", err)
	}
	if edgePairs(g) == nil {
		t.Fatal("GridShortcuts emitted a duplicate edge")
	}
	gridM := rows*(cols-1) + cols*(rows-1)
	if g.M() < gridM || g.M() > gridM+sc {
		t.Fatalf("GridShortcuts m=%d outside [%d, %d]", g.M(), gridM, gridM+sc)
	}
	if g.M() == gridM {
		t.Fatal("GridShortcuts realized zero chords")
	}
	if !g.IsConnected() {
		t.Fatal("GridShortcuts disconnected")
	}
	// Chords must not duplicate grid edges: Validate plus the pair map
	// above already guarantee simplicity, so just confirm the chord
	// count matches edges beyond the grid prefix.
	for id := gridM; id < g.M(); id++ {
		e := g.Edge(id)
		ru, cu := e.U/cols, e.U%cols
		rv, cv := e.V/cols, e.V%cols
		if (ru == rv && (cu-cv == 1 || cv-cu == 1)) || (cu == cv && (ru-rv == 1 || rv-ru == 1)) {
			t.Fatalf("chord %d = %+v is a grid edge", id, e)
		}
	}
}

func TestGridShortcutsDeterminism(t *testing.T) {
	a := GridShortcuts(9, 9, 20, 5)
	b := GridShortcuts(9, 9, 20, 5)
	if a.M() != b.M() {
		t.Fatalf("same seed: m=%d vs %d", a.M(), b.M())
	}
	for id := 0; id < a.M(); id++ {
		if a.Edge(id) != b.Edge(id) {
			t.Fatalf("same seed: edge %d differs", id)
		}
	}
}

func TestGridShortcutsAllocs(t *testing.T) {
	allocs := testing.AllocsPerRun(5, func() {
		GridShortcuts(64, 64, 512, 11)
	})
	if allocs > 10 {
		t.Fatalf("GridShortcuts costs %.0f allocs, want O(1) (<= 10)", allocs)
	}
}

func TestGridShortcutsRejectsBadParams(t *testing.T) {
	mustPanic(t, "rows < 2", func() { GridShortcuts(1, 5, 0, 1) })
	mustPanic(t, "cols < 2", func() { GridShortcuts(5, 1, 0, 1) })
	mustPanic(t, "shortcuts < 0", func() { GridShortcuts(5, 5, -1, 1) })
	mustPanic(t, "shortcuts > n", func() { GridShortcuts(5, 5, 26, 1) })
}
