// Package graph provides the undirected weighted graph representation used
// throughout the simulator, together with generators for the graph
// families that the experiments sweep over (expanders, rings, tori,
// hypercubes, Erdős–Rényi graphs, and lower-bound-style low-expansion
// graphs such as lollipops and barbells).
//
// Nodes are integers in [0, N). Edges carry a stable EdgeID so that
// distributed node programs can refer to "port" numbers, and an optional
// weight used by MST and min-cut algorithms.
package graph

import (
	"errors"
	"fmt"
	"math/rand/v2"
)

// Edge is an undirected edge between nodes U and V with weight W.
type Edge struct {
	U, V int
	W    float64
}

// Halfedge is the view of an edge from one endpoint: the neighbor it leads
// to and the identifier of the underlying edge.
type Halfedge struct {
	To     int
	EdgeID int
}

// Graph is an undirected weighted simple graph.
//
// The zero value is an empty graph; use New or a generator to build one.
type Graph struct {
	n     int
	edges []Edge
	adj   [][]Halfedge
}

// New returns an empty graph on n nodes.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{
		n:   n,
		adj: make([][]Halfedge, n),
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the edge list. The returned slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// AddEdge inserts an undirected edge {u, v} with weight w and returns its
// EdgeID. Self-loops and duplicate edges are rejected with a panic, since
// all callers construct graphs programmatically and a violation is a bug.
func (g *Graph) AddEdge(u, v int, w float64) int {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, W: w})
	g.adj[u] = append(g.adj[u], Halfedge{To: v, EdgeID: id})
	g.adj[v] = append(g.adj[v], Halfedge{To: u, EdgeID: id})
	return id
}

// Build constructs a graph on n nodes by streaming the edge sequence
// twice through emit: a counting pass sizes the edge list and one flat
// halfedge arena exactly, then a filling pass inserts the edges. The
// stream is never materialized as an intermediate edge list, and the
// adjacency costs three allocations total instead of O(n) slice growths
// — the construction path the million-node simulator arenas rely on.
//
// emit must be deterministic: both passes must produce the identical
// edge sequence (Build panics when the counts disagree). Generators
// that consume randomness should draw the stream into a buffer once and
// replay it, or keep using New + AddEdge.
func Build(n int, emit func(add func(u, v int, w float64))) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	deg := make([]int, n)
	m := 0
	emit(func(u, v int, w float64) {
		if u == v {
			panic(fmt.Sprintf("graph: self-loop at node %d", u))
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, n))
		}
		deg[u]++
		deg[v]++
		m++
	})
	g := &Graph{
		n:     n,
		edges: make([]Edge, 0, m),
		adj:   make([][]Halfedge, n),
	}
	arena := make([]Halfedge, 2*m)
	off := 0
	for v := 0; v < n; v++ {
		// Full-slice expressions pin each node's capacity to its counted
		// degree, so a miscounting emit reallocates out of the arena
		// instead of corrupting a neighbor's range.
		g.adj[v] = arena[off : off : off+deg[v]]
		off += deg[v]
	}
	emit(func(u, v int, w float64) { g.AddEdge(u, v, w) })
	if len(g.edges) != m {
		panic(fmt.Sprintf("graph: Build emit is not deterministic: counted %d edges, inserted %d", m, len(g.edges)))
	}
	return g
}

// HasEdge reports whether an edge {u, v} exists. O(deg(u)).
func (g *Graph) HasEdge(u, v int) bool {
	for _, h := range g.adj[u] {
		if h.To == v {
			return true
		}
	}
	return false
}

// Neighbors returns the halfedges incident to v. The returned slice must
// not be modified.
func (g *Graph) Neighbors(v int) []Halfedge { return g.adj[v] }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum degree Δ of the graph.
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.adj[v]); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// MinDegree returns the minimum degree of the graph.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	minDeg := len(g.adj[0])
	for v := 1; v < g.n; v++ {
		if d := len(g.adj[v]); d < minDeg {
			minDeg = d
		}
	}
	return minDeg
}

// Volume returns the sum of degrees of the nodes in set (2m for all nodes).
func (g *Graph) Volume(set []int) int {
	vol := 0
	for _, v := range set {
		vol += len(g.adj[v])
	}
	return vol
}

// SetWeight sets the weight of edge id.
func (g *Graph) SetWeight(id int, w float64) { g.edges[id].W = w }

// Other returns the endpoint of edge id that is not v.
func (g *Graph) Other(id, v int) int {
	e := g.edges[id]
	if e.U == v {
		return e.V
	}
	return e.U
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.edges = make([]Edge, len(g.edges))
	copy(c.edges, g.edges)
	for v := range g.adj {
		c.adj[v] = make([]Halfedge, len(g.adj[v]))
		copy(c.adj[v], g.adj[v])
	}
	return c
}

// ErrDisconnected is returned by operations requiring a connected graph.
var ErrDisconnected = errors.New("graph: graph is not connected")

// IsConnected reports whether the graph is connected (true for n <= 1).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	return len(g.bfsOrder(0)) == g.n
}

// bfsOrder returns the nodes reachable from src in BFS order.
func (g *Graph) bfsOrder(src int) []int {
	seen := make([]bool, g.n)
	order := make([]int, 0, g.n)
	queue := []int{src}
	seen[src] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, h := range g.adj[v] {
			if !seen[h.To] {
				seen[h.To] = true
				queue = append(queue, h.To)
			}
		}
	}
	return order
}

// BFSDist returns the hop distances from src to every node (-1 if
// unreachable).
func (g *Graph) BFSDist(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range g.adj[v] {
			if dist[h.To] < 0 {
				dist[h.To] = dist[v] + 1
				queue = append(queue, h.To)
			}
		}
	}
	return dist
}

// Diameter returns the hop diameter of the graph by running a BFS from
// every node. It returns -1 for disconnected graphs. O(n·m).
func (g *Graph) Diameter() int {
	diam := 0
	for v := 0; v < g.n; v++ {
		dist := g.BFSDist(v)
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// Components returns the connected components as slices of nodes.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for v := 0; v < g.n; v++ {
		if seen[v] {
			continue
		}
		comp := g.bfsOrder(v)
		for _, u := range comp {
			seen[u] = true
		}
		comps = append(comps, comp)
	}
	return comps
}

// CutSize returns e(S, V\S), the number of edges crossing the node set S.
func (g *Graph) CutSize(inS []bool) int {
	cut := 0
	for _, e := range g.edges {
		if inS[e.U] != inS[e.V] {
			cut++
		}
	}
	return cut
}

// AssignDistinctRandomWeights assigns random weights that are distinct
// with certainty: a random permutation rank plus small jitter. Distinct
// weights make the MST unique, which both the paper's Borůvka variant and
// the verification against Kruskal rely on.
func (g *Graph) AssignDistinctRandomWeights(r *rand.Rand) {
	perm := r.Perm(len(g.edges))
	for i := range g.edges {
		g.edges[i].W = float64(perm[i] + 1)
	}
}

// TotalWeight returns the sum of the weights of the given edge IDs.
func (g *Graph) TotalWeight(ids []int) float64 {
	total := 0.0
	for _, id := range ids {
		total += g.edges[id].W
	}
	return total
}

// Validate checks internal consistency; it returns an error describing the
// first violation found. Intended for tests.
func (g *Graph) Validate() error {
	degSum := 0
	for v := range g.adj {
		degSum += len(g.adj[v])
		for _, h := range g.adj[v] {
			if h.To < 0 || h.To >= g.n {
				return fmt.Errorf("node %d: neighbor %d out of range", v, h.To)
			}
			if h.EdgeID < 0 || h.EdgeID >= len(g.edges) {
				return fmt.Errorf("node %d: edge id %d out of range", v, h.EdgeID)
			}
			e := g.edges[h.EdgeID]
			if e.U != v && e.V != v {
				return fmt.Errorf("node %d references edge %d=(%d,%d) not incident to it", v, h.EdgeID, e.U, e.V)
			}
			if g.Other(h.EdgeID, v) != h.To {
				return fmt.Errorf("node %d: halfedge to %d disagrees with edge %d", v, h.To, h.EdgeID)
			}
		}
	}
	if degSum != 2*len(g.edges) {
		return fmt.Errorf("degree sum %d != 2m = %d", degSum, 2*len(g.edges))
	}
	return nil
}
